package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	r := Fig1()
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	last := r.Points[len(r.Points)-1]
	if last.GapFactor <= 1 {
		t.Errorf("gap by 2015 should exceed 1x: %v", last.GapFactor)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Design Capability Gap") {
		t.Error("print output malformed")
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	// The counterfactual cost must explode relative to the on-time
	// trajectory by 2028.
	with := r.WithInnovation[len(r.WithInnovation)-1]
	no13 := r.NoPost2013[len(r.NoPost2013)-1]
	if with.Year != 2028 || no13.Year != 2028 {
		t.Fatal("horizon mismatch")
	}
	if no13.DesignCostUSD < 10*with.DesignCostUSD {
		t.Errorf("counterfactual should dwarf on-time cost: %v vs %v", no13.DesignCostUSD, with.DesignCostUSD)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "2028") {
		t.Error("print output missing horizon")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(Small, 1)
	if len(r.Study.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if !r.NoiseGrows {
		t.Error("noise should grow toward fmax")
	}
	if r.AreaJumpPct <= 0 {
		t.Error("no area jump measured")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "fmax") {
		t.Error("print malformed")
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4(2.0)
	if len(rows) != 2 {
		t.Fatal("want 2 regimes")
	}
	today, future := rows[0], rows[1]
	if future.OptimalMargin >= today.OptimalMargin {
		t.Errorf("future margin %v should be below today's %v", future.OptimalMargin, today.OptimalMargin)
	}
	if future.Quality <= today.Quality {
		t.Error("future quality should beat today's")
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	if !strings.Contains(buf.String(), "margin") {
		t.Error("print malformed")
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5()
	if r.SinglePass <= 0 || r.WithThreeIters <= r.SinglePass {
		t.Fatalf("tree numbers wrong: %v %v", r.SinglePass, r.WithThreeIters)
	}
	if r.Explored200Runs >= 0.01 {
		t.Errorf("200 runs should explore a tiny fraction, got %v", r.Explored200Runs)
	}
}

func TestFig6aShape(t *testing.T) {
	r := Fig6a(Small, 1)
	if r.GWTWCost <= 0 || r.IndependentCost <= 0 {
		t.Fatal("missing costs")
	}
	// GWTW should be competitive with independent multistart at equal
	// budget (the paper's premise; not a strict dominance claim on one
	// seed).
	if r.GWTWCost > r.IndependentCost*1.25 {
		t.Errorf("GWTW %v much worse than independent %v", r.GWTWCost, r.IndependentCost)
	}
}

func TestFig6bShape(t *testing.T) {
	r := Fig6b(Small, 1)
	if r.AdaptiveBest <= 0 || r.RandomBest <= 0 {
		t.Fatal("missing costs")
	}
	if r.AdaptiveBest > r.RandomBest*1.15 {
		t.Errorf("adaptive %v much worse than random %v", r.AdaptiveBest, r.RandomBest)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Main.TotalRuns != 10*5 {
		t.Fatalf("total runs %d", r.Main.TotalRuns)
	}
	if r.Main.BestFreqGHz <= 0 {
		t.Fatal("no feasible frequency found")
	}
	// The ladder straddles feasibility: the 3x arm must fail, so some
	// samples are unsatisfied, and the best found stays below it.
	maxArm := r.Arms[len(r.Arms)-1]
	if r.Main.BestFreqGHz >= maxArm {
		t.Errorf("infeasible arm %v reported best", maxArm)
	}
	failures := 0
	for _, s := range r.Main.Samples {
		if !s.Satisfied {
			failures++
		}
	}
	if failures == 0 {
		t.Error("expected some unsatisfied samples across the ladder")
	}
	for _, alg := range []string{"thompson", "softmax", "eps-greedy", "ucb1"} {
		if _, ok := r.Comparison[alg]; !ok {
			t.Errorf("missing comparison entry %s", alg)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "thompson") {
		t.Error("print malformed")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	costs := map[string]float64{}
	for _, p := range r.Points {
		byName[p.Name] = p.AccuracyPct
		costs[p.Name] = p.CostUnits
	}
	if byName["fast+ml"] <= byName["fast"] {
		t.Errorf("ML point should lift accuracy: %v vs %v", byName["fast+ml"], byName["fast"])
	}
	if costs["fast+ml"] >= costs["signoff+si+pba"] {
		t.Error("ML point should be far cheaper than reference")
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(Small, 1)
	if len(r.Series) < 2 {
		t.Fatalf("only %d series found", len(r.Series))
	}
	hasSuccess, hasDoomed := false, false
	for _, l := range r.Labels {
		if strings.HasPrefix(l, "success") {
			hasSuccess = true
		}
		if strings.HasPrefix(l, "doomed") {
			hasDoomed = true
		}
	}
	if !hasSuccess || !hasDoomed {
		t.Errorf("need both success and doomed trajectories: %v", r.Labels)
	}
}

func TestFig10Shape(t *testing.T) {
	r := Fig10(Small, 1)
	card := r.Card
	cfg := card.Config
	// Right half of the card leans STOP for flat-or-worsening DRVs.
	stops := 0
	for vb := cfg.ViolBins * 3 / 4; vb < cfg.ViolBins; vb++ {
		for d := 0; d <= cfg.DeltaSpan; d++ { // flat or positive delta
			if card.Action[vb][cfg.DeltaSpan+d] == 1 { // STOP
				stops++
			}
		}
	}
	if stops == 0 {
		t.Error("no STOP region on the right of the card")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.ContainsAny(buf.String(), "Ss") {
		t.Error("card render missing STOP cells")
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(Small, 1)
	if len(r.Rows) != 3 {
		t.Fatal("want 3 rows")
	}
	// The paper's qualitative result: total error falls as the
	// consecutive-STOP requirement rises, and Type-2 errors stay flat
	// and small.
	if r.Rows[2].Test.TotalErrorPct > r.Rows[0].Test.TotalErrorPct+1e-9 {
		t.Errorf("k=3 test error %v should not exceed k=1 %v",
			r.Rows[2].Test.TotalErrorPct, r.Rows[0].Test.TotalErrorPct)
	}
	if r.Rows[2].Train.Type1 > r.Rows[0].Train.Type1 {
		t.Error("k=3 should cut Type-1 errors")
	}
	for _, row := range r.Rows {
		if row.Test.IterationsSaved < 0 || row.Test.IterationsSaved > row.Test.IterationsTotal {
			t.Error("iteration accounting broken")
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "type1") {
		t.Error("print malformed")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.RecordsStored != int64(r.Runs*6) {
		t.Errorf("stored %d records for %d runs", r.RecordsStored, r.Runs)
	}
	if r.Rejected != 0 {
		t.Errorf("%d records rejected", r.Rejected)
	}
	if r.BestFreqGHz <= 0 {
		t.Error("miner found no met run")
	}
	if r.PrescribedLo > r.PrescribedHi {
		t.Error("prescribed range inverted")
	}
	if r.SensFreqArea <= 0 {
		t.Errorf("target->area sensitivity %v should be positive", r.SensFreqArea)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "METRICS") {
		t.Error("print malformed")
	}
}

func TestFacade(t *testing.T) {
	lib := DefaultLibrary()
	d := NewDesign(lib, TinyDesign(1))
	res := RunFlow(d, FlowOptions{TargetFreqGHz: 0.3, Seed: 1})
	if res.AreaUm2 <= 0 {
		t.Fatal("facade flow run failed")
	}
	r := Robot{Design: d, Base: FlowOptions{TargetFreqGHz: 0.3, Seed: 1}}
	if out := r.Execute(); !out.Succeeded {
		t.Error("facade robot failed easy target")
	}
}
