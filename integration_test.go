package repro

// Integration test: the full "no human in the loop" pipeline the paper
// sketches, run end to end on one design — Stage 1 robot closure,
// Stage 2 orchestrated search, Stage 3 doomed-run pruning, Stage 4
// METRICS-fed adaptation — with the infrastructure (collection server,
// anonymized sharing) in the loop.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/metrics"
	"repro/internal/share"
)

func TestFullRoadmapPipeline(t *testing.T) {
	design := NewDesign(DefaultLibrary(), TinyDesign(99))

	// METRICS server collects everything the pipeline does.
	srv := metrics.NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tx := metrics.NewTransmitter("http://" + addr)

	// Stage 1: a robot closes an aggressive target without a human.
	probe := flow.RunObserved(design, flow.Options{TargetFreqGHz: 0.3, Seed: 1}, tx)
	robot := core.Robot{
		Design: design,
		Base:   flow.Options{TargetFreqGHz: probe.MaxFreqGHz * 1.6, Seed: 2},
	}
	rout := robot.Execute()
	if !rout.Succeeded {
		t.Fatalf("stage 1: robot failed after %d attempts", len(rout.Attempts))
	}
	stage1Freq := rout.Final.Options.TargetFreqGHz

	// Stage 2: orchestrated search should do at least as well as the
	// single robot's trajectory (it explores the same ladder and more).
	arms := []float64{stage1Freq * 0.8, stage1Freq, stage1Freq * 1.1, stage1Freq * 1.4}
	sres, err := core.Search(design, flow.Options{Seed: 3}, flow.Constraints{}, core.SearchConfig{
		Freqs: arms, Iterations: 6, Licenses: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres.BestFreqGHz < stage1Freq*0.8 {
		t.Errorf("stage 2 best %v below the slowest arm", sres.BestFreqGHz)
	}

	// Stage 3: a strategy card trained on fresh logfiles supervises a
	// congested campaign and saves schedule.
	train := logfile.Generate(logfile.CorpusSpec{Name: "artificial", Runs: 120, Seed: 4, Designs: 2})
	card := mdp.BuildCard(train, mdp.CardConfig{})
	runner := core.PrunedRunner{Card: card, ConsecutiveStops: 3}
	study := core.StudyPruning(design, flow.Options{
		TargetFreqGHz: 0.3, Seed: 5, TracksPerEdge: 1.2,
	}, runner, 5)
	if study.RuntimePruned > study.RuntimeUnpruned {
		t.Error("stage 3: pruning increased runtime")
	}

	// Stage 4: the adaptive agent, writing into the same METRICS store,
	// converges to a met target after an infeasible start.
	agent := core.Agent{Design: design, Store: srv.Store, Start: flow.Options{TargetFreqGHz: stage1Freq * 2, Seed: 6}}
	rounds := agent.RunRounds(4)
	lastMet := rounds[len(rounds)-1].Met
	backedOff := rounds[len(rounds)-1].TargetFreqGHz < rounds[0].TargetFreqGHz
	if !lastMet && !backedOff {
		t.Error("stage 4: agent neither met nor backed off")
	}

	// Infrastructure: the store saw the instrumented runs and can be
	// mined; the design can be shared without leaking identifiers and
	// still produce comparable flow results.
	if srv.Store.Len() == 0 {
		t.Fatal("METRICS store empty after the pipeline")
	}
	miner := metrics.Miner{Store: srv.Store}
	if _, ok := miner.BestTargetFreq(design.Name); !ok {
		t.Error("miner found no met run despite stage-4 adaptation")
	}
	anon := share.Anonymize(design, share.Obfuscate, 7)
	if leaks := share.LeakCheck(design, anon); len(leaks) != 0 {
		t.Fatalf("sharing leaked: %v", leaks)
	}
	ares := RunFlow(anon, flow.Options{TargetFreqGHz: 0.3, Seed: 8})
	if ares.AreaUm2 <= 0 {
		t.Error("anonymized design failed to implement")
	}

	// The store round-trips through persistence with mining intact.
	var buf bytes.Buffer
	if err := srv.Store.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored := metrics.NewStore()
	if err := restored.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != srv.Store.Len() {
		t.Error("store persistence lost records")
	}
}
