// Command costroadmap reproduces the paper's roadmap economics: the
// Design Capability Gap of Fig. 1, the design-cost trajectories of Fig.
// 2 (including the footnote-1 counterfactuals), the margin model of
// Fig. 4, and the option-tree arithmetic of Fig. 5.
//
// Usage:
//
//	costroadmap [-fig 1|2|4|5|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	fig := flag.String("fig", "all", "figure to print: 1, 2, 4, 5, or all")
	flag.Parse()

	switch *fig {
	case "1":
		repro.Fig1().Print(os.Stdout)
	case "2":
		repro.Fig2().Print(os.Stdout)
	case "4":
		repro.PrintFig4(os.Stdout, repro.Fig4(1.1))
	case "5":
		repro.Fig5().Print(os.Stdout)
	case "all":
		repro.Fig1().Print(os.Stdout)
		fmt.Println()
		repro.Fig2().Print(os.Stdout)
		fmt.Println()
		repro.PrintFig4(os.Stdout, repro.Fig4(1.1))
		fmt.Println()
		repro.Fig5().Print(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
