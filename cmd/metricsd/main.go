// Command metricsd runs the METRICS collection server of Fig. 11 and,
// optionally, a demonstration campaign: an instrumented flow sweep whose
// records stream into the server, followed by data mining.
//
// Usage:
//
//	metricsd -addr 127.0.0.1:8800          # serve until interrupted
//	metricsd -demo [-scale small|paper]    # end-to-end loop, then exit
//	metricsd -addr 127.0.0.1:8800 -frontdoor [-campaign-slots 2]
//
// With -frontdoor the server also accepts campaign submissions:
//
//	POST /v1/campaigns {"tenant":"t1","spec":{"design":"tiny","freq":0.5,
//	                    "seed":1,"seeds":4,"workers":2,"dist_nodes":0}}
//	GET  /v1/campaigns              all campaigns
//	GET  /v1/campaigns/{id}         one campaign's status + summary
//	GET  /v1/campaigns/{id}/events  SSE point/state stream
//
// Admission is bounded (-campaign-queue) and running slots are shared
// fairly across tenants (-campaign-slots). A spec with dist_nodes > 0
// runs through the distributed campaign service over loopback nodes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8800", "listen address")
	demo := flag.Bool("demo", false, "run the end-to-end METRICS loop and exit")
	scale := flag.String("scale", "small", "demo scale: small or paper")
	seed := flag.Int64("seed", 1, "demo seed")
	frontdoor := flag.Bool("frontdoor", false, "accept campaign submissions on /v1/campaigns")
	campaignSlots := flag.Int("campaign-slots", 1, "concurrently running campaigns (front door)")
	campaignQueue := flag.Int("campaign-queue", 16, "max queued campaigns before 429 (front door)")
	flag.Parse()

	if *demo {
		s := repro.Small
		if *scale == "paper" {
			s = repro.Paper
		}
		res, err := repro.Fig11(s, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		return
	}

	srv := metrics.NewServer(nil)
	if *frontdoor {
		srv.FrontDoor = metrics.NewFrontDoor(metrics.RunnerFunc(runCampaignSpec), *campaignSlots, *campaignQueue)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("METRICS server listening on %s\n", bound)
	fmt.Printf("POST XML records to http://%s/collect; query /records and /stats\n", bound)
	if *frontdoor {
		fmt.Printf("campaign front door on http://%s/v1/campaigns (%d slots, queue %d)\n",
			bound, *campaignSlots, *campaignQueue)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	acc, rej := srv.Received()
	fmt.Printf("shutting down: %d records stored, %d accepted, %d rejected\n", srv.Store.Len(), acc, rej)
}

// campaignSpec is the front door's submission payload: the same sweep
// shape the sprflow and campd CLIs expose as flags.
type campaignSpec struct {
	Design    string  `json:"design"` // pulpino, cpu, artificial, tiny
	Freq      float64 `json:"freq"`
	Seed      int64   `json:"seed"`
	Seeds     int     `json:"seeds"`
	Effort    int     `json:"effort"`
	Workers   int     `json:"workers"`
	DistNodes int     `json:"dist_nodes"`
}

// campaignSummary is the terminal summary stored on the campaign.
type campaignSummary struct {
	Points int `json:"points"`
	Met    int `json:"met"`
}

// runCampaignSpec is the injected CampaignRunner: it parses the opaque
// spec and runs the sweep — distributed when dist_nodes asks for it.
// Point events are emitted after the run (the engine reports results as
// a batch); the status endpoint remains the lossless view.
func runCampaignSpec(ctx context.Context, raw json.RawMessage, onPoint func(index, total int)) (json.RawMessage, error) {
	var spec campaignSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("bad campaign spec: %w", err)
	}
	if spec.Design == "" {
		spec.Design = "tiny"
	}
	if spec.Freq <= 0 {
		spec.Freq = 0.5
	}
	if spec.Seeds <= 0 {
		spec.Seeds = 2
	}
	if spec.Effort == 0 {
		spec.Effort = 2
	}
	var ds repro.DesignSpec
	switch spec.Design {
	case "pulpino":
		ds = repro.PulpinoProxy(spec.Seed)
	case "cpu":
		ds = repro.EmbeddedCPU(spec.Seed)
	case "artificial":
		ds = repro.Artificial(spec.Seed)
	case "tiny":
		ds = repro.TinyDesign(spec.Seed)
	default:
		return nil, fmt.Errorf("unknown design %q", spec.Design)
	}
	seeds := make([]int64, spec.Seeds)
	for i := range seeds {
		seeds[i] = spec.Seed + int64(i)
	}
	scfg := repro.SweepConfig{
		Design:  repro.NewDesign(repro.DefaultLibrary(), ds),
		Base:    repro.FlowOptions{SynthEffort: spec.Effort},
		Freqs:   []float64{0.8 * spec.Freq, spec.Freq, 1.2 * spec.Freq},
		Seeds:   seeds,
		Workers: spec.Workers,
	}
	var res repro.SweepResult
	var err error
	if spec.DistNodes > 0 {
		res, err = repro.DistSweep(repro.DistSweepConfig{SweepConfig: scfg, Nodes: spec.DistNodes})
	} else {
		res, err = repro.Sweep(scfg)
	}
	if err != nil {
		return nil, err
	}
	met := 0
	for i, p := range res.Points {
		onPoint(i, len(res.Points))
		if p.Met {
			met++
		}
	}
	out, err := json.Marshal(campaignSummary{Points: len(res.Points), Met: met})
	if err != nil {
		return nil, err
	}
	return out, nil
}
