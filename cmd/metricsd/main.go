// Command metricsd runs the METRICS collection server of Fig. 11 and,
// optionally, a demonstration campaign: an instrumented flow sweep whose
// records stream into the server, followed by data mining.
//
// Usage:
//
//	metricsd -addr 127.0.0.1:8800          # serve until interrupted
//	metricsd -demo [-scale small|paper]    # end-to-end loop, then exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8800", "listen address")
	demo := flag.Bool("demo", false, "run the end-to-end METRICS loop and exit")
	scale := flag.String("scale", "small", "demo scale: small or paper")
	seed := flag.Int64("seed", 1, "demo seed")
	flag.Parse()

	if *demo {
		s := repro.Small
		if *scale == "paper" {
			s = repro.Paper
		}
		res, err := repro.Fig11(s, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		return
	}

	srv := metrics.NewServer(nil)
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("METRICS server listening on %s\n", bound)
	fmt.Printf("POST XML records to http://%s/collect; query /records and /stats\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	acc, rej := srv.Received()
	fmt.Printf("shutting down: %d records stored, %d accepted, %d rejected\n", srv.Store.Len(), acc, rej)
}
