// Command campd runs one node of the distributed campaign service —
// the store, a worker, or the coordinator — so a sweep can be sharded
// across processes (and, with real addresses, across hosts).
//
// Usage:
//
//	campd -mode store -addr 127.0.0.1:7600 [-journal DIR]
//	campd -mode worker -id w0 -addr 127.0.0.1:7601 \
//	      -store-url http://127.0.0.1:7600 \
//	      -design tiny -freq 0.5 -seed 1 -sweep 4 [-parallel 2]
//	campd -mode coord -store-url http://127.0.0.1:7600 \
//	      -nodes w0=http://127.0.0.1:7601,w1=http://127.0.0.1:7602 \
//	      -design tiny -freq 0.5 -seed 1 -sweep 4
//
// Every process derives the identical campaign point list from the
// same sweep flags (-design/-freq/-seed/-sweep/-effort), so the
// coordinator addresses work by point index and assembles results by
// content key. The coordinator's stdout is byte-identical to
// `sprflow -sweep` with the same flags, at any node count, including
// after killing workers mid-campaign. The store's -journal DIR makes
// results durable: restart the store and finished points are served,
// not recomputed.
//
// Observability: every worker and store serves /metrics (live counters,
// including chaos.fault.injected.* and dist.rpc.retried, plus
// runtime.goroutines / runtime.heap.alloc gauges) and /debug/pprof on
// its own listen address. The coordinator's -metrics-addr additionally
// hosts the span collector at /v1/spans: give workers
// -span-ship http://COORD_METRICS/v1/spans and -trace on the
// coordinator writes one stitched Chrome trace for the whole fleet.
// The store's -warehouse DIR opens the WAL-backed METRICS warehouse
// (served under /warehouse/ on its -metrics-addr); workers feed it via
// -warehouse-url.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/warehouse"
)

// drainTimeout bounds a graceful shutdown: past it, in-flight work is
// abandoned and the process exits anyway (an operator's kill must win).
const drainTimeout = 30 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "", "store, worker, or coord")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (store and worker modes)")
	journalDir := flag.String("journal", "", "store WAL directory (store mode; \"\" = memory only)")
	storeURL := flag.String("store-url", "", "result store base URL (worker and coord modes)")
	id := flag.String("id", "", "worker node ID (worker mode; must match -nodes entry)")
	nodeList := flag.String("nodes", "", "comma-separated id=url worker list (coord mode)")
	design := flag.String("design", "pulpino", "design: pulpino, cpu, artificial, tiny")
	freq := flag.Float64("freq", 0.5, "base target frequency, GHz")
	seed := flag.Int64("seed", 1, "base seed")
	effort := flag.Int("effort", 2, "synthesis effort 1..3")
	sweep := flag.Int("sweep", 4, "seeds per frequency")
	parallel := flag.Int("parallel", 0, "worker concurrency / coord slots per node (0 = one per CPU)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage hung-tool watchdog deadline (0 = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve the central metrics server on this address (all modes; store mode mounts the warehouse API here, coord mode the span collector)")
	traceFile := flag.String("trace", "", "arm tracing; coord mode writes the fleet's stitched Chrome trace here at exit")
	spanRetention := flag.Int("span-retention", 0, "cap retained finished spans (0 = default 64k ≈ 8 MB bound, <0 = unbounded)")
	spanShip := flag.String("span-ship", "", "worker/store: drain finished spans to this collector URL (the coord's /v1/spans) so the coordinator's trace is fleet-stitched")
	warehouseDir := flag.String("warehouse", "", "store mode: open a WAL-backed METRICS warehouse at DIR and serve its API under /warehouse/ on -metrics-addr (\"mem\" = in-memory)")
	warehouseURL := flag.String("warehouse-url", "", "worker mode: ingest one METRICS record per flow stage per point into the warehouse API at this base URL")
	flag.Parse()

	switch *mode {
	case "store":
		return runStore(*addr, *journalDir, nodeObs{
			metricsAddr: *metricsAddr, traceFile: *traceFile,
			retention: *spanRetention, shipURL: *spanShip,
			warehouseDir: *warehouseDir, node: "store",
		})
	case "worker", "coord":
	default:
		fmt.Fprintln(os.Stderr, "campd: -mode must be store, worker, or coord")
		return 2
	}

	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "campd: -store-url required")
		return 2
	}
	scfg, err := sweepConfig(*design, *freq, *seed, *effort, *sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scfg.Workers = *parallel
	scfg.StageTimeout = *stageTimeout
	pts, err := repro.CampaignPoints(scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	client := dist.NewStoreClient(*storeURL)

	if *mode == "worker" {
		return runWorker(*id, *addr, pts, client, *parallel, scfg, nodeObs{
			metricsAddr: *metricsAddr, traceFile: *traceFile,
			retention: *spanRetention, shipURL: *spanShip,
			warehouseURL: *warehouseURL, node: *id,
		})
	}
	return runCoord(*nodeList, pts, scfg, client, *parallel, nodeObs{
		metricsAddr: *metricsAddr, traceFile: *traceFile,
		retention: *spanRetention, node: "coord",
	})
}

// nodeObs carries the observability flags into the mode runners.
type nodeObs struct {
	metricsAddr  string
	traceFile    string
	retention    int
	shipURL      string
	warehouseDir string
	warehouseURL string
	node         string
}

// nodeID derives a stable 16-bit span-id namespace from the node name,
// never 0 (0 is the single-process default and would collide with the
// coordinator). The coordinator itself keeps namespace 0.
func nodeID(node string) uint16 {
	if node == "coord" {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, node) //nolint:errcheck
	id := uint16(h.Sum32())
	if id == 0 {
		id = 1
	}
	return id
}

// setupObs arms the shared observability stack for one campd process:
// tracing (shipped to the coordinator's collector when shipURL is set),
// the central metrics server when requested, and the periodic runtime
// gauges every node exposes on its own /metrics (satellite health:
// runtime.goroutines, runtime.heap.alloc).
func setupObs(o nodeObs, aux map[string]http.Handler) (flush func(), err error) {
	obsFlush, err := obs.SetupCfg(obs.Config{
		TraceFile:     o.traceFile,
		MetricsAddr:   o.metricsAddr,
		SpanRetention: o.retention,
		NodeID:        nodeID(o.node),
		ShipURL:       o.shipURL,
		ShipNode:      o.node,
		Aux:           aux,
		Gauges:        time.Second,
	})
	if err != nil {
		return nil, err
	}
	return obsFlush, nil
}

// sweepConfig derives the campaign spec from the shared sweep flags —
// the same derivation sprflow's -sweep uses, so the two binaries agree
// on the point list byte-for-byte.
func sweepConfig(design string, freq float64, seed int64, effort, nSeeds int) (repro.SweepConfig, error) {
	var spec repro.DesignSpec
	switch design {
	case "pulpino":
		spec = repro.PulpinoProxy(seed)
	case "cpu":
		spec = repro.EmbeddedCPU(seed)
	case "artificial":
		spec = repro.Artificial(seed)
	case "tiny":
		spec = repro.TinyDesign(seed)
	default:
		return repro.SweepConfig{}, fmt.Errorf("campd: unknown design %q", design)
	}
	seeds := make([]int64, nSeeds)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	return repro.SweepConfig{
		Design: repro.NewDesign(repro.DefaultLibrary(), spec),
		Base:   repro.FlowOptions{SynthEffort: effort},
		Freqs:  []float64{0.8 * freq, freq, 1.2 * freq},
		Seeds:  seeds,
	}, nil
}

func runStore(addr, journalDir string, o nodeObs) int {
	var aux map[string]http.Handler
	var wh *warehouse.Warehouse
	if o.warehouseDir != "" {
		dir := o.warehouseDir
		if dir == "mem" {
			dir = ""
		}
		var err error
		wh, err = warehouse.Open(dir, journal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer wh.Close()
		aux = map[string]http.Handler{
			"/warehouse/": http.StripPrefix("/warehouse", warehouse.NewHandler(wh)),
		}
	}
	flush, err := setupObs(o, aux)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer flush()
	store, err := dist.OpenStore(journalDir, journal.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer store.Close()
	srv := dist.NewStoreServer(store)
	bound, err := srv.Start(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if journalDir != "" {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "store: recovered %d entries (%d corrupt) from %s\n",
			st.Recovered, st.Corrupt, journalDir)
	}
	if wh != nil && o.metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "store: -warehouse is open but has no HTTP surface; set -metrics-addr to serve /warehouse/")
	}
	fmt.Printf("campd store listening on %s\n", bound)
	waitSignal()
	// Graceful: finish in-flight puts (so every acknowledged entry is in
	// the WAL), then close the journal cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "store: shutdown: %v\n", err)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "store: %d entries, %d claims outstanding\n", st.Entries, st.Claims)
	if wh != nil {
		ws := wh.Stats()
		fmt.Fprintf(os.Stderr, "warehouse: %d records (%d deduped, %d replayed, %d torn tails)\n",
			ws.Records, ws.Deduped, ws.Replayed, ws.Torn)
	}
	return 0
}

func runWorker(id, addr string, pts []campaign.Point, client *dist.StoreClient, parallel int, scfg repro.SweepConfig, o nodeObs) int {
	if id == "" {
		fmt.Fprintln(os.Stderr, "campd: worker mode needs -id")
		return 2
	}
	flush, err := setupObs(o, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer flush()
	var emit *warehouse.Emitter
	var obsv flow.Observer
	if o.warehouseURL != "" {
		keys := make([]string, len(pts))
		for i, p := range pts {
			keys[i] = p.Options.Key()
		}
		emit = warehouse.NewEmitter(repro.CampaignID(pts), id, keys, warehouse.NewClient(o.warehouseURL))
		obsv = emit
	}
	w := dist.NewWorker(dist.WorkerConfig{
		ID:           id,
		Points:       pts,
		Store:        client,
		Workers:      parallel,
		StageTimeout: scfg.StageTimeout,
		Observer:     obsv,
	})
	bound, err := w.Start(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("campd worker %s listening on %s (%d points known)\n", id, bound, len(pts))
	waitSignal()
	// Graceful: refuse new runs, finish in-flight points, backfill the
	// store backlog, release pooled connections — nothing computed here
	// is lost and the coordinator sees clean 503s while we drain.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: drain: %v\n", id, err)
	}
	if emit != nil {
		emit.Flush()
	}
	fmt.Fprintf(os.Stderr, "worker %s: %d points completed\n", id, w.Completed())
	return 0
}

func runCoord(nodeList string, pts []campaign.Point, scfg repro.SweepConfig, client *dist.StoreClient, parallel int, o nodeObs) int {
	// The coordinator hosts the span collector: workers -span-ship their
	// finished spans here, and the -trace file written at exit is the
	// fleet's single stitched timeline. Resolved lazily so the handler
	// sees the tracer setupObs arms.
	aux := map[string]http.Handler{
		"/v1/spans": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			t := trace.Active()
			if t == nil {
				http.Error(w, "tracing is off (-trace not set)", http.StatusServiceUnavailable)
				return
			}
			trace.NewCollectorHandler(t).ServeHTTP(w, r)
		}),
	}
	flush, err := setupObs(o, aux)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer flush()
	var nodes []dist.Node
	for _, entry := range strings.Split(nodeList, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		nid, url, ok := strings.Cut(entry, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "campd: bad -nodes entry %q (want id=url)\n", entry)
			return 2
		}
		nodes = append(nodes, dist.Node{ID: nid, URL: url, Slots: campaign.Workers(parallel)})
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "campd: coord mode needs -nodes id=url[,id=url...]")
		return 2
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Points: pts, Nodes: nodes, Store: client,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// A signal cancels the campaign context: runners stop dispatching,
	// probers exit, and Run returns the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := coord.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		return 1
	}
	res := repro.SweepResult{Points: make([]repro.SweepPoint, len(results))}
	for i, r := range results {
		res.Points[i] = repro.SweepPoint{
			FreqGHz:    pts[i].Options.TargetFreqGHz,
			Seed:       pts[i].Options.Seed,
			Met:        r.Met,
			WNSPs:      r.WNSPs,
			AreaUm2:    r.AreaUm2,
			PowerNW:    r.PowerNW,
			MaxFreqGHz: r.MaxFreqGHz,
		}
	}
	res.Print(os.Stdout)
	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "coord: %d points, %d node deaths, %d reassigned\n",
		len(results), st.Deaths, st.Reassigned)
	if o.traceFile != "" && o.metricsAddr != "" {
		// Workers drain finished spans to /v1/spans on a 500ms cadence; a
		// campaign shorter than one tick would otherwise end with the
		// collector torn down before the first batch arrives. Linger two
		// ticks so the stitched trace includes every node's spans.
		time.Sleep(collectLinger)
	}
	return 0
}

// collectLinger is how long the coordinator keeps its span collector up
// after the campaign completes (two worker ship intervals plus slack).
const collectLinger = 1200 * time.Millisecond

// waitSignal blocks until SIGINT or SIGTERM. The seed only caught
// os.Interrupt, so a SIGTERM (the kill(1) and orchestrator default)
// skipped every drain path and died with claims held and journal
// buffers unflushed.
func waitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
}
