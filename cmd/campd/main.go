// Command campd runs one node of the distributed campaign service —
// the store, a worker, or the coordinator — so a sweep can be sharded
// across processes (and, with real addresses, across hosts).
//
// Usage:
//
//	campd -mode store -addr 127.0.0.1:7600 [-journal DIR]
//	campd -mode worker -id w0 -addr 127.0.0.1:7601 \
//	      -store-url http://127.0.0.1:7600 \
//	      -design tiny -freq 0.5 -seed 1 -sweep 4 [-parallel 2]
//	campd -mode coord -store-url http://127.0.0.1:7600 \
//	      -nodes w0=http://127.0.0.1:7601,w1=http://127.0.0.1:7602 \
//	      -design tiny -freq 0.5 -seed 1 -sweep 4
//
// Every process derives the identical campaign point list from the
// same sweep flags (-design/-freq/-seed/-sweep/-effort), so the
// coordinator addresses work by point index and assembles results by
// content key. The coordinator's stdout is byte-identical to
// `sprflow -sweep` with the same flags, at any node count, including
// after killing workers mid-campaign. The store's -journal DIR makes
// results durable: restart the store and finished points are served,
// not recomputed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/dist"
	"repro/internal/journal"
)

// drainTimeout bounds a graceful shutdown: past it, in-flight work is
// abandoned and the process exits anyway (an operator's kill must win).
const drainTimeout = 30 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "", "store, worker, or coord")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (store and worker modes)")
	journalDir := flag.String("journal", "", "store WAL directory (store mode; \"\" = memory only)")
	storeURL := flag.String("store-url", "", "result store base URL (worker and coord modes)")
	id := flag.String("id", "", "worker node ID (worker mode; must match -nodes entry)")
	nodeList := flag.String("nodes", "", "comma-separated id=url worker list (coord mode)")
	design := flag.String("design", "pulpino", "design: pulpino, cpu, artificial, tiny")
	freq := flag.Float64("freq", 0.5, "base target frequency, GHz")
	seed := flag.Int64("seed", 1, "base seed")
	effort := flag.Int("effort", 2, "synthesis effort 1..3")
	sweep := flag.Int("sweep", 4, "seeds per frequency")
	parallel := flag.Int("parallel", 0, "worker concurrency / coord slots per node (0 = one per CPU)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage hung-tool watchdog deadline (0 = off)")
	flag.Parse()

	switch *mode {
	case "store":
		return runStore(*addr, *journalDir)
	case "worker", "coord":
	default:
		fmt.Fprintln(os.Stderr, "campd: -mode must be store, worker, or coord")
		return 2
	}

	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "campd: -store-url required")
		return 2
	}
	scfg, err := sweepConfig(*design, *freq, *seed, *effort, *sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scfg.Workers = *parallel
	scfg.StageTimeout = *stageTimeout
	pts, err := repro.CampaignPoints(scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	client := dist.NewStoreClient(*storeURL)

	if *mode == "worker" {
		return runWorker(*id, *addr, pts, client, *parallel, scfg)
	}
	return runCoord(*nodeList, pts, scfg, client, *parallel)
}

// sweepConfig derives the campaign spec from the shared sweep flags —
// the same derivation sprflow's -sweep uses, so the two binaries agree
// on the point list byte-for-byte.
func sweepConfig(design string, freq float64, seed int64, effort, nSeeds int) (repro.SweepConfig, error) {
	var spec repro.DesignSpec
	switch design {
	case "pulpino":
		spec = repro.PulpinoProxy(seed)
	case "cpu":
		spec = repro.EmbeddedCPU(seed)
	case "artificial":
		spec = repro.Artificial(seed)
	case "tiny":
		spec = repro.TinyDesign(seed)
	default:
		return repro.SweepConfig{}, fmt.Errorf("campd: unknown design %q", design)
	}
	seeds := make([]int64, nSeeds)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	return repro.SweepConfig{
		Design: repro.NewDesign(repro.DefaultLibrary(), spec),
		Base:   repro.FlowOptions{SynthEffort: effort},
		Freqs:  []float64{0.8 * freq, freq, 1.2 * freq},
		Seeds:  seeds,
	}, nil
}

func runStore(addr, journalDir string) int {
	store, err := dist.OpenStore(journalDir, journal.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer store.Close()
	srv := dist.NewStoreServer(store)
	bound, err := srv.Start(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if journalDir != "" {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "store: recovered %d entries (%d corrupt) from %s\n",
			st.Recovered, st.Corrupt, journalDir)
	}
	fmt.Printf("campd store listening on %s\n", bound)
	waitSignal()
	// Graceful: finish in-flight puts (so every acknowledged entry is in
	// the WAL), then close the journal cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "store: shutdown: %v\n", err)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "store: %d entries, %d claims outstanding\n", st.Entries, st.Claims)
	return 0
}

func runWorker(id, addr string, pts []campaign.Point, client *dist.StoreClient, parallel int, scfg repro.SweepConfig) int {
	if id == "" {
		fmt.Fprintln(os.Stderr, "campd: worker mode needs -id")
		return 2
	}
	w := dist.NewWorker(dist.WorkerConfig{
		ID:           id,
		Points:       pts,
		Store:        client,
		Workers:      parallel,
		StageTimeout: scfg.StageTimeout,
	})
	bound, err := w.Start(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("campd worker %s listening on %s (%d points known)\n", id, bound, len(pts))
	waitSignal()
	// Graceful: refuse new runs, finish in-flight points, backfill the
	// store backlog, release pooled connections — nothing computed here
	// is lost and the coordinator sees clean 503s while we drain.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: drain: %v\n", id, err)
	}
	fmt.Fprintf(os.Stderr, "worker %s: %d points completed\n", id, w.Completed())
	return 0
}

func runCoord(nodeList string, pts []campaign.Point, scfg repro.SweepConfig, client *dist.StoreClient, parallel int) int {
	var nodes []dist.Node
	for _, entry := range strings.Split(nodeList, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		nid, url, ok := strings.Cut(entry, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "campd: bad -nodes entry %q (want id=url)\n", entry)
			return 2
		}
		nodes = append(nodes, dist.Node{ID: nid, URL: url, Slots: campaign.Workers(parallel)})
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "campd: coord mode needs -nodes id=url[,id=url...]")
		return 2
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Points: pts, Nodes: nodes, Store: client,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// A signal cancels the campaign context: runners stop dispatching,
	// probers exit, and Run returns the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := coord.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		return 1
	}
	res := repro.SweepResult{Points: make([]repro.SweepPoint, len(results))}
	for i, r := range results {
		res.Points[i] = repro.SweepPoint{
			FreqGHz:    pts[i].Options.TargetFreqGHz,
			Seed:       pts[i].Options.Seed,
			Met:        r.Met,
			WNSPs:      r.WNSPs,
			AreaUm2:    r.AreaUm2,
			PowerNW:    r.PowerNW,
			MaxFreqGHz: r.MaxFreqGHz,
		}
	}
	res.Print(os.Stdout)
	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "coord: %d points, %d node deaths, %d reassigned\n",
		len(results), st.Deaths, st.Reassigned)
	return 0
}

// waitSignal blocks until SIGINT or SIGTERM. The seed only caught
// os.Interrupt, so a SIGTERM (the kill(1) and orchestrator default)
// skipped every drain path and died with claims held and journal
// buffers unflushed.
func waitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
}
