// Command mabsched reproduces the paper's Fig. 7: multi-armed-bandit
// sampling of SP&R flow targets with K concurrent tool runs per
// iteration, plus the cross-algorithm comparison (Thompson vs softmax vs
// epsilon-greedy vs UCB1).
//
// Usage:
//
//	mabsched [-scale small|paper] [-seed 1] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	parallel := flag.Int("parallel", 0, "concurrent runs (0 = one per CPU); results are identical at any setting")
	flag.Parse()

	repro.SetWorkers(*parallel)
	s := repro.Small
	if *scale == "paper" {
		s = repro.Paper
	}
	res, err := repro.Fig7(s, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
}
