// Command mlstudy runs the ML-application studies: the accuracy-cost
// curve with ML correction (Fig. 8), the "longer ropes" prediction-span
// study, the multiphysics droop/timing loop, the IP-preserving sharing
// check, the bandit robustness grid, and Stage-4 Q-learning.
//
// Usage:
//
//	mlstudy [-study fig8|ropes|multiphysics|sharing|bandits|rl|all]
//	        [-scale small|paper] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	study := flag.String("study", "all", "fig8, ropes, multiphysics, sharing, bandits, rl, lastmile, structure, chickenegg, corners, schedule, or all")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	s := repro.Small
	if *scale == "paper" {
		s = repro.Paper
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run := func(name string) {
		switch name {
		case "fig8":
			r, err := repro.Fig8(s, *seed)
			if err != nil {
				fail(err)
			}
			r.Print(os.Stdout)
		case "ropes":
			r, err := repro.Ropes(s, *seed)
			if err != nil {
				fail(err)
			}
			r.Print(os.Stdout)
		case "multiphysics":
			r, err := repro.Multiphysics(s, *seed)
			if err != nil {
				fail(err)
			}
			r.Print(os.Stdout)
		case "sharing":
			repro.Sharing(s, *seed).Print(os.Stdout)
		case "bandits":
			repro.Fig7Robustness(*seed).Print(os.Stdout)
		case "rl":
			repro.StageFourRL(s, *seed).Print(os.Stdout)
		case "lastmile":
			repro.LastMile(s, *seed).Print(os.Stdout)
		case "structure":
			repro.NaturalStructure(s, *seed).Print(os.Stdout)
		case "chickenegg":
			repro.ChickenEgg(s, *seed).Print(os.Stdout)
		case "corners":
			r, err := repro.MissingCorner(s, *seed)
			if err != nil {
				fail(err)
			}
			r.Print(os.Stdout)
		case "schedule":
			r, err := repro.ProjectSchedule()
			if err != nil {
				fail(err)
			}
			r.Print(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "unknown study %q\n", name)
			os.Exit(2)
		}
	}
	if *study == "all" {
		for _, name := range []string{"fig8", "ropes", "multiphysics", "sharing", "bandits", "rl", "lastmile", "structure", "chickenegg", "corners", "schedule"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*study)
}
