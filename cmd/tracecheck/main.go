// Command tracecheck validates and summarizes a Chrome trace_event
// JSON file written by sprflow/doomed -trace: it proves the file is
// well-formed (parseable, non-empty, complete events with sane
// timestamps) and prints a per-span-name table — counts and total
// time — so a trace can be sanity-checked without opening Perfetto.
//
// Usage:
//
//	tracecheck trace.json [-require campaign.point,flow.run] [-require-arg node=w0,node=w1]
//
// Exits nonzero on a malformed or empty trace, when a -require'd span
// name is absent, or when no event carries a -require-arg'd key=value
// arg (how scripts/check.sh obs proves a stitched multi-node trace has
// spans from every node). scripts/check.sh trace uses it to gate the
// end-to-end -trace flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args"`
}

type traceDoc struct {
	TraceEvents  []event `json:"traceEvents"`
	DroppedSpans int64   `json:"droppedSpans"`
}

func main() {
	os.Exit(run())
}

func run() int {
	require := flag.String("require", "", "comma-separated span names that must appear")
	requireArg := flag.String("require-arg", "", "comma-separated key=value pairs; each must appear in some event's args (e.g. node=w0,node=w1 proves spans from both nodes landed in the stitched trace)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require a,b] trace.json")
		return 2
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		return 1
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s is not valid trace JSON: %v\n", path, err)
		return 1
	}
	if len(doc.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s has no trace events\n", path)
		return 1
	}

	counts := map[string]int{}
	totalUs := map[string]float64{}
	lanes := map[uint64]struct{}{}
	argSeen := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Ts < 0 || ev.Dur < 0 || ev.Tid == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: malformed event %d: %+v\n", i, ev)
			return 1
		}
		counts[ev.Name]++
		totalUs[ev.Name] += ev.Dur
		lanes[ev.Tid] = struct{}{}
		for k, v := range ev.Args {
			argSeen[k+"="+v]++
		}
	}

	if *require != "" {
		missing := false
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && counts[name] == 0 {
				fmt.Fprintf(os.Stderr, "tracecheck: required span %q absent from %s\n", name, path)
				missing = true
			}
		}
		if missing {
			return 1
		}
	}
	if *requireArg != "" {
		missing := false
		for _, pair := range strings.Split(*requireArg, ",") {
			pair = strings.TrimSpace(pair)
			if pair != "" && argSeen[pair] == 0 {
				fmt.Fprintf(os.Stderr, "tracecheck: no event with arg %q in %s\n", pair, path)
				missing = true
			}
		}
		if missing {
			return 1
		}
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events, %d span names, %d lanes, %d dropped\n",
		path, len(doc.TraceEvents), len(names), len(lanes), doc.DroppedSpans)
	for _, n := range names {
		fmt.Printf("  %-24s %6d spans  %12.1f us total\n", n, counts[n], totalUs[n])
	}
	return 0
}
