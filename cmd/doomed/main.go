// Command doomed reproduces the paper's doomed-run prediction
// experiments: the DRV trajectories of Fig. 9, the MDP strategy card of
// Fig. 10, and the consecutive-STOP error table (Table 1).
//
// Usage:
//
//	doomed -fig9          # representative DRV trajectories
//	doomed -card          # the strategy card
//	doomed -table         # the Type1/Type2 error table
//	doomed -doomed-live   # live abort: card STOPs runs mid-route and
//	                      # reports reclaimed license-iterations vs the
//	                      # post-hoc baseline
//	doomed -speculate     # speculative stage overlap: a downstream flow
//	                      # sweep run against the artifact-memory oracle,
//	                      # with deterministic hit/commit accounting and
//	                      # zero QoR drift vs the reference
//	doomed -all           # everything
//	      [-scale small|paper] [-seed 1] [-parallel N]
//	      [-journal DIR] [-resume]
//	      [-trace trace.json] [-metrics-addr :8080]
//
// With -journal DIR the logfile corpora behind every experiment are
// generated crash-safely: each completed detailed-route run is durably
// appended to a write-ahead journal, and a rerun after a kill (-resume,
// or simply the same -journal) replays them bit-identically instead of
// regenerating — at paper scale that is thousands of router runs.
//
// With -trace FILE the corpus generation is traced (route iterations,
// journal appends) and a Chrome trace_event JSON file is written at
// exit; -metrics-addr serves the live /metrics and /debug endpoints.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig9 := flag.Bool("fig9", false, "print DRV trajectories (Fig. 9)")
	card := flag.Bool("card", false, "print the MDP strategy card (Fig. 10)")
	table := flag.Bool("table", false, "print the consecutive-STOP error table (Table 1)")
	live := flag.Bool("doomed-live", false, "run the test corpus under live MDP supervision and report reclaimed license-iterations")
	speculate := flag.Bool("speculate", false, "run a downstream flow sweep with speculative stage overlap and report deterministic hit/commit accounting")
	all := flag.Bool("all", false, "print everything")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	parallel := flag.Int("parallel", 0, "concurrent runs (0 = one per CPU); results are identical at any setting")
	placeWorkers := flag.Int("place-workers", 0, "speculative parallel annealer workers for corpus substrates (0 = serial placer)")
	routeTiles := flag.Int("route-tiles", 0, "region-sharded global router tiles per side for corpus substrates (0/1 = serial router)")
	journalDir := flag.String("journal", "", "durable corpus journal directory (enables checkpoint/resume)")
	resume := flag.Bool("resume", false, "resume corpora from an existing -journal")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file of the run (view in chrome://tracing or Perfetto)")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics and /debug endpoints on this address (e.g. :8080)")
	flag.Parse()

	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -journal DIR")
		return 2
	}
	flush, err := obs.Setup(*traceFile, *metricsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer flush()
	repro.SetWorkers(*parallel)
	repro.SetKernelParallel(*placeWorkers, *routeTiles)
	repro.SetCorpusJournal(*journalDir)
	s := repro.Small
	if *scale == "paper" {
		s = repro.Paper
	}
	if !*fig9 && !*card && !*table && !*live && !*speculate && !*all {
		*all = true
	}
	if *all || *fig9 {
		repro.Fig9(s, *seed).Print(os.Stdout)
		fmt.Println()
	}
	if *all || *card {
		repro.Fig10(s, *seed).Print(os.Stdout)
		fmt.Println()
	}
	if *all || *table {
		repro.Table1(s, *seed).Print(os.Stdout)
		if *all || *live {
			fmt.Println()
		}
	}
	if *all || *live {
		repro.DoomedLive(s, *seed).Print(os.Stdout)
	}
	if *all || *speculate {
		if *all || *live {
			fmt.Println()
		}
		repro.SpecOverlap(s, *seed).Print(os.Stdout)
	}
	if *journalDir != "" {
		// Journal accounting goes to stderr so experiment output stays
		// byte-comparable between resumed and uninterrupted runs.
		metrics.Default.WritePrefix(os.Stderr, "logfile.journal.")
		if err := repro.CorpusJournalErr(); err != nil {
			fmt.Fprintf(os.Stderr, "journal degraded: %v\n", err)
			return 1
		}
	}
	return 0
}
