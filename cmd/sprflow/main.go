// Command sprflow runs the simulated SP&R implementation flow on a
// synthetic design and prints the QOR report — the atomic tool run every
// experiment in this repository drives.
//
// Usage:
//
//	sprflow -design pulpino -freq 0.6 -seed 1 [-effort 2] [-robot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	design := flag.String("design", "pulpino", "design: pulpino, cpu, artificial, tiny")
	freq := flag.Float64("freq", 0.5, "target frequency, GHz")
	seed := flag.Int64("seed", 1, "run seed")
	effort := flag.Int("effort", 2, "synthesis effort 1..3")
	robot := flag.Bool("robot", false, "run as a Stage-1 robot engineer (retry to success)")
	flag.Parse()

	var spec repro.DesignSpec
	switch *design {
	case "pulpino":
		spec = repro.PulpinoProxy(*seed)
	case "cpu":
		spec = repro.EmbeddedCPU(*seed)
	case "artificial":
		spec = repro.Artificial(*seed)
	case "tiny":
		spec = repro.TinyDesign(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	d := repro.NewDesign(repro.DefaultLibrary(), spec)
	stats := d.ComputeStats()
	fmt.Printf("design %s: %d cells, %d registers, %d nets, depth %d\n",
		d.Name, stats.Cells, stats.Registers, stats.Nets, stats.MaxLevel)

	opts := repro.FlowOptions{TargetFreqGHz: *freq, Seed: *seed, SynthEffort: *effort}
	if *robot {
		out := (repro.Robot{Design: d, Base: opts}).Execute()
		fmt.Printf("robot: %d attempts, succeeded=%t, runtime proxy %.1f\n",
			len(out.Attempts), out.Succeeded, out.RuntimeProxy)
		for i, a := range out.Attempts {
			fmt.Printf("  attempt %d: %.3f GHz -> met=%t wns=%.1fps drvs=%d  %s\n",
				i, a.Options.TargetFreqGHz, a.Result.Met, a.Result.WNSPs, a.Result.Route.Final, a.Reason)
		}
		if !out.Succeeded {
			os.Exit(1)
		}
		return
	}

	res := repro.RunFlow(d, opts)
	fmt.Printf("synth:   area %.1f um2, wns %.1f ps, %d upsized, %d buffers\n",
		res.Synth.AreaUm2, res.Synth.WNSPs, res.Synth.Upsized, res.Synth.BuffersAdded)
	fmt.Printf("place:   hpwl %.1f um (from %.1f)\n", res.Place.HPWLUm, res.Place.InitialHPWLUm)
	fmt.Printf("cts:     %d buffers, skew %.1f ps, latency %.1f ps\n",
		res.CTS.Buffers, res.CTS.MaxSkewPs, res.CTS.LatencyPs)
	fmt.Printf("groute:  wirelength %.1f um, overflow %.1f (peak %.1f), margin %.3f\n",
		res.Global.WirelengthUm, res.Global.OverflowTotal, res.Global.OverflowPeak, res.Global.CongestionMargin())
	fmt.Printf("droute:  %d -> %d DRVs over %d iterations (success=%t)\n",
		res.Route.DRVs[0], res.Route.Final, res.Route.IterationsRun, res.Route.Success)
	fmt.Printf("signoff: wns %.1f ps, tns %.1f ps, max freq %.3f GHz\n",
		res.Sign.WNSPs, res.Sign.TNSPs, res.Sign.MaxFreqGHz)
	fmt.Printf("QOR:     area %.1f um2, power %.1f nW, met=%t, runtime proxy %.1f\n",
		res.AreaUm2, res.PowerNW, res.Met, res.RuntimeProxy)
	if !res.Met {
		os.Exit(1)
	}
}
