// Command sprflow runs the simulated SP&R implementation flow on a
// synthetic design and prints the QOR report — the atomic tool run every
// experiment in this repository drives.
//
// Usage:
//
//	sprflow -design pulpino -freq 0.6 -seed 1 [-effort 2] [-robot]
//	sprflow -design tiny -sweep 4 [-parallel N] [-journal DIR] [-resume]
//	sprflow -design tiny -sweep 4 -speculate [-spec-tol 1]
//	sprflow -design tiny -sweep 4 -dist-nodes 4 [-journal DIR]
//	sprflow -design tiny -sweep 4 -dist-nodes 4 -chaos-profile partition -chaos-seed 7
//	sprflow -design tiny -sweep 4 -trace trace.json -metrics-addr :8080
//
// A -sweep runs the full frequency x seed cross on the campaign engine
// and prints one stable line per point to stdout (resume accounting
// goes to stderr). With -journal DIR every completed point is durable:
// kill -9 the sweep at any moment, rerun it with -resume, and the
// output is byte-identical to the uninterrupted run.
//
// With -dist-nodes N the sweep runs through the distributed campaign
// service instead: a loopback result store, N worker nodes (each with
// -parallel local workers), and a coordinator sharding points by
// content key. stdout is byte-identical to the single-process sweep at
// any node count; -journal DIR becomes the shared store's WAL, so a
// killed deployment rerun with the same flags recomputes only the
// points that never reached the store.
//
// With -chaos-profile NAME a deterministic network fault schedule
// (internal/chaos) is injected into every link of the -dist-nodes
// deployment — drops, 503s, stalls, duplicated deliveries, scheduled
// partitions — keyed on -chaos-seed. stdout remains byte-identical to
// the single-process sweep under any schedule that leaves at least one
// worker reachable; failure-handling counters go to stderr.
//
// With -speculate the sweep overlaps downstream stages on predicted
// upstream artifacts drawn from a sweep-local artifact memory; commit
// decisions are pure functions of (prediction, real result), so the
// point lines on stdout are byte-identical to a non-speculative sweep
// at any -parallel setting. Hit/miss and chain accounting goes to
// stderr.
//
// With -trace FILE the whole run is traced — campaign points, flow
// stages, router iterations, scheduler queue waits, journal fsyncs —
// and a Chrome trace_event JSON file is written at exit (open it in
// chrome://tracing or https://ui.perfetto.dev). With -metrics-addr the
// live introspection endpoints (/metrics, /debug/spans, /debug/hist,
// /debug/pprof) are served while the run is in flight; -span-retention
// bounds the tracer's finished-span memory. In -dist-nodes mode the
// trace is stitched: worker and store spans parent under the
// coordinator's dispatch attempts via propagated Trace-Id/Span-Id
// headers, so retries and reroutes are visible child spans.
//
// With -warehouse DIR every flow stage of every sweep point lands as
// one structured record in a WAL-backed METRICS warehouse (queryable
// via the /warehouse/ API on -metrics-addr; live-tailable via its
// /v1/tail SSE stream). -warehouse-dump FILE writes the campaign's
// canonical dump, which is byte-identical across node counts and after
// kill -9/replay.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

func main() {
	os.Exit(run())
}

func run() int {
	design := flag.String("design", "pulpino", "design: pulpino, cpu, artificial, tiny")
	freq := flag.Float64("freq", 0.5, "target frequency, GHz")
	seed := flag.Int64("seed", 1, "run seed")
	effort := flag.Int("effort", 2, "synthesis effort 1..3")
	robot := flag.Bool("robot", false, "run as a Stage-1 robot engineer (retry to success)")
	sweep := flag.Int("sweep", 0, "run a crash-safe QOR sweep with this many seeds per frequency")
	parallel := flag.Int("parallel", 0, "sweep concurrency (0 = one per CPU); results identical at any setting")
	journalDir := flag.String("journal", "", "durable journal directory for -sweep (enables checkpoint/resume)")
	resume := flag.Bool("resume", false, "resume a killed -sweep from its -journal (same flags required)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage hung-tool watchdog deadline (0 = off)")
	distNodes := flag.Int("dist-nodes", 0, "run -sweep through the distributed campaign service with this many loopback worker nodes (0 = single-process; stdout identical either way)")
	chaosProfile := flag.String("chaos-profile", "", "inject a deterministic network fault schedule into -dist-nodes: flaky, slow, partition, kill (stdout stays byte-identical)")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for the -chaos-profile coin schedule")
	speculate := flag.Bool("speculate", false, "overlap downstream flow stages on predicted upstream artifacts during -sweep (committed results identical to a non-speculative sweep)")
	specTol := flag.Float64("spec-tol", 0, "speculative commit tolerance on predicted stage scalars, percent (0 = default 1)")
	placeWorkers := flag.Int("place-workers", 0, "speculative parallel annealer workers (0 = serial placer; results identical at any count >= 1)")
	routeTiles := flag.Int("route-tiles", 0, "region-sharded global router tiles per side (0/1 = serial router)")
	routeWorkers := flag.Int("route-workers", 0, "concurrent regions for -route-tiles (0 = all; results identical at any setting)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file of the run (view in chrome://tracing or Perfetto)")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics and /debug endpoints on this address (e.g. :8080)")
	spanRetention := flag.Int("span-retention", -1, "cap retained finished spans (0 = default 64k ≈ 8 MB bound, <0 = unbounded; overflow counts as droppedSpans in the trace file)")
	warehouseDir := flag.String("warehouse", "", "ingest one METRICS record per flow stage per point into a WAL-backed warehouse at DIR during -sweep (\"mem\" = in-memory only)")
	warehouseDump := flag.String("warehouse-dump", "", "write the campaign's canonical warehouse dump (byte-identical across node counts and crash/replay) to FILE after the sweep (- = stdout omitted; requires -warehouse)")
	flag.Parse()

	var wh *warehouse.Warehouse
	if *warehouseDir != "" {
		dir := *warehouseDir
		if dir == "mem" {
			dir = ""
		}
		var err error
		wh, err = warehouse.Open(dir, journal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer wh.Close()
	}
	if *warehouseDump != "" && wh == nil {
		fmt.Fprintln(os.Stderr, "-warehouse-dump requires -warehouse")
		return 2
	}

	var aux map[string]http.Handler
	if wh != nil && *metricsAddr != "" {
		aux = map[string]http.Handler{
			"/warehouse/": http.StripPrefix("/warehouse", warehouse.NewHandler(wh)),
		}
	}
	flush, err := obs.SetupCfg(obs.Config{
		TraceFile:     *traceFile,
		MetricsAddr:   *metricsAddr,
		SpanRetention: *spanRetention,
		Aux:           aux,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer flush()

	var spec repro.DesignSpec
	switch *design {
	case "pulpino":
		spec = repro.PulpinoProxy(*seed)
	case "cpu":
		spec = repro.EmbeddedCPU(*seed)
	case "artificial":
		spec = repro.Artificial(*seed)
	case "tiny":
		spec = repro.TinyDesign(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		return 2
	}
	d := repro.NewDesign(repro.DefaultLibrary(), spec)

	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -journal DIR")
		return 2
	}
	if *speculate && *sweep <= 0 {
		fmt.Fprintln(os.Stderr, "-speculate requires -sweep (a single run has no prior artifacts to predict from)")
		return 2
	}
	if *distNodes > 0 && *sweep <= 0 {
		fmt.Fprintln(os.Stderr, "-dist-nodes requires -sweep")
		return 2
	}
	if *chaosProfile != "" && *distNodes <= 0 {
		fmt.Fprintln(os.Stderr, "-chaos-profile requires -dist-nodes (chaos is injected into the network tier)")
		return 2
	}
	kernels := repro.FlowOptions{
		SynthEffort:  *effort,
		PlaceWorkers: *placeWorkers,
		RouteTiles:   *routeTiles,
		RouteWorkers: *routeWorkers,
	}
	if *sweep > 0 {
		return runSweep(d, *freq, *seed, kernels, sweepConfig{
			seeds:        *sweep,
			parallel:     *parallel,
			journalDir:   *journalDir,
			stageTimeout: *stageTimeout,
			speculate:    *speculate,
			specTol:      *specTol,
			distNodes:    *distNodes,
			chaosProfile: *chaosProfile,
			chaosSeed:    *chaosSeed,
			warehouse:    wh,
			whDump:       *warehouseDump,
		})
	}

	stats := d.ComputeStats()
	fmt.Printf("design %s: %d cells, %d registers, %d nets, depth %d\n",
		d.Name, stats.Cells, stats.Registers, stats.Nets, stats.MaxLevel)

	opts := kernels
	opts.TargetFreqGHz = *freq
	opts.Seed = *seed
	if *robot {
		out := (repro.Robot{Design: d, Base: opts}).Execute()
		fmt.Printf("robot: %d attempts, succeeded=%t, runtime proxy %.1f\n",
			len(out.Attempts), out.Succeeded, out.RuntimeProxy)
		for i, a := range out.Attempts {
			fmt.Printf("  attempt %d: %.3f GHz -> met=%t wns=%.1fps drvs=%d  %s\n",
				i, a.Options.TargetFreqGHz, a.Result.Met, a.Result.WNSPs, a.Result.Route.Final, a.Reason)
		}
		if !out.Succeeded {
			return 1
		}
		return 0
	}

	res := repro.RunFlow(d, opts)
	fmt.Printf("synth:   area %.1f um2, wns %.1f ps, %d upsized, %d buffers\n",
		res.Synth.AreaUm2, res.Synth.WNSPs, res.Synth.Upsized, res.Synth.BuffersAdded)
	fmt.Printf("place:   hpwl %.1f um (from %.1f)\n", res.Place.HPWLUm, res.Place.InitialHPWLUm)
	fmt.Printf("cts:     %d buffers, skew %.1f ps, latency %.1f ps\n",
		res.CTS.Buffers, res.CTS.MaxSkewPs, res.CTS.LatencyPs)
	fmt.Printf("groute:  wirelength %.1f um, overflow %.1f (peak %.1f), margin %.3f\n",
		res.Global.WirelengthUm, res.Global.OverflowTotal, res.Global.OverflowPeak, res.Global.CongestionMargin())
	fmt.Printf("droute:  %d -> %d DRVs over %d iterations (success=%t)\n",
		res.Route.DRVs[0], res.Route.Final, res.Route.IterationsRun, res.Route.Success)
	fmt.Printf("signoff: wns %.1f ps, tns %.1f ps, max freq %.3f GHz\n",
		res.Sign.WNSPs, res.Sign.TNSPs, res.Sign.MaxFreqGHz)
	fmt.Printf("QOR:     area %.1f um2, power %.1f nW, met=%t, runtime proxy %.1f\n",
		res.AreaUm2, res.PowerNW, res.Met, res.RuntimeProxy)
	if !res.Met {
		return 1
	}
	return 0
}

// sweepConfig carries the sweep-only flags into runSweep.
type sweepConfig struct {
	seeds        int
	parallel     int
	journalDir   string
	stageTimeout time.Duration
	speculate    bool
	specTol      float64
	distNodes    int
	chaosProfile string
	chaosSeed    int64
	warehouse    *warehouse.Warehouse
	whDump       string
}

// runSweep executes the crash-safe QOR sweep: nSeeds seeds at three
// target frequencies around base. Point lines go to stdout in point
// order — a stable byte stream — while journal/resume and speculation
// accounting go to stderr, so `diff` between a resumed (or speculative)
// and an uninterrupted (or non-speculative) sweep compares only
// results.
func runSweep(d *repro.Design, baseFreq float64, seed int64, base repro.FlowOptions, cfg sweepConfig) int {
	freqs := []float64{0.8 * baseFreq, baseFreq, 1.2 * baseFreq}
	seeds := make([]int64, cfg.seeds)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	scfg := repro.SweepConfig{
		Design:           d,
		Base:             base,
		Freqs:            freqs,
		Seeds:            seeds,
		Workers:          cfg.parallel,
		JournalDir:       cfg.journalDir,
		StageTimeout:     cfg.stageTimeout,
		Speculate:        cfg.speculate,
		SpecTolerancePct: cfg.specTol,
	}
	if cfg.warehouse != nil {
		scfg.Warehouse = cfg.warehouse
	}
	var res repro.SweepResult
	var err error
	if cfg.distNodes > 0 {
		var dstats dist.CoordStats
		// In dist mode the warehouse is fed over loopback HTTP by every
		// node, so leave the in-process observer unset.
		scfg.Warehouse = nil
		res, err = repro.DistSweep(repro.DistSweepConfig{
			SweepConfig:  scfg,
			Nodes:        cfg.distNodes,
			ChaosProfile: cfg.chaosProfile,
			ChaosSeed:    cfg.chaosSeed,
			Stats:        &dstats,
			Warehouse:    cfg.warehouse,
		})
		// Failure-handling accounting goes to stderr so stdout stays a
		// byte-diffable result stream under any fault schedule.
		fmt.Fprintf(os.Stderr, "dist: deaths=%d suspected=%d recovered=%d rejoined=%d reassigned=%d stolen=%d rerouted=%d\n",
			dstats.Deaths, dstats.Suspected, dstats.Recovered, dstats.Rejoined,
			dstats.Reassigned, dstats.Stolen, dstats.Rerouted)
		if cfg.chaosProfile != "" {
			metrics.Default.WritePrefix(os.Stderr, "chaos.")
		}
	} else {
		res, err = repro.Sweep(scfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep failed: %v\n", err)
		return 1
	}
	if cfg.journalDir != "" {
		rec := res.Recovery
		fmt.Fprintf(os.Stderr, "journal: %d segments, %d records recovered, %d torn tails (%d bytes dropped)\n",
			rec.Segments, rec.Records, rec.TornTails, rec.TornBytes)
		fmt.Fprintf(os.Stderr, "resume: replayed=%d skipped=%d corrupt=%d duplicate=%d\n",
			res.Resume.Replayed, res.Resume.SkippedUnknown, res.Resume.Corrupt, res.Resume.Duplicate)
		if res.JournalErr != nil {
			fmt.Fprintf(os.Stderr, "journal degraded: %v\n", res.JournalErr)
		}
	}
	if cfg.speculate {
		// Speculation accounting: chain and predictor counters mirrored
		// by the campaign (spec.chain.*, spec.stage.*, predict.*).
		metrics.Default.WritePrefix(os.Stderr, "spec.")
		metrics.Default.WritePrefix(os.Stderr, "predict.")
	}
	if cfg.warehouse != nil {
		st := cfg.warehouse.Stats()
		fmt.Fprintf(os.Stderr, "warehouse: %d records (%d deduped, %d replayed, %d torn tails)\n",
			st.Records, st.Deduped, st.Replayed, st.Torn)
		if cfg.whDump != "" {
			pts, perr := repro.CampaignPoints(scfg)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "warehouse dump: %v\n", perr)
				return 1
			}
			f, ferr := os.Create(cfg.whDump)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "warehouse dump: %v\n", ferr)
				return 1
			}
			cfg.warehouse.DumpCanonical(f, repro.CampaignID(pts))
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "warehouse dump: %v\n", cerr)
				return 1
			}
		}
	}
	res.Print(os.Stdout)
	return 0
}
