// Command gwtwopt reproduces the paper's Fig. 6 search strategies:
// go-with-the-winners over gate-sizing threads (6a) and adaptive
// multistart over placement with big-valley measurement (6b).
//
// Usage:
//
//	gwtwopt [-part a|b|both] [-scale small|paper] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	part := flag.String("part", "both", "which panel: a, b, or both")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	s := repro.Small
	if *scale == "paper" {
		s = repro.Paper
	}
	switch *part {
	case "a":
		repro.Fig6a(s, *seed).Print(os.Stdout)
	case "b":
		repro.Fig6b(s, *seed).Print(os.Stdout)
	case "both":
		repro.Fig6a(s, *seed).Print(os.Stdout)
		fmt.Println()
		repro.Fig6b(s, *seed).Print(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown part %q\n", *part)
		os.Exit(2)
	}
}
