package costmodel

import (
	"math"
	"testing"
)

func TestTransistorScaling(t *testing.T) {
	p := Default()
	if got := p.Transistors(p.BaseYear); got != p.BaseTransistors {
		t.Fatalf("base year transistors %v", got)
	}
	if got := p.Transistors(p.BaseYear + int(p.DoublingYears)); math.Abs(got/p.BaseTransistors-2) > 1e-9 {
		t.Fatalf("doubling failed: %v", got/p.BaseTransistors)
	}
}

func TestFootnote1Calibration(t *testing.T) {
	// Paper footnote 1: with innovations through 2013, SOC-CP design
	// cost 2013 = $45.4M; absent post-2013 innovation it grows to
	// ~$3.4B by 2028.
	p := Default()
	inn := DefaultInnovations()
	pts := Project(p, inn, 2013, 2028, 2013)
	cost2013 := pts[0].DesignCostUSD
	cost2028 := pts[len(pts)-1].DesignCostUSD
	if cost2013 < 30e6 || cost2013 > 60e6 {
		t.Errorf("2013 design cost $%.1fM, want ~$45M", cost2013/1e6)
	}
	if cost2028 < 1.5e9 || cost2028 > 6e9 {
		t.Errorf("2028 no-post-2013-DT cost $%.2fB, want ~$3.4B", cost2028/1e9)
	}
}

func TestPost2000Counterfactual(t *testing.T) {
	// Footnote 1: absent post-2000 DT innovations, 2013 cost ~$1B and
	// 2028 ~$70B.
	p := Default()
	inn := DefaultInnovations()
	pts := Project(p, inn, 2013, 2028, 2000)
	cost2013 := pts[0].DesignCostUSD
	cost2028 := pts[len(pts)-1].DesignCostUSD
	if cost2013 < 0.4e9 || cost2013 > 2.5e9 {
		t.Errorf("2013 no-post-2000-DT cost $%.2fB, want ~$1B", cost2013/1e9)
	}
	if cost2028 < 25e9 || cost2028 > 200e9 {
		t.Errorf("2028 no-post-2000-DT cost $%.0fB, want ~$70B", cost2028/1e9)
	}
}

func TestInnovationsKeepCostBounded(t *testing.T) {
	// With innovations delivered on time, design cost stays within the
	// "several tens of $M" ceiling across the horizon (the in-built
	// optimism of the ITRS model).
	p := Default()
	inn := DefaultInnovations()
	pts := Project(p, inn, 2013, 2028, 3000)
	for _, pt := range pts {
		if pt.DesignCostUSD > 120e6 {
			t.Errorf("year %d: cost $%.0fM exceeds ceiling", pt.Year, pt.DesignCostUSD/1e6)
		}
	}
}

func TestInnovationGapDominates(t *testing.T) {
	// The spread between with- and without-innovation trajectories
	// must widen over time (the Fig. 2 divergence).
	p := Default()
	inn := DefaultInnovations()
	with := Project(p, inn, 2014, 2028, 3000)
	without := Project(p, inn, 2014, 2028, 2013)
	prevRatio := 0.0
	for i := range with {
		ratio := without[i].DesignCostUSD / with[i].DesignCostUSD
		if ratio < prevRatio*(1-1e-12) {
			t.Fatalf("cost ratio shrank at %d: %v -> %v", with[i].Year, prevRatio, ratio)
		}
		prevRatio = ratio
	}
	if prevRatio < 10 {
		t.Errorf("final cost ratio %v, want >10x", prevRatio)
	}
}

func TestVerificationShareGrows(t *testing.T) {
	p := Default()
	pts := Project(p, DefaultInnovations(), 1995, 2025, 3000)
	first, last := pts[0], pts[len(pts)-1]
	if last.VerifShare <= first.VerifShare {
		t.Errorf("verification share should grow: %v -> %v", first.VerifShare, last.VerifShare)
	}
	for _, pt := range pts {
		if pt.VerifShare < 0.2 || pt.VerifShare > 0.7 {
			t.Errorf("year %d verif share %v outside clamp", pt.Year, pt.VerifShare)
		}
		if pt.TotalCostUSD < pt.DesignCostUSD {
			t.Errorf("total cost below design cost at %d", pt.Year)
		}
	}
}

func TestCapabilityGapShape(t *testing.T) {
	pts := CapabilityGap(1995, 2015)
	if len(pts) != 21 {
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if pt.RealizedMT > pt.AvailableMT {
			t.Errorf("year %d: realized above available", pt.Year)
		}
		if pt.Year <= 2000 && pt.GapFactor != 1 {
			t.Errorf("year %d: gap %v before divergence era", pt.Year, pt.GapFactor)
		}
		if i > 0 && pt.GapFactor < pts[i-1].GapFactor {
			t.Errorf("gap must widen monotonically (year %d)", pt.Year)
		}
		if i > 0 && pt.AvailableMT <= pts[i-1].AvailableMT {
			t.Errorf("available density must grow (year %d)", pt.Year)
		}
	}
	if final := pts[len(pts)-1].GapFactor; final < 2 {
		t.Errorf("2015 gap factor %v, want > 2x", final)
	}
}

func TestProductivityAnchored(t *testing.T) {
	p := Default()
	inn := DefaultInnovations()
	if got := p.Productivity(p.BaseYear, inn, p.BaseYear); math.Abs(got-p.BaseProductivity) > 1e-6*p.BaseProductivity {
		t.Errorf("base-year productivity %v, want %v", got, p.BaseProductivity)
	}
	// Removing pre-base innovations lowers productivity.
	if got := p.Productivity(p.BaseYear, inn, 2000); got >= p.BaseProductivity {
		t.Errorf("cutoff-2000 productivity %v should be below base %v", got, p.BaseProductivity)
	}
}
