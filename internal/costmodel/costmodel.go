// Package costmodel implements an ITRS-style design cost model (the
// paper's refs [31][39][41], Sec. 1-2): transistor scaling, design
// productivity with and without design-technology (DT) innovations, and
// the resulting SOC design cost trajectories of Fig. 2 — including the
// footnote-1 counterfactuals (absent post-2013 DT innovation, SOC-CP
// design cost grows from $45.4M in 2013 toward $3.4B in 2028). It also
// models the Design Capability Gap of Fig. 1: available versus realized
// transistor-density scaling.
package costmodel

import "math"

// Innovation is one design-technology advance with its calibrated
// productivity multiplier, after the ITRS Design Cost Model's structure.
type Innovation struct {
	Name   string
	Year   int
	Factor float64 // multiplicative productivity improvement
}

// DefaultInnovations returns a representative DT-innovation timeline in
// the spirit of the ITRS model (RTL methodology, silicon virtual
// prototype, ES-level automation, ...). Factors are calibrated so the
// with-innovation trajectory holds SOC-CP design cost in the
// tens-of-$M band while the no-innovation counterfactuals reproduce the
// paper's footnote-1 figures.
func DefaultInnovations() []Innovation {
	return []Innovation{
		{"In-house P&R", 1993, 1.5},
		{"Engineer-level RTL methodology", 1995, 1.6},
		{"Small-block reuse", 1997, 1.55},
		{"Large-block reuse", 1999, 1.6},
		{"IC implementation suite", 2001, 1.65},
		{"Intelligent testbench", 2003, 1.6},
		{"ES-level methodology", 2005, 1.6},
		{"Silicon virtual prototype", 2007, 1.55},
		{"Very-large-block reuse", 2009, 1.6},
		{"Concurrent software compiler", 2011, 1.55},
		{"Chip-package-system co-design", 2013, 1.6},
		{"ML-assisted implementation", 2015, 1.6},
		{"Flow-adaptive tool orchestration", 2017, 1.6},
		{"Robot design engineers", 2019, 1.65},
		{"Single-pass design", 2021, 1.6},
		{"No-human-in-the-loop flows", 2023, 1.65},
		{"Shared ML model ecosystem", 2025, 1.6},
		{"Self-improving design platform", 2027, 1.6},
	}
}

// Params holds the model's calibration.
type Params struct {
	BaseYear        int     // calibration anchor (2013)
	BaseTransistors float64 // SOC-CP transistors at BaseYear
	DoublingYears   float64 // transistor-count doubling period
	// BaseProductivity is transistors per engineer-year at BaseYear
	// with all innovations up to BaseYear applied.
	BaseProductivity float64
	// NaturalGrowth is the innovation-independent annual productivity
	// improvement (tool speedups, experience).
	NaturalGrowth float64
	// EngineerCostUSD is the loaded annual cost of one engineer
	// (salary, licenses, servers) at BaseYear.
	EngineerCostUSD float64
	// VerifShareBase/VerifShareSlope model verification's growing
	// share of total effort.
	VerifShareBase  float64
	VerifShareSlope float64 // per year
}

// Default returns the calibrated parameters.
func Default() Params {
	return Params{
		BaseYear:         2013,
		BaseTransistors:  5e8,
		DoublingYears:    2,
		BaseProductivity: 4.1e6,
		NaturalGrowth:    0.06,
		EngineerCostUSD:  360_000,
		VerifShareBase:   0.45, // at BaseYear
		VerifShareSlope:  0.01,
	}
}

// Transistors returns the SOC-CP transistor count in a given year.
func (p Params) Transistors(year int) float64 {
	return p.BaseTransistors * math.Pow(2, float64(year-p.BaseYear)/p.DoublingYears)
}

// Productivity returns transistors per engineer-year in `year`, applying
// only innovations introduced in or before cutoffYear. The calibration
// anchors productivity at BaseYear with all innovations <= BaseYear.
func (p Params) Productivity(year int, innovations []Innovation, cutoffYear int) float64 {
	// Innovation factor relative to the BaseYear stack.
	factor := 1.0
	for _, in := range innovations {
		applied := in.Year <= year && in.Year <= cutoffYear
		baseline := in.Year <= p.BaseYear
		if applied && !baseline {
			factor *= in.Factor
		}
		if !applied && baseline {
			factor /= in.Factor
		}
	}
	natural := math.Pow(1+p.NaturalGrowth, float64(year-p.BaseYear))
	return p.BaseProductivity * factor * natural
}

// YearPoint is one row of the Fig. 2 projection.
type YearPoint struct {
	Year              int
	Transistors       float64
	EngineerYears     float64
	DesignCostUSD     float64
	VerifCostUSD      float64
	TotalCostUSD      float64
	VerifShare        float64
	ProductivityTrEY  float64
	InnovationApplied int // innovations in effect
}

// Project computes the cost trajectory from->to, applying innovations up
// to cutoffYear only (use a large cutoff for "all innovations on time";
// use 2000 or 2013 for the paper's counterfactuals).
func Project(p Params, innovations []Innovation, from, to, cutoffYear int) []YearPoint {
	var out []YearPoint
	for year := from; year <= to; year++ {
		prod := p.Productivity(year, innovations, cutoffYear)
		tr := p.Transistors(year)
		ey := tr / prod
		design := ey * p.EngineerCostUSD
		share := p.VerifShareBase + p.VerifShareSlope*float64(year-p.BaseYear)
		share = math.Max(0.2, math.Min(0.7, share))
		applied := 0
		for _, in := range innovations {
			if in.Year <= year && in.Year <= cutoffYear {
				applied++
			}
		}
		out = append(out, YearPoint{
			Year:              year,
			Transistors:       tr,
			EngineerYears:     ey,
			DesignCostUSD:     design,
			VerifCostUSD:      design * share / (1 - share),
			TotalCostUSD:      design / (1 - share),
			VerifShare:        share,
			ProductivityTrEY:  prod,
			InnovationApplied: applied,
		})
	}
	return out
}

// DensityPoint is one row of the Fig. 1 capability-gap series.
type DensityPoint struct {
	Year        int
	AvailableMT float64 // available Mtransistors/mm^2 from litho scaling
	RealizedMT  float64 // realized density after A-factor and uncore derating
	GapFactor   float64 // available / realized
}

// CapabilityGap models Fig. 1: available density doubles per node
// (~2 years), while realized density increasingly lags due to a
// non-ideal area factor (larger cells and wires for reliability/
// variability) and growing uncore content. Before gapStartYear the two
// track each other.
func CapabilityGap(from, to int) []DensityPoint {
	const gapStartYear = 2000
	var out []DensityPoint
	for year := from; year <= to; year++ {
		avail := 0.1 * math.Pow(2, float64(year-1995)/2) // MTr/mm^2
		derate := 1.0
		if year > gapStartYear {
			// Compounding ~7%/year realized-scaling shortfall.
			derate = math.Pow(1.07, float64(year-gapStartYear))
		}
		realized := avail / derate
		out = append(out, DensityPoint{
			Year:        year,
			AvailableMT: avail,
			RealizedMT:  realized,
			GapFactor:   avail / realized,
		})
	}
	return out
}
