// Package logfile models detailed-router tool logfiles: the per-iteration
// DRV time series that the paper's doomed-run predictors consume.
//
// The paper trains its MDP on 1200 logfiles from artificial layouts and
// tests on 3742 logfiles from floorplans of an embedded CPU. Neither
// corpus is public, so this package regenerates equivalents by sweeping
// the detailed-routing simulator across designs, placements, routing
// supplies and run seeds — yielding the same observable: noisy DRV
// series, a mix of doomed and successful, with the paper's <200-DRV
// success criterion.
//
// Runs also serialize to and parse from a plain-text logfile format,
// exercising the wrapper-script data path of the METRICS architecture.
package logfile

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/cellib"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// Run is one detailed-routing tool run's observable record.
type Run struct {
	ID      int
	Design  string
	Corpus  string
	DRVs    []int // per-iteration violation counts (index 0 = initial)
	Final   int
	Success bool // Final < route.SuccessDRVThreshold
	// StoppedAt is the iteration a live supervisor STOPped the run
	// (0 = ran to its full budget). Only set by supervised generation;
	// the text logfile format does not carry it.
	StoppedAt int
}

// FromDetail converts a simulator result into a logfile record.
func FromDetail(id int, design, corpus string, res *route.DetailResult) Run {
	return Run{
		ID: id, Design: design, Corpus: corpus,
		DRVs:      append([]int(nil), res.DRVs...),
		Final:     res.Final,
		Success:   res.Success,
		StoppedAt: res.StopIter,
	}
}

// Format renders the run as tool-log text.
func (r Run) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# droute run=%d design=%s corpus=%s\n", r.ID, r.Design, r.Corpus)
	for i, d := range r.DRVs {
		fmt.Fprintf(&b, "iter %d drvs %d\n", i, d)
	}
	fmt.Fprintf(&b, "final drvs %d success %t\n", r.Final, r.Success)
	return b.String()
}

// Parse reads a logfile produced by Format.
func Parse(text string) (Run, error) {
	var r Run
	sc := bufio.NewScanner(strings.NewReader(text))
	sawHeader, sawFinal := false, false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "# droute"):
			if _, err := fmt.Sscanf(line, "# droute run=%d design=%s", &r.ID, &r.Design); err != nil {
				return r, fmt.Errorf("logfile: bad header %q: %w", line, err)
			}
			if i := strings.Index(line, "corpus="); i >= 0 {
				r.Corpus = strings.TrimSpace(line[i+len("corpus="):])
			}
			// Design may have absorbed the corpus token.
			r.Design = strings.TrimSuffix(r.Design, " ")
			if j := strings.Index(r.Design, " corpus="); j >= 0 {
				r.Design = r.Design[:j]
			}
			sawHeader = true
		case strings.HasPrefix(line, "iter "):
			var it, d int
			if _, err := fmt.Sscanf(line, "iter %d drvs %d", &it, &d); err != nil {
				return r, fmt.Errorf("logfile: bad iter line %q: %w", line, err)
			}
			r.DRVs = append(r.DRVs, d)
		case strings.HasPrefix(line, "final "):
			if _, err := fmt.Sscanf(line, "final drvs %d success %t", &r.Final, &r.Success); err != nil {
				return r, fmt.Errorf("logfile: bad final line %q: %w", line, err)
			}
			sawFinal = true
		case line == "":
		default:
			return r, fmt.Errorf("logfile: unrecognized line %q", line)
		}
	}
	if !sawHeader || !sawFinal {
		return r, fmt.Errorf("logfile: incomplete log (header=%t final=%t)", sawHeader, sawFinal)
	}
	return r, nil
}

// CorpusSpec parameterizes corpus generation.
type CorpusSpec struct {
	Name string
	Runs int
	Seed int64
	// Designs is how many distinct design+placement substrates to
	// build (runs are spread across them). Default 6.
	Designs int
	// DesignSpec builds the i-th design spec. Default: artificial
	// layouts for the "artificial" corpus name, embedded-CPU floorplan
	// proxies otherwise.
	DesignSpec func(i int, seed int64) netlist.Spec
	// TrackSupplies are the routing-capacity settings swept to produce
	// a mix of comfortable and congested runs. Default covers both.
	TrackSupplies []float64
	// Iterations per detailed-route run (default 20).
	Iterations int
	// Workers is the concurrent-run limit for corpus generation (0 = one
	// per CPU). All rng seeds are pre-drawn in the serial loop's order
	// before any work fans out, so the corpus is bit-identical at any
	// worker count.
	Workers int
	// PlaceWorkers selects the speculative parallel annealer for the
	// substrate placements (place.Options.Workers); RouteTiles selects
	// the region-sharded global router (route.GlobalOptions.Tiles).
	// Zero keeps the historical serial kernels — and the historical
	// journal keys, so existing corpus journals replay unchanged.
	PlaceWorkers int
	RouteTiles   int
	// Supervise, when set, returns the per-run live iteration hook
	// wired into route.DetailRouteCtx — the doomed-run card acting
	// while runs execute. A supervised corpus's unstopped runs are
	// bit-identical to the unsupervised corpus (the hook never touches
	// the rng stream); stopped runs are truncated with StoppedAt set.
	Supervise func(id int, design string) route.IterHook

	// JournalDir, when non-empty, makes GenerateJournaled crash-safe:
	// every completed run is appended to a durable write-ahead journal
	// in this directory, and a restarted generation replays the journal
	// instead of recomputing. When every run replays, the design/
	// placement/global-routing substrates are not built at all.
	JournalDir string
	// JournalSalt distinguishes corpora that share a spec but must not
	// share journal entries — e.g. a supervised corpus whose stopped
	// runs differ from the unsupervised corpus generated from the same
	// seeds.
	JournalSalt string
}

// runKey identifies one corpus run for the journal: every spec field
// that shapes the run's content, plus its id and pre-drawn seed. A
// changed spec changes the keys, so stale entries are skipped (and
// preserved), never served.
func (c CorpusSpec) runKey(id int, runSeed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d|%d|%d|%d", c.Name, c.JournalSalt, c.Seed, c.Designs, c.Iterations, len(c.TrackSupplies))
	for _, s := range c.TrackSupplies {
		fmt.Fprintf(&b, "|%g", s)
	}
	// Parallel-kernel fields append only when set, so corpora generated
	// before the knobs existed keep their journal keys.
	if c.PlaceWorkers > 0 {
		fmt.Fprintf(&b, "|pw%d", c.PlaceWorkers)
	}
	if c.RouteTiles > 1 {
		fmt.Fprintf(&b, "|rt%d", c.RouteTiles)
	}
	fmt.Fprintf(&b, "|run%d|%d", id, runSeed)
	return b.String()
}

func (c CorpusSpec) withDefaults() CorpusSpec {
	if c.Runs <= 0 {
		c.Runs = 100
	}
	if c.Designs <= 0 {
		c.Designs = 6
	}
	if c.DesignSpec == nil {
		if c.Name == "artificial" {
			c.DesignSpec = func(i int, seed int64) netlist.Spec { return netlist.Artificial(seed + int64(i)) }
		} else {
			c.DesignSpec = func(i int, seed int64) netlist.Spec { return netlist.EmbeddedCPU(seed + int64(i)) }
		}
	}
	if len(c.TrackSupplies) == 0 {
		// Capacity-to-mean-demand ratios spanning clearly congested
		// (doomed) through comfortable (successful); the generator
		// normalizes by each design's measured routing demand so every
		// corpus mixes both outcomes regardless of design size.
		// The band around the congestion crossover (~0.9-1.8) is
		// deliberately sparse: real flows target feasible-but-tight
		// supply, and the paper's Fig. 9 curves separate cleanly into
		// success and doomed.
		c.TrackSupplies = []float64{0.5, 0.7, 1.3, 2.0, 2.6, 3.4}
	}
	if c.Iterations <= 0 {
		c.Iterations = 20
	}
	return c
}

// Generate builds a corpus of detailed-routing logfiles by sweeping
// designs, routing supplies and run seeds through the route simulator.
// Substrate construction fans out per design and detailed routing fans
// out per run on the campaign engine; every rng seed is pre-drawn in the
// order the serial loop consumed them, so the corpus does not depend on
// scheduling.
func Generate(spec CorpusSpec) []Run {
	return generate(spec.withDefaults(), nil, nil)
}

// corpusEntry is the journaled form of one completed corpus run.
type corpusEntry struct {
	Key string
	Run Run
}

// GenerateJournaled is Generate backed by the write-ahead journal in
// spec.JournalDir: completed runs are durably appended as they finish,
// and a generation restarted after a crash replays them instead of
// recomputing (bit-identically — a corpus run is a pure function of its
// pre-drawn seed). Journal append failures are surfaced in the returned
// error but never abort generation; the runs slice is always complete.
// With an empty JournalDir this is exactly Generate.
func GenerateJournaled(spec CorpusSpec) ([]Run, error) {
	spec = spec.withDefaults()
	if spec.JournalDir == "" {
		return generate(spec, nil, nil), nil
	}
	log, err := journal.Open(spec.JournalDir, journal.Options{})
	if err != nil {
		return nil, fmt.Errorf("logfile: open corpus journal: %w", err)
	}

	cached := map[string]Run{}
	corrupt := 0
	for _, rec := range log.Records() {
		var e corpusEntry
		if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&e); err != nil || e.Key == "" {
			corrupt++
			continue
		}
		cached[e.Key] = e.Run
	}
	if corrupt > 0 {
		metrics.Add("logfile.journal.corrupt", int64(corrupt))
	}

	var mu sync.Mutex
	var appendErr error
	replayed := 0
	lookup := func(key string) (Run, bool) {
		r, ok := cached[key]
		if ok {
			mu.Lock()
			replayed++
			mu.Unlock()
		}
		return r, ok
	}
	record := func(key string, r Run) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(corpusEntry{Key: key, Run: r}); err == nil {
			err = log.Append(buf.Bytes())
		} else {
			err = fmt.Errorf("logfile: encode journal entry: %w", err)
		}
		if err != nil {
			mu.Lock()
			if appendErr == nil {
				appendErr = fmt.Errorf("logfile: journal append: %w", err)
			}
			mu.Unlock()
			metrics.Add("logfile.journal.append_err", 1)
			return
		}
		metrics.Add("logfile.journal.appended", 1)
	}
	runs := generate(spec, lookup, record)
	if replayed > 0 {
		metrics.Add("logfile.journal.replayed", int64(replayed))
	}
	if skipped := len(cached) - replayed; skipped > 0 {
		// Entries whose keys match no requested run: a changed spec.
		// They stay on disk untouched.
		metrics.Add("logfile.journal.skipped", int64(skipped))
	}
	if err := log.Close(); err != nil && appendErr == nil {
		appendErr = fmt.Errorf("logfile: close corpus journal: %w", err)
	}
	return runs, appendErr
}

// generate is the corpus generator core. lookup (optional) serves a run
// from the journal by key; record (optional) durably appends a freshly
// computed run. When every run is served by lookup, the substrate build
// — the expensive part — is skipped entirely.
func generate(spec CorpusSpec, lookup func(key string) (Run, bool), record func(key string, r Run)) []Run {
	rng := rand.New(rand.NewSource(spec.Seed))
	lib := cellib.Default14nm()
	eng := campaign.New(campaign.Config{Workers: campaign.Workers(spec.Workers)})
	ctx := context.Background()

	// Pre-draw every seed in the serial loop's interleaved order: per
	// design, one probe draw then one draw per track supply; then one
	// draw per run.
	nSupply := len(spec.TrackSupplies)
	probeSeeds := make([]int64, spec.Designs)
	supplySeeds := make([]int64, spec.Designs*nSupply)
	for i := 0; i < spec.Designs; i++ {
		probeSeeds[i] = rng.Int63()
		for j := 0; j < nSupply; j++ {
			supplySeeds[i*nSupply+j] = rng.Int63()
		}
	}
	runSeeds := make([]int64, spec.Runs)
	for id := range runSeeds {
		runSeeds[id] = rng.Int63()
	}

	// Resolve which runs the journal already holds. When it holds all of
	// them, the substrate build below — the expensive part of corpus
	// generation — is skipped entirely: a fully journaled regeneration
	// costs only the replay.
	keys := make([]string, spec.Runs)
	cachedRun := make([]bool, spec.Runs)
	cachedVal := make([]Run, spec.Runs)
	uncached := spec.Runs
	if lookup != nil {
		for id := range keys {
			keys[id] = spec.runKey(id, runSeeds[id])
			if r, ok := lookup(keys[id]); ok {
				cachedRun[id], cachedVal[id] = true, r
				uncached--
			}
		}
	}
	if uncached == 0 {
		return cachedVal
	}

	// Build the congestion substrates: per design, per track supply,
	// one global-routing result. Each design's build is independent.
	type substrate struct {
		design string
		g      *route.GlobalResult
	}
	subs := make([]substrate, spec.Designs*nSupply)
	campaign.Map(ctx, eng, spec.Designs, func(i int) struct{} { //nolint:errcheck // background ctx never cancels
		ds := spec.DesignSpec(i, spec.Seed)
		n := netlist.Generate(lib, ds)
		place.Place(n, place.Options{
			Seed:    spec.Seed + int64(i),
			Moves:   25 * n.NumCells(),
			Workers: spec.PlaceWorkers,
		})
		// Probe the design's routing demand with unconstrained
		// capacity; TrackSupplies are ratios against the mean edge
		// demand, so corpora straddle the congestion crossover for
		// designs of any size.
		probe := route.GlobalRoute(n, route.GlobalOptions{
			Seed:          probeSeeds[i],
			TracksPerEdge: math.Inf(1),
			Tiles:         spec.RouteTiles,
		})
		var meanDemand float64
		for _, d := range probe.Demand {
			meanDemand += d
		}
		meanDemand /= float64(len(probe.Demand))
		if meanDemand < 1 {
			meanDemand = 1
		}
		for j, ratio := range spec.TrackSupplies {
			g := route.GlobalRoute(n, route.GlobalOptions{
				Seed:          supplySeeds[i*nSupply+j],
				TracksPerEdge: ratio * meanDemand,
				Tiles:         spec.RouteTiles,
			})
			subs[i*nSupply+j] = substrate{design: fmt.Sprintf("%s-%d", ds.Name, i), g: g}
		}
		return struct{}{}
	})

	runs := make([]Run, spec.Runs)
	campaign.Map(ctx, eng, spec.Runs, func(id int) struct{} { //nolint:errcheck // background ctx never cancels
		if cachedRun[id] {
			runs[id] = cachedVal[id]
			return struct{}{}
		}
		s := subs[id%len(subs)]
		opts := route.DetailOptions{
			Iterations: spec.Iterations,
			Seed:       runSeeds[id],
		}
		if spec.Supervise != nil {
			opts.IterHook = spec.Supervise(id, s.design)
		}
		res := route.DetailRouteCtx(ctx, s.g, opts)
		runs[id] = FromDetail(id, s.design, spec.Name, res)
		if record != nil {
			record(keys[id], runs[id])
		}
		return struct{}{}
	})
	return runs
}

// Stats summarizes a corpus.
type Stats struct {
	Runs       int
	Successes  int
	Doomed     int
	AvgFinal   float64
	AvgInitial float64
}

// Summarize computes corpus statistics.
func Summarize(runs []Run) Stats {
	s := Stats{Runs: len(runs)}
	for _, r := range runs {
		if r.Success {
			s.Successes++
		} else {
			s.Doomed++
		}
		s.AvgFinal += float64(r.Final)
		if len(r.DRVs) > 0 {
			s.AvgInitial += float64(r.DRVs[0])
		}
	}
	if len(runs) > 0 {
		s.AvgFinal /= float64(len(runs))
		s.AvgInitial /= float64(len(runs))
	}
	return s
}
