package logfile

import (
	"testing"

	"repro/internal/route"
)

func smallCorpus(t testing.TB, name string, runs int, seed int64) []Run {
	t.Helper()
	return Generate(CorpusSpec{Name: name, Runs: runs, Seed: seed, Designs: 2})
}

func TestGenerateCorpusMix(t *testing.T) {
	runs := smallCorpus(t, "artificial", 60, 1)
	if len(runs) != 60 {
		t.Fatalf("got %d runs", len(runs))
	}
	s := Summarize(runs)
	if s.Successes == 0 || s.Doomed == 0 {
		t.Fatalf("corpus must mix successes and doomed runs: %+v", s)
	}
	for _, r := range runs {
		if len(r.DRVs) < 10 {
			t.Fatalf("run %d has short series (%d)", r.ID, len(r.DRVs))
		}
		if r.Success != (r.Final < route.SuccessDRVThreshold) {
			t.Fatalf("run %d success flag inconsistent with final %d", r.ID, r.Final)
		}
		if r.Final != r.DRVs[len(r.DRVs)-1] {
			t.Fatalf("run %d final %d != last series value %d", r.ID, r.Final, r.DRVs[len(r.DRVs)-1])
		}
		if r.Corpus != "artificial" {
			t.Fatalf("run corpus %q", r.Corpus)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallCorpus(t, "artificial", 20, 5)
	b := smallCorpus(t, "artificial", 20, 5)
	for i := range a {
		if a[i].Final != b[i].Final {
			t.Fatal("same seed produced different corpora")
		}
	}
}

func TestCorporaDiffer(t *testing.T) {
	art := smallCorpus(t, "artificial", 30, 1)
	cpu := smallCorpus(t, "embedded-cpu", 30, 1)
	if Summarize(art).AvgInitial == Summarize(cpu).AvgInitial {
		t.Error("different design families should give different corpora")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	runs := smallCorpus(t, "artificial", 5, 2)
	for _, r := range runs {
		text := r.Format()
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, text)
		}
		if got.ID != r.ID || got.Design != r.Design || got.Corpus != r.Corpus {
			t.Fatalf("metadata mismatch: %+v vs %+v", got, r)
		}
		if got.Final != r.Final || got.Success != r.Success {
			t.Fatalf("outcome mismatch: %+v vs %+v", got, r)
		}
		if len(got.DRVs) != len(r.DRVs) {
			t.Fatalf("series length %d vs %d", len(got.DRVs), len(r.DRVs))
		}
		for i := range got.DRVs {
			if got.DRVs[i] != r.DRVs[i] {
				t.Fatalf("series[%d] = %d, want %d", i, got.DRVs[i], r.DRVs[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"no final":  "# droute run=1 design=d corpus=c\niter 0 drvs 5\n",
		"bad iter":  "# droute run=1 design=d corpus=c\niter x drvs 5\nfinal drvs 5 success true\n",
		"bad final": "# droute run=1 design=d corpus=c\nfinal drvs x success maybe\n",
		"garbage":   "# droute run=1 design=d corpus=c\nhello world\nfinal drvs 1 success true\n",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseToleratesBlankLines(t *testing.T) {
	text := "# droute run=3 design=foo corpus=bar\n\niter 0 drvs 100\n\nfinal drvs 100 success true\n"
	r, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 3 || r.Design != "foo" || r.Corpus != "bar" {
		t.Fatalf("parsed %+v", r)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Runs != 0 || s.AvgFinal != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}
