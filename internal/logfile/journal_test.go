package logfile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGenerateJournaledResumesBitIdentical: a corpus generation killed
// partway — simulated by truncating the journal at several byte
// offsets — regenerates bit-identically to the uninterrupted corpus,
// and a fully journaled regeneration replays without recomputing (the
// substrate build is skipped, which keeps it near-instant).
func TestGenerateJournaledResumesBitIdentical(t *testing.T) {
	spec := CorpusSpec{Name: "artificial", Runs: 12, Seed: 5, Designs: 2}
	want := Generate(spec)

	dir := filepath.Join(t.TempDir(), "journal")
	spec.JournalDir = dir
	got, err := GenerateJournaled(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journaled corpus differs from plain Generate")
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments (err=%v)", err)
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int64{0, 8, info.Size() / 3, 2 * info.Size() / 3, info.Size() - 3, info.Size()} {
		if err := os.WriteFile(seg, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := GenerateJournaled(spec)
		if err != nil {
			t.Fatalf("kill@%d: %v", off, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill@%d: resumed corpus differs from reference", off)
		}
	}
}

// TestGenerateJournaledSaltSeparates: two corpora sharing a spec but
// salted apart must not serve each other's journal entries.
func TestGenerateJournaledSaltSeparates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	spec := CorpusSpec{Name: "artificial", Runs: 4, Seed: 9, Designs: 2, JournalDir: dir, JournalSalt: "plain"}
	plain, err := GenerateJournaled(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Same journal, different salt: every run recomputes (here without a
	// supervisor they coincide in value, but they must be re-journaled
	// under their own keys — both salts must then replay independently).
	spec.JournalSalt = "supervised"
	salted, err := GenerateJournaled(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, salted) {
		t.Fatal("unsupervised runs should coincide regardless of salt")
	}
	for _, salt := range []string{"plain", "supervised"} {
		spec.JournalSalt = salt
		again, err := GenerateJournaled(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, plain) {
			t.Fatalf("salt %q replay differs", salt)
		}
	}
}
