// Package chaos is a deterministic network fault injector for the
// distributed campaign tier. It wraps an http.RoundTripper and, driven
// by splitmix-derived coins keyed on (seed, source, target, method,
// attempt), injects the failures a real tool farm sees: dropped
// connections, stalled links, added latency, 5xx responses, duplicated
// deliveries, and scheduled partitions (node-to-node and node-to-store,
// with heal times).
//
// Determinism has two layers. The coin *schedule* is a pure function of
// the seed and the RPC's identity, so two runs with the same seed see
// the same fault sequence per (source, target, op) edge; which goroutine
// eats which coin can vary with scheduling, but the campaign output must
// not — the dist tier's contract is that any fault schedule with at
// least one live node yields bytes identical to the single-node
// reference, and the chaos soak in scripts/check.sh holds it to that.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/num"
)

// Partition is one scheduled link cut between two logical endpoints.
// Endpoints are the names the dist tier stamps on its RPCs: worker IDs
// ("w0"), "store", and "coord". "*" matches any endpoint. The window is
// measured from Engine creation; Heal <= Start means the cut never
// heals (a network-dead node).
type Partition struct {
	A, B  string
	Start time.Duration
	Heal  time.Duration
}

// cuts reports whether the partition severs the src->dst link at time t.
func (p Partition) cuts(src, dst string, t time.Duration) bool {
	if t < p.Start || (p.Heal > p.Start && t >= p.Heal) {
		return false
	}
	match := func(pat, name string) bool { return pat == "*" || pat == name }
	return (match(p.A, src) && match(p.B, dst)) || (match(p.A, dst) && match(p.B, src))
}

// Config is a fault schedule. All rates are probabilities in [0, 1],
// drawn independently per RPC attempt from the attempt's coin stream.
type Config struct {
	// Seed keys every coin; the zero seed is as valid as any other.
	Seed int64
	// DropRate kills the request before it is sent (connection refused /
	// reset analog — the caller sees a transport error).
	DropRate float64
	// FailRate short-circuits the request with a synthesized 503 (the
	// overloaded-proxy analog; the server never sees the request).
	FailRate float64
	// DupRate delivers the request twice (idempotence probe); the second
	// response is the one returned. Requests without a replayable body
	// are never duplicated.
	DupRate float64
	// StallRate wedges the request: it sleeps StallFor (or until the
	// caller's context dies) and then fails — the stalled-TCP analog
	// that only deadlines can unstick.
	StallRate float64
	// StallFor bounds one stall (0 = 30s).
	StallFor time.Duration
	// LatencyMax adds a uniform [0, LatencyMax) delay to every request
	// that survives the other coins (0 = no added latency).
	LatencyMax time.Duration
	// Partitions are the scheduled link cuts.
	Partitions []Partition
}

// Engine owns a schedule's clock and per-edge attempt counters. One
// engine serves every endpoint of a deployment; each endpoint wraps its
// transport via Transport(source, base).
type Engine struct {
	cfg   Config
	start time.Time

	mu  sync.Mutex
	seq map[string]uint64 // per (source|target|op) attempt counter
}

// New builds an engine for a schedule. A nil engine is a valid no-op:
// (*Engine)(nil).Transport(src, base) returns base unchanged, so chaos
// stays pluggable without touching the happy path.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, start: time.Now(), seq: map[string]uint64{}}
}

// Profile returns a named fault schedule. The names are the check
// harness's soak matrix; endpoints follow the dist deployment
// convention (workers w0..wN, the result store "store", the
// coordinator "coord").
//
//	flaky      transient faults everywhere: drops, 503s, duplicates
//	slow       heavy latency plus stalled requests (deadline food)
//	partition  w0 fully cut from the deployment, healing at 400ms —
//	           the suspect -> dead -> rejoin path
//	kill       w0 cut permanently from 15ms — the network-dead node
func Profile(name string, seed int64) (Config, error) {
	switch name {
	case "flaky":
		return Config{
			Seed: seed, DropRate: 0.15, FailRate: 0.15, DupRate: 0.10,
			LatencyMax: 2 * time.Millisecond,
		}, nil
	case "slow":
		return Config{
			Seed: seed, LatencyMax: 12 * time.Millisecond,
			StallRate: 0.10, StallFor: 120 * time.Millisecond,
		}, nil
	case "partition":
		return Config{
			Seed: seed, LatencyMax: 25 * time.Millisecond,
			Partitions: []Partition{{A: "*", B: "w0", Start: 15 * time.Millisecond, Heal: 400 * time.Millisecond}},
		}, nil
	case "kill":
		return Config{
			Seed: seed, LatencyMax: 2 * time.Millisecond,
			Partitions: []Partition{{A: "*", B: "w0", Start: 15 * time.Millisecond}},
		}, nil
	}
	return Config{}, fmt.Errorf("chaos: unknown profile %q (want flaky, slow, partition, or kill)", name)
}

// Profiles lists the named schedules, in soak order.
func Profiles() []string { return []string{"flaky", "slow", "partition", "kill"} }

// Error is an injected transport failure. The dist tier classifies any
// transport error as transient, so chaos errors need no special type —
// but carrying the fault kind makes logs and test failures readable.
type Error struct {
	Kind   string // "drop", "stall", "partition"
	Source string
	Target string
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: %s injected on %s->%s", e.Kind, e.Source, e.Target)
}

// Elapsed is the schedule clock: time since the engine was created.
func (e *Engine) Elapsed() time.Duration { return time.Since(e.start) }

// Partitioned reports whether src->dst is cut at the schedule's current
// time (false on a nil engine).
func (e *Engine) Partitioned(src, dst string) bool {
	if e == nil {
		return false
	}
	t := e.Elapsed()
	for _, p := range e.cfg.Partitions {
		if p.cuts(src, dst, t) {
			return true
		}
	}
	return false
}

// Transport wraps base (nil = http.DefaultTransport) with the engine's
// fault schedule, acting as the named source endpoint. A nil engine
// returns base unchanged — the no-chaos fast path has zero overhead.
func (e *Engine) Transport(source string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if e == nil {
		return base
	}
	return &transport{eng: e, source: source, base: base}
}

// TargetHeader and OpHeader are how the dist RPC layer names the
// logical destination and operation of a request, so coins key on the
// node identity rather than an ephemeral host:port. Absent headers fall
// back to the URL host and method+path.
const (
	TargetHeader = "Chaos-Target"
	OpHeader     = "Chaos-Op"
)

type transport struct {
	eng    *Engine
	source string
	base   http.RoundTripper
}

// attempt returns the next per-edge attempt number — the coin-stream
// index for one physical send on (source, target, op).
func (e *Engine) attempt(edge string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.seq[edge]
	e.seq[edge] = n + 1
	return n
}

// coinSeed derives the splitmix seed for one attempt's coin stream.
func coinSeed(seed int64, source, target, op string, attempt uint64) int64 {
	h := fnv.New64a()
	io.WriteString(h, source) //nolint:errcheck
	h.Write([]byte{0})        //nolint:errcheck
	io.WriteString(h, target) //nolint:errcheck
	h.Write([]byte{0})        //nolint:errcheck
	io.WriteString(h, op)     //nolint:errcheck
	return num.Mix(seed^int64(h.Sum64()), attempt)
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.Header.Get(TargetHeader)
	if target == "" {
		target = req.URL.Host
	}
	op := req.Header.Get(OpHeader)
	if op == "" {
		op = req.Method + " " + req.URL.Path
	}
	cfg := &t.eng.cfg
	attempt := t.eng.attempt(t.source + "|" + target + "|" + op)
	coins := num.NewSplitMix(coinSeed(cfg.Seed, t.source, target, op, attempt))

	// Draw every coin up front, in a fixed order, so one fault's
	// presence never shifts another's stream position.
	latency := time.Duration(0)
	if cfg.LatencyMax > 0 {
		latency = time.Duration(coins.Uint64() % uint64(cfg.LatencyMax))
	}
	drop := coin(coins) < cfg.DropRate
	stall := coin(coins) < cfg.StallRate
	fail := coin(coins) < cfg.FailRate
	dup := coin(coins) < cfg.DupRate

	if t.eng.Partitioned(t.source, target) {
		metrics.Add("chaos.fault.injected.partition", 1)
		return nil, &Error{Kind: "partition", Source: t.source, Target: target}
	}
	if drop {
		metrics.Add("chaos.fault.injected.drop", 1)
		return nil, &Error{Kind: "drop", Source: t.source, Target: target}
	}
	if stall {
		metrics.Add("chaos.fault.injected.stall", 1)
		stallFor := cfg.StallFor
		if stallFor <= 0 {
			stallFor = 30 * time.Second
		}
		if err := sleepCtx(req.Context(), stallFor); err != nil {
			return nil, err // caller's deadline unstuck the stall
		}
		return nil, &Error{Kind: "stall", Source: t.source, Target: target}
	}
	if latency > 0 {
		metrics.Add("chaos.fault.injected.latency", 1)
		if err := sleepCtx(req.Context(), latency); err != nil {
			return nil, err
		}
	}
	if fail {
		metrics.Add("chaos.fault.injected.fail", 1)
		return synthesized(req, http.StatusServiceUnavailable, "chaos: injected 503"), nil
	}
	if dup && (req.Body == nil || req.GetBody != nil) {
		// Deliver twice; the second response is the caller's. The store's
		// first-put-wins contract makes the duplicate harmless, and the
		// soak verifies exactly that.
		first := req.Clone(req.Context())
		replayable := true
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				replayable = false
			} else {
				first.Body = body
			}
		}
		if replayable {
			metrics.Add("chaos.fault.injected.dup", 1)
			if resp, err := t.base.RoundTrip(first); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}
	return t.base.RoundTrip(req)
}

// coin converts the next 53 bits of the stream into a uniform [0, 1).
func coin(s *num.SplitMix) float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// sleepCtx sleeps for d or until ctx dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// synthesized builds an in-memory response without touching the server.
func synthesized(req *http.Request, status int, msg string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(msg + "\n"))),
		ContentLength: int64(len(msg) + 1),
		Request:       req,
	}
}
