package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// doVia sends one request through an engine-wrapped transport.
func doVia(t *testing.T, eng *Engine, source, target, url string, body []byte) (*http.Response, error) {
	t.Helper()
	rt := eng.Transport(source, nil)
	method := http.MethodGet
	var rd io.Reader
	if body != nil {
		method = http.MethodPut
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(context.Background(), method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TargetHeader, target)
	req.Header.Set(OpHeader, "test")
	return rt.RoundTrip(req)
}

// faultSequence replays n attempts on one edge and records which fault
// (if any) each attempt drew.
func faultSequence(t *testing.T, cfg Config, n int, url string) []string {
	t.Helper()
	eng := New(cfg)
	var seq []string
	for i := 0; i < n; i++ {
		resp, err := doVia(t, eng, "src", "dst", url, nil)
		switch {
		case err != nil:
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("attempt %d: non-chaos error %v", i, err)
			}
			seq = append(seq, ce.Kind)
		case resp.StatusCode == http.StatusServiceUnavailable:
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			seq = append(seq, "fail")
		default:
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			seq = append(seq, "ok")
		}
	}
	return seq
}

// TestCoinScheduleDeterministic: same seed, same edge -> identical
// fault sequence; different seed -> a different one.
func TestCoinScheduleDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok") //nolint:errcheck
	}))
	defer srv.Close()

	cfg := Config{Seed: 7, DropRate: 0.3, FailRate: 0.3}
	a := faultSequence(t, cfg, 40, srv.URL)
	b := faultSequence(t, cfg, 40, srv.URL)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	if !kinds["drop"] || !kinds["fail"] || !kinds["ok"] {
		t.Fatalf("40 attempts at 30%%/30%% rates drew no mix of faults: %v", a)
	}

	cfg.Seed = 8
	c := faultSequence(t, cfg, 40, srv.URL)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatalf("different seeds drew identical sequences")
	}
}

// TestPartitionWindowHeals pins the partition schedule: cut inside the
// window (both directions, wildcard endpoints), healed outside it, and
// never healed when Heal <= Start.
func TestPartitionWindowHeals(t *testing.T) {
	p := Partition{A: "*", B: "w0", Start: 10 * time.Millisecond, Heal: 30 * time.Millisecond}
	cases := []struct {
		src, dst string
		at       time.Duration
		cut      bool
	}{
		{"coord", "w0", 5 * time.Millisecond, false},  // before window
		{"coord", "w0", 15 * time.Millisecond, true},  // inside
		{"w0", "store", 15 * time.Millisecond, true},  // reverse direction
		{"coord", "w1", 15 * time.Millisecond, false}, // other node
		{"coord", "w0", 35 * time.Millisecond, false}, // healed
	}
	for _, c := range cases {
		if got := p.cuts(c.src, c.dst, c.at); got != c.cut {
			t.Errorf("cuts(%s,%s,%v) = %t, want %t", c.src, c.dst, c.at, got, c.cut)
		}
	}
	forever := Partition{A: "*", B: "w0", Start: 10 * time.Millisecond}
	if !forever.cuts("coord", "w0", time.Hour) {
		t.Fatal("Heal=0 partition healed")
	}
}

// TestPartitionedTransportErrors: a cut link returns a chaos Error
// without touching the server; after heal the request goes through.
func TestPartitionedTransportErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	eng := New(Config{Seed: 1, Partitions: []Partition{{A: "coord", B: "w0", Start: 0, Heal: 80 * time.Millisecond}}})
	if _, err := doVia(t, eng, "coord", "w0", srv.URL, nil); err == nil {
		t.Fatal("request crossed a cut link")
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	// Unrelated edges are unaffected.
	if resp, err := doVia(t, eng, "coord", "w1", srv.URL, nil); err != nil {
		t.Fatalf("unpartitioned edge failed: %v", err)
	} else {
		resp.Body.Close()
	}
	time.Sleep(90 * time.Millisecond)
	resp, err := doVia(t, eng, "coord", "w0", srv.URL, nil)
	if err != nil {
		t.Fatalf("healed link still cut: %v", err)
	}
	resp.Body.Close()
}

// TestStallRespectsCallerDeadline: a stalled request returns when the
// caller's context dies, not after the full stall.
func TestStallRespectsCallerDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	eng := New(Config{Seed: 1, StallRate: 1, StallFor: 10 * time.Second})
	rt := eng.Transport("src", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("stalled request succeeded")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("stall ignored the caller deadline: took %v", e)
	}
}

// TestDuplicateDelivery: DupRate=1 delivers every replayable request
// twice, same bytes each time.
func TestDuplicateDelivery(t *testing.T) {
	var bodies [][]byte
	var mu atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, b) // serialized: client sends sequentially
		mu.Add(1)
	}))
	defer srv.Close()

	eng := New(Config{Seed: 1, DupRate: 1})
	resp, err := doVia(t, eng, "src", "dst", srv.URL, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mu.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", mu.Load())
	}
	if string(bodies[0]) != "payload" || string(bodies[1]) != "payload" {
		t.Fatalf("duplicate bytes differ: %q vs %q", bodies[0], bodies[1])
	}
}

// TestNilEngineIsNoOp: the nil engine returns the base transport
// untouched — the pluggable-without-touching-the-happy-path contract.
func TestNilEngineIsNoOp(t *testing.T) {
	var eng *Engine
	base := http.DefaultTransport
	if got := eng.Transport("src", base); got != base {
		t.Fatal("nil engine wrapped the transport")
	}
	if eng.Partitioned("a", "b") {
		t.Fatal("nil engine reported a partition")
	}
}

// TestProfiles: every advertised profile builds, unknown names error.
func TestProfiles(t *testing.T) {
	for _, name := range Profiles() {
		cfg, err := Profile(name, 3)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if cfg.Seed != 3 {
			t.Fatalf("profile %s dropped the seed", name)
		}
	}
	if _, err := Profile("nope", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
