// Package memplace implements memory-macro placement in a P&R block —
// the third of the paper's Sec. 3.1 robot-engineer applications
// ("placement of memory instances in a P&R block").
//
// The classic manual recipe places memories along the block periphery
// (so the standard-cell area stays contiguous and routable), oriented
// toward the logic that talks to them. The robot searches edge slots
// for a legal, non-overlapping assignment minimizing total
// macro-to-logic wirelength; the baseline scatters macros randomly on
// the periphery.
package memplace

import (
	"math"
	"math/rand"
	"sort"
)

// Macro is one memory instance to place.
type Macro struct {
	Name string
	W, H float64
	// LogicX/LogicY is the centroid of the logic connected to this
	// macro (pins pull the macro toward it).
	LogicX, LogicY float64
	// Weight is the connection count to that logic.
	Weight float64

	// Placed position (lower-left), set by the placer.
	X, Y float64
	// Edge the macro landed on (0=bottom,1=right,2=top,3=left).
	Edge int
}

// Block is the placement region.
type Block struct {
	W, H float64
}

// Result is a completed macro placement.
type Result struct {
	Macros       []Macro
	WirelengthUm float64 // weighted macro-center to logic-centroid distance
	Legal        bool    // no overlaps, all inside the block
}

// edgeSlot describes a candidate position along an edge.
type edgeSlot struct {
	edge int
	pos  float64 // offset along the edge
}

// place computes the (x, y) of a macro at an edge offset.
func place(b Block, m Macro, s edgeSlot) (x, y float64) {
	switch s.edge {
	case 0: // bottom
		return s.pos, 0
	case 1: // right
		return b.W - m.W, s.pos
	case 2: // top
		return s.pos, b.H - m.H
	default: // left
		return 0, s.pos
	}
}

// overlaps reports rectangle overlap with a small tolerance.
func overlaps(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
	return ax < bx+bw-1e-9 && bx < ax+aw-1e-9 && ay < by+bh-1e-9 && by < ay+ah-1e-9
}

// Robot places macros greedily: heaviest-connected macro first, each
// into the legal edge slot nearest its logic centroid. Slot candidates
// are sampled at a fine pitch along all four edges.
func Robot(b Block, macros []Macro) Result {
	res := Result{Macros: append([]Macro(nil), macros...), Legal: true}
	order := make([]int, len(res.Macros))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return res.Macros[order[i]].Weight > res.Macros[order[j]].Weight
	})
	var placed []int
	for _, mi := range order {
		m := &res.Macros[mi]
		best := math.Inf(1)
		var bestSlot edgeSlot
		found := false
		const samples = 64
		for edge := 0; edge < 4; edge++ {
			var span, depth float64
			if edge == 0 || edge == 2 {
				span, depth = b.W-m.W, m.H
			} else {
				span, depth = b.H-m.H, m.W
			}
			if span < 0 || depth > math.Min(b.W, b.H) {
				continue
			}
			for s := 0; s <= samples; s++ {
				slot := edgeSlot{edge: edge, pos: span * float64(s) / samples}
				x, y := place(b, *m, slot)
				legal := true
				for _, pi := range placed {
					p := &res.Macros[pi]
					if overlaps(x, y, m.W, m.H, p.X, p.Y, p.W, p.H) {
						legal = false
						break
					}
				}
				if !legal {
					continue
				}
				d := math.Abs(x+m.W/2-m.LogicX) + math.Abs(y+m.H/2-m.LogicY)
				if d < best {
					best = d
					bestSlot = slot
					found = true
				}
			}
		}
		if !found {
			res.Legal = false
			continue
		}
		m.X, m.Y = place(b, *m, bestSlot)
		m.Edge = bestSlot.edge
		placed = append(placed, mi)
		res.WirelengthUm += m.Weight * best
	}
	if !res.Legal {
		res.WirelengthUm = math.Inf(1)
	}
	return res
}

// Random places macros at random edge slots (retrying on overlap) — the
// no-expertise baseline.
func Random(b Block, macros []Macro, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Macros: append([]Macro(nil), macros...), Legal: true}
	var placed []int
	for mi := range res.Macros {
		m := &res.Macros[mi]
		ok := false
		for try := 0; try < 200; try++ {
			edge := rng.Intn(4)
			var span float64
			if edge == 0 || edge == 2 {
				span = b.W - m.W
			} else {
				span = b.H - m.H
			}
			if span < 0 {
				continue
			}
			slot := edgeSlot{edge: edge, pos: rng.Float64() * span}
			x, y := place(b, *m, slot)
			legal := true
			for _, pi := range placed {
				p := &res.Macros[pi]
				if overlaps(x, y, m.W, m.H, p.X, p.Y, p.W, p.H) {
					legal = false
					break
				}
			}
			if legal {
				m.X, m.Y = x, y
				m.Edge = edge
				placed = append(placed, mi)
				res.WirelengthUm += m.Weight * (math.Abs(x+m.W/2-m.LogicX) + math.Abs(y+m.H/2-m.LogicY))
				ok = true
				break
			}
		}
		if !ok {
			res.Legal = false
			res.WirelengthUm = math.Inf(1)
			return res
		}
	}
	return res
}

// Validate checks a result: all macros inside the block, no overlaps,
// every macro touching an edge.
func Validate(b Block, res Result) bool {
	for i := range res.Macros {
		m := &res.Macros[i]
		if m.X < -1e-9 || m.Y < -1e-9 || m.X+m.W > b.W+1e-9 || m.Y+m.H > b.H+1e-9 {
			return false
		}
		onEdge := m.X < 1e-9 || m.Y < 1e-9 || m.X+m.W > b.W-1e-9 || m.Y+m.H > b.H-1e-9
		if !onEdge {
			return false
		}
		for j := i + 1; j < len(res.Macros); j++ {
			p := &res.Macros[j]
			if overlaps(m.X, m.Y, m.W, m.H, p.X, p.Y, p.W, p.H) {
				return false
			}
		}
	}
	return true
}
