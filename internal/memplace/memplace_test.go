package memplace

import (
	"math"
	"math/rand"
	"testing"
)

func testCase(seed int64, n int) (Block, []Macro) {
	rng := rand.New(rand.NewSource(seed))
	b := Block{W: 100, H: 100}
	macros := make([]Macro, n)
	for i := range macros {
		macros[i] = Macro{
			Name:   string(rune('A' + i)),
			W:      8 + rng.Float64()*12,
			H:      8 + rng.Float64()*12,
			LogicX: 20 + rng.Float64()*60,
			LogicY: 20 + rng.Float64()*60,
			Weight: 1 + rng.Float64()*10,
		}
	}
	return b, macros
}

func TestRobotLegal(t *testing.T) {
	b, macros := testCase(1, 6)
	res := Robot(b, macros)
	if !res.Legal {
		t.Fatal("robot produced illegal placement")
	}
	if !Validate(b, res) {
		t.Fatal("robot placement fails validation")
	}
	if math.IsInf(res.WirelengthUm, 1) || res.WirelengthUm <= 0 {
		t.Fatalf("wirelength %v", res.WirelengthUm)
	}
}

func TestRobotBeatsRandom(t *testing.T) {
	var robot, random float64
	trials := 0
	for seed := int64(0); seed < 10; seed++ {
		b, macros := testCase(seed, 5)
		r := Robot(b, macros)
		n := Random(b, macros, seed+100)
		if !r.Legal || !n.Legal {
			continue
		}
		robot += r.WirelengthUm
		random += n.WirelengthUm
		trials++
	}
	if trials < 5 {
		t.Fatalf("only %d legal trials", trials)
	}
	if robot >= random {
		t.Errorf("robot total WL %v not below random %v over %d trials", robot, random, trials)
	}
}

func TestRandomLegalOrFlagged(t *testing.T) {
	b, macros := testCase(3, 6)
	res := Random(b, macros, 1)
	if res.Legal && !Validate(b, res) {
		t.Fatal("random says legal but validation fails")
	}
}

func TestMacroPulledTowardLogic(t *testing.T) {
	// One macro whose logic sits near the bottom edge: the robot
	// should put it on the bottom.
	b := Block{W: 100, H: 100}
	m := []Macro{{Name: "M", W: 10, H: 10, LogicX: 50, LogicY: 5, Weight: 1}}
	res := Robot(b, m)
	if !res.Legal {
		t.Fatal("illegal")
	}
	if res.Macros[0].Edge != 0 {
		t.Errorf("macro placed on edge %d, want bottom (0)", res.Macros[0].Edge)
	}
	if math.Abs(res.Macros[0].X+5-50) > 2 {
		t.Errorf("macro x %v not aligned with logic x 50", res.Macros[0].X)
	}
}

func TestOversizedMacroFlagged(t *testing.T) {
	b := Block{W: 20, H: 20}
	m := []Macro{{Name: "huge", W: 30, H: 30, Weight: 1}}
	res := Robot(b, m)
	if res.Legal {
		t.Fatal("macro larger than the block cannot be legal")
	}
}

func TestManyMacrosStillPack(t *testing.T) {
	// 10 small macros fit comfortably along a 100-unit periphery.
	b, macros := testCase(5, 10)
	for i := range macros {
		macros[i].W, macros[i].H = 8, 8
	}
	res := Robot(b, macros)
	if !res.Legal || !Validate(b, res) {
		t.Fatal("robot failed to pack 10 small macros")
	}
}
