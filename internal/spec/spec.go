// Package spec implements the speculation oracle behind the flow's
// speculative stage-overlap engine (flow.Options.Speculate): it
// remembers the post-synth and post-place artifacts of completed runs
// and serves them as predictions for runs that share the same upstream
// inputs.
//
// The memory has two prediction tiers:
//
//   - Exact: the requesting run shares every upstream-relevant option
//     (design content, seed, synth knobs — plus place knobs for place
//     predictions) with an observed run. Upstream stages are pure
//     functions of those inputs, so an exact prediction is certain to
//     commit. This is the common case in real campaigns: sweeps that
//     vary only downstream knobs (routing supply, iteration budgets,
//     derates, recovery) re-derive identical upstream artifacts today,
//     serially; speculation overlaps them instead.
//
//   - Cross-seed (opt-in): the run matches a family only up to its
//     seed. The artifact served is the family's newest member and the
//     scalar side is the family's running mean — the seed-marginalized
//     estimate that internal/predict's ropes model — so the prediction
//     is genuinely speculative and usually misses on artifact equality.
//     This tier exists to measure the cost of mispredicting (the flow
//     discards and reruns downstream on the true result) and to feed
//     the predictor-accuracy histograms with honest errors.
//
// The memory is safe for concurrent use; stored artifacts are cloned in
// and never mutated, so concurrent speculative chains can clone from
// them freely.
package spec

import (
	"fmt"
	"sync"

	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
)

// version participates in every prediction ID, so journaled hit/miss
// provenance survives predictor upgrades. Bump it when the prediction
// logic changes.
const version = "spec.Memory/1"

// Options configures a Memory.
type Options struct {
	// CrossSeed additionally serves predictions across seeds (see the
	// package comment). Off by default: cross-seed artifacts virtually
	// never commit, so they only spend speculative compute.
	CrossSeed bool
	// Cap bounds the retained artifacts per stage (0 = 256). Eviction
	// is oldest-first — campaign sweeps revisit recent upstream inputs,
	// not ancient ones.
	Cap int
}

func (o Options) withDefaults() Options {
	if o.Cap <= 0 {
		o.Cap = 256
	}
	return o
}

// synthEntry is one remembered synthesis outcome. res.Netlist is a
// private clone, never mutated after store.
type synthEntry struct {
	res synth.Result
}

// placeEntry is one remembered placement outcome with its placed
// artifact (private clone) and the provenance the flow stamped the
// observation with — the exact-tier prediction serves the triple back
// verbatim, so the flow can commit it outright once the provenance
// matches the run's own.
type placeEntry struct {
	res    place.Result
	placed *netlist.Netlist
	prov   flow.PlaceProvenance
}

// family tracks the running scalar statistics of a seed-agnostic
// option family, the data behind cross-seed scalar estimates.
type family struct {
	n          int
	sumA, sumB float64 // synth: area, wns; place: hpwl, unused
}

// Memory is the artifact-memory oracle. It implements flow.SpecOracle.
type Memory struct {
	opts Options

	mu         sync.Mutex
	synth      map[string]*synthEntry // exact key -> artifact
	synthOrder []string
	synthAny   map[string]*synthEntry // family key -> newest member
	synthFam   map[string]*family
	place      map[string]*placeEntry
	placeOrder []string
	placeAny   map[string]*placeEntry
	placeFam   map[string]*family
}

// NewMemory creates an empty artifact memory.
func NewMemory(opts Options) *Memory {
	return &Memory{
		opts:     opts.withDefaults(),
		synth:    map[string]*synthEntry{},
		synthAny: map[string]*synthEntry{},
		synthFam: map[string]*family{},
		place:    map[string]*placeEntry{},
		placeAny: map[string]*placeEntry{},
		placeFam: map[string]*family{},
	}
}

// Version implements flow.SpecOracle.
func (m *Memory) Version() string {
	if m.opts.CrossSeed {
		return version + "+cross"
	}
	return version
}

// synthFamKey identifies a synthesis family: everything the synth stage
// depends on except the seed. Options are pre-normalized by the flow.
func synthFamKey(fp uint64, o flow.Options) string {
	return fmt.Sprintf("%016x f=%g se=%d mf=%d", fp, o.TargetFreqGHz, o.SynthEffort, o.MaxFanout)
}

// placeFamKey identifies a placement family: the synth family plus
// every placement knob (the placed artifact depends on both stages).
func placeFamKey(fp uint64, o flow.Options) string {
	return synthFamKey(fp, o) +
		fmt.Sprintf(" u=%g pm=%d part=%d pw=%d", o.Utilization, o.PlaceMoves, o.Partitions, o.PlaceWorkers)
}

func seedKey(fam string, seed int64) string { return fam + fmt.Sprintf(" s=%d", seed) }

// PredictSynth implements flow.SpecOracle.
func (m *Memory) PredictSynth(fp uint64, o flow.Options) (flow.SynthPrediction, bool) {
	fam := synthFamKey(fp, o)
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.synth[seedKey(fam, o.Seed)]; ok {
		return flow.SynthPrediction{Synth: e.res, ID: m.Version() + "/synth/exact"}, true
	}
	if m.opts.CrossSeed {
		if e, ok := m.synthAny[fam]; ok {
			res := e.res
			if f := m.synthFam[fam]; f != nil && f.n > 0 {
				// Seed-marginalized scalar estimate: the family mean, the
				// same quantity internal/predict's synth ropes regress.
				res.AreaUm2 = f.sumA / float64(f.n)
				res.WNSPs = f.sumB / float64(f.n)
			}
			return flow.SynthPrediction{Synth: res, ID: m.Version() + "/synth/cross"}, true
		}
	}
	return flow.SynthPrediction{}, false
}

// PredictPlace implements flow.SpecOracle.
func (m *Memory) PredictPlace(fp uint64, o flow.Options) (flow.PlacePrediction, bool) {
	fam := placeFamKey(fp, o)
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.place[seedKey(fam, o.Seed)]; ok {
		return flow.PlacePrediction{Place: e.res, Netlist: e.placed, Prov: e.prov, ID: m.Version() + "/place/exact"}, true
	}
	if m.opts.CrossSeed {
		if e, ok := m.placeAny[fam]; ok {
			res := e.res
			if f := m.placeFam[fam]; f != nil && f.n > 0 {
				res.HPWLUm = f.sumA / float64(f.n)
			}
			// Estimate grade: the scalars are family means, not the
			// artifact's own, so the pair carries no provenance and can
			// only seed speculative recomputation.
			return flow.PlacePrediction{Place: res, Netlist: e.placed, ID: m.Version() + "/place/cross"}, true
		}
	}
	return flow.PlacePrediction{}, false
}

// ObserveSynth implements flow.SpecOracle: it remembers the post-synth
// artifact (cloned — the flow will mutate the live netlist in place)
// under the run's exact upstream key and updates the family estimate.
func (m *Memory) ObserveSynth(fp uint64, o flow.Options, res synth.Result) {
	if res.Netlist == nil {
		return
	}
	fam := synthFamKey(fp, o)
	key := seedKey(fam, o.Seed)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.synth[key]; dup {
		return
	}
	stored := res
	stored.Netlist = res.Netlist.Clone()
	e := &synthEntry{res: stored}
	m.synth[key] = e
	m.synthOrder = append(m.synthOrder, key)
	m.synthAny[fam] = e
	f := m.synthFam[fam]
	if f == nil {
		f = &family{}
		m.synthFam[fam] = f
	}
	f.n++
	f.sumA += res.AreaUm2
	f.sumB += res.WNSPs
	if len(m.synthOrder) > m.opts.Cap {
		old := m.synthOrder[0]
		m.synthOrder = m.synthOrder[1:]
		if evicted, ok := m.synth[old]; ok {
			delete(m.synth, old)
			for famKey, any := range m.synthAny {
				if any == evicted {
					delete(m.synthAny, famKey)
				}
			}
		}
	}
}

// ObservePlace implements flow.SpecOracle: it remembers the placed
// artifact under the run's exact upstream key.
func (m *Memory) ObservePlace(fp uint64, o flow.Options, res place.Result, placed *netlist.Netlist, prov flow.PlaceProvenance) {
	if placed == nil {
		return
	}
	fam := placeFamKey(fp, o)
	key := seedKey(fam, o.Seed)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.place[key]; dup {
		return
	}
	e := &placeEntry{res: res, placed: placed.Clone(), prov: prov}
	m.place[key] = e
	m.placeOrder = append(m.placeOrder, key)
	m.placeAny[fam] = e
	f := m.placeFam[fam]
	if f == nil {
		f = &family{}
		m.placeFam[fam] = f
	}
	f.n++
	f.sumA += res.HPWLUm
	if len(m.placeOrder) > m.opts.Cap {
		old := m.placeOrder[0]
		m.placeOrder = m.placeOrder[1:]
		if evicted, ok := m.place[old]; ok {
			delete(m.place, old)
			for famKey, any := range m.placeAny {
				if any == evicted {
					delete(m.placeAny, famKey)
				}
			}
		}
	}
}

// Len reports the retained artifact counts (for tests and
// introspection).
func (m *Memory) Len() (synthN, placeN int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.synth), len(m.place)
}

var _ flow.SpecOracle = (*Memory)(nil)
