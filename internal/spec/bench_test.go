package spec

import (
	"context"
	"hash/fnv"
	"math"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
)

// benchDesign is the pulpino-proxy workload the speculation gates run
// on: large enough that every stage has real weight, shared across
// iterations (flow runs never mutate their input design).
var benchDesign = sync.OnceValue(func() *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.PulpinoProxy(1))
})

// sweepPoints is the downstream-knob sweep speculation exists for: the
// routing iteration budget varies, everything upstream is pinned, so
// after the first (cold) point every upstream artifact is re-derivable
// from memory.
func sweepPoints(speculate bool) []campaign.Point {
	d := benchDesign()
	key := campaign.KeyFor(d)
	var pts []campaign.Point
	for _, iters := range []int{8, 12, 16, 20} {
		o := flow.Options{TargetFreqGHz: 0.5, Seed: 5, RouteIters: iters}
		if speculate {
			o.Speculate = flow.SpecConfig{Enabled: true}
		}
		pts = append(pts, campaign.Point{Design: d, DesignKey: key, Options: o})
	}
	return pts
}

// seedPoints is the adversarial sweep for the all-miss gate: every
// point differs upstream (seed), so forced predictions never commit.
func seedPoints(speculate bool) []campaign.Point {
	d := benchDesign()
	key := campaign.KeyFor(d)
	var pts []campaign.Point
	for seed := int64(1); seed <= 4; seed++ {
		o := flow.Options{TargetFreqGHz: 0.5, Seed: seed, RouteIters: 12}
		if speculate {
			o.Speculate = flow.SpecConfig{Enabled: true}
		}
		pts = append(pts, campaign.Point{Design: d, DesignKey: key, Options: o})
	}
	return pts
}

// qorHash folds every result's implemented-netlist fingerprint and
// headline QoR into one checksum — the equal-QoR side of the bench
// gates. Reported as a metric, so check.sh can demand byte-identical
// results between the speculative and reference sweeps.
func qorHash(results []*flow.Result) float64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf) //nolint:errcheck // fnv never fails
	}
	for _, r := range results {
		put(r.Netlist.Fingerprint())
		put(math.Float64bits(r.AreaUm2))
		put(math.Float64bits(r.WNSPs))
		put(math.Float64bits(r.Place.HPWLUm))
		put(uint64(r.Route.Final))
	}
	// Folded to 32 bits so the value survives the float64 benchmark
	// metric channel exactly.
	return float64(h.Sum64() & 0xffffffff)
}

// runSweepBench runs one campaign per iteration at a single license
// (Workers: 1), so any wall-clock the speculative variant reclaims
// comes from stage overlap alone, never from running points
// concurrently.
func runSweepBench(b *testing.B, pts []campaign.Point, mkOracle func() flow.SpecOracle) {
	var hash float64
	for i := 0; i < b.N; i++ {
		cfg := campaign.Config{Workers: 1, Cache: campaign.NewCache(0)}
		if mkOracle != nil {
			cfg.Oracle = mkOracle()
		}
		eng := campaign.New(cfg)
		res, err := eng.Run(context.Background(), pts)
		if err != nil {
			b.Fatal(err)
		}
		hash = qorHash(res)
	}
	b.ReportMetric(hash, "qor_hash")
}

// BenchmarkSpecSweepBase is the reference: the downstream sweep without
// speculation.
func BenchmarkSpecSweepBase(b *testing.B) {
	pts := sweepPoints(false)
	b.ResetTimer()
	runSweepBench(b, pts, nil)
}

// BenchmarkSpecSweepOverlap runs the identical sweep with speculative
// stage overlap on a fresh artifact memory: point 1 is cold, points 2-4
// hit the exact tier and adopt place/cts/groute/droute from
// speculation. The check.sh gate demands >= 20% wall-clock reclaimed at
// an identical qor_hash.
func BenchmarkSpecSweepOverlap(b *testing.B) {
	pts := sweepPoints(true)
	b.ResetTimer()
	runSweepBench(b, pts, func() flow.SpecOracle {
		return NewMemory(Options{})
	})
}

// wrongOracle serves stale artifacts captured from a different option
// point, so every prediction launches and every judgment misses — the
// worst case the <= 5% overhead gate prices.
type wrongOracle struct {
	synth flow.SynthPrediction
	place flow.PlacePrediction
}

func (w *wrongOracle) Version() string { return "bench-wrong/1" }
func (w *wrongOracle) PredictSynth(uint64, flow.Options) (flow.SynthPrediction, bool) {
	return w.synth, true
}
func (w *wrongOracle) PredictPlace(uint64, flow.Options) (flow.PlacePrediction, bool) {
	return w.place, true
}
func (w *wrongOracle) ObserveSynth(uint64, flow.Options, synth.Result) {}
func (w *wrongOracle) ObservePlace(uint64, flow.Options, place.Result, *netlist.Netlist, flow.PlaceProvenance) {
}

// staleOracle builds the wrongOracle from a real run at a frequency no
// sweep point uses: genuine artifacts, guaranteed fingerprint misses.
var staleOracle = sync.OnceValue(func() *wrongOracle {
	cap0 := &capturingOracle{}
	opts := flow.Options{TargetFreqGHz: 0.8, Seed: 77, RouteIters: 12}
	if _, err := flow.RunCfg(context.Background(), benchDesign(), opts, flow.RunConfig{Oracle: cap0}); err != nil {
		panic(err)
	}
	sp := flow.SynthPrediction{Synth: cap0.synth, ID: "bench/stale/s"}
	sp.Synth.Netlist = cap0.synthArt
	// The stale memo keeps its true provenance: the sweep's seeds differ
	// from the capture's, so neither the redundancy skip nor the memo
	// commit applies and the full mispredict path (launch, judge, reap)
	// is what the overhead gate prices.
	return &wrongOracle{
		synth: sp,
		place: flow.PlacePrediction{Place: cap0.place, Netlist: cap0.placeArt, Prov: cap0.prov, ID: "bench/stale/p"},
	}
})

// BenchmarkSpecMissBase is the reference for the overhead gate: the
// seed sweep without speculation.
func BenchmarkSpecMissBase(b *testing.B) {
	pts := seedPoints(false)
	b.ResetTimer()
	runSweepBench(b, pts, nil)
}

// BenchmarkSpecMissSpec runs the seed sweep with an oracle that is
// always wrong: every speculative chain launches, burns, and is
// discarded. The gate bounds the wall-clock cost of pure misprediction
// at 5% over the reference, at an identical qor_hash.
func BenchmarkSpecMissSpec(b *testing.B) {
	pts := seedPoints(true)
	stale := staleOracle()
	b.ResetTimer()
	runSweepBench(b, pts, func() flow.SpecOracle { return stale })
}
