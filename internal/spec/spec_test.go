package spec

import (
	"strings"
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
)

func testDesign(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func synthRes(seed int64, area, wns float64) synth.Result {
	return synth.Result{Netlist: testDesign(seed), AreaUm2: area, WNSPs: wns}
}

func TestMemoryExactHitAfterObserve(t *testing.T) {
	m := NewMemory(Options{})
	opts := flow.Options{TargetFreqGHz: 0.5, Seed: 3}
	res := synthRes(3, 100, -20)
	m.ObserveSynth(7, opts, res)

	p, ok := m.PredictSynth(7, opts)
	if !ok {
		t.Fatal("exact prediction missing after observe")
	}
	if !strings.HasSuffix(p.ID, "/synth/exact") {
		t.Errorf("ID = %q, want /synth/exact suffix", p.ID)
	}
	if p.Synth.Netlist.Fingerprint() != res.Netlist.Fingerprint() {
		t.Error("exact prediction serves a different artifact")
	}
	if p.Synth.AreaUm2 != 100 || p.Synth.WNSPs != -20 {
		t.Errorf("exact prediction altered scalars: %+v", p.Synth)
	}

	// Any key component off: no prediction without cross-seed.
	other := opts
	other.Seed = 4
	if _, ok := m.PredictSynth(7, other); ok {
		t.Error("seed mismatch predicted without CrossSeed")
	}
	other = opts
	other.TargetFreqGHz = 0.6
	if _, ok := m.PredictSynth(7, other); ok {
		t.Error("frequency mismatch predicted")
	}
	if _, ok := m.PredictSynth(8, opts); ok {
		t.Error("design-fingerprint mismatch predicted")
	}
}

func TestMemoryColdMiss(t *testing.T) {
	m := NewMemory(Options{CrossSeed: true})
	if _, ok := m.PredictSynth(1, flow.Options{Seed: 1}); ok {
		t.Error("empty memory offered a synth prediction")
	}
	if _, ok := m.PredictPlace(1, flow.Options{Seed: 1}); ok {
		t.Error("empty memory offered a place prediction")
	}
}

func TestMemoryCrossSeedServesFamilyMean(t *testing.T) {
	m := NewMemory(Options{CrossSeed: true})
	opts := flow.Options{TargetFreqGHz: 0.5, Seed: 1}
	m.ObserveSynth(7, opts, synthRes(1, 100, -10))
	opts.Seed = 2
	m.ObserveSynth(7, opts, synthRes(2, 120, -30))

	opts.Seed = 99 // never observed
	p, ok := m.PredictSynth(7, opts)
	if !ok {
		t.Fatal("cross-seed prediction missing")
	}
	if !strings.HasSuffix(p.ID, "/synth/cross") {
		t.Errorf("ID = %q, want /synth/cross suffix", p.ID)
	}
	if p.Synth.AreaUm2 != 110 || p.Synth.WNSPs != -20 {
		t.Errorf("cross-seed scalars = (%g, %g), want family mean (110, -20)",
			p.Synth.AreaUm2, p.Synth.WNSPs)
	}
	// Artifact is the newest family member.
	if got, want := p.Synth.Netlist.Fingerprint(), testDesign(2).Fingerprint(); got != want {
		t.Error("cross-seed artifact is not the newest family member")
	}

	// The same store with CrossSeed off must not serve it.
	off := NewMemory(Options{})
	off.ObserveSynth(7, flow.Options{TargetFreqGHz: 0.5, Seed: 1}, synthRes(1, 100, -10))
	if _, ok := off.PredictSynth(7, flow.Options{TargetFreqGHz: 0.5, Seed: 99}); ok {
		t.Error("CrossSeed=false served a cross-seed prediction")
	}
}

func TestMemoryObserveClonesArtifacts(t *testing.T) {
	m := NewMemory(Options{})
	opts := flow.Options{Seed: 5}
	res := synthRes(5, 50, 0)
	want := res.Netlist.Fingerprint()
	m.ObserveSynth(1, opts, res)
	// Mutate the live netlist after observe — as the flow's later stages
	// will. The stored prediction must be unaffected.
	res.Netlist.Insts[0].X += 1000
	p, _ := m.PredictSynth(1, opts)
	if p.Synth.Netlist.Fingerprint() != want {
		t.Error("observed artifact aliased the live netlist")
	}

	placed := testDesign(6)
	prov := flow.PlaceProvenance{UpstreamFP: 42, Opts: place.Options{Seed: 9, Moves: 100}}
	m.ObservePlace(1, opts, place.Result{HPWLUm: 10}, placed, prov)
	wantP := placed.Fingerprint()
	placed.Insts[0].Y += 1000
	pp, _ := m.PredictPlace(1, opts)
	if pp.Netlist.Fingerprint() != wantP {
		t.Error("observed placed artifact aliased the live netlist")
	}
	// The exact tier serves the observation's provenance back verbatim;
	// a cross-seed estimate must not carry one.
	if pp.Prov != prov {
		t.Errorf("exact tier dropped provenance: %+v", pp.Prov)
	}
	cross := NewMemory(Options{CrossSeed: true})
	cross.ObservePlace(1, opts, place.Result{HPWLUm: 10}, testDesign(6), prov)
	if cp, ok := cross.PredictPlace(1, flow.Options{Seed: 77}); !ok {
		t.Error("cross-seed place prediction missing")
	} else if cp.Prov != (flow.PlaceProvenance{}) {
		t.Errorf("cross-seed estimate carries provenance: %+v", cp.Prov)
	}
}

func TestMemoryDedupAndEviction(t *testing.T) {
	m := NewMemory(Options{Cap: 2, CrossSeed: true})
	opts := flow.Options{Seed: 1}
	m.ObserveSynth(1, opts, synthRes(1, 100, 0))
	m.ObserveSynth(1, opts, synthRes(1, 999, 0)) // duplicate key: ignored
	if sn, _ := m.Len(); sn != 1 {
		t.Fatalf("duplicate observe stored a second entry: %d", sn)
	}
	if p, _ := m.PredictSynth(1, opts); p.Synth.AreaUm2 != 100 {
		t.Error("duplicate observe overwrote the first entry")
	}

	opts.Seed = 2
	m.ObserveSynth(1, opts, synthRes(2, 100, 0))
	opts.Seed = 3
	m.ObserveSynth(1, opts, synthRes(3, 100, 0)) // evicts seed 1
	if sn, _ := m.Len(); sn != 2 {
		t.Fatalf("cap not enforced: %d entries", sn)
	}
	// The evicted seed is no longer exact — it can only be served by the
	// cross-seed tier now.
	if p, ok := m.PredictSynth(1, flow.Options{Seed: 1}); ok && !strings.HasSuffix(p.ID, "/cross") {
		t.Errorf("evicted entry still served as exact: %q", p.ID)
	}
	if _, ok := m.PredictSynth(1, flow.Options{Seed: 3}); !ok {
		t.Error("newest entry missing after eviction")
	}
	// Cross-seed tier must survive eviction consistently: the family
	// pointer either serves a retained artifact or none at all.
	if p, ok := m.PredictSynth(1, flow.Options{Seed: 99}); ok {
		if got := p.Synth.Netlist.Fingerprint(); got != testDesign(3).Fingerprint() {
			t.Error("cross-seed tier serves an evicted artifact")
		}
	}
}

func TestMemoryVersion(t *testing.T) {
	if v := NewMemory(Options{}).Version(); v != version {
		t.Errorf("Version() = %q", v)
	}
	if v := NewMemory(Options{CrossSeed: true}).Version(); v != version+"+cross" {
		t.Errorf("cross-seed Version() = %q", v)
	}
}
