package spec

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/synth"
)

// normalized strips the one field a speculative run is allowed to differ
// in — its own configuration — so DeepEqual compares pure flow content.
func normalized(r *flow.Result) *flow.Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Options.Speculate = flow.SpecConfig{}
	return &c
}

// capturingOracle records the true artifacts of a run (cloned) so tests
// can build forced predictions from them. It never predicts.
type capturingOracle struct {
	mu       sync.Mutex
	synth    synth.Result
	synthArt *netlist.Netlist
	place    place.Result
	placeArt *netlist.Netlist
	prov     flow.PlaceProvenance
}

func (c *capturingOracle) Version() string { return "capture/1" }
func (c *capturingOracle) PredictSynth(uint64, flow.Options) (flow.SynthPrediction, bool) {
	return flow.SynthPrediction{}, false
}
func (c *capturingOracle) PredictPlace(uint64, flow.Options) (flow.PlacePrediction, bool) {
	return flow.PlacePrediction{}, false
}
func (c *capturingOracle) ObserveSynth(_ uint64, _ flow.Options, res synth.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.synth = res
	c.synthArt = res.Netlist.Clone()
}
func (c *capturingOracle) ObservePlace(_ uint64, _ flow.Options, res place.Result, placed *netlist.Netlist, prov flow.PlaceProvenance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.place = res
	c.placeArt = placed.Clone()
	c.prov = prov
}

// stubOracle serves fixed predictions, so tests control exactly what the
// speculation engine believes.
type stubOracle struct {
	synthPred flow.SynthPrediction
	synthOK   bool
	placePred flow.PlacePrediction
	placeOK   bool
}

func (s *stubOracle) Version() string { return "stub/1" }
func (s *stubOracle) PredictSynth(uint64, flow.Options) (flow.SynthPrediction, bool) {
	return s.synthPred, s.synthOK
}
func (s *stubOracle) PredictPlace(uint64, flow.Options) (flow.PlacePrediction, bool) {
	return s.placePred, s.placeOK
}
func (s *stubOracle) ObserveSynth(uint64, flow.Options, synth.Result) {}
func (s *stubOracle) ObservePlace(uint64, flow.Options, place.Result, *netlist.Netlist, flow.PlaceProvenance) {
}

// runSpec runs one speculative flow and returns its result and stats.
func runSpec(t *testing.T, design *netlist.Netlist, opts flow.Options, oracle flow.SpecOracle, slots *sched.Slots) (*flow.Result, *flow.SpecStats) {
	t.Helper()
	var st *flow.SpecStats
	res, err := flow.RunCfg(context.Background(), design, opts, flow.RunConfig{
		Oracle: oracle, SpecSlots: slots,
		SpecReport: func(s flow.SpecStats) { st = &s },
	})
	if err != nil {
		t.Fatalf("speculative run failed: %v", err)
	}
	return res, st
}

func TestSpeculativeHitCommitsIdenticalResult(t *testing.T) {
	design := testDesign(1)
	base := flow.Options{TargetFreqGHz: 0.5, Seed: 3, RouteIters: 12}
	ref := flow.Run(design, base)

	mem := NewMemory(Options{})
	// Warm the oracle with a run that shares every upstream knob and
	// differs downstream — the sweep shape speculation exists for.
	warm := base
	warm.RouteIters = 8
	if _, err := flow.RunCfg(context.Background(), design, warm, flow.RunConfig{Oracle: mem}); err != nil {
		t.Fatalf("warm run failed: %v", err)
	}

	specOpts := base
	specOpts.Speculate = flow.SpecConfig{Enabled: true}
	got, st := runSpec(t, design, specOpts, mem, nil)

	if st == nil {
		t.Fatal("SpecReport never fired")
	}
	if !st.Synth.Predicted || !st.Synth.Exact || !st.Synth.Hit {
		t.Errorf("synth judgment = %+v, want exact hit", st.Synth)
	}
	if !st.Place.Predicted || !st.Place.Exact || !st.Place.Hit {
		t.Errorf("place judgment = %+v, want exact hit", st.Place)
	}
	// Only the downstream chain launches: the exact-tier place
	// prediction carries provenance pinning it to the predicted synth
	// artifact, so the speculative re-anneal is skipped as redundant and
	// the placement commits as a verified memo instead.
	if st.Launched != 1 || st.Skipped != 0 || st.Discarded != 0 {
		t.Errorf("launched/skipped/discarded = %d/%d/%d, want 1/0/0",
			st.Launched, st.Skipped, st.Discarded)
	}
	// place + cts + groute + droute all adopted.
	if st.Committed != 4 {
		t.Errorf("committed = %d, want 4", st.Committed)
	}
	// The result records the (default-normalized) speculation config.
	if !got.Options.Speculate.Enabled || got.Options.Speculate.TolerancePct != 1 {
		t.Errorf("result lost its speculation config: %+v", got.Options.Speculate)
	}
	if !reflect.DeepEqual(normalized(got), ref) {
		t.Error("committed speculative result differs from the non-speculative reference")
	}
}

func TestSpeculativeMispredictsDiscardAndMatchReference(t *testing.T) {
	design := testDesign(2)
	base := flow.Options{TargetFreqGHz: 0.55, Seed: 7, RouteIters: 10,
		Speculate: flow.SpecConfig{Enabled: true, TolerancePct: 1}}

	noSpec := base
	noSpec.Speculate = flow.SpecConfig{}
	ref := flow.Run(design, noSpec)

	// Capture the true artifacts to perturb.
	cap0 := &capturingOracle{}
	if _, err := flow.RunCfg(context.Background(), design, noSpec, flow.RunConfig{Oracle: cap0}); err != nil {
		t.Fatalf("capture run failed: %v", err)
	}
	// And the artifacts of a different option point — the stale-oracle
	// miss. (A different *seed* is not enough: tiny-design synthesis is
	// seed-insensitive, which the cross-seed tier legitimately exploits.)
	otherPt := noSpec
	otherPt.TargetFreqGHz = 0.7
	capOther := &capturingOracle{}
	if _, err := flow.RunCfg(context.Background(), design, otherPt, flow.RunConfig{Oracle: capOther}); err != nil {
		t.Fatalf("capture run failed: %v", err)
	}
	if capOther.synthArt.Fingerprint() == cap0.synthArt.Fingerprint() {
		t.Fatal("test premise broken: 0.55 and 0.7 GHz synthesized identical netlists")
	}

	perturb := func(n *netlist.Netlist) *netlist.Netlist {
		c := n.Clone()
		c.Insts[0].X += 1
		return c
	}
	truePreds := func() (flow.SynthPrediction, flow.PlacePrediction) {
		// The predictions carry the pre-place artifact clone, as a real
		// oracle must: the live result netlist mutates through the flow.
		// The place pair is a verbatim observation, so it carries its
		// provenance.
		sp := flow.SynthPrediction{Synth: cap0.synth, ID: "t/s"}
		sp.Synth.Netlist = cap0.synthArt
		return sp, flow.PlacePrediction{Place: cap0.place, Netlist: cap0.placeArt, Prov: cap0.prov, ID: "t/p"}
	}

	cases := []struct {
		name      string
		mutate    func(*flow.SynthPrediction, *flow.PlacePrediction)
		wantHit   bool
		wantExact bool
	}{
		{"exact scalars and artifacts commit", func(*flow.SynthPrediction, *flow.PlacePrediction) {}, true, true},
		{"within tolerance commits", func(s *flow.SynthPrediction, p *flow.PlacePrediction) {
			// Perturbed scalars make the pair an estimate, not a
			// verbatim observation: a correct oracle must then drop the
			// provenance, and the engine falls back to speculative
			// recomputation (which a hit adopts with the *true* scalars).
			s.Synth.AreaUm2 *= 1.005 // 0.5% < 1%
			p.Place.HPWLUm *= 1.005
			p.Prov = flow.PlaceProvenance{}
		}, true, true},
		{"near hit (scalar off) discards", func(s *flow.SynthPrediction, p *flow.PlacePrediction) {
			s.Synth.AreaUm2 *= 1.10 // 10% > 1%
			p.Place.HPWLUm *= 1.10
			p.Prov = flow.PlaceProvenance{}
		}, false, true},
		{"wrong artifact discards despite perfect scalars", func(s *flow.SynthPrediction, p *flow.PlacePrediction) {
			s.Synth.Netlist = perturb(s.Synth.Netlist)
			p.Netlist = perturb(p.Netlist)
			p.Prov = flow.PlaceProvenance{}
		}, false, false},
		{"stale artifact from another option point discards", func(s *flow.SynthPrediction, p *flow.PlacePrediction) {
			// A genuinely stale memo keeps its (true) provenance — it
			// describes another option point, so the provenance check
			// must reject it against this run's synth output.
			s.Synth = capOther.synth
			s.Synth.Netlist = capOther.synthArt
			p.Place = capOther.place
			p.Netlist = capOther.placeArt
			p.Prov = capOther.prov
		}, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, pp := truePreds()
			tc.mutate(&sp, &pp)
			stub := &stubOracle{synthPred: sp, synthOK: true, placePred: pp, placeOK: true}
			got, st := runSpec(t, design, base, stub, nil)
			if st == nil {
				t.Fatal("SpecReport never fired")
			}
			if st.Synth.Hit != tc.wantHit || st.Place.Hit != tc.wantHit {
				t.Errorf("hits = %t/%t, want %t", st.Synth.Hit, st.Place.Hit, tc.wantHit)
			}
			if st.Synth.Exact != tc.wantExact || st.Place.Exact != tc.wantExact {
				t.Errorf("exact = %t/%t, want %t", st.Synth.Exact, st.Place.Exact, tc.wantExact)
			}
			if tc.wantHit {
				if st.Discarded != 0 || st.Committed != 4 {
					t.Errorf("discarded/committed = %d/%d, want 0/4", st.Discarded, st.Committed)
				}
			} else {
				// Every launched chain that missed — and only those —
				// is discarded. (Redundancy-skipped or slot-starved
				// chains never launched, so they have nothing to
				// discard.)
				wantDiscarded := 0
				for _, j := range []flow.SpecJudgment{st.Synth, st.Place} {
					if j.Launched && !j.Hit {
						wantDiscarded++
					}
				}
				if wantDiscarded == 0 {
					t.Error("miss case launched no speculative chain at all")
				}
				if st.Discarded != wantDiscarded || st.Committed != 0 {
					t.Errorf("discarded/committed = %d/%d, want %d/0",
						st.Discarded, st.Committed, wantDiscarded)
				}
			}
			// The only acceptance criterion that matters: the committed
			// result is the reference result, hit or miss.
			if !reflect.DeepEqual(normalized(got), ref) {
				t.Error("result differs from non-speculative reference")
			}
		})
	}
}

func TestSpeculationSlotExhaustion(t *testing.T) {
	design := testDesign(3)
	opts := flow.Options{TargetFreqGHz: 0.5, Seed: 5, RouteIters: 8,
		Speculate: flow.SpecConfig{Enabled: true}}
	noSpec := opts
	noSpec.Speculate = flow.SpecConfig{}
	ref := flow.Run(design, noSpec)

	cap0 := &capturingOracle{}
	if _, err := flow.RunCfg(context.Background(), design, noSpec, flow.RunConfig{Oracle: cap0}); err != nil {
		t.Fatalf("capture run failed: %v", err)
	}
	synthPred := flow.SynthPrediction{Synth: cap0.synth, ID: "t/s"}
	synthPred.Synth.Netlist = cap0.synthArt
	stub := &stubOracle{
		synthPred: synthPred, synthOK: true,
		placePred: flow.PlacePrediction{Place: cap0.place, Netlist: cap0.placeArt, ID: "t/p"}, placeOK: true,
	}

	// Zero free slots: both predictions are judged (they are correct) but
	// nothing launches, nothing is adopted, and the result is still the
	// reference — the scheduler can starve speculation, never corrupt it.
	slots := sched.NewSlots(1)
	if !slots.TryAcquire() {
		t.Fatal("could not saturate slots")
	}
	got, st := runSpec(t, design, opts, stub, slots)
	if st.Launched != 0 || st.Skipped != 2 {
		t.Fatalf("launched/skipped = %d/%d, want 0/2", st.Launched, st.Skipped)
	}
	if !st.Synth.Hit || !st.Place.Hit {
		t.Error("unlaunched predictions must still be judged for the accuracy counters")
	}
	if st.Committed != 0 {
		t.Errorf("committed = %d, want 0 without a launch", st.Committed)
	}
	if !reflect.DeepEqual(normalized(got), ref) {
		t.Error("slot-starved speculative run differs from reference")
	}
	if taken, skipped := slots.Stats(); taken != 1 || skipped != 2 {
		t.Errorf("slot stats = %d/%d, want 1 taken, 2 skipped", taken, skipped)
	}

	// A provenance-carrying (verbatim) place prediction needs no slot at
	// all: the placement commits as a verified memo even under full
	// starvation, and the redundant speculative anneal is never offered
	// to the scheduler (only the downstream chain asks — and is refused).
	provPred := stub.placePred
	provPred.Prov = cap0.prov
	stub2 := &stubOracle{synthPred: synthPred, synthOK: true, placePred: provPred, placeOK: true}
	got2, st2 := runSpec(t, design, opts, stub2, slots)
	slots.Release()
	if st2.Launched != 0 || st2.Skipped != 1 {
		t.Errorf("verbatim starved run launched/skipped = %d/%d, want 0/1", st2.Launched, st2.Skipped)
	}
	if st2.Committed != 1 {
		t.Errorf("verbatim starved run committed = %d, want 1 (the place memo)", st2.Committed)
	}
	if !reflect.DeepEqual(normalized(got2), ref) {
		t.Error("memo-committed starved run differs from reference")
	}
}

// specSweepPoints is the worker-invariance workload: two downstream
// variants per seed, so exact-tier speculation warms up mid-campaign and
// hit patterns depend on scheduling — which must never show in results.
func specSweepPoints(design *netlist.Netlist, key string, speculate bool) []campaign.Point {
	var pts []campaign.Point
	for _, seed := range []int64{1, 2, 3} {
		for _, iters := range []int{8, 12} {
			o := flow.Options{TargetFreqGHz: 0.55, Seed: seed, RouteIters: iters}
			if speculate {
				o.Speculate = flow.SpecConfig{Enabled: true}
			}
			pts = append(pts, campaign.Point{Design: design, DesignKey: key, Options: o})
		}
	}
	return pts
}

func TestSpeculativeCampaignWorkerInvariantUnderFaults(t *testing.T) {
	design := testDesign(4)
	key := campaign.KeyFor(design)
	refPts := specSweepPoints(design, key, false)
	want := make([]*flow.Result, len(refPts))
	for i, p := range refPts {
		want[i] = flow.Run(p.Design, p.Options)
	}

	pts := specSweepPoints(design, key, true)
	for _, workers := range []int{1, 2, 4, 8} {
		eng := campaign.New(campaign.Config{
			Workers: workers,
			Cache:   campaign.NewCache(0),
			Oracle:  NewMemory(Options{CrossSeed: true}),
			Faults:  &flow.FaultInjector{Seed: 5, CrashRate: 0.08, LicenseDropRate: 0.05},
			Retry:   campaign.Retry{Max: 25},
		})
		got, err := eng.Run(context.Background(), pts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if !reflect.DeepEqual(normalized(got[i]), want[i]) {
				t.Errorf("workers=%d point %d: speculative result differs from fault-free non-speculative reference", workers, i)
			}
		}
	}
}

func TestSpeculativeCampaignResumeReplaysStats(t *testing.T) {
	design := testDesign(5)
	key := campaign.KeyFor(design)
	pts := specSweepPoints(design, key, true)
	refPts := specSweepPoints(design, key, false)
	want := make([]*flow.Result, len(refPts))
	for i, p := range refPts {
		want[i] = flow.Run(p.Design, p.Options)
	}

	dir := filepath.Join(t.TempDir(), "wal")
	jr, err := campaign.OpenJournal(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First life: cancelled mid-campaign — a crash while speculation is
	// in flight. Whatever completed is durable.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64 // stepped from both campaign workers
	eng := campaign.New(campaign.Config{
		Workers: 2, Journal: jr,
		Oracle: NewMemory(Options{CrossSeed: true}),
		Observer: flow.ObserverFunc(func(rec flow.StepRecord) {
			if rec.Step == "sta" && done.Add(1) >= 4 {
				cancel()
			}
		}),
	})
	if _, err := eng.Run(ctx, pts); err == nil {
		t.Log("campaign finished before the injected crash; resume will be pure replay")
	}
	cancel()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: resume from the journal with a fresh oracle and count
	// what the replay mirrors into the predictor counters.
	jr2, err := campaign.OpenJournal(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	// The replay must mirror exactly the judgments the journal holds.
	entries, _ := jr2.Entries()
	var wantDelta int64
	for _, e := range entries {
		if e.Spec == nil {
			continue
		}
		if e.Spec.Synth.Predicted {
			wantDelta++
		}
		if e.Spec.Place.Predicted {
			wantDelta++
		}
	}
	judged := func() int64 {
		return metrics.Get("predict.synth.hit") + metrics.Get("predict.synth.miss") +
			metrics.Get("predict.place.hit") + metrics.Get("predict.place.miss")
	}
	before := judged()
	eng2 := campaign.New(campaign.Config{
		Workers: 2, Journal: jr2,
		Oracle: NewMemory(Options{CrossSeed: true}),
	})
	st, err := eng2.Replay(pts)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if st.Replayed == 0 {
		t.Error("resume replayed nothing; the first life journaled no points")
	}
	if got, want := judged()-before, wantDelta; got != want {
		t.Errorf("replay mirrored %d predictor judgments, journal holds %d", got, want)
	}
	got, err := eng2.Run(context.Background(), pts)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(normalized(got[i]), want[i]) {
			t.Errorf("resumed point %d differs from the non-speculative reference", i)
		}
	}
}
