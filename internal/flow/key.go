package flow

import (
	"fmt"
	"hash/fnv"
)

// Key returns the canonical cache key of an option point: two Options
// that drive identical flow runs — including ones that only differ in
// unset fields versus their defaults — map to the same string. It is
// the Options half of the campaign memo-cache key
// hash(design, Options) -> *Result.
func (o Options) Key() string {
	o = o.withDefaults()
	// RouteWorkers is deliberately absent: the sharded router's result
	// is identical at every worker count, so it is not a QOR knob.
	// Speculation is present even though committed results match the
	// non-speculative reference: the config is an input of the run
	// (Result.Options records it) and campaigns must not serve a point
	// configured one way from a cache entry computed the other.
	return fmt.Sprintf("f=%g seed=%d se=%d mf=%d u=%g pm=%d part=%d tpe=%g re=%d ri=%d dr=%g stop=%d rec=%t rm=%g pw=%d rt=%d spec=%t stol=%g",
		o.TargetFreqGHz, o.Seed,
		o.SynthEffort, o.MaxFanout, o.Utilization, o.PlaceMoves,
		o.Partitions, o.TracksPerEdge, o.RouteEffort, o.RouteIters,
		o.DeratePct, o.StopRouteAfter, o.RecoverArea, o.RecoverMarginPs,
		o.PlaceWorkers, o.RouteTiles, o.Speculate.Enabled, o.Speculate.TolerancePct)
}

// Hash returns the FNV-1a hash of Key, for shard selection and compact
// fingerprints.
func (o Options) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(o.Key())) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
