package flow

import (
	"fmt"
	"hash/fnv"
)

// Key returns the canonical cache key of an option point: two Options
// that drive identical flow runs — including ones that only differ in
// unset fields versus their defaults — map to the same string. It is
// the Options half of the campaign memo-cache key
// hash(design, Options) -> *Result.
func (o Options) Key() string {
	o = o.withDefaults()
	// RouteWorkers is deliberately absent: the sharded router's result
	// is identical at every worker count, so it is not a QOR knob.
	return fmt.Sprintf("f=%g seed=%d se=%d mf=%d u=%g pm=%d part=%d tpe=%g re=%d ri=%d dr=%g stop=%d rec=%t rm=%g pw=%d rt=%d",
		o.TargetFreqGHz, o.Seed,
		o.SynthEffort, o.MaxFanout, o.Utilization, o.PlaceMoves,
		o.Partitions, o.TracksPerEdge, o.RouteEffort, o.RouteIters,
		o.DeratePct, o.StopRouteAfter, o.RecoverArea, o.RecoverMarginPs,
		o.PlaceWorkers, o.RouteTiles)
}

// Hash returns the FNV-1a hash of Key, for shard selection and compact
// fingerprints.
func (o Options) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(o.Key())) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
