package flow

import "testing"

func TestKeyNormalizesDefaults(t *testing.T) {
	zero := Options{}
	explicit := Options{TargetFreqGHz: 0.5, PlaceMoves: 60}
	if zero.Key() != explicit.Key() {
		t.Errorf("default-normalized options should share a key:\n%q\n%q",
			zero.Key(), explicit.Key())
	}
	if zero.Hash() != explicit.Hash() {
		t.Error("default-normalized options should share a hash")
	}
}

func TestKeyDistinguishesEveryField(t *testing.T) {
	base := Options{TargetFreqGHz: 0.5, Seed: 1, PlaceMoves: 60}
	variants := map[string]Options{}
	add := func(name string, mut func(*Options)) {
		o := base
		mut(&o)
		variants[name] = o
	}
	add("freq", func(o *Options) { o.TargetFreqGHz = 0.6 })
	add("seed", func(o *Options) { o.Seed = 2 })
	add("synth_effort", func(o *Options) { o.SynthEffort = 2 })
	add("max_fanout", func(o *Options) { o.MaxFanout = 8 })
	add("utilization", func(o *Options) { o.Utilization = 0.7 })
	add("place_moves", func(o *Options) { o.PlaceMoves = 80 })
	add("partitions", func(o *Options) { o.Partitions = 4 })
	add("tracks", func(o *Options) { o.TracksPerEdge = 30 })
	add("route_effort", func(o *Options) { o.RouteEffort = 2 })
	add("route_iters", func(o *Options) { o.RouteIters = 10 })
	add("derate", func(o *Options) { o.DeratePct = 3 })
	add("stop_after", func(o *Options) { o.StopRouteAfter = 5 })
	add("recover", func(o *Options) { o.RecoverArea = true })
	add("recover_margin", func(o *Options) { o.RecoverMarginPs = 12 })
	add("place_workers", func(o *Options) { o.PlaceWorkers = 4 })
	add("route_tiles", func(o *Options) { o.RouteTiles = 4 })
	add("speculate", func(o *Options) { o.Speculate.Enabled = true })
	add("speculate_tol", func(o *Options) {
		o.Speculate = SpecConfig{Enabled: true, TolerancePct: 2.5}
	})

	// RouteWorkers must NOT change the key: the sharded router commits
	// identical results at every worker count.
	rw := base
	rw.RouteWorkers = 8
	if rw.Key() != base.Key() {
		t.Errorf("RouteWorkers changed the key: %q vs %q", rw.Key(), base.Key())
	}

	// A disabled speculation config is normalized: its tolerance knob is
	// inert and must not split the cache.
	st := base
	st.Speculate.TolerancePct = 3
	if st.Key() != base.Key() {
		t.Errorf("disabled-speculation tolerance changed the key: %q vs %q", st.Key(), base.Key())
	}

	seen := map[string]string{base.Key(): "base"}
	for name, o := range variants {
		k := o.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("options differing in %s collide with %s: %q", name, prev, k)
		}
		seen[k] = name
		if o.Hash() == base.Hash() {
			t.Errorf("hash collision between base and %s", name)
		}
	}
}
