package flow

import (
	"reflect"
	"testing"
)

// TestParallelKernelsWorkerInvariant: a flow run with the parallel
// kernels enabled must be bit-identical at every worker count —
// PlaceWorkers selects the speculative annealer (whose outcome depends
// only on seed and batch, not crew size) and RouteWorkers only caps
// region concurrency. Identical structs under reflect.DeepEqual is the
// same bar the campaign journal holds replayed results to.
func TestParallelKernelsWorkerInvariant(t *testing.T) {
	d := tiny(41)
	base := Options{TargetFreqGHz: 0.4, Seed: 7, PlaceWorkers: 1, RouteTiles: 2, RouteWorkers: 1}
	ref := Run(d, base)
	for _, w := range []int{2, 4, 8} {
		o := base
		o.PlaceWorkers = w
		o.RouteWorkers = w
		got := Run(d, o)
		// The options differ by construction; everything downstream of
		// them must not.
		got.Options, ref.Options = Options{}, Options{}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: flow result diverged from workers=1 reference", w)
		}
	}
}

// TestParallelKernelsChangeResults: turning the parallel kernels on is
// an explicit opt-in precisely because they walk different (equally
// valid) trajectories than the serial kernels — the flow must reflect
// that, not silently alias the two.
func TestParallelKernelsChangeResults(t *testing.T) {
	d := tiny(42)
	serial := Run(d, Options{TargetFreqGHz: 0.4, Seed: 3})
	par := Run(d, Options{TargetFreqGHz: 0.4, Seed: 3, PlaceWorkers: 4, RouteTiles: 2})
	if serial.Place.HPWLUm == par.Place.HPWLUm {
		t.Error("speculative annealer produced the serial placement (suspicious aliasing)")
	}
	if !par.RouteOK && serial.RouteOK {
		t.Error("parallel kernels broke routing on a design the serial flow routes")
	}
	if par.RuntimeProxy <= 0 || par.Place.HPWLUm <= 0 {
		t.Fatal("parallel flow produced empty results")
	}
}
