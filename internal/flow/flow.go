// Package flow composes synthesis, placement, clock-tree synthesis,
// routing and signoff timing into the SP&R implementation flow that the
// paper's experiments drive.
//
// A flow run is the atomic unit everywhere in the reproduction: the
// noise study of Fig. 3 runs it repeatedly with different seeds, the
// multi-armed bandit of Fig. 7 samples it at different target
// frequencies, the doomed-run corpus of Figs. 9-10 harvests its detailed-
// routing logfiles, and METRICS (Fig. 11) instruments its steps through
// the Observer hook.
package flow

import (
	"context"
	"errors"
	"time"

	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Options is one point in the flow-option tree of the paper's Fig. 5(a):
// each field is a knob a human engineer (or a robot) must choose.
type Options struct {
	TargetFreqGHz float64 // timing target (default 0.5)
	Seed          int64   // run seed; all per-step noise derives from it

	SynthEffort   int     // 1..3
	MaxFanout     int     // synthesis buffering threshold
	Utilization   float64 // placement utilization
	PlaceMoves    int     // SA moves per cell (default 60)
	Partitions    int     // placement partitioning (Fig. 4(b) lever)
	TracksPerEdge float64 // routing supply (default 28)
	RouteEffort   int     // 1..3
	RouteIters    int     // detailed-routing iteration budget (default 20)
	DeratePct     float64 // signoff guardband

	// PlaceWorkers > 0 selects the speculative parallel annealer for the
	// placement stage (place.Options.Workers); 0 keeps the historical
	// serial engine and its bit-exact results. Part of the cache key:
	// the engines produce different (equally valid) placements.
	PlaceWorkers int
	// RouteTiles > 1 selects the region-sharded parallel global router
	// (route.GlobalOptions.Tiles); 0/1 keeps the serial net order.
	RouteTiles int
	// RouteWorkers caps concurrent region routing when RouteTiles > 1
	// (default: all regions in flight). Not part of the cache key —
	// sharded results are identical at every worker count.
	RouteWorkers int

	// StopRouteAfter truncates detailed routing (set by doomed-run
	// policies; 0 = run to completion).
	StopRouteAfter int

	// RecoverArea enables a post-signoff area-recovery pass: speculative
	// downsizing on the incremental signoff timer (sizing.Recover),
	// keeping WNS above RecoverMarginPs. Off by default — it changes the
	// implemented netlist, so experiments opt in explicitly.
	RecoverArea     bool
	RecoverMarginPs float64 // slack floor for recovery (default 5 ps)

	// Speculate enables speculative stage overlap: downstream stages
	// launched on predicted upstream artifacts while the real stage is
	// still running, committed only when the prediction proves exact
	// (see speculate.go). Part of the cache key; committed results are
	// byte-identical to the non-speculative reference.
	Speculate SpecConfig
}

func (o Options) withDefaults() Options {
	if o.TargetFreqGHz <= 0 {
		o.TargetFreqGHz = 0.5
	}
	if o.PlaceMoves <= 0 {
		o.PlaceMoves = 60
	}
	if o.Speculate.Enabled {
		if o.Speculate.TolerancePct <= 0 {
			o.Speculate.TolerancePct = 1
		}
	} else {
		// A disabled config carries no knobs: all non-speculative runs
		// share one canonical key.
		o.Speculate = SpecConfig{}
	}
	return o
}

// Stage option builders, shared verbatim by the real stage bodies and
// the speculative chains so the two paths can never drift apart.

func placeOptions(o Options, n *netlist.Netlist) place.Options {
	return place.Options{
		Seed:        subSeed(o.Seed, 2),
		Moves:       o.PlaceMoves * n.NumCells(),
		Utilization: o.Utilization,
		Partitions:  o.Partitions,
		Workers:     o.PlaceWorkers,
	}
}

func ctsOptions(o Options) cts.Options {
	return cts.Options{Seed: subSeed(o.Seed, 3)}
}

func grouteOptions(o Options) route.GlobalOptions {
	return route.GlobalOptions{
		Seed:          subSeed(o.Seed, 4),
		TracksPerEdge: o.TracksPerEdge,
		Tiles:         o.RouteTiles,
		Workers:       o.RouteWorkers,
	}
}

func drouteOptions(o Options, hook route.IterHook) route.DetailOptions {
	return route.DetailOptions{
		Iterations: o.RouteIters,
		Effort:     o.RouteEffort,
		Seed:       subSeed(o.Seed, 5),
		StopAfter:  o.StopRouteAfter,
		IterHook:   hook,
	}
}

// Result is the outcome of one flow run.
type Result struct {
	Options Options

	// Per-step results.
	Synth  synth.Result
	Place  place.Result
	CTS    cts.Result
	Global *route.GlobalResult
	Route  *route.DetailResult
	Sign   *sta.Report
	// Recover is the post-signoff area-recovery result; nil unless
	// Options.RecoverArea is set.
	Recover *sizing.Result

	// Headline QOR.
	AreaUm2    float64 // cell area + clock buffers
	PowerNW    float64 // leakage + clock power
	WNSPs      float64 // signoff WNS
	MaxFreqGHz float64 // signoff-achievable frequency
	TimingMet  bool
	RouteOK    bool
	Met        bool // TimingMet && RouteOK

	// RuntimeProxy is the simulated TAT of the whole run.
	RuntimeProxy float64

	// Netlist is the implemented design (sized, placed).
	Netlist *netlist.Netlist

	// Stopped is set when a live doomed-run supervisor STOPped the run
	// mid-route: the fields up to and including Route are valid, the
	// signoff fields are zero, and the license the run held was
	// released RouteIters-Route.IterationsRun iterations early.
	Stopped bool
	// Aborted is set when the run was killed by context cancellation or
	// an injected fault; the per-step fields populated before the abort
	// point remain valid.
	Aborted bool
	// FailedStage names the stage a fault or cancellation hit (empty
	// for completed and STOPped runs).
	FailedStage string
}

// StepRecord is the per-step measurement event delivered to observers —
// the METRICS "wrapper/API" data of Fig. 11.
type StepRecord struct {
	Design  string
	RunSeed int64
	Step    string // "synth", "place", "cts", "groute", "droute", "sta"
	Options Options
	Metrics map[string]float64
	// Series carries per-iteration data for steps that have it (the
	// detailed router's DRV-vs-iteration logfile).
	Series []float64
}

// Observer receives step records as the flow executes. Implementations
// must not retain the record's maps across calls if they mutate them.
type Observer interface {
	OnStep(rec StepRecord)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(rec StepRecord)

// OnStep calls f(rec).
func (f ObserverFunc) OnStep(rec StepRecord) { f(rec) }

// RouteSupervisor is the live doomed-run hook: an Observer that also
// implements it is consulted between detailed-routing rip-up passes and
// can STOP the run while it holds its license (the paper's Fig. 9/10
// MDP card acting in real time instead of grading finished logfiles).
// The internal/doom package provides the mdp.Card-backed implementation.
type RouteSupervisor interface {
	RouteIter(design string, runSeed int64, iter int, drvs []int) route.IterAction
}

// subSeed derives a decorrelated per-step seed (splitmix64 step).
func subSeed(seed int64, step uint64) int64 {
	z := uint64(seed) + step*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes the full flow. The input design is not modified.
func Run(design *netlist.Netlist, opts Options) *Result {
	return RunObserved(design, opts, nil)
}

// RunObserved executes the full flow, reporting each step to obs (which
// may be nil). It cannot be cancelled; use RunCtx for that.
func RunObserved(design *netlist.Netlist, opts Options, obs Observer) *Result {
	res, _ := RunCtx(context.Background(), design, opts, obs) //nolint:errcheck // background ctx never cancels
	return res
}

// RunCtx executes the full flow under ctx, reporting each step to obs
// (which may be nil). Cancellation is checked at every stage boundary
// and between detailed-routing rip-up passes, so a doomed-run STOP or a
// campaign teardown reclaims the run's license within one iteration
// instead of after the full run. On cancellation the partial Result has
// Aborted set and ctx.Err() is returned. If obs implements
// RouteSupervisor, its verdicts can STOP the run mid-route; a STOPped
// run returns (res, nil) with res.Stopped set and no signoff fields.
func RunCtx(ctx context.Context, design *netlist.Netlist, opts Options, obs Observer) (*Result, error) {
	return RunFault(ctx, design, opts, obs, nil, 0)
}

// RunFault is RunCtx with deterministic fault injection: inj (which may
// be nil) is consulted at every stage boundary with the run seed, the
// stage about to execute and the caller's attempt number; an injected
// crash or license drop aborts the run with a *FaultError. The campaign
// engine's retry loop increments attempt so a re-run draws fresh fault
// coins.
func RunFault(ctx context.Context, design *netlist.Netlist, opts Options, obs Observer, inj *FaultInjector, attempt int) (*Result, error) {
	return RunCfg(ctx, design, opts, RunConfig{Observer: obs, Faults: inj, Attempt: attempt})
}

// RunConfig bundles the run-level machinery around a flow execution:
// observation, fault injection, the retry attempt number, and the
// hung-stage watchdog.
type RunConfig struct {
	Observer Observer       // step events; may be nil
	Faults   *FaultInjector // deterministic fault schedule; may be nil
	Attempt  int            // retry attempt; fresh fault coins per attempt

	// StageTimeout arms a per-stage watchdog: a stage that has not
	// completed within this deadline is reaped — its context is
	// cancelled, its goroutine abandoned, and the run aborts with a
	// *FaultError of kind FaultHang, exactly as a flow manager kills a
	// wedged tool process to get its license back. Zero disables the
	// watchdog and stages run inline on the caller's goroutine.
	StageTimeout time.Duration

	// Oracle supplies (and learns) upstream-stage predictions for
	// speculative overlap. Observed on every run when non-nil;
	// consulted for predictions only when Options.Speculate.Enabled.
	Oracle SpecOracle
	// SpecSlots caps concurrent speculative chains process-wide.
	// Speculation only ever takes a free slot — nil means unlimited.
	SpecSlots *sched.Slots
	// SpecReport, when non-nil, receives the run's speculation
	// accounting after a successful (or STOPped) run. Aborted runs
	// report nothing, mirroring what campaigns cache and journal.
	SpecReport func(SpecStats)
}

// endStageSpan closes a stage span with the outcome the stage's error
// implies: nil = ok, a watchdog/hang fault = hung, any other injected
// fault = failed, context death = aborted.
func endStageSpan(sp *trace.Span, err error) {
	if sp == nil {
		return
	}
	var fe *FaultError
	switch {
	case err == nil:
		sp.End()
	case errors.As(err, &fe):
		sp.Set("fault", fe.Kind)
		if fe.Kind == FaultHang {
			sp.EndWith(trace.Hung)
		} else {
			sp.EndWith(trace.Failed)
		}
	default:
		sp.EndErr(err)
	}
}

// RunCfg executes the full flow under ctx with the given run machinery.
// Each stage runs in three steps: a boundary gate (context check plus
// injected crash/license faults), the stage body under the watchdog (see
// RunConfig.StageTimeout), and a commit that publishes the stage's
// results into the Result and emits its step record. The commit runs on
// the caller's goroutine only after the body is known to have finished,
// so a reaped stage can never race with the caller: an abandoned body
// writes only stage-local state that nobody reads.
//
// When tracing is armed (trace.Enable) the run emits a "flow.run" span
// with one "flow.<stage>" child per stage, each carrying the stage
// outcome (ok / hung / failed / aborted) — the per-stage latency
// histograms and the flow layer of the Chrome trace both come from
// here.
func RunCfg(ctx context.Context, design *netlist.Netlist, opts Options, rc RunConfig) (res *Result, err error) {
	opts = opts.withDefaults()
	ctx, runSpan := trace.Start(ctx, "flow.run")
	if runSpan != nil {
		runSpan.Set("design", design.Name)
		runSpan.SetInt("seed", opts.Seed)
		runSpan.SetInt("attempt", int64(rc.Attempt))
		defer func() {
			if err == nil && res != nil && res.Stopped {
				runSpan.EndWith(trace.Stopped)
				return
			}
			if err != nil && res != nil && res.FailedStage != "" {
				runSpan.Set("failed_stage", res.FailedStage)
			}
			endStageSpan(runSpan, err)
		}()
	}
	res = &Result{Options: opts}
	// The returned netlist must be value-identical to its serialized
	// round-trip (campaign journals replay results and compare them to
	// recomputed ones), so drop any in-memory placement cache the run's
	// kernels left behind before handing the result out.
	defer func() {
		if res != nil && res.Netlist != nil {
			res.Netlist.InvalidatePlacement()
		}
	}()
	obs := rc.Observer
	emit := func(step string, metrics map[string]float64, series []float64) {
		if obs != nil {
			obs.OnStep(StepRecord{
				Design: design.Name, RunSeed: opts.Seed, Step: step,
				Options: opts, Metrics: metrics, Series: series,
			})
		}
	}
	// The live doomed-run hook (consulted between detailed-routing
	// rip-up passes); resolved before speculation launches because a
	// supervised run must keep detailed routing on the real path.
	var hook route.IterHook
	if sup, ok := obs.(RouteSupervisor); ok {
		hook = func(iter int, drvs []int) route.IterAction {
			return sup.RouteIter(design.Name, opts.Seed, iter, drvs)
		}
	}
	// Speculation: draw predictions and launch downstream chains before
	// the first real stage, so the overlap covers synth and place. The
	// oracle observes every run (learning is free); predictions are only
	// consulted when the option point asks for them.
	var oracleFP uint64
	if rc.Oracle != nil {
		oracleFP = design.Fingerprint()
	}
	spec := rc.newSpecRun(ctx, opts, oracleFP)
	if spec != nil {
		spec.launch(hook != nil)
		defer spec.close()
	}
	defer func() {
		if spec != nil && rc.SpecReport != nil && err == nil && res != nil {
			rc.SpecReport(spec.stats)
		}
	}()
	// stage gates entry (a dead context or an injected fault kills the
	// run at the boundary, where a real flow manager would reap the tool
	// process and release its license), runs body under the watchdog,
	// and on completion commits on this goroutine. body must write only
	// state that commit publishes — never res directly — so that an
	// abandoned hung stage cannot race with the caller.
	stage := func(name string, body func(sctx context.Context), commit func()) error {
		stageCtx, ssp := trace.Start(ctx, "flow."+name)
		fail := func(err error) error {
			res.Aborted = true
			res.FailedStage = name
			endStageSpan(ssp, err)
			return err
		}
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if err := rc.Faults.Check(opts.Seed, name, rc.Attempt); err != nil {
			return fail(err)
		}
		completed := false
		// The body runs under the span-carrying context so work it spawns
		// (detailed-route iterations) nests under the stage span.
		gerr := sched.Guard(stageCtx, rc.StageTimeout, func(sctx context.Context) {
			if !rc.Faults.Hang(sctx, opts.Seed, name, rc.Attempt) {
				return // wedged "tool" died with its context, never computing
			}
			body(sctx)
			completed = true
		})
		if gerr != nil {
			// Watchdog reap: the stage missed its deadline. Surface it as
			// a fault so the campaign retry path treats a hung tool like a
			// crashed one (the retry draws a fresh hang coin).
			ssp.Set("watchdog", "reaped")
			return fail(&FaultError{Stage: name, Kind: FaultHang})
		}
		if !completed {
			// The body never ran: the injected wedge was released by run
			// cancellation (Guard only cancels sctx after it returns, so a
			// nil gerr means the parent context died). Report whichever
			// cause is present; an unbounded hang with no watchdog and no
			// cancellation would still be blocked above.
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			return fail(&FaultError{Stage: name, Kind: FaultHang})
		}
		commit()
		ssp.End()
		return nil
	}

	// Synthesis.
	var n *netlist.Netlist
	var syn synth.Result
	if err := stage("synth", func(context.Context) {
		syn = synth.Run(design, synth.Options{
			TargetFreqGHz: opts.TargetFreqGHz,
			Effort:        opts.SynthEffort,
			Seed:          subSeed(opts.Seed, 1),
			MaxFanout:     opts.MaxFanout,
		})
	}, func() {
		res.Synth = syn
		n = syn.Netlist
		res.Netlist = n
		res.RuntimeProxy += float64(syn.Passes) * float64(n.NumCells()) / 1000
		emit("synth", map[string]float64{
			"area":    syn.AreaUm2,
			"wns":     syn.WNSPs,
			"cells":   float64(n.NumCells()),
			"upsized": float64(syn.Upsized),
			"buffers": float64(syn.BuffersAdded),
		}, nil)
	}); err != nil {
		return res, err
	}
	spec.judgeSynth(syn)
	if rc.Oracle != nil && ctx.Err() == nil {
		rc.Oracle.ObserveSynth(oracleFP, opts, syn)
	}

	// Provenance of the placement this run is about to compute: the
	// committed post-synth fingerprint (coordinates still zero) plus the
	// exact annealer options. Computed once, pre-place, and used both to
	// verify directly-committable predictions and to stamp the oracle's
	// observation.
	var prov PlaceProvenance
	if rc.Oracle != nil {
		prov = placeProv(n, opts)
	}

	// Placement, strongest adoption first. A verbatim place prediction
	// whose provenance equals this run's commits outright — determinism
	// makes it certain, so the dominant stage is skipped, not just
	// overlapped. Failing that, a judged-exact synth prediction means
	// the speculative placement (started before synthesis) ran on
	// identical content: the stage body then just waits for it and
	// copies its coordinates into the real netlist instead of annealing
	// again.
	var pl place.Result
	placeBody := func(context.Context) {
		pl = place.Place(n, placeOptions(opts, n))
	}
	switch {
	case spec.adoptPredicted(prov):
		placeBody = spec.predictedPlaceBody(&pl, n)
	case spec.adoptPlace():
		placeBody = spec.placeBody(&pl, n)
	}
	if err := stage("place", placeBody, func() {
		res.Place = pl
		res.RuntimeProxy += float64(pl.RuntimeProxy) / 50000
		emit("place", map[string]float64{
			"hpwl":         pl.HPWLUm,
			"initial_hpwl": pl.InitialHPWLUm,
			"width":        pl.Width,
		}, nil)
	}); err != nil {
		return res, err
	}
	spec.judgePlace(pl, n)
	// The ctx guard matters on the speculative path: a run cancelled
	// while waiting for its speculative placement commits a zero stage
	// result before the next boundary aborts it, and the oracle must not
	// learn that half-built artifact as this point's truth.
	if rc.Oracle != nil && ctx.Err() == nil {
		rc.Oracle.ObservePlace(oracleFP, opts, pl, n, prov)
	}

	// Clock-tree synthesis. A judged-exact place prediction unlocks the
	// whole speculative downstream chain; each of the next three stages
	// adopts its precomputed result as it lands.
	var ct cts.Result
	ctsBody := func(context.Context) {
		ct = cts.Synthesize(n, ctsOptions(opts))
	}
	if spec.adoptChain() {
		ctsBody = spec.ctsBody(&ct, n)
	}
	if err := stage("cts", ctsBody, func() {
		res.CTS = ct
		res.RuntimeProxy += float64(ct.Buffers) / 100
		emit("cts", map[string]float64{
			"skew":    ct.MaxSkewPs,
			"latency": ct.LatencyPs,
			"buffers": float64(ct.Buffers),
		}, nil)
	}); err != nil {
		return res, err
	}

	// Global routing.
	var gr *route.GlobalResult
	grouteBody := func(context.Context) {
		gr = route.GlobalRoute(n, grouteOptions(opts))
	}
	if spec.adoptChain() {
		grouteBody = spec.grouteBody(&gr, n)
	}
	if err := stage("groute", grouteBody, func() {
		res.Global = gr
		res.RuntimeProxy += gr.WirelengthUm / 5000
		emit("groute", map[string]float64{
			"wirelength":   gr.WirelengthUm,
			"overflow":     gr.OverflowTotal,
			"overflowPeak": gr.OverflowPeak,
			"hotspots":     gr.HotspotFrac,
			"margin":       gr.CongestionMargin(),
		}, nil)
	}); err != nil {
		return res, err
	}

	// Detailed routing, with the live doomed-run hook (resolved above)
	// when the observer supervises. The hook sees iterations as they
	// complete; its STOP truncates the run in place, which is where the
	// compute reclaim of Figs. 9-10 actually happens. The body routes
	// under the stage context so a watchdog reap aborts the router
	// within one rip-up pass instead of waiting out the iteration
	// budget. A speculative chain never routes under supervision, so on
	// supervised runs the adoption body always computes here — with the
	// hook.
	var dr *route.DetailResult
	drouteBody := func(sctx context.Context) {
		dr = route.DetailRouteCtx(sctx, gr, drouteOptions(opts, hook))
	}
	if spec.adoptChain() {
		drouteBody = spec.drouteBody(&dr, &gr, hook)
	}
	if err := stage("droute", drouteBody, func() {
		res.Route = dr
		res.RuntimeProxy += dr.RuntimeProxy
		series := make([]float64, len(dr.DRVs))
		for i, d := range dr.DRVs {
			series[i] = float64(d)
		}
		drouteMetrics := map[string]float64{
			"drvs":       float64(dr.Final),
			"iterations": float64(dr.IterationsRun),
		}
		if dr.StopIter > 0 {
			drouteMetrics["stopped_at"] = float64(dr.StopIter)
			drouteMetrics["saved_iters"] = float64(dr.IterationsBudget - dr.IterationsRun)
		}
		emit("droute", drouteMetrics, series)
	}); err != nil {
		return res, err
	}
	if res.Route.Aborted {
		res.Aborted = true
		res.FailedStage = "droute"
		return res, ctx.Err()
	}
	if res.Route.StopIter > 0 {
		// Live STOP: the run is terminated here, exactly as the paper's
		// policy kills the tool to reclaim its license. Headline fields
		// that exist are filled; signoff never happens.
		res.Stopped = true
		res.AreaUm2 = n.Area() + res.CTS.AreaUm2
		res.PowerNW = n.Leakage() + res.CTS.PowerNW
		res.RouteOK = false
		res.Met = false
		return res, nil
	}

	// Signoff timing with CTS skews.
	var sign *sta.Report
	if err := stage("sta", func(context.Context) {
		sign = sta.Analyze(n, sta.Config{
			Engine:    sta.Signoff,
			SI:        true,
			ClockSkew: res.CTS.SkewPs,
			DeratePct: opts.DeratePct,
		})
	}, func() {
		res.Sign = sign
		res.RuntimeProxy += sign.CostUnits
		emit("sta", map[string]float64{
			"wns":     sign.WNSPs,
			"tns":     sign.TNSPs,
			"maxfreq": sign.MaxFreqGHz,
		}, nil)
	}); err != nil {
		return res, err
	}

	// Optional area recovery on the incremental signoff timer: downsize
	// whatever the flow left oversized while the margin holds, then
	// refresh the signoff report if anything changed.
	if opts.RecoverArea {
		signCfg := sta.Config{
			Engine:    sta.Signoff,
			SI:        true,
			ClockSkew: res.CTS.SkewPs,
			DeratePct: opts.DeratePct,
		}
		var rec sizing.Result
		var resigned *sta.Report
		if err := stage("recover", func(context.Context) {
			rec = sizing.Recover(n, sizing.Config{
				Seed:          subSeed(opts.Seed, 6),
				Engine:        &signCfg,
				SlackMarginPs: opts.RecoverMarginPs,
			})
			if rec.Downsized > 0 {
				resigned = sta.Analyze(n, signCfg)
			}
		}, func() {
			res.Recover = &rec
			// Propagation work is measured in full-Analyze equivalents;
			// convert to runtime via the signoff run's cost.
			res.RuntimeProxy += rec.TimerWorkEquiv * res.Sign.CostUnits
			if resigned != nil {
				res.Sign = resigned
			}
			emit("recover", map[string]float64{
				"downsized":  float64(rec.Downsized),
				"area":       rec.AreaAfter,
				"wns":        res.Sign.WNSPs,
				"timer_work": rec.TimerWorkEquiv,
			}, nil)
		}); err != nil {
			return res, err
		}
	}

	res.AreaUm2 = n.Area() + res.CTS.AreaUm2
	res.PowerNW = n.Leakage() + res.CTS.PowerNW
	res.WNSPs = res.Sign.WNSPs
	res.MaxFreqGHz = res.Sign.MaxFreqGHz
	res.TimingMet = res.Sign.WNSPs >= 0
	res.RouteOK = res.Route.Success
	res.Met = res.TimingMet && res.RouteOK
	return res, nil
}

// Constraints is a QOR acceptance box: the "given power and area
// constraints" of the paper's Fig. 7 caption.
type Constraints struct {
	MaxAreaUm2 float64 // 0 = unconstrained
	MaxPowerNW float64 // 0 = unconstrained
}

// Satisfied reports whether a flow result meets timing, routes cleanly,
// and fits the constraint box.
func (c Constraints) Satisfied(r *Result) bool {
	if !r.Met {
		return false
	}
	if c.MaxAreaUm2 > 0 && r.AreaUm2 > c.MaxAreaUm2 {
		return false
	}
	if c.MaxPowerNW > 0 && r.PowerNW > c.MaxPowerNW {
		return false
	}
	return true
}
