// Speculative stage overlap: while a real upstream stage (synth, place)
// is still running, the downstream stage (place, the cts→groute→droute
// chain) is launched concurrently on a *predicted* upstream artifact;
// when the real result lands it is judged against the prediction and
// the speculative work is either committed or discarded.
//
// Determinism is non-negotiable and holds by construction:
//
//   - A speculative stage is adopted only when the predicted upstream
//     artifact's content fingerprint equals the real one's. Every stage
//     is a pure function of (netlist content, Options), so work computed
//     from a fingerprint-equal artifact is byte-identical to what the
//     real stage would have produced — commit changes wall-clock, never
//     the Result.
//   - The commit decision itself is a pure function of (prediction,
//     real stage result, Options.Speculate) — never of timing, worker
//     count, or which goroutine finished first. A prediction that is
//     within scalar tolerance but not artifact-exact is a "near hit":
//     recorded in the accuracy histograms, still discarded.
//   - On a miss the downstream stage reruns on the true upstream result
//     through the exact same stage() helper as a non-speculative run,
//     so fault coins, watchdog deadlines, emit order and commit order
//     are identical either way.
//
// Speculative work only ever takes a free sched.Slots slot (never
// queues) and so cannot delay the real stages it is trying to hide
// behind.
package flow

import (
	"context"

	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/trace"
)

// SpecConfig is the speculation knob of an option point. It is part of
// the cache key: a speculative and a non-speculative run commit
// identical stage results, but the configuration is still an input a
// campaign must not conflate (Result.Options records it).
type SpecConfig struct {
	// Enabled turns speculative stage overlap on. The run also needs an
	// oracle (RunConfig.Oracle); without one the flag is inert.
	Enabled bool
	// TolerancePct is the commit tolerance on the predicted stage
	// scalars (relative error, percent; default 1). Commit additionally
	// requires artifact-fingerprint equality — tolerance is the policy
	// pre-filter that classifies near hits for the accuracy histograms
	// and lets operators study looser predictors without risking QoR.
	TolerancePct float64
}

// SynthPrediction is an oracle's guess at a run's synthesis outcome.
// Synth.Netlist is the predicted post-synth artifact; it is owned by
// the oracle and treated as read-only (the engine clones before
// mutating).
type SynthPrediction struct {
	Synth synth.Result
	// ID names the prediction's provenance (predictor version + source
	// key) for spans and journaled hit/miss accounting.
	ID string
}

// PlacePrediction is an oracle's guess at a run's placement outcome:
// the predicted placed artifact plus the stage scalars.
type PlacePrediction struct {
	Place place.Result
	// Netlist is the predicted placed artifact (oracle-owned,
	// read-only).
	Netlist *netlist.Netlist
	ID      string
	// Prov, when nonzero, asserts that (Place, Netlist) is a verbatim
	// observation of a real placement annealed from these upstream
	// inputs, stored unmodified. The engine verifies applicability —
	// provenance equality against the committed synth output — before
	// committing the pair outright without re-annealing; the pair's
	// integrity under a nonzero Prov is the oracle's contract.
	// Estimate-grade predictions (learned models, cross-seed family
	// means) must leave Prov zero: they then only seed speculative
	// recomputation and the accuracy counters, never a direct commit.
	Prov PlaceProvenance
}

// PlaceProvenance pins the inputs a placed artifact was derived from.
// Placement is a pure function of (post-synth netlist content, annealer
// options), so two equal provenances name one placement.
type PlaceProvenance struct {
	// UpstreamFP is the content fingerprint of the post-synth netlist
	// the placement was annealed from (coordinates still zero, so the
	// fingerprint is a pure pre-place identity).
	UpstreamFP uint64
	// Opts are the exact annealer options, with Workers normalized to
	// its engine-selection bit: the parallel annealer is bit-invariant
	// across worker counts (pinned by the place package's invariance
	// tests), so only serial-vs-parallel matters for the result.
	Opts place.Options
}

// placeProv computes the provenance of the placement the flow would run
// on n under o.
func placeProv(n *netlist.Netlist, o Options) PlaceProvenance {
	po := placeOptions(o, n)
	if po.Workers > 0 {
		po.Workers = 1
	}
	return PlaceProvenance{UpstreamFP: n.Fingerprint(), Opts: po}
}

// SpecOracle supplies upstream-stage predictions and learns from real
// results. Implementations must be safe for concurrent use: a campaign
// shares one oracle across every in-flight run. Observe methods receive
// live netlists that later stages will mutate — an oracle that retains
// an artifact must clone it.
//
// The designFP argument is the input design's content fingerprint, so
// one oracle can serve campaigns over many designs without collisions.
type SpecOracle interface {
	// Version identifies the predictor build; it participates in
	// prediction IDs so journaled hit/miss provenance survives predictor
	// upgrades.
	Version() string
	PredictSynth(designFP uint64, opts Options) (SynthPrediction, bool)
	PredictPlace(designFP uint64, opts Options) (PlacePrediction, bool)
	ObserveSynth(designFP uint64, opts Options, res synth.Result)
	// ObservePlace receives the run's placement along with its
	// provenance (the post-synth fingerprint and annealer options the
	// flow computed it under), so a memo oracle can serve the pair back
	// as a verbatim, directly-committable prediction.
	ObservePlace(designFP uint64, opts Options, res place.Result, placed *netlist.Netlist, prov PlaceProvenance)
}

// SpecJudgment is the verdict on one upstream prediction — a pure
// function of (prediction, real result, tolerance), computed on the
// caller's goroutine at stage commit.
type SpecJudgment struct {
	Predicted bool    // the oracle offered a prediction
	Launched  bool    // a speculative chain actually ran on it
	Hit       bool    // committed: Exact && ErrPct <= tolerance
	Exact     bool    // predicted artifact fingerprint == real artifact
	ErrPct    float64 // worst relative scalar error, percent
	ID        string  // prediction provenance
}

// SpecStats is one run's speculation accounting, reported through
// RunConfig.SpecReport and journaled by the campaign so a resumed
// campaign replays the same hit/miss counts. It is bookkeeping about
// wall-clock, deliberately kept out of Result: committed results stay
// byte-identical to the non-speculative reference.
type SpecStats struct {
	Version   string       // oracle version the run consulted
	Launched  int          // speculative chains started
	Skipped   int          // predictions dropped for want of a free slot
	Committed int          // downstream stages adopted from speculation
	Discarded int          // launched chains judged wrong and dropped
	Synth     SpecJudgment // prediction of the synth output (drives spec place)
	Place     SpecJudgment // prediction of the place output (drives spec cts/route)
}

// relErrPct is the relative error of pred vs real in percent, with a
// scale floor so near-zero reference values do not explode the ratio.
func relErrPct(pred, real, floor float64) float64 {
	scale := real
	if scale < 0 {
		scale = -scale
	}
	if scale < floor {
		scale = floor
	}
	d := pred - real
	if d < 0 {
		d = -d
	}
	return 100 * d / scale
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// judgeSynthPrediction is the pure commit decision for a synthesis
// prediction: artifact-exact and scalar-close.
func judgeSynthPrediction(p SynthPrediction, real synth.Result, tolPct float64) (exact bool, errPct float64, hit bool) {
	exact = p.Synth.Netlist != nil && real.Netlist != nil &&
		p.Synth.Netlist.Fingerprint() == real.Netlist.Fingerprint()
	errPct = maxf(relErrPct(p.Synth.AreaUm2, real.AreaUm2, 1),
		relErrPct(p.Synth.WNSPs, real.WNSPs, 25))
	return exact, errPct, exact && errPct <= tolPct
}

// judgePlacePrediction is the pure commit decision for a placement
// prediction: placed-artifact-exact and HPWL-close.
func judgePlacePrediction(p PlacePrediction, real place.Result, placed *netlist.Netlist, tolPct float64) (exact bool, errPct float64, hit bool) {
	exact = p.Netlist != nil && placed != nil &&
		p.Netlist.Fingerprint() == placed.Fingerprint()
	errPct = relErrPct(p.Place.HPWLUm, real.HPWLUm, 1)
	return exact, errPct, exact && errPct <= tolPct
}

// specPlace is the speculative placement chain: place.PlaceCtx running
// on a clone of the predicted post-synth artifact, cancellable so a
// missed synth judgment reaps the anneal instead of letting it burn to
// completion.
type specPlace struct {
	pred   SynthPrediction
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	res    place.Result
	coords []float64 // place.Snapshot of the speculatively placed clone
	ok     bool
}

// specChain is the speculative downstream chain on a clone of the
// predicted placed artifact: cts, groute and (when unsupervised)
// droute, each published behind its own done channel so the real flow
// adopts steps as they land instead of waiting for the whole chain.
type specChain struct {
	pred       PlacePrediction
	supervised bool // live RouteSupervisor present: the chain must not run droute
	ctx        context.Context
	cancel     context.CancelFunc

	ctsDone chan struct{}
	ct      cts.Result
	ctOK    bool

	grDone chan struct{}
	gr     *route.GlobalResult

	drDone chan struct{}
	dr     *route.DetailResult
}

// specRun owns one flow run's speculative side: the predictions drawn
// at launch, the background chains, and the judgments made as real
// stages commit. All judgment fields are written on the run's own
// goroutine; the chains communicate only through their done channels.
type specRun struct {
	cfg    SpecConfig
	oracle SpecOracle
	slots  *sched.Slots
	opts   Options
	fp     uint64

	ctx    context.Context
	cancel context.CancelFunc

	stats SpecStats
	place *specPlace
	chain *specChain
}

// newSpecRun builds the speculative side of a run, or nil when
// speculation is off (disabled, or no oracle to predict with).
func (rc RunConfig) newSpecRun(ctx context.Context, opts Options, fp uint64) *specRun {
	if !opts.Speculate.Enabled || rc.Oracle == nil {
		return nil
	}
	s := &specRun{cfg: opts.Speculate, oracle: rc.Oracle, slots: rc.SpecSlots, opts: opts, fp: fp}
	s.stats.Version = rc.Oracle.Version()
	s.ctx, s.cancel = context.WithCancel(ctx)
	return s
}

// launch consults the oracle and starts whatever speculative chains a
// free slot allows. Predictions that find no slot are still judged
// later (the accuracy counters measure the predictor, not the
// scheduler) but never adopted. supervised marks a live
// RouteSupervisor: the speculative chain then skips detailed routing,
// because a stateful supervisor must see each route iteration exactly
// once, from the real stage.
func (s *specRun) launch(supervised bool) {
	sp, sOK := s.oracle.PredictSynth(s.fp, s.opts)
	pp, pOK := s.oracle.PredictPlace(s.fp, s.opts)
	if sOK {
		s.stats.Synth = SpecJudgment{Predicted: true, ID: sp.ID}
		s.place = &specPlace{pred: sp}
		// A verbatim place prediction provably annealed from this same
		// predicted synth artifact makes the speculative anneal
		// redundant: if the synth prediction verifies, the placement
		// commits directly from the prediction (see adoptPredicted); if
		// it misses, the anneal's output could never be adopted. Either
		// way, spend no slot and no core on it.
		redundant := pOK && sp.Synth.Netlist != nil && pp.Prov.UpstreamFP != 0 &&
			pp.Prov == placeProv(sp.Synth.Netlist, s.opts)
		if !redundant && sp.Synth.Netlist != nil {
			if s.slots.TryAcquire() {
				s.stats.Launched++
				s.stats.Synth.Launched = true
				s.place.done = make(chan struct{})
				s.place.ctx, s.place.cancel = context.WithCancel(s.ctx)
				go s.runSpecPlace()
			} else {
				s.stats.Skipped++
			}
		}
	}
	if p := pp; pOK {
		s.stats.Place = SpecJudgment{Predicted: true, ID: p.ID}
		c := &specChain{pred: p, supervised: supervised}
		if s.slots.TryAcquire() {
			s.stats.Launched++
			s.stats.Place.Launched = true
			c.ctx, c.cancel = context.WithCancel(s.ctx)
			c.ctsDone = make(chan struct{})
			c.grDone = make(chan struct{})
			c.drDone = make(chan struct{})
			s.chain = c
			go s.runSpecChain()
		} else {
			s.stats.Skipped++
			s.chain = c
		}
	}
}

// close cancels any still-running speculative work. Chains not adopted
// by the time the run returns are abandoned; cancellable steps (spec
// droute) stop within one iteration, uncancellable ones (spec place)
// run to completion in the background and release their slot then.
func (s *specRun) close() {
	if s != nil {
		s.cancel()
	}
}

func (s *specRun) runSpecPlace() {
	defer s.slots.Release()
	defer close(s.place.done)
	defer s.place.cancel()
	sp := trace.Begin("spec.launch")
	sp.Set("stage", "place")
	sp.Set("pred", s.place.pred.ID)
	if s.place.ctx.Err() != nil {
		sp.EndWith(trace.Aborted)
		return
	}
	// Clone: the oracle owns the predicted artifact and other runs may
	// be speculating from it concurrently.
	n := s.place.pred.Synth.Netlist.Clone()
	res, ok := place.PlaceCtx(s.place.ctx, n, placeOptions(s.opts, n))
	if !ok {
		// Reaped mid-anneal: the synth judgment missed and cancelled
		// this chain; the partial placement is garbage.
		sp.EndWith(trace.Aborted)
		return
	}
	s.place.res = res
	s.place.coords = place.Snapshot(n)
	s.place.ok = true
	sp.End()
}

func (s *specRun) runSpecChain() {
	c := s.chain
	defer s.slots.Release()
	defer c.cancel()
	sp := trace.Begin("spec.launch")
	sp.Set("stage", "route")
	sp.Set("pred", c.pred.ID)
	n := c.pred.Netlist.Clone()
	if c.ctx.Err() == nil {
		c.ct = cts.Synthesize(n, ctsOptions(s.opts))
		c.ctOK = true
	}
	close(c.ctsDone)
	if c.ctOK && c.ctx.Err() == nil {
		c.gr = route.GlobalRoute(n, grouteOptions(s.opts))
	}
	close(c.grDone)
	if c.gr != nil && !c.supervised && c.ctx.Err() == nil {
		// Speculative detailed routing runs under the chain context so a
		// misprediction cancels it within one rip-up pass instead of
		// burning the full iteration budget.
		dr := route.DetailRouteCtx(c.ctx, c.gr, drouteOptions(s.opts, nil))
		if !dr.Aborted {
			c.dr = dr
		}
	}
	close(c.drDone)
	if c.ctx.Err() != nil {
		sp.EndWith(trace.Aborted)
		return
	}
	sp.End()
}

// endJudgeSpan emits the spec.commit / spec.discard span for one
// judgment — the trace-level record of every speculation verdict.
func endJudgeSpan(stage string, j SpecJudgment) {
	name := "spec.discard"
	if j.Hit {
		name = "spec.commit"
	}
	sp := trace.Begin(name)
	sp.Set("stage", stage)
	sp.Set("pred", j.ID)
	sp.SetFloat("err_pct", j.ErrPct)
	if j.Launched {
		sp.Set("launched", "true")
	} else {
		sp.Set("launched", "false")
	}
	if j.Hit {
		sp.End()
		return
	}
	sp.EndWith(trace.Aborted)
}

// judgeSynth grades the synthesis prediction against the real result.
// Called on the run goroutine right after the synth stage commits; the
// verdict gates adoption of the speculative placement.
func (s *specRun) judgeSynth(real synth.Result) {
	if s == nil || !s.stats.Synth.Predicted {
		return
	}
	j := &s.stats.Synth
	j.Exact, j.ErrPct, j.Hit = judgeSynthPrediction(s.place.pred, real, s.cfg.TolerancePct)
	if !j.Hit && j.Launched {
		// The speculative placement is garbage: reap the anneal now so
		// it stops contending with the real one instead of burning to
		// completion in the background.
		s.stats.Discarded++
		s.place.cancel()
	}
	endJudgeSpan("synth", *j)
}

// judgePlace grades the placement prediction against the real placed
// netlist. Called right after the place stage commits (on either the
// real or the adopted path — the placed content is identical).
func (s *specRun) judgePlace(real place.Result, placed *netlist.Netlist) {
	if s == nil || !s.stats.Place.Predicted {
		return
	}
	j := &s.stats.Place
	j.Exact, j.ErrPct, j.Hit = judgePlacePrediction(s.chain.pred, real, placed, s.cfg.TolerancePct)
	if !j.Hit && j.Launched {
		s.stats.Discarded++
		s.chain.cancel() // reclaim the speculative droute's CPU now
	}
	endJudgeSpan("place", *j)
}

// adoptPredicted reports whether the placement stage can commit the
// predicted placement outright: the prediction carries verbatim
// provenance and it equals the provenance of the placement this run is
// about to compute (post-synth fingerprint of the *committed* synth
// output plus the exact annealer options). Placement is a pure function
// of exactly those inputs, so the predicted pair IS the stage's result
// — no anneal, no slot, no speculative compute. This is the decision
// that turns a dominant-stage sweep from "hide synth behind a re-anneal"
// into "skip the anneal", and it is still a pure function of
// (prediction, real upstream result).
func (s *specRun) adoptPredicted(prov PlaceProvenance) bool {
	return s != nil && s.stats.Place.Predicted && s.chain != nil &&
		s.chain.pred.Netlist != nil && prov.UpstreamFP != 0 &&
		s.chain.pred.Prov == prov
}

// predictedPlaceBody commits the predicted placement as the place
// stage's result: the stored stage scalars verbatim, the stored
// coordinates copied into the real netlist.
func (s *specRun) predictedPlaceBody(out *place.Result, n *netlist.Netlist) func(context.Context) {
	return func(context.Context) {
		*out = s.chain.pred.Place
		place.Restore(n, place.Snapshot(s.chain.pred.Netlist))
		s.stats.Committed++
	}
}

// adoptPlace reports whether the placement stage should adopt the
// speculative result: the synth prediction was judged an exact hit and
// a speculative placement was actually launched on it.
func (s *specRun) adoptPlace() bool {
	return s != nil && s.stats.Synth.Hit && s.stats.Synth.Launched
}

// adoptChain reports whether the downstream chain should adopt the
// speculative cts/groute/droute results.
func (s *specRun) adoptChain() bool {
	return s != nil && s.stats.Place.Hit && s.stats.Place.Launched
}

// placeBody returns the placement stage body that waits for the
// speculative placement and adopts it by copying its coordinates into
// the real post-synth netlist — the committed netlist is the same
// object as on the non-speculative path, carrying identical (because
// fingerprint-equal inputs drive a deterministic annealer) coordinates.
// If the chain died with the run context, it falls back to computing
// for real.
func (s *specRun) placeBody(out *place.Result, n *netlist.Netlist) func(context.Context) {
	return func(sctx context.Context) {
		select {
		case <-s.place.done:
		case <-sctx.Done():
			return
		}
		if !s.place.ok {
			*out = place.Place(n, placeOptions(s.opts, n))
			return
		}
		*out = s.place.res
		place.Restore(n, s.place.coords)
		s.stats.Committed++
	}
}

// ctsBody adopts the speculative clock tree (or recomputes if the
// chain bailed out with the run context).
func (s *specRun) ctsBody(out *cts.Result, n *netlist.Netlist) func(context.Context) {
	return func(sctx context.Context) {
		select {
		case <-s.chain.ctsDone:
		case <-sctx.Done():
			return
		}
		if !s.chain.ctOK {
			*out = cts.Synthesize(n, ctsOptions(s.opts))
			return
		}
		*out = s.chain.ct
		s.stats.Committed++
	}
}

// grouteBody adopts the speculative global route.
func (s *specRun) grouteBody(out **route.GlobalResult, n *netlist.Netlist) func(context.Context) {
	return func(sctx context.Context) {
		select {
		case <-s.chain.grDone:
		case <-sctx.Done():
			return
		}
		if s.chain.gr == nil {
			*out = route.GlobalRoute(n, grouteOptions(s.opts))
			return
		}
		*out = s.chain.gr
		s.stats.Committed++
	}
}

// drouteBody adopts the speculative detailed route. When the chain
// skipped droute (live supervision, or an abort) it computes for real —
// with the supervisor hook, which the speculative path must never see.
func (s *specRun) drouteBody(out **route.DetailResult, gr **route.GlobalResult, hook route.IterHook) func(context.Context) {
	return func(sctx context.Context) {
		select {
		case <-s.chain.drDone:
		case <-sctx.Done():
			return
		}
		if s.chain.dr == nil {
			*out = route.DetailRouteCtx(sctx, *gr, drouteOptions(s.opts, hook))
			return
		}
		*out = s.chain.dr
		s.stats.Committed++
	}
}
