package flow

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/route"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestRunEndToEnd(t *testing.T) {
	d := tiny(1)
	r := Run(d, Options{TargetFreqGHz: 0.35, Seed: 1})
	if r.Netlist == nil || r.Global == nil || r.Route == nil || r.Sign == nil {
		t.Fatal("missing step results")
	}
	if err := r.Netlist.Validate(); err != nil {
		t.Fatalf("implemented netlist invalid: %v", err)
	}
	if r.AreaUm2 <= r.Netlist.Area()-1e9 || r.AreaUm2 < r.Netlist.Area() {
		t.Errorf("area %v should include clock buffers above cell area %v", r.AreaUm2, r.Netlist.Area())
	}
	if r.RuntimeProxy <= 0 {
		t.Error("runtime proxy not accumulated")
	}
	if r.Met != (r.TimingMet && r.RouteOK) {
		t.Error("Met flag inconsistent")
	}
}

func TestInputPreserved(t *testing.T) {
	d := tiny(2)
	cells := len(d.Insts)
	area := d.Area()
	Run(d, Options{TargetFreqGHz: 0.6, Seed: 1})
	if len(d.Insts) != cells || d.Area() != area {
		t.Fatal("flow modified the input design")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	d := tiny(3)
	a := Run(d, Options{TargetFreqGHz: 0.4, Seed: 11})
	b := Run(d, Options{TargetFreqGHz: 0.4, Seed: 11})
	if a.AreaUm2 != b.AreaUm2 || a.WNSPs != b.WNSPs || a.Route.Final != b.Route.Final {
		t.Fatal("same seed gave different flow results")
	}
	c := Run(d, Options{TargetFreqGHz: 0.4, Seed: 12})
	if a.AreaUm2 == c.AreaUm2 && a.WNSPs == c.WNSPs && a.Place.HPWLUm == c.Place.HPWLUm {
		t.Error("different seeds gave identical results everywhere")
	}
}

func TestObserverSeesAllSteps(t *testing.T) {
	d := tiny(4)
	var steps []string
	var sawSeries bool
	obs := ObserverFunc(func(rec StepRecord) {
		steps = append(steps, rec.Step)
		if rec.Step == "droute" && len(rec.Series) > 1 {
			sawSeries = true
		}
		if rec.Design != d.Name {
			t.Errorf("record design %q", rec.Design)
		}
	})
	RunObserved(d, Options{TargetFreqGHz: 0.4, Seed: 1}, obs)
	want := []string{"synth", "place", "cts", "groute", "droute", "sta"}
	if len(steps) != len(want) {
		t.Fatalf("observed steps %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %q, want %q", i, steps[i], want[i])
		}
	}
	if !sawSeries {
		t.Error("droute record missing DRV series")
	}
}

func TestStopRouteAfterSavesRuntime(t *testing.T) {
	d := tiny(5)
	full := Run(d, Options{TargetFreqGHz: 0.4, Seed: 6})
	cut := Run(d, Options{TargetFreqGHz: 0.4, Seed: 6, StopRouteAfter: 3})
	if cut.Route.IterationsRun != 3 {
		t.Fatalf("StopRouteAfter=3 ran %d iterations", cut.Route.IterationsRun)
	}
	if cut.RuntimeProxy >= full.RuntimeProxy {
		t.Error("early route stop should save runtime")
	}
}

func TestConstraints(t *testing.T) {
	d := tiny(7)
	r := Run(d, Options{TargetFreqGHz: 0.3, Seed: 1})
	if !r.Met {
		t.Skip("baseline run did not meet; constraint test needs a met run")
	}
	if !(Constraints{}).Satisfied(r) {
		t.Error("unconstrained box should accept a met run")
	}
	if (Constraints{MaxAreaUm2: r.AreaUm2 / 2}).Satisfied(r) {
		t.Error("area box half the actual area should reject")
	}
	if (Constraints{MaxPowerNW: r.PowerNW / 2}).Satisfied(r) {
		t.Error("power box half the actual power should reject")
	}
	if !(Constraints{MaxAreaUm2: r.AreaUm2 * 2, MaxPowerNW: r.PowerNW * 2}).Satisfied(r) {
		t.Error("roomy box should accept")
	}
}

func TestHigherTargetHarder(t *testing.T) {
	d := tiny(8)
	ease, hard := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		if Run(d, Options{TargetFreqGHz: 0.25, Seed: seed}).TimingMet {
			ease++
		}
		if Run(d, Options{TargetFreqGHz: 6.0, Seed: seed}).TimingMet {
			hard++
		}
	}
	if ease < 4 {
		t.Errorf("easy target met only %d/5", ease)
	}
	if hard > 1 {
		t.Errorf("impossible target met %d/5", hard)
	}
}

func TestSubSeedDecorrelates(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 10; seed++ {
		for step := uint64(1); step <= 5; step++ {
			s := subSeed(seed, step)
			if seen[s] {
				t.Fatalf("collision in subSeed(%d,%d)", seed, step)
			}
			seen[s] = true
		}
	}
}

func BenchmarkFlowTiny(b *testing.B) {
	d := tiny(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(d, Options{TargetFreqGHz: 0.4, Seed: int64(i)})
	}
}

// TestRecoverAreaStage: the opt-in post-signoff recovery pass must only
// shrink area, never break met timing, and report through the observer.
func TestRecoverAreaStage(t *testing.T) {
	d := tiny(9)
	anyDown := false
	// Targets hard enough that synthesis upsizes (leaving slack on the
	// table for recovery to reclaim) but still achievable on Tiny.
	for _, f := range []float64{2.5, 3.0, 3.5} {
		base := Run(d, Options{TargetFreqGHz: f, Seed: 3})
		var steps []string
		rec := RunObserved(d, Options{TargetFreqGHz: f, Seed: 3, RecoverArea: true},
			ObserverFunc(func(r StepRecord) { steps = append(steps, r.Step) }))
		if rec.Recover == nil {
			t.Fatalf("f=%g: RecoverArea run missing Recover result", f)
		}
		if base.Recover != nil {
			t.Fatalf("f=%g: default run unexpectedly ran recovery", f)
		}
		if len(steps) == 0 || steps[len(steps)-1] != "recover" {
			t.Fatalf("f=%g: observer did not see a final recover step: %v", f, steps)
		}
		if rec.AreaUm2 > base.AreaUm2 {
			t.Errorf("f=%g: recovery increased area %v -> %v", f, base.AreaUm2, rec.AreaUm2)
		}
		if base.TimingMet && !rec.TimingMet {
			t.Errorf("f=%g: recovery broke met timing (wns %v -> %v)", f, base.WNSPs, rec.WNSPs)
		}
		if rec.RuntimeProxy <= base.RuntimeProxy {
			t.Errorf("f=%g: recovery runtime not accounted (%v <= %v)", f, rec.RuntimeProxy, base.RuntimeProxy)
		}
		if rec.Recover.Downsized > 0 {
			anyDown = true
			if rec.AreaUm2 >= base.AreaUm2 {
				t.Errorf("f=%g: downsized %d cells but area did not drop", f, rec.Recover.Downsized)
			}
		}
	}
	if !anyDown {
		t.Error("recovery never downsized a cell across targets; stage is a no-op")
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	d := tiny(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, d, Options{TargetFreqGHz: 0.4, Seed: 1}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if !res.Aborted || res.FailedStage != "synth" {
		t.Fatalf("aborted=%t stage=%q, want abort before synth", res.Aborted, res.FailedStage)
	}
	if res.Netlist != nil || res.Route != nil || res.Sign != nil {
		t.Fatal("pre-cancelled run produced stage results")
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	d := tiny(11)
	opts := Options{TargetFreqGHz: 0.4, Seed: 5}
	plain := Run(d, opts)
	ctxRes, err := RunCtx(context.Background(), d, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AreaUm2 != ctxRes.AreaUm2 || plain.WNSPs != ctxRes.WNSPs ||
		plain.Route.Final != ctxRes.Route.Final || plain.RuntimeProxy != ctxRes.RuntimeProxy {
		t.Fatal("RunCtx diverged from Run on an uncancelled background context")
	}
}

// stopAtSupervisor is a RouteSupervisor that STOPs every run at a fixed
// iteration.
type stopAtSupervisor struct {
	at   int
	seen []string
}

func (s *stopAtSupervisor) OnStep(rec StepRecord) { s.seen = append(s.seen, rec.Step) }
func (s *stopAtSupervisor) RouteIter(design string, runSeed int64, iter int, drvs []int) route.IterAction {
	if iter >= s.at {
		return route.Stop
	}
	return route.Continue
}

func TestRunCtxLiveStopEndsFlow(t *testing.T) {
	d := tiny(12)
	opts := Options{TargetFreqGHz: 0.4, Seed: 9}
	full := Run(d, opts)
	sup := &stopAtSupervisor{at: 4}
	res, err := RunCtx(context.Background(), d, opts, sup)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Aborted {
		t.Fatalf("stopped=%t aborted=%t, want clean live STOP", res.Stopped, res.Aborted)
	}
	if res.Route.StopIter != 4 || res.Route.IterationsRun != 4 {
		t.Fatalf("route stopped at %d after %d iterations", res.Route.StopIter, res.Route.IterationsRun)
	}
	if res.Sign != nil || res.Met {
		t.Fatal("STOPped run must not sign off or be Met")
	}
	if res.AreaUm2 <= 0 {
		t.Fatal("STOPped run should still report implemented area")
	}
	// The iterations that ran are the full run's prefix.
	for i := range res.Route.DRVs {
		if res.Route.DRVs[i] != full.Route.DRVs[i] {
			t.Fatalf("supervised prefix diverged at %d", i)
		}
	}
	// Observer saw everything through droute and nothing after.
	want := []string{"synth", "place", "cts", "groute", "droute"}
	if len(sup.seen) != len(want) {
		t.Fatalf("observed %v, want %v", sup.seen, want)
	}
	if res.RuntimeProxy >= full.RuntimeProxy {
		t.Error("live STOP should save runtime")
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	inj := &FaultInjector{Seed: 3, CrashRate: 0.25, LicenseDropRate: 0.25}
	for runSeed := int64(0); runSeed < 50; runSeed++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := inj.Check(runSeed, "droute", attempt)
			b := inj.Check(runSeed, "droute", attempt)
			if (a == nil) != (b == nil) {
				t.Fatal("fault coin not deterministic")
			}
			if a != nil && a.Error() != b.Error() {
				t.Fatal("fault kind not deterministic")
			}
		}
	}
	var faults int
	for runSeed := int64(0); runSeed < 200; runSeed++ {
		if inj.Check(runSeed, "sta", 0) != nil {
			faults++
		}
	}
	if faults < 50 || faults > 150 {
		t.Fatalf("50%% fault rate hit %d/200 runs", faults)
	}
	var nilInj *FaultInjector
	if nilInj.Check(1, "synth", 0) != nil {
		t.Fatal("nil injector faulted")
	}
}

func TestRunFaultAbortsAtStageBoundary(t *testing.T) {
	d := tiny(13)
	// CrashRate 1: the very first boundary kills every attempt.
	inj := &FaultInjector{Seed: 1, CrashRate: 1}
	res, err := RunFault(context.Background(), d, Options{TargetFreqGHz: 0.4, Seed: 2}, nil, inj, 0)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FaultError", err)
	}
	if fe.Stage != "synth" || fe.Kind != FaultCrash {
		t.Fatalf("fault %+v, want synth crash", fe)
	}
	if !res.Aborted || res.FailedStage != "synth" {
		t.Fatalf("aborted=%t stage=%q", res.Aborted, res.FailedStage)
	}
}
