package flow

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestRunEndToEnd(t *testing.T) {
	d := tiny(1)
	r := Run(d, Options{TargetFreqGHz: 0.35, Seed: 1})
	if r.Netlist == nil || r.Global == nil || r.Route == nil || r.Sign == nil {
		t.Fatal("missing step results")
	}
	if err := r.Netlist.Validate(); err != nil {
		t.Fatalf("implemented netlist invalid: %v", err)
	}
	if r.AreaUm2 <= r.Netlist.Area()-1e9 || r.AreaUm2 < r.Netlist.Area() {
		t.Errorf("area %v should include clock buffers above cell area %v", r.AreaUm2, r.Netlist.Area())
	}
	if r.RuntimeProxy <= 0 {
		t.Error("runtime proxy not accumulated")
	}
	if r.Met != (r.TimingMet && r.RouteOK) {
		t.Error("Met flag inconsistent")
	}
}

func TestInputPreserved(t *testing.T) {
	d := tiny(2)
	cells := len(d.Insts)
	area := d.Area()
	Run(d, Options{TargetFreqGHz: 0.6, Seed: 1})
	if len(d.Insts) != cells || d.Area() != area {
		t.Fatal("flow modified the input design")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	d := tiny(3)
	a := Run(d, Options{TargetFreqGHz: 0.4, Seed: 11})
	b := Run(d, Options{TargetFreqGHz: 0.4, Seed: 11})
	if a.AreaUm2 != b.AreaUm2 || a.WNSPs != b.WNSPs || a.Route.Final != b.Route.Final {
		t.Fatal("same seed gave different flow results")
	}
	c := Run(d, Options{TargetFreqGHz: 0.4, Seed: 12})
	if a.AreaUm2 == c.AreaUm2 && a.WNSPs == c.WNSPs && a.Place.HPWLUm == c.Place.HPWLUm {
		t.Error("different seeds gave identical results everywhere")
	}
}

func TestObserverSeesAllSteps(t *testing.T) {
	d := tiny(4)
	var steps []string
	var sawSeries bool
	obs := ObserverFunc(func(rec StepRecord) {
		steps = append(steps, rec.Step)
		if rec.Step == "droute" && len(rec.Series) > 1 {
			sawSeries = true
		}
		if rec.Design != d.Name {
			t.Errorf("record design %q", rec.Design)
		}
	})
	RunObserved(d, Options{TargetFreqGHz: 0.4, Seed: 1}, obs)
	want := []string{"synth", "place", "cts", "groute", "droute", "sta"}
	if len(steps) != len(want) {
		t.Fatalf("observed steps %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %q, want %q", i, steps[i], want[i])
		}
	}
	if !sawSeries {
		t.Error("droute record missing DRV series")
	}
}

func TestStopRouteAfterSavesRuntime(t *testing.T) {
	d := tiny(5)
	full := Run(d, Options{TargetFreqGHz: 0.4, Seed: 6})
	cut := Run(d, Options{TargetFreqGHz: 0.4, Seed: 6, StopRouteAfter: 3})
	if cut.Route.IterationsRun != 3 {
		t.Fatalf("StopRouteAfter=3 ran %d iterations", cut.Route.IterationsRun)
	}
	if cut.RuntimeProxy >= full.RuntimeProxy {
		t.Error("early route stop should save runtime")
	}
}

func TestConstraints(t *testing.T) {
	d := tiny(7)
	r := Run(d, Options{TargetFreqGHz: 0.3, Seed: 1})
	if !r.Met {
		t.Skip("baseline run did not meet; constraint test needs a met run")
	}
	if !(Constraints{}).Satisfied(r) {
		t.Error("unconstrained box should accept a met run")
	}
	if (Constraints{MaxAreaUm2: r.AreaUm2 / 2}).Satisfied(r) {
		t.Error("area box half the actual area should reject")
	}
	if (Constraints{MaxPowerNW: r.PowerNW / 2}).Satisfied(r) {
		t.Error("power box half the actual power should reject")
	}
	if !(Constraints{MaxAreaUm2: r.AreaUm2 * 2, MaxPowerNW: r.PowerNW * 2}).Satisfied(r) {
		t.Error("roomy box should accept")
	}
}

func TestHigherTargetHarder(t *testing.T) {
	d := tiny(8)
	ease, hard := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		if Run(d, Options{TargetFreqGHz: 0.25, Seed: seed}).TimingMet {
			ease++
		}
		if Run(d, Options{TargetFreqGHz: 6.0, Seed: seed}).TimingMet {
			hard++
		}
	}
	if ease < 4 {
		t.Errorf("easy target met only %d/5", ease)
	}
	if hard > 1 {
		t.Errorf("impossible target met %d/5", hard)
	}
}

func TestSubSeedDecorrelates(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 10; seed++ {
		for step := uint64(1); step <= 5; step++ {
			s := subSeed(seed, step)
			if seen[s] {
				t.Fatalf("collision in subSeed(%d,%d)", seed, step)
			}
			seen[s] = true
		}
	}
}

func BenchmarkFlowTiny(b *testing.B) {
	d := tiny(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(d, Options{TargetFreqGHz: 0.4, Seed: int64(i)})
	}
}

// TestRecoverAreaStage: the opt-in post-signoff recovery pass must only
// shrink area, never break met timing, and report through the observer.
func TestRecoverAreaStage(t *testing.T) {
	d := tiny(9)
	anyDown := false
	// Targets hard enough that synthesis upsizes (leaving slack on the
	// table for recovery to reclaim) but still achievable on Tiny.
	for _, f := range []float64{2.5, 3.0, 3.5} {
		base := Run(d, Options{TargetFreqGHz: f, Seed: 3})
		var steps []string
		rec := RunObserved(d, Options{TargetFreqGHz: f, Seed: 3, RecoverArea: true},
			ObserverFunc(func(r StepRecord) { steps = append(steps, r.Step) }))
		if rec.Recover == nil {
			t.Fatalf("f=%g: RecoverArea run missing Recover result", f)
		}
		if base.Recover != nil {
			t.Fatalf("f=%g: default run unexpectedly ran recovery", f)
		}
		if len(steps) == 0 || steps[len(steps)-1] != "recover" {
			t.Fatalf("f=%g: observer did not see a final recover step: %v", f, steps)
		}
		if rec.AreaUm2 > base.AreaUm2 {
			t.Errorf("f=%g: recovery increased area %v -> %v", f, base.AreaUm2, rec.AreaUm2)
		}
		if base.TimingMet && !rec.TimingMet {
			t.Errorf("f=%g: recovery broke met timing (wns %v -> %v)", f, base.WNSPs, rec.WNSPs)
		}
		if rec.RuntimeProxy <= base.RuntimeProxy {
			t.Errorf("f=%g: recovery runtime not accounted (%v <= %v)", f, rec.RuntimeProxy, base.RuntimeProxy)
		}
		if rec.Recover.Downsized > 0 {
			anyDown = true
			if rec.AreaUm2 >= base.AreaUm2 {
				t.Errorf("f=%g: downsized %d cells but area did not drop", f, rec.Recover.Downsized)
			}
		}
	}
	if !anyDown {
		t.Error("recovery never downsized a cell across targets; stage is a no-op")
	}
}
