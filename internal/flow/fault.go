package flow

import (
	"context"
	"fmt"
	"time"
)

// Fault kinds the injector can simulate: a tool crash at a stage
// boundary, a license dropped by the license server mid-campaign, and a
// tool that wedges inside a stage until the watchdog reaps it. All
// three abort the run; the distinction only matters for accounting.
const (
	FaultCrash   = "crash"
	FaultLicense = "license"
	FaultHang    = "hang"
)

// FaultError is the error a flow run returns when a (simulated or real)
// tool failure kills it: a crash or license drop at a stage boundary,
// or a hung stage reaped by the watchdog.
type FaultError struct {
	Stage string // the stage running (or about to run) when the fault hit
	Kind  string // FaultCrash, FaultLicense or FaultHang
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("flow: injected %s fault at %s", e.Kind, e.Stage)
}

// FaultInjector simulates the failures a production campaign sees —
// tool crashes, license drops and hung tools — deterministically, so
// fault-tolerance tests are reproducible: whether the run at (Seed, run
// seed, stage, attempt) faults is a pure hash of those four values. The
// same point retried with a higher attempt number draws a fresh fault
// coin, which is what lets campaign retries eventually succeed while
// every worker count replays the identical fault schedule.
type FaultInjector struct {
	Seed int64 // injector stream; decorrelates schedules across studies
	// CrashRate is the per-stage-boundary probability of a simulated
	// tool crash (a run with k stages survives with (1-rate)^k).
	CrashRate float64
	// LicenseDropRate is the per-stage-boundary probability of a
	// simulated license drop.
	LicenseDropRate float64
	// HangRate is the per-stage probability that the tool wedges inside
	// the stage instead of computing: the run blocks until the stage
	// watchdog reaps it (RunConfig.StageTimeout) or the run's context
	// is cancelled. Unlike a crash, a hang without a watchdog occupies
	// its license forever — exactly the failure mode the watchdog layer
	// exists to catch.
	HangRate float64
	// HangFor bounds a simulated hang: after this long the wedged tool
	// "recovers" and the stage proceeds normally (a slow license
	// checkout, a transient NFS stall). Zero means the tool never comes
	// back on its own.
	HangFor time.Duration
}

// coin returns the deterministic uniform draw for (run seed, stage,
// attempt): FNV-1a over the stage name, mixed with the seeds and
// attempt through a splitmix64 finalizer.
func (f *FaultInjector) coin(runSeed int64, stage string, attempt int) float64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(stage); i++ {
		h ^= uint64(stage[i])
		h *= 1099511628211
	}
	z := h ^ uint64(f.Seed)*0x9e3779b97f4a7c15 ^ uint64(runSeed)*0xbf58476d1ce4e5b9 ^
		uint64(attempt+1)*0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Check returns the deterministic boundary fault for (run seed, stage,
// attempt), or nil when the run proceeds. A nil injector never faults.
func (f *FaultInjector) Check(runSeed int64, stage string, attempt int) error {
	if f == nil || (f.CrashRate <= 0 && f.LicenseDropRate <= 0) {
		return nil
	}
	u := f.coin(runSeed, stage, attempt)
	switch {
	case u < f.CrashRate:
		return &FaultError{Stage: stage, Kind: FaultCrash}
	case u < f.CrashRate+f.LicenseDropRate:
		return &FaultError{Stage: stage, Kind: FaultLicense}
	}
	return nil
}

// Hang simulates the in-stage wedge for (run seed, stage, attempt). It
// returns true when the stage may proceed — either no hang was drawn,
// or the bounded hang elapsed (the tool recovered). It returns false
// when the wedge was ended by ctx cancellation (watchdog reap or run
// abort): the tool never produced its result. The hang coin occupies
// the probability band just above the boundary-fault bands of Check, so
// all three fault kinds stay mutually exclusive per (seed, stage,
// attempt) and a retried point draws a fresh coin.
func (f *FaultInjector) Hang(ctx context.Context, runSeed int64, stage string, attempt int) bool {
	if f == nil || f.HangRate <= 0 {
		return true
	}
	base := f.CrashRate + f.LicenseDropRate
	u := f.coin(runSeed, stage, attempt)
	if u < base || u >= base+f.HangRate {
		return true
	}
	if f.HangFor <= 0 {
		<-ctx.Done()
		return false
	}
	t := time.NewTimer(f.HangFor)
	defer t.Stop()
	select {
	case <-t.C:
		return true // the tool came back; the stage runs late but clean
	case <-ctx.Done():
		return false
	}
}
