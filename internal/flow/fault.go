package flow

import "fmt"

// Fault kinds the injector can simulate: a tool crash at a stage
// boundary and a license dropped by the license server mid-campaign.
// Both abort the run; the distinction only matters for accounting.
const (
	FaultCrash   = "crash"
	FaultLicense = "license"
)

// FaultError is the error a flow run returns when a (simulated or real)
// tool failure kills it at a stage boundary.
type FaultError struct {
	Stage string // the stage about to run when the fault hit
	Kind  string // FaultCrash or FaultLicense
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("flow: injected %s fault at %s", e.Kind, e.Stage)
}

// FaultInjector simulates the failures a production campaign sees —
// tool crashes and license drops — deterministically, so fault-tolerance
// tests are reproducible: whether the run at (Seed, run seed, stage,
// attempt) faults is a pure hash of those four values. The same point
// retried with a higher attempt number draws a fresh fault coin, which
// is what lets campaign retries eventually succeed while every worker
// count replays the identical fault schedule.
type FaultInjector struct {
	Seed int64 // injector stream; decorrelates schedules across studies
	// CrashRate is the per-stage-boundary probability of a simulated
	// tool crash (a run with k stages survives with (1-rate)^k).
	CrashRate float64
	// LicenseDropRate is the per-stage-boundary probability of a
	// simulated license drop.
	LicenseDropRate float64
}

// Check returns the deterministic fault for (run seed, stage, attempt),
// or nil when the run proceeds. A nil injector never faults.
func (f *FaultInjector) Check(runSeed int64, stage string, attempt int) error {
	if f == nil || (f.CrashRate <= 0 && f.LicenseDropRate <= 0) {
		return nil
	}
	// FNV-1a over the stage name, mixed with the seeds and attempt
	// through a splitmix64 finalizer.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(stage); i++ {
		h ^= uint64(stage[i])
		h *= 1099511628211
	}
	z := h ^ uint64(f.Seed)*0x9e3779b97f4a7c15 ^ uint64(runSeed)*0xbf58476d1ce4e5b9 ^
		uint64(attempt+1)*0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	switch {
	case u < f.CrashRate:
		return &FaultError{Stage: stage, Kind: FaultCrash}
	case u < f.CrashRate+f.LicenseDropRate:
		return &FaultError{Stage: stage, Kind: FaultLicense}
	}
	return nil
}
