package flow

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHangReapedByWatchdog: an unbounded injected wedge (HangFor 0)
// never computes, so the stage watchdog must reap it and surface a
// FaultHang fault the campaign retry path can match.
func TestHangReapedByWatchdog(t *testing.T) {
	d := tiny(1)
	inj := &FaultInjector{Seed: 1, HangRate: 1}
	res, err := RunCfg(context.Background(), d, Options{TargetFreqGHz: 0.4, Seed: 2}, RunConfig{
		Faults:       inj,
		StageTimeout: 20 * time.Millisecond,
	})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FaultError", err)
	}
	if fe.Kind != FaultHang || fe.Stage != "synth" {
		t.Fatalf("fault = %+v, want hang at synth", fe)
	}
	if !res.Aborted || res.FailedStage != "synth" {
		t.Fatalf("result aborted=%t failed=%q, want true, synth", res.Aborted, res.FailedStage)
	}
	if res.Netlist != nil {
		t.Fatal("reaped synth stage must not publish a netlist")
	}
}

// TestHangRecoversCleanly: a bounded wedge (the tool stalls, then comes
// back) delays the run but must not change its outcome — with or
// without a watchdog whose deadline outlasts the stall.
func TestHangRecoversCleanly(t *testing.T) {
	opts := Options{TargetFreqGHz: 0.35, Seed: 3}
	want := Run(tiny(2), opts)
	for _, timeout := range []time.Duration{0, 10 * time.Second} {
		inj := &FaultInjector{Seed: 1, HangRate: 1, HangFor: time.Millisecond}
		got, err := RunCfg(context.Background(), tiny(2), opts, RunConfig{
			Faults:       inj,
			StageTimeout: timeout,
		})
		if err != nil {
			t.Fatalf("timeout %v: %v", timeout, err)
		}
		if got.AreaUm2 != want.AreaUm2 || got.WNSPs != want.WNSPs ||
			got.MaxFreqGHz != want.MaxFreqGHz || got.Met != want.Met {
			t.Fatalf("timeout %v: recovered-hang run differs from clean run", timeout)
		}
	}
}

// TestHangReleasedByRunCancel: with no watchdog, the only way out of an
// unbounded wedge is cancelling the run itself.
func TestHangReleasedByRunCancel(t *testing.T) {
	d := tiny(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	inj := &FaultInjector{Seed: 1, HangRate: 1}
	res, err := RunCfg(ctx, d, Options{TargetFreqGHz: 0.4, Seed: 2}, RunConfig{Faults: inj})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Aborted || res.FailedStage != "synth" {
		t.Fatalf("result aborted=%t failed=%q, want true, synth", res.Aborted, res.FailedStage)
	}
}

// TestHangCoinDeterministicAndExclusive: the hang draw is a pure
// function of (seed, run seed, stage, attempt), a retried attempt draws
// a fresh coin, and the three fault kinds are mutually exclusive — a
// (stage, attempt) that crashes never also hangs.
func TestHangCoinDeterministicAndExclusive(t *testing.T) {
	inj := &FaultInjector{Seed: 7, CrashRate: 0.2, LicenseDropRate: 0.2, HangRate: 0.3}
	// A pre-cancelled context makes a drawn unbounded wedge return false
	// immediately, exposing the raw coin without any waiting.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hangs, boundaryFaults := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		for attempt := 0; attempt < 4; attempt++ {
			for _, stage := range []string{"synth", "place", "droute"} {
				h := inj.Hang(ctx, seed, stage, attempt)
				if h != inj.Hang(ctx, seed, stage, attempt) {
					t.Fatalf("hang draw not deterministic at seed=%d stage=%s attempt=%d", seed, stage, attempt)
				}
				fault := inj.Check(seed, stage, attempt)
				if !h && fault != nil {
					t.Fatalf("seed=%d stage=%s attempt=%d both hangs and faults (%v)", seed, stage, attempt, fault)
				}
				if !h {
					hangs++
				}
				if fault != nil {
					boundaryFaults++
				}
			}
		}
	}
	// With rates 0.2/0.2/0.3 over 480 draws both kinds must appear.
	if hangs == 0 || boundaryFaults == 0 {
		t.Fatalf("fault mix degenerate: %d hangs, %d boundary faults", hangs, boundaryFaults)
	}
	var nilInj *FaultInjector
	if !nilInj.Hang(ctx, 1, "synth", 0) {
		t.Fatal("nil injector must never hang")
	}
}
