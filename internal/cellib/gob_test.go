package cellib

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// TestLibraryGobRoundTrip proves a gob round-trip reproduces the
// library exactly, indices included — the property the campaign journal
// relies on when it serializes whole flow results.
func TestLibraryGobRoundTrip(t *testing.T) {
	lib := Default14nm()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(lib); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got *Library
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(lib, got) {
		t.Fatal("decoded library differs from original")
	}
	// The decoded library must be functional, not just equal: lookups
	// and sizing walks exercise the rebuilt indices.
	for _, c := range lib.Cells() {
		if _, ok := got.ByName(c.Name); !ok {
			t.Fatalf("decoded library lost cell %s", c.Name)
		}
	}
	small := got.Smallest(Nand2)
	if up, ok := got.Upsize(small); !ok || up.Drive <= small.Drive {
		t.Fatal("decoded library cannot upsize")
	}
}
