package cellib

import (
	"testing"
	"testing/quick"
)

func TestDefault14nmComplete(t *testing.T) {
	lib := Default14nm()
	if len(lib.Cells()) != 11*5 {
		t.Fatalf("got %d cells, want 55", len(lib.Cells()))
	}
	for c := Class(0); c < numClasses; c++ {
		vars := lib.Variants(c)
		if len(vars) != 5 {
			t.Errorf("class %v: got %d variants, want 5", c, len(vars))
		}
		for i := 1; i < len(vars); i++ {
			if vars[i].Drive <= vars[i-1].Drive {
				t.Errorf("class %v: variants not sorted by drive", c)
			}
			if vars[i].Area <= vars[i-1].Area {
				t.Errorf("class %v: area should grow with drive", c)
			}
			if vars[i].Resist >= vars[i-1].Resist {
				t.Errorf("class %v: resistance should shrink with drive", c)
			}
		}
	}
}

func TestByName(t *testing.T) {
	lib := Default14nm()
	c, ok := lib.ByName("ND2_X4")
	if !ok {
		t.Fatal("ND2_X4 not found")
	}
	if c.Class != Nand2 || c.Drive != 4 {
		t.Fatalf("got %+v", c)
	}
	if _, ok := lib.ByName("NOPE"); ok {
		t.Fatal("found nonexistent cell")
	}
}

func TestUpsizeDownsizeChain(t *testing.T) {
	lib := Default14nm()
	c := lib.Smallest(Inverter)
	steps := 0
	for {
		up, ok := lib.Upsize(c)
		if !ok {
			break
		}
		if up.Drive <= c.Drive {
			t.Fatalf("upsize did not increase drive: %d -> %d", c.Drive, up.Drive)
		}
		c = up
		steps++
	}
	if steps != 4 {
		t.Fatalf("got %d upsize steps, want 4", steps)
	}
	if c.Name != lib.Largest(Inverter).Name {
		t.Fatalf("chain did not end at largest: %s", c.Name)
	}
	for {
		down, ok := lib.Downsize(c)
		if !ok {
			break
		}
		c = down
		steps--
	}
	if steps != 0 || c.Name != lib.Smallest(Inverter).Name {
		t.Fatalf("downsize chain did not return to smallest (steps=%d, cell=%s)", steps, c.Name)
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	lib := Default14nm()
	c := lib.Smallest(Nand2)
	f := func(a, b float64) bool {
		la, lb := abs(a), abs(b)
		if la > lb {
			la, lb = lb, la
		}
		return c.Delay(la) <= c.Delay(lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargerDriveFasterUnderLoad(t *testing.T) {
	lib := Default14nm()
	for c := Class(0); c < numClasses; c++ {
		small, large := lib.Smallest(c), lib.Largest(c)
		const load = 30.0
		if large.Delay(load) >= small.Delay(load) {
			t.Errorf("class %v: X%d not faster than X%d under %v fF", c, large.Drive, small.Drive, load)
		}
	}
}

func TestWireDelayPositiveAndSuperlinear(t *testing.T) {
	w := Default14nm().Wire
	d10 := w.Delay(10, 2.0)
	d20 := w.Delay(20, 2.0)
	if d10 <= 0 || d20 <= 0 {
		t.Fatalf("wire delays must be positive: %v %v", d10, d20)
	}
	if d20 <= 2*d10 {
		t.Errorf("Elmore wire delay should be superlinear in length: d(20)=%v vs 2*d(10)=%v", d20, 2*d10)
	}
}

func TestClassMetadata(t *testing.T) {
	if !DFF.Sequential() {
		t.Error("DFF must be sequential")
	}
	if Inverter.Sequential() {
		t.Error("Inverter must not be sequential")
	}
	if got := Nand3.NumInputs(); got != 3 {
		t.Errorf("Nand3 inputs = %d, want 3", got)
	}
	if got := Inverter.String(); got != "INV" {
		t.Errorf("Inverter.String() = %q", got)
	}
	if got := Class(99).String(); got != "Class(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestSequentialTiming(t *testing.T) {
	lib := Default14nm()
	d := lib.Smallest(DFF)
	if d.SetupTime <= 0 || d.ClkToQ <= 0 {
		t.Fatalf("DFF must have setup and clk->q: %+v", d)
	}
}

func TestMaxLoadScalesWithDrive(t *testing.T) {
	lib := Default14nm()
	small, large := lib.Smallest(Buffer), lib.Largest(Buffer)
	if large.MaxLoad() <= small.MaxLoad() {
		t.Error("max load should grow with drive")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
