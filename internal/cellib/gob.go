package cellib

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// libraryWire is the serialized form of a Library: exactly the
// constructor inputs. The derived indices (byClass, byName) are rebuilt
// on decode, so a decoded library is fully functional and structurally
// identical to one assembled by New.
type libraryWire struct {
	Name     string
	Wire     Wire
	RowPitch float64
	Cells    []Cell
}

// GobEncode implements gob.GobEncoder, making netlists (and therefore
// journaled flow results) serializable even though the library keeps
// unexported lookup indices.
func (l *Library) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := libraryWire{Name: l.Name, Wire: l.Wire, RowPitch: l.RowPitch, Cells: l.cells}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("cellib: encode library: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder by rebuilding the library through
// New, restoring the sorted per-class and by-name indices.
func (l *Library) GobDecode(data []byte) error {
	var w libraryWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("cellib: decode library: %w", err)
	}
	*l = *New(w.Name, w.Wire, w.RowPitch, w.Cells)
	return nil
}
