package cellib

import "fmt"

// Default14nmMultiVT builds the multi-threshold version of the default
// library: every combinational/sequential cell in SVT, HVT and LVT
// flavors. HVT is ~25% slower with ~3.5x less leakage; LVT is ~12%
// faster with ~3x more leakage — the knobs behind the "VT-swapping
// operations" that timing/power recovery performs (Sec. 3.2).
func Default14nmMultiVT() *Library {
	base := Default14nm()
	flavors := []struct {
		vt        VT
		delayMult float64
		leakMult  float64
	}{
		{SVT, 1.00, 1.0},
		{HVT, 1.25, 0.28},
		{LVT, 0.88, 3.0},
	}
	var cells []Cell
	for _, c := range base.Cells() {
		for _, f := range flavors {
			v := c
			v.VT = f.vt
			v.Intrinsic *= f.delayMult
			v.Resist *= f.delayMult
			v.Leakage *= f.leakMult
			if v.SetupTime > 0 {
				v.SetupTime *= f.delayMult
			}
			if v.ClkToQ > 0 {
				v.ClkToQ *= f.delayMult
			}
			if f.vt != SVT {
				v.Name = fmt.Sprintf("%s_%s", c.Name, f.vt)
			}
			cells = append(cells, v)
		}
	}
	return New("sim14mvt", base.Wire, base.RowPitch, cells)
}
