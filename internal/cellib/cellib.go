// Package cellib models a standard-cell library for the simulated
// implementation flow: cell classes, discrete drive strengths, a linear
// (NLDM-like) delay model, and wire parasitics.
//
// The library is the lowest substrate of the reproduction: synthesis,
// sizing, timing and power all consume it. Numbers are loosely calibrated
// to a foundry 14nm-class enablement (the paper's PULPino testcase
// technology) but only relative behaviour matters for the experiments.
package cellib

import (
	"fmt"
	"sort"
)

// Class enumerates the logical function families in the library.
type Class int

// Cell classes. Combinational classes precede sequential ones.
const (
	Inverter Class = iota
	Buffer
	Nand2
	Nor2
	Nand3
	Aoi21
	Oai21
	Xor2
	Mux2
	DFF
	ClockBuffer
	numClasses
)

var classNames = [...]string{
	Inverter:    "INV",
	Buffer:      "BUF",
	Nand2:       "ND2",
	Nor2:        "NR2",
	Nand3:       "ND3",
	Aoi21:       "AOI21",
	Oai21:       "OAI21",
	Xor2:        "XOR2",
	Mux2:        "MUX2",
	DFF:         "DFF",
	ClockBuffer: "CKBUF",
}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// NumInputs reports the number of data inputs for the class.
func (c Class) NumInputs() int {
	switch c {
	case Inverter, Buffer, ClockBuffer, DFF:
		return 1
	case Nand2, Nor2, Xor2:
		return 2
	case Nand3, Aoi21, Oai21, Mux2:
		return 3
	default:
		return 1
	}
}

// Sequential reports whether the class is a state element.
func (c Class) Sequential() bool { return c == DFF }

// Cell is one library cell: a class at a discrete drive strength.
// The delay model is linear in output load:
//
//	delay(ps) = Intrinsic + Resistance*load(fF)
//
// which is the standard first-order approximation of an NLDM table.
type Cell struct {
	Name      string  // e.g. "ND2_X2" or "ND2_X2_HVT"
	Class     Class   // logical function
	Drive     int     // drive strength (1, 2, 4, 8, 16)
	VT        VT      // threshold-voltage flavor (SVT default)
	Area      float64 // placement area, um^2
	InputCap  float64 // capacitance per input pin, fF
	Intrinsic float64 // intrinsic delay, ps
	Resist    float64 // effective output resistance, ps/fF
	Leakage   float64 // leakage power, nW
	SetupTime float64 // for sequential cells, ps
	ClkToQ    float64 // for sequential cells, ps
}

// Delay returns the pin-to-pin delay in ps for the given output load in fF.
func (c Cell) Delay(loadFF float64) float64 {
	return c.Intrinsic + c.Resist*loadFF
}

// Slew returns the output transition time in ps for the given load. The
// model ties slew to the same RC product as delay.
func (c Cell) Slew(loadFF float64) float64 {
	return 0.7*c.Intrinsic + 1.4*c.Resist*loadFF
}

// MaxLoad returns the largest output load (fF) the cell can drive without
// an electrical (max-transition) violation.
func (c Cell) MaxLoad() float64 {
	return 40.0 * float64(c.Drive)
}

// VT is a threshold-voltage flavor: the speed/leakage tradeoff behind
// the "VT-swapping operations" of the paper's Sec. 3.2. SVT is the
// default; HVT is slower but leaks far less; LVT is faster and leaky.
type VT int

// Threshold flavors.
const (
	SVT VT = iota
	HVT
	LVT
)

func (v VT) String() string {
	switch v {
	case HVT:
		return "HVT"
	case LVT:
		return "LVT"
	default:
		return "SVT"
	}
}

// Wire holds per-micron wire parasitics for the routing stack.
type Wire struct {
	ResPerUm float64 // ps/fF-normalized resistance per um
	CapPerUm float64 // fF per um
}

// Delay returns the Elmore delay contribution (ps) of a wire of the given
// length driven by a cell with output resistance r (ps/fF).
func (w Wire) Delay(lengthUm, driverResist float64) float64 {
	c := w.CapPerUm * lengthUm
	r := w.ResPerUm * lengthUm
	return driverResist*c + 0.5*r*c
}

// Library is an immutable set of cells plus technology parameters.
type Library struct {
	Name     string
	Wire     Wire
	RowPitch float64 // placement row height, um

	cells   []Cell
	byClass [numClasses][]int // indices into cells, sorted by Drive
	byName  map[string]int
}

// New assembles a library from a cell list. Cells of each class are kept
// sorted by ascending drive strength.
func New(name string, wire Wire, rowPitch float64, cells []Cell) *Library {
	lib := &Library{
		Name:     name,
		Wire:     wire,
		RowPitch: rowPitch,
		cells:    append([]Cell(nil), cells...),
		byName:   make(map[string]int, len(cells)),
	}
	for i, c := range lib.cells {
		lib.byClass[c.Class] = append(lib.byClass[c.Class], i)
		lib.byName[c.Name] = i
	}
	for cl := Class(0); cl < numClasses; cl++ {
		idx := lib.byClass[cl]
		sort.Slice(idx, func(a, b int) bool {
			ca, cb := lib.cells[idx[a]], lib.cells[idx[b]]
			if ca.Drive != cb.Drive {
				return ca.Drive < cb.Drive
			}
			return ca.VT < cb.VT
		})
	}
	return lib
}

// Cells returns all cells in the library.
func (l *Library) Cells() []Cell { return l.cells }

// ByName looks up a cell by name.
func (l *Library) ByName(name string) (Cell, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Cell{}, false
	}
	return l.cells[i], true
}

// Variants returns the cells of a class in ascending drive order.
func (l *Library) Variants(c Class) []Cell {
	idx := l.byClass[c]
	out := make([]Cell, len(idx))
	for i, j := range idx {
		out[i] = l.cells[j]
	}
	return out
}

// Smallest returns the minimum-drive cell of a class.
func (l *Library) Smallest(c Class) Cell {
	idx := l.byClass[c]
	if len(idx) == 0 {
		panic(fmt.Sprintf("cellib: class %v has no variants", c))
	}
	return l.cells[idx[0]]
}

// Largest returns the maximum-drive cell of a class.
func (l *Library) Largest(c Class) Cell {
	idx := l.byClass[c]
	if len(idx) == 0 {
		panic(fmt.Sprintf("cellib: class %v has no variants", c))
	}
	return l.cells[idx[len(idx)-1]]
}

// Upsize returns the next-larger variant of the cell (same VT flavor)
// and true, or the cell itself and false if it is already the largest.
func (l *Library) Upsize(c Cell) (Cell, bool) {
	idx := l.byClass[c.Class]
	for pos, j := range idx {
		if l.cells[j].Drive == c.Drive && l.cells[j].VT == c.VT {
			for _, k := range idx[pos+1:] {
				if l.cells[k].VT == c.VT {
					return l.cells[k], true
				}
			}
			return c, false
		}
	}
	return c, false
}

// Downsize returns the next-smaller variant of the cell (same VT
// flavor) and true, or the cell itself and false if it is already the
// smallest.
func (l *Library) Downsize(c Cell) (Cell, bool) {
	idx := l.byClass[c.Class]
	for pos, j := range idx {
		if l.cells[j].Drive == c.Drive && l.cells[j].VT == c.VT {
			for back := pos - 1; back >= 0; back-- {
				if l.cells[idx[back]].VT == c.VT {
					return l.cells[idx[back]], true
				}
			}
			return c, false
		}
	}
	return c, false
}

// WithVT returns the same class/drive cell in another threshold flavor,
// if the library has it.
func (l *Library) WithVT(c Cell, vt VT) (Cell, bool) {
	for _, j := range l.byClass[c.Class] {
		if l.cells[j].Drive == c.Drive && l.cells[j].VT == vt {
			return l.cells[j], true
		}
	}
	return c, false
}

// Default14nm constructs the default library used throughout the
// reproduction: 11 classes at drive strengths X1..X16 with first-order
// scaling laws (area and input cap grow with drive; resistance shrinks).
func Default14nm() *Library {
	type proto struct {
		class     Class
		area      float64 // X1 area um^2
		inCap     float64 // X1 input cap fF
		intrinsic float64 // ps
		resist    float64 // X1 ps/fF
		leak      float64 // X1 nW
	}
	protos := []proto{
		{Inverter, 0.2, 0.8, 4, 6.0, 1.0},
		{Buffer, 0.35, 0.8, 9, 5.5, 1.6},
		{Nand2, 0.3, 1.0, 7, 7.0, 1.8},
		{Nor2, 0.3, 1.0, 8, 8.0, 1.8},
		{Nand3, 0.42, 1.1, 9, 8.5, 2.4},
		{Aoi21, 0.45, 1.1, 10, 9.0, 2.6},
		{Oai21, 0.45, 1.1, 10, 9.0, 2.6},
		{Xor2, 0.6, 1.4, 12, 9.5, 3.2},
		{Mux2, 0.55, 1.2, 11, 9.0, 3.0},
		{DFF, 1.3, 1.0, 0, 7.0, 6.0},
		{ClockBuffer, 0.5, 1.1, 8, 4.5, 2.2},
	}
	drives := []int{1, 2, 4, 8, 16}
	var cells []Cell
	for _, p := range protos {
		for _, d := range drives {
			f := float64(d)
			c := Cell{
				Name:      fmt.Sprintf("%s_X%d", p.class, d),
				Class:     p.class,
				Drive:     d,
				Area:      p.area * (0.55 + 0.45*f),
				InputCap:  p.inCap * (0.6 + 0.4*f),
				Intrinsic: p.intrinsic,
				Resist:    p.resist / f,
				Leakage:   p.leak * f,
			}
			if p.class == DFF {
				c.SetupTime = 18
				c.ClkToQ = 35
			}
			cells = append(cells, c)
		}
	}
	return New("sim14", Wire{ResPerUm: 0.08, CapPerUm: 0.18}, 0.6, cells)
}
