package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

// TestBisectInvariantsQuick: for arbitrary seeds, the bisection is a
// full assignment with bounded imbalance and a cut no worse than the
// trivial all-nets bound.
func TestBisectInvariantsQuick(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(3))
	totalNets := 0
	for i := range n.Nets {
		if !n.Nets[i].IsClock {
			totalNets++
		}
	}
	f := func(seed int64) bool {
		bp := Bisect(n, nil, seed)
		if bp.Sizes[0]+bp.Sizes[1] != n.NumCells() {
			return false
		}
		diff := bp.Sizes[0] - bp.Sizes[1]
		if diff < 0 {
			diff = -diff
		}
		if diff > n.NumCells()/3 {
			return false
		}
		return bp.CutNets >= 0 && bp.CutNets <= totalNets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
