// Package partition implements Fiduccia-Mattheyses min-cut netlist
// bipartitioning, recursive partitioning, and intrinsic Rent-parameter
// extraction.
//
// The paper leans on partitioning twice: the Fig. 4(b) future flow
// decomposes "the design problem into many more small subproblems", and
// ML application (ii) of Sec. 3.3 is "identification of 'natural
// structure' in designs that will permit extreme partitioning and
// decomposition" (cf. ref [44], intrinsic Rent parameter evaluation).
// The Rent exponent extracted here is exactly that structural attribute:
// it quantifies how partitionable a design is, and feeds the prediction
// models as a feature.
package partition

import (
	"math"
	"math/rand"

	"repro/internal/ml"
	"repro/internal/netlist"
)

// Bipartition is the result of one min-cut split.
type Bipartition struct {
	// Side[inst] is 0 or 1 for instances in scope; -1 for out-of-scope.
	Side []int
	// CutNets counts nets with pins on both sides.
	CutNets int
	// Sizes are the cell counts per side.
	Sizes  [2]int
	Passes int
}

// fmGraph is the hypergraph view used by FM: for each net, its member
// instances (driver + sinks, deduplicated); for each instance, its nets.
type fmGraph struct {
	netsOf  [][]int
	cellsOf [][]int // per net
	netIDs  []int
	cells   []int
	indexOf map[int]int // instance -> dense index
}

func buildGraph(n *netlist.Netlist, scope []int) *fmGraph {
	g := &fmGraph{indexOf: make(map[int]int, len(scope))}
	g.cells = append([]int(nil), scope...)
	for i, inst := range g.cells {
		g.indexOf[inst] = i
	}
	g.netsOf = make([][]int, len(g.cells))
	for netID := range n.Nets {
		net := &n.Nets[netID]
		if net.IsClock {
			continue
		}
		var members []int
		seen := map[int]bool{}
		add := func(inst int) {
			if di, ok := g.indexOf[inst]; ok && !seen[inst] {
				seen[inst] = true
				members = append(members, di)
			}
		}
		if net.Driver >= 0 {
			add(net.Driver)
		}
		for _, s := range net.Sinks {
			add(s.Inst)
		}
		if len(members) < 2 {
			continue
		}
		denseNet := len(g.cellsOf)
		g.cellsOf = append(g.cellsOf, members)
		g.netIDs = append(g.netIDs, netID)
		for _, di := range members {
			g.netsOf[di] = append(g.netsOf[di], denseNet)
		}
	}
	return g
}

// Bisect splits the given instances (all instances if scope is nil) into
// two near-equal halves minimizing cut nets, using multi-pass FM with a
// balance tolerance of ~10%.
func Bisect(n *netlist.Netlist, scope []int, seed int64) Bipartition {
	if scope == nil {
		scope = make([]int, n.NumCells())
		for i := range scope {
			scope[i] = i
		}
	}
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph(n, scope)
	numCells := len(g.cells)
	res := Bipartition{Side: make([]int, n.NumCells())}
	for i := range res.Side {
		res.Side[i] = -1
	}
	if numCells == 0 {
		return res
	}

	// Random balanced initial assignment.
	side := make([]int, numCells)
	perm := rng.Perm(numCells)
	for i, p := range perm {
		if i < numCells/2 {
			side[p] = 0
		} else {
			side[p] = 1
		}
	}
	count := [2]int{}
	for _, s := range side {
		count[s]++
	}
	minSide := numCells/2 - numCells/10 - 1
	if minSide < 1 {
		minSide = 1
	}

	// netSideCount[net][s] = members on side s.
	netSideCount := make([][2]int, len(g.cellsOf))
	recount := func() {
		for net := range netSideCount {
			netSideCount[net] = [2]int{}
			for _, di := range g.cellsOf[net] {
				netSideCount[net][side[di]]++
			}
		}
	}
	recount()

	gain := func(di int) int {
		from := side[di]
		to := 1 - from
		gn := 0
		for _, net := range g.netsOf[di] {
			if netSideCount[net][from] == 1 {
				gn++ // moving uncuts the net
			}
			if netSideCount[net][to] == 0 {
				gn-- // moving cuts a previously internal net
			}
		}
		return gn
	}
	applyMove := func(di int) {
		from := side[di]
		to := 1 - from
		for _, net := range g.netsOf[di] {
			netSideCount[net][from]--
			netSideCount[net][to]++
		}
		side[di] = to
		count[from]--
		count[to]++
	}
	cut := func() int {
		c := 0
		for net := range netSideCount {
			if netSideCount[net][0] > 0 && netSideCount[net][1] > 0 {
				c++
			}
		}
		return c
	}

	// FM passes: move the best-gain unlocked cell (respecting balance),
	// lock it; track the best prefix; roll back past it.
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		locked := make([]bool, numCells)
		type rec struct {
			di   int
			gain int
		}
		var history []rec
		sum, bestSum, bestLen := 0, 0, 0
		for moves := 0; moves < numCells; moves++ {
			bestDi, bestGain := -1, math.MinInt
			for di := 0; di < numCells; di++ {
				if locked[di] || count[side[di]]-1 < minSide {
					continue
				}
				if gn := gain(di); gn > bestGain {
					bestDi, bestGain = di, gn
				}
			}
			if bestDi < 0 {
				break
			}
			applyMove(bestDi)
			locked[bestDi] = true
			sum += bestGain
			history = append(history, rec{di: bestDi, gain: bestGain})
			if sum > bestSum {
				bestSum, bestLen = sum, len(history)
			}
		}
		// Roll back moves past the best prefix.
		for i := len(history) - 1; i >= bestLen; i-- {
			applyMove(history[i].di)
		}
		res.Passes++
		if bestSum <= 0 {
			break
		}
	}

	for di, inst := range g.cells {
		res.Side[inst] = side[di]
	}
	res.CutNets = cut()
	res.Sizes = count
	return res
}

// RentPoint is one level of the recursive-bisection Rent analysis.
type RentPoint struct {
	Cells    int     // average block size at this level
	Pins     float64 // average external nets per block
	LogCells float64
	LogPins  float64
}

// RentResult is the intrinsic Rent-parameter evaluation.
type RentResult struct {
	Exponent float64 // the Rent exponent p in Pins ~ k * Cells^p
	K        float64 // the Rent coefficient
	R2       float64
	Points   []RentPoint
}

// Rent estimates the design's intrinsic Rent parameter by recursive
// min-cut bisection: at each level, blocks are split and the external
// net count (nets crossing the block boundary) is recorded; the Rent
// exponent is the log-log slope.
func Rent(n *netlist.Netlist, levels int, seed int64) RentResult {
	if levels <= 0 {
		levels = 4
	}
	blocks := [][]int{allCells(n)}
	var points []RentPoint
	points = append(points, RentPoint{
		Cells: len(blocks[0]),
		Pins:  float64(externalNets(n, blocks[0])),
	})
	for level := 0; level < levels; level++ {
		var next [][]int
		for bi, b := range blocks {
			if len(b) < 8 {
				next = append(next, b)
				continue
			}
			bp := Bisect(n, b, seed+int64(level*100+bi))
			var left, right []int
			for _, inst := range b {
				if bp.Side[inst] == 0 {
					left = append(left, inst)
				} else {
					right = append(right, inst)
				}
			}
			next = append(next, left, right)
		}
		blocks = next
		var cellSum, pinSum float64
		for _, b := range blocks {
			cellSum += float64(len(b))
			pinSum += float64(externalNets(n, b))
		}
		points = append(points, RentPoint{
			Cells: int(cellSum / float64(len(blocks))),
			Pins:  pinSum / float64(len(blocks)),
		})
	}

	var xs, ys []float64
	res := RentResult{}
	for i := range points {
		if points[i].Cells < 1 || points[i].Pins <= 0 {
			continue
		}
		points[i].LogCells = math.Log(float64(points[i].Cells))
		points[i].LogPins = math.Log(points[i].Pins)
		if i == 0 {
			// The whole-design point sits in Rent "region II": its
			// pins are only the package-level I/O, far below the
			// power-law trend. Standard Rent extraction excludes it.
			continue
		}
		xs = append(xs, points[i].LogCells)
		ys = append(ys, points[i].LogPins)
	}
	res.Points = points
	if len(xs) >= 2 {
		x2 := make([][]float64, len(xs))
		for i := range xs {
			x2[i] = []float64{xs[i]}
		}
		if reg, err := ml.FitLinear(x2, ys); err == nil {
			res.Exponent = reg.Coef[0]
			res.K = math.Exp(reg.Intercept)
			res.R2 = ml.R2(reg.PredictAll(x2), ys)
		}
	}
	return res
}

// allCells returns every instance ID.
func allCells(n *netlist.Netlist) []int {
	out := make([]int, n.NumCells())
	for i := range out {
		out[i] = i
	}
	return out
}

// externalNets counts nets with at least one pin inside the block and at
// least one outside (or an external connection: PI driver or external
// cap).
func externalNets(n *netlist.Netlist, block []int) int {
	in := make(map[int]bool, len(block))
	for _, inst := range block {
		in[inst] = true
	}
	count := 0
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock {
			continue
		}
		inside, outside := false, false
		if net.Driver >= 0 {
			if in[net.Driver] {
				inside = true
			} else {
				outside = true
			}
		} else {
			outside = true // primary input enters from outside
		}
		for _, s := range net.Sinks {
			if in[s.Inst] {
				inside = true
			} else {
				outside = true
			}
		}
		if net.ExternalCap > 0 {
			outside = true
		}
		if inside && outside {
			count++
		}
	}
	return count
}
