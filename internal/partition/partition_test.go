package partition

import (
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func design(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestBisectBalanced(t *testing.T) {
	n := design(1)
	bp := Bisect(n, nil, 1)
	total := bp.Sizes[0] + bp.Sizes[1]
	if total != n.NumCells() {
		t.Fatalf("sides cover %d of %d cells", total, n.NumCells())
	}
	diff := bp.Sizes[0] - bp.Sizes[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > n.NumCells()/4 {
		t.Errorf("unbalanced split: %v", bp.Sizes)
	}
	for i, s := range bp.Side {
		if s != 0 && s != 1 {
			t.Fatalf("inst %d unassigned (side %d)", i, s)
		}
	}
}

func TestBisectBeatsRandomCut(t *testing.T) {
	n := design(2)
	bp := Bisect(n, nil, 1)
	// Compare against the average random balanced cut.
	rng := rand.New(rand.NewSource(99))
	randomCut := 0
	const trials = 10
	for tr := 0; tr < trials; tr++ {
		side := make([]int, n.NumCells())
		perm := rng.Perm(n.NumCells())
		for i, p := range perm {
			if i < n.NumCells()/2 {
				side[p] = 0
			}
			if i >= n.NumCells()/2 {
				side[p] = 1
			}
		}
		cut := 0
		for i := range n.Nets {
			net := &n.Nets[i]
			if net.IsClock || net.Driver < 0 {
				continue
			}
			s0 := side[net.Driver]
			for _, snk := range net.Sinks {
				if side[snk.Inst] != s0 {
					cut++
					break
				}
			}
		}
		randomCut += cut
	}
	if float64(bp.CutNets) > 0.8*float64(randomCut)/trials {
		t.Errorf("FM cut %d not clearly below random mean %d", bp.CutNets, randomCut/trials)
	}
}

func TestBisectScope(t *testing.T) {
	n := design(3)
	scope := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	bp := Bisect(n, scope, 1)
	inScope := map[int]bool{}
	for _, i := range scope {
		inScope[i] = true
	}
	for i, s := range bp.Side {
		if inScope[i] && s == -1 {
			t.Fatalf("scoped inst %d unassigned", i)
		}
		if !inScope[i] && s != -1 {
			t.Fatalf("out-of-scope inst %d assigned side %d", i, s)
		}
	}
	if bp.Sizes[0]+bp.Sizes[1] != len(scope) {
		t.Fatal("scope sizes wrong")
	}
}

func TestBisectDeterministic(t *testing.T) {
	n := design(4)
	a := Bisect(n, nil, 7)
	b := Bisect(n, nil, 7)
	if a.CutNets != b.CutNets {
		t.Fatal("same seed differs")
	}
}

func TestBisectEmptyScope(t *testing.T) {
	n := design(5)
	bp := Bisect(n, []int{}, 1)
	if bp.CutNets != 0 || bp.Sizes[0] != 0 {
		t.Fatalf("empty scope: %+v", bp)
	}
}

func TestRentExponentRange(t *testing.T) {
	n := design(6)
	r := Rent(n, 3, 1)
	if r.Exponent <= 0 || r.Exponent >= 1.2 {
		t.Fatalf("Rent exponent %v outside plausible range", r.Exponent)
	}
	if r.K <= 0 {
		t.Fatalf("Rent coefficient %v", r.K)
	}
	if len(r.Points) != 4 {
		t.Fatalf("%d points", len(r.Points))
	}
	if r.R2 < 0.5 {
		t.Errorf("log-log fit R2 %v very poor", r.R2)
	}
}

func TestRentTracksLocality(t *testing.T) {
	// The generator's locality knob is a Rent-exponent proxy: more
	// local designs must measure a lower Rent exponent. This closes
	// the loop between the synthetic generator and the structural
	// analysis (ML application (ii) of the paper's Sec. 3.3).
	lib := cellib.Default14nm()
	mk := func(locality float64) *netlist.Netlist {
		return netlist.Generate(lib, netlist.Spec{
			Name: "rent", Seed: 5, NumComb: 600, NumFFs: 60, Levels: 10,
			Locality: locality, NumPIs: 16, ClockPeriodPs: 1000,
		})
	}
	local := Rent(mk(0.95), 3, 1)
	global := Rent(mk(0.1), 3, 1)
	if local.Exponent >= global.Exponent {
		t.Errorf("local design Rent %v should be below global %v", local.Exponent, global.Exponent)
	}
}

func TestExternalNetsCounts(t *testing.T) {
	n := design(7)
	all := allCells(n)
	// The whole design's "external" nets are those touching PIs/POs.
	ext := externalNets(n, all)
	if ext <= 0 {
		t.Fatal("whole-design external nets should count PI/PO connections")
	}
	// A single cell's external nets = its connected non-clock nets.
	single := externalNets(n, []int{20})
	degree := 0
	for _, f := range n.FaninNet[20] {
		if f >= 0 && !n.Nets[f].IsClock {
			degree++
		}
	}
	if out := n.FanoutNet[20]; out >= 0 && len(n.Nets[out].Sinks) > 0 {
		degree++
	}
	if single > degree {
		t.Errorf("single-cell external nets %d exceed degree %d", single, degree)
	}
}

func BenchmarkBisect(b *testing.B) {
	n := design(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bisect(n, nil, int64(i))
	}
}

func BenchmarkRent(b *testing.B) {
	n := design(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rent(n, 3, int64(i))
	}
}
