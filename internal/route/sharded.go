package route

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/num"
	"repro/internal/sched"
	"repro/internal/trace"
)

const (
	// boundaryPasses is how many rip-up-and-reroute sweeps the boundary
	// reconciliation runs over the randomly seeded initial assignment.
	boundaryPasses = 6
	// boundaryChunk is the speculation window: pairs price
	// concurrently in fixed chunks of this size against a demand
	// snapshot frozen at the chunk boundary, so at most this many
	// pairs reroute blind to each other. Damped flips (below) are what
	// keeps a wide window from oscillating; the chunking bounds the
	// staleness on huge designs.
	boundaryChunk = 4096
)

// globalRouteSharded is the region-sharded parallel router selected by
// GlobalOptions.Tiles > 1. It routes in two phases:
//
// Phase 1 — tile-local nets. The congestion grid is partitioned into
// Tiles x Tiles rectangular regions. A net whose pins all map into one
// region can only ever price or claim edges joining cells of that
// region — an L-route never leaves the bounding box of its endpoints —
// so the per-region net lists touch pairwise-disjoint index sets of the
// shared demand map and are routed concurrently without
// synchronization. Each region draws its tie-break coins from its own
// stream (num.Mix of the seed and the region ID), and per-region
// wirelength partials are merged in ascending region order.
//
// Phase 2 — boundary-crossing nets, by deterministic damped
// rip-up-and-reroute. Each driver-sink pair has exactly two candidate
// routes (the two L-shapes). Pairs start on per-pair coin-flip
// choices, all committed at once; each sweep then walks the pairs in
// fixed chunks of boundaryChunk: every pair in the chunk prices both
// candidates concurrently against the demand map frozen at the chunk
// boundary — minus the pair's own committed track, the usual rip-up
// accounting — and pairs preferring the other L flip with annealed
// probability (per-pair splitmix coins), the chunk's flips committing
// serially before the next chunk prices. Demand increments are unit
// counts in float64 so commits are exact, chunk boundaries depend only
// on the pair count, and every coin sits on its own pair/pass stream —
// the result is a pure function of Seed, GridDim and Tiles. Wirelength
// is the manhattan pin-pair distance — identical for both L-shapes —
// and is banked in pair order before the sweeps run.
//
// Both phases are bit-identical at every Workers setting and
// GOMAXPROCS, but differ from the Tiles <= 1 serial net order.
func globalRouteSharded(n *netlist.Netlist, opts GlobalOptions) *GlobalResult {
	r := newRouter(n, opts)
	tiles := opts.Tiles
	numTiles := tiles * tiles
	tileOf := func(gx, gy int) int {
		return (gy*tiles/r.dim)*tiles + gx*tiles/r.dim
	}

	// Partition the routable nets: tile-local vs boundary-crossing.
	local := make([][]int, numTiles)
	var boundary []int
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock || net.Driver < 0 || len(net.Sinks) == 0 {
			continue
		}
		gx, gy := r.toGrid(n.Insts[net.Driver].X, n.Insts[net.Driver].Y)
		home := tileOf(gx, gy)
		crossing := false
		for _, s := range net.Sinks {
			gx, gy = r.toGrid(n.Insts[s.Inst].X, n.Insts[s.Inst].Y)
			if tileOf(gx, gy) != home {
				crossing = true
				break
			}
		}
		if crossing {
			boundary = append(boundary, i)
		} else {
			local[home] = append(local[home], i)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = numTiles
	}
	gang := sched.NewGang(workers)
	defer gang.Close()

	// Phase 1: every region in flight at once, demand writes disjoint
	// by construction.
	partial := make([]float64, numTiles)
	gang.Round(numTiles, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			if len(local[t]) == 0 {
				continue
			}
			sp := trace.Begin("route.tile")
			sp.SetInt("tile", int64(t))
			sp.SetInt("nets", int64(len(local[t])))
			rng := rand.New(rand.NewSource(num.Mix(opts.Seed, uint64(t)+1)))
			for _, nid := range local[t] {
				r.routeNet(nid, rng, &partial[t])
			}
			sp.End()
		}
	})
	var wl float64
	for _, p := range partial {
		wl += p
	}

	// Phase 2: expand the boundary nets into driver-sink pairs and
	// bank their wirelength (both L-shapes have the same manhattan
	// length, so it is choice-independent).
	type boundaryPair struct {
		sx, sy, tx, ty int32
		hFirst         bool
	}
	var pairs []boundaryPair
	for _, nid := range boundary {
		net := &n.Nets[nid]
		sx, sy := r.toGrid(n.Insts[net.Driver].X, n.Insts[net.Driver].Y)
		for _, s := range net.Sinks {
			tx, ty := r.toGrid(n.Insts[s.Inst].X, n.Insts[s.Inst].Y)
			if sx == tx && sy == ty {
				continue
			}
			pairs = append(pairs, boundaryPair{int32(sx), int32(sy), int32(tx), int32(ty), false})
			wl += (math.Abs(float64(sx-tx)) + math.Abs(float64(sy-ty))) * r.w / float64(r.dim)
		}
	}

	// Initial assignment: an independent coin per pair, committed at
	// once. Pricing against the near-empty map would tie (and flip the
	// same coin) for almost every pair anyway, and a 50/50 random
	// spread is a good negotiation starting point.
	salt := num.Mix(opts.Seed, 0)
	for i := range pairs {
		p := &pairs[i]
		coin := num.NewSplitMix(num.Mix(salt, uint64(i)+1))
		p.hFirst = coin.Uint64()&1 == 0
		if p.hFirst {
			r.stampL(int(p.sx), int(p.sy), int(p.tx), int(p.ty), +1)
		} else {
			r.stampL(int(p.tx), int(p.ty), int(p.sx), int(p.sy), +1)
		}
	}

	tieSalt := num.Mix(opts.Seed, 1)
	next := make([]bool, boundaryChunk)
	for pass := 0; pass < boundaryPasses; pass++ {
		sp := trace.Begin("route.pass")
		sp.SetInt("pass", int64(pass))
		sp.SetInt("pairs", int64(len(pairs)))
		for lo := 0; lo < len(pairs); lo += boundaryChunk {
			chunk := pairs[lo:min(lo+boundaryChunk, len(pairs))]
			// Concurrent pricing: the chunk reads the frozen map,
			// writes only per-pair slots.
			gang.Round(len(chunk), func(clo, chi int) {
				for i := clo; i < chi; i++ {
					p := &chunk[i]
					sx, sy, tx, ty := int(p.sx), int(p.sy), int(p.tx), int(p.ty)
					var subRow, subCol int
					if p.hFirst {
						subRow, subCol = sy, tx
					} else {
						subRow, subCol = ty, sx
					}
					c1 := r.costL(sx, sy, tx, ty, subRow, subCol) // H then V
					c2 := r.costL(tx, ty, sx, sy, subRow, subCol) // V then H
					// Ties keep the current route. A pair that wants
					// the other L flips with annealed probability
					// 1/2^(pass+1) (its own coin): when a hot edge
					// prices a whole window off itself at once,
					// synchronous best response just seesaws — damping
					// lets a shrinking fraction move each sweep and
					// the rest re-price against the result, freezing
					// the population into a stable assignment.
					next[i] = p.hFirst
					if want := c1 < c2; want != p.hFirst && c1 != c2 {
						coin := num.NewSplitMix(num.Mix(tieSalt, uint64(lo+i)*boundaryPasses+uint64(pass)+1))
						if coin.Uint64()&(1<<(pass+1)-1) == 0 {
							next[i] = want
						}
					}
				}
			})
			// Serial commit in pair order: rip up the old track, claim
			// the new one — flips only, the common keep case is free.
			for i := range chunk {
				p := &chunk[i]
				if p.hFirst == next[i] {
					continue
				}
				if p.hFirst {
					r.stampL(int(p.sx), int(p.sy), int(p.tx), int(p.ty), -1)
				} else {
					r.stampL(int(p.tx), int(p.ty), int(p.sx), int(p.sy), -1)
				}
				p.hFirst = next[i]
				if p.hFirst {
					r.stampL(int(p.sx), int(p.sy), int(p.tx), int(p.ty), +1)
				} else {
					r.stampL(int(p.tx), int(p.ty), int(p.sx), int(p.sy), +1)
				}
			}
		}
		sp.End()
	}
	return r.finish(wl)
}
