// Package route implements global routing (congestion-aware pattern
// routing on a coarse grid) and a detailed-routing convergence simulator.
//
// The detailed router is the centerpiece substrate for the paper's
// doomed-run experiments (Figs. 9-10 and the consecutive-STOP error
// table): commercial detailed routers default to 20-40 rip-up-and-reroute
// iterations, and the per-iteration design-rule-violation (DRV) count is
// the time series the MDP/HMM detectors consume. Here the DRV dynamics
// are driven mechanistically by the global-routing congestion margin: a
// run whose residual congestion is high converges to a large DRV floor
// (doomed), a comfortable run decays geometrically to ~zero (success),
// with multiplicative noise — reproducing the four qualitative shapes of
// Fig. 9.
package route

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/trace"
)

// SuccessDRVThreshold is the paper's success criterion: a detailed
// routing run "succeeds" if it ends with fewer than 200 DRVs (the rest
// being manually fixable).
const SuccessDRVThreshold = 200

// GlobalOptions parameterize global routing.
type GlobalOptions struct {
	GridDim       int     // routing grid is GridDim x GridDim (default 24)
	TracksPerEdge float64 // capacity per grid edge (default 28)
	Seed          int64
}

func (o GlobalOptions) withDefaults() GlobalOptions {
	if o.GridDim <= 0 {
		o.GridDim = 24
	}
	if o.TracksPerEdge <= 0 {
		o.TracksPerEdge = 28
	}
	return o
}

// GlobalResult is the congestion picture after global routing.
type GlobalResult struct {
	GridDim       int
	Demand        []float64 // per-edge demand; horizontal then vertical edges
	Capacity      float64   // per-edge capacity
	WirelengthUm  float64
	OverflowTotal float64 // sum over edges of max(0, demand-capacity)
	OverflowPeak  float64 // worst single-edge overflow
	HotspotFrac   float64 // fraction of edges over 90% capacity
}

// CongestionMargin summarizes routability in one number: >0 means
// comfortable, <=0 means overflow pressure. It is the mechanistic driver
// of detailed-routing convergence.
func (g *GlobalResult) CongestionMargin() float64 {
	return 1 - (g.OverflowTotal/float64(len(g.Demand)))/g.Capacity - 0.6*g.HotspotFrac
}

// GlobalRoute routes every non-clock net with congestion-aware L-shaped
// pattern routing on a uniform grid and returns the congestion picture.
func GlobalRoute(n *netlist.Netlist, opts GlobalOptions) *GlobalResult {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	dim := opts.GridDim

	w, h := dieExtent(n)
	toGrid := func(x, y float64) (int, int) {
		gx := int(x / w * float64(dim))
		gy := int(y / h * float64(dim))
		return clamp(gx, 0, dim-1), clamp(gy, 0, dim-1)
	}

	// Edge indexing: horizontal edge (x,y)->(x+1,y) at hIdx; vertical
	// edge (x,y)->(x,y+1) at vIdx.
	numH := (dim - 1) * dim
	numV := dim * (dim - 1)
	demand := make([]float64, numH+numV)
	hIdx := func(x, y int) int { return y*(dim-1) + x }
	vIdx := func(x, y int) int { return numH + x*(dim-1) + y }

	res := &GlobalResult{GridDim: dim, Demand: demand, Capacity: opts.TracksPerEdge}

	// Cost of adding one track to an edge: grows steeply near capacity
	// (standard negotiated-congestion style cost).
	edgeCost := func(e int) float64 {
		u := demand[e] / opts.TracksPerEdge
		return 1 + math.Exp(6*(u-1))
	}
	routeSeg := func(x1, y1, x2, y2 int, commit bool) float64 {
		var cost float64
		step := func(e int) {
			cost += edgeCost(e)
			if commit {
				demand[e]++
			}
		}
		for x := min(x1, x2); x < max(x1, x2); x++ {
			step(hIdx(x, y1))
		}
		for y := min(y1, y2); y < max(y1, y2); y++ {
			step(vIdx(x2, y))
		}
		return cost
	}

	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock || net.Driver < 0 || len(net.Sinks) == 0 {
			continue
		}
		sx, sy := toGrid(n.Insts[net.Driver].X, n.Insts[net.Driver].Y)
		for _, s := range net.Sinks {
			tx, ty := toGrid(n.Insts[s.Inst].X, n.Insts[s.Inst].Y)
			if sx == tx && sy == ty {
				continue
			}
			// Two L-shapes: horizontal-first vs vertical-first;
			// take the cheaper, breaking ties randomly.
			c1 := routeSeg(sx, sy, tx, ty, false)            // H then V
			c2 := routeSeg2(routeSeg, sx, sy, tx, ty, false) // V then H
			if c1 < c2 || (c1 == c2 && rng.Float64() < 0.5) {
				routeSeg(sx, sy, tx, ty, true)
			} else {
				routeSeg2(routeSeg, sx, sy, tx, ty, true)
			}
			res.WirelengthUm += (math.Abs(float64(sx-tx)) + math.Abs(float64(sy-ty))) * w / float64(dim)
		}
	}

	hot := 0
	for _, d := range demand {
		if over := d - opts.TracksPerEdge; over > 0 {
			res.OverflowTotal += over
			if over > res.OverflowPeak {
				res.OverflowPeak = over
			}
		}
		if d > 0.9*opts.TracksPerEdge {
			hot++
		}
	}
	res.HotspotFrac = float64(hot) / float64(len(demand))
	return res
}

// routeSeg2 is the vertical-first L: route (sx,sy)->(sx,ty) then
// (sx,ty)->(tx,ty), expressed via the horizontal-first primitive by
// swapping the bend.
func routeSeg2(routeSeg func(int, int, int, int, bool) float64, sx, sy, tx, ty int, commit bool) float64 {
	// Vertical-first from (sx,sy) to (tx,ty) equals horizontal-first
	// from (tx,ty) to (sx,sy) traversed backwards; edge sets match.
	return routeSeg(tx, ty, sx, sy, commit)
}

// IterAction is a live supervision decision taken between rip-up
// passes: Continue runs the next iteration, Stop terminates the run now
// (the doomed-run MDP's STOP, acted on while the tool is running instead
// of graded post hoc). It deliberately mirrors mdp.Action without
// importing it — mdp consumes this package's results, so the dependency
// points the other way.
type IterAction int

const (
	// Continue lets the router run its next rip-up pass.
	Continue IterAction = iota
	// Stop terminates the run after the current pass, releasing the
	// license the run holds.
	Stop
)

// IterHook is called after every rip-up pass with the 1-based iteration
// just completed and the DRV series so far (drvs[0] is the initial
// count, drvs[iter] the newest). Returning Stop ends the run. The hook
// must not retain or mutate drvs.
type IterHook func(iter int, drvs []int) IterAction

// DetailOptions parameterize the detailed-routing convergence simulator.
type DetailOptions struct {
	Iterations int   // rip-up-and-reroute iterations (default 20, as in Fig. 9)
	Effort     int   // 1..3; higher effort converges faster (default 2)
	Seed       int64 // run noise
	// StopAfter lets a supervising policy terminate the run early
	// (<=0 means run all iterations). Used by the post-hoc doomed-run
	// replays; live policies use IterHook instead.
	StopAfter int
	// IterHook, when non-nil, is consulted between rip-up passes and
	// can stop the run live (see DetailRouteCtx). It never affects the
	// DRV values of the iterations that do run: the rng stream is
	// consumed per pass, so a stopped run's series is a bit-identical
	// prefix of the uninterrupted run's.
	IterHook IterHook
}

func (o DetailOptions) withDefaults() DetailOptions {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.Effort <= 0 {
		o.Effort = 2
	}
	return o
}

// DetailResult is one detailed-routing run.
type DetailResult struct {
	// DRVs[t] is the violation count after iteration t; DRVs[0] is the
	// initial count after track assignment.
	DRVs          []int
	Final         int
	Success       bool // Final < SuccessDRVThreshold
	IterationsRun int
	// IterationsBudget is the iteration budget the run was given
	// (Iterations after defaults); IterationsBudget - IterationsRun is
	// the compute a live STOP or abort reclaimed.
	IterationsBudget int
	// RuntimeProxy accumulates simulated per-iteration cost; early
	// termination of doomed runs saves this (the paper's motivation).
	RuntimeProxy float64
	// StopIter is the iteration at which IterHook stopped the run
	// (0 = ran without a live STOP). The result is a well-formed
	// partial: DRVs, Final, Success and IterationsRun describe the
	// iterations that actually ran.
	StopIter int
	// Aborted is set when the run was cancelled via context rather than
	// finishing or being STOPped by its hook.
	Aborted bool
}

// DetailRoute simulates rip-up-and-reroute convergence for the global
// routing congestion picture.
func DetailRoute(g *GlobalResult, opts DetailOptions) *DetailResult {
	return DetailRouteCtx(context.Background(), g, opts)
}

// DetailRouteCtx is DetailRoute with live supervision: between rip-up
// passes it checks ctx (cancellation aborts the run, setting Aborted)
// and consults opts.IterHook (a Stop ends the run, setting StopIter).
// Both paths return a well-formed partial result whose DRV series is a
// bit-identical prefix of the uninterrupted run's, so a supervisor's
// CONTINUE decisions never perturb QOR — only early termination saves
// iterations.
func DetailRouteCtx(ctx context.Context, g *GlobalResult, opts DetailOptions) *DetailResult {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &DetailResult{IterationsBudget: opts.Iterations}

	margin := g.CongestionMargin()

	// Initial DRVs: proportional to total routed wire with a strong
	// overflow multiplier.
	base := 300 + 40*math.Sqrt(g.WirelengthUm)
	drv := base * (1 + 2.5*g.OverflowTotal/math.Max(1, float64(len(g.Demand)))) *
		math.Exp(0.25*rng.NormFloat64())

	// Convergence floor: residual violations that rip-up cannot fix,
	// driven by peak overflow and hotspot clustering. A comfortable
	// margin gives floor ~0 (success); congestion leaves hundreds to
	// thousands (doomed).
	floor := 9 * g.OverflowPeak * (1 + 14*g.HotspotFrac)
	if margin > 0.12 {
		floor *= math.Exp(-12 * (margin - 0.12))
	}
	// Outcomes separate in practice (cf. the paper's Fig. 9: successes
	// end near 10^1-10^2 DRVs, doomed runs at 10^3-10^4): a residual
	// hotspot either unravels under rip-up or it doesn't. Sharpen the
	// floor around the success threshold so borderline finals are rare,
	// preserving monotonicity in congestion.
	if floor > 0 {
		floor = SuccessDRVThreshold * math.Pow(floor/SuccessDRVThreshold, 2.2)
	}

	// Per-iteration retention: fraction of fixable DRVs surviving an
	// iteration. Effort buys a lower retention.
	rho := 0.72 - 0.09*float64(opts.Effort)
	res.DRVs = append(res.DRVs, int(drv))
	for t := 1; t <= opts.Iterations; t++ {
		if opts.StopAfter > 0 && t > opts.StopAfter {
			break
		}
		if ctx.Err() != nil {
			res.Aborted = true
			break
		}
		// One span per rip-up pass: the innermost layer of the campaign
		// trace, and the route.iter latency histogram. Costs one nil
		// check when tracing is off.
		_, isp := trace.Start(ctx, "route.iter")
		noise := math.Exp(0.10 * rng.NormFloat64())
		// Late iterations on congested designs can regress (the
		// orange curve of Fig. 9): rip-up in hotspots creates new
		// violations elsewhere.
		regress := 1.0
		if floor > SuccessDRVThreshold && t > opts.Iterations/2 && rng.Float64() < 0.3 {
			regress = 1.15
		}
		drv = (floor + (drv-floor)*rho) * noise * regress
		if drv < 0 {
			drv = 0
		}
		res.DRVs = append(res.DRVs, int(drv))
		res.IterationsRun++
		res.RuntimeProxy += 1 + drv/5000
		isp.SetInt("iter", int64(t))
		isp.SetInt("drvs", int64(drv))
		if opts.IterHook != nil && opts.IterHook(t, res.DRVs) == Stop {
			res.StopIter = t
			isp.EndWith(trace.Stopped)
			break
		}
		isp.End()
	}
	res.Final = res.DRVs[len(res.DRVs)-1]
	res.Success = res.Final < SuccessDRVThreshold
	return res
}

func dieExtent(n *netlist.Netlist) (w, h float64) {
	var maxX, maxY float64
	for i := range n.Insts {
		maxX = math.Max(maxX, n.Insts[i].X)
		maxY = math.Max(maxY, n.Insts[i].Y)
	}
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	return maxX * 1.01, maxY * 1.01
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
