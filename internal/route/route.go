// Package route implements global routing (congestion-aware pattern
// routing on a coarse grid) and a detailed-routing convergence simulator.
//
// The detailed router is the centerpiece substrate for the paper's
// doomed-run experiments (Figs. 9-10 and the consecutive-STOP error
// table): commercial detailed routers default to 20-40 rip-up-and-reroute
// iterations, and the per-iteration design-rule-violation (DRV) count is
// the time series the MDP/HMM detectors consume. Here the DRV dynamics
// are driven mechanistically by the global-routing congestion margin: a
// run whose residual congestion is high converges to a large DRV floor
// (doomed), a comfortable run decays geometrically to ~zero (success),
// with multiplicative noise — reproducing the four qualitative shapes of
// Fig. 9.
package route

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/num"
	"repro/internal/trace"
)

// SuccessDRVThreshold is the paper's success criterion: a detailed
// routing run "succeeds" if it ends with fewer than 200 DRVs (the rest
// being manually fixable).
const SuccessDRVThreshold = 200

// GlobalOptions parameterize global routing.
type GlobalOptions struct {
	GridDim       int     // routing grid is GridDim x GridDim (default 24)
	TracksPerEdge float64 // capacity per grid edge (default 28)
	Seed          int64
	// Tiles > 1 selects the region-sharded parallel router (sharded.go):
	// the grid is partitioned into Tiles x Tiles regions, nets whose
	// pins all fall inside one region are routed concurrently per region
	// (each region owns a deterministic rng stream and touches a
	// disjoint set of demand edges), and the remaining boundary-crossing
	// nets are reconciled with deterministic parallel
	// rip-up-and-reroute passes against frozen demand snapshots.
	// Results depend only on Seed, GridDim and Tiles — identical at
	// every Workers setting and GOMAXPROCS — but differ from the
	// Tiles <= 1 serial net order.
	Tiles int
	// Workers caps concurrent region routing (default Tiles*Tiles,
	// i.e. every region in flight at once).
	Workers int
}

func (o GlobalOptions) withDefaults() GlobalOptions {
	if o.GridDim <= 0 {
		o.GridDim = 24
	}
	if o.TracksPerEdge <= 0 {
		o.TracksPerEdge = 28
	}
	return o
}

// GlobalResult is the congestion picture after global routing.
type GlobalResult struct {
	GridDim       int
	Demand        []float64 // per-edge demand; horizontal then vertical edges
	Capacity      float64   // per-edge capacity
	WirelengthUm  float64
	OverflowTotal float64 // sum over edges of max(0, demand-capacity)
	OverflowPeak  float64 // worst single-edge overflow
	HotspotFrac   float64 // fraction of edges over 90% capacity
}

// CongestionMargin summarizes routability in one number: >0 means
// comfortable, <=0 means overflow pressure. It is the mechanistic driver
// of detailed-routing convergence.
func (g *GlobalResult) CongestionMargin() float64 {
	return 1 - (g.OverflowTotal/float64(len(g.Demand)))/g.Capacity - 0.6*g.HotspotFrac
}

// router is the shared global-routing core: grid geometry, the demand
// map and the negotiated-congestion L-shape primitive. The serial
// GlobalRoute drives it over all nets with one rng; the region-sharded
// router (sharded.go) drives it per tile with per-tile rng streams.
type router struct {
	n      *netlist.Netlist
	opts   GlobalOptions
	dim    int
	w, h   float64
	numH   int
	demand []float64 // horizontal then vertical edges
}

func newRouter(n *netlist.Netlist, opts GlobalOptions) *router {
	dim := opts.GridDim
	w, h := dieExtent(n)
	// Edge indexing: horizontal edge (x,y)->(x+1,y) at hIdx; vertical
	// edge (x,y)->(x,y+1) at vIdx.
	numH := (dim - 1) * dim
	numV := dim * (dim - 1)
	return &router{
		n: n, opts: opts, dim: dim, w: w, h: h,
		numH:   numH,
		demand: make([]float64, numH+numV),
	}
}

func (r *router) toGrid(x, y float64) (int, int) {
	gx := int(x / r.w * float64(r.dim))
	gy := int(y / r.h * float64(r.dim))
	return num.Clamp(gx, 0, r.dim-1), num.Clamp(gy, 0, r.dim-1)
}

func (r *router) hIdx(x, y int) int { return y*(r.dim-1) + x }
func (r *router) vIdx(x, y int) int { return r.numH + x*(r.dim-1) + y }

// congCost is the cost of adding one track to an edge carrying demand
// d: grows steeply near capacity (standard negotiated-congestion style
// cost).
func (r *router) congCost(d float64) float64 {
	return 1 + math.Exp(6*(d/r.opts.TracksPerEdge-1))
}

func (r *router) edgeCost(e int) float64 { return r.congCost(r.demand[e]) }

// costL prices the horizontal-first L from (x1,y1) to (x2,y2) against
// the demand map without claiming it. When the caller has a previous
// route for the same pin pair in the map, subRow/subCol name that L's
// row and column and one track is subtracted on the overlap (the spans
// coincide because the pair's endpoints do); pass -1/-1 to price
// as-is. The vertical-first L is the same call with endpoints swapped.
func (r *router) costL(x1, y1, x2, y2, subRow, subCol int) float64 {
	var cost float64
	ownRow := y1 == subRow
	for x := min(x1, x2); x < max(x1, x2); x++ {
		d := r.demand[r.hIdx(x, y1)]
		if ownRow {
			d--
		}
		cost += r.congCost(d)
	}
	ownCol := x2 == subCol
	for y := min(y1, y2); y < max(y1, y2); y++ {
		d := r.demand[r.vIdx(x2, y)]
		if ownCol {
			d--
		}
		cost += r.congCost(d)
	}
	return cost
}

// stampL claims one track along the horizontal-first L from (x1,y1) to
// (x2,y2) without pricing it (routeSeg prices and claims in one walk,
// which wastes the exp() calls when the cost is already known).
// delta is +1 to claim, -1 to rip up.
func (r *router) stampL(x1, y1, x2, y2 int, delta float64) {
	for x := min(x1, x2); x < max(x1, x2); x++ {
		r.demand[r.hIdx(x, y1)] += delta
	}
	for y := min(y1, y2); y < max(y1, y2); y++ {
		r.demand[r.vIdx(x2, y)] += delta
	}
}

// routeSeg prices (and with commit, claims) the horizontal-first L from
// (x1,y1) to (x2,y2). The vertical-first L is the same primitive called
// with the endpoints reversed: its edge set matches the backward
// traversal of the horizontal-first route.
func (r *router) routeSeg(x1, y1, x2, y2 int, commit bool) float64 {
	var cost float64
	for x := min(x1, x2); x < max(x1, x2); x++ {
		e := r.hIdx(x, y1)
		cost += r.edgeCost(e)
		if commit {
			r.demand[e]++
		}
	}
	for y := min(y1, y2); y < max(y1, y2); y++ {
		e := r.vIdx(x2, y)
		cost += r.edgeCost(e)
		if commit {
			r.demand[e]++
		}
	}
	return cost
}

// routeNet routes every sink of one net, accumulating wirelength into
// *wl (pointer so callers control the float summation order). All
// demand reads and writes stay on edges between the net's pin cells.
func (r *router) routeNet(netID int, rng *rand.Rand, wl *float64) {
	net := &r.n.Nets[netID]
	if net.IsClock || net.Driver < 0 || len(net.Sinks) == 0 {
		return
	}
	sx, sy := r.toGrid(r.n.Insts[net.Driver].X, r.n.Insts[net.Driver].Y)
	for _, s := range net.Sinks {
		tx, ty := r.toGrid(r.n.Insts[s.Inst].X, r.n.Insts[s.Inst].Y)
		if sx == tx && sy == ty {
			continue
		}
		// Two L-shapes: horizontal-first vs vertical-first;
		// take the cheaper, breaking ties randomly.
		c1 := r.routeSeg(sx, sy, tx, ty, false) // H then V
		c2 := r.routeSeg(tx, ty, sx, sy, false) // V then H
		if c1 < c2 || (c1 == c2 && rng.Float64() < 0.5) {
			r.routeSeg(sx, sy, tx, ty, true)
		} else {
			r.routeSeg(tx, ty, sx, sy, true)
		}
		*wl += (math.Abs(float64(sx-tx)) + math.Abs(float64(sy-ty))) * r.w / float64(r.dim)
	}
}

// finish computes the overflow statistics from the demand map.
func (r *router) finish(wl float64) *GlobalResult {
	res := &GlobalResult{
		GridDim: r.dim, Demand: r.demand,
		Capacity: r.opts.TracksPerEdge, WirelengthUm: wl,
	}
	hot := 0
	for _, d := range r.demand {
		if over := d - r.opts.TracksPerEdge; over > 0 {
			res.OverflowTotal += over
			if over > res.OverflowPeak {
				res.OverflowPeak = over
			}
		}
		if d > 0.9*r.opts.TracksPerEdge {
			hot++
		}
	}
	res.HotspotFrac = float64(hot) / float64(len(r.demand))
	return res
}

// GlobalRoute routes every non-clock net with congestion-aware L-shaped
// pattern routing on a uniform grid and returns the congestion picture.
func GlobalRoute(n *netlist.Netlist, opts GlobalOptions) *GlobalResult {
	opts = opts.withDefaults()
	if opts.Tiles > 1 {
		return globalRouteSharded(n, opts)
	}
	r := newRouter(n, opts)
	rng := rand.New(rand.NewSource(opts.Seed))
	var wl float64
	for i := range n.Nets {
		r.routeNet(i, rng, &wl)
	}
	return r.finish(wl)
}

// IterAction is a live supervision decision taken between rip-up
// passes: Continue runs the next iteration, Stop terminates the run now
// (the doomed-run MDP's STOP, acted on while the tool is running instead
// of graded post hoc). It deliberately mirrors mdp.Action without
// importing it — mdp consumes this package's results, so the dependency
// points the other way.
type IterAction int

const (
	// Continue lets the router run its next rip-up pass.
	Continue IterAction = iota
	// Stop terminates the run after the current pass, releasing the
	// license the run holds.
	Stop
)

// IterHook is called after every rip-up pass with the 1-based iteration
// just completed and the DRV series so far (drvs[0] is the initial
// count, drvs[iter] the newest). Returning Stop ends the run. The hook
// must not retain or mutate drvs.
type IterHook func(iter int, drvs []int) IterAction

// DetailOptions parameterize the detailed-routing convergence simulator.
type DetailOptions struct {
	Iterations int   // rip-up-and-reroute iterations (default 20, as in Fig. 9)
	Effort     int   // 1..3; higher effort converges faster (default 2)
	Seed       int64 // run noise
	// StopAfter lets a supervising policy terminate the run early
	// (<=0 means run all iterations). Used by the post-hoc doomed-run
	// replays; live policies use IterHook instead.
	StopAfter int
	// IterHook, when non-nil, is consulted between rip-up passes and
	// can stop the run live (see DetailRouteCtx). It never affects the
	// DRV values of the iterations that do run: the rng stream is
	// consumed per pass, so a stopped run's series is a bit-identical
	// prefix of the uninterrupted run's.
	IterHook IterHook
}

func (o DetailOptions) withDefaults() DetailOptions {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.Effort <= 0 {
		o.Effort = 2
	}
	return o
}

// DetailResult is one detailed-routing run.
type DetailResult struct {
	// DRVs[t] is the violation count after iteration t; DRVs[0] is the
	// initial count after track assignment.
	DRVs          []int
	Final         int
	Success       bool // Final < SuccessDRVThreshold
	IterationsRun int
	// IterationsBudget is the iteration budget the run was given
	// (Iterations after defaults); IterationsBudget - IterationsRun is
	// the compute a live STOP or abort reclaimed.
	IterationsBudget int
	// RuntimeProxy accumulates simulated per-iteration cost; early
	// termination of doomed runs saves this (the paper's motivation).
	RuntimeProxy float64
	// StopIter is the iteration at which IterHook stopped the run
	// (0 = ran without a live STOP). The result is a well-formed
	// partial: DRVs, Final, Success and IterationsRun describe the
	// iterations that actually ran.
	StopIter int
	// Aborted is set when the run was cancelled via context rather than
	// finishing or being STOPped by its hook.
	Aborted bool
}

// DetailRoute simulates rip-up-and-reroute convergence for the global
// routing congestion picture.
func DetailRoute(g *GlobalResult, opts DetailOptions) *DetailResult {
	return DetailRouteCtx(context.Background(), g, opts)
}

// DetailRouteCtx is DetailRoute with live supervision: between rip-up
// passes it checks ctx (cancellation aborts the run, setting Aborted)
// and consults opts.IterHook (a Stop ends the run, setting StopIter).
// Both paths return a well-formed partial result whose DRV series is a
// bit-identical prefix of the uninterrupted run's, so a supervisor's
// CONTINUE decisions never perturb QOR — only early termination saves
// iterations.
func DetailRouteCtx(ctx context.Context, g *GlobalResult, opts DetailOptions) *DetailResult {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &DetailResult{IterationsBudget: opts.Iterations}

	margin := g.CongestionMargin()

	// Initial DRVs: proportional to total routed wire with a strong
	// overflow multiplier.
	base := 300 + 40*math.Sqrt(g.WirelengthUm)
	drv := base * (1 + 2.5*g.OverflowTotal/math.Max(1, float64(len(g.Demand)))) *
		math.Exp(0.25*rng.NormFloat64())

	// Convergence floor: residual violations that rip-up cannot fix,
	// driven by peak overflow and hotspot clustering. A comfortable
	// margin gives floor ~0 (success); congestion leaves hundreds to
	// thousands (doomed).
	floor := 9 * g.OverflowPeak * (1 + 14*g.HotspotFrac)
	if margin > 0.12 {
		floor *= math.Exp(-12 * (margin - 0.12))
	}
	// Outcomes separate in practice (cf. the paper's Fig. 9: successes
	// end near 10^1-10^2 DRVs, doomed runs at 10^3-10^4): a residual
	// hotspot either unravels under rip-up or it doesn't. Sharpen the
	// floor around the success threshold so borderline finals are rare,
	// preserving monotonicity in congestion.
	if floor > 0 {
		floor = SuccessDRVThreshold * math.Pow(floor/SuccessDRVThreshold, 2.2)
	}

	// Per-iteration retention: fraction of fixable DRVs surviving an
	// iteration. Effort buys a lower retention.
	rho := 0.72 - 0.09*float64(opts.Effort)
	res.DRVs = append(res.DRVs, int(drv))
	for t := 1; t <= opts.Iterations; t++ {
		if opts.StopAfter > 0 && t > opts.StopAfter {
			break
		}
		if ctx.Err() != nil {
			res.Aborted = true
			break
		}
		// One span per rip-up pass: the innermost layer of the campaign
		// trace, and the route.iter latency histogram. Costs one nil
		// check when tracing is off.
		_, isp := trace.Start(ctx, "route.iter")
		noise := math.Exp(0.10 * rng.NormFloat64())
		// Late iterations on congested designs can regress (the
		// orange curve of Fig. 9): rip-up in hotspots creates new
		// violations elsewhere.
		regress := 1.0
		if floor > SuccessDRVThreshold && t > opts.Iterations/2 && rng.Float64() < 0.3 {
			regress = 1.15
		}
		drv = (floor + (drv-floor)*rho) * noise * regress
		if drv < 0 {
			drv = 0
		}
		res.DRVs = append(res.DRVs, int(drv))
		res.IterationsRun++
		res.RuntimeProxy += 1 + drv/5000
		isp.SetInt("iter", int64(t))
		isp.SetInt("drvs", int64(drv))
		if opts.IterHook != nil && opts.IterHook(t, res.DRVs) == Stop {
			res.StopIter = t
			isp.EndWith(trace.Stopped)
			break
		}
		isp.End()
	}
	res.Final = res.DRVs[len(res.DRVs)-1]
	res.Success = res.Final < SuccessDRVThreshold
	return res
}

// dieExtent derives the routed die from the placement extent (cached on
// the netlist) plus a 1% halo.
func dieExtent(n *netlist.Netlist) (w, h float64) {
	maxX, maxY := n.PlacedExtent()
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	return maxX * 1.01, maxY * 1.01
}
