package route

import (
	"sync"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
)

// benchPlaced is the shared routing benchmark workload: a large,
// high-locality placed design so most nets fall inside a single region
// of the sharded router.
var benchPlaced = sync.OnceValue(func() *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), netlist.Spec{
		Name: "route-bench", Seed: 1,
		NumComb: 6000, NumFFs: 600, Levels: 12,
		Locality: 0.85, NumPIs: 48, ClockPeriodPs: 1500,
	})
	place.Place(n, place.Options{Seed: 7, Moves: 20 * n.NumCells(), Workers: 8})
	return n
})

func benchmarkRoute(b *testing.B, workers int) {
	n := benchPlaced()
	opts := GlobalOptions{Seed: 7, GridDim: 64, Tiles: 4, Workers: workers}
	var g *GlobalResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = GlobalRoute(n, opts)
	}
	b.StopTimer()
	// QoR metrics for the check.sh gate. The sharded router is
	// worker-invariant, so serial (Workers=1) and sharded must report
	// byte-identical values — including the downstream detail-route DRV
	// series, folded into one order-weighted checksum.
	d := DetailRoute(g, DetailOptions{Seed: 7})
	sum := 0
	for i, v := range d.DRVs {
		sum += v * (i + 1)
	}
	b.ReportMetric(g.WirelengthUm, "wirelength")
	b.ReportMetric(g.OverflowTotal, "overflow")
	b.ReportMetric(float64(sum), "drv_sum")
}

// BenchmarkRouteSerial is the reference: the region-sharded router with
// every region routed by the caller alone — identical tile partition
// and rng streams, zero concurrency.
func BenchmarkRouteSerial(b *testing.B) { benchmarkRoute(b, 1) }

// BenchmarkRouteSharded routes every region concurrently (Workers=0 =
// one goroutine per region).
func BenchmarkRouteSharded(b *testing.B) { benchmarkRoute(b, 0) }
