package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
)

func sameGlobal(a, b *GlobalResult) bool {
	if a.GridDim != b.GridDim || a.Capacity != b.Capacity ||
		a.WirelengthUm != b.WirelengthUm || a.OverflowTotal != b.OverflowTotal ||
		a.OverflowPeak != b.OverflowPeak || a.HotspotFrac != b.HotspotFrac ||
		len(a.Demand) != len(b.Demand) {
		return false
	}
	for i := range a.Demand {
		if a.Demand[i] != b.Demand[i] {
			return false
		}
	}
	return true
}

// TestShardedRouteWorkerInvariant is the acceptance-criteria table
// test: for a fixed tile count the region-sharded router must produce a
// bit-identical GlobalResult — demand map, wirelength, overflow — at
// every worker count, across presets and grid sizes.
func TestShardedRouteWorkerInvariant(t *testing.T) {
	cases := []struct {
		name string
		spec netlist.Spec
		opts GlobalOptions
	}{
		{"tiny/2x2", netlist.Tiny(3), GlobalOptions{Seed: 5, Tiles: 2}},
		{"tiny/dim32", netlist.Tiny(4), GlobalOptions{Seed: 6, GridDim: 32, Tiles: 4}},
		{"artificial/2x2", netlist.Artificial(5), GlobalOptions{Seed: 7, Tiles: 2}},
		{"artificial/4x4", netlist.Artificial(6), GlobalOptions{Seed: 8, GridDim: 40, Tiles: 4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			n := placed(tc.opts.Seed, tc.spec)
			o := tc.opts
			o.Workers = 1
			ref := GlobalRoute(n, o)
			for _, w := range []int{2, 4, 8} {
				o.Workers = w
				got := GlobalRoute(n, o)
				if !sameGlobal(ref, got) {
					t.Fatalf("workers=%d: GlobalResult diverged from workers=1 reference", w)
				}
			}
		})
	}
}

// TestShardedRouteQuality: the sharded net order differs from the
// serial one, so demand maps differ — but the congestion picture must
// stay equivalent (same wirelength, comparable overflow).
func TestShardedRouteQuality(t *testing.T) {
	n := placed(9, netlist.Artificial(9))
	serial := GlobalRoute(n, GlobalOptions{Seed: 9})
	shard := GlobalRoute(n, GlobalOptions{Seed: 9, Tiles: 2})
	// Wirelength is the sum of manhattan net lengths — independent of
	// route order — but the sharded router merges per-tile partial sums,
	// so float association differs by ulps from the serial net-order sum.
	if d := math.Abs(shard.WirelengthUm - serial.WirelengthUm); d > 1e-9*serial.WirelengthUm {
		t.Fatalf("sharded wirelength %v != serial %v (|d|=%g)", shard.WirelengthUm, serial.WirelengthUm, d)
	}
	var serialTotal, shardTotal float64
	for i := range serial.Demand {
		serialTotal += serial.Demand[i]
	}
	for i := range shard.Demand {
		shardTotal += shard.Demand[i]
	}
	if shardTotal != serialTotal {
		t.Fatalf("sharded total demand %v != serial %v (demand must be conserved)", shardTotal, serialTotal)
	}
	if shard.OverflowTotal > serial.OverflowTotal*1.5+1 {
		t.Errorf("sharded overflow %v much worse than serial %v", shard.OverflowTotal, serial.OverflowTotal)
	}
}

// TestShardedRouteRandomizedDifferential fuzzes the worker invariance:
// random spec, grid, tile count — Workers=1 and a random worker count
// must agree bit-for-bit.
func TestShardedRouteRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		spec := netlist.Spec{
			Name: "fuzz", Seed: rng.Int63n(1 << 20),
			NumComb: 80 + rng.Intn(160), NumFFs: 10 + rng.Intn(20),
			Levels: 4 + rng.Intn(6), Locality: 0.4 + 0.5*rng.Float64(),
			NumPIs: 4 + rng.Intn(8), ClockPeriodPs: 1500,
		}
		n := netlist.Generate(cellib.Default14nm(), spec)
		place.Place(n, place.Options{Seed: rng.Int63n(1 << 20), Moves: 20 * n.NumCells()})
		opts := GlobalOptions{
			Seed:    rng.Int63n(1 << 20),
			GridDim: 16 + 8*rng.Intn(4),
			Tiles:   2 + rng.Intn(3),
			Workers: 1,
		}
		ref := GlobalRoute(n, opts)
		opts.Workers = 2 + rng.Intn(7)
		got := GlobalRoute(n, opts)
		if !sameGlobal(ref, got) {
			t.Fatalf("trial %d (spec seed %d, opts %+v): sharded result diverged across worker counts",
				trial, spec.Seed, opts)
		}
	}
}

// TestShardedRouteDeterministic: same seed, same tiles, two fresh calls
// on the same placement — bit-identical results (the router must not
// mutate shared state between calls).
func TestShardedRouteDeterministic(t *testing.T) {
	n := placed(12, netlist.Tiny(12))
	a := GlobalRoute(n, GlobalOptions{Seed: 4, Tiles: 2, Workers: 3})
	b := GlobalRoute(n, GlobalOptions{Seed: 4, Tiles: 2, Workers: 5})
	if !sameGlobal(a, b) {
		t.Fatal("repeated sharded route on the same placement diverged")
	}
}
