package route

import (
	"context"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
)

func placed(seed int64, spec netlist.Spec) *netlist.Netlist {
	n := netlist.Generate(cellib.Default14nm(), spec)
	place.Place(n, place.Options{Seed: seed, Moves: 30 * n.NumCells()})
	return n
}

func TestGlobalRouteBasics(t *testing.T) {
	n := placed(1, netlist.Tiny(1))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	if g.WirelengthUm < 0 {
		t.Fatalf("negative wirelength %v", g.WirelengthUm)
	}
	if g.OverflowTotal < 0 || g.OverflowPeak < 0 || g.HotspotFrac < 0 || g.HotspotFrac > 1 {
		t.Fatalf("bad congestion summary: %+v", g)
	}
	if len(g.Demand) != (g.GridDim-1)*g.GridDim*2 {
		t.Fatalf("demand sized %d for dim %d", len(g.Demand), g.GridDim)
	}
	var total float64
	for _, d := range g.Demand {
		if d < 0 {
			t.Fatal("negative edge demand")
		}
		total += d
	}
	if total == 0 {
		t.Fatal("no demand routed")
	}
}

func TestScarceTracksCauseOverflow(t *testing.T) {
	n := placed(2, netlist.Tiny(2))
	rich := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 200})
	poor := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 1.5})
	if rich.OverflowTotal > 0 {
		t.Errorf("200 tracks/edge should not overflow a tiny design: %v", rich.OverflowTotal)
	}
	if poor.OverflowTotal <= rich.OverflowTotal {
		t.Errorf("scarce tracks should overflow: %v vs %v", poor.OverflowTotal, rich.OverflowTotal)
	}
	if poor.CongestionMargin() >= rich.CongestionMargin() {
		t.Errorf("margin should fall with congestion: %v vs %v", poor.CongestionMargin(), rich.CongestionMargin())
	}
}

func TestDetailRouteSuccessOnComfortableDesign(t *testing.T) {
	n := placed(3, netlist.Tiny(3))
	g := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 120})
	succ := 0
	for seed := int64(0); seed < 10; seed++ {
		r := DetailRoute(g, DetailOptions{Seed: seed})
		if r.Success {
			succ++
		}
		if len(r.DRVs) != r.IterationsRun+1 {
			t.Fatalf("series length %d vs iterations %d", len(r.DRVs), r.IterationsRun)
		}
	}
	if succ < 8 {
		t.Errorf("comfortable design succeeded only %d/10 runs", succ)
	}
}

func TestDetailRouteDoomedOnCongestedDesign(t *testing.T) {
	n := placed(4, netlist.Tiny(4))
	g := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 1.2})
	doomed := 0
	for seed := int64(0); seed < 10; seed++ {
		r := DetailRoute(g, DetailOptions{Seed: seed})
		if !r.Success {
			doomed++
		}
	}
	if doomed < 8 {
		t.Errorf("congested design was doomed only %d/10 runs", doomed)
	}
}

func TestDetailRouteSeriesShape(t *testing.T) {
	// Success runs decay by orders of magnitude (Fig. 9 green curve):
	// the last DRV count should be far below the first.
	n := placed(5, netlist.Tiny(5))
	g := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 120})
	r := DetailRoute(g, DetailOptions{Seed: 1})
	if !r.Success {
		t.Skip("run not successful")
	}
	if r.DRVs[0] < 100 {
		t.Fatalf("initial DRVs %d implausibly low", r.DRVs[0])
	}
	if float64(r.Final) > 0.1*float64(r.DRVs[0]) {
		t.Errorf("successful run should decay >10x: %d -> %d", r.DRVs[0], r.Final)
	}
}

func TestStopAfterTruncates(t *testing.T) {
	n := placed(6, netlist.Tiny(6))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	full := DetailRoute(g, DetailOptions{Seed: 7})
	short := DetailRoute(g, DetailOptions{Seed: 7, StopAfter: 5})
	if short.IterationsRun != 5 {
		t.Fatalf("StopAfter=5 ran %d iterations", short.IterationsRun)
	}
	if short.RuntimeProxy >= full.RuntimeProxy {
		t.Error("early stop should save runtime")
	}
	// Identical prefix: the same seed must give the same trajectory.
	for i := 0; i <= 5; i++ {
		if short.DRVs[i] != full.DRVs[i] {
			t.Fatalf("prefix diverged at %d: %d vs %d", i, short.DRVs[i], full.DRVs[i])
		}
	}
}

func TestEffortSpeedsConvergence(t *testing.T) {
	n := placed(7, netlist.Tiny(7))
	g := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 60})
	lo := DetailRoute(g, DetailOptions{Seed: 3, Effort: 1, Iterations: 8})
	hi := DetailRoute(g, DetailOptions{Seed: 3, Effort: 3, Iterations: 8})
	if hi.Final > lo.Final {
		t.Errorf("higher effort should converge at least as fast: %d vs %d", hi.Final, lo.Final)
	}
}

func TestDetailRouteDeterministic(t *testing.T) {
	n := placed(8, netlist.Tiny(8))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	a := DetailRoute(g, DetailOptions{Seed: 42})
	b := DetailRoute(g, DetailOptions{Seed: 42})
	for i := range a.DRVs {
		if a.DRVs[i] != b.DRVs[i] {
			t.Fatal("same seed gave different DRV series")
		}
	}
}

func TestGlobalRouteAvoidsCongestion(t *testing.T) {
	// With congestion-aware cost the router should spread demand:
	// peak demand must be below what single-minded H-first routing
	// would pile onto one edge. Just check peak/mean is bounded.
	n := placed(9, netlist.PulpinoProxy(9))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	var sum, peak float64
	for _, d := range g.Demand {
		sum += d
		if d > peak {
			peak = d
		}
	}
	mean := sum / float64(len(g.Demand))
	if peak > 40*mean {
		t.Errorf("demand extremely unbalanced: peak %v vs mean %v", peak, mean)
	}
}

func BenchmarkGlobalRoute(b *testing.B) {
	n := placed(1, netlist.PulpinoProxy(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalRoute(n, GlobalOptions{Seed: int64(i)})
	}
}

func TestDetailRouteCtxAbortsMidRun(t *testing.T) {
	n := placed(10, netlist.Tiny(10))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	full := DetailRoute(g, DetailOptions{Seed: 11})

	// Cancel from inside the run: the hook fires after iteration 4, the
	// ctx check aborts before iteration 6 begins (the hook's own run
	// still completes iteration 5's decision point first).
	ctx, cancel := context.WithCancel(context.Background())
	r := DetailRouteCtx(ctx, g, DetailOptions{
		Seed: 11,
		IterHook: func(iter int, drvs []int) IterAction {
			if iter == 4 {
				cancel()
			}
			return Continue
		},
	})
	if !r.Aborted {
		t.Fatal("cancelled run not marked Aborted")
	}
	if r.StopIter != 0 {
		t.Fatalf("abort recorded as live STOP at %d", r.StopIter)
	}
	if r.IterationsRun != 4 {
		t.Fatalf("ran %d iterations after cancel at 4", r.IterationsRun)
	}
	// Well-formed partial: series length, Final, Success all consistent
	// with the iterations that ran, and a bit-identical prefix.
	if len(r.DRVs) != r.IterationsRun+1 {
		t.Fatalf("series length %d vs iterations %d", len(r.DRVs), r.IterationsRun)
	}
	if r.Final != r.DRVs[len(r.DRVs)-1] {
		t.Fatalf("Final %d != last DRV %d", r.Final, r.DRVs[len(r.DRVs)-1])
	}
	if (r.Final < SuccessDRVThreshold) != r.Success {
		t.Fatal("Success inconsistent with Final")
	}
	for i := range r.DRVs {
		if r.DRVs[i] != full.DRVs[i] {
			t.Fatalf("aborted prefix diverged at %d: %d vs %d", i, r.DRVs[i], full.DRVs[i])
		}
	}
	if r.RuntimeProxy >= full.RuntimeProxy {
		t.Error("abort should save runtime")
	}
}

func TestDetailRouteCtxLiveStop(t *testing.T) {
	n := placed(11, netlist.Tiny(11))
	g := GlobalRoute(n, GlobalOptions{Seed: 1})
	full := DetailRoute(g, DetailOptions{Seed: 13})

	r := DetailRouteCtx(context.Background(), g, DetailOptions{
		Seed: 13,
		IterHook: func(iter int, drvs []int) IterAction {
			if iter >= 6 {
				return Stop
			}
			return Continue
		},
	})
	if r.Aborted {
		t.Fatal("live STOP misreported as abort")
	}
	if r.StopIter != 6 || r.IterationsRun != 6 {
		t.Fatalf("StopIter %d, IterationsRun %d, want 6/6", r.StopIter, r.IterationsRun)
	}
	if r.IterationsBudget != full.IterationsBudget {
		t.Fatalf("budget %d vs %d", r.IterationsBudget, full.IterationsBudget)
	}
	for i := range r.DRVs {
		if r.DRVs[i] != full.DRVs[i] {
			t.Fatalf("stopped prefix diverged at %d", i)
		}
	}
}

func TestDetailRouteCtxContinueHookIsBitIdentical(t *testing.T) {
	// A supervisor that always says CONTINUE must not perturb the run.
	n := placed(12, netlist.Tiny(12))
	g := GlobalRoute(n, GlobalOptions{Seed: 1, TracksPerEdge: 2})
	plain := DetailRoute(g, DetailOptions{Seed: 17})
	hooked := DetailRouteCtx(context.Background(), g, DetailOptions{
		Seed:     17,
		IterHook: func(iter int, drvs []int) IterAction { return Continue },
	})
	if len(plain.DRVs) != len(hooked.DRVs) {
		t.Fatalf("series lengths differ: %d vs %d", len(plain.DRVs), len(hooked.DRVs))
	}
	for i := range plain.DRVs {
		if plain.DRVs[i] != hooked.DRVs[i] {
			t.Fatalf("CONTINUE hook changed DRVs at %d", i)
		}
	}
	if plain.Final != hooked.Final || plain.Success != hooked.Success {
		t.Fatal("CONTINUE hook changed outcome")
	}
}
