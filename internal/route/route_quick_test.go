package route

import (
	"testing"
	"testing/quick"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/place"
)

// TestDetailRouteInvariantsQuick property-checks the convergence
// simulator across arbitrary seeds and supplies: series are non-negative,
// lengths match the iteration budget, and the success flag agrees with
// the threshold.
func TestDetailRouteInvariantsQuick(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(1))
	place.Place(n, place.Options{Seed: 1, Moves: 3000})
	f := func(seed int64, supplyRaw uint8) bool {
		supply := 1 + float64(supplyRaw)/2 // 1..128 tracks
		g := GlobalRoute(n, GlobalOptions{Seed: seed, TracksPerEdge: supply})
		r := DetailRoute(g, DetailOptions{Seed: seed})
		if len(r.DRVs) != r.IterationsRun+1 {
			return false
		}
		for _, d := range r.DRVs {
			if d < 0 {
				return false
			}
		}
		if r.Final != r.DRVs[len(r.DRVs)-1] {
			return false
		}
		return r.Success == (r.Final < SuccessDRVThreshold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGlobalRouteDemandConservedQuick checks that total routed demand is
// independent of capacity (the router reroutes, never drops nets).
func TestGlobalRouteDemandConservedQuick(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(2))
	place.Place(n, place.Options{Seed: 2, Moves: 3000})
	ref := GlobalRoute(n, GlobalOptions{Seed: 7, TracksPerEdge: 1000})
	refWL := ref.WirelengthUm
	f := func(supplyRaw uint8) bool {
		supply := 1 + float64(supplyRaw)
		g := GlobalRoute(n, GlobalOptions{Seed: 7, TracksPerEdge: supply})
		// Same nets routed: wirelength within the L-shape equivalence
		// (both Ls have identical length, so WL must match exactly).
		return g.WirelengthUm == refWL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
