// Package doom is the live doomed-run runtime: it wires the MDP
// strategy card of Fig. 10 into the detailed router's iteration hook so
// STOP decisions are acted on while the tool runs — reclaiming the
// license and the remaining rip-up iterations — instead of being graded
// against finished logfiles as in the post-hoc Table 1 evaluation.
//
// A Supervisor is safe for concurrent use across a whole campaign: it
// keeps one consecutive-STOP streak per run (the paper's hysteresis
// against stopping successful runs that merely pass through bad card
// states while decaying) and mirrors its decision counters into the
// process-wide metrics registry, so a METRICS /stats page shows live
// stops and reclaimed iterations as the campaign executes.
package doom

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/mdp"
	"repro/internal/metrics"
	"repro/internal/route"
)

// Supervisor applies an mdp.Card between rip-up passes. It implements
// flow.RouteSupervisor and flow.Observer, so passing one to flow.RunCtx
// both forwards step records (to Next, if set) and supervises routing.
type Supervisor struct {
	// Card is the trained GO/STOP strategy card.
	Card *mdp.Card
	// Consecutive is the number of consecutive STOP verdicts required
	// before the run is actually killed (the Table 1 knob; default 2).
	Consecutive int
	// Budget is the router iteration budget, used only for the
	// saved-iteration counter (0 disables that counter).
	Budget int
	// Next receives step records forwarded by OnStep (may be nil).
	Next flow.Observer

	mu     sync.Mutex
	streak map[string]int

	decisions atomic.Int64
	stops     atomic.Int64
	saved     atomic.Int64
}

// New creates a supervisor for a trained card requiring k consecutive
// STOPs (k < 1 is clamped to the default of 2).
func New(card *mdp.Card, k int) *Supervisor {
	if k < 1 {
		k = 2
	}
	return &Supervisor{Card: card, Consecutive: k, streak: map[string]int{}}
}

// RouteIter implements flow.RouteSupervisor, keying the streak by
// (design, run seed).
func (s *Supervisor) RouteIter(design string, runSeed int64, iter int, drvs []int) route.IterAction {
	return s.decide(fmt.Sprintf("%s\x00%d", design, runSeed), iter, drvs)
}

// Hook returns a route.IterHook bound to one run, for callers that
// drive route.DetailRouteCtx directly (corpus generation, benchmarks).
// runKey must be unique per concurrent run.
func (s *Supervisor) Hook(runKey string) route.IterHook {
	return func(iter int, drvs []int) route.IterAction {
		return s.decide(runKey, iter, drvs)
	}
}

func (s *Supervisor) decide(key string, iter int, drvs []int) route.IterAction {
	if s.Card == nil || len(drvs) < 2 {
		return route.Continue
	}
	s.decisions.Add(1)
	metrics.Add("doom.live.decisions", 1)
	verdict := s.Card.Decide(drvs[len(drvs)-2], drvs[len(drvs)-1])

	s.mu.Lock()
	defer s.mu.Unlock()
	if verdict != mdp.STOP {
		delete(s.streak, key)
		return route.Continue
	}
	s.streak[key]++
	if s.streak[key] < s.Consecutive {
		return route.Continue
	}
	delete(s.streak, key) // run is over; free the entry
	s.stops.Add(1)
	metrics.Add("doom.live.stops", 1)
	if s.Budget > iter {
		saved := int64(s.Budget - iter)
		s.saved.Add(saved)
		metrics.Add("doom.live.saved_iters", saved)
	}
	return route.Stop
}

// OnStep implements flow.Observer by forwarding to Next.
func (s *Supervisor) OnStep(rec flow.StepRecord) {
	if s.Next != nil {
		s.Next.OnStep(rec)
	}
}

// Stats reports the supervisor's lifetime counters: card consultations,
// live STOPs issued, and router iterations reclaimed by those STOPs.
func (s *Supervisor) Stats() (decisions, stops, savedIters int64) {
	return s.decisions.Load(), s.stops.Load(), s.saved.Load()
}
