package doom

import (
	"testing"

	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/route"
)

// trainingCorpus builds a small mixed corpus the card can learn from.
func trainingCorpus(t *testing.T) []logfile.Run {
	t.Helper()
	return logfile.Generate(logfile.CorpusSpec{
		Name: "artificial", Runs: 80, Seed: 1, Designs: 2, Workers: 2,
	})
}

func TestSupervisorStopsDoomedSparesSuccessful(t *testing.T) {
	runs := trainingCorpus(t)
	card := mdp.BuildCard(runs, mdp.CardConfig{})
	sup := New(card, 2)
	sup.Budget = 20

	// Replay each run through a fresh per-run hook; the live decision
	// must agree with the post-hoc Outcome at the same k.
	stoppedDoomed, doomed, stoppedSucc, succ := 0, 0, 0, 0
	for i, r := range runs {
		hook := sup.Hook(r.Corpus + string(rune(i)))
		stopAt := 0
		for iter := 1; iter < len(r.DRVs); iter++ {
			if hook(iter, r.DRVs[:iter+1]) == route.Stop {
				stopAt = iter
				break
			}
		}
		want := card.Outcome(r, 2)
		if (stopAt == 0) != (want < 0) || (stopAt > 0 && stopAt != want) {
			t.Fatalf("run %d: live stop at %d, post-hoc Outcome %d", i, stopAt, want)
		}
		if r.Success {
			succ++
			if stopAt > 0 {
				stoppedSucc++
			}
		} else {
			doomed++
			if stopAt > 0 {
				stoppedDoomed++
			}
		}
	}
	if doomed == 0 || succ == 0 {
		t.Fatalf("degenerate corpus: %d doomed, %d successful", doomed, succ)
	}
	if stoppedDoomed < doomed*5/10 {
		t.Errorf("card stopped only %d/%d doomed runs live", stoppedDoomed, doomed)
	}
	if stoppedSucc > succ/2 {
		t.Errorf("card stopped %d/%d successful runs live", stoppedSucc, succ)
	}
	decisions, stops, saved := sup.Stats()
	if decisions == 0 {
		t.Fatal("no card consultations counted")
	}
	if int(stops) != stoppedDoomed+stoppedSucc {
		t.Fatalf("stops counter %d, observed %d", stops, stoppedDoomed+stoppedSucc)
	}
	if stops > 0 && saved == 0 {
		t.Error("stops happened but no saved iterations counted")
	}
}

func TestSupervisorStreakResetOnGo(t *testing.T) {
	// A hand-built card that STOPs everywhere makes streak mechanics
	// observable: with Consecutive=3 the third verdict stops the run.
	cfg := mdp.CardConfig{}
	card := mdp.BuildCard(nil, cfg)
	for vb := range card.Action {
		for ds := range card.Action[vb] {
			card.Action[vb][ds] = mdp.STOP
		}
	}
	sup := New(card, 3)
	hook := sup.Hook("run-a")
	drvs := []int{5000, 4900, 4800, 4700, 4600}
	if hook(1, drvs[:2]) != route.Continue {
		t.Fatal("first STOP verdict must not kill the run")
	}
	if hook(2, drvs[:3]) != route.Continue {
		t.Fatal("second STOP verdict must not kill the run")
	}
	if hook(3, drvs[:4]) != route.Stop {
		t.Fatal("third consecutive STOP must kill the run")
	}
	// Independent runs do not share streaks.
	other := sup.Hook("run-b")
	if other(1, drvs[:2]) != route.Continue {
		t.Fatal("fresh run inherited another run's streak")
	}
}
