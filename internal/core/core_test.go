package core

import (
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/metrics"
	"repro/internal/netlist"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestRobotSucceedsOnEasyTarget(t *testing.T) {
	r := Robot{Design: tiny(1), Base: flow.Options{TargetFreqGHz: 0.25, Seed: 1}}
	out := r.Execute()
	if !out.Succeeded {
		t.Fatalf("robot failed an easy target after %d attempts", len(out.Attempts))
	}
	if out.Final == nil || out.RuntimeProxy <= 0 {
		t.Fatal("missing result accounting")
	}
}

func TestRobotBacksOffOnHardTarget(t *testing.T) {
	r := Robot{Design: tiny(2), Base: flow.Options{TargetFreqGHz: 40, Seed: 1}, MaxAttempts: 5}
	out := r.Execute()
	if len(out.Attempts) < 2 {
		t.Fatalf("robot gave up after %d attempts", len(out.Attempts))
	}
	// Targets must be non-increasing across attempts.
	prev := out.Attempts[0].Options.TargetFreqGHz
	for _, a := range out.Attempts[1:] {
		if a.Options.TargetFreqGHz > prev+1e-9 {
			t.Fatal("robot raised the target after a failure")
		}
		prev = a.Options.TargetFreqGHz
	}
	// Every non-final attempt carries a reason.
	for i, a := range out.Attempts {
		if i < len(out.Attempts)-1 && a.Reason == "" && !out.Succeeded {
			t.Errorf("attempt %d missing recovery reason", i)
		}
	}
}

func TestFreqArmsEnvironment(t *testing.T) {
	env := &FreqArms{
		Design: tiny(3),
		Freqs:  []float64{0.2, 0.35},
		Base:   flow.Options{Seed: 1},
	}
	rng := rand.New(rand.NewSource(1))
	r := env.Reward(0, rng)
	if r != 0 && r != 1 {
		t.Fatalf("binary reward expected, got %v", r)
	}
	if len(env.Outcomes) != 1 {
		t.Fatal("outcome not recorded")
	}
	if env.OptimalMean() != 1 {
		t.Fatal("uncalibrated optimal should be 1")
	}
	env.Calibrate(2, 2)
	if env.OptimalMean() > 1 || env.OptimalMean() <= 0 {
		t.Fatalf("calibrated optimal %v", env.OptimalMean())
	}
}

func TestSearchFindsHighFeasibleFreq(t *testing.T) {
	design := tiny(4)
	res, err := Search(design, flow.Options{Seed: 1}, flow.Constraints{}, SearchConfig{
		Freqs:      []float64{0.15, 0.25, 0.35, 25, 40},
		Iterations: 8,
		Licenses:   3,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns != 24 {
		t.Fatalf("ran %d flows", res.TotalRuns)
	}
	if res.BestFreqGHz < 0.15 {
		t.Fatalf("no feasible frequency found")
	}
	if res.BestFreqGHz >= 25 {
		t.Fatalf("impossible frequency %v reported feasible", res.BestFreqGHz)
	}
	// Best-so-far is monotone.
	for i := 1; i < len(res.BestFreqSoFar); i++ {
		if res.BestFreqSoFar[i] < res.BestFreqSoFar[i-1] {
			t.Fatal("best-so-far regressed")
		}
	}
	if res.PeakLicenses > 3 {
		t.Fatalf("license pool violated: peak %d", res.PeakLicenses)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(tiny(5), flow.Options{}, flow.Constraints{}, SearchConfig{}); err == nil {
		t.Error("no arms should error")
	}
	if _, err := Search(tiny(5), flow.Options{}, flow.Constraints{}, SearchConfig{
		Freqs: []float64{0.3}, Algorithm: "nope",
	}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestNewAlgorithmNames(t *testing.T) {
	for _, name := range []string{"", "thompson", "softmax", "eps-greedy", "ucb1"} {
		alg, err := NewAlgorithm(name, 3)
		if err != nil || alg == nil {
			t.Errorf("algorithm %q: %v", name, err)
		}
	}
}

func trainedCard(t *testing.T) *mdp.Card {
	t.Helper()
	train := logfile.Generate(logfile.CorpusSpec{Name: "artificial", Runs: 150, Seed: 3, Designs: 2})
	return mdp.BuildCard(train, mdp.CardConfig{})
}

func TestPrunedRunner(t *testing.T) {
	card := trainedCard(t)
	runner := PrunedRunner{Card: card, ConsecutiveStops: 3}
	design := tiny(6)
	// Force congestion by starving routing tracks so runs are doomed.
	pr := runner.Run(design, flow.Options{TargetFreqGHz: 0.3, Seed: 1, TracksPerEdge: 1.2})
	if pr.Result == nil {
		t.Fatal("no result")
	}
	if pr.StoppedAt >= 0 {
		if pr.SavedRuntime <= 0 {
			t.Error("stop without savings")
		}
		if pr.EffectiveRuntime >= pr.Result.RuntimeProxy {
			t.Error("effective runtime not reduced")
		}
	}
}

func TestStudyPruningSavesOnDoomedRuns(t *testing.T) {
	card := trainedCard(t)
	runner := PrunedRunner{Card: card, ConsecutiveStops: 3}
	design := tiny(7)
	st := StudyPruning(design, flow.Options{TargetFreqGHz: 0.3, Seed: 10, TracksPerEdge: 1.2}, runner, 6)
	if st.Runs != 6 {
		t.Fatalf("%d runs", st.Runs)
	}
	if st.DoomedRuns == 0 {
		t.Skip("no doomed runs at this congestion level")
	}
	if st.DoomedStopped == 0 {
		t.Error("monitor stopped none of the doomed runs")
	}
	if st.SavedRuntimePct <= 0 {
		t.Error("no schedule saved")
	}
	if st.RuntimePruned > st.RuntimeUnpruned {
		t.Error("pruned runtime exceeds unpruned")
	}
}

func TestAgentAdapts(t *testing.T) {
	store := metrics.NewStore()
	agent := Agent{Design: tiny(8), Store: store, Start: flow.Options{TargetFreqGHz: 0.9, Seed: 1}}
	rounds := agent.RunRounds(4)
	if len(rounds) != 4 {
		t.Fatalf("%d rounds", len(rounds))
	}
	if store.Len() != 4*6 {
		t.Fatalf("store holds %d records, want 24", store.Len())
	}
	// If the first round failed, the agent must have changed target.
	if !rounds[0].Met && rounds[1].TargetFreqGHz >= rounds[0].TargetFreqGHz {
		t.Error("agent did not back off after a failed round")
	}
}

func TestMarginModel(t *testing.T) {
	today := MarginModel{Sigma: 0.06, Bias: 0.01}
	future := MarginModel{Sigma: 0.015, Bias: 0.005}
	// Success probability rises with margin.
	if today.SuccessProb(0.02) >= today.SuccessProb(0.2) {
		t.Error("more margin must mean more success")
	}
	// Expected iterations fall with margin.
	if today.ExpectedIterations(0.02) <= today.ExpectedIterations(0.2) {
		t.Error("more margin must mean fewer iterations")
	}
	// The Fig. 4 punchline: a predictable (low-noise) future tool
	// needs a smaller margin for the same schedule, so achieved
	// quality improves.
	budget := 2.0 // at most 2 expected passes
	mToday := today.OptimalMargin(budget)
	mFuture := future.OptimalMargin(budget)
	if mFuture >= mToday {
		t.Errorf("future margin %v should be below today's %v", mFuture, mToday)
	}
	if future.AchievedQuality(mFuture) <= today.AchievedQuality(mToday) {
		t.Error("predictability should buy quality")
	}
}

func TestTrajectoryTree(t *testing.T) {
	steps := DefaultFlowTree()
	single := Trajectories(steps)
	if single < 1e6 {
		t.Errorf("tree size %v implausibly small", single)
	}
	iter := TrajectoriesWithIteration(steps, 3)
	if iter <= single {
		t.Error("iteration must multiply trajectories")
	}
	f := ExploredFraction(steps, 200)
	if f <= 0 || f > 1e-3 {
		t.Errorf("200 runs explore fraction %v; should be tiny", f)
	}
	if ExploredFraction(steps, 1e300) != 1 {
		t.Error("fraction must clamp at 1")
	}
}
