package core

import (
	"math"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/netlist"
)

// Agent is the Stage-4 adaptive flow: every run is instrumented into a
// METRICS store, and the data miner's predictions choose the next run's
// options — the closed "measure, to improve" loop of Sec. 4 with no
// human intervention.
type Agent struct {
	Design *netlist.Netlist
	Store  *metrics.Store
	Start  flow.Options
}

// AgentRound is one adaptation step.
type AgentRound struct {
	Round         int
	Options       flow.Options
	Met           bool
	AreaUm2       float64
	WNSPs         float64
	TargetFreqGHz float64
}

// RunRounds executes the adapt-run-record loop for the given number of
// rounds and returns the trajectory. The store accumulates records
// across rounds (and across agents sharing it).
func (a Agent) RunRounds(rounds int) []AgentRound {
	if a.Store == nil {
		a.Store = metrics.NewStore()
	}
	miner := metrics.Miner{Store: a.Store}
	collector := flow.ObserverFunc(func(rec flow.StepRecord) {
		a.Store.Add(metrics.FromStep(rec))
	})
	opts := a.Start
	var out []AgentRound
	for r := 0; r < rounds; r++ {
		opts.Seed = a.Start.Seed + int64(r)*104729
		res := flow.RunObserved(a.Design, opts, collector)
		out = append(out, AgentRound{
			Round: r, Options: opts, Met: res.Met,
			AreaUm2: res.AreaUm2, WNSPs: res.WNSPs,
			TargetFreqGHz: opts.TargetFreqGHz,
		})
		opts = miner.Suggest(a.Design.Name, opts)
	}
	return out
}

// MarginModel is the quantitative version of the paper's Fig. 4
// coevolution loop: tool noise forces designers to guardband ("aim
// low"); guardbands cost quality; unpredictability costs iterations.
//
// A run aimed at (1-margin)*fmax succeeds when the run's realized
// capability exceeds the target; realized capability is Gaussian around
// (1-bias)*fmax with relative noise sigma (measured by internal/noise).
type MarginModel struct {
	Sigma float64 // relative run-to-run noise (e.g. 0.04)
	Bias  float64 // systematic shortfall of the tool (e.g. 0.01)
}

// SuccessProb returns the probability one run meets the margined target.
func (m MarginModel) SuccessProb(margin float64) float64 {
	g := ml.Gaussian{Mu: 1 - m.Bias, Sigma: math.Max(m.Sigma, 1e-9)}
	return 1 - g.CDF(1-margin)
}

// ExpectedIterations returns the expected number of flow iterations
// until success at the given margin (geometric).
func (m MarginModel) ExpectedIterations(margin float64) float64 {
	p := m.SuccessProb(margin)
	if p <= 1e-12 {
		return math.Inf(1)
	}
	return 1 / p
}

// AchievedQuality is the frequency fraction locked in by the margin.
func (MarginModel) AchievedQuality(margin float64) float64 { return 1 - margin }

// OptimalMargin returns the smallest margin whose expected iteration
// count fits the schedule budget — the margin a rational designer picks.
func (m MarginModel) OptimalMargin(iterBudget float64) float64 {
	lo, hi := 0.0, 0.9
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.ExpectedIterations(mid) > iterBudget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// StepSpec is one flow step in the Fig. 5(a) option tree.
type StepSpec struct {
	Name    string
	Options int // distinct settings a human/robot must choose among
}

// DefaultFlowTree returns a representative option tree: each step of the
// RTL-to-GDSII flow with an order-of-magnitude option count. The real
// number for a modern P&R tool is "well over ten thousand
// command-option combinations" in one step alone; these are scaled to
// keep the arithmetic legible.
func DefaultFlowTree() []StepSpec {
	return []StepSpec{
		{"constraints", 6},
		{"floorplan", 8},
		{"synthesis", 10},
		{"placement", 12},
		{"cts", 6},
		{"routing", 8},
		{"signoff", 4},
	}
}

// Trajectories returns the number of single-pass flow trajectories in
// the tree (product of option counts).
func Trajectories(steps []StepSpec) float64 {
	t := 1.0
	for _, s := range steps {
		t *= float64(s.Options)
	}
	return t
}

// TrajectoriesWithIteration accounts for loops: a flow allowed up to
// maxIter passes explores sum_{k=1..maxIter} T^k trajectories.
func TrajectoriesWithIteration(steps []StepSpec, maxIter int) float64 {
	t := Trajectories(steps)
	total := 0.0
	pow := 1.0
	for k := 1; k <= maxIter; k++ {
		pow *= t
		total += pow
	}
	return total
}

// ExploredFraction returns how much of the single-pass tree a search
// budget covers — the quantitative futility of unguided search that
// motivates bandits and pruning.
func ExploredFraction(steps []StepSpec, budgetRuns float64) float64 {
	t := Trajectories(steps)
	if t <= 0 {
		return 0
	}
	f := budgetRuns / t
	if f > 1 {
		return 1
	}
	return f
}
