package core

import (
	"math/rand"

	"repro/internal/flow"
	"repro/internal/netlist"
)

// The paper's fourth stage of ML insertion "must cover considerable
// remaining ground — from reinforcement learning, to 'intelligence' in
// tools". QAgent is that stage's minimal concrete instance: a tabular
// Q-learning agent that tunes the flow's target frequency from run
// feedback, learning the back-off/push-up policy the Stage-1 robot had
// hard-coded.

// qState discretizes a flow outcome.
type qState int

const (
	qMetSlack  qState = iota // met with >5% period slack
	qMetTight                // met, tight
	qMissSmall               // timing miss < 10% of period
	qMissBig                 // timing miss >= 10%
	qRouteFail               // routing failed
	numQStates
)

// qAction adjusts the target frequency.
type qAction int

const (
	qDown8 qAction = iota
	qDown3
	qHold
	qUp3
	qUp8
	numQActions
)

var qActionFactor = [numQActions]float64{0.92, 0.97, 1.0, 1.03, 1.08}

// QAgent is a tabular Q-learning flow tuner.
type QAgent struct {
	Alpha   float64 // learning rate (default 0.3)
	Gamma   float64 // discount (default 0.9)
	Epsilon float64 // exploration (default 0.2, decays per episode)

	Q [numQStates][numQActions]float64
}

// NewQAgent creates an agent with default hyperparameters. Q values
// start optimistic (above any reachable return) so every action gets
// tried systematically — with zero initialization the first rewarded
// action would lock in before alternatives were explored.
func NewQAgent() *QAgent {
	a := &QAgent{Alpha: 0.4, Gamma: 0.5, Epsilon: 0.2}
	for s := range a.Q {
		for act := range a.Q[s] {
			a.Q[s][act] = 4
		}
	}
	return a
}

// classify maps a flow result to a state.
func classify(res *flow.Result) qState {
	if !res.RouteOK {
		return qRouteFail
	}
	period := 1000 / res.Options.TargetFreqGHz
	switch {
	case res.WNSPs >= 0.05*period:
		return qMetSlack
	case res.WNSPs >= 0:
		return qMetTight
	case res.WNSPs > -0.1*period:
		return qMissSmall
	default:
		return qMissBig
	}
}

// reward scores an outcome: achieved frequency when met (normalized by
// refFreq), a penalty otherwise.
func reward(res *flow.Result, refFreq float64) float64 {
	if res.Met {
		return res.Options.TargetFreqGHz / refFreq
	}
	return -0.25
}

// EpisodeStats summarizes one training episode.
type EpisodeStats struct {
	Episode     int
	MeanReward  float64
	MetFraction float64
	FinalTarget float64
}

// Train runs Q-learning episodes. Each episode starts from the given
// options and performs stepsPer flow runs, adjusting the target by the
// chosen action after every run. Epsilon decays across episodes.
func (a *QAgent) Train(design *netlist.Netlist, start flow.Options, episodes, stepsPer int, seed int64) []EpisodeStats {
	if episodes <= 0 {
		episodes = 8
	}
	if stepsPer <= 0 {
		stepsPer = 6
	}
	rng := rand.New(rand.NewSource(seed))
	refFreq := start.TargetFreqGHz
	if refFreq <= 0 {
		refFreq = 0.5
	}
	eps := a.Epsilon
	var out []EpisodeStats
	for ep := 0; ep < episodes; ep++ {
		opts := start
		res := flow.Run(design, opts)
		state := classify(res)
		var total float64
		met := 0
		for step := 0; step < stepsPer; step++ {
			action := a.selectAction(state, eps, rng)
			opts.TargetFreqGHz *= qActionFactor[action]
			opts.Seed = seed + int64(ep*1000+step)
			res = flow.Run(design, opts)
			next := classify(res)
			r := reward(res, refFreq)
			total += r
			if res.Met {
				met++
			}
			// Q-learning update.
			best := a.Q[next][0]
			for _, q := range a.Q[next][1:] {
				if q > best {
					best = q
				}
			}
			a.Q[state][action] += a.Alpha * (r + a.Gamma*best - a.Q[state][action])
			state = next
		}
		out = append(out, EpisodeStats{
			Episode:     ep,
			MeanReward:  total / float64(stepsPer),
			MetFraction: float64(met) / float64(stepsPer),
			FinalTarget: opts.TargetFreqGHz,
		})
		eps *= 0.85
	}
	return out
}

func (a *QAgent) selectAction(s qState, eps float64, rng *rand.Rand) qAction {
	if rng.Float64() < eps {
		return qAction(rng.Intn(int(numQActions)))
	}
	best, bestQ := qAction(0), a.Q[s][0]
	for act := qAction(1); act < numQActions; act++ {
		if a.Q[s][act] > bestQ {
			best, bestQ = act, a.Q[s][act]
		}
	}
	return best
}

// Policy returns the greedy action name per state, for inspection.
func (a *QAgent) Policy() map[string]string {
	stateNames := [numQStates]string{"met-slack", "met-tight", "miss-small", "miss-big", "route-fail"}
	actionNames := [numQActions]string{"down-8%", "down-3%", "hold", "up-3%", "up-8%"}
	out := make(map[string]string, numQStates)
	for s := qState(0); s < numQStates; s++ {
		best, bestQ := 0, a.Q[s][0]
		for act := 1; act < int(numQActions); act++ {
			if a.Q[s][act] > bestQ {
				best, bestQ = act, a.Q[s][act]
			}
		}
		out[stateNames[s]] = actionNames[best]
	}
	return out
}
