// Package core operationalizes the paper's roadmap: the four stages of
// ML insertion into IC implementation (Fig. 5(b)) built on top of every
// substrate in this repository.
//
//	Stage 1 — mechanize/automate: Robot, a 24/7 "robot engineer" that
//	  drives the SP&R flow to completion with expert-system retries.
//	Stage 2 — orchestration of search: Search, N concurrent robots
//	  sampling the flow-option tree under a license pool, steered by a
//	  multi-armed bandit (the Fig. 7 methodology).
//	Stage 3 — pruning via predictors: PrunedRunner, flow runs
//	  supervised by the doomed-run MDP strategy card (Figs. 9-10).
//	Stage 4 — learning loop: Agent, a METRICS-connected adaptive flow
//	  that feeds mined predictions back into its own options.
//
// The package also models the flow-option trajectory tree of Fig. 5(a)
// and the margin/predictability feedback loop of Fig. 4.
package core

import (
	"math/rand"

	"repro/internal/flow"
	"repro/internal/netlist"
)

// Robot is the Stage-1 robot engineer: it executes a flow target to
// completion without a human, applying the trial-and-error recovery
// rules an expert would (back off frequency on timing failure, add
// routing effort and whitespace on congestion failure).
type Robot struct {
	Design      *netlist.Netlist
	Base        flow.Options
	Constraints flow.Constraints
	MaxAttempts int // default 6
}

// Attempt is one flow execution the robot made.
type Attempt struct {
	Options flow.Options
	Result  *flow.Result
	Reason  string // why the next attempt was changed ("" if final)
}

// RobotResult is the robot's overall outcome.
type RobotResult struct {
	Succeeded    bool
	Final        *flow.Result
	Attempts     []Attempt
	RuntimeProxy float64
}

// Execute runs the robot until success or the attempt budget expires.
func (r Robot) Execute() RobotResult {
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 6
	}
	opts := r.Base
	var out RobotResult
	for attempt := 0; attempt < maxAttempts; attempt++ {
		opts.Seed = r.Base.Seed + int64(attempt)*7919
		res := flow.Run(r.Design, opts)
		out.RuntimeProxy += res.RuntimeProxy
		a := Attempt{Options: opts, Result: res}
		if r.Constraints.Satisfied(res) {
			out.Attempts = append(out.Attempts, a)
			out.Succeeded = true
			out.Final = res
			return out
		}
		// Expert-system recovery rules.
		switch {
		case !res.RouteOK && res.Global.OverflowTotal > 0:
			a.Reason = "congestion: +route effort, -utilization"
			if opts.RouteEffort < 3 {
				opts.RouteEffort++
			}
			if opts.Utilization == 0 {
				opts.Utilization = 0.55
			} else if opts.Utilization > 0.4 {
				opts.Utilization -= 0.05
			}
		case !res.TimingMet:
			// Back off toward the measured capability: signoff
			// reported the achievable frequency, so aim just under
			// it rather than creeping down 5% at a time.
			a.Reason = "timing: retarget below measured fmax, +synth effort"
			next := res.Options.TargetFreqGHz * 0.95
			if res.MaxFreqGHz > 0 && res.MaxFreqGHz*0.97 < next {
				next = res.MaxFreqGHz * 0.97
			}
			opts.TargetFreqGHz = next
			if opts.SynthEffort < 3 {
				opts.SynthEffort++
			}
		default:
			a.Reason = "constraints: -3% target"
			opts.TargetFreqGHz = res.Options.TargetFreqGHz * 0.97
		}
		out.Attempts = append(out.Attempts, a)
		out.Final = res
	}
	return out
}

// FreqArms is the bandit environment of the Fig. 7 experiment: arms are
// target frequencies for the SP&R flow on a fixed design; the reward of
// a pull is success under the QOR constraint box, optionally weighted by
// the frequency achieved (so higher feasible targets earn more).
type FreqArms struct {
	Design      *netlist.Netlist
	Freqs       []float64
	Base        flow.Options
	Constraints flow.Constraints
	// FreqWeighted scales success rewards by arm frequency relative to
	// the fastest arm, making "highest feasible frequency" the optimum.
	FreqWeighted bool

	// estOptimal is set by Calibrate; OptimalMean returns 1 until then.
	estOptimal float64
	// Outcomes collects every flow result for post-analysis (the dots
	// of Fig. 7). Not safe for concurrent Reward calls.
	Outcomes []ArmOutcome
}

// ArmOutcome records one sampled tool run.
type ArmOutcome struct {
	Arm       int
	FreqGHz   float64
	Satisfied bool
	AreaUm2   float64
	WNSPs     float64
	Runtime   float64
}

// NumArms implements mab.Environment.
func (e *FreqArms) NumArms() int { return len(e.Freqs) }

// Reward implements mab.Environment: runs the flow at the arm's target
// with a seed drawn from rng.
func (e *FreqArms) Reward(arm int, rng *rand.Rand) float64 {
	opts := e.Base
	opts.TargetFreqGHz = e.Freqs[arm]
	opts.Seed = rng.Int63()
	res := flow.Run(e.Design, opts)
	ok := e.Constraints.Satisfied(res)
	e.Outcomes = append(e.Outcomes, ArmOutcome{
		Arm: arm, FreqGHz: e.Freqs[arm], Satisfied: ok,
		AreaUm2: res.AreaUm2, WNSPs: res.WNSPs, Runtime: res.RuntimeProxy,
	})
	if !ok {
		return 0
	}
	if e.FreqWeighted {
		max := e.Freqs[0]
		for _, f := range e.Freqs {
			if f > max {
				max = f
			}
		}
		return e.Freqs[arm] / max
	}
	return 1
}

// OptimalMean implements mab.Environment. Before Calibrate it returns 1
// (an upper bound), so regret numbers are pessimistic but comparable
// across algorithms.
func (e *FreqArms) OptimalMean() float64 {
	if e.estOptimal > 0 {
		return e.estOptimal
	}
	return 1
}

// Calibrate estimates per-arm expected rewards with `seeds` probe runs
// per arm and records the best mean for regret accounting. Expensive:
// runs len(Freqs)*seeds flows.
func (e *FreqArms) Calibrate(seeds int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, len(e.Freqs))
	for arm := range e.Freqs {
		var sum float64
		for s := 0; s < seeds; s++ {
			sum += e.Reward(arm, rng)
		}
		means[arm] = sum / float64(seeds)
		if means[arm] > e.estOptimal {
			e.estOptimal = means[arm]
		}
	}
	return means
}
