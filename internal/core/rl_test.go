package core

import (
	"testing"

	"repro/internal/flow"
)

func TestQAgentLearns(t *testing.T) {
	design := tiny(20)
	agent := NewQAgent()
	// Start well below capability so pushing up is the right policy.
	stats := agent.Train(design, flow.Options{TargetFreqGHz: 0.4, Seed: 1}, 10, 6, 1)
	if len(stats) != 10 {
		t.Fatalf("%d episodes", len(stats))
	}
	// Learning signal: mean reward of the last third should beat the
	// first third (the agent discovers it can raise the target).
	third := len(stats) / 3
	var early, late float64
	for i := 0; i < third; i++ {
		early += stats[i].MeanReward
	}
	for i := len(stats) - third; i < len(stats); i++ {
		late += stats[i].MeanReward
	}
	if late < early {
		t.Errorf("no learning: early reward %v vs late %v", early/float64(third), late/float64(third))
	}
}

func TestQAgentPolicyShape(t *testing.T) {
	design := tiny(21)
	agent := NewQAgent()
	agent.Train(design, flow.Options{TargetFreqGHz: 0.5, Seed: 2}, 12, 6, 2)
	policy := agent.Policy()
	if len(policy) != int(numQStates) {
		t.Fatalf("policy covers %d states", len(policy))
	}
	// A big miss should never be answered by pushing the target up
	// once the agent has trained (it may be untrained if never
	// visited; only check when the Q row is non-zero).
	var visited bool
	for a := qAction(0); a < numQActions; a++ {
		if agent.Q[qMissBig][a] != 0 {
			visited = true
		}
	}
	if visited {
		if act := policy["miss-big"]; act == "up-3%" || act == "up-8%" {
			t.Errorf("trained agent raises target on big miss: %s", act)
		}
	}
}

func TestClassify(t *testing.T) {
	mk := func(wns float64, routeOK bool, freq float64) *flow.Result {
		return &flow.Result{
			WNSPs:   wns,
			RouteOK: routeOK,
			Met:     routeOK && wns >= 0,
			Options: flow.Options{TargetFreqGHz: freq},
		}
	}
	if classify(mk(500, true, 0.5)) != qMetSlack { // period 2000, 25% slack
		t.Error("slack state wrong")
	}
	if classify(mk(10, true, 0.5)) != qMetTight {
		t.Error("tight state wrong")
	}
	if classify(mk(-50, true, 0.5)) != qMissSmall {
		t.Error("small miss wrong")
	}
	if classify(mk(-500, true, 0.5)) != qMissBig {
		t.Error("big miss wrong")
	}
	if classify(mk(100, false, 0.5)) != qRouteFail {
		t.Error("route fail wrong")
	}
}

func TestRewardShape(t *testing.T) {
	met := &flow.Result{Met: true, Options: flow.Options{TargetFreqGHz: 1.0}}
	if r := reward(met, 0.5); r != 2.0 {
		t.Errorf("met reward %v", r)
	}
	fail := &flow.Result{Met: false, Options: flow.Options{TargetFreqGHz: 1.0}}
	if r := reward(fail, 0.5); r >= 0 {
		t.Errorf("failure reward %v should be negative", r)
	}
}
