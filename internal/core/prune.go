package core

import (
	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/mdp"
	"repro/internal/netlist"
)

// PrunedRunner is the Stage-3 flow runner: a doomed-run strategy card
// supervises the detailed router's DRV series and terminates hopeless
// runs early, repurposing their remaining schedule (the "predicting
// doomed runs" example of Sec. 3.3).
type PrunedRunner struct {
	Card *mdp.Card
	// ConsecutiveStops is the termination hysteresis (the paper's
	// table suggests 3 for a ~4% error rate).
	ConsecutiveStops int
}

// PrunedResult is a flow result annotated with the monitor's action.
type PrunedResult struct {
	Result *flow.Result
	// StoppedAt is the router iteration at which the monitor fired
	// (-1 if the run was allowed to complete).
	StoppedAt int
	// SavedRuntime is the simulated runtime avoided by stopping early.
	SavedRuntime float64
	// EffectiveRuntime is the run's runtime after the saving.
	EffectiveRuntime float64
	// Mistake marks a Type-1 event (stopped a run that would have
	// succeeded); available because the simulator knows the future.
	Mistake bool
}

// Run executes the flow under doomed-run supervision.
func (p PrunedRunner) Run(design *netlist.Netlist, opts flow.Options) PrunedResult {
	k := p.ConsecutiveStops
	if k <= 0 {
		k = 3
	}
	res := flow.Run(design, opts)
	out := PrunedResult{Result: res, StoppedAt: -1, EffectiveRuntime: res.RuntimeProxy}
	if p.Card == nil || res.Route == nil {
		return out
	}
	run := logfile.FromDetail(0, design.Name, "live", res.Route)
	stoppedAt := p.Card.Outcome(run, k)
	if stoppedAt < 0 {
		return out
	}
	out.StoppedAt = stoppedAt
	// Runtime the simulator charged for iterations past the stop.
	for t := stoppedAt + 1; t < len(res.Route.DRVs); t++ {
		out.SavedRuntime += 1 + float64(res.Route.DRVs[t])/5000
	}
	out.EffectiveRuntime = res.RuntimeProxy - out.SavedRuntime
	out.Mistake = res.Route.Success
	return out
}

// PruningStudy quantifies Stage-3 value over a batch of runs: total
// runtime with and without the monitor, plus the error rates.
type PruningStudy struct {
	Runs            int
	Stopped         int
	Type1           int
	RuntimeUnpruned float64
	RuntimePruned   float64
	SavedRuntimePct float64
	DoomedRuns      int
	DoomedStopped   int
}

// StudyPruning runs the flow across seeds with and without supervision
// and accounts the schedule savings.
func StudyPruning(design *netlist.Netlist, base flow.Options, runner PrunedRunner, seeds int) PruningStudy {
	var st PruningStudy
	for s := 0; s < seeds; s++ {
		opts := base
		opts.Seed = base.Seed + int64(s)
		pr := runner.Run(design, opts)
		st.Runs++
		st.RuntimeUnpruned += pr.Result.RuntimeProxy
		st.RuntimePruned += pr.EffectiveRuntime
		if !pr.Result.Route.Success {
			st.DoomedRuns++
			if pr.StoppedAt >= 0 {
				st.DoomedStopped++
			}
		}
		if pr.StoppedAt >= 0 {
			st.Stopped++
			if pr.Mistake {
				st.Type1++
			}
		}
	}
	if st.RuntimeUnpruned > 0 {
		st.SavedRuntimePct = 100 * (st.RuntimeUnpruned - st.RuntimePruned) / st.RuntimeUnpruned
	}
	return st
}
