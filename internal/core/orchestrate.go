package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/mab"
	"repro/internal/netlist"
	"repro/internal/sched"
)

// SearchConfig parameterizes the Stage-2 orchestrated search: N robot
// engineers concurrently sampling flow targets under a license pool,
// steered by a bandit policy (the paper's 5 concurrent samples x 40
// iterations regime).
type SearchConfig struct {
	Freqs      []float64 // arms (target frequencies)
	Iterations int       // default 40
	Licenses   int       // concurrent tool runs, default 5
	Algorithm  string    // "thompson" (default), "softmax", "eps-greedy", "ucb1"
	Seed       int64
	// FreqWeighted shapes rewards by frequency (see FreqArms).
	FreqWeighted bool
	// Cache memoizes flow runs, so searches sharing a design reuse each
	// other's samples (optional). Arm selection and seeding are
	// unaffected; only recomputation is skipped.
	Cache *campaign.Cache
}

// NewAlgorithm builds a bandit policy by name over n arms.
func NewAlgorithm(name string, n int) (mab.Algorithm, error) {
	switch name {
	case "", "thompson":
		return mab.NewThompson(n), nil
	case "softmax":
		return mab.NewSoftmax(n, 0.1), nil
	case "eps-greedy":
		return mab.NewEpsilonGreedy(n, 0.1), nil
	case "ucb1":
		return mab.NewUCB1(n), nil
	default:
		return nil, fmt.Errorf("core: unknown bandit algorithm %q", name)
	}
}

// SamplePoint is one concurrent tool run in the search trace (one dot of
// Fig. 7).
type SamplePoint struct {
	Iteration int
	Slot      int
	FreqGHz   float64
	Satisfied bool
	AreaUm2   float64
	Runtime   float64
}

// SearchResult is the Stage-2 outcome.
type SearchResult struct {
	Algorithm string
	Samples   []SamplePoint
	// BestFreqSoFar[t] is the highest satisfied frequency found up to
	// iteration t — the solid line of Fig. 7.
	BestFreqSoFar []float64
	BestFreqGHz   float64
	BestArea      float64
	TotalRuns     int
	TotalRuntime  float64
	PeakLicenses  int
}

// Search runs the orchestrated bandit search over flow targets. Flow
// runs within an iteration execute concurrently on the campaign engine
// under the license pool; the policy is updated at iteration boundaries,
// exactly as concurrent EDA runs report. Arm choices and per-run seeds
// are drawn before each batch fans out, so the trace is deterministic in
// cfg.Seed no matter how the pool schedules the runs.
func Search(design *netlist.Netlist, base flow.Options, cons flow.Constraints, cfg SearchConfig) (*SearchResult, error) {
	if len(cfg.Freqs) == 0 {
		return nil, fmt.Errorf("core: no frequency arms")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 40
	}
	if cfg.Licenses <= 0 {
		cfg.Licenses = 5
	}
	alg, err := NewAlgorithm(cfg.Algorithm, len(cfg.Freqs))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := sched.NewPool(cfg.Licenses)
	eng := campaign.New(campaign.Config{Pool: pool, Cache: cfg.Cache})
	designKey := ""
	if cfg.Cache != nil {
		designKey = campaign.KeyFor(design)
	}
	res := &SearchResult{Algorithm: alg.Name()}

	maxFreq := cfg.Freqs[0]
	for _, f := range cfg.Freqs {
		if f > maxFreq {
			maxFreq = f
		}
	}

	for t := 0; t < cfg.Iterations; t++ {
		arms := make([]int, cfg.Licenses)
		pts := make([]campaign.Point, cfg.Licenses)
		for k := range arms {
			arms[k] = alg.Select(rng)
			opts := base
			opts.TargetFreqGHz = cfg.Freqs[arms[k]]
			opts.Seed = rng.Int63()
			pts[k] = campaign.Point{Design: design, DesignKey: designKey, Options: opts}
		}
		outs, err := eng.Run(context.Background(), pts)
		if err != nil {
			return nil, err
		}
		for k, o := range outs {
			f := cfg.Freqs[arms[k]]
			ok := cons.Satisfied(o)
			res.Samples = append(res.Samples, SamplePoint{
				Iteration: t, Slot: k, FreqGHz: f,
				Satisfied: ok, AreaUm2: o.AreaUm2, Runtime: o.RuntimeProxy,
			})
			res.TotalRuns++
			res.TotalRuntime += o.RuntimeProxy
			reward := 0.0
			if ok {
				if f > res.BestFreqGHz {
					res.BestFreqGHz = f
					res.BestArea = o.AreaUm2
				}
				reward = 1
				if cfg.FreqWeighted {
					reward = f / maxFreq
				}
			}
			alg.Update(arms[k], reward)
		}
		res.BestFreqSoFar = append(res.BestFreqSoFar, res.BestFreqGHz)
	}
	res.PeakLicenses, _, _ = pool.Stats()
	return res, nil
}
