// Package netlist provides the gate-level design model shared by every
// step of the simulated implementation flow, plus a synthetic design
// generator with Rent's-rule-style locality.
//
// Real testcases (the paper uses PULPino in foundry 14nm) are not
// available, so designs are generated: a levelized combinational DAG
// between flip-flop boundaries, with fanin selection biased toward nearby
// logic. The generator's locality knob stands in for the Rent exponent of
// a real netlist; it controls placement difficulty and routing congestion,
// which is what the paper's experiments actually exercise.
package netlist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cellib"
)

// PinRef identifies an input pin of an instance.
type PinRef struct {
	Inst int // instance ID
	Pin  int // input pin index, 0-based
}

// Instance is one placed cell.
type Instance struct {
	ID    int
	Name  string
	Cell  cellib.Cell
	Level int     // logic level (0 = register/PI boundary)
	X, Y  float64 // placement location in um (set by the placer)
}

// Net connects one driver to zero or more sink pins.
type Net struct {
	ID      int
	Name    string
	Driver  int // driving instance ID, or -1 for a primary input
	Sinks   []PinRef
	IsClock bool
	// ExternalCap models a primary-output or boundary load in fF.
	ExternalCap float64
}

// Netlist is a complete gate-level design.
type Netlist struct {
	Name string
	Lib  *cellib.Library

	Insts []Instance
	Nets  []Net

	// FaninNet[inst][pin] is the net ID feeding each input pin; -1 if
	// unconnected. FanoutNet[inst] is the net ID driven by the instance
	// output, or -1.
	FaninNet  [][]int
	FanoutNet []int

	ClockNet      int // net ID of the clock, or -1
	ClockPeriodPs float64

	// Cached placement extent (see PlacedExtent). Unexported so Clone
	// drops it; guarded by extentCells against instance insertion.
	extentValid      bool
	extentCells      int
	extentX, extentY float64
}

// NumCells returns the number of instances.
func (n *Netlist) NumCells() int { return len(n.Insts) }

// Area returns the total placed cell area in um^2.
func (n *Netlist) Area() float64 {
	var a float64
	for i := range n.Insts {
		a += n.Insts[i].Cell.Area
	}
	return a
}

// Leakage returns the total leakage power in nW.
func (n *Netlist) Leakage() float64 {
	var p float64
	for i := range n.Insts {
		p += n.Insts[i].Cell.Leakage
	}
	return p
}

// Sequential returns the IDs of all sequential (flip-flop) instances.
func (n *Netlist) Sequential() []int {
	var ids []int
	for i := range n.Insts {
		if n.Insts[i].Cell.Class.Sequential() {
			ids = append(ids, i)
		}
	}
	return ids
}

// NetLoad returns the total capacitive load on a net in fF: sink pin caps
// plus external cap plus wire cap for the current placement (HPWL-based
// wire length estimate).
func (n *Netlist) NetLoad(netID int) float64 {
	net := &n.Nets[netID]
	load := net.ExternalCap
	for _, s := range net.Sinks {
		load += n.Insts[s.Inst].Cell.InputCap
	}
	load += n.Lib.Wire.CapPerUm * n.HPWL(netID)
	return load
}

// HPWL returns the half-perimeter wirelength of a net in um for the
// current placement. Nets with fewer than two endpoints have length 0.
func (n *Netlist) HPWL(netID int) float64 {
	net := &n.Nets[netID]
	first := true
	var minX, maxX, minY, maxY float64
	add := func(x, y float64) {
		if first {
			minX, maxX, minY, maxY = x, x, y, y
			first = false
			return
		}
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	if net.Driver >= 0 {
		add(n.Insts[net.Driver].X, n.Insts[net.Driver].Y)
	}
	for _, s := range net.Sinks {
		add(n.Insts[s.Inst].X, n.Insts[s.Inst].Y)
	}
	if first {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalHPWL returns the sum of HPWL over all non-clock nets in um.
func (n *Netlist) TotalHPWL() float64 {
	var t float64
	for i := range n.Nets {
		if n.Nets[i].IsClock {
			continue
		}
		t += n.HPWL(i)
	}
	return t
}

// TopoOrder returns instance IDs in ascending logic-level order, which is
// a valid topological order of the combinational graph (level-0 holds
// registers and level assignment follows fanin levels).
func (n *Netlist) TopoOrder() []int {
	order := make([]int, len(n.Insts))
	for i := range order {
		order[i] = i
	}
	// Counting sort by level keeps this O(V).
	maxLevel := 0
	for i := range n.Insts {
		if n.Insts[i].Level > maxLevel {
			maxLevel = n.Insts[i].Level
		}
	}
	buckets := make([][]int, maxLevel+1)
	for i := range n.Insts {
		buckets[n.Insts[i].Level] = append(buckets[n.Insts[i].Level], i)
	}
	order = order[:0]
	for _, b := range buckets {
		order = append(order, b...)
	}
	return order
}

// Stats summarizes structural attributes of a design. These are the
// "structural attributes of design instances that determine flow outcomes"
// the paper lists as ML application (i) in Sec. 3.3; they are consumed as
// model features by internal/correlate and internal/metrics.
type Stats struct {
	Cells      int
	Registers  int
	Nets       int
	Pins       int
	MaxLevel   int
	AvgFanout  float64
	MaxFanout  int
	TotalArea  float64
	AvgNetSpan float64 // average normalized within-level positional distance (locality proxy)
}

// ComputeStats derives structural statistics from the netlist.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{Cells: len(n.Insts), Nets: len(n.Nets), TotalArea: n.Area()}
	var fanoutSum int
	var spanSum float64
	var spanCnt int
	for i := range n.Insts {
		if n.Insts[i].Cell.Class.Sequential() {
			s.Registers++
		}
		if n.Insts[i].Level > s.MaxLevel {
			s.MaxLevel = n.Insts[i].Level
		}
	}
	// Normalized position of each instance within its logic level, so the
	// span metric is insensitive to the ID stride between levels.
	levelCount := make(map[int]int)
	for i := range n.Insts {
		levelCount[n.Insts[i].Level]++
	}
	levelSeen := make(map[int]int)
	pos := make([]float64, len(n.Insts))
	for _, id := range n.TopoOrder() {
		l := n.Insts[id].Level
		pos[id] = (float64(levelSeen[l]) + 0.5) / float64(levelCount[l])
		levelSeen[l]++
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		s.Pins += len(net.Sinks)
		if net.Driver >= 0 {
			s.Pins++
			fanoutSum += len(net.Sinks)
			if len(net.Sinks) > s.MaxFanout {
				s.MaxFanout = len(net.Sinks)
			}
			for _, snk := range net.Sinks {
				d := pos[net.Driver] - pos[snk.Inst]
				if d < 0 {
					d = -d
				}
				spanSum += d
				spanCnt++
			}
		}
	}
	drivers := 0
	for i := range n.Nets {
		if n.Nets[i].Driver >= 0 {
			drivers++
		}
	}
	if drivers > 0 {
		s.AvgFanout = float64(fanoutSum) / float64(drivers)
	}
	if spanCnt > 0 {
		s.AvgNetSpan = spanSum / float64(spanCnt)
	}
	return s
}

// Validate checks structural invariants: consistent fanin/fanout tables,
// in-range references, acyclicity by levels. It returns the first problem
// found, or nil.
func (n *Netlist) Validate() error {
	if len(n.FaninNet) != len(n.Insts) || len(n.FanoutNet) != len(n.Insts) {
		return fmt.Errorf("netlist: fanin/fanout tables sized %d/%d for %d insts",
			len(n.FaninNet), len(n.FanoutNet), len(n.Insts))
	}
	for i := range n.Insts {
		if n.Insts[i].ID != i {
			return fmt.Errorf("netlist: inst %d has ID %d", i, n.Insts[i].ID)
		}
		want := n.Insts[i].Cell.Class.NumInputs()
		if len(n.FaninNet[i]) != want {
			return fmt.Errorf("netlist: inst %d (%s) has %d fanin slots, want %d",
				i, n.Insts[i].Cell.Name, len(n.FaninNet[i]), want)
		}
		for pin, netID := range n.FaninNet[i] {
			if netID < 0 {
				continue
			}
			if netID >= len(n.Nets) {
				return fmt.Errorf("netlist: inst %d pin %d references net %d of %d", i, pin, netID, len(n.Nets))
			}
			found := false
			for _, s := range n.Nets[netID].Sinks {
				if s.Inst == i && s.Pin == pin {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist: inst %d pin %d not a sink of its fanin net %d", i, pin, netID)
			}
		}
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.ID != i {
			return fmt.Errorf("netlist: net %d has ID %d", i, net.ID)
		}
		if net.Driver >= len(n.Insts) {
			return fmt.Errorf("netlist: net %d driver %d out of range", i, net.Driver)
		}
		if net.Driver >= 0 && n.FanoutNet[net.Driver] != i {
			return fmt.Errorf("netlist: net %d driver %d fanout table says %d", i, net.Driver, n.FanoutNet[net.Driver])
		}
		for _, s := range net.Sinks {
			if s.Inst < 0 || s.Inst >= len(n.Insts) {
				return fmt.Errorf("netlist: net %d sink inst %d out of range", i, s.Inst)
			}
			if s.Pin < 0 || s.Pin >= len(n.FaninNet[s.Inst]) {
				return fmt.Errorf("netlist: net %d sink pin %d out of range for inst %d", i, s.Pin, s.Inst)
			}
			if n.FaninNet[s.Inst][s.Pin] != i {
				return fmt.Errorf("netlist: net %d sink (%d,%d) fanin table says %d", i, s.Inst, s.Pin, n.FaninNet[s.Inst][s.Pin])
			}
		}
		// Acyclicity: a combinational sink must be at a strictly higher
		// level than a combinational driver.
		if net.Driver >= 0 && !net.IsClock && !n.Insts[net.Driver].Cell.Class.Sequential() {
			dl := n.Insts[net.Driver].Level
			for _, s := range net.Sinks {
				if n.Insts[s.Inst].Cell.Class.Sequential() {
					continue
				}
				if n.Insts[s.Inst].Level <= dl {
					return fmt.Errorf("netlist: net %d combinational edge %d(level %d) -> %d(level %d) not level-increasing",
						i, net.Driver, dl, s.Inst, n.Insts[s.Inst].Level)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the netlist (cells may be resized without
// affecting the original).
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:          n.Name,
		Lib:           n.Lib,
		Insts:         append([]Instance(nil), n.Insts...),
		Nets:          make([]Net, len(n.Nets)),
		FaninNet:      make([][]int, len(n.FaninNet)),
		FanoutNet:     append([]int(nil), n.FanoutNet...),
		ClockNet:      n.ClockNet,
		ClockPeriodPs: n.ClockPeriodPs,
	}
	for i := range n.Nets {
		c.Nets[i] = n.Nets[i]
		c.Nets[i].Sinks = append([]PinRef(nil), n.Nets[i].Sinks...)
	}
	for i := range n.FaninNet {
		c.FaninNet[i] = append([]int(nil), n.FaninNet[i]...)
	}
	return c
}

// Spec parameterizes the synthetic design generator.
type Spec struct {
	Name          string
	Seed          int64
	NumComb       int     // approximate number of combinational cells
	NumFFs        int     // number of flip-flops
	Levels        int     // combinational logic depth
	Locality      float64 // 0..1; higher = more local fanin (lower Rent exponent)
	NumPIs        int     // primary inputs
	ClockPeriodPs float64 // initial timing target
}

// PulpinoProxy returns the spec of the PULPino-like proxy design used for
// the paper's Fig. 3 and Fig. 7 experiments (scaled for laptop runtime).
func PulpinoProxy(seed int64) Spec {
	return Spec{
		Name: "pulpino-proxy", Seed: seed,
		NumComb: 1100, NumFFs: 150, Levels: 14,
		Locality: 0.72, NumPIs: 32, ClockPeriodPs: 1400,
	}
}

// EmbeddedCPU returns the spec of the larger embedded-CPU proxy used as
// the *testing* corpus source for the doomed-run experiments (the paper's
// 3742 logfiles come from floorplans of an embedded CPU).
func EmbeddedCPU(seed int64) Spec {
	return Spec{
		Name: "embedded-cpu", Seed: seed,
		NumComb: 2200, NumFFs: 320, Levels: 18,
		Locality: 0.6, NumPIs: 48, ClockPeriodPs: 1600,
	}
}

// Artificial returns the spec of a small artificial layout, the *training*
// corpus source for the doomed-run experiments (the paper trains on 1200
// logfiles from artificial layouts). Low locality makes these
// congestion-stressed, giving a wide mix of doomed and successful runs.
func Artificial(seed int64) Spec {
	return Spec{
		Name: "artificial", Seed: seed,
		NumComb: 700, NumFFs: 90, Levels: 10,
		Locality: 0.35, NumPIs: 24, ClockPeriodPs: 1300,
	}
}

// Tiny returns a minimal spec for fast unit tests.
func Tiny(seed int64) Spec {
	return Spec{
		Name: "tiny", Seed: seed,
		NumComb: 60, NumFFs: 10, Levels: 5,
		Locality: 0.6, NumPIs: 6, ClockPeriodPs: 1200,
	}
}

// Generate builds a synthetic design from a spec. The result is a
// levelized DAG: level 0 holds flip-flops, levels 1..Levels hold
// combinational cells whose fanins come from strictly lower levels with a
// locality-biased choice, and the last level feeds flip-flop D inputs.
// All cells start at minimum drive; synthesis/sizing strengthen them.
func Generate(lib *cellib.Library, spec Spec) *Netlist {
	rng := rand.New(rand.NewSource(spec.Seed))
	n := &Netlist{
		Name:          spec.Name,
		Lib:           lib,
		ClockNet:      -1,
		ClockPeriodPs: spec.ClockPeriodPs,
	}

	combClasses := []cellib.Class{
		cellib.Inverter, cellib.Nand2, cellib.Nor2, cellib.Nand3,
		cellib.Aoi21, cellib.Oai21, cellib.Xor2, cellib.Mux2,
	}

	addInst := func(class cellib.Class, level int) int {
		id := len(n.Insts)
		cell := lib.Smallest(class)
		n.Insts = append(n.Insts, Instance{
			ID:    id,
			Name:  fmt.Sprintf("u%d", id),
			Cell:  cell,
			Level: level,
		})
		n.FaninNet = append(n.FaninNet, make([]int, cell.Class.NumInputs()))
		for p := range n.FaninNet[id] {
			n.FaninNet[id][p] = -1
		}
		n.FanoutNet = append(n.FanoutNet, -1)
		return id
	}
	addNet := func(driver int, name string) int {
		id := len(n.Nets)
		n.Nets = append(n.Nets, Net{ID: id, Name: name, Driver: driver})
		if driver >= 0 {
			n.FanoutNet[driver] = id
		}
		return id
	}
	connect := func(netID, inst, pin int) {
		n.Nets[netID].Sinks = append(n.Nets[netID].Sinks, PinRef{Inst: inst, Pin: pin})
		n.FaninNet[inst][pin] = netID
	}

	// Flip-flops at level 0; their Q nets are the sources for level-1 logic.
	ffs := make([]int, spec.NumFFs)
	for i := range ffs {
		ffs[i] = addInst(cellib.DFF, 0)
	}
	// Primary-input nets (driver -1).
	levelNets := make([][]int, spec.Levels+1)
	for i := 0; i < spec.NumPIs; i++ {
		levelNets[0] = append(levelNets[0], addNet(-1, fmt.Sprintf("pi%d", i)))
	}
	for _, ff := range ffs {
		levelNets[0] = append(levelNets[0], addNet(ff, fmt.Sprintf("q%d", ff)))
	}

	// pickSource selects a fanin net for a cell at (level, position),
	// preferring recent levels and nearby positions; the locality knob
	// stretches or shrinks the positional window (Rent's-rule proxy).
	pickSource := func(level int, pos, width int) int {
		// Geometric level bias: mostly previous level.
		srcLevel := level - 1
		for srcLevel > 0 && rng.Float64() > 0.7 {
			srcLevel--
		}
		nets := levelNets[srcLevel]
		if len(nets) == 0 {
			nets = levelNets[0]
		}
		// Positional window around the proportional position.
		center := float64(pos) / float64(max(1, width)) * float64(len(nets))
		window := float64(len(nets)) * (1.05 - spec.Locality)
		lo := int(center - window)
		hi := int(center + window)
		if lo < 0 {
			lo = 0
		}
		if hi >= len(nets) {
			hi = len(nets) - 1
		}
		if hi < lo {
			lo, hi = 0, len(nets)-1
		}
		return nets[lo+rng.Intn(hi-lo+1)]
	}

	perLevel := spec.NumComb / spec.Levels
	if perLevel < 1 {
		perLevel = 1
	}
	for level := 1; level <= spec.Levels; level++ {
		width := perLevel
		for w := 0; w < width; w++ {
			class := combClasses[rng.Intn(len(combClasses))]
			id := addInst(class, level)
			for pin := 0; pin < class.NumInputs(); pin++ {
				connect(pickSource(level, w, width), id, pin)
			}
			levelNets[level] = append(levelNets[level], addNet(id, fmt.Sprintf("n%d", id)))
		}
	}

	// Close the loop: flip-flop D inputs sample from the last levels.
	last := levelNets[spec.Levels]
	for i, ff := range ffs {
		src := last[i%len(last)]
		if rng.Float64() < 0.3 {
			src = pickSource(spec.Levels, i, len(ffs))
		}
		connect(src, ff, 0)
	}
	// Primary outputs: give the deepest nets an external load.
	for i := 0; i < len(last); i += 4 {
		n.Nets[last[i]].ExternalCap = 2.0 + 2.0*rng.Float64()
	}

	// Clock net over all flip-flops. DFF pin 0 is D; the clock pin is
	// modelled implicitly (CTS consumes the sink list, not a pin index).
	clk := addNet(-1, "clk")
	n.Nets[clk].IsClock = true
	n.ClockNet = clk

	// Initial placement: cells in level-major order on a square grid, so
	// pre-placement analyses have sane wire estimates.
	SpreadInitial(n)
	return n
}

// SpreadInitial assigns a deterministic initial placement: instances in
// level-major order, row by row, on a die sized for ~60% utilization.
func SpreadInitial(n *Netlist) {
	n.InvalidatePlacement()
	w, h := DieSize(n, 0.6)
	order := n.TopoOrder()
	cols := int(math.Ceil(math.Sqrt(float64(len(order)))))
	if cols < 1 {
		cols = 1
	}
	for i, id := range order {
		r, c := i/cols, i%cols
		n.Insts[id].X = (float64(c) + 0.5) / float64(cols) * w
		n.Insts[id].Y = (float64(r) + 0.5) / float64(cols) * h
	}
}

// DieSize returns a square die (width, height in um) sized so the design
// occupies the given utilization fraction.
func DieSize(n *Netlist, utilization float64) (w, h float64) {
	if utilization <= 0 {
		utilization = 0.6
	}
	side := math.Sqrt(n.Area() / utilization)
	if side < 1 {
		side = 1
	}
	return side, side
}

