package netlist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cellib"
)

func genAll(t *testing.T) map[string]*Netlist {
	t.Helper()
	lib := cellib.Default14nm()
	return map[string]*Netlist{
		"tiny":     Generate(lib, Tiny(1)),
		"pulpino":  Generate(lib, PulpinoProxy(2)),
		"artifact": Generate(lib, Artificial(3)),
	}
}

func TestGenerateValid(t *testing.T) {
	for name, n := range genAll(t) {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	lib := cellib.Default14nm()
	a := Generate(lib, PulpinoProxy(7))
	b := Generate(lib, PulpinoProxy(7))
	if len(a.Insts) != len(b.Insts) || len(a.Nets) != len(b.Nets) {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			len(a.Insts), len(a.Nets), len(b.Insts), len(b.Nets))
	}
	for i := range a.Insts {
		if a.Insts[i].Cell.Name != b.Insts[i].Cell.Name {
			t.Fatalf("inst %d differs: %s vs %s", i, a.Insts[i].Cell.Name, b.Insts[i].Cell.Name)
		}
	}
	c := Generate(lib, PulpinoProxy(8))
	same := true
	for i := range a.Insts {
		if i >= len(c.Insts) || a.Insts[i].Cell.Name != c.Insts[i].Cell.Name {
			same = false
			break
		}
	}
	if same && len(a.Insts) == len(c.Insts) {
		t.Error("different seeds produced identical netlists")
	}
}

func TestGenerateSizes(t *testing.T) {
	lib := cellib.Default14nm()
	spec := PulpinoProxy(1)
	n := Generate(lib, spec)
	stats := n.ComputeStats()
	if stats.Registers != spec.NumFFs {
		t.Errorf("registers = %d, want %d", stats.Registers, spec.NumFFs)
	}
	comb := stats.Cells - stats.Registers
	if comb < spec.NumComb*9/10 || comb > spec.NumComb*11/10 {
		t.Errorf("comb cells = %d, want ~%d", comb, spec.NumComb)
	}
	if stats.MaxLevel != spec.Levels {
		t.Errorf("max level = %d, want %d", stats.MaxLevel, spec.Levels)
	}
	if stats.AvgFanout <= 0 {
		t.Error("avg fanout must be positive")
	}
}

func TestClockNetCoversNoCombinational(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(5))
	if n.ClockNet < 0 {
		t.Fatal("no clock net")
	}
	if !n.Nets[n.ClockNet].IsClock {
		t.Fatal("clock net not flagged")
	}
}

func TestTopoOrderRespectsLevels(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(5))
	order := n.TopoOrder()
	if len(order) != len(n.Insts) {
		t.Fatalf("topo order has %d entries, want %d", len(order), len(n.Insts))
	}
	seen := make(map[int]bool)
	prev := -1
	for _, id := range order {
		if seen[id] {
			t.Fatalf("inst %d appears twice", id)
		}
		seen[id] = true
		if n.Insts[id].Level < prev {
			t.Fatalf("levels not ascending in topo order")
		}
		prev = n.Insts[id].Level
	}
}

func TestHPWLProperties(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(9))
	for i := range n.Nets {
		if h := n.HPWL(i); h < 0 {
			t.Fatalf("net %d HPWL %v < 0", i, h)
		}
	}
	// Moving a cell far away must not decrease total HPWL of its nets.
	id := n.Nets[1].Driver
	if id < 0 {
		id = n.Nets[1].Sinks[0].Inst
	}
	before := n.TotalHPWL()
	n.Insts[id].X += 1e4
	after := n.TotalHPWL()
	if after < before {
		t.Errorf("moving a cell 10mm away decreased HPWL: %v -> %v", before, after)
	}
}

func TestHPWLSingletonZero(t *testing.T) {
	lib := cellib.Default14nm()
	n := &Netlist{Lib: lib, ClockNet: -1}
	n.Insts = append(n.Insts, Instance{ID: 0, Cell: lib.Smallest(cellib.Inverter), X: 5, Y: 5})
	n.FaninNet = [][]int{{-1}}
	n.FanoutNet = []int{0}
	n.Nets = []Net{{ID: 0, Driver: 0}}
	if h := n.HPWL(0); h != 0 {
		t.Errorf("singleton net HPWL = %v, want 0", h)
	}
}

func TestCloneIndependence(t *testing.T) {
	lib := cellib.Default14nm()
	n := Generate(lib, Tiny(11))
	c := n.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	origName := n.Insts[3].Cell.Name
	up, _ := lib.Upsize(c.Insts[3].Cell)
	c.Insts[3].Cell = up
	c.Nets[0].Sinks = append(c.Nets[0].Sinks, PinRef{Inst: 1, Pin: 0})
	if n.Insts[3].Cell.Name != origName {
		t.Error("mutating clone changed original instance")
	}
	if len(n.Nets[0].Sinks) == len(c.Nets[0].Sinks) {
		t.Error("mutating clone sinks changed original")
	}
}

func TestNetLoadComponents(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(13))
	for i := range n.Nets {
		load := n.NetLoad(i)
		if load < 0 {
			t.Fatalf("net %d load %v < 0", i, load)
		}
		var pinCap float64
		for _, s := range n.Nets[i].Sinks {
			pinCap += n.Insts[s.Inst].Cell.InputCap
		}
		if load < pinCap {
			t.Fatalf("net %d load %v below pin cap %v", i, load, pinCap)
		}
	}
}

func TestLocalityReducesSpan(t *testing.T) {
	lib := cellib.Default14nm()
	local := Generate(lib, Spec{Name: "l", Seed: 1, NumComb: 600, NumFFs: 60, Levels: 10, Locality: 0.95, NumPIs: 16, ClockPeriodPs: 1000})
	global := Generate(lib, Spec{Name: "g", Seed: 1, NumComb: 600, NumFFs: 60, Levels: 10, Locality: 0.05, NumPIs: 16, ClockPeriodPs: 1000})
	ls, gs := local.ComputeStats(), global.ComputeStats()
	if ls.AvgNetSpan >= gs.AvgNetSpan {
		t.Errorf("high locality should reduce net span: local %v vs global %v", ls.AvgNetSpan, gs.AvgNetSpan)
	}
}

func TestDieSizeUtilization(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(17))
	w, h := DieSize(n, 0.5)
	if math.Abs(w*h*0.5-n.Area()) > 1e-6*n.Area() {
		t.Errorf("die %vx%v at 50%% util does not match area %v", w, h, n.Area())
	}
	w2, _ := DieSize(n, 0) // default utilization
	if w2 <= 0 {
		t.Error("default die size must be positive")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	lib := cellib.Default14nm()
	// drivenNet finds a net with both a driver and at least one sink.
	drivenNet := func(n *Netlist) int {
		for i := range n.Nets {
			if n.Nets[i].Driver >= 0 && len(n.Nets[i].Sinks) > 0 {
				return i
			}
		}
		t.Fatal("no driven net with sinks")
		return -1
	}
	// combEdge finds a combinational driver with a combinational sink.
	combDriver := func(n *Netlist) int {
		for i := range n.Nets {
			net := &n.Nets[i]
			if net.Driver < 0 || net.IsClock || n.Insts[net.Driver].Cell.Class.Sequential() {
				continue
			}
			for _, s := range net.Sinks {
				if !n.Insts[s.Inst].Cell.Class.Sequential() {
					return net.Driver
				}
			}
		}
		t.Fatal("no combinational edge")
		return -1
	}
	cases := map[string]func(n *Netlist){
		"bad fanin ref": func(n *Netlist) {
			s := n.Nets[drivenNet(n)].Sinks[0]
			n.FaninNet[s.Inst][s.Pin] = len(n.Nets) + 3
		},
		"driver fanout":  func(n *Netlist) { n.FanoutNet[n.Nets[drivenNet(n)].Driver] = -1 },
		"sink mismatch":  func(n *Netlist) { n.Nets[drivenNet(n)].Sinks[0].Pin = 99 },
		"inst id":        func(n *Netlist) { n.Insts[2].ID = 0 },
		"level cycle":    func(n *Netlist) { n.Insts[combDriver(n)].Level = 99 },
		"driver range":   func(n *Netlist) { n.Nets[0].Driver = len(n.Insts) + 1 },
		"truncated nets": func(n *Netlist) { n.FaninNet = n.FaninNet[:1] },
	}
	for name, corrupt := range cases {
		n := Generate(lib, Tiny(19))
		if n.Validate() != nil {
			t.Fatal("fresh netlist must validate")
		}
		corrupt(n)
		if n.Validate() == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestGenerateManySeedsAlwaysValid(t *testing.T) {
	lib := cellib.Default14nm()
	f := func(seed int64) bool {
		n := Generate(lib, Tiny(seed))
		return n.Validate() == nil && n.NumCells() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAreaAndLeakagePositive(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(23))
	if n.Area() <= 0 {
		t.Error("area must be positive")
	}
	if n.Leakage() <= 0 {
		t.Error("leakage must be positive")
	}
	if got := len(n.Sequential()); got != 10 {
		t.Errorf("sequential count = %d, want 10", got)
	}
}
