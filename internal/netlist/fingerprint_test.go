package netlist

import (
	"testing"

	"repro/internal/cellib"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	lib := cellib.Default14nm()
	a := Generate(lib, Tiny(1))
	b := Generate(lib, Tiny(1))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical generation should fingerprint identically")
	}
	c := Generate(lib, Tiny(2))
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different design seeds should fingerprint differently")
	}
	cl := a.Clone()
	if a.Fingerprint() != cl.Fingerprint() {
		t.Fatal("clone should preserve the fingerprint")
	}
	cl.Insts[0].X += 1
	if a.Fingerprint() == cl.Fingerprint() {
		t.Fatal("moving a cell should change the fingerprint")
	}
	cl2 := a.Clone()
	cl2.ClockPeriodPs = a.ClockPeriodPs + 1
	if a.Fingerprint() == cl2.Fingerprint() {
		t.Fatal("changing the clock constraint should change the fingerprint")
	}
}
