package netlist

import (
	"testing"

	"repro/internal/cellib"
)

func TestAddInstanceAndNet(t *testing.T) {
	lib := cellib.Default14nm()
	n := Generate(lib, Tiny(1))
	before := n.NumCells()
	id := n.AddInstance(lib.Smallest(cellib.Nand2), "")
	if id != before {
		t.Fatalf("new instance id %d, want %d", id, before)
	}
	if got := len(n.FaninNet[id]); got != 2 {
		t.Fatalf("nand2 fanin slots %d", got)
	}
	for _, f := range n.FaninNet[id] {
		if f != -1 {
			t.Fatal("new instance pins must be unconnected")
		}
	}
	if n.FanoutNet[id] != -1 {
		t.Fatal("new instance output must be unconnected")
	}
	named := n.AddInstance(lib.Smallest(cellib.Inverter), "myinv")
	if n.Insts[named].Name != "myinv" {
		t.Fatal("explicit name not kept")
	}
	netID := n.AddNet(id, "")
	if n.FanoutNet[id] != netID || n.Nets[netID].Driver != id {
		t.Fatal("AddNet driver wiring broken")
	}
	pi := n.AddNet(-1, "extern")
	if n.Nets[pi].Driver != -1 || n.Nets[pi].Name != "extern" {
		t.Fatal("primary-input net broken")
	}
}

func TestConnectMovesPinBetweenNets(t *testing.T) {
	lib := cellib.Default14nm()
	n := Generate(lib, Tiny(2))
	inst := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	a := n.AddNet(-1, "a")
	b := n.AddNet(-1, "b")
	n.Connect(a, inst, 0)
	if n.FaninNet[inst][0] != a || len(n.Nets[a].Sinks) != 1 {
		t.Fatal("first connect failed")
	}
	// Reconnecting the same pin must detach from the old net.
	n.Connect(b, inst, 0)
	if n.FaninNet[inst][0] != b {
		t.Fatal("reconnect did not move pin")
	}
	if len(n.Nets[a].Sinks) != 0 {
		t.Fatal("old net still holds the sink")
	}
	if len(n.Nets[b].Sinks) != 1 {
		t.Fatal("new net missing the sink")
	}
	if err := n.Relevel(); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("after reconnect: %v", err)
	}
}

func TestInsertBufferSplitsNet(t *testing.T) {
	lib := cellib.Default14nm()
	n := Generate(lib, Tiny(3))
	// Find a multi-sink net.
	netID := -1
	for i := range n.Nets {
		if !n.Nets[i].IsClock && n.Nets[i].Driver >= 0 && len(n.Nets[i].Sinks) >= 2 {
			netID = i
			break
		}
	}
	if netID < 0 {
		t.Skip("no multi-sink net in tiny design")
	}
	moved := append([]PinRef(nil), n.Nets[netID].Sinks[:1]...)
	sinksBefore := len(n.Nets[netID].Sinks)
	buf := n.InsertBuffer(netID, moved, lib.Smallest(cellib.Buffer))
	if err := n.Relevel(); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("after buffering: %v", err)
	}
	// Original net: lost the moved sink, gained the buffer input.
	if got := len(n.Nets[netID].Sinks); got != sinksBefore {
		t.Fatalf("original net has %d sinks, want %d (one moved out, buffer in)", got, sinksBefore)
	}
	out := n.FanoutNet[buf]
	if out < 0 || len(n.Nets[out].Sinks) != 1 {
		t.Fatal("buffer output net malformed")
	}
	if n.Nets[out].Sinks[0] != moved[0] {
		t.Fatal("moved sink not behind buffer")
	}
	// Buffer sits at the moved sink's location (centroid of one).
	if n.Insts[buf].X != n.Insts[moved[0].Inst].X {
		t.Error("buffer not at sink centroid")
	}
}

func TestRelevelAfterEdits(t *testing.T) {
	lib := cellib.Default14nm()
	n := Generate(lib, Tiny(4))
	// Chain two new inverters off an existing net, then relevel.
	src := n.FanoutNet[n.Sequential()[0]]
	a := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	n.Connect(src, a, 0)
	an := n.AddNet(a, "")
	b := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	n.Connect(an, b, 0)
	n.AddNet(b, "")
	if err := n.Relevel(); err != nil {
		t.Fatal(err)
	}
	if n.Insts[a].Level < 1 || n.Insts[b].Level != n.Insts[a].Level+1 {
		t.Fatalf("levels a=%d b=%d", n.Insts[a].Level, n.Insts[b].Level)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRelevelDetectsCycle(t *testing.T) {
	lib := cellib.Default14nm()
	n := &Netlist{Name: "cyc", Lib: lib, ClockNet: -1, ClockPeriodPs: 1000}
	a := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	b := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	an := n.AddNet(a, "")
	bn := n.AddNet(b, "")
	n.Connect(an, b, 0)
	n.Connect(bn, a, 0) // a -> b -> a
	if err := n.Relevel(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestRelevelIgnoresSequentialLoops(t *testing.T) {
	lib := cellib.Default14nm()
	n := &Netlist{Name: "ffloop", Lib: lib, ClockNet: -1, ClockPeriodPs: 1000}
	ff := n.AddInstance(lib.Smallest(cellib.DFF), "")
	inv := n.AddInstance(lib.Smallest(cellib.Inverter), "")
	q := n.AddNet(ff, "")
	n.Connect(q, inv, 0)
	iq := n.AddNet(inv, "")
	n.Connect(iq, ff, 0) // ff -> inv -> ff: legal through the register
	if err := n.Relevel(); err != nil {
		t.Fatalf("register loop flagged as cycle: %v", err)
	}
	if n.Insts[ff].Level != 0 || n.Insts[inv].Level != 1 {
		t.Fatalf("levels ff=%d inv=%d", n.Insts[ff].Level, n.Insts[inv].Level)
	}
}

func TestEmbeddedCPUSpec(t *testing.T) {
	n := Generate(cellib.Default14nm(), EmbeddedCPU(1))
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.Cells < 2000 {
		t.Errorf("embedded CPU proxy too small: %d cells", s.Cells)
	}
}
