package netlist

import (
	"fmt"

	"repro/internal/cellib"
)

// AddInstance appends a new unconnected instance of the given cell and
// returns its ID. The caller must connect its pins and relevel.
func (n *Netlist) AddInstance(cell cellib.Cell, name string) int {
	id := len(n.Insts)
	if name == "" {
		name = fmt.Sprintf("u%d", id)
	}
	n.Insts = append(n.Insts, Instance{ID: id, Name: name, Cell: cell})
	fanin := make([]int, cell.Class.NumInputs())
	for i := range fanin {
		fanin[i] = -1
	}
	n.FaninNet = append(n.FaninNet, fanin)
	n.FanoutNet = append(n.FanoutNet, -1)
	return id
}

// AddNet appends a new net driven by the given instance (or -1) and
// returns its ID.
func (n *Netlist) AddNet(driver int, name string) int {
	id := len(n.Nets)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	n.Nets = append(n.Nets, Net{ID: id, Name: name, Driver: driver})
	if driver >= 0 {
		n.FanoutNet[driver] = id
	}
	return id
}

// Connect attaches a net to an instance input pin. The pin must be
// currently unconnected or connected to another net (which is detached).
func (n *Netlist) Connect(netID, inst, pin int) {
	if old := n.FaninNet[inst][pin]; old >= 0 {
		n.detachSink(old, inst, pin)
	}
	n.Nets[netID].Sinks = append(n.Nets[netID].Sinks, PinRef{Inst: inst, Pin: pin})
	n.FaninNet[inst][pin] = netID
}

func (n *Netlist) detachSink(netID, inst, pin int) {
	sinks := n.Nets[netID].Sinks
	for i, s := range sinks {
		if s.Inst == inst && s.Pin == pin {
			n.Nets[netID].Sinks = append(sinks[:i], sinks[i+1:]...)
			break
		}
	}
	n.FaninNet[inst][pin] = -1
}

// InsertBuffer splits a net: the listed sink pins are moved behind a new
// buffer instance placed at the net's load centroid. Returns the buffer
// instance ID. The caller should Relevel afterwards.
func (n *Netlist) InsertBuffer(netID int, sinks []PinRef, buf cellib.Cell) int {
	id := n.AddInstance(buf, "")
	// Place the buffer at the centroid of the moved sinks.
	var cx, cy float64
	for _, s := range sinks {
		cx += n.Insts[s.Inst].X
		cy += n.Insts[s.Inst].Y
	}
	if len(sinks) > 0 {
		n.Insts[id].X = cx / float64(len(sinks))
		n.Insts[id].Y = cy / float64(len(sinks))
	}
	n.InvalidatePlacement()
	newNet := n.AddNet(id, "")
	for _, s := range sinks {
		n.detachSink(netID, s.Inst, s.Pin)
		n.Connect(newNet, s.Inst, s.Pin)
	}
	n.Connect(netID, id, 0)
	return id
}

// Relevel recomputes logic levels by longest path from sources (registers
// and primary inputs are level 0). It must be called after structural
// edits. Returns an error if the combinational graph has a cycle.
func (n *Netlist) Relevel() error {
	const unset = -1
	level := make([]int, len(n.Insts))
	for i := range level {
		level[i] = unset
	}
	// Kahn-style: indegree over combinational fanins with a driver that
	// is combinational.
	indeg := make([]int, len(n.Insts))
	for i := range n.Insts {
		if n.Insts[i].Cell.Class.Sequential() {
			level[i] = 0
			continue
		}
		for _, netID := range n.FaninNet[i] {
			if netID < 0 || n.Nets[netID].IsClock {
				continue
			}
			d := n.Nets[netID].Driver
			if d >= 0 && !n.Insts[d].Cell.Class.Sequential() {
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(n.Insts))
	for i := range n.Insts {
		if level[i] == 0 {
			continue // registers
		}
		if indeg[i] == 0 {
			level[i] = 1
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		out := n.FanoutNet[id]
		if out < 0 {
			continue
		}
		for _, s := range n.Nets[out].Sinks {
			if n.Insts[s.Inst].Cell.Class.Sequential() {
				continue
			}
			if l := level[id] + 1; l > level[s.Inst] {
				level[s.Inst] = l
			}
			indeg[s.Inst]--
			if indeg[s.Inst] == 0 {
				queue = append(queue, s.Inst)
			}
		}
	}
	for i := range n.Insts {
		if !n.Insts[i].Cell.Class.Sequential() && level[i] == unset && indeg[i] > 0 {
			return fmt.Errorf("netlist: combinational cycle involving inst %d", i)
		}
	}
	for i := range n.Insts {
		if level[i] == unset {
			level[i] = 1
		}
		n.Insts[i].Level = level[i]
	}
	return nil
}
