package netlist

import (
	"testing"

	"repro/internal/cellib"
)

// naiveIncidence reproduces the nested-slice incidence the placer used
// to build inline: nets touching each instance, deduped, first-seen
// (ascending net) order, clock excluded.
func naiveIncidence(n *Netlist) [][]int {
	netsOf := make([][]int, n.NumCells())
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock {
			continue
		}
		if net.Driver >= 0 {
			netsOf[net.Driver] = append(netsOf[net.Driver], i)
		}
		for _, s := range net.Sinks {
			netsOf[s.Inst] = append(netsOf[s.Inst], i)
		}
	}
	for i := range netsOf {
		seen := map[int]struct{}{}
		out := netsOf[i][:0]
		for _, x := range netsOf[i] {
			if _, ok := seen[x]; !ok {
				seen[x] = struct{}{}
				out = append(out, x)
			}
		}
		netsOf[i] = out
	}
	return netsOf
}

func TestBuildIncidenceMatchesNaive(t *testing.T) {
	for _, spec := range []Spec{Tiny(1), Artificial(2), PulpinoProxy(3)} {
		n := Generate(cellib.Default14nm(), spec)
		want := naiveIncidence(n)
		inc := n.BuildIncidence()
		for inst := 0; inst < n.NumCells(); inst++ {
			got := inc.Of(inst)
			if len(got) != len(want[inst]) {
				t.Fatalf("%s inst %d: %d nets, want %d", spec.Name, inst, len(got), len(want[inst]))
			}
			for k := range got {
				if int(got[k]) != want[inst][k] {
					t.Fatalf("%s inst %d net %d: %d, want %d", spec.Name, inst, k, got[k], want[inst][k])
				}
			}
		}
	}
}

func TestBuildNetPinsMatchesHPWLOrder(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(4))
	np := n.BuildNetPins()
	for i := range n.Nets {
		net := &n.Nets[i]
		var want []int32
		if net.Driver >= 0 {
			want = append(want, int32(net.Driver))
		}
		for _, s := range net.Sinks {
			want = append(want, int32(s.Inst))
		}
		got := np.Of(i)
		if len(got) != len(want) {
			t.Fatalf("net %d: %d pins, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("net %d pin %d: %d, want %d", i, k, got[k], want[k])
			}
		}
	}
}

func scanExtent(n *Netlist) (x, y float64) {
	for i := range n.Insts {
		if n.Insts[i].X > x {
			x = n.Insts[i].X
		}
		if n.Insts[i].Y > y {
			y = n.Insts[i].Y
		}
	}
	return x, y
}

func TestPlacedExtentCacheTracksWriters(t *testing.T) {
	n := Generate(cellib.Default14nm(), Tiny(5))
	check := func(stage string) {
		t.Helper()
		wx, wy := scanExtent(n)
		gx, gy := n.PlacedExtent()
		if gx != wx || gy != wy {
			t.Fatalf("%s: cached extent (%v,%v) != scan (%v,%v)", stage, gx, gy, wx, wy)
		}
	}
	check("generated")

	// Mutation through a writer must invalidate.
	n.Insts[0].X = 1e6
	n.InvalidatePlacement()
	check("manual write + invalidate")

	// SpreadInitial invalidates itself.
	SpreadInitial(n)
	check("spread")

	// Instance insertion is caught by the cell-count guard even without
	// an explicit invalidate.
	n.PlacedExtent()
	id := n.AddInstance(n.Lib.Smallest(cellib.Inverter), "")
	n.Insts[id].X, n.Insts[id].Y = 2e6, 3e6
	check("insert")

	// Clone drops the cache.
	c := n.Clone()
	c.Insts[0].X = 9e6
	check("original after clone")
	cx, _ := c.PlacedExtent()
	if cx != 9e6 {
		t.Fatalf("clone extent %v, want 9e6", cx)
	}
}
