package netlist

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a content hash of the design: structure (cells,
// connectivity), cell bindings, placement coordinates and the clock
// constraint. Two netlists with equal fingerprints drive a deterministic
// flow to bit-identical results, which is what makes the fingerprint
// usable as the design half of a campaign memo-cache key. Cost is
// O(cells + pins), negligible next to any flow step.
func (n *Netlist) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:]) //nolint:errcheck // fnv never fails
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	h.Write([]byte(n.Name)) //nolint:errcheck
	wf(n.ClockPeriodPs)
	w64(uint64(int64(n.ClockNet)))
	for i := range n.Insts {
		inst := &n.Insts[i]
		h.Write([]byte(inst.Cell.Name)) //nolint:errcheck
		wf(inst.X)
		wf(inst.Y)
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		w64(uint64(int64(net.Driver)))
		wf(net.ExternalCap)
		if net.IsClock {
			w64(1)
		}
		for _, s := range net.Sinks {
			w64(uint64(s.Inst)<<16 ^ uint64(s.Pin))
		}
	}
	return h.Sum64()
}
