// Flat (structure-of-arrays) views of the netlist connectivity, built
// once and scanned by the hot loops of the physical-design kernels.
// The annealing placer evaluates millions of move deltas per run; the
// nested-slice incidence it used to build per call ([][]int plus a
// per-instance dedupe map) cost an allocation per instance and a
// pointer chase per access. These CSR-style index+offset pairs are the
// same data flattened into two arrays each.
package netlist

// Incidence is a CSR-style instance -> nets index: the (deduplicated)
// non-clock nets touching each instance, in ascending net order.
type Incidence struct {
	Off  []int32 // len NumCells+1; nets of inst i are Nets[Off[i]:Off[i+1]]
	Nets []int32
}

// Of returns the nets incident to inst.
func (inc Incidence) Of(inst int) []int32 {
	return inc.Nets[inc.Off[inst]:inc.Off[inst+1]]
}

// BuildIncidence constructs the instance -> nets CSR index. Clock nets
// are excluded (the placer's cost function ignores them). Deduplication
// uses a stamp array, so the build allocates exactly three slices no
// matter how many instances the design has.
func (n *Netlist) BuildIncidence() Incidence {
	stamp := make([]int32, n.NumCells())
	for i := range stamp {
		stamp[i] = -1
	}
	counts := make([]int32, n.NumCells()+1)
	visit := func(netID int, inst int, f func(inst int)) {
		if stamp[inst] != int32(netID) {
			stamp[inst] = int32(netID)
			f(inst)
		}
	}
	forEachPin := func(netID int, f func(inst int)) {
		net := &n.Nets[netID]
		if net.IsClock {
			return
		}
		if net.Driver >= 0 {
			visit(netID, net.Driver, f)
		}
		for _, s := range net.Sinks {
			visit(netID, s.Inst, f)
		}
	}
	for i := range n.Nets {
		forEachPin(i, func(inst int) { counts[inst+1]++ })
	}
	inc := Incidence{Off: counts}
	for i := 1; i < len(inc.Off); i++ {
		inc.Off[i] += inc.Off[i-1]
	}
	inc.Nets = make([]int32, inc.Off[n.NumCells()])
	next := make([]int32, n.NumCells())
	copy(next, inc.Off[:n.NumCells()])
	for i := range stamp {
		stamp[i] = -1
	}
	for i := range n.Nets {
		forEachPin(i, func(inst int) {
			inc.Nets[next[inst]] = int32(i)
			next[inst]++
		})
	}
	return inc
}

// NetPins is a CSR-style net -> pin-instances index: for each net, the
// driver (when present) followed by the sink instances, duplicates
// preserved, in the same order Netlist.HPWL visits them.
type NetPins struct {
	Off  []int32 // len NumNets+1; pins of net i are Inst[Off[i]:Off[i+1]]
	Inst []int32
}

// Of returns the pin instances of net id.
func (np NetPins) Of(netID int) []int32 {
	return np.Inst[np.Off[netID]:np.Off[netID+1]]
}

// BuildNetPins constructs the net -> pin-instances CSR index.
func (n *Netlist) BuildNetPins() NetPins {
	np := NetPins{Off: make([]int32, len(n.Nets)+1)}
	for i := range n.Nets {
		cnt := len(n.Nets[i].Sinks)
		if n.Nets[i].Driver >= 0 {
			cnt++
		}
		np.Off[i+1] = np.Off[i] + int32(cnt)
	}
	np.Inst = make([]int32, np.Off[len(n.Nets)])
	pos := 0
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.Driver >= 0 {
			np.Inst[pos] = int32(net.Driver)
			pos++
		}
		for _, s := range net.Sinks {
			np.Inst[pos] = int32(s.Inst)
			pos++
		}
	}
	return np
}

// PlacedExtent returns the maximum instance X and Y of the current
// placement, caching the scan until InvalidatePlacement is called (or
// the instance count changes). The global router used to rescan every
// instance per call; campaign benches route the same placement many
// times, so the scan is hoisted here. Not safe for concurrent first
// call on a shared netlist — like every other mutating accessor.
func (n *Netlist) PlacedExtent() (maxX, maxY float64) {
	if n.extentValid && n.extentCells == len(n.Insts) {
		return n.extentX, n.extentY
	}
	for i := range n.Insts {
		if n.Insts[i].X > maxX {
			maxX = n.Insts[i].X
		}
		if n.Insts[i].Y > maxY {
			maxY = n.Insts[i].Y
		}
	}
	n.extentValid, n.extentCells = true, len(n.Insts)
	n.extentX, n.extentY = maxX, maxY
	return maxX, maxY
}

// InvalidatePlacement drops the cached placement extent. Every code
// path that writes instance coordinates must call it (Clone drops the
// cache implicitly). All cache fields are zeroed — not just the valid
// bit — so an invalidated netlist is value-identical to one that never
// cached (campaign journals compare replayed results to recomputed
// ones with reflect.DeepEqual).
func (n *Netlist) InvalidatePlacement() {
	n.extentValid = false
	n.extentCells = 0
	n.extentX, n.extentY = 0, 0
}
