package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotonic clock: every read advances by
// step, so spans get stable, distinct timestamps.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Duration
	step time.Duration
}

func (c *fakeClock) now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += c.step
	return c.t
}

func TestDisabledTracerIsNilSafe(t *testing.T) {
	Disable()
	ctx, sp := Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("disabled Start returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled Start polluted the context")
	}
	// Every method must be a no-op on nil.
	sp.Set("k", "v")
	sp.SetInt("i", 1)
	sp.SetFloat("f", 1.5)
	sp.SetOutcome(Failed)
	sp.EndWith(Hung)
	sp.EndErr(context.Canceled)
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span has an id")
	}
	if Begin("y") != nil {
		t.Fatal("disabled Begin returned a span")
	}
}

func TestSpanHierarchyAndOutcomes(t *testing.T) {
	tr := New(0)
	Enable(tr)
	defer Disable()

	ctx, root := Start(context.Background(), "campaign.run")
	root.SetInt("points", 2)
	cctx, child := Start(ctx, "campaign.point")
	child.Set("key", "a")
	_, leaf := Start(cctx, "flow.synth")
	leaf.EndWith(Hung)
	child.EndErr(context.Canceled)
	root.End()

	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["campaign.point"].Parent != byName["campaign.run"].ID {
		t.Fatal("child not parented to root")
	}
	if byName["flow.synth"].Parent != byName["campaign.point"].ID {
		t.Fatal("leaf not parented to child")
	}
	if byName["flow.synth"].Outcome != Hung {
		t.Fatalf("leaf outcome %q", byName["flow.synth"].Outcome)
	}
	if byName["campaign.point"].Outcome != Aborted {
		t.Fatalf("cancelled child outcome %q", byName["campaign.point"].Outcome)
	}
	if byName["campaign.run"].Outcome != OK {
		t.Fatalf("root outcome %q", byName["campaign.run"].Outcome)
	}
	if got := byName["campaign.run"].Attrs; len(got) != 1 || got[0].Key != "points" || got[0].Val != "2" {
		t.Fatalf("root attrs %+v", got)
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	tr := New(0)
	Enable(tr)
	defer Disable()
	_, sp := Start(context.Background(), "x")
	sp.EndWith(Stopped)
	sp.EndWith(Failed) // ignored
	sp.End()           // ignored
	spans, _ := tr.Snapshot()
	if len(spans) != 1 || spans[0].Outcome != Stopped {
		t.Fatalf("spans %+v", spans)
	}
}

// TestConcurrentSpans is the -race satellite: N goroutines each emit M
// parent+child span pairs; the collector must retain exactly N*M*2
// spans with well-formed parent/child ids.
func TestConcurrentSpans(t *testing.T) {
	const N, M = 16, 50
	tr := New(0)
	Enable(tr)
	defer Disable()

	var wg sync.WaitGroup
	for g := 0; g < N; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for m := 0; m < M; m++ {
				ctx, parent := Start(context.Background(), "worker.unit")
				parent.SetInt("goroutine", int64(g))
				_, child := Start(ctx, "worker.sub")
				child.SetInt("m", int64(m))
				child.End()
				parent.End()
			}
		}(g)
	}
	wg.Wait()

	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d spans", dropped)
	}
	if len(spans) != N*M*2 {
		t.Fatalf("got %d spans, want %d", len(spans), N*M*2)
	}
	ids := map[uint64]SpanData{}
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatal("zero span id")
		}
		if _, dup := ids[s.ID]; dup {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = s
	}
	roots, children := 0, 0
	for _, s := range spans {
		switch s.Name {
		case "worker.unit":
			roots++
			if s.Parent != 0 {
				t.Fatalf("root span has parent %d", s.Parent)
			}
		case "worker.sub":
			children++
			p, ok := ids[s.Parent]
			if !ok {
				t.Fatalf("child %d has unknown parent %d", s.ID, s.Parent)
			}
			if p.Name != "worker.unit" {
				t.Fatalf("child parented to %q", p.Name)
			}
		default:
			t.Fatalf("unexpected span %q", s.Name)
		}
	}
	if roots != N*M || children != N*M {
		t.Fatalf("roots=%d children=%d, want %d each", roots, children, N*M)
	}
	// Histograms saw every observation.
	for _, snap := range tr.Histograms().Snapshots() {
		if snap.Count != N*M {
			t.Fatalf("hist %q count %d, want %d", snap.Name, snap.Count, N*M)
		}
	}
}

func TestRetentionLimitDrops(t *testing.T) {
	tr := New(shardCount) // one retained span per shard
	Enable(tr)
	defer Disable()
	for i := 0; i < 10*shardCount; i++ {
		_, sp := Start(context.Background(), "x")
		sp.End()
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != shardCount {
		t.Fatalf("retained %d, want %d", len(spans), shardCount)
	}
	if dropped != int64(9*shardCount) {
		t.Fatalf("dropped %d, want %d", dropped, 9*shardCount)
	}
	// Histograms are not subject to retention.
	snaps := tr.Histograms().Snapshots()
	if len(snaps) != 1 || snaps[0].Count != int64(10*shardCount) {
		t.Fatalf("hist snaps %+v", snaps)
	}
}

func TestLiveSpans(t *testing.T) {
	tr := New(0)
	Enable(tr)
	defer Disable()
	ctx, root := Start(context.Background(), "campaign.run")
	_, child := Start(ctx, "flow.run")

	live := tr.Live()
	if len(live) != 2 {
		t.Fatalf("live %d, want 2", len(live))
	}
	if live[0].Name != "campaign.run" || live[1].Name != "flow.run" {
		t.Fatalf("live order %q, %q", live[0].Name, live[1].Name)
	}
	if live[1].Parent != root.ID() {
		t.Fatal("live child parent wrong")
	}
	child.End()
	root.End()
	if got := tr.Live(); len(got) != 0 {
		t.Fatalf("live after end: %d", len(got))
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &Hist{}
	// 90 fast observations at ~2µs, 10 slow at ~1000µs.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond)
	}
	s := h.Snapshot("mix")
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50Us > 8 {
		t.Fatalf("p50 %gµs, want small", s.P50Us)
	}
	if s.P99Us < 512 {
		t.Fatalf("p99 %gµs, want slow bucket", s.P99Us)
	}
	if s.MaxUs < 999 || s.MaxUs > 1001 {
		t.Fatalf("max %gµs", s.MaxUs)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets %+v", s.Buckets)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistSnapshotUnderWriters checks snapshot consistency while
// writers are active: every snapshot must be internally coherent
// (bucket sum == count field derived from the same loads).
func TestHistSnapshotUnderWriters(t *testing.T) {
	hs := NewHistSet()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				hs.Observe("concurrent", time.Duration(1+i%2000)*time.Microsecond)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := hs.Hist("concurrent").Snapshot("concurrent")
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != s.Count {
			t.Fatalf("iteration %d: bucket sum %d != count %d", i, total, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistSetWriteFormat(t *testing.T) {
	hs := NewHistSet()
	hs.Observe("b.second", 10*time.Microsecond)
	hs.Observe("a.first", 5*time.Microsecond)
	var got []string
	for _, s := range hs.Snapshots() {
		got = append(got, s.Name)
	}
	if fmt.Sprint(got) != "[a.first b.second]" {
		t.Fatalf("unsorted snapshots: %v", got)
	}
}
