package trace

import (
	"context"
	"testing"
)

// BenchmarkSpanDisabled measures the disabled fast path: one atomic
// load + nil check per Start, nil-receiver no-ops for everything else.
// This is the "measurably free" half of the tracing-overhead gate.
func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench.unit")
		sp.SetInt("i", int64(i))
		sp.End()
	}
}

// BenchmarkSpanEnabled measures the armed cost of a full
// start/annotate/end cycle into the sharded collector + histogram.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(1024)
	Enable(tr)
	defer Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench.unit")
		sp.SetInt("i", int64(i))
		sp.End()
	}
}
