// Span collection: the cross-process half of distributed tracing.
//
// Propagation contract (see DESIGN.md "Observability"):
//
//   - An RPC client calls InjectHTTP(ctx, req.Header), stamping the
//     hex headers Trace-Id (root ancestor id) and Span-Id (the span the
//     remote work should parent under).
//   - The server calls AdoptHTTP(r.Context(), r.Header); the first span
//     it starts becomes a child of the caller's span, in the caller's
//     trace, even though the two sides run different tracer instances.
//   - Workers periodically Drain() finished spans and POST a ShipBatch
//     to the coordinator's collector endpoint; the collector Ingests
//     them, shifting timestamps by the epoch skew, so one tracer holds
//     the whole fleet's stitched trace.
//
// Span ids are namespaced by Config.NodeID (NodeID<<48), so batches
// from different processes can never collide in the collector.
package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Header names carrying trace context on every inter-node RPC.
const (
	TraceIDHeader = "Trace-Id"
	SpanIDHeader  = "Span-Id"
)

// InjectHTTP stamps the trace-context headers for the span in ctx onto
// h. No-op when ctx carries no span (tracing off, or an untraced call
// path) — absent headers mean the receiver starts a fresh root.
func InjectHTTP(ctx context.Context, h http.Header) {
	traceID, spanID := Inject(ctx)
	if spanID == 0 {
		return
	}
	h.Set(TraceIDHeader, strconv.FormatUint(traceID, 16))
	h.Set(SpanIDHeader, strconv.FormatUint(spanID, 16))
}

// AdoptHTTP returns ctx extended with the remote parent described by
// h's trace-context headers, if present and well-formed; otherwise ctx
// unchanged.
func AdoptHTTP(ctx context.Context, h http.Header) context.Context {
	sv := h.Get(SpanIDHeader)
	if sv == "" {
		return ctx
	}
	spanID, err := strconv.ParseUint(sv, 16, 64)
	if err != nil || spanID == 0 {
		return ctx
	}
	traceID, _ := strconv.ParseUint(h.Get(TraceIDHeader), 16, 64)
	return Adopt(ctx, traceID, spanID)
}

// ShipBatch is one POST body of finished spans from a node to the
// collector.
type ShipBatch struct {
	// Node is the shipping process's node ID ("w0", "store", ...) —
	// recorded for diagnostics; span ids already carry the numeric
	// namespace.
	Node string
	// Epoch is the shipping tracer's wall-clock origin. The collector
	// shifts span Starts by Epoch minus its own epoch so all nodes share
	// one timeline.
	Epoch time.Time
	Spans []SpanData
}

// maxShipBytes bounds one collector POST (64k spans ≈ 16 MB of JSON).
const maxShipBytes = 64 << 20

// NewCollectorHandler returns the HTTP handler for the collector
// endpoint: it decodes ShipBatch POSTs and ingests the spans into t.
func NewCollectorHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxShipBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch ShipBatch
		if err := json.Unmarshal(body, &batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		skew := time.Duration(0)
		if !batch.Epoch.IsZero() {
			skew = batch.Epoch.Sub(t.Epoch())
		}
		t.Ingest(batch.Spans, skew)
		w.WriteHeader(http.StatusOK)
	})
}

// Shipper periodically drains a tracer and POSTs the batches to a
// collector URL. It is deliberately lossy-tolerant: a failed ship is
// retried next tick with the union of old and new spans, and a final
// Flush on Stop ships whatever remains.
type Shipper struct {
	tr       *Tracer
	node     string
	url      string
	client   *http.Client
	interval time.Duration

	mu      sync.Mutex
	backlog []SpanData
	stop    chan struct{}
	done    chan struct{}
}

// NewShipper creates a shipper sending t's finished spans to the
// collector at url (e.g. "http://coord:7600/v1/spans") every interval
// (0 = 500ms). Call Start to begin and Stop to flush and halt.
func NewShipper(t *Tracer, node, url string, interval time.Duration) *Shipper {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Shipper{
		tr: t, node: node, url: url,
		client:   &http.Client{Timeout: 10 * time.Second},
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the shipping loop.
func (sh *Shipper) Start() {
	go func() {
		defer close(sh.done)
		tick := time.NewTicker(sh.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sh.ship()
			case <-sh.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and ships one final batch so no finished span is
// stranded on the node.
func (sh *Shipper) Stop() {
	close(sh.stop)
	<-sh.done
	sh.ship()
}

// Flush ships immediately (tests and pre-exit hooks).
func (sh *Shipper) Flush() error { return sh.ship() }

func (sh *Shipper) ship() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.backlog = append(sh.backlog, sh.tr.Drain()...)
	if len(sh.backlog) == 0 {
		return nil
	}
	body, err := json.Marshal(ShipBatch{Node: sh.node, Epoch: sh.tr.Epoch(), Spans: sh.backlog})
	if err != nil {
		return err
	}
	resp, err := sh.client.Post(sh.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err // keep backlog; retried next tick
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: ship: collector returned %s", resp.Status)
	}
	sh.backlog = nil
	return nil
}
