package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a latency histogram: bucket k
// holds durations in [2^(k-1), 2^k) microseconds (bucket 0 is < 1 µs),
// so 48 buckets span sub-microsecond to ~8.9 years — log-spaced, fixed
// memory, one atomic add per observation.
const histBuckets = 48

// Hist is one log-bucketed latency histogram. Observations are a
// single atomic increment; snapshots are lock-free reads, so a
// /debug/hist scrape never stalls the campaign writing to it.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k) µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpperUs returns the exclusive upper bound of bucket b in
// microseconds.
func bucketUpperUs(b int) float64 {
	return float64(uint64(1) << uint(b))
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// HistSnapshot is a point-in-time summary of one histogram. Quantiles
// are bucket upper bounds (a conservative estimate: the true quantile
// is at most the reported value, within one power of two).
type HistSnapshot struct {
	Name   string
	Count  int64
	MeanUs float64
	P50Us  float64
	P90Us  float64
	P99Us  float64
	MaxUs  float64
	// Buckets holds the non-empty buckets as (upper bound µs, count)
	// pairs, for callers that want the full shape.
	Buckets []HistBucket
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	UpperUs float64
	Count   int64
}

// Snapshot summarizes the histogram. Writers may race with the reads —
// each bucket is read atomically, so counts are never torn, merely up
// to one observation apart between buckets.
func (h *Hist) Snapshot(name string) HistSnapshot {
	s := HistSnapshot{Name: name}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		s.Count += counts[i]
	}
	if s.Count == 0 {
		return s
	}
	s.MeanUs = float64(h.sumNs.Load()) / float64(s.Count) / 1e3
	s.MaxUs = float64(h.maxNs.Load()) / 1e3
	quantile := func(q float64) float64 {
		target := int64(q*float64(s.Count-1)) + 1
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return bucketUpperUs(i)
			}
		}
		return bucketUpperUs(histBuckets - 1)
	}
	s.P50Us = quantile(0.50)
	s.P90Us = quantile(0.90)
	s.P99Us = quantile(0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperUs: bucketUpperUs(i), Count: c})
		}
	}
	return s
}

// Merge folds a snapshot taken on another node into this histogram —
// the cross-node aggregation path: each worker snapshots its per-stage
// Hist, ships it inside warehouse records or span batches, and the
// warehouse Merges them into fleet-wide percentiles. Every update is an
// atomic add/CAS, so Merge is safe against concurrent Observe and
// concurrent Merges from other nodes.
func (h *Hist) Merge(snap HistSnapshot) {
	var n int64
	for _, b := range snap.Buckets {
		i := bits.Len64(uint64(b.UpperUs)) - 1 // invert bucketUpperUs: 2^i → i
		if i < 0 {
			i = 0
		}
		if i >= histBuckets {
			i = histBuckets - 1
		}
		h.counts[i].Add(b.Count)
		n += b.Count
	}
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sumNs.Add(int64(snap.MeanUs * 1e3 * float64(snap.Count)))
	maxNs := int64(snap.MaxUs * 1e3)
	for {
		cur := h.maxNs.Load()
		if maxNs <= cur || h.maxNs.CompareAndSwap(cur, maxNs) {
			break
		}
	}
}

// Merge folds a set of remote snapshots into this registry by name.
func (s *HistSet) Merge(snaps []HistSnapshot) {
	for _, snap := range snaps {
		s.Hist(snap.Name).Merge(snap)
	}
}

// HistSet is a registry of histograms keyed by span name, with the same
// read-mostly locking idiom as metrics.Counters.
type HistSet struct {
	mu sync.RWMutex
	m  map[string]*Hist
}

// NewHistSet creates an empty registry.
func NewHistSet() *HistSet { return &HistSet{m: map[string]*Hist{}} }

// Hist returns the named histogram, registering it on first use.
func (s *HistSet) Hist(name string) *Hist {
	s.mu.RLock()
	h, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok = s.m[name]; !ok {
		h = &Hist{}
		s.m[name] = h
	}
	return h
}

// Observe records one duration into the named histogram.
func (s *HistSet) Observe(name string, d time.Duration) { s.Hist(name).Observe(d) }

// Snapshots summarizes every histogram, sorted by name.
func (s *HistSet) Snapshots() []HistSnapshot {
	s.mu.RLock()
	names := make([]string, 0, len(s.m))
	for k := range s.m {
		names = append(names, k)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]HistSnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, s.Hist(n).Snapshot(n))
	}
	return out
}

// Write renders one "name count=N mean_us=X p50_us=X p90_us=X p99_us=X
// max_us=X" line per histogram, sorted by name — the /debug/hist and
// /metrics exposition format.
func (s *HistSet) Write(w io.Writer) {
	for _, snap := range s.Snapshots() {
		fmt.Fprintf(w, "%s count=%d mean_us=%.1f p50_us=%g p90_us=%g p99_us=%g max_us=%.1f\n",
			snap.Name, snap.Count, snap.MeanUs, snap.P50Us, snap.P90Us, snap.P99Us, snap.MaxUs)
	}
}
