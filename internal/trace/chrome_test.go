package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// buildDeterministicTrace emits a small fixed span tree under a fake
// clock: two "points" each with two stages, one detached sync, one
// hung stage — every outcome and nesting shape the exporter must
// render. Ids and timestamps are fully deterministic.
func buildDeterministicTrace() *Tracer {
	tr := New(0)
	clk := &fakeClock{step: time.Millisecond}
	tr.SetClock(clk.now)
	Enable(tr)
	defer Disable()

	ctx, run := Start(context.Background(), "campaign.run")
	run.SetInt("points", 2)
	for i := 0; i < 2; i++ {
		pctx, pt := Start(ctx, "campaign.point")
		pt.SetInt("index", int64(i))
		_, syn := Start(pctx, "flow.synth")
		syn.End()
		_, rt := Start(pctx, "flow.droute")
		if i == 1 {
			rt.EndWith(Hung)
			pt.EndWith(Retry)
		} else {
			rt.End()
			pt.EndWith(CacheHit)
		}
	}
	sync := Begin("journal.sync")
	sync.End()
	run.End()
	return tr
}

// TestChromeTraceGolden pins the exact exporter output for a
// deterministic span tree. Regenerate with:
//
//	go test ./internal/trace -run TestChromeTraceGolden -update-golden
func TestChromeTraceGolden(t *testing.T) {
	tr := buildDeterministicTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceValid decodes the export as JSON and checks the
// trace_event contract: complete events, µs units, children inside
// their parent's time range and on their root's lane.
func TestChromeTraceValid(t *testing.T) {
	tr := buildDeterministicTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(out.TraceEvents))
	}
	spans, _ := tr.Snapshot()
	lanes := map[uint64]bool{}
	for i, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: phase %q, want complete event X", i, ev.Ph)
		}
		if ev.Pid != 1 || ev.Tid == 0 {
			t.Fatalf("event %d: pid=%d tid=%d", i, ev.Pid, ev.Tid)
		}
		if ev.Args["outcome"] == "" {
			t.Fatalf("event %d: missing outcome arg", i)
		}
		if ev.Cat != category(ev.Name) {
			t.Fatalf("event %d: cat %q for %q", i, ev.Cat, ev.Name)
		}
		// Events are exported sorted by start.
		if ev.Ts != float64(spans[i].Start.Nanoseconds())/1e3 {
			t.Fatalf("event %d: ts %v, span start %v", i, ev.Ts, spans[i].Start)
		}
		lanes[ev.Tid] = true
	}
	// campaign.run + its children share one lane; journal.sync is its
	// own root lane.
	if len(lanes) != 2 {
		t.Fatalf("got %d lanes, want 2", len(lanes))
	}
}
