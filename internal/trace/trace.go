// Package trace is the flow-wide tracing layer of the reproduction: the
// paper's METRICS premise ("collect everything" — Fig. 11) applied to
// the orchestration infrastructure itself. Every interesting unit of
// work — a campaign point, a flow stage, a detailed-routing rip-up
// pass, a license-queue wait, a journal fsync — is a span: a named,
// timed interval with an outcome, attributes, and a parent, so a whole
// overnight campaign reconstructs into one hierarchical timeline.
//
// Spans propagate through context.Context, record into a lock-sharded
// in-memory collector, and feed per-name log-bucketed latency
// histograms (p50/p90/p99 snapshots). A finished trace exports as
// Chrome trace_event JSON (see chrome.go) and opens directly in
// chrome://tracing or Perfetto; live spans are visible on the METRICS
// server's /debug/spans endpoint while the campaign is still running.
//
// Tracing is off by default and must cost nothing when off: Start on a
// disabled tracer is a single atomic load + nil check, every *Span
// method is nil-safe, and callers attach attributes through those
// nil-safe methods so the disabled path never allocates.
package trace

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a span ended.
type Outcome string

const (
	// OK is a span that completed normally (the default on End).
	OK Outcome = "ok"
	// CacheHit is a span served from the memo cache instead of computed.
	CacheHit Outcome = "cache-hit"
	// Retry is a failed attempt that will be re-run.
	Retry Outcome = "retry"
	// Hung is a span reaped by the hung-stage watchdog.
	Hung Outcome = "hung"
	// Aborted is a span killed by context cancellation.
	Aborted Outcome = "aborted"
	// Stopped is a run terminated live by a doomed-run supervisor.
	Stopped Outcome = "stopped"
	// Failed is a permanent failure (fault with retries exhausted,
	// append error, ...).
	Failed Outcome = "failed"
)

// Attr is one key/value annotation on a span. Values are strings; use
// the Span.Set* helpers to format numbers without paying when tracing
// is off.
type Attr struct {
	Key string
	Val string
}

// SpanData is one finished span as the collector retains it.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Start  time.Duration // offset from the tracer epoch
	Dur    time.Duration
	Outcome Outcome
	Attrs  []Attr
}

// Span is an in-flight span. The zero of *Span is nil, and every method
// is a no-op on a nil receiver — the disabled-tracer fast path.
// A span is owned by the goroutine that started it; only the immutable
// identity fields (ID, Parent, Name, start) are read concurrently by
// the live-span snapshot.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	root   uint64 // root ancestor id — the trace id this span belongs to
	name   string
	start  time.Duration
	attrs  []Attr
	out    Outcome
	ended  atomic.Bool
}

// shardCount is a power of two so shard selection is a mask.
const shardCount = 16

type shard struct {
	mu   sync.Mutex
	done []SpanData
	live map[uint64]*Span
}

// Tracer collects spans. Create one with New, arm it process-wide with
// Enable, and export with WriteChromeTrace / Snapshot / Histograms.
type Tracer struct {
	epoch time.Time
	// now returns the monotonic offset from epoch; tests replace it for
	// deterministic timestamps.
	now func() time.Duration

	ids    atomic.Uint64
	shards [shardCount]shard
	hists  *HistSet

	// limit caps retained finished spans per shard (oldest dropped);
	// <= 0 means unbounded.
	limitPerShard int
	dropped       atomic.Int64
}

// DefaultRetention is the finished-span cap the CLIs arm by default:
// 64k spans at ~128 bytes each (SpanData plus a few attrs) bounds the
// collector near 8 MB however long the campaign runs. Override with
// Config.Retention / the -span-retention flag.
const DefaultRetention = 1 << 16

// Config parameterizes a tracer beyond the retention cap.
type Config struct {
	// Retention caps retained finished spans: 0 selects
	// DefaultRetention, < 0 is unbounded.
	Retention int
	// NodeID namespaces span ids: ids are allocated from
	// NodeID<<48 + 1 upward, so spans from up to 65536 processes can be
	// shipped to one collector without id collisions (2^48 spans per
	// node before wraparound — far beyond any campaign).
	NodeID uint16
}

// New creates a tracer retaining up to limit finished spans
// (limit <= 0 = unbounded). Histograms and live-span tracking are
// always on; only the finished-span buffer is bounded.
func New(limit int) *Tracer {
	return NewCfg(Config{Retention: pickRetention(limit)})
}

// pickRetention maps New's legacy limit (0 = unbounded) onto Config's
// (0 = default, <0 = unbounded).
func pickRetention(limit int) int {
	if limit <= 0 {
		return -1
	}
	return limit
}

// NewCfg creates a tracer from a Config.
func NewCfg(cfg Config) *Tracer {
	t := &Tracer{epoch: time.Now(), hists: NewHistSet()}
	t.now = func() time.Duration { return time.Since(t.epoch) }
	t.ids.Store(uint64(cfg.NodeID) << 48)
	limit := cfg.Retention
	if limit == 0 {
		limit = DefaultRetention
	}
	if limit > 0 {
		t.limitPerShard = (limit + shardCount - 1) / shardCount
	}
	for i := range t.shards {
		t.shards[i].live = map[uint64]*Span{}
	}
	return t
}

// Epoch returns the tracer's wall-clock origin: span Start offsets are
// relative to it, and the collector uses the difference between two
// tracers' epochs to shift shipped spans onto its own timeline.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// SetClock replaces the tracer's clock with a deterministic one (tests:
// golden traces need stable timestamps). Must be called before any span
// starts.
func (t *Tracer) SetClock(now func() time.Duration) { t.now = now }

// active is the process-wide tracer; nil = tracing off.
var active atomic.Pointer[Tracer]

// Enable arms t as the process-wide tracer (nil disables).
func Enable(t *Tracer) {
	if t == nil {
		active.Store(nil)
		return
	}
	active.Store(t)
}

// Disable turns process-wide tracing off.
func Disable() { active.Store(nil) }

// Active returns the armed tracer, or nil when tracing is off.
func Active() *Tracer { return active.Load() }

// Enabled reports whether tracing is armed.
func Enabled() bool { return active.Load() != nil }

// ctxKey carries the current span through a context.
type ctxKey struct{}

// remoteKey carries an adopted remote parent (a span living in another
// process's tracer) through a context — the receiving half of the
// Trace-Id/Span-Id RPC headers.
type remoteKey struct{}

type remoteRef struct {
	trace uint64 // remote root ancestor id
	span  uint64 // remote parent span id
}

// FromContext returns the span carried by ctx (nil if none or tracing
// is off).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Inject extracts the propagation identity of the span in ctx: the
// trace id (root ancestor) and the span id to parent remote children
// under. Both are 0 when ctx carries no span — callers skip stamping
// headers in that case.
func Inject(ctx context.Context) (traceID, spanID uint64) {
	if s := FromContext(ctx); s != nil {
		return s.root, s.id
	}
	return 0, 0
}

// Adopt returns a context under which the next Start parents its span
// on the remote span (traceID, spanID) — the span id stamped by a peer
// process's Inject. A zero spanID returns ctx unchanged. A local span
// already in ctx wins over the remote ref (an in-process caller's chain
// is always more precise than a header).
func Adopt(ctx context.Context, traceID, spanID uint64) context.Context {
	if spanID == 0 {
		return ctx
	}
	if traceID == 0 {
		traceID = spanID
	}
	return context.WithValue(ctx, remoteKey{}, remoteRef{trace: traceID, span: spanID})
}

// Start begins a span named name as a child of the span in ctx (root if
// none) and returns a context carrying it. With tracing disabled it
// returns (ctx, nil) after one atomic load — callers annotate via the
// nil-safe Span methods, so a disabled call site does no work and no
// allocation.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := active.Load()
	if t == nil {
		return ctx, nil
	}
	return t.StartOn(ctx, name)
}

// Begin starts a detached root span with no context — for call sites
// that have no context to thread (journal fsync under a mutex). Returns
// nil when tracing is off.
func Begin(name string) *Span {
	t := active.Load()
	if t == nil {
		return nil
	}
	return t.start(name, 0, 0)
}

// StartOn begins a span on an explicit tracer (tests and tools that
// don't want the process-wide one).
func (t *Tracer) StartOn(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent, root uint64
	if p := FromContext(ctx); p != nil {
		parent, root = p.id, p.root
	} else if rp, ok := ctx.Value(remoteKey{}).(remoteRef); ok {
		parent, root = rp.span, rp.trace
	}
	s := t.start(name, parent, root)
	return context.WithValue(ctx, ctxKey{}, s), s
}

func (t *Tracer) start(name string, parent, root uint64) *Span {
	s := &Span{
		tr:     t,
		id:     t.ids.Add(1),
		parent: parent,
		root:   root,
		name:   name,
		start:  t.now(),
	}
	if s.root == 0 {
		if parent != 0 {
			s.root = parent
		} else {
			s.root = s.id
		}
	}
	sh := &t.shards[s.id&(shardCount-1)]
	sh.mu.Lock()
	sh.live[s.id] = s
	sh.mu.Unlock()
	return s
}

// ID returns the span id (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Set attaches a string attribute. No-op on nil.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, val})
}

// SetInt attaches an integer attribute. No-op on nil — the formatting
// cost is only paid when tracing is armed.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatInt(val, 10)})
}

// SetFloat attaches a float attribute. No-op on nil.
func (s *Span) SetFloat(key string, val float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatFloat(val, 'g', -1, 64)})
}

// SetOutcome records the span outcome without ending it. No-op on nil.
func (s *Span) SetOutcome(o Outcome) {
	if s == nil {
		return
	}
	s.out = o
}

// End finishes the span with its recorded outcome (OK if none was set).
// No-op on nil; double-End is safe and keeps the first.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	if s.out == "" {
		s.out = OK
	}
	dur := s.tr.now() - s.start
	if dur < 0 {
		dur = 0
	}
	s.tr.finish(s, dur)
}

// EndWith finishes the span with an explicit outcome. No-op on nil.
func (s *Span) EndWith(o Outcome) {
	if s == nil {
		return
	}
	s.out = o
	s.End()
}

// EndErr finishes the span with an outcome derived from err: nil = OK,
// context cancellation = Aborted, anything else = Failed. No-op on nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	switch {
	case err == nil:
		s.End()
	case err == context.Canceled || err == context.DeadlineExceeded:
		s.EndWith(Aborted)
	default:
		s.EndWith(Failed)
	}
}

func (t *Tracer) finish(s *Span, dur time.Duration) {
	sd := SpanData{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Dur: dur, Outcome: s.out, Attrs: s.attrs,
	}
	sh := &t.shards[s.id&(shardCount-1)]
	sh.mu.Lock()
	delete(sh.live, s.id)
	sh.done = append(sh.done, sd)
	if t.limitPerShard > 0 && len(sh.done) > t.limitPerShard {
		over := len(sh.done) - t.limitPerShard
		sh.done = append(sh.done[:0], sh.done[over:]...)
		t.dropped.Add(int64(over))
	}
	sh.mu.Unlock()
	t.hists.Observe(s.name, dur)
}

// Snapshot returns every retained finished span, sorted by start time
// (ties by id), plus the count of spans dropped to the retention limit.
func (t *Tracer) Snapshot() (spans []SpanData, dropped int64) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		spans = append(spans, sh.done...)
		sh.mu.Unlock()
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	return spans, t.dropped.Load()
}

// LiveSpan is a point-in-time view of an unfinished span.
type LiveSpan struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Duration
	Age    time.Duration
}

// Live snapshots the currently in-flight spans, oldest first — the
// "what is my campaign doing right now" view behind /debug/spans.
// Only identity fields are read; attributes stay owned by the span's
// goroutine.
func (t *Tracer) Live() []LiveSpan {
	now := t.now()
	var out []LiveSpan
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.live {
			out = append(out, LiveSpan{
				ID: s.id, Parent: s.parent, Name: s.name,
				Start: s.start, Age: now - s.start,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Drain removes and returns every retained finished span, sorted like
// Snapshot. It is the shipping half of span collection: a worker drains
// its tracer periodically and POSTs the batch to the coordinator's
// collector, so retention memory does not accumulate on the node.
func (t *Tracer) Drain() []SpanData {
	var spans []SpanData
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		spans = append(spans, sh.done...)
		sh.done = nil
		sh.mu.Unlock()
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	return spans
}

// Ingest inserts finished spans shipped from another tracer, shifting
// each Start by skew (shipper epoch minus this tracer's epoch) so all
// nodes land on one timeline. Span ids must be pre-namespaced via
// Config.NodeID. Durations feed this tracer's histograms, giving the
// collector fleet-wide percentiles.
func (t *Tracer) Ingest(spans []SpanData, skew time.Duration) {
	for _, sd := range spans {
		sd.Start += skew
		sh := &t.shards[sd.ID&(shardCount-1)]
		sh.mu.Lock()
		sh.done = append(sh.done, sd)
		if t.limitPerShard > 0 && len(sh.done) > t.limitPerShard {
			over := len(sh.done) - t.limitPerShard
			sh.done = append(sh.done[:0], sh.done[over:]...)
			t.dropped.Add(int64(over))
		}
		sh.mu.Unlock()
		t.hists.Observe(sd.Name, sd.Dur)
	}
}

// Histograms returns the tracer's per-span-name latency histograms.
func (t *Tracer) Histograms() *HistSet { return t.hists }

// Len reports the number of retained finished spans.
func (t *Tracer) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.done)
		sh.mu.Unlock()
	}
	return n
}
