package trace

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestInjectAdoptHTTP proves the header round-trip: a span's identity
// crosses process boundaries and the receiving side's span parents
// under it with the original trace id.
func TestInjectAdoptHTTP(t *testing.T) {
	tr := New(0)
	ctx, root := tr.StartOn(context.Background(), "root")
	ctx, parent := tr.StartOn(ctx, "parent")

	h := http.Header{}
	InjectHTTP(ctx, h)
	if h.Get(TraceIDHeader) == "" || h.Get(SpanIDHeader) == "" {
		t.Fatalf("InjectHTTP stamped nothing: %v", h)
	}

	// The "remote" side: a different tracer adopting the headers.
	remote := NewCfg(Config{Retention: -1, NodeID: 7})
	rctx := AdoptHTTP(context.Background(), h)
	_, child := remote.StartOn(rctx, "child")
	child.End()
	parent.End()
	root.End()

	spans := remote.Drain()
	if len(spans) != 1 {
		t.Fatalf("remote tracer has %d spans, want 1", len(spans))
	}
	if spans[0].Parent != parent.ID() {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, parent.ID())
	}
	if spans[0].ID>>48 != 7 {
		t.Fatalf("child id %#x not in node namespace 7", spans[0].ID)
	}
}

// TestAdoptLocalWins: an in-process span in the context shadows any
// adopted remote ref.
func TestAdoptLocalWins(t *testing.T) {
	tr := New(0)
	ctx := Adopt(context.Background(), 999, 999)
	ctx, local := tr.StartOn(ctx, "local")
	if local.parent != 999 {
		t.Fatalf("first span parent = %d, want adopted 999", local.parent)
	}
	_, child := tr.StartOn(ctx, "child")
	if child.parent != local.ID() {
		t.Fatalf("child parent = %d, want local span %d", child.parent, local.ID())
	}
}

// TestRootThreading: every span carries the id of its root ancestor, so
// Inject propagates the trace id unchanged through deep chains.
func TestRootThreading(t *testing.T) {
	tr := New(0)
	ctx, a := tr.StartOn(context.Background(), "a")
	ctx, _ = tr.StartOn(ctx, "b")
	ctx, _ = tr.StartOn(ctx, "c")
	traceID, _ := Inject(ctx)
	if traceID != a.ID() {
		t.Fatalf("trace id = %d, want root %d", traceID, a.ID())
	}
}

// TestCollectorEndToEnd ships spans from a node tracer to a collector
// tracer over real HTTP and checks they land with skew-corrected
// timestamps and feed the collector's histograms.
func TestCollectorEndToEnd(t *testing.T) {
	coll := New(0)
	srv := httptest.NewServer(NewCollectorHandler(coll))
	defer srv.Close()

	node := NewCfg(Config{Retention: -1, NodeID: 3})
	_, sp := node.StartOn(context.Background(), "work")
	sp.Set("node", "w3")
	sp.End()

	sh := NewShipper(node, "w3", srv.URL, time.Hour) // manual flushes only
	if err := sh.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if node.Len() != 0 {
		t.Fatalf("node retains %d spans after ship, want 0", node.Len())
	}
	spans, _ := coll.Snapshot()
	if len(spans) != 1 || spans[0].Name != "work" {
		t.Fatalf("collector has %v, want one 'work' span", spans)
	}
	if spans[0].ID>>48 != 3 {
		t.Fatalf("ingested id %#x lost its node namespace", spans[0].ID)
	}
	found := false
	for _, hs := range coll.Histograms().Snapshots() {
		if hs.Name == "work" && hs.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingest did not feed the collector histogram")
	}
}

// TestIngestRetention: ingested spans respect the retention cap and
// count drops.
func TestIngestRetention(t *testing.T) {
	tr := NewCfg(Config{Retention: shardCount}) // one retained span per shard
	var spans []SpanData
	for i := 1; i <= 10*shardCount; i++ {
		spans = append(spans, SpanData{ID: uint64(i), Name: "x"})
	}
	tr.Ingest(spans, 0)
	if tr.Len() != shardCount {
		t.Fatalf("retained %d spans, want %d", tr.Len(), shardCount)
	}
	if _, dropped := tr.Snapshot(); dropped != int64(9*shardCount) {
		t.Fatalf("dropped = %d, want %d", dropped, 9*shardCount)
	}
}

// TestHistMergeAcrossNodes is the satellite -race coverage: N "node"
// histograms observed concurrently, snapshotted, and merged into one
// fleet histogram while it is itself still being observed — counts must
// be exact (torn-free) and quantile buckets preserved.
func TestHistMergeAcrossNodes(t *testing.T) {
	const nodes = 4
	const perNode = 1000
	fleet := &Hist{}
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			local := &Hist{}
			for i := 0; i < perNode; i++ {
				local.Observe(time.Duration(i%100) * time.Microsecond)
			}
			fleet.Merge(local.Snapshot("stage"))
		}(n)
		// Concurrent direct observation (the collector's own ingest path)
		// must not tear the merge.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				fleet.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := fleet.Snapshot("stage")
	if want := int64(2 * nodes * perNode); snap.Count != want {
		t.Fatalf("merged count = %d, want %d", snap.Count, want)
	}
	if snap.MaxUs < 64 { // max observed is 99µs -> bucket cap >= 64µs upper bound holds exact max
		t.Fatalf("merged max %.1fµs lost the node maxima", snap.MaxUs)
	}
}

// TestHistSetMerge merges by name through the registry.
func TestHistSetMerge(t *testing.T) {
	a, b := NewHistSet(), NewHistSet()
	a.Observe("s", time.Millisecond)
	a.Observe("t", time.Millisecond)
	b.Merge(a.Snapshots())
	b.Merge(a.Snapshots())
	for _, name := range []string{"s", "t"} {
		if got := b.Hist(name).Snapshot(name).Count; got != 2 {
			t.Fatalf("%s count = %d, want 2", name, got)
		}
	}
}
