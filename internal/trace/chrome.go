package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event "complete" event (ph "X"): the
// format chrome://tracing and Perfetto load directly. Timestamps and
// durations are microseconds.
//
// Lane assignment: pid is constant, tid is the span's root ancestor id,
// so each campaign point (or other root span — a detached journal sync,
// a whole campaign.run) renders as its own horizontal track with its
// children nested inside by time range.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object ({"traceEvents": [...]}) —
// the object form, so viewers that require metadata keys still load it.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DroppedSpans reports finished spans evicted by the tracer's
	// retention limit; a non-zero value means the timeline has holes.
	DroppedSpans int64 `json:"droppedSpans,omitempty"`
}

// category returns the span name's leading dotted segment ("flow.synth"
// -> "flow"), used as the Chrome event category for per-subsystem
// filtering in the viewer.
func category(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// WriteChromeTrace exports every retained finished span as Chrome
// trace_event JSON. Events are sorted by start time then id, so the
// output is stable for a deterministic span set (fixed clock, fixed id
// order). Live (unfinished) spans are not exported — export after the
// campaign completes, or accept holes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, dropped := t.Snapshot()

	// Root resolution: walk parents to assign each span its lane.
	parentOf := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	rootCache := make(map[uint64]uint64, len(spans))
	var rootOf func(id uint64) uint64
	rootOf = func(id uint64) uint64 {
		if r, ok := rootCache[id]; ok {
			return r
		}
		p, ok := parentOf[id]
		r := id
		if ok && p != 0 {
			// A parent missing from the snapshot (still live, or evicted)
			// terminates the walk at the deepest known ancestor.
			if _, known := parentOf[p]; known {
				r = rootOf(p)
			} else {
				r = p
			}
		}
		rootCache[id] = r
		return r
	}

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DroppedSpans: dropped}
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+1)
		args["outcome"] = string(s.Outcome)
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  category(s.Name),
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  rootOf(s.ID),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
