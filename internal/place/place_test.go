package place

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestPlaceImprovesHPWL(t *testing.T) {
	n := tiny(1)
	res := Place(n, Options{Seed: 1})
	if res.HPWLUm >= res.InitialHPWLUm {
		t.Fatalf("SA did not improve HPWL: %v -> %v", res.InitialHPWLUm, res.HPWLUm)
	}
	if res.HPWLUm != n.TotalHPWL() {
		t.Fatalf("reported HPWL %v != netlist HPWL %v", res.HPWLUm, n.TotalHPWL())
	}
	if res.MovesAccepted == 0 || res.MovesTried == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestPlaceKeepsCellsOnDie(t *testing.T) {
	n := tiny(2)
	res := Place(n, Options{Seed: 2})
	for i := range n.Insts {
		if n.Insts[i].X < 0 || n.Insts[i].X > res.Width || n.Insts[i].Y < 0 || n.Insts[i].Y > res.Height {
			t.Fatalf("inst %d at (%v,%v) outside die %vx%v", i, n.Insts[i].X, n.Insts[i].Y, res.Width, res.Height)
		}
	}
}

func TestPlaceNoOverlap(t *testing.T) {
	n := tiny(3)
	Place(n, Options{Seed: 3})
	seen := make(map[[2]int]int)
	for i := range n.Insts {
		key := [2]int{int(n.Insts[i].X * 100), int(n.Insts[i].Y * 100)}
		if prev, ok := seen[key]; ok {
			t.Fatalf("inst %d and %d share slot (%v,%v)", prev, i, n.Insts[i].X, n.Insts[i].Y)
		}
		seen[key] = i
	}
}

func TestPlaceDeterministic(t *testing.T) {
	a, b := tiny(4), tiny(4)
	ra := Place(a, Options{Seed: 9})
	rb := Place(b, Options{Seed: 9})
	if ra.HPWLUm != rb.HPWLUm {
		t.Fatalf("same seed, different HPWL: %v vs %v", ra.HPWLUm, rb.HPWLUm)
	}
	for i := range a.Insts {
		if a.Insts[i].X != b.Insts[i].X || a.Insts[i].Y != b.Insts[i].Y {
			t.Fatalf("same seed, inst %d at different locations", i)
		}
	}
}

func TestSeedsGiveDifferentBasins(t *testing.T) {
	n := tiny(5)
	r1 := Place(n, Options{Seed: 1})
	s1 := Snapshot(n)
	r2 := Place(n, Options{Seed: 2})
	s2 := Snapshot(n)
	if r1.HPWLUm == r2.HPWLUm && Distance(s1, s2) == 0 {
		t.Fatal("different seeds converged to identical placement")
	}
	if Distance(s1, s2) <= 0 {
		t.Fatal("expected nonzero placement distance between seeds")
	}
}

func TestMoreMovesNotWorse(t *testing.T) {
	n := tiny(6)
	short := Place(n, Options{Seed: 7, Moves: 2000})
	long := Place(n, Options{Seed: 7, Moves: 60000})
	if long.HPWLUm > short.HPWLUm*1.1 {
		t.Errorf("30x more moves much worse: %v vs %v", long.HPWLUm, short.HPWLUm)
	}
}

func TestPartitionedPlacement(t *testing.T) {
	n := tiny(7)
	flat := Place(n, Options{Seed: 5})
	n2 := tiny(7)
	part := Place(n2, Options{Seed: 5, Partitions: 2})
	if part.HPWLUm <= 0 {
		t.Fatal("partitioned placement produced no result")
	}
	// Partitioning restricts moves, so runtime proxy (cost evals per
	// tried move budget) should not explode and result should be within
	// a reasonable factor of flat.
	if part.HPWLUm > flat.HPWLUm*2 {
		t.Errorf("partitioned HPWL %v more than 2x flat %v", part.HPWLUm, flat.HPWLUm)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	n := tiny(8)
	Place(n, Options{Seed: 1, Moves: 3000})
	s := Snapshot(n)
	h := n.TotalHPWL()
	Place(n, Options{Seed: 2, Moves: 3000})
	Restore(n, s)
	if math.Abs(n.TotalHPWL()-h) > 1e-9 {
		t.Fatalf("restore did not recover HPWL: %v vs %v", n.TotalHPWL(), h)
	}
}

func TestDistanceProperties(t *testing.T) {
	n := tiny(9)
	s1 := Snapshot(n)
	if Distance(s1, s1) != 0 {
		t.Error("self distance must be 0")
	}
	s2 := append([]float64(nil), s1...)
	s2[0] += 10
	if got := Distance(s1, s2); math.Abs(got-10/float64(n.NumCells())) > 1e-9 {
		t.Errorf("distance = %v", got)
	}
	if Distance(s1, s1[:2]) != 0 {
		t.Error("mismatched lengths should return 0")
	}
}

func TestRuntimeProxyGrowsWithMoves(t *testing.T) {
	n := tiny(10)
	a := Place(n, Options{Seed: 1, Moves: 2000})
	b := Place(n, Options{Seed: 1, Moves: 20000})
	if b.RuntimeProxy <= a.RuntimeProxy {
		t.Errorf("runtime proxy should grow with moves: %d vs %d", a.RuntimeProxy, b.RuntimeProxy)
	}
}

func BenchmarkPlaceTiny(b *testing.B) {
	n := tiny(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Place(n, Options{Seed: int64(i)})
	}
}
