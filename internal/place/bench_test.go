package place

import (
	"sync"
	"testing"

	"repro/internal/netlist"
)

// benchNetlist is the shared placement benchmark workload: a large,
// high-locality design where the annealer's per-move evaluation cost
// dominates. Place re-seeds its own grid from Options.Seed, so reusing
// one netlist across iterations and benchmarks is safe.
var benchNetlist = sync.OnceValue(func() *netlist.Netlist {
	return netlist.Generate(lib(), netlist.Spec{
		Name: "place-bench", Seed: 1,
		NumComb: 6000, NumFFs: 600, Levels: 12,
		Locality: 0.85, NumPIs: 48, ClockPeriodPs: 1500,
	})
})

func benchmarkPlace(b *testing.B, workers int) {
	n := benchNetlist()
	opts := Options{Seed: 7, Moves: 30 * n.NumCells(), Workers: workers, Batch: 4096}
	var res Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Place(n, opts)
	}
	// QoR metrics for the check.sh gate: the speculative engine is
	// worker-invariant, so serial (Workers=1) and parallel must report
	// byte-identical values here.
	b.ReportMetric(res.HPWLUm, "hpwl")
	b.ReportMetric(float64(res.MovesAccepted), "accepted")
	b.ReportMetric(float64(res.MovesConflicted), "conflicted")
	// Speculation efficiency of the adaptive batch policy: committed
	// work per discarded speculation, and where the batch settled.
	conf := res.MovesConflicted
	if conf == 0 {
		conf = 1
	}
	b.ReportMetric(float64(res.MovesAccepted)/float64(conf), "accept_per_conflict")
	b.ReportMetric(float64(res.BatchFinal), "batch_final")
}

// BenchmarkPlaceSerial is the reference: the speculative engine with a
// crew of one — the identical batch/commit protocol, zero concurrency.
func BenchmarkPlaceSerial(b *testing.B) { benchmarkPlace(b, 1) }

// BenchmarkPlaceParallel runs the same protocol on a 20-worker gang.
func BenchmarkPlaceParallel(b *testing.B) { benchmarkPlace(b, 20) }
