package place

import (
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func lib() *cellib.Library { return cellib.Default14nm() }

// coords flattens the placement into a comparable snapshot.
func coords(n *netlist.Netlist) []float64 { return Snapshot(n) }

func sameCoords(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelPlaceWorkerInvariant is the acceptance-criteria table
// test: the speculative annealer must be bit-identical at every worker
// count, across presets, partition counts and the resample flag. The
// Workers=1 run is the reference — it executes the exact same
// batch/commit protocol with zero concurrency.
func TestParallelPlaceWorkerInvariant(t *testing.T) {
	cases := []struct {
		name string
		spec netlist.Spec
		opts Options
	}{
		{"tiny/flat", netlist.Tiny(3), Options{Seed: 11}},
		{"tiny/partitioned", netlist.Tiny(4), Options{Seed: 12, Partitions: 2}},
		{"tiny/resample", netlist.Tiny(5), Options{Seed: 13, Partitions: 2, ResampleCrossRegion: true}},
		{"artificial/flat", netlist.Artificial(6), Options{Seed: 14}},
		{"artificial/partitioned", netlist.Artificial(7), Options{Seed: 15, Partitions: 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := netlist.Generate(lib(), tc.spec)
			opts := tc.opts
			opts.Moves = 40 * base.NumCells()
			opts.Workers = 1
			ref := Place(base, opts)
			refCoords := coords(base)
			for _, w := range []int{2, 4, 8} {
				n := netlist.Generate(lib(), tc.spec)
				o := opts
				o.Workers = w
				got := Place(n, o)
				if got.HPWLUm != ref.HPWLUm {
					t.Fatalf("workers=%d: HPWL %v != reference %v", w, got.HPWLUm, ref.HPWLUm)
				}
				if got.MovesTried != ref.MovesTried || got.MovesAccepted != ref.MovesAccepted ||
					got.MovesConflicted != ref.MovesConflicted || got.MovesResampled != ref.MovesResampled ||
					got.RuntimeProxy != ref.RuntimeProxy || got.BatchFinal != ref.BatchFinal {
					t.Fatalf("workers=%d: counters diverged:\n ref %+v\n got %+v", w, ref, got)
				}
				if !sameCoords(refCoords, coords(n)) {
					t.Fatalf("workers=%d: placement coordinates diverged", w)
				}
			}
		})
	}
}

// TestParallelPlaceQuality: the speculative engine explores a different
// (equally valid) trajectory than the serial engine, but it must still
// be a working annealer — improving HPWL and landing near the serial
// result.
func TestParallelPlaceQuality(t *testing.T) {
	n1 := tiny(21)
	serial := Place(n1, Options{Seed: 3})
	n2 := tiny(21)
	par := Place(n2, Options{Seed: 3, Workers: 4})
	if par.HPWLUm >= par.InitialHPWLUm {
		t.Fatalf("parallel SA did not improve HPWL: %v -> %v", par.InitialHPWLUm, par.HPWLUm)
	}
	if par.HPWLUm > serial.HPWLUm*1.25 {
		t.Errorf("parallel HPWL %v more than 25%% worse than serial %v", par.HPWLUm, serial.HPWLUm)
	}
	if par.MovesTried+par.MovesConflicted > serial.MovesTried {
		t.Errorf("tried+conflicted %d+%d exceeds move budget %d",
			par.MovesTried, par.MovesConflicted, serial.MovesTried)
	}
}

// TestParallelPlaceRandomizedDifferential fuzzes the invariant: random
// spec, moves, batch, partitioning — Workers=1 and a random Workers in
// 2..8 must agree bit-for-bit on every output.
func TestParallelPlaceRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		spec := netlist.Spec{
			Name: "fuzz", Seed: rng.Int63n(1 << 20),
			NumComb: 60 + rng.Intn(120), NumFFs: 8 + rng.Intn(16),
			Levels: 4 + rng.Intn(6), Locality: 0.4 + 0.5*rng.Float64(),
			NumPIs: 4 + rng.Intn(8), ClockPeriodPs: 1500,
		}
		opts := Options{
			Seed:       rng.Int63n(1 << 20),
			Moves:      2000 + rng.Intn(4000),
			Batch:      32 + rng.Intn(300),
			Partitions: rng.Intn(3),
			Workers:    1,
		}
		if rng.Intn(2) == 1 {
			opts.ResampleCrossRegion = true
		}
		base := netlist.Generate(lib(), spec)
		ref := Place(base, opts)
		refCoords := coords(base)

		w := 2 + rng.Intn(7)
		n := netlist.Generate(lib(), spec)
		o := opts
		o.Workers = w
		got := Place(n, o)
		if got.HPWLUm != ref.HPWLUm || got.MovesTried != ref.MovesTried ||
			got.MovesConflicted != ref.MovesConflicted || got.RuntimeProxy != ref.RuntimeProxy ||
			got.BatchFinal != ref.BatchFinal || !sameCoords(refCoords, coords(n)) {
			t.Fatalf("trial %d (spec seed %d, opts %+v, workers %d): parallel result diverged from workers=1",
				trial, spec.Seed, opts, w)
		}
	}
}

// TestAdaptiveBatchRespondsToConflicts: an oversized batch on a small
// design forces a high conflict fraction, so the adaptive policy must
// shrink the live batch well below the configured maximum; a batch at
// the floor stays pinned there. Either way the result remains a pure
// function of (Seed, Moves, Batch) — the invariance tests above already
// pin that across worker counts.
func TestAdaptiveBatchRespondsToConflicts(t *testing.T) {
	n := tiny(31)
	big := Place(n, Options{Seed: 9, Workers: 4, Batch: 4096, Moves: 40 * n.NumCells()})
	if big.BatchFinal >= 4096 {
		t.Errorf("conflict-heavy anneal never shrank the batch: final %d", big.BatchFinal)
	}
	if big.BatchFinal < adaptBatchFloor {
		t.Errorf("batch adapted below the floor: %d", big.BatchFinal)
	}

	n2 := tiny(31)
	small := Place(n2, Options{Seed: 9, Workers: 4, Batch: 16, Moves: 40 * n2.NumCells()})
	if small.BatchFinal != 16 {
		t.Errorf("batch below the floor must stay clamped at Batch: final %d", small.BatchFinal)
	}

	// The serial engine does not batch at all.
	n3 := tiny(31)
	if serial := Place(n3, Options{Seed: 9}); serial.BatchFinal != 0 {
		t.Errorf("serial engine reported a batch: %d", serial.BatchFinal)
	}
}

// TestResampleCountsCrossRegionMoves: with resampling on, the
// partitioned placer redirects region-crossing proposals instead of
// discarding them, so resampled moves show up in the counter and the
// engine still terminates with the exact move budget spent.
func TestResampleCountsCrossRegionMoves(t *testing.T) {
	n := tiny(30)
	res := Place(n, Options{Seed: 8, Partitions: 2, ResampleCrossRegion: true})
	if res.MovesResampled == 0 {
		t.Fatal("partitioned placement with resampling never redirected a cross-region proposal")
	}
	n2 := tiny(30)
	off := Place(n2, Options{Seed: 8, Partitions: 2})
	if off.MovesResampled != 0 {
		t.Fatalf("resampling off but MovesResampled = %d", off.MovesResampled)
	}
	// Resampling converts burned cooling steps into real attempts.
	if res.MovesTried <= off.MovesTried {
		t.Errorf("resampling should try more moves: %d vs %d", res.MovesTried, off.MovesTried)
	}
}
