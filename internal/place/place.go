// Package place implements simulated-annealing standard-cell placement.
//
// Placement is a substrate for the paper's experiments in two ways: its
// result drives routing congestion (and therefore the DRV convergence
// behaviour of Fig. 9), and its annealing cost landscape exhibits the
// "big valley" structure that adaptive multistart (Fig. 6(b)) and
// go-with-the-winners (Fig. 6(a)) exploit. A partitioned mode supports
// the "many more small subproblems" ablation of Fig. 4(b).
//
// Two annealing engines share one move evaluator:
//
//   - the serial engine (Workers == 0) commits after every proposal and
//     reproduces the historical serial placer bit for bit;
//   - the speculative parallel engine (Workers > 0, see parallel.go)
//     evaluates batches of proposals concurrently and commits them in
//     proposal order with conflict detection, producing results that
//     depend only on Seed/Moves/Batch — never on Workers or scheduling.
//
// The evaluator itself is built on flat structure-of-arrays state:
// per-net bounding boxes cached and maintained incrementally, CSR
// incidence (netlist.Incidence / netlist.NetPins) instead of nested
// slices, and stamp arrays instead of per-move map allocation.
package place

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/num"
)

// Options are the placer knobs.
type Options struct {
	Seed        int64
	Moves       int     // total SA moves (default 120 * numCells)
	Utilization float64 // die utilization (default 0.6)
	Partitions  int     // 1 = flat; k means k x k independent regions
	// StartTemp overrides the sampled initial temperature (0 = auto).
	StartTemp float64
	// Workers > 0 selects the speculative parallel annealer: proposals
	// are drawn in batches from the master stream, evaluated concurrently
	// against the epoch snapshot, and committed in proposal order with
	// conflict detection. The outcome depends only on Seed, Moves and
	// Batch — identical at every Workers >= 1 — but differs from the
	// Workers == 0 serial engine, which commits after every proposal.
	Workers int
	// Batch is the maximum speculative proposal batch size (default
	// 256); only used when Workers > 0. Part of the reproducibility key.
	// The engine adapts the live batch per epoch between
	// max(32, Batch/4) and Batch from the previous epoch's conflict
	// fraction (see the adapt* constants in parallel.go).
	Batch int
	// ResampleCrossRegion redirects region-crossing proposals of the
	// partitioned refinement phase to a random slot inside the
	// instance's own region instead of silently discarding them (the
	// historical behaviour burned the cooling step without trying a
	// move). Off by default so existing results stay reproducible.
	ResampleCrossRegion bool
}

func (o Options) withDefaults(numCells int) Options {
	if o.Moves <= 0 {
		o.Moves = 120 * numCells
	}
	if o.Utilization <= 0 {
		o.Utilization = 0.6
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	return o
}

// Result reports placement quality and effort.
type Result struct {
	HPWLUm        float64
	InitialHPWLUm float64
	Width, Height float64
	MovesTried    int
	MovesAccepted int
	// MovesConflicted counts speculative proposals discarded at commit
	// time because an earlier proposal in the same batch touched an
	// overlapping instance, slot or net (parallel engine only).
	MovesConflicted int
	// MovesResampled counts region-crossing proposals redirected into
	// the instance's own region (Options.ResampleCrossRegion).
	MovesResampled int
	// BatchFinal is the adaptive speculative batch size at the end of
	// the anneal (parallel engine only; 0 for the serial engine). A
	// deterministic function of Seed/Moves/Batch like everything else.
	BatchFinal int
	// RuntimeProxy counts cost-function evaluations, a deterministic
	// stand-in for wall-clock TAT in the experiments.
	RuntimeProxy int
	// ParallelRuntimeProxy is the TAT assuming each partition region
	// anneals on its own machine (the Fig. 4(b) "many more small
	// subproblems" payoff); equals RuntimeProxy for flat placement.
	ParallelRuntimeProxy int
}

// grid is the slot structure used during annealing.
type grid struct {
	cols, rows int
	cellW      float64
	rowH       float64
	slotOf     []int // inst -> slot
	instAt     []int // slot -> inst or -1
}

func (g *grid) coords(slot int) (x, y float64) {
	r, c := slot/g.cols, slot%g.cols
	return (float64(c) + 0.5) * g.cellW, (float64(r) + 0.5) * g.rowH
}

// evalScratch is the per-evaluator scratch state: a stamp array dedupes
// the affected-net list without allocating. Each concurrent evaluator
// owns its own scratch; the shared placer state is read-only during
// evaluation.
type evalScratch struct {
	stamp    []int32
	gen      int32
	affected []int32
}

func newEvalScratch(numNets int) evalScratch {
	return evalScratch{stamp: make([]int32, numNets), affected: make([]int32, 0, 16)}
}

func (sc *evalScratch) next() {
	sc.gen++
	if sc.gen == math.MaxInt32 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.gen = 1
	}
}

// commitScratch extends the stamp pattern with per-net move flags so a
// committed swap can classify each affected net: bit 1 = the moving
// instance pins it, bit 2 = the displaced occupant pins it.
type commitScratch struct {
	stamp    []int32
	pos      []int32 // net -> index into affected (valid when stamped)
	gen      int32
	affected []int32
	flags    []uint8
}

func newCommitScratch(numNets int) commitScratch {
	return commitScratch{
		stamp:    make([]int32, numNets),
		pos:      make([]int32, numNets),
		affected: make([]int32, 0, 16),
		flags:    make([]uint8, 0, 16),
	}
}

// placer is the shared annealing state. The serial and speculative
// engines differ only in how they drive propose/evaluate/commit.
type placer struct {
	n    *netlist.Netlist
	opts Options
	g    *grid
	w, h float64
	res  Result

	inc  netlist.Incidence
	pins netlist.NetPins

	// Cached per-net bounding boxes (SoA): the "before" cost of a move
	// is four array reads instead of a rescan of every pin.
	minX, maxX, minY, maxY []float64

	part        []int
	partitioned bool
	regionSlots [][]int
	coarseProxy int

	eval   evalScratch
	commit commitScratch

	ctx     context.Context
	aborted bool
}

// Place runs simulated annealing on the netlist, mutating instance
// coordinates, and returns quality metrics.
func Place(n *netlist.Netlist, opts Options) Result {
	res, _ := PlaceCtx(context.Background(), n, opts)
	return res
}

// abortCheckMoves is the cancellation poll granularity of the serial
// annealer (the parallel engine polls once per epoch, which is at most
// one batch). A power of two so the poll is a mask, not a division.
const abortCheckMoves = 4096

// PlaceCtx is Place with cooperative cancellation: the anneal polls ctx
// between move blocks and bails out once it is cancelled. The second
// return is false for an aborted anneal — its Result and the netlist's
// coordinates are then partial and must be discarded. Cancellation
// exists so speculative callers can reap a mispredicted anneal early;
// an uncancelled run never aborts, so committed placements keep their
// bit-exact determinism and worker invariance.
func PlaceCtx(ctx context.Context, n *netlist.Netlist, opts Options) (Result, bool) {
	opts = opts.withDefaults(n.NumCells())
	rng := rand.New(rand.NewSource(opts.Seed))

	w, h := netlist.DieSize(n, opts.Utilization)
	p := &placer{n: n, opts: opts, w: w, h: h, ctx: ctx}
	p.g = buildGrid(n, w, h, rng)
	p.res = Result{Width: w, Height: h}

	p.inc = n.BuildIncidence()
	p.pins = n.BuildNetPins()
	numNets := len(n.Nets)
	p.minX = make([]float64, numNets)
	p.maxX = make([]float64, numNets)
	p.minY = make([]float64, numNets)
	p.maxY = make([]float64, numNets)
	p.eval = newEvalScratch(numNets)
	p.commit = newCommitScratch(numNets)
	p.part = make([]int, n.NumCells())

	applyCoords(n, p.g)
	p.res.InitialHPWLUm = n.TotalHPWL()
	for nid := 0; nid < numNets; nid++ {
		p.rescanBox(nid)
	}

	if opts.Workers > 0 {
		p.annealSpeculative(rng)
	} else {
		p.annealSerial(rng)
	}

	applyCoords(n, p.g)
	p.res.HPWLUm = n.TotalHPWL()
	p.res.ParallelRuntimeProxy = p.res.RuntimeProxy
	if opts.Partitions > 1 {
		regions := opts.Partitions * opts.Partitions
		p.res.ParallelRuntimeProxy = p.coarseProxy + (p.res.RuntimeProxy-p.coarseProxy)/regions
	}
	return p.res, !p.aborted
}

// annealSerial is the historical commit-every-move engine. Its random
// stream, acceptance decisions and floating-point results are bit-for-
// bit identical to the pre-SoA placer.
func (p *placer) annealSerial(rng *rand.Rand) {
	temp, cool := p.schedule(rng)
	numCells := p.n.NumCells()
	numSlots := len(p.g.instAt)
	coarseMoves := 0
	if p.opts.Partitions > 1 {
		coarseMoves = p.opts.Moves / 4
	}
	for m := 0; m < p.opts.Moves; m++ {
		if m&(abortCheckMoves-1) == 0 && p.ctx.Err() != nil {
			p.aborted = true
			return
		}
		if p.opts.Partitions > 1 && !p.partitioned && m >= coarseMoves {
			p.assignPartitions()
		}
		inst := rng.Intn(numCells)
		slot := rng.Intn(numSlots)
		if slot == p.g.slotOf[inst] {
			temp *= cool
			continue
		}
		if p.partitioned && p.regionOfSlot(slot) != p.part[inst] {
			if !p.opts.ResampleCrossRegion {
				temp *= cool
				continue
			}
			cand := p.regionSlots[p.part[inst]]
			slot = cand[rng.Intn(len(cand))]
			p.res.MovesResampled++
			if slot == p.g.slotOf[inst] {
				temp *= cool
				continue
			}
		}
		p.res.MovesTried++
		delta, cost := p.evalDelta(inst, slot, &p.eval)
		p.res.RuntimeProxy += cost
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			p.commitSwap(inst, slot)
			p.res.MovesAccepted++
		}
		temp *= cool
	}
}

// schedule samples the initial temperature (mean |delta| of random
// moves) and derives the geometric cooling factor.
func (p *placer) schedule(rng *rand.Rand) (temp, cool float64) {
	temp = p.opts.StartTemp
	if temp <= 0 {
		var sum float64
		const samples = 64
		for i := 0; i < samples; i++ {
			inst := rng.Intn(p.n.NumCells())
			slot := rng.Intn(len(p.g.instAt))
			d, cost := p.evalDelta(inst, slot, &p.eval)
			p.res.RuntimeProxy += cost
			sum += math.Abs(d)
		}
		temp = sum/samples + 1e-9
	}
	final := temp / 2000
	cool = math.Pow(final/temp, 1/float64(p.opts.Moves))
	return temp, cool
}

// Partitioned mode runs a flat coarse pass first (global optimization
// places connected cells near each other), then locks each instance
// into the region it landed in and refines within regions only — the
// "RTL partition and floorplan co-optimization" shape of Fig. 4(b),
// where the small subproblems can be solved in parallel.
func (p *placer) assignPartitions() {
	for inst := range p.part {
		p.part[inst] = p.regionOfSlot(p.g.slotOf[inst])
	}
	p.partitioned = true
	p.coarseProxy = p.res.RuntimeProxy
	if p.opts.ResampleCrossRegion {
		p.regionSlots = make([][]int, p.opts.Partitions*p.opts.Partitions)
		for slot := range p.g.instAt {
			r := p.regionOfSlot(slot)
			p.regionSlots[r] = append(p.regionSlots[r], slot)
		}
	}
}

func (p *placer) regionOfSlot(slot int) int {
	if p.opts.Partitions <= 1 {
		return 0
	}
	x, y := p.g.coords(slot)
	px := num.Clamp(int(x/p.w*float64(p.opts.Partitions)), 0, p.opts.Partitions-1)
	py := num.Clamp(int(y/p.h*float64(p.opts.Partitions)), 0, p.opts.Partitions-1)
	return py*p.opts.Partitions + px
}

// evalDelta computes the HPWL change of swapping inst into slot (with
// whatever occupies it) without mutating any shared state: the "before"
// cost reads the cached boxes, the "after" cost rescans the affected
// nets substituting the swapped positions. Safe to call concurrently
// with distinct scratches. The second result is the historical
// runtime-proxy cost of the evaluation (2 passes over affected nets).
func (p *placer) evalDelta(inst, slot int, sc *evalScratch) (delta float64, cost int) {
	g := p.g
	other := g.instAt[slot]
	sc.next()
	aff := sc.affected[:0]
	for _, nid := range p.inc.Of(inst) {
		if sc.stamp[nid] != sc.gen {
			sc.stamp[nid] = sc.gen
			aff = append(aff, nid)
		}
	}
	if other >= 0 && other != inst {
		for _, nid := range p.inc.Of(other) {
			if sc.stamp[nid] != sc.gen {
				sc.stamp[nid] = sc.gen
				aff = append(aff, nid)
			}
		}
	}
	sc.affected = aff

	var before float64
	for _, nid := range aff {
		before += (p.maxX[nid] - p.minX[nid]) + (p.maxY[nid] - p.minY[nid])
	}
	instX, instY := g.coords(slot)
	otherX, otherY := g.coords(g.slotOf[inst])
	o32 := int32(-1)
	if other >= 0 && other != inst {
		o32 = int32(other)
	}
	var after float64
	for _, nid := range aff {
		after += p.hpwlMoved(int(nid), int32(inst), instX, instY, o32, otherX, otherY)
	}
	return after - before, 2 * len(aff)
}

// hpwlMoved computes one net's HPWL with inst and other virtually moved
// to the given coordinates — the same pin visit order and math.Min/Max
// sequence as Netlist.HPWL, so the result is bit-identical to a rescan
// after a real swap.
func (p *placer) hpwlMoved(nid int, inst int32, instX, instY float64, other int32, otherX, otherY float64) float64 {
	pins := p.pins.Of(nid)
	if len(pins) == 0 {
		return 0
	}
	first := true
	var minX, maxX, minY, maxY float64
	for _, pin := range pins {
		var x, y float64
		switch pin {
		case inst:
			x, y = instX, instY
		case other:
			x, y = otherX, otherY
		default:
			x, y = p.g.coords(p.g.slotOf[pin])
		}
		if first {
			minX, maxX, minY, maxY = x, x, y, y
			first = false
			continue
		}
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	return (maxX - minX) + (maxY - minY)
}

// commitSwap performs the swap and maintains the cached boxes exactly.
// Nets pinned by both swap endpoints keep an unchanged position set, so
// their boxes are untouched; nets pinned by one endpoint get an exact
// incremental update when the vacated point was strictly interior, and
// a full rescan otherwise. The affected-net list remains available in
// p.commit.affected for the caller (the speculative engine stamps it).
func (p *placer) commitSwap(inst, slot int) {
	g := p.g
	other := g.instAt[slot]
	oldSlot := g.slotOf[inst]

	sc := &p.commit
	sc.gen++
	if sc.gen == math.MaxInt32 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.gen = 1
	}
	aff := sc.affected[:0]
	flags := sc.flags[:0]
	for _, nid := range p.inc.Of(inst) {
		sc.stamp[nid] = sc.gen
		sc.pos[nid] = int32(len(aff))
		aff = append(aff, nid)
		flags = append(flags, 1)
	}
	if other >= 0 && other != inst {
		for _, nid := range p.inc.Of(other) {
			if sc.stamp[nid] == sc.gen {
				flags[sc.pos[nid]] |= 2
				continue
			}
			sc.stamp[nid] = sc.gen
			sc.pos[nid] = int32(len(aff))
			aff = append(aff, nid)
			flags = append(flags, 2)
		}
	}
	sc.affected, sc.flags = aff, flags

	swap(g, inst, slot)

	newX, newY := g.coords(slot)
	oldX, oldY := g.coords(oldSlot)
	for k, nid := range aff {
		switch flags[k] {
		case 1: // inst moved oldSlot -> slot
			p.updateBox(int(nid), oldX, oldY, newX, newY)
		case 2: // other moved slot -> oldSlot
			p.updateBox(int(nid), newX, newY, oldX, oldY)
			// case 3: both endpoints pin this net; the position set is
			// unchanged by the swap, so the box is too.
		}
	}
}

// updateBox maintains a net's cached box across one pin moving from
// (remX,remY) to (addX,addY). If the removed point touches the box
// boundary the box may shrink and a rescan is needed; otherwise the box
// over the remaining points is unchanged and merging the added point is
// exact.
func (p *placer) updateBox(nid int, remX, remY, addX, addY float64) {
	if remX <= p.minX[nid] || remX >= p.maxX[nid] ||
		remY <= p.minY[nid] || remY >= p.maxY[nid] {
		p.rescanBox(nid)
		return
	}
	p.minX[nid] = math.Min(p.minX[nid], addX)
	p.maxX[nid] = math.Max(p.maxX[nid], addX)
	p.minY[nid] = math.Min(p.minY[nid], addY)
	p.maxY[nid] = math.Max(p.maxY[nid], addY)
}

// rescanBox recomputes a net's cached box from the current grid, with
// the same pin order and comparison sequence as Netlist.HPWL.
func (p *placer) rescanBox(nid int) {
	pins := p.pins.Of(nid)
	if len(pins) == 0 {
		p.minX[nid], p.maxX[nid], p.minY[nid], p.maxY[nid] = 0, 0, 0, 0
		return
	}
	x, y := p.g.coords(p.g.slotOf[pins[0]])
	minX, maxX, minY, maxY := x, x, y, y
	for _, pin := range pins[1:] {
		x, y := p.g.coords(p.g.slotOf[pin])
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	p.minX[nid], p.maxX[nid] = minX, maxX
	p.minY[nid], p.maxY[nid] = minY, maxY
}

// buildGrid creates the slot grid sized for the die and scatters the
// instances into it (random permutation so different seeds explore
// different basins).
func buildGrid(n *netlist.Netlist, w, h float64, rng *rand.Rand) *grid {
	numCells := n.NumCells()
	rowH := n.Lib.RowPitch
	if rowH <= 0 {
		rowH = 1
	}
	rows := int(h/rowH) + 1
	// Enough columns for all cells plus ~30% whitespace.
	cols := int(math.Ceil(float64(numCells) * 1.3 / float64(rows)))
	if cols < 1 {
		cols = 1
	}
	g := &grid{
		cols:   cols,
		rows:   rows,
		cellW:  w / float64(cols),
		rowH:   h / float64(rows),
		slotOf: make([]int, numCells),
		instAt: make([]int, cols*rows),
	}
	for i := range g.instAt {
		g.instAt[i] = -1
	}
	perm := rng.Perm(cols * rows)
	for inst := 0; inst < numCells; inst++ {
		slot := perm[inst]
		g.slotOf[inst] = slot
		g.instAt[slot] = inst
	}
	return g
}

// swap moves inst into slot, exchanging with any occupant.
func swap(g *grid, inst, slot int) {
	old := g.slotOf[inst]
	other := g.instAt[slot]
	g.instAt[old] = other
	if other >= 0 {
		g.slotOf[other] = old
	}
	g.instAt[slot] = inst
	g.slotOf[inst] = slot
}

// applyCoords writes grid slot coordinates back to the netlist.
func applyCoords(n *netlist.Netlist, g *grid) {
	for inst := range g.slotOf {
		x, y := g.coords(g.slotOf[inst])
		n.Insts[inst].X = x
		n.Insts[inst].Y = y
	}
	n.InvalidatePlacement()
}

// Snapshot captures instance coordinates so multistart/GWTW can save and
// restore placements.
func Snapshot(n *netlist.Netlist) []float64 {
	s := make([]float64, 2*n.NumCells())
	for i := range n.Insts {
		s[2*i], s[2*i+1] = n.Insts[i].X, n.Insts[i].Y
	}
	return s
}

// Restore writes a snapshot back.
func Restore(n *netlist.Netlist, s []float64) {
	for i := range n.Insts {
		n.Insts[i].X, n.Insts[i].Y = s[2*i], s[2*i+1]
	}
	n.InvalidatePlacement()
}

// Distance returns the average per-cell Manhattan distance between two
// placements — the solution-space metric for big-valley analysis.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var d float64
	for i := 0; i < len(a); i += 2 {
		d += math.Abs(a[i]-b[i]) + math.Abs(a[i+1]-b[i+1])
	}
	return d / float64(len(a)/2)
}
