// Package place implements simulated-annealing standard-cell placement.
//
// Placement is a substrate for the paper's experiments in two ways: its
// result drives routing congestion (and therefore the DRV convergence
// behaviour of Fig. 9), and its annealing cost landscape exhibits the
// "big valley" structure that adaptive multistart (Fig. 6(b)) and
// go-with-the-winners (Fig. 6(a)) exploit. A partitioned mode supports
// the "many more small subproblems" ablation of Fig. 4(b).
package place

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Options are the placer knobs.
type Options struct {
	Seed        int64
	Moves       int     // total SA moves (default 120 * numCells)
	Utilization float64 // die utilization (default 0.6)
	Partitions  int     // 1 = flat; k means k x k independent regions
	// StartTemp overrides the sampled initial temperature (0 = auto).
	StartTemp float64
}

func (o Options) withDefaults(numCells int) Options {
	if o.Moves <= 0 {
		o.Moves = 120 * numCells
	}
	if o.Utilization <= 0 {
		o.Utilization = 0.6
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	return o
}

// Result reports placement quality and effort.
type Result struct {
	HPWLUm        float64
	InitialHPWLUm float64
	Width, Height float64
	MovesTried    int
	MovesAccepted int
	// RuntimeProxy counts cost-function evaluations, a deterministic
	// stand-in for wall-clock TAT in the experiments.
	RuntimeProxy int
	// ParallelRuntimeProxy is the TAT assuming each partition region
	// anneals on its own machine (the Fig. 4(b) "many more small
	// subproblems" payoff); equals RuntimeProxy for flat placement.
	ParallelRuntimeProxy int
}

// grid is the slot structure used during annealing.
type grid struct {
	cols, rows int
	cellW      float64
	rowH       float64
	slotOf     []int // inst -> slot
	instAt     []int // slot -> inst or -1
}

func (g *grid) coords(slot int) (x, y float64) {
	r, c := slot/g.cols, slot%g.cols
	return (float64(c) + 0.5) * g.cellW, (float64(r) + 0.5) * g.rowH
}

// Place runs simulated annealing on the netlist, mutating instance
// coordinates, and returns quality metrics.
func Place(n *netlist.Netlist, opts Options) Result {
	opts = opts.withDefaults(n.NumCells())
	rng := rand.New(rand.NewSource(opts.Seed))

	w, h := netlist.DieSize(n, opts.Utilization)
	g := buildGrid(n, w, h, rng)
	res := Result{Width: w, Height: h}

	// Incidence: nets touching each instance (excluding clock).
	netsOf := make([][]int, n.NumCells())
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock {
			continue
		}
		if net.Driver >= 0 {
			netsOf[net.Driver] = append(netsOf[net.Driver], i)
		}
		for _, s := range net.Sinks {
			netsOf[s.Inst] = append(netsOf[s.Inst], i)
		}
	}
	for i := range netsOf {
		netsOf[i] = dedupe(netsOf[i])
	}

	applyCoords(n, g)
	res.InitialHPWLUm = n.TotalHPWL()

	// Partitioned mode runs a flat coarse pass first (global
	// optimization places connected cells near each other), then locks
	// each instance into the region it landed in and refines within
	// regions only — the "RTL partition and floorplan co-optimization"
	// shape of Fig. 4(b), where the small subproblems can be solved in
	// parallel. part is assigned after the coarse phase.
	part := make([]int, n.NumCells())
	assignPartitions := func() {
		for inst := range part {
			x, y := g.coords(g.slotOf[inst])
			px := clamp(int(x/w*float64(opts.Partitions)), 0, opts.Partitions-1)
			py := clamp(int(y/h*float64(opts.Partitions)), 0, opts.Partitions-1)
			part[inst] = py*opts.Partitions + px
		}
	}
	regionOfSlot := func(slot int) int {
		if opts.Partitions <= 1 {
			return 0
		}
		x, y := g.coords(slot)
		px := clamp(int(x/w*float64(opts.Partitions)), 0, opts.Partitions-1)
		py := clamp(int(y/h*float64(opts.Partitions)), 0, opts.Partitions-1)
		return py*opts.Partitions + px
	}

	// netHPWL evaluates one net's HPWL from grid coordinates.
	netHPWL := func(netID int) float64 {
		net := &n.Nets[netID]
		first := true
		var minX, maxX, minY, maxY float64
		add := func(inst int) {
			x, y := g.coords(g.slotOf[inst])
			if first {
				minX, maxX, minY, maxY = x, x, y, y
				first = false
				return
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		if net.Driver >= 0 {
			add(net.Driver)
		}
		for _, s := range net.Sinks {
			add(s.Inst)
		}
		if first {
			return 0
		}
		return (maxX - minX) + (maxY - minY)
	}

	// moveDelta computes the HPWL change of swapping inst into slot
	// (with whatever occupies it). A stamp array dedupes the affected
	// nets without per-move allocation.
	affected := make([]int, 0, 16)
	stamp := make([]int, len(n.Nets))
	stampGen := 0
	moveDelta := func(inst, slot int) float64 {
		other := g.instAt[slot]
		stampGen++
		affected = affected[:0]
		for _, nid := range netsOf[inst] {
			if stamp[nid] != stampGen {
				stamp[nid] = stampGen
				affected = append(affected, nid)
			}
		}
		if other >= 0 {
			for _, nid := range netsOf[other] {
				if stamp[nid] != stampGen {
					stamp[nid] = stampGen
					affected = append(affected, nid)
				}
			}
		}
		var before float64
		for _, nid := range affected {
			before += netHPWL(nid)
		}
		oldSlot := g.slotOf[inst]
		swap(g, inst, slot)
		var after float64
		for _, nid := range affected {
			after += netHPWL(nid)
		}
		swap(g, inst, oldSlot) // undo: inst home, displaced occupant back
		res.RuntimeProxy += 2 * len(affected)
		return after - before
	}

	// Initial temperature: mean |delta| of random moves.
	temp := opts.StartTemp
	if temp <= 0 {
		var sum float64
		const samples = 64
		for i := 0; i < samples; i++ {
			inst := rng.Intn(n.NumCells())
			slot := rng.Intn(len(g.instAt))
			sum += math.Abs(moveDelta(inst, slot))
		}
		temp = sum/samples + 1e-9
	}
	final := temp / 2000
	cool := math.Pow(final/temp, 1/float64(opts.Moves))

	numSlots := len(g.instAt)
	coarseMoves := 0
	if opts.Partitions > 1 {
		coarseMoves = opts.Moves / 4
	}
	coarseProxy := 0
	partitioned := false
	for m := 0; m < opts.Moves; m++ {
		if opts.Partitions > 1 && !partitioned && m >= coarseMoves {
			assignPartitions()
			partitioned = true
			coarseProxy = res.RuntimeProxy
		}
		inst := rng.Intn(n.NumCells())
		slot := rng.Intn(numSlots)
		if slot == g.slotOf[inst] {
			temp *= cool
			continue
		}
		if partitioned && regionOfSlot(slot) != part[inst] {
			temp *= cool
			continue
		}
		res.MovesTried++
		delta := moveDelta(inst, slot)
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			swap(g, inst, slot)
			res.MovesAccepted++
		}
		temp *= cool
	}

	applyCoords(n, g)
	res.HPWLUm = n.TotalHPWL()
	res.ParallelRuntimeProxy = res.RuntimeProxy
	if opts.Partitions > 1 {
		regions := opts.Partitions * opts.Partitions
		res.ParallelRuntimeProxy = coarseProxy + (res.RuntimeProxy-coarseProxy)/regions
	}
	return res
}

// buildGrid creates the slot grid sized for the die and scatters the
// instances into it (random permutation so different seeds explore
// different basins).
func buildGrid(n *netlist.Netlist, w, h float64, rng *rand.Rand) *grid {
	numCells := n.NumCells()
	rowH := n.Lib.RowPitch
	if rowH <= 0 {
		rowH = 1
	}
	rows := int(h/rowH) + 1
	// Enough columns for all cells plus ~30% whitespace.
	cols := int(math.Ceil(float64(numCells) * 1.3 / float64(rows)))
	if cols < 1 {
		cols = 1
	}
	g := &grid{
		cols:   cols,
		rows:   rows,
		cellW:  w / float64(cols),
		rowH:   h / float64(rows),
		slotOf: make([]int, numCells),
		instAt: make([]int, cols*rows),
	}
	for i := range g.instAt {
		g.instAt[i] = -1
	}
	perm := rng.Perm(cols * rows)
	for inst := 0; inst < numCells; inst++ {
		slot := perm[inst]
		g.slotOf[inst] = slot
		g.instAt[slot] = inst
	}
	return g
}

// swap moves inst into slot, exchanging with any occupant.
func swap(g *grid, inst, slot int) {
	old := g.slotOf[inst]
	other := g.instAt[slot]
	g.instAt[old] = other
	if other >= 0 {
		g.slotOf[other] = old
	}
	g.instAt[slot] = inst
	g.slotOf[inst] = slot
}

// applyCoords writes grid slot coordinates back to the netlist.
func applyCoords(n *netlist.Netlist, g *grid) {
	for inst := range g.slotOf {
		x, y := g.coords(g.slotOf[inst])
		n.Insts[inst].X = x
		n.Insts[inst].Y = y
	}
}

// Snapshot captures instance coordinates so multistart/GWTW can save and
// restore placements.
func Snapshot(n *netlist.Netlist) []float64 {
	s := make([]float64, 2*n.NumCells())
	for i := range n.Insts {
		s[2*i], s[2*i+1] = n.Insts[i].X, n.Insts[i].Y
	}
	return s
}

// Restore writes a snapshot back.
func Restore(n *netlist.Netlist, s []float64) {
	for i := range n.Insts {
		n.Insts[i].X, n.Insts[i].Y = s[2*i], s[2*i+1]
	}
}

// Distance returns the average per-cell Manhattan distance between two
// placements — the solution-space metric for big-valley analysis.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var d float64
	for i := 0; i < len(a); i += 2 {
		d += math.Abs(a[i]-b[i]) + math.Abs(a[i+1]-b[i+1])
	}
	return d / float64(len(a)/2)
}

func dedupe(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
