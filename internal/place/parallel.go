package place

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Proposal kinds assigned at generation time.
const (
	kindEval uint8 = iota // evaluate and maybe commit
	kindSkip              // self-move or discarded region-crossing: burns a cooling step
)

// Adaptive batch-sizing policy: the live batch shrinks by a quarter
// when an epoch's conflict fraction (conflicts / evaluated proposals)
// exceeds adaptShrinkFrac, and grows by a quarter when it falls below
// adaptGrowFrac, clamped to [floor, Options.Batch]. The floor scales
// with the configured batch (Batch/4, never below adaptBatchFloor):
// epochs pay a fixed propose+barrier cost, so letting a large-batch run
// collapse to a few dozen proposals trades all of its parallel speedup
// for marginal conflict savings. Both adaptation inputs are
// worker-invariant (proposals come from the master stream, conflicts
// from canonical commit order), so the batch trajectory — and therefore
// the placement — stays bit-identical at every worker count.
const (
	adaptBatchFloor = 32
	adaptFloorDiv   = 4
	adaptShrinkFrac = 0.15
	adaptGrowFrac   = 0.05
)

// annealSpeculative is the parallel engine: speculative move evaluation
// with deterministic commit.
//
// Each epoch draws a batch of proposals sequentially from the master
// random stream, evaluates their deltas concurrently against the frozen
// epoch state (evalDelta is pure; every worker owns its scratch), then
// commits in proposal order. A proposal whose instances, slots or nets
// overlap an earlier commit of the same epoch has a stale delta and is
// discarded as a conflict — it burns its cooling step but consumes no
// acceptance coin, so the outcome is a pure function of Seed, Moves and
// Batch, bit-identical at every Workers >= 1 and GOMAXPROCS.
//
// The batch size itself adapts between epochs: hot early annealing
// commits almost everything, so large batches mostly discard stale
// deltas; the adaptive policy shrinks the batch while the conflict
// fraction is high and re-grows it as the anneal freezes and commits
// thin out. The policy reads only committed epoch state (see the adapt*
// constants), never timing, preserving worker invariance.
func (p *placer) annealSpeculative(rng *rand.Rand) {
	temp, cool := p.schedule(rng)
	numCells := p.n.NumCells()
	numSlots := len(p.g.instAt)
	numNets := len(p.n.Nets)
	batch := p.opts.Batch
	cur := batch // live adaptive batch; scratch stays sized for the max
	floor := max(adaptBatchFloor, batch/adaptFloorDiv)
	if floor > batch {
		floor = batch
	}

	gang := sched.NewGang(p.opts.Workers)
	defer gang.Close()
	pool := sync.Pool{New: func() any {
		sc := newEvalScratch(numNets)
		return &sc
	}}

	insts := make([]int32, batch)
	slots := make([]int32, batch)
	kinds := make([]uint8, batch)
	deltas := make([]float64, batch)
	costs := make([]int32, batch)

	// Epoch-stamped conflict sets: anything a committed swap touched.
	instStamp := make([]int32, numCells)
	slotStamp := make([]int32, numSlots)
	netStamp := make([]int32, numNets)
	var epoch int32

	coarseMoves := 0
	if p.opts.Partitions > 1 {
		coarseMoves = p.opts.Moves / 4
	}

	for m := 0; m < p.opts.Moves; {
		if p.ctx.Err() != nil {
			p.aborted = true
			return
		}
		if p.opts.Partitions > 1 && !p.partitioned && m >= coarseMoves {
			p.assignPartitions()
		}
		b := min(cur, p.opts.Moves-m)
		if p.opts.Partitions > 1 && !p.partitioned {
			// Epochs never straddle the coarse->partitioned switch.
			b = min(b, coarseMoves-m)
		}

		// Propose: sequential draws from the master stream, classified
		// against the epoch-start state.
		for k := 0; k < b; k++ {
			inst := rng.Intn(numCells)
			slot := rng.Intn(numSlots)
			kind := kindEval
			if slot == p.g.slotOf[inst] {
				kind = kindSkip
			} else if p.partitioned && p.regionOfSlot(slot) != p.part[inst] {
				if p.opts.ResampleCrossRegion {
					cand := p.regionSlots[p.part[inst]]
					slot = cand[rng.Intn(len(cand))]
					p.res.MovesResampled++
					if slot == p.g.slotOf[inst] {
						kind = kindSkip
					}
				} else {
					kind = kindSkip
				}
			}
			insts[k], slots[k], kinds[k] = int32(inst), int32(slot), kind
		}

		// Evaluate: concurrent, pure, against the frozen epoch state.
		sp := trace.Begin("place.move")
		gang.Round(b, func(lo, hi int) {
			sc := pool.Get().(*evalScratch)
			for k := lo; k < hi; k++ {
				if kinds[k] != kindEval {
					continue
				}
				d, c := p.evalDelta(int(insts[k]), int(slots[k]), sc)
				deltas[k], costs[k] = d, int32(c)
			}
			pool.Put(sc)
		})

		// Commit: canonical proposal order, conflicts discarded.
		epoch++
		committed := 0
		evals, confs := 0, 0
		for k := 0; k < b; k++ {
			if kinds[k] == kindSkip {
				temp *= cool
				continue
			}
			evals++
			inst, slot := int(insts[k]), int(slots[k])
			if p.conflicts(inst, slot, instStamp, slotStamp, netStamp, epoch) {
				p.res.MovesConflicted++
				confs++
				temp *= cool
				continue
			}
			p.res.MovesTried++
			p.res.RuntimeProxy += int(costs[k])
			if delta := deltas[k]; delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				other := p.g.instAt[slot]
				oldSlot := p.g.slotOf[inst]
				p.commitSwap(inst, slot)
				p.res.MovesAccepted++
				committed++
				instStamp[inst] = epoch
				if other >= 0 {
					instStamp[other] = epoch
				}
				slotStamp[slot] = epoch
				slotStamp[oldSlot] = epoch
				for _, nid := range p.commit.affected {
					netStamp[nid] = epoch
				}
			}
			temp *= cool
		}
		sp.SetInt("batch", int64(b))
		sp.SetInt("committed", int64(committed))
		sp.SetInt("conflicts", int64(p.res.MovesConflicted))
		sp.End()
		m += b

		// Adapt the next epoch's batch from this epoch's conflict
		// fraction — committed state only, so the trajectory is identical
		// at every worker count.
		if evals > 0 {
			switch frac := float64(confs) / float64(evals); {
			case frac > adaptShrinkFrac:
				cur -= cur / 4
				if cur < floor {
					cur = floor
				}
			case frac < adaptGrowFrac:
				cur += cur/4 + 1
				if cur > batch {
					cur = batch
				}
			}
		}
	}
	p.res.BatchFinal = cur
}

// conflicts reports whether an earlier commit of the current epoch
// touched anything this proposal's delta depends on: either endpoint
// instance, either slot, or any net incident to the endpoints. If none
// did, the speculative delta is still exact.
func (p *placer) conflicts(inst, slot int, instStamp, slotStamp, netStamp []int32, epoch int32) bool {
	if instStamp[inst] == epoch || slotStamp[slot] == epoch || slotStamp[p.g.slotOf[inst]] == epoch {
		return true
	}
	other := p.g.instAt[slot]
	if other >= 0 && instStamp[other] == epoch {
		return true
	}
	for _, nid := range p.inc.Of(inst) {
		if netStamp[nid] == epoch {
			return true
		}
	}
	if other >= 0 && other != inst {
		for _, nid := range p.inc.Of(other) {
			if netStamp[nid] == epoch {
				return true
			}
		}
	}
	return false
}
