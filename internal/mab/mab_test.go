package mab

import (
	"math"
	"math/rand"
	"testing"
)

func env() Bernoulli {
	return Bernoulli{Probs: []float64{0.1, 0.25, 0.55, 0.8, 0.4}}
}

func algos(n int) []Algorithm {
	return []Algorithm{
		NewThompson(n),
		NewEpsilonGreedy(n, 0.1),
		NewSoftmax(n, 0.1),
		NewUCB1(n),
	}
}

func TestAllAlgorithmsFindGoodArm(t *testing.T) {
	e := env()
	for _, alg := range algos(e.NumArms()) {
		h := Simulate(alg, e, Config{Iterations: 200, Concurrent: 5, Seed: 1})
		// The best arm (index 3, p=0.8) should dominate pulls.
		bestCount := h.ArmCounts[3]
		total := 0
		for _, c := range h.ArmCounts {
			total += c
		}
		if total != 1000 {
			t.Fatalf("%s: %d pulls, want 1000", alg.Name(), total)
		}
		if float64(bestCount)/float64(total) < 0.4 {
			t.Errorf("%s: best arm only %d/%d pulls", alg.Name(), bestCount, total)
		}
	}
}

func TestRegretSublinearForThompson(t *testing.T) {
	e := env()
	h1 := Simulate(NewThompson(e.NumArms()), e, Config{Iterations: 50, Concurrent: 5, Seed: 2})
	h2 := Simulate(NewThompson(e.NumArms()), e, Config{Iterations: 400, Concurrent: 5, Seed: 2})
	perPull1 := h1.FinalRegret() / float64(len(h1.Pulls))
	perPull2 := h2.FinalRegret() / float64(len(h2.Pulls))
	if perPull2 >= perPull1 {
		t.Errorf("per-pull regret should fall with horizon: %v -> %v", perPull1, perPull2)
	}
}

func TestThompsonBeatsRandomBaseline(t *testing.T) {
	e := env()
	var tsTotal, randTotal float64
	for seed := int64(0); seed < 10; seed++ {
		ts := Simulate(NewThompson(e.NumArms()), e, Config{Iterations: 100, Concurrent: 5, Seed: seed})
		tsTotal += ts.TotalReward()
		// eps=1 is uniform random sampling.
		rnd := Simulate(NewEpsilonGreedy(e.NumArms(), 1.0), e, Config{Iterations: 100, Concurrent: 5, Seed: seed})
		randTotal += rnd.TotalReward()
	}
	if tsTotal <= randTotal*1.2 {
		t.Errorf("Thompson %v should clearly beat random %v", tsTotal, randTotal)
	}
}

func TestHistoryInvariants(t *testing.T) {
	e := env()
	h := Simulate(NewUCB1(e.NumArms()), e, Config{Iterations: 60, Concurrent: 3, Seed: 3})
	if len(h.BestSoFar) != 60 || len(h.MeanReward) != 60 || len(h.CumRegret) != 60 {
		t.Fatalf("trace lengths: %d %d %d", len(h.BestSoFar), len(h.MeanReward), len(h.CumRegret))
	}
	if len(h.Pulls) != 180 {
		t.Fatalf("pull count %d", len(h.Pulls))
	}
	for i := 1; i < len(h.BestSoFar); i++ {
		if h.BestSoFar[i] < h.BestSoFar[i-1] {
			t.Fatal("BestSoFar must be non-decreasing")
		}
		if h.CumRegret[i] < h.CumRegret[i-1]-1e-9 {
			t.Fatal("CumRegret must be non-decreasing")
		}
	}
	for _, p := range h.Pulls {
		if p.Reward < 0 || p.Reward > 1 {
			t.Fatalf("reward %v outside [0,1]", p.Reward)
		}
		if p.Slot < 0 || p.Slot >= 3 {
			t.Fatalf("slot %d", p.Slot)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	e := env()
	a := Simulate(NewThompson(e.NumArms()), e, Config{Seed: 7})
	b := Simulate(NewThompson(e.NumArms()), e, Config{Seed: 7})
	if a.TotalReward() != b.TotalReward() || a.FinalRegret() != b.FinalRegret() {
		t.Fatal("same seed differs")
	}
}

func TestGaussianArmsClipped(t *testing.T) {
	g := GaussianArms{Means: []float64{0.5, 0.9}, Sigmas: []float64{0.5, 0.5}}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r := g.Reward(i%2, rng)
		if r < 0 || r > 1 {
			t.Fatalf("reward %v outside [0,1]", r)
		}
	}
	if g.OptimalMean() != 0.9 {
		t.Errorf("optimal mean %v", g.OptimalMean())
	}
}

func TestThompsonPosteriorConverges(t *testing.T) {
	ts := NewThompson(2)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		// Feed arm 0 with p=0.2, arm 1 with p=0.7.
		r0, r1 := 0.0, 0.0
		if rng.Float64() < 0.2 {
			r0 = 1
		}
		if rng.Float64() < 0.7 {
			r1 = 1
		}
		ts.Update(0, r0)
		ts.Update(1, r1)
	}
	if math.Abs(ts.Posterior(0)-0.2) > 0.05 {
		t.Errorf("posterior(0) = %v, want ~0.2", ts.Posterior(0))
	}
	if math.Abs(ts.Posterior(1)-0.7) > 0.05 {
		t.Errorf("posterior(1) = %v, want ~0.7", ts.Posterior(1))
	}
}

func TestThompsonUpdateClipsReward(t *testing.T) {
	ts := NewThompson(1)
	ts.Update(0, 5)
	ts.Update(0, -3)
	if p := ts.Posterior(0); p < 0 || p > 1 {
		t.Fatalf("posterior %v out of range after wild rewards", p)
	}
}

func TestBetaSampleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := betaSample(rng, 0.5+rng.Float64()*5, 0.5+rng.Float64()*5)
		if v < 0 || v > 1 {
			t.Fatalf("beta sample %v", v)
		}
	}
	// Mean check: Beta(8,2) has mean 0.8.
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += betaSample(rng, 8, 2)
	}
	if math.Abs(sum/n-0.8) > 0.02 {
		t.Errorf("Beta(8,2) sample mean %v, want ~0.8", sum/n)
	}
}

func TestUCB1TriesAllArmsFirst(t *testing.T) {
	u := NewUCB1(4)
	rng := rand.New(rand.NewSource(6))
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		a := u.Select(rng)
		if seen[a] {
			t.Fatalf("arm %d selected twice before all tried", a)
		}
		seen[a] = true
		u.Update(a, 0.5)
	}
}

func TestSoftmaxTemperatureSpreadsChoice(t *testing.T) {
	// With huge temperature softmax is ~uniform; with tiny temperature
	// it locks onto the best arm.
	rng := rand.New(rand.NewSource(7))
	hot := NewSoftmax(3, 100)
	cold := NewSoftmax(3, 0.01)
	for _, s := range []*Softmax{hot, cold} {
		s.Update(0, 0.1)
		s.Update(1, 0.9)
		s.Update(2, 0.2)
	}
	hotCounts := make([]int, 3)
	coldCounts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		hotCounts[hot.Select(rng)]++
		coldCounts[cold.Select(rng)]++
	}
	if coldCounts[1] < 2900 {
		t.Errorf("cold softmax should lock on best arm: %v", coldCounts)
	}
	for _, c := range hotCounts {
		if c < 700 {
			t.Errorf("hot softmax should be near-uniform: %v", hotCounts)
		}
	}
}

func TestNames(t *testing.T) {
	for _, alg := range algos(3) {
		if alg.Name() == "" {
			t.Error("empty algorithm name")
		}
	}
}
