package mab

import (
	"math/rand"

	"repro/internal/sched"
)

// Environment produces stochastic rewards per arm. Implementations range
// from synthetic Bernoulli test beds to the real flow sampler in
// internal/core (arms = target frequencies, reward = constrained success).
type Environment interface {
	NumArms() int
	// Reward draws one reward in [0,1] for an arm.
	Reward(arm int, rng *rand.Rand) float64
	// OptimalMean returns the best arm's expected reward, for regret
	// accounting (may be an estimate).
	OptimalMean() float64
}

// Bernoulli is a synthetic environment with fixed success probabilities.
type Bernoulli struct {
	Probs []float64
}

// NumArms implements Environment.
func (b Bernoulli) NumArms() int { return len(b.Probs) }

// Reward implements Environment.
func (b Bernoulli) Reward(arm int, rng *rand.Rand) float64 {
	if rng.Float64() < b.Probs[arm] {
		return 1
	}
	return 0
}

// OptimalMean implements Environment.
func (b Bernoulli) OptimalMean() float64 {
	best := 0.0
	for _, p := range b.Probs {
		if p > best {
			best = p
		}
	}
	return best
}

// GaussianArms is a synthetic environment with Gaussian rewards clipped
// to [0,1] — the i.i.d.-noise abstraction of tool outcomes (paper: the
// reward from each arm is i.i.d.; "recall Figure 3").
type GaussianArms struct {
	Means  []float64
	Sigmas []float64
}

// NumArms implements Environment.
func (g GaussianArms) NumArms() int { return len(g.Means) }

// Reward implements Environment.
func (g GaussianArms) Reward(arm int, rng *rand.Rand) float64 {
	r := g.Means[arm] + g.Sigmas[arm]*rng.NormFloat64()
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return r
}

// OptimalMean implements Environment.
func (g GaussianArms) OptimalMean() float64 {
	best := 0.0
	for _, m := range g.Means {
		if m > best {
			best = m
		}
	}
	return best
}

// Pull records one sample: which arm was pulled at which iteration and
// what came back.
type Pull struct {
	Iteration int
	Slot      int // concurrent-run slot (license) index
	Arm       int
	Reward    float64
}

// History is the full trace of a batched bandit run.
type History struct {
	Algorithm string
	Pulls     []Pull
	// BestSoFar[t] is the best reward observed up to and including
	// iteration t (the "best from 5 samples x N iterations" trace of
	// Fig. 7).
	BestSoFar []float64
	// MeanReward[t] is the mean reward of iteration t's batch.
	MeanReward []float64
	// CumRegret[t] is cumulative expected regret after iteration t,
	// using the environment's OptimalMean.
	CumRegret []float64
	// ArmCounts[a] is the total number of pulls of each arm.
	ArmCounts []int
}

// TotalReward sums all observed rewards.
func (h *History) TotalReward() float64 {
	var s float64
	for _, p := range h.Pulls {
		s += p.Reward
	}
	return s
}

// FinalRegret returns the cumulative regret at the end of the run.
func (h *History) FinalRegret() float64 {
	if len(h.CumRegret) == 0 {
		return 0
	}
	return h.CumRegret[len(h.CumRegret)-1]
}

// Config parameterizes a batched simulation.
type Config struct {
	Iterations int // outer iterations (paper Fig. 7: 40)
	Concurrent int // samples per iteration = concurrent tool runs (paper: 5)
	Seed       int64
	// Workers fans each batch's reward draws out over a license pool
	// (<= 1 keeps them on the caller's goroutine). Each slot draws from
	// its own sub-seeded generator fixed before the batch fans out, so
	// the history is bit-identical at any worker count.
	Workers int
}

// Simulate runs the policy against the environment: each iteration
// selects Concurrent arms (a batch, as with K parallel tool licenses),
// draws their rewards, then updates the policy with the whole batch.
// Updates happen only at batch boundaries, matching how concurrent EDA
// runs report results.
//
// Arm selection stays serial (the policy and its generator are shared
// state); reward draws are the campaign fan-out. Slot k of iteration t
// always sees the same sub-seed for a given cfg.Seed, which is what
// makes the parallel and serial paths produce identical histories.
func Simulate(alg Algorithm, env Environment, cfg Config) *History {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 40
	}
	if cfg.Concurrent <= 0 {
		cfg.Concurrent = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pool *sched.Pool
	if cfg.Workers > 1 {
		pool = sched.NewPool(cfg.Workers)
	}
	h := &History{Algorithm: alg.Name(), ArmCounts: make([]int, env.NumArms())}
	best := 0.0
	regret := 0.0
	opt := env.OptimalMean()
	for t := 0; t < cfg.Iterations; t++ {
		arms := make([]int, cfg.Concurrent)
		seeds := make([]int64, cfg.Concurrent)
		for k := range arms {
			arms[k] = alg.Select(rng)
			seeds[k] = rng.Int63()
		}
		draw := func(k int) float64 {
			return env.Reward(arms[k], rand.New(rand.NewSource(seeds[k])))
		}
		rewards := make([]float64, cfg.Concurrent)
		if pool != nil {
			rewards = sched.Map(pool, cfg.Concurrent, draw)
		} else {
			for k := range rewards {
				rewards[k] = draw(k)
			}
		}
		var batchSum float64
		for k, a := range arms {
			r := rewards[k]
			h.Pulls = append(h.Pulls, Pull{Iteration: t, Slot: k, Arm: a, Reward: r})
			h.ArmCounts[a]++
			batchSum += r
			if r > best {
				best = r
			}
			regret += opt - meanOfEnv(env, a)
		}
		for k, a := range arms {
			alg.Update(a, rewards[k])
		}
		h.BestSoFar = append(h.BestSoFar, best)
		h.MeanReward = append(h.MeanReward, batchSum/float64(cfg.Concurrent))
		h.CumRegret = append(h.CumRegret, regret)
	}
	return h
}

// meanOfEnv returns the true mean of an arm where the environment can
// tell us (synthetic test beds); otherwise regret falls back to observed
// reward distance.
func meanOfEnv(env Environment, arm int) float64 {
	switch e := env.(type) {
	case Bernoulli:
		return e.Probs[arm]
	case GaussianArms:
		return e.Means[arm]
	case *Bernoulli:
		return e.Probs[arm]
	case *GaussianArms:
		return e.Means[arm]
	default:
		return env.OptimalMean() // unknown: zero per-step regret floor
	}
}
