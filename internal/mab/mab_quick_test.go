package mab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestThompsonPosteriorBoundedQuick: posteriors stay in (0,1) under
// arbitrary (clipped) reward sequences.
func TestThompsonPosteriorBoundedQuick(t *testing.T) {
	f := func(rewards []float64) bool {
		ts := NewThompson(2)
		for _, r := range rewards {
			ts.Update(0, r)
		}
		p := ts.Posterior(0)
		return p > 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSelectAlwaysInRangeQuick: every policy returns a valid arm under
// arbitrary update histories.
func TestSelectAlwaysInRangeQuick(t *testing.T) {
	f := func(seed int64, armsRaw uint8, updates []float64) bool {
		arms := 2 + int(armsRaw%8)
		rng := rand.New(rand.NewSource(seed))
		for _, alg := range []Algorithm{
			NewThompson(arms), NewEpsilonGreedy(arms, 0.1),
			NewSoftmax(arms, 0.1), NewUCB1(arms),
		} {
			for i, r := range updates {
				alg.Update(i%arms, clip01(r))
			}
			for k := 0; k < 5; k++ {
				a := alg.Select(rng)
				if a < 0 || a >= arms {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func clip01(r float64) float64 {
	if r != r || r < 0 { // NaN or negative
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// TestSimulateAccountingQuick: pull counts, trace lengths and reward
// bounds hold for arbitrary configurations.
func TestSimulateAccountingQuick(t *testing.T) {
	env := Bernoulli{Probs: []float64{0.2, 0.5, 0.8}}
	f := func(seed int64, itRaw, concRaw uint8) bool {
		iters := 1 + int(itRaw%50)
		conc := 1 + int(concRaw%8)
		h := Simulate(NewThompson(3), env, Config{Iterations: iters, Concurrent: conc, Seed: seed})
		if len(h.Pulls) != iters*conc {
			return false
		}
		if len(h.BestSoFar) != iters || len(h.CumRegret) != iters {
			return false
		}
		total := 0
		for _, c := range h.ArmCounts {
			total += c
		}
		return total == iters*conc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
