// Package mab implements the multi-armed bandit algorithms of the
// paper's Sec. 3.1 (ref [25]): softmax (Boltzmann), epsilon-greedy,
// UCB1, and Thompson Sampling, plus a batched simulator that models K
// concurrent tool runs ("licenses") per iteration — the 5x40 sampling
// regime of Fig. 7.
//
// Rewards are in [0,1]. Thompson Sampling uses a Beta posterior with
// fractional updates, which reduces to standard Beta-Bernoulli for 0/1
// rewards. The paper finds TS "more robust ... across a wide range of
// settings" than the alternatives; the ablation bench reproduces that
// comparison.
package mab

import (
	"fmt"
	"math"
	"math/rand"
)

// Algorithm is a bandit policy over a fixed number of arms.
type Algorithm interface {
	// Select returns the arm to pull next.
	Select(rng *rand.Rand) int
	// Update records an observed reward in [0,1] for an arm.
	Update(arm int, reward float64)
	// Name identifies the policy in reports.
	Name() string
}

// armStats tracks per-arm counts and means, shared by the frequentist
// policies.
type armStats struct {
	counts []int
	sums   []float64
}

func newArmStats(n int) armStats {
	return armStats{counts: make([]int, n), sums: make([]float64, n)}
}

func (s *armStats) mean(a int) float64 {
	if s.counts[a] == 0 {
		return 0
	}
	return s.sums[a] / float64(s.counts[a])
}

func (s *armStats) total() int {
	t := 0
	for _, c := range s.counts {
		t += c
	}
	return t
}

func (s *armStats) update(a int, r float64) {
	s.counts[a]++
	s.sums[a] += r
}

// EpsilonGreedy explores uniformly with probability Eps, otherwise
// exploits the best empirical mean.
type EpsilonGreedy struct {
	Eps float64
	s   armStats
}

// NewEpsilonGreedy creates an epsilon-greedy policy over n arms.
func NewEpsilonGreedy(n int, eps float64) *EpsilonGreedy {
	return &EpsilonGreedy{Eps: eps, s: newArmStats(n)}
}

// Select implements Algorithm.
func (e *EpsilonGreedy) Select(rng *rand.Rand) int {
	n := len(e.s.counts)
	if rng.Float64() < e.Eps {
		return rng.Intn(n)
	}
	best, bestMean := 0, math.Inf(-1)
	for a := 0; a < n; a++ {
		m := e.s.mean(a)
		if e.s.counts[a] == 0 {
			m = 1 // optimistic init: try every arm once
		}
		if m > bestMean {
			best, bestMean = a, m
		}
	}
	return best
}

// Update implements Algorithm.
func (e *EpsilonGreedy) Update(arm int, r float64) { e.s.update(arm, r) }

// Name implements Algorithm.
func (e *EpsilonGreedy) Name() string { return fmt.Sprintf("eps-greedy(%.2f)", e.Eps) }

// Softmax samples arms with Boltzmann probabilities over empirical means.
type Softmax struct {
	Tau float64 // temperature
	s   armStats
}

// NewSoftmax creates a softmax policy over n arms with temperature tau.
func NewSoftmax(n int, tau float64) *Softmax {
	if tau <= 0 {
		tau = 0.1
	}
	return &Softmax{Tau: tau, s: newArmStats(n)}
}

// Select implements Algorithm.
func (s *Softmax) Select(rng *rand.Rand) int {
	n := len(s.s.counts)
	w := make([]float64, n)
	var sum float64
	for a := 0; a < n; a++ {
		m := s.s.mean(a)
		if s.s.counts[a] == 0 {
			m = 0.5
		}
		w[a] = math.Exp(m / s.Tau)
		sum += w[a]
	}
	u := rng.Float64() * sum
	for a := 0; a < n; a++ {
		u -= w[a]
		if u <= 0 {
			return a
		}
	}
	return n - 1
}

// Update implements Algorithm.
func (s *Softmax) Update(arm int, r float64) { s.s.update(arm, r) }

// Name implements Algorithm.
func (s *Softmax) Name() string { return fmt.Sprintf("softmax(%.2f)", s.Tau) }

// UCB1 plays the arm with the highest upper confidence bound.
type UCB1 struct {
	s armStats
}

// NewUCB1 creates a UCB1 policy over n arms.
func NewUCB1(n int) *UCB1 { return &UCB1{s: newArmStats(n)} }

// Select implements Algorithm.
func (u *UCB1) Select(rng *rand.Rand) int {
	n := len(u.s.counts)
	total := u.s.total()
	for a := 0; a < n; a++ {
		if u.s.counts[a] == 0 {
			return a
		}
	}
	best, bestV := 0, math.Inf(-1)
	for a := 0; a < n; a++ {
		v := u.s.mean(a) + math.Sqrt(2*math.Log(float64(total))/float64(u.s.counts[a]))
		if v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Update implements Algorithm.
func (u *UCB1) Update(arm int, r float64) { u.s.update(arm, r) }

// Name implements Algorithm.
func (u *UCB1) Name() string { return "ucb1" }

// Thompson maintains a Beta posterior per arm and samples from it
// (Thompson Sampling, refs [38][33][40]). Fractional rewards update the
// pseudo-counts proportionally.
type Thompson struct {
	alpha []float64
	beta  []float64
}

// NewThompson creates a Thompson Sampling policy over n arms with a
// uniform Beta(1,1) prior.
func NewThompson(n int) *Thompson {
	t := &Thompson{alpha: make([]float64, n), beta: make([]float64, n)}
	for i := 0; i < n; i++ {
		t.alpha[i], t.beta[i] = 1, 1
	}
	return t
}

// Select implements Algorithm: sample each posterior, play the argmax.
func (t *Thompson) Select(rng *rand.Rand) int {
	best, bestV := 0, math.Inf(-1)
	for a := range t.alpha {
		v := betaSample(rng, t.alpha[a], t.beta[a])
		if v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Update implements Algorithm.
func (t *Thompson) Update(arm int, r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.alpha[arm] += r
	t.beta[arm] += 1 - r
}

// Name implements Algorithm.
func (t *Thompson) Name() string { return "thompson" }

// Posterior returns the posterior mean of an arm.
func (t *Thompson) Posterior(arm int) float64 {
	return t.alpha[arm] / (t.alpha[arm] + t.beta[arm])
}

// betaSample draws from Beta(a,b) via two gamma draws.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gammaSample draws from Gamma(shape,1) using Marsaglia-Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
