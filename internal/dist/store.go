package dist

import (
	"fmt"
	"sync"

	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// Store is the network tier of the campaign memo cache: an
// authoritative map of encoded campaign.Entry records keyed by content
// key, durably backed by the crash-safe WAL (every accepted put is
// appended before it becomes visible, and Open replays the log so a
// restarted store serves everything it ever acknowledged).
//
// The store also arbitrates the exactly-once compute contract via
// claims: a worker claims a key before computing it, the claim is
// cleared when the entry arrives (or when the coordinator declares the
// claiming node dead), and a second worker asking for a held key is
// told to wait instead of burning a license on a duplicate run.
// Determinism makes duplicate computes harmless — both produce the same
// bytes and the first put wins — so claims are purely a work-saving
// contract, never a correctness one.
type Store struct {
	mu      sync.Mutex
	entries map[string][]byte
	order   []string // insertion order, for deterministic Keys
	claims  map[string]string
	wal     *journal.Log
	walErr  error // sticky: first WAL append failure (durability degraded)

	walStats  journal.RecoveryStats
	recovered int
	corrupt   int
}

// OpenStore opens the result store, replaying the WAL in dir when dir
// is non-empty ("" = memory-only, for tests and ephemeral campaigns).
// Records that fail to decode are skipped and counted, never fatal —
// one corrupt entry costs one recompute, not the store.
func OpenStore(dir string, opts journal.Options) (*Store, error) {
	s := &Store{entries: map[string][]byte{}, claims: map[string]string{}}
	if dir == "" {
		return s, nil
	}
	wal, err := journal.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("dist: open store wal: %w", err)
	}
	s.wal = wal
	s.walStats = wal.Stats()
	for _, rec := range wal.Records() {
		e, err := campaign.DecodeEntry(rec)
		if err != nil {
			s.corrupt++
			continue
		}
		if _, dup := s.entries[e.Key]; dup {
			continue
		}
		data := append([]byte(nil), rec...)
		s.entries[e.Key] = data
		s.order = append(s.order, e.Key)
		s.recovered++
	}
	if s.corrupt > 0 {
		metrics.Add("dist.store.corrupt", int64(s.corrupt))
	}
	metrics.Add("dist.store.recovered", int64(s.recovered))
	return s, nil
}

// Get returns the encoded entry for a key, if the store holds it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		metrics.Add("dist.store.hit", 1)
	} else {
		metrics.Add("dist.store.miss", 1)
	}
	return data, ok
}

// Put stores one encoded entry under the exactly-once contract: the
// first write for a key wins (a duplicate is acknowledged but dropped
// — determinism guarantees it carried the same bytes), the WAL append
// happens before the entry becomes visible, and any claim on the key is
// cleared. The payload must decode as a campaign.Entry whose key
// matches; garbage is rejected so one sick node cannot poison every
// node's cache.
func (s *Store) Put(key string, data []byte) (stored bool, err error) {
	e, err := campaign.DecodeEntry(data)
	if err != nil {
		metrics.Add("dist.store.rejected", 1)
		return false, err
	}
	if e.Key != key {
		metrics.Add("dist.store.rejected", 1)
		return false, fmt.Errorf("dist: put key %q does not match entry key %q", key, e.Key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.claims, key) // the compute completed, whoever held it
	if _, dup := s.entries[key]; dup {
		metrics.Add("dist.store.duplicate", 1)
		return false, nil
	}
	if s.wal != nil {
		if werr := s.wal.Append(data); werr != nil && s.walErr == nil {
			// Durability degraded, liveness kept: the entry still serves
			// from memory, the first failure is surfaced via Err.
			s.walErr = fmt.Errorf("dist: store wal append: %w", werr)
			metrics.Add("dist.store.wal_err", 1)
		}
	}
	cp := append([]byte(nil), data...)
	s.entries[key] = cp
	s.order = append(s.order, key)
	metrics.Add("dist.store.stored", 1)
	return true, nil
}

// ClaimState is the store's answer to a compute claim.
type ClaimState struct {
	// State is "granted" (caller should compute), "done" (entry exists,
	// fetch it) or "held" (another node is computing; wait or poll).
	State string `json:"state"`
	// Holder is the claiming node for "held".
	Holder string `json:"holder,omitempty"`
}

// Claim asks for the right to compute key. Re-claiming a key the same
// node already holds is granted again (idempotent retry).
func (s *Store) Claim(key, node string) ClaimState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return ClaimState{State: "done"}
	}
	if holder, ok := s.claims[key]; ok && holder != node {
		metrics.Add("dist.claim.held", 1)
		return ClaimState{State: "held", Holder: holder}
	}
	s.claims[key] = node
	metrics.Add("dist.claim.granted", 1)
	return ClaimState{State: "granted"}
}

// ReleaseClaim abandons node's claim on key (no-op if node does not
// hold it) — the orderly give-up path of a worker that claimed but
// cannot finish.
func (s *Store) ReleaseClaim(key, node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.claims[key] == node {
		delete(s.claims, key)
		metrics.Add("dist.claim.released", 1)
	}
}

// ReleaseNode clears every claim node holds — the dead-node path: the
// coordinator declares a worker lost, frees its claims in one call, and
// only then reassigns its points, so the replacement workers are
// granted instead of told "held" by a ghost.
func (s *Store) ReleaseNode(node string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key, holder := range s.claims {
		if holder == node {
			delete(s.claims, key)
			n++
		}
	}
	if n > 0 {
		metrics.Add("dist.claim.revoked", int64(n))
	}
	return n
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// WALStats reports what WAL recovery found at open (zero value for a
// memory-only store).
func (s *Store) WALStats() journal.RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walStats
}

// Err reports the first WAL append failure (nil = fully durable).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walErr
}

// StoreStats is a coherent snapshot of the store.
type StoreStats struct {
	Entries   int `json:"entries"`
	Claims    int `json:"claims"`
	Recovered int `json:"recovered"`
	Corrupt   int `json:"corrupt"`
}

// Stats snapshots the store under one lock.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries: len(s.entries), Claims: len(s.claims),
		Recovered: s.recovered, Corrupt: s.corrupt,
	}
}

// Close syncs and closes the WAL (memory-only stores close trivially).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	wal := s.wal
	s.wal = nil
	return wal.Close()
}
