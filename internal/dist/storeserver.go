package dist

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/trace"
)

// StoreServer exposes a Store over HTTP — the central box every worker
// and coordinator talks to:
//
//	GET  /v1/entry?key=K          encoded entry bytes | 404
//	PUT  /v1/entry?key=K          body = encoded entry; {"stored":bool}
//	POST /v1/claim?key=K&node=N   ClaimState JSON
//	POST /v1/release?key=K&node=N release one claim
//	POST /v1/release-node?node=N  {"released":n} — dead-node revocation
//	GET  /v1/stats                StoreStats JSON
//	GET  /healthz                 "ok"
type StoreServer struct {
	store *Store
	node  httpNode
}

// maxEntryBytes bounds one uploaded entry (matches the WAL's own record
// bound so an accepted put can always be journaled).
const maxEntryBytes = 1 << 28

// NewStoreServer wraps a store.
func NewStoreServer(store *Store) *StoreServer {
	return &StoreServer{store: store}
}

// Store returns the underlying store.
func (s *StoreServer) Store() *Store { return s.store }

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *StoreServer) Start(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/entry", s.handleEntry)
	mux.HandleFunc("/v1/claim", s.handleClaim)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/release-node", s.handleReleaseNode)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", handleHealthz)
	mountNodeDebug(mux)
	return s.node.start(addr, mux)
}

// Addr returns the bound address.
func (s *StoreServer) Addr() string { return s.node.addr() }

// Close stops serving (idempotent; the store itself stays usable and is
// closed separately so its WAL outlives the listener).
func (s *StoreServer) Close() error { return s.node.close() }

// Shutdown stops the server gracefully: in-flight requests (a put being
// journaled, a claim poll) finish before the listener closes, bounded
// by ctx. Idempotent with Close.
func (s *StoreServer) Shutdown(ctx context.Context) error { return s.node.shutdown(ctx) }

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (s *StoreServer) handleEntry(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok := s.store.Get(key)
		if !ok {
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data) //nolint:errcheck
	case http.MethodPut, http.MethodPost:
		// Adopt the caller's trace context so the durable write (WAL
		// append included) shows up under the worker's publish attempt in
		// the stitched trace.
		_, sp := trace.Start(trace.AdoptHTTP(r.Context(), r.Header), "dist.store.put")
		sp.Set("key", key)
		data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes))
		if err != nil {
			sp.EndErr(err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		stored, err := s.store.Put(key, data)
		if err != nil {
			sp.EndErr(err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sp.End()
		writeJSON(w, map[string]bool{"stored": stored})
	default:
		http.Error(w, "GET or PUT required", http.StatusMethodNotAllowed)
	}
}

func (s *StoreServer) handleClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, node := r.URL.Query().Get("key"), r.URL.Query().Get("node")
	if key == "" || node == "" {
		http.Error(w, "missing key or node", http.StatusBadRequest)
		return
	}
	writeJSON(w, s.store.Claim(key, node))
}

func (s *StoreServer) handleRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, node := r.URL.Query().Get("key"), r.URL.Query().Get("node")
	if key == "" || node == "" {
		http.Error(w, "missing key or node", http.StatusBadRequest)
		return
	}
	s.store.ReleaseClaim(key, node)
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *StoreServer) handleReleaseNode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "missing node", http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]int{"released": s.store.ReleaseNode(node)})
}

func (s *StoreServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
