package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/trace"
)

// RPCConfig hardens one HTTP client against the network. The zero value
// is production-sane: explicit connect and per-attempt deadlines (the
// seed's bare http.Client{} would wait on a stalled TCP connection
// forever), bounded exponential-backoff retries with deterministic
// jitter, and transient-vs-permanent error classification.
type RPCConfig struct {
	// Timeout bounds one attempt of a short RPC (0 = 10s; <0 = none).
	// Long-running calls (a dispatched point compute) ignore it and rely
	// on context cancellation plus connect timeouts.
	Timeout time.Duration
	// Retries is how many times a transient failure is retried after the
	// first attempt (0 = 3; <0 = none).
	Retries int
	// BackoffBase seeds the exponential backoff (0 = 25ms).
	BackoffBase time.Duration
	// BackoffMax caps one backoff sleep (0 = 1s).
	BackoffMax time.Duration
	// Seed keys the deterministic backoff jitter — the same seeded
	// source the chaos engine draws from, so a rerun under the same
	// schedule reproduces the same sleep pattern per (target, op,
	// attempt).
	Seed int64
	// Transport overrides the HTTP transport (nil = a fresh transport
	// with explicit dial/TLS deadlines). This is where the chaos engine
	// plugs in.
	Transport http.RoundTripper
}

func (c RPCConfig) timeout() time.Duration {
	if c.Timeout == 0 {
		return 10 * time.Second
	}
	if c.Timeout < 0 {
		return 0
	}
	return c.Timeout
}

func (c RPCConfig) retries() int {
	if c.Retries == 0 {
		return 3
	}
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c RPCConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 25 * time.Millisecond
	}
	return c.BackoffBase
}

func (c RPCConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return time.Second
	}
	return c.BackoffMax
}

// NewTransport builds the hardened default transport — exported so a
// chaos engine can wrap it (chaos.Engine.Transport(source, base)) and
// hand the result back via RPCConfig.Transport.
func NewTransport() *http.Transport { return newTransport() }

// newTransport builds the hardened default transport: every phase of a
// connection that can wedge has a deadline except the response wait,
// which belongs to the per-attempt context (dispatches legitimately
// take minutes).
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 15 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
		MaxIdleConnsPerHost:   8,
		IdleConnTimeout:       30 * time.Second,
	}
}

// rpc is the retrying HTTP caller shared by StoreClient and
// Coordinator. target is the logical peer name ("store", "w0") stamped
// on requests for the chaos engine and used to key jitter.
type rpc struct {
	cfg    RPCConfig
	client *http.Client
	target string
}

func newRPC(cfg RPCConfig, target string) *rpc {
	rt := cfg.Transport
	if rt == nil {
		rt = newTransport()
	}
	return &rpc{cfg: cfg, client: &http.Client{Transport: rt}, target: target}
}

// closeIdle releases pooled connections (and their readLoop goroutines)
// so shutdown leaves nothing behind for the leak check to find.
func (r *rpc) closeIdle() { r.client.CloseIdleConnections() }

// rpcResult is one settled RPC: the final status and fully-read body,
// or the error that exhausted the retry budget.
type rpcResult struct {
	status int
	body   []byte
}

// transientStatus reports whether an HTTP status is worth retrying:
// server-side failures and backpressure, never semantic 4xx answers.
func transientStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// transientErr classifies a transport error. The caller's own
// cancellation is permanent (retrying a dead context is noise); every
// other transport failure — refused, reset, chaos-injected, a
// per-attempt deadline — is transient.
func transientErr(ctx context.Context, err error) bool {
	return ctx.Err() == nil && err != nil
}

// do runs one RPC with per-attempt deadlines and bounded retries. op
// names the call for chaos keying and metrics; maxBody bounds the
// response read; long marks a call whose attempt must not carry the
// short-RPC timeout (the response arrives when remote work finishes).
// A non-nil error means the retry budget is exhausted or the caller's
// context died; HTTP statuses (including 4xx/5xx) come back in the
// result for the caller to interpret.
func (r *rpc) do(ctx context.Context, op, method, url string, body []byte, maxBody int64, long bool) (rpcResult, error) {
	var lastErr error
	retries := r.cfg.retries()
	for attempt := 0; ; attempt++ {
		// One span per logical attempt: the receiver adopts this span's
		// identity from the injected headers, so its server-side work
		// parents under exactly the attempt that carried it — retries and
		// reroutes become visible sibling children in the stitched trace.
		actx, asp := trace.Start(ctx, "dist.rpc")
		asp.Set("op", op)
		asp.Set("target", r.target)
		asp.SetInt("attempt", int64(attempt))
		res, err := r.once(actx, op, method, url, body, maxBody, long)
		if err == nil {
			asp.SetInt("status", int64(res.status))
		}
		if err == nil && !transientStatus(res.status) {
			asp.End()
			return res, nil
		}
		if err == nil {
			lastErr = fmt.Errorf("dist: %s %s returned %d: %s", op, r.target, res.status, bytes.TrimSpace(res.body))
		} else {
			lastErr = err
		}
		if attempt >= retries || (err != nil && !transientErr(ctx, err)) {
			asp.EndWith(trace.Failed)
			if err == nil {
				// Out of retries on a 5xx: surface the status to the
				// caller (the coordinator's suspicion machinery wants the
				// code, not just an error string).
				return res, nil
			}
			return rpcResult{}, lastErr
		}
		asp.EndWith(trace.Retry)
		metrics.Add("dist.rpc.retried", 1)
		if err := sleepCtx(ctx, r.backoff(op, attempt)); err != nil {
			return rpcResult{}, lastErr
		}
	}
}

// once runs a single attempt.
func (r *rpc) once(ctx context.Context, op, method, url string, body []byte, maxBody int64, long bool) (rpcResult, error) {
	actx := ctx
	if t := r.cfg.timeout(); t > 0 && !long {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return rpcResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	req.Header.Set(chaos.TargetHeader, r.target)
	req.Header.Set(chaos.OpHeader, op)
	trace.InjectHTTP(actx, req.Header)
	resp, err := r.client.Do(req)
	if err != nil {
		return rpcResult{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		// A torn body (connection cut mid-response) is a transport
		// fault, not a short read to hand to the decoder.
		return rpcResult{}, fmt.Errorf("dist: %s %s: read body: %w", op, r.target, err)
	}
	return rpcResult{status: resp.StatusCode, body: data}, nil
}

// backoff computes the sleep before retry attempt+1: exponential in the
// attempt with a deterministic jitter in [d/2, d) drawn from the seeded
// splitmix stream keyed on (seed, target, op, attempt) — reruns of the
// same schedule sleep identically.
func (r *rpc) backoff(op string, attempt int) time.Duration {
	d := r.cfg.backoffBase() << uint(min(attempt, 20))
	if max := r.cfg.backoffMax(); d > max {
		d = max
	}
	h := fnv.New64a()
	io.WriteString(h, r.target) //nolint:errcheck
	h.Write([]byte{0})          //nolint:errcheck
	io.WriteString(h, op)       //nolint:errcheck
	coins := num.NewSplitMix(num.Mix(r.cfg.Seed^int64(h.Sum64()), uint64(attempt)))
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + coins.Uint64()%half)
}

// sleepCtx sleeps for d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errUnavailable marks a node-level transient condition a worker
// reports instead of failing a point (e.g. the store is unreachable
// from that worker): the coordinator should retry or re-route, not
// record a permanent point failure and not necessarily bury the node.
var errUnavailable = errors.New("dist: temporarily unavailable")
