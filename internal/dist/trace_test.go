package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func attr(sd trace.SpanData, key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// TestRPCRetryTraceAdoption is the satellite contract: when an RPC is
// retried, the stitched trace shows exactly one dist.rpc span per
// logical attempt, the server-side span parents under the attempt that
// actually carried it, and no span is orphaned.
func TestRPCRetryTraceAdoption(t *testing.T) {
	tr := trace.New(0)
	trace.Enable(tr)
	defer trace.Disable()

	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= 2 {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		// The real worker/store handlers do exactly this: adopt the
		// attempt's identity from the headers, then span the server work.
		_, sp := trace.Start(trace.AdoptHTTP(r.Context(), r.Header), "server.work")
		sp.End()
		rw.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	r := newRPC(RPCConfig{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}, "store")
	defer r.closeIdle()
	ctx, root := tr.StartOn(context.Background(), "caller")
	res, err := r.do(ctx, "test.op", http.MethodGet, srv.URL, nil, 1<<20, false)
	root.End()
	if err != nil || res.status != http.StatusOK {
		t.Fatalf("rpc: status=%d err=%v", res.status, err)
	}

	spans, _ := tr.Snapshot()
	byID := map[uint64]trace.SpanData{}
	var attempts, server []trace.SpanData
	for _, sd := range spans {
		byID[sd.ID] = sd
		switch sd.Name {
		case "dist.rpc":
			attempts = append(attempts, sd)
		case "server.work":
			server = append(server, sd)
		}
	}

	// Exactly one span per logical attempt: two 503s + one 200.
	if len(attempts) != 3 {
		t.Fatalf("got %d dist.rpc spans, want 3 (one per attempt): %+v", len(attempts), attempts)
	}
	outcomes := map[trace.Outcome]int{}
	var okAttempt trace.SpanData
	for _, a := range attempts {
		outcomes[a.Outcome]++
		if a.Outcome == trace.OK {
			okAttempt = a
		}
		if a.Parent != root.ID() {
			t.Fatalf("attempt span parent = %d, want caller %d", a.Parent, root.ID())
		}
	}
	if outcomes[trace.Retry] != 2 || outcomes[trace.OK] != 1 {
		t.Fatalf("attempt outcomes = %v, want 2 retries + 1 ok", outcomes)
	}
	if got := attr(okAttempt, "attempt"); got != "2" {
		t.Fatalf("succeeding attempt attr = %q, want \"2\"", got)
	}

	// The server-side span exists once and parents under the succeeding
	// attempt — not the first attempt, not the caller.
	if len(server) != 1 {
		t.Fatalf("got %d server.work spans, want 1", len(server))
	}
	if server[0].Parent != okAttempt.ID {
		t.Fatalf("server span parent = %d, want succeeding attempt %d", server[0].Parent, okAttempt.ID)
	}

	// No orphans: every non-root span's parent is in the snapshot.
	for _, sd := range spans {
		if sd.Parent == 0 {
			continue
		}
		if _, ok := byID[sd.Parent]; !ok {
			t.Fatalf("span %q (%d) orphaned: parent %d not in trace", sd.Name, sd.ID, sd.Parent)
		}
	}
}

// TestNodeDebugEndpoints: every worker and store process exposes
// /metrics (live counters + histograms) and the stock pprof set.
func TestNodeDebugEndpoints(t *testing.T) {
	metrics.Add("dist.rpc.retried", 1) // ensure the counter exists in the dump
	mux := http.NewServeMux()
	mountNodeDebug(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "dist.rpc.retried") {
		t.Fatalf("/metrics missing dist.rpc.retried:\n%s", body[:n])
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
	}
}
