package dist

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// httpNode is the shared serve/close plumbing of the dist services
// (store server, worker). Start and Close are safe to race: whichever
// takes the lock first wins, Close is idempotent, and Start after Close
// fails instead of leaking a listener nobody will ever stop.
type httpNode struct {
	mu     sync.Mutex
	srv    *http.Server
	ln     net.Listener
	closed bool
}

// start begins serving h on addr and returns the bound address.
func (n *httpNode) start(addr string, h http.Handler) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return "", fmt.Errorf("dist: node is closed")
	}
	if n.srv != nil {
		return "", fmt.Errorf("dist: node already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.ln = ln
	n.srv = &http.Server{Handler: h}
	go n.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// close stops the node abortively (in-flight connections are killed —
// the semantics a worker "kill" needs). Idempotent.
func (n *httpNode) close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	if n.srv != nil {
		return n.srv.Close()
	}
	return nil
}

// shutdown stops the node gracefully: the listener closes, in-flight
// requests finish (bounded by ctx). Idempotent with close.
func (n *httpNode) shutdown(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	srv := n.srv
	n.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// addr returns the bound address ("" before start).
func (n *httpNode) addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}
