package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/flow"
	"repro/internal/journal"
)

// fastHealth is the probe cadence the chaos tests run at: quick enough
// that suspicion, death, and rejoin all resolve inside a test's budget.
var fastHealth = HealthConfig{
	ProbeInterval:  5 * time.Millisecond,
	ProbeTimeout:   250 * time.Millisecond,
	ProbeFails:     2,
	RejoinInterval: 5 * time.Millisecond,
}

// chaosCluster is startCluster with per-endpoint chaos transports: each
// worker's store client and the coordinator's RPCs all route through
// one engine, tagged with their logical source names.
func chaosCluster(t *testing.T, pts []campaign.Point, n int, eng *chaos.Engine) (*cluster, CoordinatorConfig) {
	t.Helper()
	store, err := OpenStore("", journal.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv := NewStoreServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start store server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	coordClient := NewStoreClientCfg("http://"+addr, ClientConfig{
		RPC: RPCConfig{Transport: eng.Transport("coord", NewTransport())},
	})
	t.Cleanup(coordClient.Close)
	cl := &cluster{store: store, server: srv, client: coordClient}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		wc := NewStoreClientCfg("http://"+addr, ClientConfig{
			RPC: RPCConfig{Transport: eng.Transport(id, NewTransport())},
		})
		t.Cleanup(wc.Close)
		w := NewWorker(WorkerConfig{ID: id, Points: pts, Store: wc, Workers: 2})
		waddr, err := w.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		cl.workers = append(cl.workers, w)
		cl.nodes = append(cl.nodes, Node{ID: id, URL: "http://" + waddr, Slots: 2})
	}
	cfg := CoordinatorConfig{
		Points: pts, Nodes: cl.nodes, Store: coordClient,
		RPC:    RPCConfig{Transport: eng.Transport("coord", NewTransport())},
		Health: fastHealth,
	}
	return cl, cfg
}

// TestChaosSoakByteIdentity is the tentpole contract under fire: every
// named fault schedule, at several seeds, yields output byte-identical
// to the single-node reference as long as one node stays reachable.
func TestChaosSoakByteIdentity(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 3, 4)
	ref := singleNodeReference(t, pts)

	for _, profile := range chaos.Profiles() {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				ccfg, err := chaos.Profile(profile, seed)
				if err != nil {
					t.Fatal(err)
				}
				cl, cfg := chaosCluster(t, pts, 3, chaos.New(ccfg))
				coord, err := NewCoordinator(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := coord.Run(context.Background())
				if err != nil {
					t.Fatalf("campaign under %s/%d failed: %v (stats %+v)", profile, seed, err, coord.Stats())
				}
				for i := range ref {
					want := normalize(t, pts[i].CacheKey(), ref[i])
					if !reflect.DeepEqual(got[i], want) {
						t.Fatalf("%s/%d: point %d diverged from reference", profile, seed, i)
					}
				}
				_ = cl
			})
		}
	}
}

// gate is a controllable transport: requests whose chaos target is cut
// fail with a transport error — the deterministic stand-in for a
// partition, driven by the test instead of coins.
type gate struct {
	mu   sync.Mutex
	cut  map[string]bool
	base http.RoundTripper
}

func newGate() *gate { return &gate{cut: map[string]bool{}, base: NewTransport()} }

func (g *gate) set(target string, cut bool) {
	g.mu.Lock()
	g.cut[target] = cut
	g.mu.Unlock()
}

func (g *gate) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.Header.Get(chaos.TargetHeader)
	g.mu.Lock()
	cut := g.cut[target]
	g.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("gate: link to %s cut", target)
	}
	return g.base.RoundTrip(req)
}

// TestSuspectDeadRejoinServesPoints drives the membership machine end
// to end with a deterministic gate: w0 is cut until the coordinator
// declares it dead, then healed — it must rejoin and complete points
// again, and the output must still match the reference.
func TestSuspectDeadRejoinServesPoints(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 4, 6) // enough work to outlive the heal
	ref := singleNodeReference(t, pts)

	cl := startCluster(t, pts, 2, nil)
	g := newGate()
	g.set("w0", true)
	coord, err := NewCoordinator(CoordinatorConfig{
		Points: pts, Nodes: cl.nodes, Store: cl.client,
		RPC:    RPCConfig{Transport: g},
		Health: fastHealth,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var got []*flow.Result
	go func() {
		res, err := coord.Run(context.Background())
		got = res
		done <- err
	}()

	// Phase 1: the cut link must take w0 through suspect to dead.
	waitFor(t, 5*time.Second, func() bool { return coord.Stats().Deaths >= 1 })
	before := cl.workers[0].Completed()
	if before != 0 {
		t.Fatalf("cut worker completed %d points", before)
	}

	// Phase 2: heal. The prober must bring w0 back and its slots must
	// pull work again.
	g.set("w0", false)
	if err := <-done; err != nil {
		t.Fatalf("campaign failed: %v (stats %+v)", err, coord.Stats())
	}
	st := coord.Stats()
	if st.Rejoined < 1 {
		t.Fatalf("healed node never rejoined: %+v", st)
	}
	if cl.workers[0].Completed() == 0 {
		t.Fatalf("rejoined node served no points: %+v", st)
	}
	for i := range ref {
		want := normalize(t, pts[i].CacheKey(), ref[i])
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d diverged after death+rejoin", i)
		}
	}
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStoreClientErrorPaths tables the client's failure handling: torn
// gob bodies decode to a miss (never a partial entry), key-mismatched
// puts are rejected server-side, and duplicated put deliveries are
// idempotent (first-put-wins).
func TestStoreClientErrorPaths(t *testing.T) {
	design := tinyDesign(5)
	pts := sweepPoints(design, 1, 1)
	ref := singleNodeReference(t, pts)
	key := pts[0].CacheKey()
	data, err := campaign.EncodeEntry(campaign.Entry{Key: key, Res: ref[0]})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("torn-gob-body", func(t *testing.T) {
		for _, cutAt := range []int{1, len(data) / 2, len(data) - 1} {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write(data[:cutAt]) //nolint:errcheck
			}))
			c := NewStoreClientCfg(srv.URL, ClientConfig{RPC: RPCConfig{Retries: -1}})
			if _, ok := c.Load(key); ok {
				t.Fatalf("truncated body at %d bytes decoded as a hit", cutAt)
			}
			c.Close()
			srv.Close()
		}
	})

	t.Run("key-mismatch-put", func(t *testing.T) {
		store, err := OpenStore("", journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewStoreServer(store)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		// Hand-roll a put whose URL key disagrees with the entry's own
		// key: the server must reject it and store nothing under either.
		req, _ := http.NewRequest(http.MethodPut, "http://"+addr+"/v1/entry?key=somebody-else", strings.NewReader(string(data)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("key-mismatched put accepted")
		}
		if store.Len() != 0 {
			t.Fatalf("mismatched put stored %d entries", store.Len())
		}
	})

	t.Run("duplicate-put-idempotent", func(t *testing.T) {
		store, err := OpenStore("", journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewStoreServer(store)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		// Every put delivered twice: the store must keep exactly one
		// entry and the client must still see success.
		eng := chaos.New(chaos.Config{Seed: 1, DupRate: 1})
		c := NewStoreClientCfg("http://"+addr, ClientConfig{
			RPC: RPCConfig{Transport: eng.Transport("w0", NewTransport())},
		})
		defer c.Close()
		c.Store(campaign.Entry{Key: key, Res: ref[0]})
		if got := c.PendingBacklog(); got != 0 {
			t.Fatalf("duplicated put parked the entry: backlog=%d", got)
		}
		if store.Len() != 1 {
			t.Fatalf("store has %d entries after duplicated put, want 1", store.Len())
		}
		e, ok := c.Load(key)
		if !ok {
			t.Fatal("entry missing after duplicated put")
		}
		if !reflect.DeepEqual(e.Res, normalize(t, key, ref[0])) {
			t.Fatal("duplicated put corrupted the entry")
		}
	})
}

// TestBacklogBackfillOnHeal: a worker-side client whose store link is
// cut parks write-throughs and publishes them when the link heals.
func TestBacklogBackfillOnHeal(t *testing.T) {
	design := tinyDesign(6)
	pts := sweepPoints(design, 1, 2)
	ref := singleNodeReference(t, pts)

	store, err := OpenStore("", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewStoreServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := newGate()
	g.set("store", true)
	c := NewStoreClientCfg("http://"+addr, ClientConfig{
		RPC: RPCConfig{Transport: g, Retries: -1, BackoffBase: time.Millisecond},
	})
	defer c.Close()

	for i, p := range pts {
		c.Store(campaign.Entry{Key: p.CacheKey(), Res: ref[i]})
	}
	if got := c.PendingBacklog(); got != len(pts) {
		t.Fatalf("backlog=%d, want %d (store is cut)", got, len(pts))
	}
	if !c.Parked(pts[0].CacheKey()) {
		t.Fatal("Parked misses a backlogged key")
	}
	if store.Len() != 0 {
		t.Fatalf("cut store received %d entries", store.Len())
	}

	g.set("store", false)
	flushed, pending := c.Backfill(context.Background())
	if flushed != len(pts) || pending != 0 {
		t.Fatalf("backfill flushed=%d pending=%d, want %d/0", flushed, pending, len(pts))
	}
	if store.Len() != len(pts) {
		t.Fatalf("store has %d entries after backfill, want %d", store.Len(), len(pts))
	}
}

// TestWorkerGracefulShutdown: a draining worker refuses new runs with
// 503 and Shutdown returns cleanly with nothing in flight.
func TestWorkerGracefulShutdown(t *testing.T) {
	design := tinyDesign(7)
	pts := sweepPoints(design, 1, 1)
	cl := startCluster(t, pts, 1, nil)

	if err := cl.workers[0].Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed; a second Shutdown is a no-op.
	if err := cl.workers[0].Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	resp, err := http.Post(cl.nodes[0].URL+"/v1/run", "application/json", strings.NewReader(`{"index":0}`))
	if err == nil {
		resp.Body.Close()
		t.Fatal("closed worker still accepting connections")
	}
}

// TestNoGoroutineLeaks runs a full chaos campaign — including a node
// death and rejoin — shuts everything down, and requires the goroutine
// count to return to its baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 2, 3)

	base := runtime.NumGoroutine()

	ccfg, err := chaos.Profile("partition", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, cfg := chaosCluster(t, pts, 2, chaos.New(ccfg))
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, w := range cl.workers {
		if err := w.Shutdown(context.Background()); err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	}
	cl.client.Close()
	if err := cl.server.Shutdown(context.Background()); err != nil {
		t.Fatalf("store shutdown: %v", err)
	}

	// Idle HTTP connections and just-cancelled probers take a moment to
	// unwind; poll instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
