package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// StoreClient talks to a StoreServer and implements campaign.Tier, so a
// worker's in-process cache gains the network tier with one SetTier
// call: L1 miss → HTTP get; fresh compute → HTTP put (write-through).
// Tier faults are counted and absorbed — a flaky store degrades a node
// to recomputing, it never fails a campaign.
//
// Every RPC carries a deadline and a bounded retry budget (RPCConfig),
// and propagates the caller's context — the seed's bare http.Client{}
// could wedge a coordinator goroutine forever on one stalled TCP
// connection. When the store is unreachable, Store falls back to an
// in-memory backlog that is flushed on the next healthy RPC (or by
// Backfill), so a partitioned worker keeps computing locally and
// publishes its results when the link heals.
type StoreClient struct {
	base string
	rpc  *rpc

	// baseCtx scopes the Tier methods (campaign.Tier has no ctx
	// parameter); Background until SetBaseContext.
	ctxMu   sync.RWMutex
	baseCtx context.Context

	backMu  sync.Mutex
	backlog []campaign.Entry
	backSet map[string]bool
}

// ClientConfig parameterizes a store client.
type ClientConfig struct {
	// RPC tunes deadlines, retries, and the chaos transport.
	RPC RPCConfig
	// Source is the logical endpoint name the chaos engine sees as the
	// origin of this client's RPCs (defaults to "client").
	Source string
}

// backlogCap bounds the offline backlog; beyond it the oldest entries
// are dropped (they cost one recompute, never correctness).
const backlogCap = 1024

// NewStoreClient creates a client for a store base URL
// (e.g. "http://127.0.0.1:7600") with default hardening.
func NewStoreClient(baseURL string) *StoreClient {
	return NewStoreClientCfg(baseURL, ClientConfig{})
}

// NewStoreClientCfg creates a client with explicit RPC hardening.
func NewStoreClientCfg(baseURL string, cfg ClientConfig) *StoreClient {
	return &StoreClient{
		base:    baseURL,
		rpc:     newRPC(cfg.RPC, "store"),
		baseCtx: context.Background(),
		backSet: map[string]bool{},
	}
}

// BaseURL returns the store base URL.
func (c *StoreClient) BaseURL() string { return c.base }

// SetBaseContext scopes the context-free Tier methods (Load/Store) to
// ctx — typically the owning worker's lifecycle — so a shutdown
// releases any RPC the cache has in flight.
func (c *StoreClient) SetBaseContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctxMu.Lock()
	c.baseCtx = ctx
	c.ctxMu.Unlock()
}

func (c *StoreClient) tierCtx() context.Context {
	c.ctxMu.RLock()
	defer c.ctxMu.RUnlock()
	return c.baseCtx
}

// Close releases pooled connections. The client stays usable; Close is
// a leak-hygiene call for shutdown paths.
func (c *StoreClient) Close() { c.rpc.closeIdle() }

func (c *StoreClient) entryURL(key string) string {
	return c.base + "/v1/entry?key=" + url.QueryEscape(key)
}

// Load implements campaign.Tier: fetch and decode the entry for key.
func (c *StoreClient) Load(key string) (campaign.Entry, bool) {
	return c.LoadCtx(c.tierCtx(), key)
}

// LoadCtx is Load with the caller's context.
func (c *StoreClient) LoadCtx(ctx context.Context, key string) (campaign.Entry, bool) {
	res, err := c.rpc.do(ctx, "entry.get", http.MethodGet, c.entryURL(key), nil, maxEntryBytes, false)
	if err != nil {
		metrics.Add("dist.client.get_err", 1)
		return campaign.Entry{}, false
	}
	if res.status != http.StatusOK {
		return campaign.Entry{}, false
	}
	e, err := campaign.DecodeEntry(res.body)
	if err != nil {
		// A truncated or torn gob body decodes to an error, never a
		// partial entry served as truth.
		metrics.Add("dist.client.decode_err", 1)
		return campaign.Entry{}, false
	}
	c.flushSome(ctx) // the store answered: opportunistically backfill
	return e, true
}

// Store implements campaign.Tier: encode and upload a computed entry.
// Best-effort by contract — failures are counted and the entry parked
// in the backlog for backfill, never propagated.
func (c *StoreClient) Store(e campaign.Entry) {
	c.StoreCtx(c.tierCtx(), e)
}

// StoreCtx is Store with the caller's context.
func (c *StoreClient) StoreCtx(ctx context.Context, e campaign.Entry) {
	if err := c.put(ctx, e); err != nil {
		metrics.Add("dist.client.put_err", 1)
		c.park(e)
		return
	}
	c.flushSome(ctx)
}

// put uploads one entry (no backlog interaction).
func (c *StoreClient) put(ctx context.Context, e campaign.Entry) error {
	data, err := campaign.EncodeEntry(e)
	if err != nil {
		metrics.Add("dist.client.encode_err", 1)
		return err
	}
	res, err := c.rpc.do(ctx, "entry.put", http.MethodPut, c.entryURL(e.Key), data, 1<<16, false)
	if err != nil {
		return err
	}
	if res.status != http.StatusOK {
		return fmt.Errorf("dist: put returned %d", res.status)
	}
	return nil
}

// park queues an entry for backfill once the store answers again.
func (c *StoreClient) park(e campaign.Entry) {
	c.backMu.Lock()
	defer c.backMu.Unlock()
	if c.backSet[e.Key] {
		return
	}
	if len(c.backlog) >= backlogCap {
		drop := c.backlog[0]
		c.backlog = c.backlog[1:]
		delete(c.backSet, drop.Key)
		metrics.Add("dist.client.backlog_dropped", 1)
	}
	c.backlog = append(c.backlog, e)
	c.backSet[e.Key] = true
	metrics.Add("dist.client.backlogged", 1)
}

// Parked reports whether key's entry is waiting in the backlog — i.e.
// computed here but not yet visible in the store.
func (c *StoreClient) Parked(key string) bool {
	c.backMu.Lock()
	defer c.backMu.Unlock()
	return c.backSet[key]
}

// PendingBacklog reports how many computed entries await backfill.
func (c *StoreClient) PendingBacklog() int {
	c.backMu.Lock()
	defer c.backMu.Unlock()
	return len(c.backlog)
}

// Backfill pushes the whole backlog to the store, stopping at the first
// failure (the store is presumably still unreachable). Returns how many
// entries were published and how many remain parked.
func (c *StoreClient) Backfill(ctx context.Context) (flushed, pending int) {
	for {
		c.backMu.Lock()
		if len(c.backlog) == 0 {
			c.backMu.Unlock()
			return flushed, 0
		}
		e := c.backlog[0]
		c.backMu.Unlock()

		if err := c.put(ctx, e); err != nil {
			return flushed, c.PendingBacklog()
		}
		c.backMu.Lock()
		// Pop e if still at the head (a concurrent Backfill may have
		// raced us to it; either way it is published).
		if len(c.backlog) > 0 && c.backlog[0].Key == e.Key {
			c.backlog = c.backlog[1:]
			delete(c.backSet, e.Key)
		}
		c.backMu.Unlock()
		flushed++
		metrics.Add("dist.client.backfilled", 1)
	}
}

// flushSome opportunistically backfills a couple of parked entries
// after any healthy RPC — the reconnect signal that costs no extra
// probing. Bounded so a tier call never turns into a long flush.
func (c *StoreClient) flushSome(ctx context.Context) {
	if c.PendingBacklog() == 0 {
		return
	}
	for i := 0; i < 2; i++ {
		c.backMu.Lock()
		if len(c.backlog) == 0 {
			c.backMu.Unlock()
			return
		}
		e := c.backlog[0]
		c.backMu.Unlock()
		if err := c.put(ctx, e); err != nil {
			return
		}
		c.backMu.Lock()
		if len(c.backlog) > 0 && c.backlog[0].Key == e.Key {
			c.backlog = c.backlog[1:]
			delete(c.backSet, e.Key)
		}
		c.backMu.Unlock()
		metrics.Add("dist.client.backfilled", 1)
	}
}

// Claim asks the store for the right to compute key on node's behalf.
func (c *StoreClient) Claim(ctx context.Context, key, node string) (ClaimState, error) {
	u := fmt.Sprintf("%s/v1/claim?key=%s&node=%s", c.base, url.QueryEscape(key), url.QueryEscape(node))
	res, err := c.rpc.do(ctx, "claim", http.MethodPost, u, nil, 1<<16, false)
	if err != nil {
		return ClaimState{}, err
	}
	if res.status != http.StatusOK {
		return ClaimState{}, fmt.Errorf("dist: claim returned %d", res.status)
	}
	var st ClaimState
	if err := json.Unmarshal(res.body, &st); err != nil {
		return ClaimState{}, err
	}
	return st, nil
}

// ReleaseClaim abandons node's claim on key (best-effort).
func (c *StoreClient) ReleaseClaim(ctx context.Context, key, node string) {
	u := fmt.Sprintf("%s/v1/release?key=%s&node=%s", c.base, url.QueryEscape(key), url.QueryEscape(node))
	c.rpc.do(ctx, "release", http.MethodPost, u, nil, 1<<16, false) //nolint:errcheck
}

// ReleaseNode revokes every claim node holds — the coordinator's
// dead-node call. Unlike the tier methods this one propagates errors:
// reassigning points while a ghost still holds claims would stall the
// replacement workers in their wait loops.
func (c *StoreClient) ReleaseNode(ctx context.Context, node string) (int, error) {
	u := c.base + "/v1/release-node?node=" + url.QueryEscape(node)
	res, err := c.rpc.do(ctx, "release-node", http.MethodPost, u, nil, 1<<16, false)
	if err != nil {
		return 0, err
	}
	if res.status != http.StatusOK {
		return 0, fmt.Errorf("dist: release-node returned %d", res.status)
	}
	var out map[string]int
	if err := json.Unmarshal(res.body, &out); err != nil {
		return 0, err
	}
	return out["released"], nil
}

// Healthz probes the store once, with the per-attempt deadline and no
// retries (probes are themselves the retry loop).
func (c *StoreClient) Healthz(ctx context.Context) error {
	r := &rpc{cfg: c.rpc.cfg, client: c.rpc.client, target: "store"}
	r.cfg.Retries = -1
	res, err := r.do(ctx, "healthz", http.MethodGet, c.base+"/healthz", nil, 1<<10, false)
	if err != nil {
		return err
	}
	if res.status != http.StatusOK {
		return fmt.Errorf("dist: store healthz returned %d", res.status)
	}
	return nil
}
