package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// StoreClient talks to a StoreServer and implements campaign.Tier, so a
// worker's in-process cache gains the network tier with one SetTier
// call: L1 miss → HTTP get; fresh compute → HTTP put (write-through).
// Tier faults are counted and absorbed — a flaky store degrades a node
// to recomputing, it never fails a campaign.
type StoreClient struct {
	base   string
	client *http.Client
}

// NewStoreClient creates a client for a store base URL
// (e.g. "http://127.0.0.1:7600").
func NewStoreClient(baseURL string) *StoreClient {
	return &StoreClient{base: baseURL, client: &http.Client{}}
}

// BaseURL returns the store base URL.
func (c *StoreClient) BaseURL() string { return c.base }

func (c *StoreClient) entryURL(key string) string {
	return c.base + "/v1/entry?key=" + url.QueryEscape(key)
}

// Load implements campaign.Tier: fetch and decode the entry for key.
func (c *StoreClient) Load(key string) (campaign.Entry, bool) {
	resp, err := c.client.Get(c.entryURL(key))
	if err != nil {
		metrics.Add("dist.client.get_err", 1)
		return campaign.Entry{}, false
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return campaign.Entry{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		metrics.Add("dist.client.get_err", 1)
		return campaign.Entry{}, false
	}
	e, err := campaign.DecodeEntry(data)
	if err != nil {
		metrics.Add("dist.client.decode_err", 1)
		return campaign.Entry{}, false
	}
	return e, true
}

// Store implements campaign.Tier: encode and upload a computed entry.
// Best-effort by contract — failures are counted, never propagated.
func (c *StoreClient) Store(e campaign.Entry) {
	data, err := campaign.EncodeEntry(e)
	if err != nil {
		metrics.Add("dist.client.encode_err", 1)
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.entryURL(e.Key), bytes.NewReader(data))
	if err != nil {
		metrics.Add("dist.client.put_err", 1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		metrics.Add("dist.client.put_err", 1)
		return
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		metrics.Add("dist.client.put_err", 1)
	}
}

// Claim asks the store for the right to compute key on node's behalf.
func (c *StoreClient) Claim(key, node string) (ClaimState, error) {
	u := fmt.Sprintf("%s/v1/claim?key=%s&node=%s", c.base, url.QueryEscape(key), url.QueryEscape(node))
	resp, err := c.client.Post(u, "", nil)
	if err != nil {
		return ClaimState{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return ClaimState{}, fmt.Errorf("dist: claim returned %s", resp.Status)
	}
	var st ClaimState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ClaimState{}, err
	}
	return st, nil
}

// ReleaseClaim abandons node's claim on key (best-effort).
func (c *StoreClient) ReleaseClaim(key, node string) {
	u := fmt.Sprintf("%s/v1/release?key=%s&node=%s", c.base, url.QueryEscape(key), url.QueryEscape(node))
	if resp, err := c.client.Post(u, "", nil); err == nil {
		drain(resp)
	}
}

// ReleaseNode revokes every claim node holds — the coordinator's
// dead-node call. Unlike the tier methods this one propagates errors:
// reassigning points while a ghost still holds claims would stall the
// replacement workers in their wait loops.
func (c *StoreClient) ReleaseNode(node string) (int, error) {
	u := c.base + "/v1/release-node?node=" + url.QueryEscape(node)
	resp, err := c.client.Post(u, "", nil)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("dist: release-node returned %s", resp.Status)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out["released"], nil
}

// drain consumes and closes a response body so the client's keep-alive
// pool can reuse the connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}
