package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Node describes one worker node the coordinator can dispatch to.
type Node struct {
	// ID is the node's ring identity (must match the worker's own ID).
	ID string
	// URL is the worker's base URL (e.g. "http://127.0.0.1:7601").
	URL string
	// Slots is how many points the node runs concurrently (<=0 = 1) —
	// its license count as seen from the coordinator.
	Slots int
}

// CoordinatorConfig parameterizes a campaign coordinator.
type CoordinatorConfig struct {
	// Points is the campaign, in output order. Every point must carry a
	// design key (uncacheable points cannot be addressed by content).
	Points []campaign.Point
	// Nodes are the worker nodes to shard over.
	Nodes []Node
	// Store fetches the final results (and revokes dead nodes' claims).
	Store *StoreClient
	// Replicas is the ring's virtual-node count per node (0 = 64).
	Replicas int
	// Ledger, when non-nil, is an externally shared slot ledger (e.g.
	// the front door's per-tenant pool); nil builds a private one sized
	// to the nodes' slot sum.
	Ledger *sched.Ledger
	// RPC hardens the dispatch and probe calls (deadlines, retries, and
	// the chaos transport).
	RPC RPCConfig
	// Health tunes the suspect -> dead -> rejoin membership prober.
	Health HealthConfig
}

// dispatchCap is how many failed dispatch rounds one point tolerates on
// its assigned node before the coordinator reroutes it to a different
// live node — the escape hatch from a node that answers /healthz but
// 5xxes every run (e.g. it cannot reach the store while the coordinator
// can reach both).
const dispatchCap = 3

// Coordinator shards a campaign across worker nodes by consistent
// hashing over each point's content key, dispatches over HTTP with
// per-node slot accounting, lets idle nodes steal queued points when
// the hash split is uneven, and assembles the final result list by
// fetching every point's entry from the store — which is what makes the
// output byte-identical to a single-node run at any node count.
//
// Failure handling is the suspect -> dead -> rejoin machine in
// membership.go: a failed RPC suspends a node instead of burying it, a
// /healthz prober decides between recovery and death, a dead node's
// queue reshards onto survivors with minimal movement, and a healed
// node rejoins the ring and serves points again.
type Coordinator struct {
	cfg        CoordinatorConfig
	ring       *Ring
	ledger     *sched.Ledger
	keys       []string
	httpClient *http.Client
	rpcs       map[string]*rpc

	mu         sync.Mutex
	cond       *sync.Cond
	state      map[string]NodeState
	urls       map[string]string
	queues     map[string][]int
	attempts   map[int]int // failed dispatch rounds per point index
	nodeCtx    map[string]context.Context
	nodeCancel map[string]context.CancelFunc
	probePoke  map[string]chan struct{}
	runCtx     context.Context
	remaining  int
	done       bool
	fatal      error
	failed     []campaign.PointError

	deaths     atomic.Int64
	reassigned atomic.Int64
	stolen     atomic.Int64
	suspected  atomic.Int64
	recovered  atomic.Int64
	rejoined   atomic.Int64
	rerouted   atomic.Int64
}

// NewCoordinator validates the config and builds the ring.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one node")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("dist: coordinator needs a store client")
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 64
	}
	ids := make([]string, 0, len(cfg.Nodes))
	urls := make(map[string]string, len(cfg.Nodes))
	total := 0
	for _, n := range cfg.Nodes {
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("dist: node needs ID and URL")
		}
		if _, dup := urls[n.ID]; dup {
			return nil, fmt.Errorf("dist: duplicate node ID %q", n.ID)
		}
		ids = append(ids, n.ID)
		urls[n.ID] = strings.TrimSuffix(n.URL, "/")
		total += nodeSlots(n)
	}
	keys := make([]string, len(cfg.Points))
	for i, p := range cfg.Points {
		keys[i] = p.CacheKey()
		if keys[i] == "" {
			return nil, fmt.Errorf("dist: point %d has no design key", i)
		}
	}
	ledger := cfg.Ledger
	if ledger == nil {
		ledger = sched.NewLedger(total)
	}
	for _, n := range cfg.Nodes {
		ledger.SetWeight(n.ID, nodeSlots(n))
	}
	rt := cfg.RPC.Transport
	if rt == nil {
		rt = newTransport()
	}
	c := &Coordinator{
		cfg: cfg, ring: NewRing(ids, replicas), ledger: ledger,
		keys:       keys,
		httpClient: &http.Client{Transport: rt},
		rpcs:       map[string]*rpc{},
		state:      map[string]NodeState{}, urls: urls,
		queues:   map[string][]int{},
		attempts: map[int]int{},
		nodeCtx:  map[string]context.Context{}, nodeCancel: map[string]context.CancelFunc{},
		probePoke: map[string]chan struct{}{},
	}
	c.cond = sync.NewCond(&c.mu)
	for _, id := range ids {
		c.state[id] = NodeLive
		c.probePoke[id] = make(chan struct{}, 1)
		c.rpcs[id] = &rpc{cfg: cfg.RPC, client: c.httpClient, target: id}
	}
	return c, nil
}

func nodeSlots(n Node) int {
	if n.Slots <= 0 {
		return 1
	}
	return n.Slots
}

// Ledger exposes the slot ledger (for stats).
func (c *Coordinator) Ledger() *sched.Ledger { return c.ledger }

// CoordStats is a snapshot of the coordinator's accounting.
type CoordStats struct {
	Deaths     int64 `json:"deaths"`
	Reassigned int64 `json:"reassigned"`
	// Stolen counts points an idle node's slot pulled from another
	// node's queue (shard-imbalance absorption, not failure handling).
	Stolen int64 `json:"stolen"`
	// Suspected / Recovered / Rejoined count membership transitions:
	// Live->Suspect, Suspect->Live, and Dead->Live respectively.
	Suspected int64 `json:"suspected"`
	Recovered int64 `json:"recovered"`
	Rejoined  int64 `json:"rejoined"`
	// Rerouted counts points moved off a node that kept failing their
	// dispatches while still answering health probes.
	Rerouted int64 `json:"rerouted"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		Deaths:     c.deaths.Load(),
		Reassigned: c.reassigned.Load(),
		Stolen:     c.stolen.Load(),
		Suspected:  c.suspected.Load(),
		Recovered:  c.recovered.Load(),
		Rejoined:   c.rejoined.Load(),
		Rerouted:   c.rerouted.Load(),
	}
}

// Run executes the campaign and returns one result per point, in point
// order — the same contract as campaign.Engine.Run, including the
// *campaign.RunError carrying the index of every permanently failed
// point (whose result slot is nil).
func (c *Coordinator) Run(ctx context.Context) ([]*flow.Result, error) {
	ctx, sp := trace.Start(ctx, "dist.coordinate")
	defer sp.End()
	sp.SetInt("points", int64(len(c.cfg.Points)))
	sp.SetInt("nodes", int64(len(c.cfg.Nodes)))

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	c.mu.Lock()
	c.runCtx = runCtx
	for id := range c.state {
		nctx, cancel := context.WithCancel(runCtx)
		c.nodeCtx[id] = nctx
		c.nodeCancel[id] = cancel
	}
	c.remaining = len(c.cfg.Points)
	for i := range c.cfg.Points {
		owner, ok := c.ring.Owner(c.keys[i], nil)
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("dist: empty ring")
		}
		c.queues[owner] = append(c.queues[owner], i)
	}
	if c.remaining == 0 {
		c.done = true
	}
	c.mu.Unlock()

	// Wake queue waiters when the context dies (cond has no native
	// cancellation).
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()

	var probers sync.WaitGroup
	for _, n := range c.cfg.Nodes {
		probers.Add(1)
		go func(id string) {
			defer probers.Done()
			c.monitor(runCtx, id)
		}(n.ID)
	}

	var wg sync.WaitGroup
	for _, n := range c.cfg.Nodes {
		for s := 0; s < nodeSlots(n); s++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				c.runner(ctx, id)
			}(n.ID)
		}
	}
	wg.Wait()

	// Stop the probers (and any in-flight probe RPC) before assembling;
	// assemble itself runs on the outer ctx.
	cancelRun()
	probers.Wait()
	defer c.httpClient.CloseIdleConnections()

	c.mu.Lock()
	fatal := c.fatal
	failed := append([]campaign.PointError(nil), c.failed...)
	remaining := c.remaining
	c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fatal != nil {
		return nil, fatal
	}
	if remaining != 0 {
		return nil, fmt.Errorf("dist: %d points unfinished with no live node", remaining)
	}
	return c.assemble(ctx, failed)
}

// runner is one remote slot's dispatch loop for node id. Runners never
// retire on node death — they park in next() so a rejoined node's slots
// resume pulling work; wg.Add after wg.Wait is never needed.
func (c *Coordinator) runner(ctx context.Context, id string) {
	for {
		idx, ok := c.next(ctx, id)
		if !ok {
			return
		}
		if err := c.ledger.Acquire(ctx, id); err != nil {
			return // context died; Run reports ctx.Err
		}
		if c.stateOf(id) != NodeLive {
			// The node stopped being dispatchable while we waited for a
			// slot; put the point back and park.
			c.ledger.Release(id)
			c.redispatch(id, idx, fmt.Errorf("dist: node %s not live at dispatch", id))
			continue
		}
		status, body, err := c.dispatch(ctx, id, idx)
		c.ledger.Release(id)
		switch {
		case err == nil && status == http.StatusOK:
			c.finish(idx)
		case err == nil && status == http.StatusUnprocessableEntity:
			// The point failed permanently on a healthy node — record
			// it, don't punish the node.
			c.fail(idx, fmt.Errorf("dist: point %d failed on %s: %s", idx, id, strings.TrimSpace(body)))
		default:
			// Transport error (retry budget exhausted) or a node-level
			// 5xx: suspect the node and requeue — the prober decides
			// whether this is a blip or a death.
			if err == nil {
				err = fmt.Errorf("dist: node %s returned %d: %s", id, status, strings.TrimSpace(body))
			}
			c.redispatch(id, idx, err)
		}
	}
}

// redispatch puts a failed point back in play: reassign it if the node
// is already dead, reroute it to a different live node once it has
// burned dispatchCap rounds on this one, otherwise requeue it at the
// front and raise suspicion.
func (c *Coordinator) redispatch(id string, idx int, cause error) {
	c.mu.Lock()
	c.attempts[idx]++
	rounds := c.attempts[idx]
	dead := c.state[id] == NodeDead
	c.mu.Unlock()
	if dead {
		c.reassign(idx)
		return
	}
	c.suspect(id, cause)
	if rounds%dispatchCap == 0 && c.reassignAvoiding(idx, id) {
		return
	}
	c.mu.Lock()
	c.queues[id] = append([]int{idx}, c.queues[id]...)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// reassignAvoiding queues a point on the ring owner among nodes other
// than avoid. False when no other node is available.
func (c *Coordinator) reassignAvoiding(idx int, avoid string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := c.aliveLocked()
	delete(alive, avoid)
	owner, ok := c.ring.Owner(c.keys[idx], alive)
	if !ok {
		return false
	}
	c.queues[owner] = append(c.queues[owner], idx)
	c.rerouted.Add(1)
	metrics.Add("dist.coord.rerouted", 1)
	c.cond.Broadcast()
	return true
}

// next pops the next queued index for node id, blocking while the queue
// is empty and parking while the node is not Live. ok is false only
// when the campaign is done or the context died.
func (c *Coordinator) next(ctx context.Context, id string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.done || ctx.Err() != nil {
			return 0, false
		}
		if c.state[id] == NodeLive {
			if q := c.queues[id]; len(q) > 0 {
				c.queues[id] = q[1:]
				return q[0], true
			}
			if idx, ok := c.stealLocked(id); ok {
				return idx, true
			}
		}
		c.cond.Wait()
	}
}

// stealLocked (mu held) takes the tail of the longest other non-dead
// queue for an idle slot on node id. The ring is a locality policy, not
// a correctness one — any node can compute any point, and the output is
// assembled from the store by content key — so idle licenses drain an
// uneven shard split's stragglers instead of watching them. Suspect
// nodes are valid victims (their queue is exactly the work that is
// stalling). The owner pops from the head and the thief from the tail,
// so they never chase the same point.
func (c *Coordinator) stealLocked(id string) (int, bool) {
	victim := ""
	for nid, q := range c.queues {
		if nid == id || c.state[nid] == NodeDead || len(q) == 0 {
			continue
		}
		if victim == "" || len(q) > len(c.queues[victim]) ||
			(len(q) == len(c.queues[victim]) && nid < victim) {
			victim = nid
		}
	}
	if victim == "" {
		return 0, false
	}
	q := c.queues[victim]
	idx := q[len(q)-1]
	c.queues[victim] = q[:len(q)-1]
	if c.state[victim] != NodeLive {
		// Pulling work off a suspect node is failure-path migration,
		// not imbalance absorption — account it as a reassignment.
		c.reassigned.Add(1)
		metrics.Add("dist.coord.reassigned", 1)
	} else {
		c.stolen.Add(1)
		metrics.Add("dist.coord.stolen", 1)
	}
	return idx, true
}

// finish marks one point complete.
func (c *Coordinator) finish(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remaining--
	metrics.Add("dist.coord.completed", 1)
	if c.remaining == 0 {
		c.done = true
		c.cond.Broadcast()
	}
}

// fail records one point's permanent failure.
func (c *Coordinator) fail(idx int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed = append(c.failed, campaign.PointError{Index: idx, Err: err})
	c.remaining--
	metrics.Add("dist.coord.point_failed", 1)
	if c.remaining == 0 {
		c.done = true
		c.cond.Broadcast()
	}
}

// reassign hands a point to the key's owner among the non-dead nodes.
func (c *Coordinator) reassign(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok := c.ring.Owner(c.keys[idx], c.aliveLocked())
	if !ok {
		if c.fatal == nil {
			c.fatal = fmt.Errorf("dist: no live node to run point %d", idx)
		}
		c.done = true
		c.cond.Broadcast()
		return
	}
	c.queues[owner] = append(c.queues[owner], idx)
	c.reassigned.Add(1)
	metrics.Add("dist.coord.reassigned", 1)
	c.cond.Broadcast()
}

// dispatch sends one run request to a node. The call is "long" — a
// dispatched point computes for as long as it computes — so the
// per-attempt RPC timeout is off and cancellation comes from either the
// campaign context or the node's own context, which declareDead cancels
// so a dispatch wedged on a dead node unblocks immediately.
func (c *Coordinator) dispatch(ctx context.Context, id string, idx int) (status int, body string, err error) {
	c.mu.Lock()
	nctx := c.nodeCtx[id]
	r := c.rpcs[id]
	c.mu.Unlock()
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if nctx != nil {
		stop := context.AfterFunc(nctx, cancel)
		defer stop()
	}
	// One span per dispatch: its dist.rpc attempt children carry the
	// trace context to the worker, so the node's entire compute subtree
	// stitches under this exact assignment (reroutes get a new dispatch
	// span on the new node).
	dctx, dsp := trace.Start(dctx, "dist.dispatch")
	dsp.Set("node", id)
	dsp.SetInt("index", int64(idx))
	payload, _ := json.Marshal(runRequest{Index: idx})
	res, err := r.do(dctx, "run", http.MethodPost, c.urls[id]+"/v1/run", payload, 1<<16, true)
	if err != nil {
		dsp.EndErr(err)
		return 0, "", err
	}
	dsp.SetInt("status", int64(res.status))
	dsp.End()
	return res.status, string(res.body), nil
}

// assemble fetches every completed point's entry from the store, in
// point order — the single source of truth that makes sharded output
// byte-identical to the single-node reference.
func (c *Coordinator) assemble(ctx context.Context, failed []campaign.PointError) ([]*flow.Result, error) {
	failedAt := make(map[int]bool, len(failed))
	for _, f := range failed {
		failedAt[f.Index] = true
	}
	results := make([]*flow.Result, len(c.cfg.Points))
	// Fetches fan out (each one is an independent HTTP get plus a gob
	// decode of a full result, the dominant fixed cost of a large
	// campaign when done serially); every result lands in its own index
	// and the lowest missing index is reported, so concurrency cannot
	// change the output or the error.
	missing := make([]bool, len(c.cfg.Points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range c.cfg.Points {
		if failedAt[i] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// A Load can lose its whole retry budget to injected faults;
			// a few patient rounds keep a chaotic link from failing an
			// otherwise complete campaign. A genuinely missing entry
			// costs three short sleeps, nothing more.
			for round := 0; ; round++ {
				if e, ok := c.cfg.Store.LoadCtx(ctx, c.keys[i]); ok {
					results[i] = e.Res
					return
				}
				if round >= 3 || sleepCtx(ctx, 25*time.Millisecond) != nil {
					missing[i] = true
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, m := range missing {
		if m {
			return nil, fmt.Errorf("dist: point %d completed but store has no entry for %s", i, c.keys[i])
		}
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
		return results, &campaign.RunError{Failed: failed}
	}
	return results, nil
}
