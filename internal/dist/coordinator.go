package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Node describes one worker node the coordinator can dispatch to.
type Node struct {
	// ID is the node's ring identity (must match the worker's own ID).
	ID string
	// URL is the worker's base URL (e.g. "http://127.0.0.1:7601").
	URL string
	// Slots is how many points the node runs concurrently (<=0 = 1) —
	// its license count as seen from the coordinator.
	Slots int
}

// CoordinatorConfig parameterizes a campaign coordinator.
type CoordinatorConfig struct {
	// Points is the campaign, in output order. Every point must carry a
	// design key (uncacheable points cannot be addressed by content).
	Points []campaign.Point
	// Nodes are the worker nodes to shard over.
	Nodes []Node
	// Store fetches the final results (and revokes dead nodes' claims).
	Store *StoreClient
	// Replicas is the ring's virtual-node count per node (0 = 64).
	Replicas int
	// Ledger, when non-nil, is an externally shared slot ledger (e.g.
	// the front door's per-tenant pool); nil builds a private one sized
	// to the nodes' slot sum.
	Ledger *sched.Ledger
}

// Coordinator shards a campaign across worker nodes by consistent
// hashing over each point's content key, dispatches over HTTP with
// per-node slot accounting, lets idle nodes steal queued points when
// the hash split is uneven, reassigns a dead node's points to the
// survivors, and assembles the final result list by fetching every
// point's entry from the store — which is what makes the output
// byte-identical to a single-node run at any node count.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	ledger *sched.Ledger
	keys   []string
	client *http.Client

	mu        sync.Mutex
	cond      *sync.Cond
	live      map[string]bool
	urls      map[string]string
	queues    map[string][]int
	remaining int
	done      bool
	fatal     error
	failed    []campaign.PointError

	deaths     atomic.Int64
	reassigned atomic.Int64
	stolen     atomic.Int64
}

// NewCoordinator validates the config and builds the ring.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one node")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("dist: coordinator needs a store client")
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 64
	}
	ids := make([]string, 0, len(cfg.Nodes))
	urls := make(map[string]string, len(cfg.Nodes))
	total := 0
	for _, n := range cfg.Nodes {
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("dist: node needs ID and URL")
		}
		if _, dup := urls[n.ID]; dup {
			return nil, fmt.Errorf("dist: duplicate node ID %q", n.ID)
		}
		ids = append(ids, n.ID)
		urls[n.ID] = strings.TrimSuffix(n.URL, "/")
		total += nodeSlots(n)
	}
	keys := make([]string, len(cfg.Points))
	for i, p := range cfg.Points {
		keys[i] = p.CacheKey()
		if keys[i] == "" {
			return nil, fmt.Errorf("dist: point %d has no design key", i)
		}
	}
	ledger := cfg.Ledger
	if ledger == nil {
		ledger = sched.NewLedger(total)
	}
	for _, n := range cfg.Nodes {
		ledger.SetWeight(n.ID, nodeSlots(n))
	}
	c := &Coordinator{
		cfg: cfg, ring: NewRing(ids, replicas), ledger: ledger,
		keys: keys, client: &http.Client{},
		live: map[string]bool{}, urls: urls, queues: map[string][]int{},
	}
	c.cond = sync.NewCond(&c.mu)
	for _, id := range ids {
		c.live[id] = true
	}
	return c, nil
}

func nodeSlots(n Node) int {
	if n.Slots <= 0 {
		return 1
	}
	return n.Slots
}

// Ledger exposes the slot ledger (for stats).
func (c *Coordinator) Ledger() *sched.Ledger { return c.ledger }

// CoordStats is a snapshot of the coordinator's accounting.
type CoordStats struct {
	Deaths     int64 `json:"deaths"`
	Reassigned int64 `json:"reassigned"`
	// Stolen counts points an idle node's slot pulled from another
	// node's queue (shard-imbalance absorption, not failure handling).
	Stolen int64 `json:"stolen"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		Deaths:     c.deaths.Load(),
		Reassigned: c.reassigned.Load(),
		Stolen:     c.stolen.Load(),
	}
}

// Run executes the campaign and returns one result per point, in point
// order — the same contract as campaign.Engine.Run, including the
// *campaign.RunError carrying the index of every permanently failed
// point (whose result slot is nil).
func (c *Coordinator) Run(ctx context.Context) ([]*flow.Result, error) {
	ctx, sp := trace.Start(ctx, "dist.coordinate")
	defer sp.End()
	sp.SetInt("points", int64(len(c.cfg.Points)))
	sp.SetInt("nodes", int64(len(c.cfg.Nodes)))

	c.mu.Lock()
	c.remaining = len(c.cfg.Points)
	for i := range c.cfg.Points {
		owner, ok := c.ring.Owner(c.keys[i], nil)
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("dist: empty ring")
		}
		c.queues[owner] = append(c.queues[owner], i)
	}
	if c.remaining == 0 {
		c.done = true
	}
	c.mu.Unlock()

	// Wake queue waiters when the context dies (cond has no native
	// cancellation).
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	for _, n := range c.cfg.Nodes {
		for s := 0; s < nodeSlots(n); s++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				c.runner(ctx, id)
			}(n.ID)
		}
	}
	wg.Wait()

	c.mu.Lock()
	fatal := c.fatal
	failed := append([]campaign.PointError(nil), c.failed...)
	remaining := c.remaining
	c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fatal != nil {
		return nil, fatal
	}
	if remaining != 0 {
		return nil, fmt.Errorf("dist: %d points unfinished with no live node", remaining)
	}
	return c.assemble(failed)
}

// runner is one remote slot's dispatch loop for node id.
func (c *Coordinator) runner(ctx context.Context, id string) {
	for {
		idx, ok := c.next(ctx, id)
		if !ok {
			return
		}
		if err := c.ledger.Acquire(ctx, id); err != nil {
			return // context died; Run reports ctx.Err
		}
		if !c.isLive(id) {
			// The node died while we waited for a slot; hand the point
			// to its new owner and retire this runner.
			c.ledger.Release(id)
			c.reassign(idx)
			return
		}
		status, body, err := c.dispatch(ctx, id, idx)
		c.ledger.Release(id)
		switch {
		case err == nil && status == http.StatusOK:
			c.finish(idx)
		case err == nil && status == http.StatusUnprocessableEntity:
			// The point failed permanently on a healthy node — record
			// it, don't punish the node.
			c.fail(idx, fmt.Errorf("dist: point %d failed on %s: %s", idx, id, strings.TrimSpace(body)))
		default:
			// Transport error or a node-level failure: declare the node
			// dead, free its claims, reshard its points.
			if err == nil {
				err = fmt.Errorf("dist: node %s returned %d: %s", id, status, strings.TrimSpace(body))
			}
			c.markDead(id, err)
			c.reassign(idx)
			return
		}
	}
}

// next pops the next queued index for node id, blocking while the queue
// is empty. ok is false when the runner should retire: campaign done,
// context dead, or node dead with an empty queue.
func (c *Coordinator) next(ctx context.Context, id string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.done || ctx.Err() != nil {
			return 0, false
		}
		if q := c.queues[id]; len(q) > 0 {
			if !c.live[id] {
				return 0, false // markDead drains the queue; don't race it
			}
			c.queues[id] = q[1:]
			return q[0], true
		}
		if !c.live[id] {
			return 0, false
		}
		if idx, ok := c.stealLocked(id); ok {
			return idx, true
		}
		c.cond.Wait()
	}
}

// stealLocked (mu held) takes the tail of the longest other live queue
// for an idle slot on node id. The ring is a locality policy, not a
// correctness one — any node can compute any point, and the output is
// assembled from the store by content key — so idle licenses drain an
// uneven shard split's stragglers instead of watching them. The owner
// pops from the head and the thief from the tail, so they never chase
// the same point.
func (c *Coordinator) stealLocked(id string) (int, bool) {
	victim := ""
	for nid, q := range c.queues {
		if nid == id || !c.live[nid] || len(q) == 0 {
			continue
		}
		if victim == "" || len(q) > len(c.queues[victim]) ||
			(len(q) == len(c.queues[victim]) && nid < victim) {
			victim = nid
		}
	}
	if victim == "" {
		return 0, false
	}
	q := c.queues[victim]
	idx := q[len(q)-1]
	c.queues[victim] = q[:len(q)-1]
	c.stolen.Add(1)
	metrics.Add("dist.coord.stolen", 1)
	return idx, true
}

func (c *Coordinator) isLive(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live[id]
}

// finish marks one point complete.
func (c *Coordinator) finish(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remaining--
	metrics.Add("dist.coord.completed", 1)
	if c.remaining == 0 {
		c.done = true
		c.cond.Broadcast()
	}
}

// fail records one point's permanent failure.
func (c *Coordinator) fail(idx int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed = append(c.failed, campaign.PointError{Index: idx, Err: err})
	c.remaining--
	metrics.Add("dist.coord.point_failed", 1)
	if c.remaining == 0 {
		c.done = true
		c.cond.Broadcast()
	}
}

// markDead declares a node lost: mark it, revoke its store claims so
// replacement workers are granted instead of waiting on a ghost, and
// reshard its queued points onto the survivors. Idempotent — every
// runner of a dying node reports in, only the first does the work.
func (c *Coordinator) markDead(id string, cause error) {
	c.mu.Lock()
	if !c.live[id] {
		c.mu.Unlock()
		return
	}
	c.live[id] = false
	orphans := c.queues[id]
	delete(c.queues, id)
	c.mu.Unlock()

	c.deaths.Add(1)
	metrics.Add("dist.coord.node_dead", 1)
	sp := trace.Begin("dist.coord.node_dead")
	sp.Set("node", id)
	// Claims first, reassignment second: a replacement worker must
	// never find the ghost still holding its key.
	if _, err := c.cfg.Store.ReleaseNode(id); err != nil {
		metrics.Add("dist.coord.release_node_err", 1)
	}
	sp.EndErr(cause)
	for _, idx := range orphans {
		c.reassign(idx)
	}
}

// reassign hands a point to the key's owner among the surviving nodes.
func (c *Coordinator) reassign(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok := c.ring.Owner(c.keys[idx], c.live)
	if !ok {
		if c.fatal == nil {
			c.fatal = fmt.Errorf("dist: no live node to run point %d", idx)
		}
		c.done = true
		c.cond.Broadcast()
		return
	}
	c.queues[owner] = append(c.queues[owner], idx)
	c.reassigned.Add(1)
	metrics.Add("dist.coord.reassigned", 1)
	c.cond.Broadcast()
}

// dispatch sends one run request to a node.
func (c *Coordinator) dispatch(ctx context.Context, id string, idx int) (status int, body string, err error) {
	payload, _ := json.Marshal(runRequest{Index: idx})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.urls[id]+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, string(b), nil
}

// assemble fetches every completed point's entry from the store, in
// point order — the single source of truth that makes sharded output
// byte-identical to the single-node reference.
func (c *Coordinator) assemble(failed []campaign.PointError) ([]*flow.Result, error) {
	failedAt := make(map[int]bool, len(failed))
	for _, f := range failed {
		failedAt[f.Index] = true
	}
	results := make([]*flow.Result, len(c.cfg.Points))
	// Fetches fan out (each one is an independent HTTP get plus a gob
	// decode of a full result, the dominant fixed cost of a large
	// campaign when done serially); every result lands in its own index
	// and the lowest missing index is reported, so concurrency cannot
	// change the output or the error.
	missing := make([]bool, len(c.cfg.Points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range c.cfg.Points {
		if failedAt[i] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			e, ok := c.cfg.Store.Load(c.keys[i])
			if !ok {
				missing[i] = true
				return
			}
			results[i] = e.Res
		}(i)
	}
	wg.Wait()
	for i, m := range missing {
		if m {
			return nil, fmt.Errorf("dist: point %d completed but store has no entry for %s", i, c.keys[i])
		}
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
		return results, &campaign.RunError{Failed: failed}
	}
	return results, nil
}
