// Package dist promotes the single-process campaign engine to a
// coordinator/worker service: a coordinator shards campaign points
// across worker nodes by consistent hashing over the content key, the
// workers run points through the unchanged flow/campaign machinery, and
// every completed result lands in a shared, WAL-backed network result
// store — the paper's Fig. 11 METRICS architecture (wrappers feeding a
// central server) applied to the orchestration layer itself.
//
// The determinism contract survives distribution by construction: a
// flow run is a pure function of its point, results are addressed by
// content key, and the coordinator assembles its output by fetching
// each point's entry from the store — so a campaign sharded over any
// node count, with any interleaving, any reassignment after a node
// death, produces byte-identical results to the single-node reference.
package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over node IDs. Each node projects
// Replicas virtual points onto the ring; a key is owned by the first
// live virtual point clockwise from the key's hash. Assignment is a
// pure function of (node set, liveness, key), so every coordinator
// replica — and every rerun of the same campaign — shards identically,
// and a node death moves only the dead node's keys.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the node IDs with the given virtual-node
// count per node (replicas < 1 is clamped to 1). Node order does not
// matter; the ring is identical for any permutation of the same set.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*replicas)}
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by name so the ring
		// stays a pure function of the node set.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the live node owning key: the first virtual point at or
// clockwise after the key's hash whose node is live. live == nil means
// every node is live. ok is false when no live node exists.
func (r *Ring) Owner(key string, live map[string]bool) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if live == nil || live[p.node] {
			return p.node, true
		}
	}
	return "", false
}

// hash64 is FNV-1a, the repo's standard non-cryptographic hash.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
