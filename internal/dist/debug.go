package dist

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// mountNodeDebug adds the node-local observability endpoints to a
// worker or store mux, so a wedged remote node is diagnosable without
// the central metrics server:
//
//	GET /metrics       process counters (chaos.fault.injected.*,
//	                   dist.rpc.retried, ...) + latency histograms,
//	                   live during a run — not only in the end-of-run
//	                   stderr ledger
//	GET /debug/pprof/  goroutine/heap/profile/trace, the stock pprof set
func mountNodeDebug(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		metrics.Default.Write(rw)
		metrics.DefaultHists.Write(rw)
		if t := trace.Active(); t != nil {
			t.Histograms().Write(rw)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
