package dist

import (
	"context"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// NodeState is one worker node's membership state as the coordinator
// sees it. The machine is suspect -> dead -> rejoin:
//
//	Live    ──rpc failure──▶ Suspect   (work to the node pauses;
//	                                    its queue is kept)
//	Suspect ──probe ok──────▶ Live     (recovered: dispatch resumes)
//	Suspect ──N probe fails─▶ Dead     (claims revoked, queue
//	                                    resharded onto survivors)
//	Dead    ──probe ok──────▶ Live     (rejoined: the ring owns it
//	                                    again, idle slots steal work
//	                                    back to it)
//
// A single transient RPC error therefore never buries a node — the
// seed's markDead-on-first-error behavior is now a suspicion plus a
// /healthz probe, and a healed node rides the consistent-hash ring's
// minimal-movement property back into the campaign.
type NodeState int32

const (
	// NodeLive nodes are dispatched to and steal work when idle.
	NodeLive NodeState = iota
	// NodeSuspect nodes had an RPC fail; dispatch pauses while the
	// prober decides between recovery and death.
	NodeSuspect
	// NodeDead nodes have no queue and hold no claims; the prober keeps
	// watching for a rejoin unless DisableRejoin is set.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeLive:
		return "live"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return "unknown"
}

// HealthConfig tunes the membership prober.
type HealthConfig struct {
	// ProbeInterval is the pause between /healthz probes of a live or
	// suspect node (0 = 100ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (0 = 1s).
	ProbeTimeout time.Duration
	// ProbeFails is how many consecutive probe failures turn a suspect
	// node dead (0 = 3).
	ProbeFails int
	// RejoinInterval is the pause between probes of a dead node
	// (0 = 4 x ProbeInterval).
	RejoinInterval time.Duration
	// DisableRejoin stops probing a node once it is dead — the seed's
	// permanent-death behavior, kept for tests that need it.
	DisableRejoin bool
}

func (h HealthConfig) probeInterval() time.Duration {
	if h.ProbeInterval <= 0 {
		return 100 * time.Millisecond
	}
	return h.ProbeInterval
}

func (h HealthConfig) probeTimeout() time.Duration {
	if h.ProbeTimeout <= 0 {
		return time.Second
	}
	return h.ProbeTimeout
}

func (h HealthConfig) probeFails() int {
	if h.ProbeFails <= 0 {
		return 3
	}
	return h.ProbeFails
}

func (h HealthConfig) rejoinInterval() time.Duration {
	if h.RejoinInterval > 0 {
		return h.RejoinInterval
	}
	return 4 * h.probeInterval()
}

// stateOf reads one node's membership state.
func (c *Coordinator) stateOf(id string) NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state[id]
}

// aliveLocked (mu held) is the ring's liveness view: Live and Suspect
// nodes own keys (a suspect node usually recovers; if it dies its keys
// are reassigned then), Dead nodes do not.
func (c *Coordinator) aliveLocked() map[string]bool {
	alive := make(map[string]bool, len(c.state))
	for id, st := range c.state {
		alive[id] = st != NodeDead
	}
	return alive
}

// suspect moves a Live node to Suspect after an RPC failure. The
// node's queue and in-flight dispatches are kept — the prober decides
// whether this was a blip (recover) or a death. Idempotent; no-op on
// Suspect or Dead nodes.
func (c *Coordinator) suspect(id string, cause error) {
	c.mu.Lock()
	if c.state[id] != NodeLive {
		c.mu.Unlock()
		return
	}
	c.state[id] = NodeSuspect
	c.mu.Unlock()
	c.suspected.Add(1)
	metrics.Add("dist.node.suspected", 1)
	sp := trace.Begin("dist.node.suspect")
	sp.Set("node", id)
	sp.EndErr(cause)
	// Wake the prober out of its live-interval sleep so the
	// suspect-interval cadence starts now.
	c.pokeProbe(id)
	c.cond.Broadcast()
}

// revive moves a Suspect node back to Live after a successful probe.
func (c *Coordinator) revive(id string) {
	c.mu.Lock()
	if c.state[id] != NodeSuspect {
		c.mu.Unlock()
		return
	}
	c.state[id] = NodeLive
	c.mu.Unlock()
	c.recovered.Add(1)
	metrics.Add("dist.node.recovered", 1)
	trace.Begin("dist.node.recover").EndWith(trace.OK)
	c.cond.Broadcast()
}

// declareDead finalizes a suspicion: cancel the node's in-flight
// dispatches, revoke its store claims so replacement workers are
// granted instead of waiting on a ghost, and reshard its queued points
// onto the survivors. Claims first, reassignment second — a replacement
// worker must never find the ghost still holding its key.
func (c *Coordinator) declareDead(id string, cause error) {
	c.mu.Lock()
	if c.state[id] == NodeDead {
		c.mu.Unlock()
		return
	}
	c.state[id] = NodeDead
	orphans := c.queues[id]
	delete(c.queues, id)
	cancel := c.nodeCancel[id]
	ctx := c.runCtx
	c.mu.Unlock()

	if cancel != nil {
		cancel()
	}
	c.deaths.Add(1)
	metrics.Add("dist.node.dead", 1)
	metrics.Add("dist.coord.node_dead", 1)
	sp := trace.Begin("dist.coord.node_dead")
	sp.Set("node", id)
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := c.cfg.Store.ReleaseNode(ctx, id); err != nil {
		metrics.Add("dist.coord.release_node_err", 1)
	}
	sp.EndErr(cause)
	for _, idx := range orphans {
		c.reassign(idx)
	}
	c.cond.Broadcast()
}

// rejoinNode brings a healed Dead node back: it becomes Live with a
// fresh dispatch context, the ring's minimal-movement property makes
// its old keys route back to it for anything still queued elsewhere to
// be stolen, and its parked runners wake to pull work.
func (c *Coordinator) rejoinNode(id string) {
	c.mu.Lock()
	if c.state[id] != NodeDead || c.done {
		c.mu.Unlock()
		return
	}
	c.state[id] = NodeLive
	if c.runCtx != nil {
		nctx, cancel := context.WithCancel(c.runCtx)
		c.nodeCtx[id] = nctx
		c.nodeCancel[id] = cancel
	}
	c.mu.Unlock()
	c.rejoined.Add(1)
	metrics.Add("dist.node.rejoined", 1)
	sp := trace.Begin("dist.node.rejoin")
	sp.Set("node", id)
	sp.EndWith(trace.OK)
	c.cond.Broadcast()
}

// pokeProbe nudges a node's prober to run its next probe immediately.
func (c *Coordinator) pokeProbe(id string) {
	c.mu.Lock()
	ch := c.probePoke[id]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// monitor is one node's health prober, running for the whole campaign.
// It is the only writer of the Suspect->Dead and Dead->Live
// transitions, so the state machine needs no extra synchronization
// beyond the coordinator mutex.
func (c *Coordinator) monitor(ctx context.Context, id string) {
	h := c.cfg.Health
	fails := 0
	for {
		interval := h.probeInterval()
		if c.stateOf(id) == NodeDead {
			interval = h.rejoinInterval()
		}
		if err := c.sleepOrPoke(ctx, id, interval); err != nil {
			return
		}
		c.mu.Lock()
		st, done := c.state[id], c.done
		c.mu.Unlock()
		if done || ctx.Err() != nil {
			return
		}
		if st == NodeDead && h.DisableRejoin {
			return
		}
		if st == NodeLive {
			// Live nodes are watched too: a wedged node whose dispatches
			// stall silently would otherwise never trip suspicion.
			if err := c.probe(ctx, id); err != nil {
				c.suspect(id, err)
				fails = 1
			} else {
				fails = 0
			}
			continue
		}
		err := c.probe(ctx, id)
		switch {
		case err == nil && st == NodeSuspect:
			c.revive(id)
			fails = 0
		case err == nil && st == NodeDead:
			c.rejoinNode(id)
			fails = 0
		case err != nil && st == NodeSuspect:
			fails++
			if fails >= h.probeFails() {
				c.declareDead(id, err)
				fails = 0
			}
		}
	}
}

// sleepOrPoke sleeps for d, or less if the node's prober is poked.
func (c *Coordinator) sleepOrPoke(ctx context.Context, id string, d time.Duration) error {
	c.mu.Lock()
	ch := c.probePoke[id]
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ch:
		return nil
	case <-t.C:
		return nil
	}
}

// probe hits a node's /healthz once, bounded by ProbeTimeout, no
// retries (the monitor loop is the retry policy).
func (c *Coordinator) probe(ctx context.Context, id string) error {
	cfg := c.cfg.RPC
	cfg.Timeout = c.cfg.Health.probeTimeout()
	cfg.Retries = -1
	r := &rpc{cfg: cfg, client: c.httpClient, target: id}
	res, err := r.do(ctx, "healthz", http.MethodGet, c.urls[id]+"/healthz", nil, 1<<10, false)
	if err != nil {
		metrics.Add("dist.probe.fail", 1)
		return err
	}
	if res.status != http.StatusOK {
		metrics.Add("dist.probe.fail", 1)
		return errUnavailable
	}
	metrics.Add("dist.probe.ok", 1)
	return nil
}
