package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Worker is one campaign node: it holds the campaign's point list (every
// node derives the identical list from the campaign spec), runs assigned
// points through an unchanged campaign.Engine whose cache is tiered onto
// the shared result store, and answers the coordinator's run requests.
//
//	POST /v1/run   {"index":i} -> {"key":K} | 422 point failed
//	               | 503 node-transient (store unreachable, draining)
//	GET  /v1/stats worker + cache counters
//	GET  /healthz  "ok"
//
// When the store is unreachable the worker degrades instead of dying:
// it computes without a claim (determinism makes duplicate computes
// harmless), parks write-throughs in the client backlog, and backfills
// when the link heals. A point whose result cannot reach the store
// answers 503 — the coordinator retries or re-routes; it never records
// a permanent failure for a transient outage.
type Worker struct {
	cfg    WorkerConfig
	engine *campaign.Engine
	node   httpNode

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	runs      atomic.Int64
	completed atomic.Int64
}

// WorkerConfig parameterizes a worker node.
type WorkerConfig struct {
	// ID is the node's stable identity on the ring and in store claims.
	ID string
	// Points is the campaign's full point list; the coordinator
	// addresses work by index into it. Every node and the coordinator
	// must derive the identical list from the campaign spec — content
	// keys make any divergence harmless (a mismatched point is computed
	// under its own key, never served under another's).
	Points []campaign.Point
	// Store is the shared result store (required): the cache's network
	// tier and the claims arbiter.
	Store *StoreClient
	// Workers is the node's local license pool (<=0 = one per CPU).
	Workers int
	// StageTimeout arms the per-stage hung-tool watchdog (0 = off).
	StageTimeout time.Duration
	// Retry re-runs points that fail with a tool fault, as in
	// campaign.Config.
	Retry campaign.Retry
	// KillOnRun, for tests, abortively closes the node when run request
	// number KillOnRun (1-based) arrives — before the point computes —
	// simulating a worker killed mid-point with a claim in hand.
	KillOnRun int
	// ClaimPoll is the wait between polls of a held claim (0 = 5ms).
	ClaimPoll time.Duration
	// ClaimWait caps how long a held claim is waited on before the
	// worker computes anyway (0 = 30s). The cap exists for the holder
	// nobody revokes — a duplicate compute costs cycles, a forever-wait
	// costs the campaign.
	ClaimWait time.Duration
	// Observer receives flow step records from every point this node
	// computes or replays — the hook the METRICS warehouse emitter
	// plugs into (nil = none).
	Observer flow.Observer
}

// NewWorker builds a worker whose engine caches through the store.
func NewWorker(cfg WorkerConfig) *Worker {
	cache := campaign.NewCache(0)
	cache.SetTier(cfg.Store)
	eng := campaign.New(campaign.Config{
		Workers:      campaign.Workers(cfg.Workers),
		Cache:        cache,
		Retry:        cfg.Retry,
		StageTimeout: cfg.StageTimeout,
		Observer:     cfg.Observer,
	})
	return &Worker{cfg: cfg, engine: eng}
}

// Start begins listening ("127.0.0.1:0" for ephemeral) and returns the
// bound address.
func (w *Worker) Start(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", w.handleRun)
	mux.HandleFunc("/v1/stats", w.handleStats)
	mux.HandleFunc("/healthz", handleHealthz)
	mountNodeDebug(mux)
	return w.node.start(addr, mux)
}

// Addr returns the bound address.
func (w *Worker) Addr() string { return w.node.addr() }

// Close stops the node abortively (in-flight requests die — the "kill"
// semantics the reassignment path is built for). Idempotent.
func (w *Worker) Close() error { return w.node.close() }

// Shutdown drains the node gracefully: new run requests answer 503,
// in-flight points finish (bounded by ctx; past the bound the node is
// closed abortively), the client backlog is backfilled so nothing
// computed here is lost, and the listener closes cleanly.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.drainMu.Lock()
	already := w.draining
	w.draining = true
	w.drainMu.Unlock()
	if !already {
		metrics.Add("dist.worker.drained", 1)
	}
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		w.node.close() //nolint:errcheck
		return ctx.Err()
	}
	if w.cfg.Store != nil {
		w.cfg.Store.Backfill(ctx)
	}
	err := w.node.shutdown(ctx)
	if w.cfg.Store != nil {
		w.cfg.Store.Close()
	}
	return err
}

// Completed reports how many run requests this node finished.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// runRequest is the /v1/run body.
type runRequest struct {
	Index int `json:"index"`
}

func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	w.drainMu.Lock()
	if w.draining {
		w.drainMu.Unlock()
		http.Error(rw, "draining", http.StatusServiceUnavailable)
		return
	}
	w.inflight.Add(1)
	w.drainMu.Unlock()
	defer w.inflight.Done()

	n := w.runs.Add(1)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Index < 0 || req.Index >= len(w.cfg.Points) {
		http.Error(rw, "index out of range", http.StatusBadRequest)
		return
	}
	p := w.cfg.Points[req.Index]
	key := p.CacheKey()
	if key == "" {
		http.Error(rw, "point has no design key (uncacheable points cannot be distributed)", http.StatusBadRequest)
		return
	}
	if w.cfg.KillOnRun > 0 && n == int64(w.cfg.KillOnRun) {
		// Simulated mid-point kill: take the compute claim, then die
		// without computing or releasing — the ghost-claim state the
		// coordinator must revoke before reassigning, or the point's
		// next owner waits on a dead holder forever.
		w.cfg.Store.Claim(r.Context(), key, w.cfg.ID) //nolint:errcheck
		w.Close()                                     //nolint:errcheck
		return
	}
	// Adopt the coordinator's trace context from the RPC headers: this
	// span (and every campaign/flow span under it) parents under the
	// exact dispatch attempt that carried the request, stitching the
	// node's work into the coordinator's trace.
	ctx, sp := trace.Start(trace.AdoptHTTP(r.Context(), r.Header), "dist.worker.run")
	sp.SetInt("index", int64(req.Index))
	sp.Set("node", w.cfg.ID)
	if err := w.runPoint(ctx, p, key); err != nil {
		sp.EndErr(err)
		if err == errUnavailable || ctx.Err() != nil {
			// Node-transient, not a point failure: the result exists (or
			// will) but cannot reach the store from here right now. Tell
			// the coordinator to retry or re-route.
			http.Error(rw, err.Error(), http.StatusServiceUnavailable)
			return
		}
		// A permanent point failure is the point's problem, not the
		// node's: 422 tells the coordinator not to declare us dead.
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.completed.Add(1)
	metrics.Add("dist.worker.completed", 1)
	sp.End()
	writeJSON(rw, map[string]string{"key": key})
}

// runPoint enforces the exactly-once compute contract, then runs the
// point through the engine: a "done" or tier-hit point is served without
// computing, a granted claim computes and write-through publishes, and
// a held claim waits for the holder (whose completion or revocation
// resolves the wait, with ClaimWait as the backstop). A 200 answer
// guarantees the result is in the store — the coordinator assembles
// from there, so an entry parked in the backlog reports 503 instead.
func (w *Worker) runPoint(ctx context.Context, p campaign.Point, key string) error {
	claimed, err := w.acquireClaim(ctx, key)
	if err != nil {
		return err
	}
	if _, err := w.engine.Run(ctx, []campaign.Point{p}); err != nil {
		if claimed {
			// Give the claim back so a retry (here or elsewhere) is
			// granted instead of waiting on us.
			w.cfg.Store.ReleaseClaim(ctx, key, w.cfg.ID)
		}
		return err
	}
	if w.cfg.Store.Parked(key) {
		// Computed, but the write-through could not reach the store.
		// Try once more now; if the link is still down the coordinator
		// hears 503 and the backlog keeps the entry for the heal.
		w.cfg.Store.Backfill(ctx)
		if w.cfg.Store.Parked(key) {
			metrics.Add("dist.worker.publish_blocked", 1)
			return errUnavailable
		}
	}
	return nil
}

// acquireClaim polls the store for the compute claim on key. claimed is
// false when the worker should compute without one: the store is
// unreachable (degraded mode — duplicates are harmless by determinism)
// or a held claim outlived ClaimWait. The only error is the caller's
// own cancellation.
func (w *Worker) acquireClaim(ctx context.Context, key string) (claimed bool, err error) {
	poll := w.cfg.ClaimPoll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	cap := w.cfg.ClaimWait
	if cap <= 0 {
		cap = 30 * time.Second
	}
	waited := time.Duration(0)
	for {
		st, err := w.cfg.Store.Claim(ctx, key, w.cfg.ID)
		if err != nil {
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			// Retries exhausted: the store is unreachable from here.
			// Degrade to local compute; the backlog publishes later.
			metrics.Add("dist.worker.store_degraded", 1)
			return false, nil
		}
		if st.State != "held" {
			return true, nil
		}
		if waited >= cap {
			metrics.Add("dist.worker.claim_wait_capped", 1)
			return false, nil
		}
		// Another live node is computing this key; waiting is cheaper
		// than a duplicate run, and a dead holder's claim is revoked by
		// the coordinator, which unblocks the next poll.
		metrics.Add("dist.worker.claim_wait", 1)
		if err := sleepCtx(ctx, poll); err != nil {
			return false, err
		}
		waited += poll
	}
}

// workerStats is the /v1/stats shape.
type workerStats struct {
	ID        string              `json:"id"`
	Points    int                 `json:"points"`
	Runs      int64               `json:"runs"`
	Completed int64               `json:"completed"`
	Backlog   int                 `json:"backlog"`
	Cache     campaign.CacheStats `json:"cache"`
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, workerStats{
		ID: w.cfg.ID, Points: len(w.cfg.Points),
		Runs: w.runs.Load(), Completed: w.completed.Load(),
		Backlog: w.cfg.Store.PendingBacklog(),
		Cache:   w.engine.Cache().Stats(),
	})
}
