package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Worker is one campaign node: it holds the campaign's point list (every
// node derives the identical list from the campaign spec), runs assigned
// points through an unchanged campaign.Engine whose cache is tiered onto
// the shared result store, and answers the coordinator's run requests.
//
//	POST /v1/run   {"index":i} -> {"key":K} | 422 point failed | 5xx
//	GET  /v1/stats worker + cache counters
//	GET  /healthz  "ok"
type Worker struct {
	cfg    WorkerConfig
	engine *campaign.Engine
	node   httpNode

	runs      atomic.Int64
	completed atomic.Int64
}

// WorkerConfig parameterizes a worker node.
type WorkerConfig struct {
	// ID is the node's stable identity on the ring and in store claims.
	ID string
	// Points is the campaign's full point list; the coordinator
	// addresses work by index into it. Every node and the coordinator
	// must derive the identical list from the campaign spec — content
	// keys make any divergence harmless (a mismatched point is computed
	// under its own key, never served under another's).
	Points []campaign.Point
	// Store is the shared result store (required): the cache's network
	// tier and the claims arbiter.
	Store *StoreClient
	// Workers is the node's local license pool (<=0 = one per CPU).
	Workers int
	// StageTimeout arms the per-stage hung-tool watchdog (0 = off).
	StageTimeout time.Duration
	// Retry re-runs points that fail with a tool fault, as in
	// campaign.Config.
	Retry campaign.Retry
	// KillOnRun, for tests, abortively closes the node when run request
	// number KillOnRun (1-based) arrives — before the point computes —
	// simulating a worker killed mid-point with a claim in hand.
	KillOnRun int
	// ClaimPoll is the wait between polls of a held claim (0 = 5ms).
	ClaimPoll time.Duration
}

// NewWorker builds a worker whose engine caches through the store.
func NewWorker(cfg WorkerConfig) *Worker {
	cache := campaign.NewCache(0)
	cache.SetTier(cfg.Store)
	eng := campaign.New(campaign.Config{
		Workers:      campaign.Workers(cfg.Workers),
		Cache:        cache,
		Retry:        cfg.Retry,
		StageTimeout: cfg.StageTimeout,
	})
	return &Worker{cfg: cfg, engine: eng}
}

// Start begins listening ("127.0.0.1:0" for ephemeral) and returns the
// bound address.
func (w *Worker) Start(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", w.handleRun)
	mux.HandleFunc("/v1/stats", w.handleStats)
	mux.HandleFunc("/healthz", handleHealthz)
	return w.node.start(addr, mux)
}

// Addr returns the bound address.
func (w *Worker) Addr() string { return w.node.addr() }

// Close stops the node abortively (in-flight requests die — the "kill"
// semantics the reassignment path is built for). Idempotent.
func (w *Worker) Close() error { return w.node.close() }

// Completed reports how many run requests this node finished.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// runRequest is the /v1/run body.
type runRequest struct {
	Index int `json:"index"`
}

func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n := w.runs.Add(1)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Index < 0 || req.Index >= len(w.cfg.Points) {
		http.Error(rw, "index out of range", http.StatusBadRequest)
		return
	}
	p := w.cfg.Points[req.Index]
	key := p.CacheKey()
	if key == "" {
		http.Error(rw, "point has no design key (uncacheable points cannot be distributed)", http.StatusBadRequest)
		return
	}
	if w.cfg.KillOnRun > 0 && n == int64(w.cfg.KillOnRun) {
		// Simulated mid-point kill: take the compute claim, then die
		// without computing or releasing — the ghost-claim state the
		// coordinator must revoke before reassigning, or the point's
		// next owner waits on a dead holder forever.
		w.cfg.Store.Claim(key, w.cfg.ID) //nolint:errcheck
		w.Close()                        //nolint:errcheck
		return
	}
	ctx, sp := trace.Start(r.Context(), "dist.worker.run")
	sp.SetInt("index", int64(req.Index))
	if err := w.runPoint(ctx, p, key); err != nil {
		sp.EndErr(err)
		// A permanent point failure is the point's problem, not the
		// node's: 422 tells the coordinator not to declare us dead.
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.completed.Add(1)
	metrics.Add("dist.worker.completed", 1)
	sp.End()
	writeJSON(rw, map[string]string{"key": key})
}

// runPoint enforces the exactly-once compute contract, then runs the
// point through the engine: a "done" or tier-hit point is served without
// computing, a granted claim computes and write-through publishes, and
// a held claim waits for the holder (whose completion or revocation
// resolves the wait).
func (w *Worker) runPoint(ctx context.Context, p campaign.Point, key string) error {
	poll := w.cfg.ClaimPoll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	for {
		st, err := w.cfg.Store.Claim(key, w.cfg.ID)
		if err != nil {
			return err
		}
		if st.State != "held" {
			break
		}
		// Another live node is computing this key; waiting is cheaper
		// than a duplicate run, and a dead holder's claim is revoked by
		// the coordinator, which unblocks the next poll.
		metrics.Add("dist.worker.claim_wait", 1)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
	_, err := w.engine.Run(ctx, []campaign.Point{p})
	if err != nil {
		// Give the claim back so a retry (here or elsewhere) is granted
		// instead of waiting on us.
		w.cfg.Store.ReleaseClaim(key, w.cfg.ID)
		return err
	}
	return nil
}

// workerStats is the /v1/stats shape.
type workerStats struct {
	ID        string             `json:"id"`
	Points    int                `json:"points"`
	Runs      int64              `json:"runs"`
	Completed int64              `json:"completed"`
	Cache     campaign.CacheStats `json:"cache"`
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, workerStats{
		ID: w.cfg.ID, Points: len(w.cfg.Points),
		Runs: w.runs.Load(), Completed: w.completed.Load(),
		Cache: w.engine.Cache().Stats(),
	})
}
