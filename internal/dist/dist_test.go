package dist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/journal"
	"repro/internal/netlist"
)

func tinyDesign(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func sweepPoints(design *netlist.Netlist, nFreq, nSeeds int) []campaign.Point {
	key := campaign.KeyFor(design)
	var pts []campaign.Point
	for f := 0; f < nFreq; f++ {
		base := flow.Options{TargetFreqGHz: 0.3 + 0.1*float64(f)}
		var seeds []int64
		for s := 0; s < nSeeds; s++ {
			seeds = append(seeds, int64(1000*f+s))
		}
		pts = append(pts, campaign.Points(design, key, base, seeds)...)
	}
	return pts
}

// normalize round-trips a result through the wire codec so reference
// and distributed results are compared in the same representation.
func normalize(t *testing.T, key string, res *flow.Result) *flow.Result {
	t.Helper()
	data, err := campaign.EncodeEntry(campaign.Entry{Key: key, Res: res})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	e, err := campaign.DecodeEntry(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return e.Res
}

// singleNodeReference runs the campaign through a plain in-process
// engine — the byte-identity baseline for every sharded topology.
func singleNodeReference(t *testing.T, pts []campaign.Point) []*flow.Result {
	t.Helper()
	eng := campaign.New(campaign.Config{Workers: 4, Cache: campaign.NewCache(0)})
	res, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res
}

// cluster is one in-process loopback deployment: store server + workers.
type cluster struct {
	store   *Store
	server  *StoreServer
	client  *StoreClient
	workers []*Worker
	nodes   []Node
}

// startCluster brings up a store and n workers on loopback. kills maps
// worker index -> KillOnRun for that worker (nil = no kills).
func startCluster(t *testing.T, pts []campaign.Point, n int, kills map[int]int) *cluster {
	t.Helper()
	store, err := OpenStore("", journal.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv := NewStoreServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start store server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := &cluster{store: store, server: srv, client: NewStoreClient("http://" + addr)}
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{
			ID:        fmt.Sprintf("w%d", i),
			Points:    pts,
			Store:     cl.client,
			Workers:   2,
			KillOnRun: kills[i],
		})
		waddr, err := w.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		cl.workers = append(cl.workers, w)
		cl.nodes = append(cl.nodes, Node{ID: fmt.Sprintf("w%d", i), URL: "http://" + waddr, Slots: 2})
	}
	return cl
}

func TestRingIsPureFunctionOfNodeSet(t *testing.T) {
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	a := NewRing([]string{"w0", "w1", "w2"}, 64)
	b := NewRing([]string{"w2", "w0", "w1"}, 64) // permuted node order
	owners := map[string]bool{}
	for _, k := range keys {
		oa, ok := a.Owner(k, nil)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		ob, _ := b.Owner(k, nil)
		if oa != ob {
			t.Fatalf("ring not permutation-invariant: %s -> %s vs %s", k, oa, ob)
		}
		owners[oa] = true
	}
	if len(owners) < 2 {
		t.Fatalf("degenerate ring: all keys on one node")
	}
	// A node death moves only the dead node's keys.
	live := map[string]bool{"w0": true, "w2": true}
	for _, k := range keys {
		before, _ := a.Owner(k, nil)
		after, ok := a.Owner(k, live)
		if !ok {
			t.Fatalf("no live owner for %s", k)
		}
		if before != "w1" && after != before {
			t.Fatalf("key %s moved from live node %s to %s", k, before, after)
		}
		if after == "w1" {
			t.Fatalf("key %s assigned to dead node", k)
		}
	}
}

func TestStoreClaimLifecycle(t *testing.T) {
	s, err := OpenStore("", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Claim("k", "a"); st.State != "granted" {
		t.Fatalf("first claim: %+v", st)
	}
	if st := s.Claim("k", "a"); st.State != "granted" {
		t.Fatalf("same-node re-claim should be granted: %+v", st)
	}
	if st := s.Claim("k", "b"); st.State != "held" || st.Holder != "a" {
		t.Fatalf("second node claim: %+v", st)
	}
	s.ReleaseClaim("k", "b") // not the holder: no-op
	if st := s.Claim("k", "b"); st.State != "held" {
		t.Fatalf("release by non-holder must not free the claim: %+v", st)
	}
	s.ReleaseNode("a")
	if st := s.Claim("k", "b"); st.State != "granted" {
		t.Fatalf("claim after dead-node revoke: %+v", st)
	}

	// A stored entry flips claims to "done" and clears the holder.
	design := tinyDesign(7)
	pts := sweepPoints(design, 1, 1)
	ref := singleNodeReference(t, pts)
	key := pts[0].CacheKey()
	data, err := campaign.EncodeEntry(campaign.Entry{Key: key, Res: ref[0]})
	if err != nil {
		t.Fatal(err)
	}
	s.Claim(key, "a")
	if stored, err := s.Put(key, data); err != nil || !stored {
		t.Fatalf("put: stored=%v err=%v", stored, err)
	}
	if st := s.Claim(key, "b"); st.State != "done" {
		t.Fatalf("claim of stored key: %+v", st)
	}
	if s.Stats().Claims != 1 { // only "k" held by b
		t.Fatalf("claims: %+v", s.Stats())
	}
	// Garbage and key-mismatched puts are rejected; duplicates dropped.
	if _, err := s.Put(key, []byte("junk")); err == nil {
		t.Fatal("garbage put accepted")
	}
	if _, err := s.Put("other", data); err == nil {
		t.Fatal("key-mismatched put accepted")
	}
	if stored, err := s.Put(key, data); err != nil || stored {
		t.Fatalf("duplicate put: stored=%v err=%v", stored, err)
	}
}

func TestStoreWALRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	design := tinyDesign(3)
	pts := sweepPoints(design, 1, 3)
	ref := singleNodeReference(t, pts)

	s, err := OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		data, err := campaign.EncodeEntry(campaign.Entry{Key: p.CacheKey(), Res: ref[i]})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(p.CacheKey(), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A re-opened store serves everything it acknowledged.
	s2, err := OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.Recovered != len(pts) || got.Entries != len(pts) {
		t.Fatalf("recovery stats: %+v", got)
	}
	for i, p := range pts {
		data, ok := s2.Get(p.CacheKey())
		if !ok {
			t.Fatalf("point %d missing after recovery", i)
		}
		e, err := campaign.DecodeEntry(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(e.Res, normalize(t, p.CacheKey(), ref[i])) {
			t.Fatalf("point %d result changed across recovery", i)
		}
	}

	// A torn tail (partial final record) costs nothing but the tail.
	seg, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(seg) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(seg[len(seg)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s3, err := OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s3.Close()
	if s3.Len() != len(pts) {
		t.Fatalf("torn tail lost entries: %d != %d", s3.Len(), len(pts))
	}
}

// TestShardedMatchesSingleNode is the tentpole contract: a campaign
// sharded over loopback nodes is byte-identical to the single-node
// reference at any node count.
func TestShardedMatchesSingleNode(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 3, 4)
	ref := singleNodeReference(t, pts)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			cl := startCluster(t, pts, n, nil)
			coord, err := NewCoordinator(CoordinatorConfig{
				Points: pts, Nodes: cl.nodes, Store: cl.client,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Run(context.Background())
			if err != nil {
				t.Fatalf("coordinated run: %v", err)
			}
			if len(got) != len(ref) {
				t.Fatalf("got %d results, want %d", len(got), len(ref))
			}
			for i := range ref {
				want := normalize(t, pts[i].CacheKey(), ref[i])
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("nodes=%d: point %d diverged from single-node reference", n, i)
				}
			}
			if st := cl.store.Stats(); st.Claims != 0 {
				t.Fatalf("claims leaked: %+v", st)
			}
		})
	}
}

// TestStealPolicy pins the work-stealing rules an idle slot follows:
// longest live queue first, node-ID tie-break, tail-end pop (the owner
// pops the head, so thief and owner never chase the same point), dead
// nodes never victimized, and no self-steal.
func TestStealPolicy(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 2, 3)
	nodes := []Node{
		{ID: "a", URL: "http://x"}, {ID: "b", URL: "http://x"}, {ID: "c", URL: "http://x"},
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Points: pts, Nodes: nodes, Store: NewStoreClient("http://x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queues = map[string][]int{"a": {}, "b": {1, 2, 3}, "c": {4, 5}}

	if idx, ok := c.stealLocked("a"); !ok || idx != 3 {
		t.Fatalf("steal 1: got (%d,%t), want tail of longest queue (3,true)", idx, ok)
	}
	// b and c now tie at two queued points: lowest node ID wins.
	if idx, ok := c.stealLocked("a"); !ok || idx != 2 {
		t.Fatalf("steal 2: got (%d,%t), want (2,true) from b on tie-break", idx, ok)
	}
	if idx, ok := c.stealLocked("a"); !ok || idx != 5 {
		t.Fatalf("steal 3: got (%d,%t), want (5,true) from c", idx, ok)
	}
	// A dead node's queue is declareDead's to drain, never a victim's.
	c.state["c"] = NodeDead
	c.queues["c"] = []int{4, 5, 6, 7}
	if idx, ok := c.stealLocked("a"); !ok || idx != 1 {
		t.Fatalf("steal 4: got (%d,%t), want (1,true) from live b, not dead c", idx, ok)
	}
	// Only the caller's own queue has work left: nothing to steal.
	c.queues["a"] = []int{9}
	if _, ok := c.stealLocked("a"); ok {
		t.Fatal("stole despite only own queue having work")
	}
	if got := c.stolen.Load(); got != 4 {
		t.Fatalf("stolen counter = %d, want 4", got)
	}
}

// TestWorkerKillMidPointReassigns kills a worker after it has claimed a
// point (ghost claim in the store), and requires the coordinator to
// revoke the claim, reshard the dead node's points onto survivors, and
// still produce the byte-identical result set.
func TestWorkerKillMidPointReassigns(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 3, 4)
	ref := singleNodeReference(t, pts)

	// Every worker gets some share of 12 points on a 3-node ring; kill
	// w1 on its first run request, mid-point, claim in hand.
	cl := startCluster(t, pts, 3, map[int]int{1: 1})
	coord, err := NewCoordinator(CoordinatorConfig{
		Points: pts, Nodes: cl.nodes, Store: cl.client,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("coordinated run with dead worker: %v", err)
	}
	for i := range ref {
		want := normalize(t, pts[i].CacheKey(), ref[i])
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d diverged after worker death", i)
		}
	}
	st := coord.Stats()
	if st.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", st.Deaths)
	}
	if st.Reassigned == 0 {
		t.Fatal("no points reassigned after worker death")
	}
	if ss := cl.store.Stats(); ss.Claims != 0 {
		t.Fatalf("ghost claim survived revocation: %+v", ss)
	}
	if cl.workers[1].Completed() != 0 {
		t.Fatalf("killed worker completed %d points", cl.workers[1].Completed())
	}
}

// TestAllNodesDeadFails: when every node dies the campaign reports the
// failure instead of hanging.
func TestAllNodesDeadFails(t *testing.T) {
	design := tinyDesign(1)
	pts := sweepPoints(design, 1, 2)
	cl := startCluster(t, pts, 1, map[int]int{0: 1})
	coord, err := NewCoordinator(CoordinatorConfig{
		Points: pts, Nodes: cl.nodes, Store: cl.client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err == nil {
		t.Fatal("campaign with no surviving node succeeded")
	}
}

// TestTierServesAcrossNodes: a second campaign over the same points on
// fresh workers computes nothing — every point is a network-tier hit.
func TestTierServesAcrossNodes(t *testing.T) {
	design := tinyDesign(2)
	pts := sweepPoints(design, 2, 2)
	cl := startCluster(t, pts, 2, nil)
	coord, err := NewCoordinator(CoordinatorConfig{Points: pts, Nodes: cl.nodes, Store: cl.client})
	if err != nil {
		t.Fatal(err)
	}
	first, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Fresh workers, same store: all served from the network tier.
	fresh := []*Worker{}
	nodes := []Node{}
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{ID: fmt.Sprintf("f%d", i), Points: pts, Store: cl.client, Workers: 2})
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		fresh = append(fresh, w)
		nodes = append(nodes, Node{ID: fmt.Sprintf("f%d", i), URL: "http://" + addr, Slots: 2})
	}
	coord2, err := NewCoordinator(CoordinatorConfig{Points: pts, Nodes: nodes, Store: cl.client})
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("point %d changed between campaigns", i)
		}
	}
	var tierHits int64
	for _, w := range fresh {
		st := w.engine.Cache().Stats()
		tierHits += st.TierHits
	}
	if tierHits != int64(len(pts)) {
		t.Fatalf("tier hits = %d, want %d (every point served from store)", tierHits, len(pts))
	}
}
