package warehouse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/journal"
)

func rec(campaign string, point int, stage string, scalars map[string]float64) Record {
	return Record{
		Campaign: campaign, Point: point, Stage: stage,
		Node: "w0", Corner: "typ", Key: "k", Design: "tiny",
		Seed: 1, FreqGHz: 0.5, Outcome: "ok", Scalars: scalars, Unix: 100,
	}
}

// TestDedupeFirstWins: at-least-once delivery from the fleet must not
// multiply records — one survivor per (campaign, point, stage).
func TestDedupeFirstWins(t *testing.T) {
	w, err := Open("", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	first := rec("c", 0, "sta", map[string]float64{"wns_ps": -12})
	for i := 0; i < 3; i++ {
		if err := w.Append(first); err != nil {
			t.Fatal(err)
		}
	}
	// Different node, same triple: still a duplicate (determinism makes
	// the content identical; first wins).
	dup := first
	dup.Node = "w1"
	if err := w.Append(dup); err != nil {
		t.Fatal(err)
	}
	// A different stage of the same point is NOT a duplicate.
	if err := w.Append(rec("c", 0, "synth", map[string]float64{"area_um2": 9})); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 2 || st.Deduped != 3 {
		t.Fatalf("stats = %+v, want 2 records / 3 deduped", st)
	}
	if got := w.Select(Query{Campaign: "c", Node: "w0"}); len(got) != 2 {
		t.Fatalf("first-wins lost: node filter w0 matched %d, want 2", len(got))
	}
}

// TestWALReplayByteIdentical: reopen after a simulated crash (no Close)
// and the canonical dump must be byte-identical — the ISSUE's
// durability acceptance clause.
func TestWALReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for _, stage := range []string{"synth", "place", "sta"} {
			if err := w.Append(rec("c", p, stage, map[string]float64{"t_ms": float64(10 * p), "wns_ps": -float64(p)})); err != nil {
				t.Fatal(err)
			}
		}
	}
	var before bytes.Buffer
	w.DumpCanonical(&before, "c")
	// Crash: drop the handle without Close; the WAL is append-before-
	// visible so everything dumped above is already durable.

	w2, err := Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var after bytes.Buffer
	w2.DumpCanonical(&after, "c")
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("replay dump differs:\n--- before\n%s--- after\n%s", &before, &after)
	}
	if st := w2.Stats(); st.Replayed != 12 || st.Records != 12 {
		t.Fatalf("replay stats = %+v, want 12 replayed / 12 records", st)
	}
}

// TestSelectAggregate: canonical ordering and histogram folding.
func TestSelectAggregate(t *testing.T) {
	w, _ := Open("", journal.Options{})
	defer w.Close()
	// Insert out of order; Select must come back (campaign, point, stage).
	w.Append(rec("c", 1, "sta", map[string]float64{"wns_ps": -200})) //nolint:errcheck
	w.Append(rec("c", 0, "synth", map[string]float64{"t_ms": 5}))   //nolint:errcheck
	w.Append(rec("c", 0, "place", map[string]float64{"t_ms": 7}))   //nolint:errcheck
	got := w.Select(Query{Campaign: "c"})
	if len(got) != 3 || got[0].Stage != "place" || got[1].Stage != "synth" || got[2].Point != 1 {
		t.Fatalf("canonical order broken: %+v", got)
	}
	snap := w.Aggregate(Query{Campaign: "c", Stage: "sta"}, "wns_ps")
	if snap.Count != 1 || snap.MaxUs != 200 {
		t.Fatalf("aggregate = %+v, want count 1 max 200 (magnitude of -200)", snap)
	}
	if snap = w.Aggregate(Query{Campaign: "c"}, "t_ms"); snap.Count != 2 {
		t.Fatalf("t_ms aggregate count = %d, want 2", snap.Count)
	}
}

// TestMine flags regressions in the right direction for both
// lower-is-better and higher-is-better scalars.
func TestMine(t *testing.T) {
	w, _ := Open("", journal.Options{})
	defer w.Close()
	w.Append(rec("base", 0, "droute", map[string]float64{"t_ms": 100, "wns_ps": -50})) //nolint:errcheck
	w.Append(rec("head", 0, "droute", map[string]float64{"t_ms": 110, "wns_ps": -40})) //nolint:errcheck
	regs := Mine(w, "base", "head", 1.0)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	// Worse-first ordering: the 10% runtime regression leads.
	if !regs[0].Worse || regs[0].Scalar != "t_ms" || regs[0].DeltaPct < 9.9 || regs[0].DeltaPct > 10.1 {
		t.Fatalf("runtime regression mis-flagged: %+v", regs[0])
	}
	// wns went -50 → -40: numerically +20% but slack improved.
	if regs[1].Worse || regs[1].Scalar != "wns_ps" {
		t.Fatalf("slack improvement mis-flagged as regression: %+v", regs[1])
	}
	var buf bytes.Buffer
	WriteRegressions(&buf, regs)
	if !strings.Contains(buf.String(), "REGRESSED droute.t_ms") || !strings.Contains(buf.String(), "improved droute.wns_ps") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

// TestHTTPIngestQueryTail drives the full HTTP surface: client-batch
// ingest, query, aggregate, canonical dump, stats, and the SSE tail.
func TestHTTPIngestQueryTail(t *testing.T) {
	w, _ := Open("", journal.Options{})
	defer w.Close()
	srv := httptest.NewServer(NewHandler(w))
	defer srv.Close()

	// Open the tail before ingesting so the events stream to it.
	tailResp, err := http.Get(srv.URL + "/v1/tail?stage=sta")
	if err != nil {
		t.Fatal(err)
	}
	defer tailResp.Body.Close()

	c := NewClient(srv.URL)
	batch := []Record{
		rec("c", 0, "sta", map[string]float64{"wns_ps": -3}),
		rec("c", 0, "synth", map[string]float64{"t_ms": 4}),
	}
	if err := c.AppendBatch(batch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := c.Append(batch[0]); err != nil { // duplicate, absorbed
		t.Fatal(err)
	}

	var got []Record
	resp, err := http.Get(srv.URL + "/v1/records?campaign=c&stage=sta")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got) != 1 || got[0].Scalars["wns_ps"] != -3 {
		t.Fatalf("query returned %+v", got)
	}

	resp, err = http.Get(srv.URL + "/v1/dump?campaign=c")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := readAll(resp)
	if !strings.Contains(dump, "stage=sta") || !strings.Contains(dump, "wns_ps=-3") {
		t.Fatalf("dump:\n%s", dump)
	}
	if strings.Contains(dump, "w0") {
		t.Fatalf("canonical dump leaked the node name:\n%s", dump)
	}

	// The tail saw the sta record (filtered) as an SSE event.
	sc := bufio.NewScanner(tailResp.Body)
	var event, data string
	for sc.Scan() && data == "" {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if event != "record" || !strings.Contains(data, `"Stage":"sta"`) {
		t.Fatalf("tail event=%q data=%q", event, data)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.String(), err
}
