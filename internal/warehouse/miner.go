package warehouse

import (
	"fmt"
	"io"
	"sort"
)

// Regression is one flagged metric delta between two campaigns.
type Regression struct {
	Stage    string
	Scalar   string
	Base     float64 // mean over the base campaign's records
	Head     float64 // mean over the head campaign's records
	DeltaPct float64 // signed percent change head vs base
	Worse    bool    // true when the change is in the bad direction
}

// higherIsBetter marks the scalars whose increase is an improvement;
// everything else (area, power, runtime, drvs, ...) is
// lower-is-better.
var higherIsBetter = map[string]bool{
	"wns_ps":      true, // less negative slack is better
	"maxfreq_ghz": true,
}

// Mine compares two campaigns stage by stage: for every scalar present
// in both, it computes the mean over each campaign's records and flags
// changes beyond tolerancePct. This is the paper's "mining" box in its
// smallest useful form — enough to catch "this code/flow change made
// droute 8% slower" from the warehouse alone.
func Mine(w *Warehouse, baseCampaign, headCampaign string, tolerancePct float64) []Regression {
	baseMeans := stageMeans(w.Select(Query{Campaign: baseCampaign}))
	headMeans := stageMeans(w.Select(Query{Campaign: headCampaign}))
	var out []Regression
	for key, b := range baseMeans {
		h, ok := headMeans[key]
		if !ok {
			continue
		}
		var deltaPct float64
		switch {
		case b.mean != 0:
			deltaPct = (h.mean - b.mean) / abs(b.mean) * 100
		case h.mean != 0:
			deltaPct = 100
		}
		if abs(deltaPct) <= tolerancePct {
			continue
		}
		worse := deltaPct > 0
		if higherIsBetter[key.scalar] {
			worse = !worse
		}
		out = append(out, Regression{
			Stage: key.stage, Scalar: key.scalar,
			Base: b.mean, Head: h.mean, DeltaPct: deltaPct, Worse: worse,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worse != out[j].Worse {
			return out[i].Worse
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Scalar < out[j].Scalar
	})
	return out
}

// WriteRegressions renders a miner report, worst first.
func WriteRegressions(out io.Writer, regs []Regression) {
	for _, r := range regs {
		tag := "improved"
		if r.Worse {
			tag = "REGRESSED"
		}
		fmt.Fprintf(out, "%s %s.%s base=%.3f head=%.3f delta=%+.1f%%\n",
			tag, r.Stage, r.Scalar, r.Base, r.Head, r.DeltaPct)
	}
}

type stageScalar struct{ stage, scalar string }

type meanAcc struct {
	mean float64
	n    int
}

func stageMeans(recs []Record) map[stageScalar]meanAcc {
	sums := map[stageScalar]meanAcc{}
	for _, r := range recs {
		for k, v := range r.Scalars {
			key := stageScalar{r.Stage, k}
			acc := sums[key]
			acc.mean += v
			acc.n++
			sums[key] = acc
		}
	}
	for key, acc := range sums {
		acc.mean /= float64(acc.n)
		sums[key] = acc
	}
	return sums
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
