package warehouse

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxIngestBytes bounds one ingest POST.
const maxIngestBytes = 64 << 20

// NewHandler returns the warehouse HTTP API, mountable under any
// prefix (the metrics front door mounts it at /warehouse/):
//
//	POST /v1/records           ingest a JSON array of Records
//	GET  /v1/records?...       query (campaign, stage, node, design, since)
//	GET  /v1/aggregate?...&scalar=S   p50/p90/p99 of scalar S over the match
//	GET  /v1/dump?campaign=C   canonical byte-diffable dump
//	GET  /v1/tail?...          SSE live tail of matching records
//	GET  /v1/mine?base=A&head=B[&tolerance=PCT]   regressions between campaigns
//	GET  /v1/stats             store counters
func NewHandler(w *Warehouse) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", func(rw http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			handleIngest(w, rw, r)
		case http.MethodGet:
			writeJSON(rw, w.Select(queryOf(r)))
		default:
			http.Error(rw, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/aggregate", func(rw http.ResponseWriter, r *http.Request) {
		scalar := r.URL.Query().Get("scalar")
		if scalar == "" {
			http.Error(rw, "scalar parameter required", http.StatusBadRequest)
			return
		}
		writeJSON(rw, w.Aggregate(queryOf(r), scalar))
	})
	mux.HandleFunc("/v1/dump", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.DumpCanonical(rw, r.URL.Query().Get("campaign"))
	})
	mux.HandleFunc("/v1/tail", func(rw http.ResponseWriter, r *http.Request) {
		handleTail(w, rw, r)
	})
	mux.HandleFunc("/v1/mine", func(rw http.ResponseWriter, r *http.Request) {
		base, head := r.URL.Query().Get("base"), r.URL.Query().Get("head")
		if base == "" || head == "" {
			http.Error(rw, "base and head parameters required", http.StatusBadRequest)
			return
		}
		tol := 1.0
		if tv := r.URL.Query().Get("tolerance"); tv != "" {
			f, err := strconv.ParseFloat(tv, 64)
			if err != nil {
				http.Error(rw, "bad tolerance", http.StatusBadRequest)
				return
			}
			tol = f
		}
		writeJSON(rw, Mine(w, base, head, tol))
	})
	mux.HandleFunc("/v1/stats", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, w.Stats())
	})
	return mux
}

func handleIngest(w *Warehouse, rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBytes))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	var recs []Record
	if err := json.Unmarshal(body, &recs); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			// WAL failure: the node will retry the whole batch; dedupe
			// makes the partial ingest harmless.
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	fmt.Fprintf(rw, "{\"ingested\":%d}\n", len(recs))
}

// handleTail streams matching records as server-sent events until the
// client hangs up — the "watch a 3-node sweep live" endpoint.
func handleTail(w *Warehouse, rw http.ResponseWriter, r *http.Request) {
	fl, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := queryOf(r)
	ch, cancel := w.Subscribe()
	defer cancel()
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.Header().Set("Cache-Control", "no-cache")
	rw.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case rec, open := <-ch:
			if !open {
				return
			}
			if !q.match(rec) {
				continue
			}
			b, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			fmt.Fprintf(rw, "event: record\ndata: %s\n\n", b)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func queryOf(r *http.Request) Query {
	qs := r.URL.Query()
	since, _ := strconv.ParseInt(qs.Get("since"), 10, 64)
	return Query{
		Campaign: qs.Get("campaign"),
		Stage:    qs.Get("stage"),
		Node:     qs.Get("node"),
		Design:   qs.Get("design"),
		Since:    since,
	}
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
