package warehouse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client ingests records into a remote warehouse over HTTP — the
// Appender a worker node uses. Delivery is at-least-once (a timed-out
// POST may have landed), which the warehouse's first-wins dedupe makes
// exactly-once in effect; the client therefore retries freely.
//
// The client deliberately uses a plain transport, never a chaos-wrapped
// one: observability records must survive the faults they are
// describing.
type Client struct {
	base   string // e.g. "http://127.0.0.1:7610/warehouse"
	client *http.Client
}

// NewClient creates a client for the warehouse API rooted at base.
func NewClient(base string) *Client {
	return &Client{base: base, client: &http.Client{Timeout: 10 * time.Second}}
}

// Append ships one record (a batch of one; use AppendBatch on hot
// paths).
func (c *Client) Append(rec Record) error { return c.AppendBatch([]Record{rec}) }

// AppendBatch ships records, retrying transient failures.
func (c *Client) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	body, err := json.Marshal(recs)
	if err != nil {
		return fmt.Errorf("warehouse client: encode: %w", err)
	}
	var last error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 25 * time.Millisecond)
		}
		resp, err := c.client.Post(c.base+"/v1/records", "application/json", bytes.NewReader(body))
		if err != nil {
			last = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		last = fmt.Errorf("warehouse client: %s", resp.Status)
	}
	return last
}
