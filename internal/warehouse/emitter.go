package warehouse

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/flow"
)

// flushBatch is how many buffered records trigger a ship.
const flushBatch = 32

// Emitter adapts flow step records into warehouse records — the
// METRICS "wrapper" glue. Wire it as the campaign's flow.Observer; it
// resolves each step to its campaign point index via the canonical
// options key, stamps campaign/node/corner, and ships batches to the
// sink (a local *Warehouse or a remote *Client).
type Emitter struct {
	campaign string
	node     string
	sink     Appender
	pointOf  map[string]int // flow.Options.Key() → point index

	mu  sync.Mutex
	buf []Record
}

// NewEmitter creates an emitter for one campaign. pointKeys is the
// campaign's canonical point list as flow.Options keys, in point
// order — every process derives the identical list from the sweep spec,
// so point indices agree fleet-wide.
func NewEmitter(campaignID, node string, pointKeys []string, sink Appender) *Emitter {
	m := make(map[string]int, len(pointKeys))
	for i, k := range pointKeys {
		if _, dup := m[k]; !dup {
			m[k] = i
		}
	}
	return &Emitter{campaign: campaignID, node: node, sink: sink, pointOf: m}
}

// OnStep implements flow.Observer.
func (e *Emitter) OnStep(rec flow.StepRecord) {
	key := rec.Options.Key()
	idx, ok := e.pointOf[key]
	if !ok {
		return // a run outside the campaign's point list (probes, tests)
	}
	scalars := make(map[string]float64, len(rec.Metrics))
	for k, v := range rec.Metrics {
		scalars[k] = v
	}
	r := Record{
		Campaign: e.campaign,
		Point:    idx,
		Stage:    rec.Step,
		Node:     e.node,
		Corner:   "typ",
		Key:      key,
		Design:   rec.Design,
		Seed:     rec.Options.Seed,
		FreqGHz:  rec.Options.TargetFreqGHz,
		Outcome:  "ok",
		Scalars:  scalars,
		Unix:     time.Now().Unix(),
	}
	e.mu.Lock()
	e.buf = append(e.buf, r)
	var ship []Record
	if len(e.buf) >= flushBatch {
		ship = e.buf
		e.buf = nil
	}
	e.mu.Unlock()
	e.ship(ship)
}

// Flush ships everything buffered. Call after the campaign completes
// (and before reading the warehouse back).
func (e *Emitter) Flush() {
	e.mu.Lock()
	ship := e.buf
	e.buf = nil
	e.mu.Unlock()
	e.ship(ship)
}

func (e *Emitter) ship(recs []Record) {
	if len(recs) == 0 {
		return
	}
	var err error
	if b, ok := e.sink.(interface{ AppendBatch([]Record) error }); ok {
		err = b.AppendBatch(recs)
	} else {
		for _, r := range recs {
			if aerr := e.sink.Append(r); aerr != nil {
				err = aerr
			}
		}
	}
	if err != nil {
		// Observability must never fail the campaign: report and move on.
		fmt.Fprintf(os.Stderr, "warehouse emitter (%s): %v\n", e.node, err)
	}
}
