// Package warehouse is the reproduction's central METRICS store — the
// paper's Fig. 11 "central data warehouse" for the flow infrastructure
// itself. Every flow stage of every campaign point, on every node,
// produces one structured record (QoR scalars, options key, node,
// corner); records are ingested over HTTP from the whole fleet, made
// durable in a CRC-framed WAL (internal/journal), and served back
// through a query/aggregate API, an SSE live tail, and a regression
// miner — the substrate the ROADMAP's "continuously learning prediction
// service" trains from.
//
// Determinism contract: the flow is deterministic per (design, options)
// point, so records for the same (campaign, point, stage) are identical
// no matter which node computed them, whether the point was a cache hit
// or a recompute, or how many times a retry re-emitted the stage. The
// warehouse therefore dedupes first-wins on that triple, and its
// canonical dump (which excludes the non-deterministic Node/Unix/
// Outcome fields) is byte-identical across node counts and across
// crash/replay.
package warehouse

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Record is one flow stage of one campaign point as the warehouse
// stores it.
type Record struct {
	Campaign string  // campaign id (hex of the sweep-spec hash)
	Point    int     // index in the campaign's canonical point list
	Stage    string  // "synth", "place", "cts", "groute", "droute", "sta", "recover"
	Node     string  // node that emitted it ("local", "w0", ...)
	Corner   string  // analysis corner (single-corner flow: "typ")
	Key      string  // canonical flow.Options key of the point
	Design   string
	Seed     int64
	FreqGHz  float64
	Outcome  string             // trace outcome of the emitting run ("ok", ...)
	Scalars  map[string]float64 // the stage's QoR/runtime metrics
	Unix     int64              // ingest wall-clock, seconds
}

// dedupeKey identifies the deterministic content of a record: one
// record per (campaign, point, stage) survives, first-wins.
func (r Record) dedupeKey() string {
	return fmt.Sprintf("%s\x00%d\x00%s", r.Campaign, r.Point, r.Stage)
}

// Stats summarizes a warehouse.
type Stats struct {
	Records  int   // live (deduped) records
	Deduped  int64 // ingested records dropped as duplicates
	Replayed int   // records recovered from the WAL at Open
	Torn     int   // WAL segments with torn tails truncated at Open
}

// Warehouse is the store. All methods are safe for concurrent use.
type Warehouse struct {
	mu    sync.RWMutex
	log   *journal.Log // nil = memory only
	recs  []Record
	index map[string]int // dedupeKey → recs index
	subs  map[chan Record]bool

	deduped  int64
	replayed int
	torn     int
}

// Open opens (or creates) a warehouse backed by the WAL in dir and
// replays every durable record. dir == "" is memory-only (tests,
// single-shot runs).
func Open(dir string, opts journal.Options) (*Warehouse, error) {
	w := &Warehouse{index: map[string]int{}, subs: map[chan Record]bool{}}
	if dir == "" {
		return w, nil
	}
	log, err := journal.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	w.log = log
	for _, payload := range log.Records() {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A corrupt-but-CRC-valid record means a writer bug, not media
			// damage; skip it rather than refusing the whole store.
			continue
		}
		if w.insert(rec) {
			w.replayed++
		}
	}
	w.torn = log.Stats().TornTails
	metrics.Add("warehouse.replayed", int64(w.replayed))
	return w, nil
}

// insert adds rec to the in-memory index (no WAL write). Returns false
// for duplicates. Caller holds no lock; insert takes it.
func (w *Warehouse) insert(rec Record) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.index[rec.dedupeKey()]; dup {
		w.deduped++
		return false
	}
	w.index[rec.dedupeKey()] = len(w.recs)
	w.recs = append(w.recs, rec)
	for ch := range w.subs {
		select {
		case ch <- rec:
		default: // a slow tail subscriber drops, never blocks ingest
		}
	}
	return true
}

// Append ingests one record: WAL first (durable before visible), then
// the in-memory index. Duplicate (campaign, point, stage) records are
// dropped — determinism makes them identical, so at-least-once delivery
// from the fleet is safe.
func (w *Warehouse) Append(rec Record) error {
	w.mu.RLock()
	_, dup := w.index[rec.dedupeKey()]
	log := w.log
	w.mu.RUnlock()
	if dup {
		w.mu.Lock()
		w.deduped++
		w.mu.Unlock()
		metrics.Add("warehouse.deduped", 1)
		return nil
	}
	if log != nil {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("warehouse: encode: %w", err)
		}
		if err := log.Append(payload); err != nil {
			return fmt.Errorf("warehouse: append: %w", err)
		}
	}
	if w.insert(rec) {
		metrics.Add("warehouse.appended", 1)
	} else {
		metrics.Add("warehouse.deduped", 1)
	}
	return nil
}

// Appender is the ingest interface: the in-process *Warehouse and the
// HTTP *Client both implement it, so emitters don't care whether the
// store is local or remote.
type Appender interface {
	Append(rec Record) error
}

// Query filters records. Zero fields match everything.
type Query struct {
	Campaign string
	Stage    string
	Node     string
	Design   string
	Since    int64 // unix seconds, inclusive
}

func (q Query) match(r Record) bool {
	if q.Campaign != "" && r.Campaign != q.Campaign {
		return false
	}
	if q.Stage != "" && r.Stage != q.Stage {
		return false
	}
	if q.Node != "" && r.Node != q.Node {
		return false
	}
	if q.Design != "" && r.Design != q.Design {
		return false
	}
	if q.Since != 0 && r.Unix < q.Since {
		return false
	}
	return true
}

// Select returns the matching records sorted canonically (campaign,
// point, stage).
func (w *Warehouse) Select(q Query) []Record {
	w.mu.RLock()
	var out []Record
	for _, r := range w.recs {
		if q.match(r) {
			out = append(out, r)
		}
	}
	w.mu.RUnlock()
	sortCanonical(out)
	return out
}

func sortCanonical(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Campaign != b.Campaign {
			return a.Campaign < b.Campaign
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		return a.Stage < b.Stage
	})
}

// Aggregate folds the named scalar of every matching record into a
// latency-histogram snapshot (the existing trace.Hist machinery, with
// the scalar read as microseconds), yielding count/mean/p50/p90/p99/max
// across the fleet in one pass.
func (w *Warehouse) Aggregate(q Query, scalar string) trace.HistSnapshot {
	h := &trace.Hist{}
	for _, r := range w.Select(q) {
		v, ok := r.Scalars[scalar]
		if !ok {
			continue
		}
		if v < 0 {
			v = -v // magnitudes: wns_ps is negative when timing fails
		}
		h.Observe(time.Duration(v * float64(time.Microsecond)))
	}
	return h.Snapshot(scalar)
}

// Subscribe registers a live-tail channel receiving every record as it
// is ingested. The returned cancel unregisters and closes it.
func (w *Warehouse) Subscribe() (<-chan Record, func()) {
	ch := make(chan Record, 256)
	w.mu.Lock()
	w.subs[ch] = true
	w.mu.Unlock()
	cancel := func() {
		w.mu.Lock()
		if w.subs[ch] {
			delete(w.subs, ch)
			close(ch)
		}
		w.mu.Unlock()
	}
	return ch, cancel
}

// DumpCanonical writes the campaign's records in canonical order with
// the non-deterministic fields (Node, Unix, Outcome) omitted — the
// byte-diff currency of the determinism contract: the dump is identical
// at any node count and after any crash/replay.
func (w *Warehouse) DumpCanonical(out io.Writer, campaign string) {
	for _, r := range w.Select(Query{Campaign: campaign}) {
		fmt.Fprintf(out, "record campaign=%s point=%d stage=%s corner=%s design=%s seed=%d freq=%g key=%q",
			r.Campaign, r.Point, r.Stage, r.Corner, r.Design, r.Seed, r.FreqGHz, r.Key)
		keys := make([]string, 0, len(r.Scalars))
		for k := range r.Scalars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, " %s=%g", k, r.Scalars[k])
		}
		fmt.Fprintln(out)
	}
}

// Stats returns store counters.
func (w *Warehouse) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return Stats{Records: len(w.recs), Deduped: w.deduped, Replayed: w.replayed, Torn: w.torn}
}

// Close flushes and closes the WAL (memory-only warehouses are a
// no-op) and drops every tail subscriber.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	for ch := range w.subs {
		delete(w.subs, ch)
		close(ch)
	}
	log := w.log
	w.log = nil
	w.mu.Unlock()
	if log != nil {
		return log.Close()
	}
	return nil
}
