package pkglayout

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRobotAlwaysCrossingFreeQuick: the order-preserving assignment is
// crossing-free for distributed escape pads (the physical layout: I/O
// sites spread around the die edge with placement jitter). Tightly
// bunched escapes fanning to a full ring can force crossings in every
// rotation — real packages use multi-layer redistribution there.
func TestRobotAlwaysCrossingFreeQuick(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%16)
		m := n + int(extraRaw%8)
		rng := rand.New(rand.NewSource(seed))
		sigs := make([]Signal, n)
		for i := range sigs {
			base := 2 * math.Pi * float64(i) / float64(n)
			jitter := (rng.Float64() - 0.5) * 2 * math.Pi / float64(2*n)
			sigs[i] = Signal{Angle: base + jitter, R: 10} // distributed die-edge pads
		}
		balls := Ring(m, 25)
		a := Robot(sigs, balls)
		if a == nil || !Valid(a, m) {
			return false
		}
		return Crossings(sigs, balls, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
