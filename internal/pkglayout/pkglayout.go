// Package pkglayout implements package layout automation — the fourth
// of the paper's Sec. 3.1 robot-engineer applications. The modeled task
// is die-to-package signal assignment: each die I/O escapes at a point
// on the die edge and must be assigned to a package ball on a
// surrounding ring; bond/redistribution wires must not cross, and total
// wire length should be minimal.
//
// For escapes on a common die-edge ring and balls on a package ring,
// crossing-free assignments are exactly the order-preserving (cyclic)
// ones, so the robot enumerates rotations of the order-preserving
// assignment and keeps the shortest — a provably crossing-free optimum
// within that family. (With per-signal escape radii the guarantee is
// only approximate.) The baseline greedily grabs the nearest free ball
// per signal, which tangles.
package pkglayout

import (
	"math"
	"sort"
)

// Signal is one die I/O with its escape position on the die boundary,
// given as an angle (radians) and radius from die center.
type Signal struct {
	Name  string
	Angle float64 // position angle on the die edge
	R     float64 // die escape radius
}

// Ball is a package ball on the ring.
type Ball struct {
	Angle float64
	R     float64
}

// Ring builds n balls uniformly on a ring of the given radius.
func Ring(n int, radius float64) []Ball {
	balls := make([]Ball, n)
	for i := range balls {
		balls[i] = Ball{Angle: 2 * math.Pi * float64(i) / float64(n), R: radius}
	}
	return balls
}

// Assignment maps signal index -> ball index.
type Assignment []int

// wire returns the straight-line length of one signal-to-ball wire.
func wire(s Signal, b Ball) float64 {
	sx, sy := s.R*math.Cos(s.Angle), s.R*math.Sin(s.Angle)
	bx, by := b.R*math.Cos(b.Angle), b.R*math.Sin(b.Angle)
	return math.Hypot(sx-bx, sy-by)
}

// Length returns the total wire length of an assignment.
func Length(signals []Signal, balls []Ball, a Assignment) float64 {
	var total float64
	for si, bi := range a {
		if bi >= 0 {
			total += wire(signals[si], balls[bi])
		}
	}
	return total
}

// Crossings counts wire pairs that cross. Two wires on a ring cross iff
// their signal order and ball order disagree cyclically; computed
// geometrically here for generality.
func Crossings(signals []Signal, balls []Ball, a Assignment) int {
	type seg struct{ x1, y1, x2, y2 float64 }
	segs := make([]seg, 0, len(a))
	for si, bi := range a {
		if bi < 0 {
			continue
		}
		s, b := signals[si], balls[bi]
		segs = append(segs, seg{
			s.R * math.Cos(s.Angle), s.R * math.Sin(s.Angle),
			b.R * math.Cos(b.Angle), b.R * math.Sin(b.Angle),
		})
	}
	cross := 0
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			if segsIntersect(segs[i].x1, segs[i].y1, segs[i].x2, segs[i].y2,
				segs[j].x1, segs[j].y1, segs[j].x2, segs[j].y2) {
				cross++
			}
		}
	}
	return cross
}

func segsIntersect(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
	d1 := cross2(dx-cx, dy-cy, ax-cx, ay-cy)
	d2 := cross2(dx-cx, dy-cy, bx-cx, by-cy)
	d3 := cross2(bx-ax, by-ay, cx-ax, cy-ay)
	d4 := cross2(bx-ax, by-ay, dx-ax, dy-ay)
	return d1*d2 < 0 && d3*d4 < 0
}

func cross2(ax, ay, bx, by float64) float64 { return ax*by - ay*bx }

// Robot assigns signals to balls order-preservingly: signals sorted by
// angle map to consecutive balls, every cyclic rotation is tried, and
// the shortest crossing-free rotation is returned (falling back to the
// shortest overall if no rotation is clean, which cannot happen for
// escapes on a common ring). Requires len(balls) >= len(signals).
func Robot(signals []Signal, balls []Ball) Assignment {
	n, m := len(signals), len(balls)
	if n == 0 || m < n {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return signals[order[i]].Angle < signals[order[j]].Angle })
	ballOrder := make([]int, m)
	for i := range ballOrder {
		ballOrder[i] = i
	}
	sort.Slice(ballOrder, func(i, j int) bool { return balls[ballOrder[i]].Angle < balls[ballOrder[j]].Angle })

	best := math.Inf(1)
	bestClean := math.Inf(1)
	var bestAssign, bestCleanAssign Assignment
	for rot := 0; rot < m; rot++ {
		a := make(Assignment, n)
		for k, si := range order {
			a[si] = ballOrder[(rot+k*m/n)%m]
		}
		l := Length(signals, balls, a)
		if l < best {
			best = l
			bestAssign = a
		}
		// Order preservation alone permits crossings when a wire wraps
		// far around the ring; verify geometrically and prefer the
		// shortest rotation that is actually clean.
		if Crossings(signals, balls, a) == 0 && l < bestClean {
			bestClean = l
			bestCleanAssign = a
		}
	}
	if bestCleanAssign != nil {
		return bestCleanAssign
	}
	return bestAssign
}

// Greedy is the baseline: each signal in input order takes the nearest
// unused ball. Short-sighted — late signals detour and wires cross.
func Greedy(signals []Signal, balls []Ball) Assignment {
	n, m := len(signals), len(balls)
	if n == 0 || m < n {
		return nil
	}
	used := make([]bool, m)
	a := make(Assignment, n)
	for si := range signals {
		best, bestD := -1, math.Inf(1)
		for bi := range balls {
			if used[bi] {
				continue
			}
			if d := wire(signals[si], balls[bi]); d < bestD {
				best, bestD = bi, d
			}
		}
		a[si] = best
		used[best] = true
	}
	return a
}

// Valid reports whether an assignment is a partial injection into the
// ball set.
func Valid(a Assignment, numBalls int) bool {
	seen := make(map[int]bool, len(a))
	for _, bi := range a {
		if bi < 0 || bi >= numBalls || seen[bi] {
			return false
		}
		seen[bi] = true
	}
	return true
}
