package pkglayout

import (
	"math"
	"math/rand"
	"testing"
)

func randomSignals(n int, seed int64) []Signal {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]Signal, n)
	for i := range sigs {
		sigs[i] = Signal{
			Name:  string(rune('a' + i%26)),
			Angle: rng.Float64() * 2 * math.Pi,
			R:     10,
		}
	}
	return sigs
}

// spreadSignals models physical I/O placement: pads distributed around
// the die edge with jitter (crossing-free fanout exists by construction).
func spreadSignals(n int, seed int64) []Signal {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]Signal, n)
	for i := range sigs {
		base := 2 * math.Pi * float64(i) / float64(n)
		jitter := (rng.Float64() - 0.5) * 2 * math.Pi / float64(2*n)
		sigs[i] = Signal{Name: string(rune('a' + i%26)), Angle: base + jitter, R: 10}
	}
	return sigs
}

func TestRobotCrossingFree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sigs := spreadSignals(12, seed)
		balls := Ring(16, 25)
		a := Robot(sigs, balls)
		if a == nil {
			t.Fatal("no assignment")
		}
		if !Valid(a, len(balls)) {
			t.Fatal("invalid assignment")
		}
		if c := Crossings(sigs, balls, a); c != 0 {
			t.Errorf("seed %d: robot assignment has %d crossings", seed, c)
		}
	}
}

func TestRobotBeatsGreedy(t *testing.T) {
	var robotLen, greedyLen float64
	var robotCross, greedyCross int
	for seed := int64(0); seed < 10; seed++ {
		sigs := randomSignals(14, seed)
		balls := Ring(18, 25)
		ra := Robot(sigs, balls)
		ga := Greedy(sigs, balls)
		robotLen += Length(sigs, balls, ra)
		greedyLen += Length(sigs, balls, ga)
		robotCross += Crossings(sigs, balls, ra)
		greedyCross += Crossings(sigs, balls, ga)
	}
	if robotCross > greedyCross/4 {
		t.Errorf("robot crossings %d not far below greedy %d", robotCross, greedyCross)
	}
	if greedyCross == 0 {
		t.Error("greedy should tangle at least once over 10 seeds")
	}
	if robotLen > greedyLen*1.3 {
		t.Errorf("robot length %v much worse than greedy %v", robotLen, greedyLen)
	}
}

func TestAlignedCaseIsShort(t *testing.T) {
	// Signals exactly facing balls: the optimal rotation is the
	// radial one, total length = n * (ringR - dieR).
	n := 8
	sigs := make([]Signal, n)
	for i := range sigs {
		sigs[i] = Signal{Angle: 2 * math.Pi * float64(i) / float64(n), R: 10}
	}
	balls := Ring(n, 25)
	a := Robot(sigs, balls)
	want := float64(n) * 15
	if got := Length(sigs, balls, a); math.Abs(got-want) > 1e-6 {
		t.Errorf("aligned length %v, want %v", got, want)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if Robot(nil, Ring(4, 10)) != nil {
		t.Error("no signals should return nil")
	}
	if Robot(randomSignals(5, 1), Ring(3, 10)) != nil {
		t.Error("too few balls should return nil")
	}
	if Greedy(randomSignals(5, 1), Ring(3, 10)) != nil {
		t.Error("greedy with too few balls should return nil")
	}
}

func TestValid(t *testing.T) {
	if !Valid(Assignment{0, 2, 1}, 3) {
		t.Error("bijection rejected")
	}
	if Valid(Assignment{0, 0}, 3) {
		t.Error("duplicate accepted")
	}
	if Valid(Assignment{0, 5}, 3) {
		t.Error("out of range accepted")
	}
}

func TestRingUniform(t *testing.T) {
	balls := Ring(12, 30)
	if len(balls) != 12 {
		t.Fatal("ring size")
	}
	for i := 1; i < len(balls); i++ {
		gap := balls[i].Angle - balls[i-1].Angle
		if math.Abs(gap-2*math.Pi/12) > 1e-9 {
			t.Fatal("ring not uniform")
		}
	}
}
