package share

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/netlist"
)

func design(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestNameScrubCleansAllNames(t *testing.T) {
	orig := design(1)
	anon := Anonymize(orig, NameScrub, 1)
	if err := anon.Validate(); err != nil {
		t.Fatalf("anonymized netlist invalid: %v", err)
	}
	if leaks := LeakCheck(orig, anon); len(leaks) != 0 {
		t.Fatalf("leaks after scrub: %v", leaks)
	}
	if anon.Name == orig.Name {
		t.Error("design name leaked")
	}
}

func TestNameScrubPreservesEverythingElse(t *testing.T) {
	orig := design(2)
	anon := Anonymize(orig, NameScrub, 1)
	d := Drift(orig, anon)
	if d.Cells != 0 || d.Nets != 0 || d.Pins != 0 || d.AvgFanout != 0 || d.MaxLevel != 0 || d.Area != 0 {
		t.Fatalf("name scrub changed structure: %+v", d)
	}
	for i := range orig.Insts {
		if orig.Insts[i].Cell.Name != anon.Insts[i].Cell.Name {
			t.Fatal("name scrub changed cells")
		}
	}
}

func TestOriginalUntouched(t *testing.T) {
	orig := design(3)
	name := orig.Insts[5].Name
	cell := orig.Insts[5].Cell.Name
	Anonymize(orig, Obfuscate, 1)
	if orig.Insts[5].Name != name || orig.Insts[5].Cell.Name != cell {
		t.Fatal("Anonymize modified its input")
	}
}

func TestObfuscatePreservesStructure(t *testing.T) {
	orig := design(4)
	anon := Anonymize(orig, Obfuscate, 7)
	if err := anon.Validate(); err != nil {
		t.Fatalf("obfuscated netlist invalid: %v", err)
	}
	if leaks := LeakCheck(orig, anon); len(leaks) != 0 {
		t.Fatalf("leaks: %v", leaks)
	}
	d := Drift(orig, anon)
	if d.Cells != 0 || d.Nets != 0 || d.Pins != 0 || d.MaxLevel != 0 {
		t.Fatalf("topology drifted: %+v", d)
	}
	if d.Area > 0.25 {
		t.Errorf("area drift %v too large", d.Area)
	}
}

func TestObfuscateScramblesFunction(t *testing.T) {
	orig := design(5)
	anon := Anonymize(orig, Obfuscate, 9)
	changed := 0
	for i := range orig.Insts {
		if orig.Insts[i].Cell.Class != anon.Insts[i].Cell.Class {
			changed++
			if orig.Insts[i].Cell.Class.NumInputs() != anon.Insts[i].Cell.Class.NumInputs() {
				t.Fatal("arity changed by scramble")
			}
			if orig.Insts[i].Cell.Drive != anon.Insts[i].Cell.Drive {
				t.Fatal("drive changed by scramble")
			}
		}
	}
	if changed == 0 {
		// Class permutation can be identity by chance on one seed;
		// another seed should differ.
		anon2 := Anonymize(orig, Obfuscate, 10)
		for i := range orig.Insts {
			if orig.Insts[i].Cell.Class != anon2.Insts[i].Cell.Class {
				changed++
			}
		}
		if changed == 0 {
			t.Error("obfuscation never scrambled function across two seeds")
		}
	}
}

func TestObfuscatedDesignStillFlows(t *testing.T) {
	orig := design(6)
	anon := Anonymize(orig, Obfuscate, 11)
	res := flow.Run(anon, flow.Options{TargetFreqGHz: 0.3, Seed: 1})
	if res.AreaUm2 <= 0 {
		t.Fatal("obfuscated design cannot be implemented")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	orig := design(7)
	a := Anonymize(orig, Obfuscate, 3)
	b := Anonymize(orig, Obfuscate, 3)
	for i := range a.Insts {
		if a.Insts[i].Cell.Name != b.Insts[i].Cell.Name || a.Insts[i].Name != b.Insts[i].Name {
			t.Fatal("same seed differs")
		}
	}
}

func TestProxyMatchesStats(t *testing.T) {
	lib := cellib.Default14nm()
	orig := netlist.Generate(lib, netlist.PulpinoProxy(1))
	target := orig.ComputeStats()
	proxy, spec := Proxy(target, lib, 42)
	if err := proxy.Validate(); err != nil {
		t.Fatalf("proxy invalid: %v", err)
	}
	got := proxy.ComputeStats()
	if got.Registers != target.Registers {
		t.Errorf("registers %d vs %d", got.Registers, target.Registers)
	}
	if math.Abs(float64(got.Cells-target.Cells)) > 0.15*float64(target.Cells) {
		t.Errorf("cells %d vs %d", got.Cells, target.Cells)
	}
	if got.MaxLevel != target.MaxLevel {
		t.Errorf("depth %d vs %d", got.MaxLevel, target.MaxLevel)
	}
	if math.Abs(got.AvgNetSpan-target.AvgNetSpan) > 0.5*target.AvgNetSpan {
		t.Errorf("span %v vs %v", got.AvgNetSpan, target.AvgNetSpan)
	}
	if spec.Locality <= 0.05 || spec.Locality >= 0.99 {
		t.Errorf("locality %v did not converge", spec.Locality)
	}
	// Proxy must share no names with the original.
	if leaks := LeakCheck(orig, proxy); len(leaks) != 0 {
		// Generator names are gN/nN style and could collide; a proxy
		// is a fresh generation so instance names will collide by
		// construction (u0, u1...). Only the design name matters.
		for _, l := range leaks {
			if l == "design:"+orig.Name {
				t.Error("proxy reused design name")
			}
		}
	}
}
