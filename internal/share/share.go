// Package share implements the IP-preserving sharing mechanisms the
// paper's Sec. 4 calls for: "design owners, foundries and EDA should be
// comfortable that their IP ... is sufficiently protected (e.g., by
// standard anonymization and obfuscation mechanisms)".
//
// Three mechanisms are provided: name scrubbing (remove identifiers),
// full obfuscation (additionally scramble logic function and placement
// detail while preserving the structural attributes ML models consume),
// and proxy generation (a synthetic design matched to a target's
// structural statistics — shareable in place of the real artifact, cf.
// the "classes of (non-infringing) artificial circuits" of footnote 6).
package share

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

// Mode selects the anonymization strength.
type Mode int

const (
	// NameScrub replaces all instance/net names with opaque IDs.
	NameScrub Mode = iota
	// Obfuscate additionally permutes logic functions within same-arity
	// cell groups (destroying the design's function) and jitters
	// placement, while preserving topology and size distributions.
	Obfuscate
)

// Anonymize returns an IP-scrubbed deep copy of the design. The original
// is never modified. Structural statistics that drive flow outcomes
// (cell/net counts, fanout distribution, logic depth, area within a few
// percent) are preserved so shared data remains useful for ML.
func Anonymize(n *netlist.Netlist, mode Mode, seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	out := n.Clone()
	out.Name = fmt.Sprintf("anon-%08x", rng.Uint32())

	// Name scrub: opaque, order-randomized identifiers.
	instPerm := rng.Perm(len(out.Insts))
	for i := range out.Insts {
		out.Insts[i].Name = fmt.Sprintf("g%06d", instPerm[i])
	}
	netPerm := rng.Perm(len(out.Nets))
	for i := range out.Nets {
		out.Nets[i].Name = fmt.Sprintf("w%06d", netPerm[i])
	}

	if mode != Obfuscate {
		return out
	}

	// Function scramble: remap each combinational class to another
	// class with the same input arity (fixed permutation per design,
	// preserving per-class cardinalities in aggregate). Sequential
	// cells and buffers keep their role so the netlist stays legal.
	arityGroups := map[int][]cellib.Class{}
	for _, c := range []cellib.Class{
		cellib.Nand2, cellib.Nor2, cellib.Xor2,
		cellib.Nand3, cellib.Aoi21, cellib.Oai21, cellib.Mux2,
	} {
		arityGroups[c.NumInputs()] = append(arityGroups[c.NumInputs()], c)
	}
	remap := map[cellib.Class]cellib.Class{}
	arities := make([]int, 0, len(arityGroups))
	for a := range arityGroups {
		arities = append(arities, a)
	}
	sort.Ints(arities) // deterministic permutation order per seed
	for _, a := range arities {
		group := arityGroups[a]
		perm := rng.Perm(len(group))
		for i, c := range group {
			remap[c] = group[perm[i]]
		}
	}
	for i := range out.Insts {
		cell := out.Insts[i].Cell
		to, ok := remap[cell.Class]
		if !ok {
			continue
		}
		// Keep the drive strength; swap the function.
		for _, v := range out.Lib.Variants(to) {
			if v.Drive == cell.Drive {
				out.Insts[i].Cell = v
				break
			}
		}
	}

	// Placement jitter: blur exact coordinates (floorplan detail is
	// IP) while keeping locality statistics roughly intact.
	w, h := netlist.DieSize(out, 0.6)
	blur := (w + h) / 2 * 0.02
	for i := range out.Insts {
		out.Insts[i].X += (rng.Float64() - 0.5) * blur
		out.Insts[i].Y += (rng.Float64() - 0.5) * blur
		if out.Insts[i].X < 0 {
			out.Insts[i].X = 0
		}
		if out.Insts[i].Y < 0 {
			out.Insts[i].Y = 0
		}
	}
	out.InvalidatePlacement()
	return out
}

// LeakCheck reports original identifiers that survive in the anonymized
// design (empty = clean). The design name, instance names and net names
// are checked.
func LeakCheck(orig, anon *netlist.Netlist) []string {
	var leaks []string
	if anon.Name == orig.Name && orig.Name != "" {
		leaks = append(leaks, "design:"+orig.Name)
	}
	origInst := make(map[string]bool, len(orig.Insts))
	for i := range orig.Insts {
		origInst[orig.Insts[i].Name] = true
	}
	for i := range anon.Insts {
		if origInst[anon.Insts[i].Name] {
			leaks = append(leaks, "inst:"+anon.Insts[i].Name)
		}
	}
	origNet := make(map[string]bool, len(orig.Nets))
	for i := range orig.Nets {
		origNet[orig.Nets[i].Name] = true
	}
	for i := range anon.Nets {
		if origNet[anon.Nets[i].Name] {
			leaks = append(leaks, "net:"+anon.Nets[i].Name)
		}
	}
	return leaks
}

// StatsDrift quantifies how far anonymization moved the structural
// statistics (relative differences; all ~0 for NameScrub, small for
// Obfuscate).
type StatsDrift struct {
	Cells     float64
	Nets      float64
	Pins      float64
	AvgFanout float64
	MaxLevel  float64
	Area      float64
}

// Drift compares two designs' structural statistics.
func Drift(orig, anon *netlist.Netlist) StatsDrift {
	a, b := orig.ComputeStats(), anon.ComputeStats()
	rel := func(x, y float64) float64 {
		if x == 0 {
			return 0
		}
		d := (y - x) / x
		if d < 0 {
			return -d
		}
		return d
	}
	return StatsDrift{
		Cells:     rel(float64(a.Cells), float64(b.Cells)),
		Nets:      rel(float64(a.Nets), float64(b.Nets)),
		Pins:      rel(float64(a.Pins), float64(b.Pins)),
		AvgFanout: rel(a.AvgFanout, b.AvgFanout),
		MaxLevel:  rel(float64(a.MaxLevel), float64(b.MaxLevel)),
		Area:      rel(a.TotalArea, b.TotalArea),
	}
}

// Proxy generates a fully synthetic design matched to a target's
// structural statistics: same register and combinational cell counts,
// same logic depth, and locality tuned so the net-span statistic
// matches. The result shares no netlist content with the original.
func Proxy(target netlist.Stats, lib *cellib.Library, seed int64) (*netlist.Netlist, netlist.Spec) {
	spec := netlist.Spec{
		Name:          fmt.Sprintf("proxy-%d", seed),
		Seed:          seed,
		NumComb:       target.Cells - target.Registers,
		NumFFs:        target.Registers,
		Levels:        max(1, target.MaxLevel),
		NumPIs:        max(4, target.Registers/5),
		Locality:      0.6,
		ClockPeriodPs: 1500,
	}
	// Tune locality by bisection against the span statistic.
	lo, hi := 0.05, 0.99
	for iter := 0; iter < 8; iter++ {
		spec.Locality = (lo + hi) / 2
		got := netlist.Generate(lib, spec).ComputeStats().AvgNetSpan
		// Higher locality -> smaller span.
		if got > target.AvgNetSpan {
			lo = spec.Locality
		} else {
			hi = spec.Locality
		}
	}
	return netlist.Generate(lib, spec), spec
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
