package predict

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/logfile"
	"repro/internal/netlist"
)

func testCampaign(t testing.TB) []Sample {
	t.Helper()
	lib := cellib.Default14nm()
	var designs []*netlist.Netlist
	for i := int64(0); i < 3; i++ {
		designs = append(designs, netlist.Generate(lib, netlist.Tiny(i)))
	}
	variants := []flow.Options{
		{TargetFreqGHz: 0.3, Seed: 1},
		{TargetFreqGHz: 0.8, Seed: 2},
		{TargetFreqGHz: 2.0, Seed: 3},
	}
	return Campaign(designs, variants, 3)
}

func TestCampaignSize(t *testing.T) {
	samples := testCampaign(t)
	if len(samples) != 3*3*3 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, s := range samples {
		if s.Result == nil || s.Stats.Cells == 0 {
			t.Fatal("incomplete sample")
		}
	}
}

func TestEvaluateRopes(t *testing.T) {
	samples := testCampaign(t)
	evals, err := Evaluate(StandardRopes(), samples, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(StandardRopes()) {
		t.Fatalf("%d evals", len(evals))
	}
	for _, e := range evals {
		if e.N != len(samples) {
			t.Errorf("%s: N=%d", e.Rope, e.N)
		}
		if e.TestMAE < 0 || e.TrainMAE < 0 {
			t.Errorf("%s: negative MAE", e.Rope)
		}
	}
	// The shortest ropes should be decently predictable on this
	// homogeneous campaign.
	for _, e := range evals {
		if e.Rope == "netlist->synth-area" && e.TestR2 < 0.5 {
			t.Errorf("short rope R2 = %v; expected strong fit", e.TestR2)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(StandardRopes(), nil, 0.25, 1); err == nil {
		t.Error("empty campaign should error")
	}
}

func corpusSeries(t testing.TB, seed int64) [][]int {
	t.Helper()
	runs := logfile.Generate(logfile.CorpusSpec{Name: "artificial", Runs: 120, Seed: seed, Designs: 2})
	var out [][]int
	for _, r := range runs {
		out = append(out, r.DRVs)
	}
	return out
}

func TestPrefixModelImprovesWithK(t *testing.T) {
	train := corpusSeries(t, 1)
	test := corpusSeries(t, 2)
	accs := map[int]float64{}
	for _, k := range []int{2, 6, 12} {
		m, err := FitPrefix(train, k)
		if err != nil {
			t.Fatal(err)
		}
		acc, n := m.EvaluatePrefix(test)
		if n == 0 {
			t.Fatal("no test series")
		}
		accs[k] = acc
	}
	if accs[12] < accs[2]-0.02 {
		t.Errorf("longer prefix should not be clearly worse: k=2 %.3f vs k=12 %.3f", accs[2], accs[12])
	}
	if accs[12] < 0.7 {
		t.Errorf("12-iteration prefix accuracy %.3f too low", accs[12])
	}
}

func TestPrefixModelErrors(t *testing.T) {
	if _, err := FitPrefix(nil, 3); err == nil {
		t.Error("empty training should error")
	}
	if _, err := FitPrefix([][]int{{1}, {2}}, 3); err == nil {
		t.Error("too-short series should error")
	}
}

func TestPrefixFeaturesBounded(t *testing.T) {
	f := prefixFeatures([]int{1000, 500, 250}, 10) // k beyond series
	if len(f) != 5 {
		t.Fatalf("feature size %d", len(f))
	}
	if f[4] != 2 { // clamped k
		t.Errorf("clamped k = %v", f[4])
	}
}

func TestToleranceHint(t *testing.T) {
	// MAE of 3 on a quantity of scale 100 -> 3% tolerance.
	if got := ToleranceHint(Eval{TestMAE: 3}, 100); got != 3 {
		t.Errorf("ToleranceHint = %g, want 3", got)
	}
	// Clamped below: a near-perfect model must not demand sub-noise
	// scalar agreement.
	if got := ToleranceHint(Eval{TestMAE: 0.001}, 1000); got != 0.5 {
		t.Errorf("lower clamp: got %g, want 0.5", got)
	}
	// Clamped above: a terrible model caps out instead of accepting
	// anything.
	if got := ToleranceHint(Eval{TestMAE: 900}, 100); got != 25 {
		t.Errorf("upper clamp: got %g, want 25", got)
	}
	// Degenerate inputs fall back to the strict floor.
	if got := ToleranceHint(Eval{TestMAE: 0}, 100); got != 0.5 {
		t.Errorf("zero MAE: got %g, want 0.5", got)
	}
	if got := ToleranceHint(Eval{TestMAE: 5}, 0); got != 0.5 {
		t.Errorf("zero scale: got %g, want 0.5", got)
	}
	// Sign of the scale is irrelevant (WNS is negative).
	if ToleranceHint(Eval{TestMAE: 3}, -100) != ToleranceHint(Eval{TestMAE: 3}, 100) {
		t.Error("negative scale treated differently")
	}
}
