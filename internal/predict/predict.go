// Package predict implements predictive modeling of tools and designs
// across increasing flow spans — the paper's Sec. 3.3 "longer ropes":
// "we must predict what will happen at the end of a longer and longer
// 'rope' of design steps when the rope is wiggled."
//
// Each Rope maps features observable at an early flow step to an
// outcome measured at a later step (netlist→synthesis, placement→global
// routing, congestion→final DRVs, and the full netlist→signoff-WNS rope
// of the paper's ref [7]). Evaluating all ropes on the same campaign
// quantifies how prediction quality degrades with span.
package predict

import (
	"context"
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/ml"
	"repro/internal/netlist"
)

// Sample is one flow run paired with its design's structural stats.
type Sample struct {
	Stats  netlist.Stats
	Result *flow.Result
}

// Rope is a prediction span. Features must only read information
// available at (or before) the rope's start step.
type Rope struct {
	Name     string
	Span     int // number of flow steps the prediction crosses
	Features func(s Sample) []float64
	Target   func(s Sample) float64
}

// designFeatures are the pre-flow structural attributes (ML application
// (i) of Sec. 3.3).
func designFeatures(s Sample) []float64 {
	return []float64{
		float64(s.Stats.Cells),
		float64(s.Stats.Registers),
		s.Stats.AvgFanout,
		float64(s.Stats.MaxFanout),
		float64(s.Stats.MaxLevel),
		s.Stats.AvgNetSpan,
		s.Stats.TotalArea,
		s.Result.Options.TargetFreqGHz,
	}
}

// StandardRopes returns the rope progression, shortest to longest.
func StandardRopes() []Rope {
	return []Rope{
		{
			Name: "netlist->synth-area",
			Span: 1,
			Features: func(s Sample) []float64 {
				return designFeatures(s)
			},
			Target: func(s Sample) float64 { return s.Result.Synth.AreaUm2 },
		},
		{
			Name: "synth->place-hpwl",
			Span: 1,
			Features: func(s Sample) []float64 {
				return []float64{
					s.Result.Synth.AreaUm2,
					float64(s.Result.Netlist.NumCells()),
					s.Result.Synth.WNSPs,
					float64(s.Result.Synth.BuffersAdded),
				}
			},
			Target: func(s Sample) float64 { return s.Result.Place.HPWLUm },
		},
		{
			Name: "place->groute-overflow",
			Span: 1,
			Features: func(s Sample) []float64 {
				return []float64{
					s.Result.Place.HPWLUm,
					s.Result.Place.Width,
					float64(s.Result.Netlist.NumCells()),
				}
			},
			Target: func(s Sample) float64 { return s.Result.Global.OverflowTotal },
		},
		{
			Name: "groute->droute-drvs",
			Span: 1,
			Features: func(s Sample) []float64 {
				return []float64{
					s.Result.Global.OverflowTotal,
					s.Result.Global.OverflowPeak,
					s.Result.Global.HotspotFrac,
					s.Result.Global.CongestionMargin(),
					s.Result.Global.WirelengthUm,
				}
			},
			Target: func(s Sample) float64 { return logDRV(s.Result.Route.Final) },
		},
		{
			Name: "synth->droute-drvs",
			Span: 3,
			Features: func(s Sample) []float64 {
				return []float64{
					s.Result.Synth.AreaUm2,
					float64(s.Result.Netlist.NumCells()),
					s.Result.Options.TargetFreqGHz,
					s.Stats.AvgNetSpan,
				}
			},
			Target: func(s Sample) float64 { return logDRV(s.Result.Route.Final) },
		},
		{
			Name: "netlist->signoff-wns",
			Span: 5,
			Features: func(s Sample) []float64 {
				return designFeatures(s)
			},
			Target: func(s Sample) float64 { return s.Result.WNSPs },
		},
	}
}

func logDRV(d int) float64 { return math.Log10(float64(d) + 1) }

// CampaignConfig tunes campaign execution. The zero value runs one
// worker per CPU with no memoization.
type CampaignConfig struct {
	Workers int
	Cache   *campaign.Cache
}

// Campaign runs the flow across designs, option variants and seeds and
// returns the samples for rope evaluation.
func Campaign(designs []*netlist.Netlist, variants []flow.Options, seedsPer int) []Sample {
	return CampaignWith(designs, variants, seedsPer, CampaignConfig{})
}

// CampaignWith is Campaign with execution knobs: the (design x variant x
// seed) grid fans out over the campaign engine. Per-sample seeds are a
// pure function of grid position — the serial loop's formula — so the
// samples are bit-identical at any worker count.
func CampaignWith(designs []*netlist.Netlist, variants []flow.Options, seedsPer int, cfg CampaignConfig) []Sample {
	eng := campaign.New(campaign.Config{Workers: campaign.Workers(cfg.Workers), Cache: cfg.Cache})
	var pts []campaign.Point
	var stats []netlist.Stats // parallel to pts
	for _, d := range designs {
		key := ""
		if cfg.Cache != nil {
			key = campaign.KeyFor(d)
		}
		st := d.ComputeStats()
		for vi, v := range variants {
			for s := 0; s < seedsPer; s++ {
				opts := v
				opts.Seed = v.Seed + int64(vi*1000+s)
				pts = append(pts, campaign.Point{Design: d, DesignKey: key, Options: opts})
				stats = append(stats, st)
			}
		}
	}
	results, _ := eng.Run(context.Background(), pts) //nolint:errcheck // background ctx never cancels
	out := make([]Sample, len(pts))
	for i, r := range results {
		out[i] = Sample{Stats: stats[i], Result: r}
	}
	return out
}

// Eval is the quality of one rope's model on held-out samples.
type Eval struct {
	Rope     string
	Span     int
	N        int
	TestR2   float64
	TestMAE  float64
	TrainMAE float64
}

// Evaluate fits a ridge model per rope on a train split and scores it on
// the held-out split.
func Evaluate(ropes []Rope, samples []Sample, testFrac float64, seed int64) ([]Eval, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("predict: only %d samples", len(samples))
	}
	var out []Eval
	for _, rope := range ropes {
		var x [][]float64
		var y []float64
		for _, s := range samples {
			x = append(x, rope.Features(s))
			y = append(y, rope.Target(s))
		}
		xtr, ytr, xte, yte := ml.Split(x, y, testFrac, seed)
		if len(xte) == 0 || len(xtr) == 0 {
			return nil, fmt.Errorf("predict: degenerate split for %s", rope.Name)
		}
		scaler := ml.FitScaler(xtr)
		reg, err := ml.FitRidge(scaler.Transform(xtr), ytr, 1.0)
		if err != nil {
			return nil, fmt.Errorf("predict: %s: %w", rope.Name, err)
		}
		predTr := reg.PredictAll(scaler.Transform(xtr))
		predTe := reg.PredictAll(scaler.Transform(xte))
		out = append(out, Eval{
			Rope:     rope.Name,
			Span:     rope.Span,
			N:        len(samples),
			TestR2:   ml.R2(predTe, yte),
			TestMAE:  ml.MAE(predTe, yte),
			TrainMAE: ml.MAE(predTr, ytr),
		})
	}
	return out, nil
}

// PrefixModel predicts a router run's final (log) DRV count from the
// first k iterations of its series — the regression counterpart of the
// MDP doomed-run card, with quality improving as the observed prefix
// grows.
type PrefixModel struct {
	K      int
	reg    *ml.Ridge
	scaler *ml.Scaler
}

// prefixFeatures summarizes the first k+1 points of a DRV series.
func prefixFeatures(drvs []int, k int) []float64 {
	if k >= len(drvs) {
		k = len(drvs) - 1
	}
	first := logDRV(drvs[0])
	cur := logDRV(drvs[k])
	slope := 0.0
	if k > 0 {
		slope = (cur - first) / float64(k)
	}
	recent := 0.0
	if k > 0 {
		recent = cur - logDRV(drvs[k-1])
	}
	return []float64{first, cur, slope, recent, float64(k)}
}

// FitPrefix trains a prefix model from series with known finals.
func FitPrefix(series [][]int, k int) (*PrefixModel, error) {
	var x [][]float64
	var y []float64
	for _, s := range series {
		if len(s) < 2 {
			continue
		}
		x = append(x, prefixFeatures(s, k))
		y = append(y, logDRV(s[len(s)-1]))
	}
	if len(x) < 4 {
		return nil, fmt.Errorf("predict: %d usable series", len(x))
	}
	scaler := ml.FitScaler(x)
	reg, err := ml.FitRidge(scaler.Transform(x), y, 0.5)
	if err != nil {
		return nil, err
	}
	return &PrefixModel{K: k, reg: reg, scaler: scaler}, nil
}

// PredictFinal returns the predicted final log10(DRVs+1).
func (m *PrefixModel) PredictFinal(series []int) float64 {
	return m.reg.Predict(m.scaler.Transform([][]float64{prefixFeatures(series, m.K)})[0])
}

// EvaluatePrefix scores the model's doomed/success classification on
// held-out series (threshold: 200 DRVs).
func (m *PrefixModel) EvaluatePrefix(series [][]int) (accuracy float64, n int) {
	threshold := logDRV(200)
	correct := 0
	for _, s := range series {
		if len(s) < 2 {
			continue
		}
		n++
		predDoomed := m.PredictFinal(s) >= threshold
		actualDoomed := logDRV(s[len(s)-1]) >= threshold
		if predDoomed == actualDoomed {
			correct++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(correct) / float64(n), n
}

// ToleranceHint converts a rope's held-out accuracy into a speculation
// commit tolerance (flow.SpecConfig.TolerancePct): the model's test MAE
// expressed as a percentage of the predicted quantity's typical scale.
// A predictor that misses by 2% of the metric's magnitude has no
// business committing speculation judged at 1% — setting the tolerance
// from measured accuracy keeps the near-hit histograms honest instead
// of hand-tuned. The hint is clamped to [0.5, 25]: below that a
// fingerprint-exact prediction would be rejected on scalar noise, above
// it the tolerance stops being a prediction-quality signal at all.
func ToleranceHint(e Eval, scale float64) float64 {
	if scale < 0 {
		scale = -scale
	}
	if scale == 0 || e.TestMAE <= 0 {
		return 0.5
	}
	tol := 100 * e.TestMAE / scale
	if tol < 0.5 {
		tol = 0.5
	}
	if tol > 25 {
		tol = 25
	}
	return tol
}
