package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

// diffTol is the equivalence bound from the acceptance criteria: the
// incremental engine must track the full Analyze oracle within 1e-9 ps
// on WNS, TNS and every endpoint slack. With Epsilon=0 the match is
// expected to be bit-exact except for the Kahan-compensated TNS.
const diffTol = 1e-9

// tightened generates a preset netlist and pulls the clock period in to
// ~97% of the achievable period so a realistic fraction of endpoints
// violate (exercising the TNS/violations bookkeeping, not just WNS).
func tightened(tb testing.TB, spec netlist.Spec, cfg Config) *netlist.Netlist {
	tb.Helper()
	n := netlist.Generate(cellib.Default14nm(), spec)
	rep := Analyze(n, cfg)
	if rep.MaxFreqGHz > 0 {
		n.ClockPeriodPs = (1000 / rep.MaxFreqGHz) * 0.97
	}
	return n
}

func requireMatch(t *testing.T, tag string, step int, n *netlist.Netlist, cfg Config, inc *Incremental) {
	t.Helper()
	full := Analyze(n, cfg)
	if d := math.Abs(full.WNSPs - inc.WNSPs()); d > diffTol {
		t.Fatalf("%s step %d: WNS diverged: full=%.12f inc=%.12f (|d|=%g)", tag, step, full.WNSPs, inc.WNSPs(), d)
	}
	if d := math.Abs(full.TNSPs - inc.TNSPs()); d > diffTol {
		t.Fatalf("%s step %d: TNS diverged: full=%.12f inc=%.12f (|d|=%g)", tag, step, full.TNSPs, inc.TNSPs(), d)
	}
	if full.Violations != inc.Violations() {
		t.Fatalf("%s step %d: violations diverged: full=%d inc=%d", tag, step, full.Violations, inc.Violations())
	}
	eps := inc.Endpoints()
	if len(full.Endpoints) != len(eps) {
		t.Fatalf("%s step %d: endpoint count diverged: full=%d inc=%d", tag, step, len(full.Endpoints), len(eps))
	}
	for i := range eps {
		f, g := full.Endpoints[i], eps[i]
		if f.Inst != g.Inst || f.Net != g.Net {
			t.Fatalf("%s step %d: endpoint %d identity diverged: full=(%d,%d) inc=(%d,%d)",
				tag, step, i, f.Inst, f.Net, g.Inst, g.Net)
		}
		if math.Abs(f.SlackPs-g.SlackPs) > diffTol || math.Abs(f.Arrival-g.Arrival) > diffTol ||
			math.Abs(f.SlewPs-g.SlewPs) > diffTol || math.Abs(f.WirePs-g.WirePs) > diffTol ||
			f.Depth != g.Depth {
			t.Fatalf("%s step %d: endpoint %d (inst %d) diverged:\n full %+v\n inc  %+v", tag, step, i, f.Inst, f, g)
		}
	}
}

// mutator applies one randomized netlist/timing mutation, keeping the
// oracle Config's derate slice in sync with the engine.
type mutator struct {
	n       *netlist.Netlist
	inc     *Incremental
	rng     *rand.Rand
	derates []float64
}

func (m *mutator) resize(id int) bool {
	cell := m.n.Insts[id].Cell
	var next cellib.Cell
	var ok bool
	if m.rng.Intn(2) == 0 {
		next, ok = m.n.Lib.Upsize(cell)
		if !ok {
			next, ok = m.n.Lib.Downsize(cell)
		}
	} else {
		next, ok = m.n.Lib.Downsize(cell)
		if !ok {
			next, ok = m.n.Lib.Upsize(cell)
		}
	}
	if !ok {
		return false
	}
	m.n.Insts[id].Cell = next
	m.inc.Resize(id)
	return true
}

func (m *mutator) step() {
	switch r := m.rng.Float64(); {
	case r < 0.55:
		m.resize(m.rng.Intn(len(m.n.Insts)))
	case r < 0.70:
		id := m.rng.Intn(len(m.n.Insts))
		m.n.Insts[id].X += (m.rng.Float64() - 0.5) * 8
		m.n.Insts[id].Y += (m.rng.Float64() - 0.5) * 8
		m.inc.MoveInst(id)
	case r < 0.80:
		id := m.rng.Intn(len(m.n.Insts))
		v := 0.9 + 0.3*m.rng.Float64()
		m.derates[id] = v
		m.inc.SetDerate(id, v)
	default:
		// Speculative probe: a burst of resizes under a checkpoint,
		// then roll everything back (engine state via Rollback, the
		// netlist by the caller, mirroring Recover's reject path).
		type undo struct {
			id   int
			cell cellib.Cell
		}
		var undos []undo
		m.inc.Checkpoint()
		for k := 1 + m.rng.Intn(3); k > 0; k-- {
			id := m.rng.Intn(len(m.n.Insts))
			prev := m.n.Insts[id].Cell
			if m.resize(id) {
				undos = append(undos, undo{id, prev})
			}
		}
		_ = m.inc.WNSPs() // query mid-speculation, as Recover does
		for i := len(undos) - 1; i >= 0; i-- {
			m.n.Insts[undos[i].id].Cell = undos[i].cell
		}
		m.inc.Rollback()
	}
}

// diffConfigs spans both engines, SI, path-based recovery, global
// derates and a non-typical corner — the dimensions the endpoint math
// branches on.
func diffConfigs() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"fast", Config{Engine: Fast}},
		{"signoff_si", Config{Engine: Signoff, SI: true}},
		{"signoff_pba_derate", Config{Engine: Signoff, PathBased: true, DeratePct: 8}},
		{"signoff_si_pba_ss", Config{Engine: Signoff, SI: true, PathBased: true, Corner: CornerSS}},
	}
}

// TestIncrementalDifferential interleaves resizes, moves, derate
// changes and speculative rollbacks, checking the incremental engine
// against a fresh full Analyze after every step. Step counts across
// the preset/config grid total >= 1000.
func TestIncrementalDifferential(t *testing.T) {
	presets := []struct {
		name  string
		spec  netlist.Spec
		steps int
		fast  bool // run only the two cheap configs (larger design)
	}{
		{"tiny", netlist.Tiny(11), 120, false},
		{"artificial", netlist.Artificial(12), 80, false},
		{"pulpino", netlist.PulpinoProxy(13), 120, true},
	}
	total := 0
	for _, p := range presets {
		for ci, c := range diffConfigs() {
			if p.fast && ci >= 2 {
				continue
			}
			tag := p.name + "/" + c.name
			t.Run(tag, func(t *testing.T) {
				cfg := c.cfg
				n := tightened(t, p.spec, cfg)
				derates := make([]float64, len(n.Insts))
				cfg.InstDerate = derates
				m := &mutator{
					n:       n,
					inc:     NewIncremental(n, cfg),
					rng:     rand.New(rand.NewSource(int64(len(tag)) * 1009)),
					derates: derates,
				}
				for s := 0; s < p.steps; s++ {
					m.step()
					requireMatch(t, tag, s, n, cfg, m.inc)
				}
				// The critical path must also agree at the end.
				full := Analyze(n, cfg)
				rep := m.inc.Report()
				if len(full.CriticalPath) != len(rep.CriticalPath) {
					t.Fatalf("%s: critical path length diverged: full=%v inc=%v", tag, full.CriticalPath, rep.CriticalPath)
				}
				for i := range full.CriticalPath {
					if full.CriticalPath[i] != rep.CriticalPath[i] {
						t.Fatalf("%s: critical path diverged: full=%v inc=%v", tag, full.CriticalPath, rep.CriticalPath)
					}
				}
			})
			total += p.steps
			if p.fast && ci >= 1 {
				break
			}
		}
	}
	if total < 1000 {
		t.Fatalf("differential grid covers only %d steps, want >= 1000", total)
	}
}

// TestCheckpointRollbackRestoresExactly verifies Rollback restores the
// engine bit-for-bit: every endpoint struct, TNS, violations and WNS
// must equal their pre-checkpoint values after a burst of speculative
// mutations is rolled back.
func TestCheckpointRollbackRestoresExactly(t *testing.T) {
	cfg := Config{Engine: Signoff, SI: true}
	n := tightened(t, netlist.Artificial(21), cfg)
	inc := NewIncremental(n, cfg)
	rng := rand.New(rand.NewSource(21))

	before := append([]Endpoint(nil), inc.Endpoints()...)
	wns, tns, viol := inc.WNSPs(), inc.TNSPs(), inc.Violations()

	inc.Checkpoint()
	var cells []cellib.Cell
	var ids []int
	for k := 0; k < 25; k++ {
		id := rng.Intn(len(n.Insts))
		if up, ok := n.Lib.Upsize(n.Insts[id].Cell); ok {
			cells = append(cells, n.Insts[id].Cell)
			ids = append(ids, id)
			n.Insts[id].Cell = up
			inc.Resize(id)
		}
		n.Insts[id].X += 3
		inc.MoveInst(id)
		ids = append(ids, ^id) // marker for the move
		inc.SetDerate(id, 1.1)
	}
	ci := len(cells)
	for i := len(ids) - 1; i >= 0; i-- {
		if ids[i] < 0 {
			n.Insts[^ids[i]].X -= 3
		} else {
			ci--
			n.Insts[ids[i]].Cell = cells[ci]
		}
	}
	inc.Rollback()

	if inc.WNSPs() != wns || inc.TNSPs() != tns || inc.Violations() != viol {
		t.Fatalf("rollback did not restore scalars: wns %v->%v tns %v->%v viol %d->%d",
			wns, inc.WNSPs(), tns, inc.TNSPs(), viol, inc.Violations())
	}
	after := inc.Endpoints()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rollback did not restore endpoint %d: %+v -> %+v", i, before[i], after[i])
		}
	}
	// And the rolled-back engine must still track the oracle.
	requireMatch(t, "rollback", 0, n, cfg, inc)
}

func TestNestedCheckpointPanics(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(3))
	inc := NewIncremental(n, Config{Engine: Fast})
	inc.Checkpoint()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Checkpoint did not panic")
		}
	}()
	inc.Checkpoint()
}

// TestCloneIndependent checks a Clone tracks its own netlist and is not
// aliased to the original's state (the Annealer relies on this for
// gwtw population cloning).
func TestCloneIndependent(t *testing.T) {
	cfg := Config{Engine: Fast}
	n := tightened(t, netlist.Tiny(31), cfg)
	inc := NewIncremental(n, cfg)

	n2 := n.Clone()
	inc2 := inc.Clone(n2)

	rng := rand.New(rand.NewSource(31))
	for k := 0; k < 40; k++ {
		id := rng.Intn(len(n.Insts))
		if up, ok := n.Lib.Upsize(n.Insts[id].Cell); ok {
			n.Insts[id].Cell = up
			inc.Resize(id)
		}
	}
	requireMatch(t, "clone-orig", 0, n, cfg, inc)
	requireMatch(t, "clone-copy", 0, n2, cfg, inc2)

	if down, ok := n2.Lib.Downsize(n2.Insts[0].Cell); ok {
		n2.Insts[0].Cell = down
		inc2.Resize(0)
	}
	requireMatch(t, "clone-copy-mut", 0, n2, cfg, inc2)
}

// TestEpsilonCutoffPrunesWork checks that a small positive Epsilon
// never propagates more than the exact engine and stays within a loose
// WNS bound of the oracle.
func TestEpsilonCutoffPrunesWork(t *testing.T) {
	cfg := Config{Engine: Signoff, SI: true}
	nExact := tightened(t, netlist.PulpinoProxy(41), cfg)
	nEps := nExact.Clone()
	exact := NewIncremental(nExact, cfg)
	approx := NewIncremental(nEps, cfg)
	approx.Epsilon = 0.01 // ps

	rng := rand.New(rand.NewSource(41))
	exBase, apBase := exact.Propagated(), approx.Propagated()
	for k := 0; k < 60; k++ {
		id := rng.Intn(len(nExact.Insts))
		up, ok := nExact.Lib.Upsize(nExact.Insts[id].Cell)
		if !ok {
			continue
		}
		nExact.Insts[id].Cell = up
		exact.Resize(id)
		nEps.Insts[id].Cell = up
		approx.Resize(id)
	}
	exWork := exact.Propagated() - exBase
	apWork := approx.Propagated() - apBase
	if apWork > exWork {
		t.Fatalf("epsilon cutoff propagated more than exact engine: %d > %d", apWork, exWork)
	}
	full := Analyze(nExact, cfg)
	if d := math.Abs(full.WNSPs - approx.WNSPs()); d > 1.0 {
		t.Fatalf("epsilon engine drifted too far from oracle: |d|=%g ps", d)
	}
}

// BenchmarkIncrementalResize measures a single toggle-resize + WNS
// query at pulpino-proxy scale — the inner-loop unit of sizing.Recover.
func BenchmarkIncrementalResize(b *testing.B) {
	cfg := Config{Engine: Signoff, SI: true}
	n := tightened(b, netlist.PulpinoProxy(5), cfg)
	inc := NewIncremental(n, cfg)
	rng := rand.New(rand.NewSource(5))
	ids := make([]int, 256)
	for i := range ids {
		ids[i] = rng.Intn(len(n.Insts))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		cell := n.Insts[id].Cell
		next, ok := n.Lib.Upsize(cell)
		if !ok {
			next, ok = n.Lib.Downsize(cell)
		}
		if !ok {
			continue
		}
		n.Insts[id].Cell = next
		inc.Resize(id)
		_ = inc.WNSPs()
		n.Insts[id].Cell = cell
		inc.Resize(id)
	}
}
