// Package sta implements static timing analysis over the netlist model.
//
// Two engine fidelities are provided, mirroring the miscorrelated analysis
// pair of the paper's Sec. 3.2: a fast graph-based engine (lumped wire
// load, no slew propagation, no coupling) of the kind embedded in P&R
// tools, and a signoff engine (Elmore wire delay, slew-dependent stage
// delay, optional SI coupling, optional path-based pessimism recovery).
// Each report carries a simulated runtime cost, so the accuracy-versus-
// cost tradeoff of the paper's Fig. 8 can be measured directly.
//
// Two evaluation modes share the same per-net arithmetic: Analyze runs a
// full-graph propagation and is the oracle; Incremental holds the state
// of one full analysis and re-propagates only the cone affected by a
// change notification (see incremental.go).
package sta

import (
	"math"
	"sort"

	"repro/internal/netlist"
)

// Engine selects the analysis fidelity.
type Engine int

const (
	// Fast is the optimizer-embedded engine: lumped capacitive wire
	// load only, no slew propagation. Cheapest, least accurate.
	Fast Engine = iota
	// Signoff models Elmore wire delay and slew-dependent stage delay.
	Signoff
)

func (e Engine) String() string {
	if e == Fast {
		return "fast"
	}
	return "signoff"
}

// Config parameterizes an analysis run.
type Config struct {
	Engine    Engine
	PathBased bool // recover graph-based slew pessimism on critical paths
	SI        bool // include coupling (signal-integrity) delay push-out

	// ClockSkew holds per-instance clock arrival offsets in ps (from
	// CTS); nil means ideal clocks. Indexed by instance ID.
	ClockSkew []float64
	// InputDelayPs is the arrival time budget consumed outside the
	// block for primary inputs.
	InputDelayPs float64
	// DeratePct adds a uniform derate (guardband) to every stage delay,
	// in percent. This is the "margin" lever of the paper's Fig. 4.
	DeratePct float64
	// InstDerate holds per-instance delay multipliers (e.g. from the
	// IR-drop map of internal/power, closing the paper's multiphysics
	// loop); nil means 1.0 everywhere. Indexed by instance ID.
	InstDerate []float64
	// Corner selects the PVT analysis corner (zero value = typical).
	Corner Corner
}

// instDerate returns the per-instance multiplier (1.0 when unset).
func (c Config) instDerate(inst int) float64 {
	if c.InstDerate == nil || inst >= len(c.InstDerate) || c.InstDerate[inst] <= 0 {
		return 1
	}
	return c.InstDerate[inst]
}

// skew returns the clock arrival offset of an instance (0 when unset).
func (c Config) skew(inst int) float64 {
	if c.ClockSkew == nil || inst >= len(c.ClockSkew) {
		return 0
	}
	return c.ClockSkew[inst]
}

// pbaApplies reports whether path-based recovery is in effect.
func (c Config) pbaApplies() bool { return c.PathBased && c.Engine == Signoff }

// Endpoint is a timing path endpoint (a flip-flop D pin or a net with an
// external load) with its slack and path features. The feature fields
// feed the ML correlation models of internal/correlate.
type Endpoint struct {
	Inst     int     // endpoint instance (-1 for a primary-output net)
	Net      int     // net feeding the endpoint
	SlackPs  float64 // setup slack
	Arrival  float64 // data arrival time, ps
	Depth    int     // logic depth of the worst path
	WirePs   float64 // wire-delay component along the worst path
	SlewPs   float64 // arriving transition time
	FanoutLd float64 // load on the endpoint net, fF
}

// Report is the result of one analysis run.
type Report struct {
	Engine    Engine
	PathBased bool
	SI        bool

	WNSPs      float64 // worst negative slack (ps; positive = met)
	TNSPs      float64 // total negative slack (ps, <= 0)
	Endpoints  []Endpoint
	Violations int // endpoints with negative slack

	// MaxFreqGHz is the highest clock frequency (GHz) at which WNS
	// would be zero, given the analyzed arrival times.
	MaxFreqGHz float64

	// CostUnits is the simulated analysis runtime cost (arbitrary
	// units, ~proportional to a real engine's CPU time).
	CostUnits float64

	// CriticalPath lists instance IDs on the worst path, launch to
	// capture.
	CriticalPath []int

	// sorted caches the ascending-slack view served by WorstEndpoints,
	// built once per report instead of copy+sort on every call.
	sorted []Endpoint
}

// WorstEndpoints returns the k endpoints with smallest slack, ascending.
// The returned slice is a view into a per-report cache shared by all
// calls; callers must not modify it.
func (r *Report) WorstEndpoints(k int) []Endpoint {
	if r.sorted == nil {
		r.sorted = append([]Endpoint(nil), r.Endpoints...)
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].SlackPs < r.sorted[j].SlackPs })
	}
	if k > len(r.sorted) {
		k = len(r.sorted)
	}
	return r.sorted[:k]
}

// arrivalState tracks per-net timing during propagation.
type arrivalState struct {
	arrival float64 // worst arrival at net (driver output + wire), ps
	slew    float64 // worst slew at net, ps
	depth   int     // stages on worst path
	wire    float64 // accumulated wire delay on worst path
	from    int     // fanin net of the driver on the worst path (-1 = source)
}

// globalDerate returns the stage-delay multiplier shared by every
// instance: the uniform guardband times the corner cell factor.
func globalDerate(cfg Config) float64 {
	cellF, _, _ := cfg.Corner.factors()
	return (1 + cfg.DeratePct/100) * cellF
}

// sourceState computes the timing state of a source net — a primary
// input or a register Q output. ok is false when the net is neither (a
// combinationally driven or clock net).
func sourceState(n *netlist.Netlist, cfg Config, derate float64, netID int) (st arrivalState, ok bool) {
	net := &n.Nets[netID]
	if net.IsClock {
		return arrivalState{}, false
	}
	if net.Driver < 0 {
		return arrivalState{arrival: cfg.InputDelayPs, slew: 30, from: -1}, true
	}
	drv := &n.Insts[net.Driver]
	if !drv.Cell.Class.Sequential() {
		return arrivalState{}, false
	}
	w := wireDelay(n, netID, drv.Cell.Resist, cfg)
	return arrivalState{
		arrival: cfg.skew(net.Driver) + drv.Cell.ClkToQ*derate*cfg.instDerate(net.Driver) + w,
		slew:    drv.Cell.Slew(n.NetLoad(netID)),
		wire:    w,
		from:    -1,
	}, true
}

// combState computes the output-net state of a combinational instance
// from the current states of its fanin nets. ok is false when the
// instance is skipped by propagation (sequential, level 0, no output
// net) or no fanin has a finite arrival.
func combState(n *netlist.Netlist, cfg Config, derate float64, id int, state []arrivalState) (outNet int, st arrivalState, ok bool) {
	inst := &n.Insts[id]
	if inst.Cell.Class.Sequential() || inst.Level == 0 {
		return -1, arrivalState{}, false
	}
	outNet = n.FanoutNet[id]
	if outNet < 0 {
		return -1, arrivalState{}, false
	}
	load := n.NetLoad(outNet)
	var best arrivalState
	best.arrival = math.Inf(-1)
	for _, faninNet := range n.FaninNet[id] {
		if faninNet < 0 {
			continue
		}
		in := state[faninNet]
		if math.IsInf(in.arrival, -1) {
			continue
		}
		d := inst.Cell.Delay(load)
		if cfg.Engine == Signoff {
			// Slew-dependent stage delay: slow input edges
			// stretch the stage. The fast engine ignores
			// this, which is one miscorrelation source.
			d *= 1 + in.slew/(900/derate)
		}
		d *= derate * cfg.instDerate(id)
		a := in.arrival + d
		if a > best.arrival {
			best = arrivalState{
				arrival: a,
				slew:    inst.Cell.Slew(load),
				depth:   in.depth + 1,
				wire:    in.wire,
				from:    faninNet,
			}
		}
	}
	if math.IsInf(best.arrival, -1) {
		return -1, arrivalState{}, false
	}
	w := wireDelay(n, outNet, inst.Cell.Resist, cfg)
	best.arrival += w
	best.wire += w
	return outNet, best, true
}

// ffEndpoint builds the setup endpoint of a flip-flop D pin from the
// state of the net feeding it, including path-based recovery when the
// configuration applies it.
func ffEndpoint(n *netlist.Netlist, cfg Config, setupF float64, ff, dNet int, st arrivalState) Endpoint {
	required := n.ClockPeriodPs + cfg.skew(ff) - n.Insts[ff].Cell.SetupTime*(1+cfg.DeratePct/100)*setupF
	ep := Endpoint{
		Inst: ff, Net: dNet,
		SlackPs: required - st.arrival, Arrival: st.arrival,
		Depth: st.depth, WirePs: st.wire, SlewPs: st.slew,
		FanoutLd: n.NetLoad(dNet),
	}
	if cfg.pbaApplies() {
		ep.SlackPs += pbaRecovery(&ep)
	}
	return ep
}

// netEndpoint builds the endpoint of an externally loaded net.
func netEndpoint(n *netlist.Netlist, cfg Config, netID int, st arrivalState) Endpoint {
	ep := Endpoint{
		Inst: -1, Net: netID,
		SlackPs: n.ClockPeriodPs - st.arrival, Arrival: st.arrival,
		Depth: st.depth, WirePs: st.wire, SlewPs: st.slew,
		FanoutLd: n.NetLoad(netID),
	}
	if cfg.pbaApplies() {
		ep.SlackPs += pbaRecovery(&ep)
	}
	return ep
}

// Analyze runs static timing analysis and returns a report. The netlist's
// ClockPeriodPs is the setup constraint.
func Analyze(n *netlist.Netlist, cfg Config) *Report {
	r := &Report{Engine: cfg.Engine, PathBased: cfg.PathBased, SI: cfg.SI, WNSPs: math.Inf(1)}
	_, _, setupF := cfg.Corner.factors()
	derate := globalDerate(cfg)

	state := make([]arrivalState, len(n.Nets))
	for i := range state {
		state[i].arrival = math.Inf(-1)
		state[i].from = -1
	}

	// Source arrivals: primary inputs and register Q pins.
	for i := range n.Nets {
		if st, ok := sourceState(n, cfg, derate, i); ok {
			state[i] = st
		}
	}

	// Topological propagation through combinational logic.
	for _, id := range n.TopoOrder() {
		if outNet, st, ok := combState(n, cfg, derate, id, state); ok {
			state[outNet] = st
		}
	}

	// Endpoints: flip-flop D pins and externally loaded nets.
	var worstEnd Endpoint
	worstEnd.SlackPs = math.Inf(1)
	addEndpoint := func(ep Endpoint) {
		r.Endpoints = append(r.Endpoints, ep)
		if ep.SlackPs < r.WNSPs {
			r.WNSPs = ep.SlackPs
			worstEnd = ep
		}
		if ep.SlackPs < 0 {
			r.TNSPs += ep.SlackPs
			r.Violations++
		}
	}
	for _, ff := range n.Sequential() {
		dNet := n.FaninNet[ff][0]
		if dNet < 0 {
			continue
		}
		st := state[dNet]
		if math.IsInf(st.arrival, -1) {
			continue
		}
		addEndpoint(ffEndpoint(n, cfg, setupF, ff, dNet, st))
	}
	for i := range n.Nets {
		if n.Nets[i].ExternalCap <= 0 || n.Nets[i].IsClock {
			continue
		}
		st := state[i]
		if math.IsInf(st.arrival, -1) {
			continue
		}
		addEndpoint(netEndpoint(n, cfg, i, st))
	}

	if len(r.Endpoints) == 0 {
		r.WNSPs = n.ClockPeriodPs
	}

	// Critical path retrace.
	if worstEnd.Net >= 0 {
		r.CriticalPath = retrace(n, worstEnd.Net, state)
	}

	// Max frequency: arrival of the worst endpoint fixes the minimum
	// feasible period.
	worstArrival := n.ClockPeriodPs - r.WNSPs
	if worstArrival > 0 {
		r.MaxFreqGHz = 1000 / worstArrival
	}

	r.CostUnits = costUnits(n, cfg)
	return r
}

// pbaRecovery returns the slack recovered by path-based analysis for an
// endpoint: proportional to path depth (each merge point contributed some
// pessimism) but bounded.
func pbaRecovery(ep *Endpoint) float64 {
	rec := 1.8 * float64(ep.Depth)
	if rec > 40 {
		rec = 40
	}
	return rec
}

// wireDelay returns the wire delay (ps) of a net for the configured
// engine. Fast lumps the wire cap at the driver (RC product only);
// signoff uses Elmore and, with SI on, a coupling push-out proportional
// to wire cap (long nets suffer more aggressor coupling).
func wireDelay(n *netlist.Netlist, netID int, driverResist float64, cfg Config) float64 {
	length := n.HPWL(netID)
	w := n.Lib.Wire
	_, wireF, _ := cfg.Corner.factors()
	switch cfg.Engine {
	case Fast:
		return wireF * driverResist * w.CapPerUm * length
	default:
		d := w.Delay(length, driverResist)
		if cfg.SI {
			// Coupling: half the sidewall cap switches against us.
			d += 0.35 * w.CapPerUm * length * driverResist
		}
		return wireF * d
	}
}

// retrace walks from an endpoint net back to the launch point via the
// recorded worst-path fanin nets.
func retrace(n *netlist.Netlist, endNet int, state []arrivalState) []int {
	var path []int
	netID := endNet
	for steps := 0; steps < len(n.Insts)+2 && netID >= 0; steps++ {
		drv := n.Nets[netID].Driver
		if drv < 0 {
			break
		}
		path = append(path, drv)
		if n.Insts[drv].Cell.Class.Sequential() {
			break
		}
		netID = state[netID].from
	}
	// Reverse to launch->capture order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// costUnits models analysis runtime: signoff costs ~3x fast, SI ~+4x,
// path-based ~+6x, matching the qualitative cost ordering of Fig. 8.
func costUnits(n *netlist.Netlist, cfg Config) float64 {
	base := float64(len(n.Insts)) / 1000
	mult := 1.0
	if cfg.Engine == Signoff {
		mult = 3
		if cfg.SI {
			mult += 4
		}
		if cfg.PathBased {
			mult += 6
		}
	}
	return base * mult
}
