package sta

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func TestCornerOrdering(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(31))
	wns := map[string]float64{}
	for _, c := range Corners() {
		rep := Analyze(n, Config{Engine: Signoff, Corner: c})
		wns[c.Name] = rep.WNSPs
	}
	// Slow corners must be worse than typical; fast better.
	if !(wns["ss"] < wns["tt"] && wns["tt"] < wns["ff"]) {
		t.Errorf("corner ordering broken: %v", wns)
	}
	if wns["ss-cold"] >= wns["tt"] {
		t.Errorf("ss-cold should be slow: %v", wns)
	}
}

func TestZeroCornerIsTypical(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(32))
	base := Analyze(n, Config{Engine: Signoff})
	tt := Analyze(n, Config{Engine: Signoff, Corner: CornerTT})
	if base.WNSPs != tt.WNSPs {
		t.Errorf("zero-value corner %v != explicit TT %v", base.WNSPs, tt.WNSPs)
	}
}

func TestCornerFactorsDefault(t *testing.T) {
	c, w, s := (Corner{}).factors()
	if c != 1 || w != 1 || s != 1 {
		t.Fatalf("zero corner factors %v %v %v", c, w, s)
	}
	c2, w2, s2 := (Corner{CellFactor: 1.3}).factors()
	if c2 != 1.3 || w2 != 1 || s2 != 1 {
		t.Fatalf("partial corner factors %v %v %v", c2, w2, s2)
	}
}

func TestCornersDistinctPerEndpoint(t *testing.T) {
	// The two slow corners have different cell/wire balances, so
	// wire-heavy endpoints should reorder between them — that residual
	// structure is what the missing-corner ML model learns.
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(33))
	ss := Analyze(n, Config{Engine: Signoff, Corner: CornerSS})
	cold := Analyze(n, Config{Engine: Signoff, Corner: CornerSSCold})
	if len(ss.Endpoints) != len(cold.Endpoints) {
		t.Fatal("endpoint sets differ")
	}
	identicalRatio := true
	var firstRatio float64
	for i := range ss.Endpoints {
		if cold.Endpoints[i].Arrival == 0 {
			continue
		}
		ratio := ss.Endpoints[i].Arrival / cold.Endpoints[i].Arrival
		if firstRatio == 0 {
			firstRatio = ratio
		} else if ratio != firstRatio {
			identicalRatio = false
		}
	}
	if identicalRatio {
		t.Error("corners are a pure global scale; missing-corner prediction would be trivial")
	}
}
