package sta

// Corner is a process/voltage/temperature analysis corner: multipliers
// on cell and wire delay relative to the typical corner. Multi-corner
// signoff multiplies analysis cost; the paper's [20] near-term
// extension (2) is "prediction of timing at 'missing corners' that are
// not analyzed, based on STA reports for corners that are analyzed" —
// implemented in internal/correlate on top of this corner model.
type Corner struct {
	Name        string
	CellFactor  float64 // stage-delay multiplier (1.0 = typical)
	WireFactor  float64 // wire-delay multiplier
	SetupFactor float64 // setup/clk-to-q multiplier
}

// Standard corners. The slow corner dominates setup signoff; the fast
// corner matters for hold (not modelled) and for optimism checks.
var (
	CornerTT = Corner{Name: "tt", CellFactor: 1.00, WireFactor: 1.00, SetupFactor: 1.00}
	CornerSS = Corner{Name: "ss", CellFactor: 1.28, WireFactor: 1.12, SetupFactor: 1.15}
	CornerFF = Corner{Name: "ff", CellFactor: 0.82, WireFactor: 0.93, SetupFactor: 0.92}
	// CornerSSCold is a second slow corner (low temperature) with a
	// different cell/wire balance — the "missing corner" in the
	// prediction experiment.
	CornerSSCold = Corner{Name: "ss-cold", CellFactor: 1.22, WireFactor: 1.20, SetupFactor: 1.12}
)

// Corners lists the standard corner set.
func Corners() []Corner { return []Corner{CornerTT, CornerSS, CornerFF, CornerSSCold} }

// factors returns the corner multipliers, defaulting to typical.
func (c Corner) factors() (cell, wire, setup float64) {
	if c.CellFactor <= 0 {
		return 1, 1, 1
	}
	w := c.WireFactor
	if w <= 0 {
		w = 1
	}
	s := c.SetupFactor
	if s <= 0 {
		s = 1
	}
	return c.CellFactor, w, s
}
