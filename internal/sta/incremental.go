package sta

// Incremental timing: the "signoff timer in the optimization loop" of
// the paper's ref [24] is only affordable when a resize does not pay for
// a full-graph propagation. This engine holds the arrival/slew/depth
// state of one full analysis and, on a change notification (Resize,
// MoveNet, SetDerate), re-propagates only the affected downstream cone
// using a level-bucketed worklist with an epsilon-stable early cutoff:
// propagation stops at any net whose recomputed state is unchanged.
// Endpoint slacks, WNS/TNS and the critical path are maintained through
// a slack-indexed lazy min-heap instead of full endpoint rebuilds, and a
// Checkpoint/Rollback pair makes speculative moves (try-downsize-then-
// revert, annealing rejects) O(touched cone) instead of O(graph).
//
// With the default Epsilon of 0 the engine is exact: every query result
// is bit-identical to a fresh Analyze of the mutated netlist, because
// both paths share the same per-net arithmetic (sourceState, combState,
// the endpoint builders) and the cutoff only prunes recomputations whose
// inputs — and therefore outputs — are unchanged.

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/netlist"
)

// slackEntry is one lazy heap entry; stale entries (version mismatch)
// are discarded on pop.
type slackEntry struct {
	slack float64
	idx   int // endpoint index
	ver   int // endpoint version at push time
}

// slackHeap is a min-heap on (slack, endpoint index).
type slackHeap []slackEntry

func (h slackHeap) Len() int { return len(h) }
func (h slackHeap) Less(i, j int) bool {
	if h[i].slack != h[j].slack {
		return h[i].slack < h[j].slack
	}
	return h[i].idx < h[j].idx
}
func (h slackHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slackHeap) Push(x interface{}) { *h = append(*h, x.(slackEntry)) }
func (h *slackHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type netUndo struct {
	net int
	old arrivalState
}

type epUndo struct {
	idx int
	old Endpoint
}

// Incremental is a stateful timing engine over one netlist. It is built
// from a full propagation and kept consistent through change
// notifications; it is not safe for concurrent use.
type Incremental struct {
	n   *netlist.Netlist
	cfg Config

	// Epsilon is the stable-frontier cutoff: propagation stops at a net
	// whose recomputed arrival/slew/wire all moved by no more than this
	// (ps). 0 (the default) demands exact equality, which keeps every
	// query bit-identical to Analyze; a positive value trades a bounded
	// slack error for earlier cutoff.
	Epsilon float64

	derate float64 // global derate * corner cell factor
	setupF float64

	state []arrivalState // per-net

	// Endpoints in the same order Analyze reports them (registers in
	// Sequential() order, then externally loaded nets ascending).
	endpoints []Endpoint
	epOfInst  []int // FF instance -> endpoint index, -1
	epOfNet   []int // net -> endpoint index (external-load endpoints), -1

	// tns is delta-maintained with Kahan compensation (tnsComp), keeping
	// the accumulated rounding error under the differential tolerance
	// even across thousands of endpoint updates.
	tns        float64
	tnsComp    float64
	violations int

	// Slack index: lazy min-heap with per-endpoint versions.
	slacks  slackHeap
	version []int

	// Dirty-frontier worklist, bucketed by logic level.
	buckets  [][]int
	inBucket []bool
	minLevel int

	// Work accounting. propagated counts instance recomputations; a full
	// Analyze costs len(Insts) of them.
	updates    int
	propagated int
	unitCost   float64 // CostUnits of one full analysis at this fidelity

	// Checkpoint journal (single outstanding checkpoint). Journaling is
	// first-touch: each net/endpoint is saved at most once per epoch.
	cpActive      bool
	epoch         int
	netStamp      []int
	epStamp       []int
	journalNet    []netUndo
	journalEp     []epUndo
	journalDerate []derateUndo
	cpTNS         float64
	cpTNSComp     float64
	cpViol        int
}

type derateUndo struct {
	inst int
	old  float64
}

// NewIncremental builds the engine with one full propagation. The
// netlist is captured by reference: the caller mutates it (cell sizes,
// placement) and notifies the engine. The config's ClockSkew/InstDerate
// slices are copied; later derate changes must go through SetDerate.
func NewIncremental(n *netlist.Netlist, cfg Config) *Incremental {
	cfg.ClockSkew = append([]float64(nil), cfg.ClockSkew...)
	cfg.InstDerate = append([]float64(nil), cfg.InstDerate...)
	_, _, setupF := cfg.Corner.factors()
	maxLevel := 0
	for i := range n.Insts {
		if n.Insts[i].Level > maxLevel {
			maxLevel = n.Insts[i].Level
		}
	}
	inc := &Incremental{
		n:        n,
		cfg:      cfg,
		derate:   globalDerate(cfg),
		setupF:   setupF,
		buckets:  make([][]int, maxLevel+1),
		inBucket: make([]bool, len(n.Insts)),
		minLevel: maxLevel + 1,
		epOfInst: make([]int, len(n.Insts)),
		epOfNet:  make([]int, len(n.Nets)),
		netStamp: make([]int, len(n.Nets)),
		unitCost: costUnits(n, cfg),
	}
	inc.rebuild()
	return inc
}

// rebuild runs the full propagation and endpoint construction, exactly
// mirroring Analyze.
func (inc *Incremental) rebuild() {
	n, cfg := inc.n, inc.cfg
	inc.state = make([]arrivalState, len(n.Nets))
	for i := range inc.state {
		inc.state[i].arrival = math.Inf(-1)
		inc.state[i].from = -1
	}
	for i := range n.Nets {
		if st, ok := sourceState(n, cfg, inc.derate, i); ok {
			inc.state[i] = st
		}
	}
	for _, id := range n.TopoOrder() {
		if outNet, st, ok := combState(n, cfg, inc.derate, id, inc.state); ok {
			inc.state[outNet] = st
		}
	}

	inc.endpoints = inc.endpoints[:0]
	for i := range inc.epOfInst {
		inc.epOfInst[i] = -1
	}
	for i := range inc.epOfNet {
		inc.epOfNet[i] = -1
	}
	inc.tns, inc.tnsComp, inc.violations = 0, 0, 0
	add := func(ep Endpoint) {
		if ep.Inst >= 0 {
			inc.epOfInst[ep.Inst] = len(inc.endpoints)
		} else {
			inc.epOfNet[ep.Net] = len(inc.endpoints)
		}
		inc.endpoints = append(inc.endpoints, ep)
		if ep.SlackPs < 0 {
			inc.tns += ep.SlackPs
			inc.violations++
		}
	}
	for _, ff := range n.Sequential() {
		dNet := n.FaninNet[ff][0]
		if dNet < 0 {
			continue
		}
		st := inc.state[dNet]
		if math.IsInf(st.arrival, -1) {
			continue
		}
		add(ffEndpoint(n, cfg, inc.setupF, ff, dNet, st))
	}
	for i := range n.Nets {
		if n.Nets[i].ExternalCap <= 0 || n.Nets[i].IsClock {
			continue
		}
		st := inc.state[i]
		if math.IsInf(st.arrival, -1) {
			continue
		}
		add(netEndpoint(n, cfg, i, st))
	}

	inc.version = make([]int, len(inc.endpoints))
	inc.epStamp = make([]int, len(inc.endpoints))
	inc.slacks = inc.slacks[:0]
	for i, ep := range inc.endpoints {
		inc.slacks = append(inc.slacks, slackEntry{slack: ep.SlackPs, idx: i})
	}
	heap.Init(&inc.slacks)
	inc.propagated += len(n.Insts) // the full build counts as one Analyze
}

// ---- change notifications ----

// Resize must be called after the caller changes Insts[id].Cell. It
// re-propagates the affected cone: the instance's own stage (drive
// strength), its fanin nets' loads (input capacitance), and — for a
// register — its clock-to-q launch and setup requirement.
func (inc *Incremental) Resize(id int) {
	inc.updates++
	for _, f := range inc.n.FaninNet[id] {
		if f >= 0 {
			inc.touchNet(f)
		}
	}
	if inc.n.Insts[id].Cell.Class.Sequential() {
		if q := inc.n.FanoutNet[id]; q >= 0 {
			inc.refreshSource(q)
		}
		if idx := inc.epOfInst[id]; idx >= 0 {
			inc.refreshEndpoint(idx) // setup time changed
		}
	} else {
		inc.markDirty(id)
	}
	inc.flush()
}

// MoveNet must be called after the placement geometry of a net changes
// (any endpoint instance moved): its wire delay and wire load are
// recomputed and the downstream cone updated.
func (inc *Incremental) MoveNet(netID int) {
	inc.updates++
	inc.touchNet(netID)
	inc.flush()
}

// MoveInst must be called after Insts[id] moved: every incident net's
// geometry changed.
func (inc *Incremental) MoveInst(id int) {
	inc.updates++
	for _, f := range inc.n.FaninNet[id] {
		if f >= 0 {
			inc.touchNet(f)
		}
	}
	if out := inc.n.FanoutNet[id]; out >= 0 {
		inc.touchNet(out)
	}
	inc.flush()
}

// SetDerate changes the per-instance delay multiplier (<=0 resets to 1)
// and re-propagates the instance's cone.
func (inc *Incremental) SetDerate(id int, mult float64) {
	inc.updates++
	if inc.cfg.InstDerate == nil {
		inc.cfg.InstDerate = make([]float64, len(inc.n.Insts))
	}
	for len(inc.cfg.InstDerate) <= id {
		inc.cfg.InstDerate = append(inc.cfg.InstDerate, 0)
	}
	if inc.cpActive {
		inc.journalDerate = append(inc.journalDerate, derateUndo{inst: id, old: inc.cfg.InstDerate[id]})
	}
	inc.cfg.InstDerate[id] = mult
	if inc.n.Insts[id].Cell.Class.Sequential() {
		if q := inc.n.FanoutNet[id]; q >= 0 {
			inc.refreshSource(q)
		}
	} else {
		inc.markDirty(id)
	}
	inc.flush()
}

// touchNet handles a load or geometry change on a net: its driver's
// stage is recomputed (the driver delay depends on the net's load), and
// endpoint features that read the net's load are refreshed.
func (inc *Incremental) touchNet(f int) {
	net := &inc.n.Nets[f]
	if net.IsClock {
		return
	}
	if net.Driver >= 0 {
		if inc.n.Insts[net.Driver].Cell.Class.Sequential() {
			inc.refreshSource(f)
		} else {
			inc.markDirty(net.Driver)
		}
	}
	// Load-only effects on endpoint features (FanoutLd): the net may
	// itself be an external endpoint, or feed a register D pin.
	if idx := inc.epOfNet[f]; idx >= 0 {
		inc.refreshEndpoint(idx)
	}
	for _, s := range net.Sinks {
		if inc.n.Insts[s.Inst].Cell.Class.Sequential() {
			if idx := inc.epOfInst[s.Inst]; idx >= 0 {
				inc.refreshEndpoint(idx)
			}
		}
	}
}

// refreshSource recomputes a source net (PI or register Q) and seeds
// propagation if it changed.
func (inc *Incremental) refreshSource(netID int) {
	st, ok := sourceState(inc.n, inc.cfg, inc.derate, netID)
	if !ok {
		return
	}
	if inc.stable(inc.state[netID], st) {
		return
	}
	inc.writeState(netID, st)
	inc.fanOut(netID)
}

// markDirty queues a combinational instance for recomputation.
func (inc *Incremental) markDirty(id int) {
	inst := &inc.n.Insts[id]
	if inst.Cell.Class.Sequential() || inst.Level == 0 || inc.n.FanoutNet[id] < 0 {
		return
	}
	if inc.inBucket[id] {
		return
	}
	inc.inBucket[id] = true
	inc.buckets[inst.Level] = append(inc.buckets[inst.Level], id)
	if inst.Level < inc.minLevel {
		inc.minLevel = inst.Level
	}
}

// fanOut pushes a changed net's consequences downstream: combinational
// sinks are queued, register D sinks and external endpoints refreshed.
func (inc *Incremental) fanOut(netID int) {
	for _, s := range inc.n.Nets[netID].Sinks {
		if inc.n.Insts[s.Inst].Cell.Class.Sequential() {
			if idx := inc.epOfInst[s.Inst]; idx >= 0 {
				inc.refreshEndpoint(idx)
			}
		} else {
			inc.markDirty(s.Inst)
		}
	}
	if idx := inc.epOfNet[netID]; idx >= 0 {
		inc.refreshEndpoint(idx)
	}
}

// flush drains the level-bucketed worklist in ascending level order.
// The level-increasing invariant of the netlist guarantees a processed
// instance only enqueues strictly higher levels, so one ascending sweep
// settles the frontier.
func (inc *Incremental) flush() {
	for l := inc.minLevel; l < len(inc.buckets); l++ {
		bucket := inc.buckets[l]
		for i := 0; i < len(bucket); i++ { // fanOut never appends to level l
			id := bucket[i]
			inc.inBucket[id] = false
			inc.propagated++
			outNet, st, ok := combState(inc.n, inc.cfg, inc.derate, id, inc.state)
			if !ok {
				continue
			}
			if inc.stable(inc.state[outNet], st) {
				continue // epsilon-stable: cone ends here
			}
			inc.writeState(outNet, st)
			inc.fanOut(outNet)
		}
		inc.buckets[l] = bucket[:0]
	}
	inc.minLevel = len(inc.buckets)
}

// stable reports whether a recomputed state is within the cutoff of the
// stored one. With Epsilon 0 this is exact equality, so the cutoff never
// changes results relative to a full propagation.
func (inc *Incremental) stable(old, new arrivalState) bool {
	if old.depth != new.depth || old.from != new.from {
		return false
	}
	return eqEps(old.arrival, new.arrival, inc.Epsilon) &&
		eqEps(old.slew, new.slew, inc.Epsilon) &&
		eqEps(old.wire, new.wire, inc.Epsilon)
}

func eqEps(a, b, eps float64) bool {
	if eps == 0 {
		return a == b
	}
	d := a - b
	return d <= eps && d >= -eps
}

func (inc *Incremental) writeState(netID int, st arrivalState) {
	if inc.cpActive && inc.netStamp[netID] != inc.epoch {
		inc.netStamp[netID] = inc.epoch
		inc.journalNet = append(inc.journalNet, netUndo{net: netID, old: inc.state[netID]})
	}
	inc.state[netID] = st
}

// refreshEndpoint recomputes one endpoint from current state and loads,
// updating TNS/violation aggregates and the slack index.
func (inc *Incremental) refreshEndpoint(idx int) {
	old := inc.endpoints[idx]
	var ep Endpoint
	if old.Inst >= 0 {
		ep = ffEndpoint(inc.n, inc.cfg, inc.setupF, old.Inst, old.Net, inc.state[old.Net])
	} else {
		ep = netEndpoint(inc.n, inc.cfg, old.Net, inc.state[old.Net])
	}
	if ep == old {
		return
	}
	if inc.cpActive && inc.epStamp[idx] != inc.epoch {
		inc.epStamp[idx] = inc.epoch
		inc.journalEp = append(inc.journalEp, epUndo{idx: idx, old: old})
	}
	inc.addTNS(negPart(ep.SlackPs) - negPart(old.SlackPs))
	if old.SlackPs < 0 {
		inc.violations--
	}
	if ep.SlackPs < 0 {
		inc.violations++
	}
	inc.endpoints[idx] = ep
	inc.pushSlack(idx, ep.SlackPs)
}

func negPart(x float64) float64 {
	if x < 0 {
		return x
	}
	return 0
}

// addTNS applies a delta to the running TNS with Kahan compensation.
func (inc *Incremental) addTNS(delta float64) {
	y := delta - inc.tnsComp
	t := inc.tns + y
	inc.tnsComp = (t - inc.tns) - y
	inc.tns = t
}

func (inc *Incremental) pushSlack(idx int, slack float64) {
	inc.version[idx]++
	heap.Push(&inc.slacks, slackEntry{slack: slack, idx: idx, ver: inc.version[idx]})
	// Compact when stale entries dominate.
	if len(inc.slacks) > 4*len(inc.endpoints)+16 {
		inc.slacks = inc.slacks[:0]
		for i, ep := range inc.endpoints {
			inc.slacks = append(inc.slacks, slackEntry{slack: ep.SlackPs, idx: i, ver: inc.version[i]})
		}
		heap.Init(&inc.slacks)
	}
}

// ---- speculative moves ----

// Checkpoint begins a speculative region: every state/endpoint write
// until Commit or Rollback is journaled (first touch only). Nested
// checkpoints are not supported.
func (inc *Incremental) Checkpoint() {
	if inc.cpActive {
		panic("sta: nested Incremental.Checkpoint")
	}
	inc.cpActive = true
	inc.epoch++
	inc.cpTNS, inc.cpTNSComp, inc.cpViol = inc.tns, inc.tnsComp, inc.violations
	inc.journalNet = inc.journalNet[:0]
	inc.journalEp = inc.journalEp[:0]
	inc.journalDerate = inc.journalDerate[:0]
}

// Commit accepts the speculative region, discarding the journal.
func (inc *Incremental) Commit() {
	if !inc.cpActive {
		panic("sta: Commit without Checkpoint")
	}
	inc.cpActive = false
}

// Rollback restores the engine to the Checkpoint state in O(touched).
// The caller must separately revert its own netlist mutations (cell
// sizes, placement) made since the checkpoint.
func (inc *Incremental) Rollback() {
	if !inc.cpActive {
		panic("sta: Rollback without Checkpoint")
	}
	for i := len(inc.journalNet) - 1; i >= 0; i-- {
		u := inc.journalNet[i]
		inc.state[u.net] = u.old
	}
	for i := len(inc.journalEp) - 1; i >= 0; i-- {
		u := inc.journalEp[i]
		inc.endpoints[u.idx] = u.old
		inc.pushSlack(u.idx, u.old.SlackPs)
	}
	for i := len(inc.journalDerate) - 1; i >= 0; i-- {
		u := inc.journalDerate[i]
		inc.cfg.InstDerate[u.inst] = u.old
	}
	inc.tns, inc.tnsComp, inc.violations = inc.cpTNS, inc.cpTNSComp, inc.cpViol
	inc.journalNet = inc.journalNet[:0]
	inc.journalEp = inc.journalEp[:0]
	inc.journalDerate = inc.journalDerate[:0]
	inc.cpActive = false
}

// ---- queries ----

// WNSPs returns the current worst slack (the clock period when the
// design has no endpoints, matching Analyze).
func (inc *Incremental) WNSPs() float64 {
	ep := inc.worstEndpoint()
	if ep < 0 {
		return inc.n.ClockPeriodPs
	}
	return inc.endpoints[ep].SlackPs
}

// worstEndpoint returns the index of the worst endpoint (ties to the
// lowest index, matching Analyze's first-minimum rule), or -1.
func (inc *Incremental) worstEndpoint() int {
	if len(inc.endpoints) == 0 {
		return -1
	}
	for len(inc.slacks) > 0 {
		top := inc.slacks[0]
		if inc.version[top.idx] == top.ver {
			return top.idx
		}
		heap.Pop(&inc.slacks)
	}
	panic("sta: slack index empty with live endpoints")
}

// TNSPs returns the current total negative slack.
func (inc *Incremental) TNSPs() float64 { return inc.tns }

// Violations returns the current violating-endpoint count.
func (inc *Incremental) Violations() int { return inc.violations }

// Endpoints returns the live endpoint table in Analyze order. The slice
// is owned by the engine; callers must not modify it.
func (inc *Incremental) Endpoints() []Endpoint { return inc.endpoints }

// ViolatingEndpoints returns copies of the endpoints with negative
// slack, ascending (worst first).
func (inc *Incremental) ViolatingEndpoints() []Endpoint {
	var eps []Endpoint
	for _, ep := range inc.endpoints {
		if ep.SlackPs < 0 {
			eps = append(eps, ep)
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].SlackPs != eps[j].SlackPs {
			return eps[i].SlackPs < eps[j].SlackPs
		}
		if eps[i].Inst != eps[j].Inst {
			return eps[i].Inst < eps[j].Inst
		}
		return eps[i].Net < eps[j].Net
	})
	return eps
}

// Updates returns the number of change notifications processed.
func (inc *Incremental) Updates() int { return inc.updates }

// Propagated returns the cumulative number of instance recomputations
// (the initial full build counts len(Insts)).
func (inc *Incremental) Propagated() int { return inc.propagated }

// FullEquivalents converts the cumulative propagation work into
// full-Analyze equivalents: 1.0 is the cost of one complete timing run.
func (inc *Incremental) FullEquivalents() float64 {
	if len(inc.n.Insts) == 0 {
		return 0
	}
	return float64(inc.propagated) / float64(len(inc.n.Insts))
}

// Report materializes the current state as a full Analyze-compatible
// report: same WNS/TNS/endpoints, the critical path retraced from the
// stored worst-path links, and CostUnits charged in full-analysis
// equivalents of the work actually performed.
func (inc *Incremental) Report() *Report {
	r := &Report{
		Engine:     inc.cfg.Engine,
		PathBased:  inc.cfg.PathBased,
		SI:         inc.cfg.SI,
		WNSPs:      inc.WNSPs(),
		TNSPs:      inc.tns,
		Violations: inc.violations,
		Endpoints:  append([]Endpoint(nil), inc.endpoints...),
		CostUnits:  inc.unitCost * inc.FullEquivalents(),
	}
	if worst := inc.worstEndpoint(); worst >= 0 {
		r.CriticalPath = retrace(inc.n, inc.endpoints[worst].Net, inc.state)
	}
	worstArrival := inc.n.ClockPeriodPs - r.WNSPs
	if worstArrival > 0 {
		r.MaxFreqGHz = 1000 / worstArrival
	}
	return r
}

// Clone duplicates the engine onto n2, which must be a netlist.Clone of
// the engine's netlist with identical topology and current cell/
// placement values (the annealing fork point). Cloning with an open
// checkpoint is not supported.
func (inc *Incremental) Clone(n2 *netlist.Netlist) *Incremental {
	if inc.cpActive {
		panic("sta: Clone with open Checkpoint")
	}
	c := &Incremental{
		n:          n2,
		cfg:        inc.cfg,
		Epsilon:    inc.Epsilon,
		derate:     inc.derate,
		setupF:     inc.setupF,
		state:      append([]arrivalState(nil), inc.state...),
		endpoints:  append([]Endpoint(nil), inc.endpoints...),
		epOfInst:   append([]int(nil), inc.epOfInst...),
		epOfNet:    append([]int(nil), inc.epOfNet...),
		tns:        inc.tns,
		violations: inc.violations,
		version:    append([]int(nil), inc.version...),
		buckets:    make([][]int, len(inc.buckets)),
		inBucket:   make([]bool, len(inc.inBucket)),
		minLevel:   len(inc.buckets),
		updates:    inc.updates,
		propagated: inc.propagated,
		unitCost:   inc.unitCost,
		netStamp:   make([]int, len(inc.netStamp)),
		epStamp:    make([]int, len(inc.epStamp)),
	}
	c.cfg.ClockSkew = append([]float64(nil), inc.cfg.ClockSkew...)
	c.cfg.InstDerate = append([]float64(nil), inc.cfg.InstDerate...)
	c.slacks = c.slacks[:0]
	for i, ep := range c.endpoints {
		c.slacks = append(c.slacks, slackEntry{slack: ep.SlackPs, idx: i, ver: c.version[i]})
	}
	heap.Init(&c.slacks)
	return c
}
