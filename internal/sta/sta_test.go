package sta

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func testDesign(t testing.TB, seed int64) *netlist.Netlist {
	t.Helper()
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestAnalyzeBasics(t *testing.T) {
	n := testDesign(t, 1)
	r := Analyze(n, Config{Engine: Signoff})
	if len(r.Endpoints) == 0 {
		t.Fatal("no endpoints")
	}
	if r.MaxFreqGHz <= 0 {
		t.Fatalf("max freq = %v", r.MaxFreqGHz)
	}
	if r.CostUnits <= 0 {
		t.Fatal("cost must be positive")
	}
	for _, ep := range r.Endpoints {
		if ep.Arrival <= 0 {
			t.Fatalf("endpoint arrival %v <= 0", ep.Arrival)
		}
		if ep.Depth < 0 {
			t.Fatalf("negative depth")
		}
	}
}

func TestWNSMatchesMinEndpoint(t *testing.T) {
	n := testDesign(t, 2)
	r := Analyze(n, Config{Engine: Signoff})
	minSlack := math.Inf(1)
	var tns float64
	viol := 0
	for _, ep := range r.Endpoints {
		if ep.SlackPs < minSlack {
			minSlack = ep.SlackPs
		}
		if ep.SlackPs < 0 {
			tns += ep.SlackPs
			viol++
		}
	}
	if r.WNSPs != minSlack {
		t.Errorf("WNS %v != min endpoint slack %v", r.WNSPs, minSlack)
	}
	if math.Abs(r.TNSPs-tns) > 1e-9 {
		t.Errorf("TNS %v != recomputed %v", r.TNSPs, tns)
	}
	if r.Violations != viol {
		t.Errorf("violations %d != %d", r.Violations, viol)
	}
}

func TestTighterClockWorsensSlack(t *testing.T) {
	n := testDesign(t, 3)
	relaxed := Analyze(n, Config{Engine: Signoff})
	n2 := n.Clone()
	n2.ClockPeriodPs = n.ClockPeriodPs / 3
	tight := Analyze(n2, Config{Engine: Signoff})
	if tight.WNSPs >= relaxed.WNSPs {
		t.Errorf("tighter clock should reduce WNS: %v vs %v", tight.WNSPs, relaxed.WNSPs)
	}
	// Arrival times are unchanged by the constraint, so max freq is too.
	if math.Abs(tight.MaxFreqGHz-relaxed.MaxFreqGHz) > 1e-9 {
		t.Errorf("max freq must not depend on constraint: %v vs %v", tight.MaxFreqGHz, relaxed.MaxFreqGHz)
	}
}

func TestMaxFreqConsistent(t *testing.T) {
	// Setting the period to exactly the critical arrival should give
	// WNS ~= 0.
	n := testDesign(t, 4)
	r := Analyze(n, Config{Engine: Signoff})
	n2 := n.Clone()
	n2.ClockPeriodPs = 1000 / r.MaxFreqGHz
	r2 := Analyze(n2, Config{Engine: Signoff})
	if math.Abs(r2.WNSPs) > 1e-6 {
		t.Errorf("WNS at max freq = %v, want ~0", r2.WNSPs)
	}
}

func TestSignoffMorePessimisticThanFast(t *testing.T) {
	// The signoff engine adds slew-dependent delay and Elmore wire
	// resistance, so its arrivals are later and WNS is lower.
	n := testDesign(t, 5)
	fast := Analyze(n, Config{Engine: Fast})
	signoff := Analyze(n, Config{Engine: Signoff})
	if signoff.WNSPs >= fast.WNSPs {
		t.Errorf("signoff WNS %v should be below fast WNS %v", signoff.WNSPs, fast.WNSPs)
	}
}

func TestSIAddsPessimism(t *testing.T) {
	n := testDesign(t, 6)
	base := Analyze(n, Config{Engine: Signoff})
	si := Analyze(n, Config{Engine: Signoff, SI: true})
	if si.WNSPs >= base.WNSPs {
		t.Errorf("SI should add delay: WNS %v vs %v", si.WNSPs, base.WNSPs)
	}
}

func TestPBARecoversPessimism(t *testing.T) {
	n := testDesign(t, 7)
	gba := Analyze(n, Config{Engine: Signoff})
	pba := Analyze(n, Config{Engine: Signoff, PathBased: true})
	if pba.WNSPs <= gba.WNSPs {
		t.Errorf("PBA should recover slack: WNS %v vs %v", pba.WNSPs, gba.WNSPs)
	}
	if pba.TNSPs < gba.TNSPs {
		t.Errorf("PBA TNS %v must be >= GBA TNS %v", pba.TNSPs, gba.TNSPs)
	}
}

func TestDerateReducesSlack(t *testing.T) {
	n := testDesign(t, 8)
	base := Analyze(n, Config{Engine: Signoff})
	derated := Analyze(n, Config{Engine: Signoff, DeratePct: 10})
	if derated.WNSPs >= base.WNSPs {
		t.Errorf("derate should reduce slack: %v vs %v", derated.WNSPs, base.WNSPs)
	}
}

func TestCostOrdering(t *testing.T) {
	// Cost: fast < signoff < signoff+SI < signoff+SI+PBA (Fig. 8's
	// accuracy-cost staircase).
	n := testDesign(t, 9)
	costs := []float64{
		Analyze(n, Config{Engine: Fast}).CostUnits,
		Analyze(n, Config{Engine: Signoff}).CostUnits,
		Analyze(n, Config{Engine: Signoff, SI: true}).CostUnits,
		Analyze(n, Config{Engine: Signoff, SI: true, PathBased: true}).CostUnits,
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Errorf("cost[%d]=%v not above cost[%d]=%v", i, costs[i], i-1, costs[i-1])
		}
	}
}

func TestClockSkewShiftsEndpoints(t *testing.T) {
	n := testDesign(t, 10)
	base := Analyze(n, Config{Engine: Signoff})
	// Give every register a large positive capture skew: endpoint
	// required times increase, so slacks improve (launch clk-to-q also
	// shifts, but useful skew at capture dominates with uniform skew
	// both effects cancel; use capture-only skew by zeroing launch).
	skew := make([]float64, len(n.Insts))
	for _, ff := range n.Sequential() {
		skew[ff] = 50
	}
	shifted := Analyze(n, Config{Engine: Signoff, ClockSkew: skew})
	// Uniform skew shifts launch and capture identically, so FF->FF
	// paths are unchanged and PI-launched paths gain required time:
	// register endpoints must not get worse. Output endpoints capture
	// without skew, so they may lose up to the 50 ps shift.
	byKey := make(map[[2]int]float64)
	for _, ep := range base.Endpoints {
		byKey[[2]int{ep.Inst, ep.Net}] = ep.SlackPs
	}
	for _, ep := range shifted.Endpoints {
		was, ok := byKey[[2]int{ep.Inst, ep.Net}]
		if !ok {
			t.Fatalf("endpoint (%d,%d) appeared under skew", ep.Inst, ep.Net)
		}
		if ep.Inst >= 0 && ep.SlackPs < was-1e-9 {
			t.Errorf("register endpoint %d slack worsened under uniform skew: %v -> %v", ep.Inst, was, ep.SlackPs)
		}
		if ep.Inst < 0 && (ep.SlackPs > was+1e-9 || ep.SlackPs < was-50-1e-9) {
			t.Errorf("output endpoint net %d slack moved outside [-50,0]: %v -> %v", ep.Net, was, ep.SlackPs)
		}
	}
}

func TestWorstEndpointsSorted(t *testing.T) {
	n := testDesign(t, 11)
	r := Analyze(n, Config{Engine: Signoff})
	worst := r.WorstEndpoints(5)
	if len(worst) == 0 {
		t.Fatal("no endpoints")
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].SlackPs < worst[i-1].SlackPs {
			t.Error("worst endpoints not ascending")
		}
	}
	if worst[0].SlackPs != r.WNSPs {
		t.Errorf("first worst endpoint %v != WNS %v", worst[0].SlackPs, r.WNSPs)
	}
	all := r.WorstEndpoints(1 << 20)
	if len(all) != len(r.Endpoints) {
		t.Errorf("oversized k returned %d of %d", len(all), len(r.Endpoints))
	}
}

func TestCriticalPathConnected(t *testing.T) {
	n := testDesign(t, 12)
	r := Analyze(n, Config{Engine: Signoff})
	if len(r.CriticalPath) == 0 {
		t.Fatal("no critical path")
	}
	// The path must be a chain: each instance's fanout net feeds the
	// next instance.
	for i := 0; i+1 < len(r.CriticalPath); i++ {
		cur, next := r.CriticalPath[i], r.CriticalPath[i+1]
		out := n.FanoutNet[cur]
		found := false
		for _, fn := range n.FaninNet[next] {
			if fn == out {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path break between inst %d and %d", cur, next)
		}
	}
}

func TestUpsizingCriticalDriverImprovesWNS(t *testing.T) {
	// Sanity link between sizing and timing: strengthening every cell
	// on the critical path should not make WNS worse.
	n := testDesign(t, 13)
	before := Analyze(n, Config{Engine: Signoff})
	n2 := n.Clone()
	for _, id := range before.CriticalPath {
		if up, ok := n2.Lib.Upsize(n2.Insts[id].Cell); ok {
			n2.Insts[id].Cell = up
		}
	}
	after := Analyze(n2, Config{Engine: Signoff})
	if after.WNSPs < before.WNSPs-15 {
		t.Errorf("upsizing critical path made WNS much worse: %v -> %v", before.WNSPs, after.WNSPs)
	}
}

func TestDeterministic(t *testing.T) {
	n := testDesign(t, 14)
	a := Analyze(n, Config{Engine: Signoff, SI: true})
	b := Analyze(n, Config{Engine: Signoff, SI: true})
	if a.WNSPs != b.WNSPs || a.TNSPs != b.TNSPs {
		t.Error("analysis not deterministic")
	}
}

func TestEngineString(t *testing.T) {
	if Fast.String() != "fast" || Signoff.String() != "signoff" {
		t.Error("engine names wrong")
	}
}

func BenchmarkAnalyzeSignoff(b *testing.B) {
	n := netlist.Generate(cellib.Default14nm(), netlist.PulpinoProxy(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(n, Config{Engine: Signoff, SI: true})
	}
}
