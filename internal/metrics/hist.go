package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// valueBuckets is the bucket count of a value histogram: bucket k holds
// values in [2^(k-21), 2^(k-20)) (bucket 0 is < 2^-20, including zero),
// so 44 log-spaced buckets span ~1e-6 to ~8e6 — wide enough for the
// percentage-scale observations (predictor tolerance errors, ratios)
// this registry exists for, with the same fixed-memory/atomic-counter
// construction as the tracer's latency histograms.
const valueBuckets = 44

// ValueHist is one log-bucketed histogram of non-negative float64
// samples. Observe is a couple of atomic operations; snapshots are
// never torn within a bucket, merely up to one observation apart
// between buckets.
type ValueHist struct {
	counts [valueBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits
}

// valueBucketOf maps a sample to its bucket index.
func valueBucketOf(v float64) int {
	if v < math.Ldexp(1, -20) || math.IsNaN(v) {
		return 0
	}
	b := int(math.Floor(math.Log2(v))) + 21
	if b < 0 {
		b = 0
	}
	if b >= valueBuckets {
		b = valueBuckets - 1
	}
	return b
}

// valueBucketUpper returns the exclusive upper bound of bucket b.
func valueBucketUpper(b int) float64 {
	return math.Ldexp(1, b-20)
}

// Observe records one sample. Negative samples are clamped to zero —
// the histograms hold magnitudes (errors, ratios), not signed values.
func (h *ValueHist) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[valueBucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ValueSnapshot is a consistent-enough read of one histogram.
type ValueSnapshot struct {
	Name  string
	Count int64
	Mean  float64
	Max   float64
	// P50/P90/P99 are bucket upper bounds — conservative estimates, the
	// same convention as the tracer's latency quantiles.
	P50, P90, P99 float64
}

// Snapshot reads the histogram.
func (h *ValueHist) Snapshot(name string) ValueSnapshot {
	s := ValueSnapshot{Name: name, Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.Mean = math.Float64frombits(h.sum.Load()) / float64(s.Count)
	s.Max = math.Float64frombits(h.max.Load())
	var counts [valueBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) float64 {
		target := int64(math.Ceil(q * float64(total)))
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return valueBucketUpper(i)
			}
		}
		return valueBucketUpper(valueBuckets - 1)
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return s
}

// Hists is a registry of named value histograms, the distribution-
// shaped sibling of Counters: counters count events, histograms hold
// how big they were. Naming follows the same subsystem.noun scheme
// (e.g. predict.tolerr.synth).
type Hists struct {
	mu sync.RWMutex
	m  map[string]*ValueHist
}

// NewHists creates an empty registry.
func NewHists() *Hists {
	return &Hists{m: map[string]*ValueHist{}}
}

// Hist returns the named histogram, registering it on first use.
func (h *Hists) Hist(name string) *ValueHist {
	h.mu.RLock()
	v, ok := h.m[name]
	h.mu.RUnlock()
	if ok {
		return v
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok = h.m[name]; !ok {
		v = &ValueHist{}
		h.m[name] = v
	}
	return v
}

// Observe records one sample into the named histogram.
func (h *Hists) Observe(name string, v float64) { h.Hist(name).Observe(v) }

// Snapshots returns every histogram's snapshot, sorted by name.
func (h *Hists) Snapshots() []ValueSnapshot {
	h.mu.RLock()
	names := make([]string, 0, len(h.m))
	for k := range h.m {
		names = append(names, k)
	}
	h.mu.RUnlock()
	sort.Strings(names)
	out := make([]ValueSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, h.Hist(name).Snapshot(name))
	}
	return out
}

// Write renders every histogram as one plain-text line, the value-
// domain counterpart of the tracer's latency lines.
func (h *Hists) Write(w io.Writer) {
	for _, s := range h.Snapshots() {
		fmt.Fprintf(w, "%s count=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n",
			s.Name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
	}
}

// DefaultHists is the process-wide histogram registry, the Default
// counterpart for distributions.
var DefaultHists = NewHists()

// Observe records a sample into the Default histogram registry.
func Observe(name string, v float64) { DefaultHists.Observe(name, v) }
