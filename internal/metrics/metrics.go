// Package metrics reimplements the METRICS system of the paper's Sec. 4
// (Fig. 11, refs [9][28][43]): design tools are instrumented with
// wrappers/API calls, records are encoded as XML and transmitted to a
// central collection server, and a data miner analyzes the store to
// produce predictions and guidance that feed back into the flow — the
// "METRICS 2.0" loop with no human intervention.
package metrics

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/ml"
)

// KV is one named value inside a record.
type KV struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// Record is one instrumented tool-step measurement. It is the on-the-
// wire unit: XML-encoded by the transmitter, decoded by the server.
type Record struct {
	XMLName xml.Name  `xml:"record"`
	Design  string    `xml:"design,attr"`
	Step    string    `xml:"step,attr"`
	RunSeed int64     `xml:"seed,attr"`
	Options []KV      `xml:"option"`
	Metrics []KV      `xml:"metric"`
	Series  []float64 `xml:"series>v,omitempty"`
}

// Option returns a named option value.
func (r *Record) Option(name string) (float64, bool) { return kvGet(r.Options, name) }

// Metric returns a named metric value.
func (r *Record) Metric(name string) (float64, bool) { return kvGet(r.Metrics, name) }

func kvGet(kvs []KV, name string) (float64, bool) {
	for _, kv := range kvs {
		if kv.Name == name {
			return kv.Value, true
		}
	}
	return 0, false
}

// FromStep converts a flow step record into a METRICS record, flattening
// the option struct into named values (the "common METRICS vocabulary").
func FromStep(rec flow.StepRecord) Record {
	out := Record{
		Design:  rec.Design,
		Step:    rec.Step,
		RunSeed: rec.RunSeed,
		Series:  append([]float64(nil), rec.Series...),
	}
	o := rec.Options
	out.Options = []KV{
		{"target_freq_ghz", o.TargetFreqGHz},
		{"synth_effort", float64(o.SynthEffort)},
		{"utilization", o.Utilization},
		{"place_moves", float64(o.PlaceMoves)},
		{"partitions", float64(o.Partitions)},
		{"tracks_per_edge", o.TracksPerEdge},
		{"route_effort", float64(o.RouteEffort)},
		{"derate_pct", o.DeratePct},
	}
	names := make([]string, 0, len(rec.Metrics))
	for k := range rec.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out.Metrics = append(out.Metrics, KV{k, rec.Metrics[k]})
	}
	return out
}

// EncodeXML marshals a record for transmission.
func EncodeXML(r Record) ([]byte, error) { return xml.Marshal(r) }

// DecodeXML unmarshals a transmitted record.
func DecodeXML(data []byte) (Record, error) {
	var r Record
	err := xml.Unmarshal(data, &r)
	return r, err
}

// Store is the central record repository (the "METRICS server" state).
// It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records []Record
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{} }

// Add appends a record.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	s.records = append(s.records, r)
	s.mu.Unlock()
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Filter selects records; zero-valued fields match everything.
type Filter struct {
	Design string
	Step   string
}

// Query returns matching records (copies of the slice headers; records
// themselves are treated as immutable).
func (s *Store) Query(f Filter) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		if f.Design != "" && r.Design != f.Design {
			continue
		}
		if f.Step != "" && r.Step != f.Step {
			continue
		}
		out = append(out, r)
	}
	return out
}

// RunSummary aggregates all step records of one flow run.
type RunSummary struct {
	Design        string
	RunSeed       int64
	TargetFreqGHz float64
	AreaUm2       float64
	WNSPs         float64
	MaxFreqGHz    float64
	FinalDRVs     float64
	HPWLUm        float64
	OverflowTotal float64
	TimingMet     bool
	RouteOK       bool
	Met           bool
}

// Summarize groups a store's records into per-run summaries for a
// design (empty design = all).
func Summarize(s *Store, design string) []RunSummary {
	type key struct {
		design string
		seed   int64
	}
	byRun := map[key]*RunSummary{}
	var order []key
	for _, r := range s.Query(Filter{Design: design}) {
		k := key{r.Design, r.RunSeed}
		sum, ok := byRun[k]
		if !ok {
			sum = &RunSummary{Design: r.Design, RunSeed: r.RunSeed, FinalDRVs: -1}
			if f, ok := r.Option("target_freq_ghz"); ok {
				sum.TargetFreqGHz = f
			}
			byRun[k] = sum
			order = append(order, k)
		}
		switch r.Step {
		case "synth":
			if v, ok := r.Metric("area"); ok {
				sum.AreaUm2 = v
			}
		case "place":
			if v, ok := r.Metric("hpwl"); ok {
				sum.HPWLUm = v
			}
		case "groute":
			if v, ok := r.Metric("overflow"); ok {
				sum.OverflowTotal = v
			}
		case "droute":
			if v, ok := r.Metric("drvs"); ok {
				sum.FinalDRVs = v
				sum.RouteOK = v < 200
			}
		case "sta":
			if v, ok := r.Metric("wns"); ok {
				sum.WNSPs = v
				sum.TimingMet = v >= 0
			}
			if v, ok := r.Metric("maxfreq"); ok {
				sum.MaxFreqGHz = v
			}
		}
	}
	var out []RunSummary
	for _, k := range order {
		sum := byRun[k]
		sum.Met = sum.TimingMet && sum.RouteOK
		out = append(out, *sum)
	}
	return out
}

// Miner is the data-mining component: it turns the store into
// predictions and flow guidance.
type Miner struct {
	Store *Store
}

// Sensitivity computes the correlation between an option and a metric of
// a given step across all stored runs — the "sensitivity analyses with
// respect to final design QOR" of the METRICS validation.
func (m Miner) Sensitivity(step, option, metric string) (float64, error) {
	var xs, ys []float64
	for _, r := range m.Store.Query(Filter{Step: step}) {
		o, ok1 := r.Option(option)
		v, ok2 := r.Metric(metric)
		if ok1 && ok2 {
			xs = append(xs, o)
			ys = append(ys, v)
		}
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("metrics: only %d samples for %s/%s", len(xs), option, metric)
	}
	return ml.Pearson(xs, ys), nil
}

// BestTargetFreq mines the store for the highest target frequency that
// produced a met run for the design ("prediction of best design-specific
// tool option settings").
func (m Miner) BestTargetFreq(design string) (float64, bool) {
	best, found := 0.0, false
	for _, sum := range Summarize(m.Store, design) {
		if sum.Met && sum.TargetFreqGHz > best {
			best, found = sum.TargetFreqGHz, true
		}
	}
	return best, found
}

// PrescribeFreqRange predicts the achievable clock frequency band for a
// design from stored outcomes: a regression of signoff max-frequency on
// target frequency, evaluated with a guardband — the "prescribe
// achievable clock frequency for given designs" validation use.
func (m Miner) PrescribeFreqRange(design string) (loGHz, hiGHz float64, err error) {
	var x [][]float64
	var y []float64
	for _, sum := range Summarize(m.Store, design) {
		if sum.MaxFreqGHz <= 0 {
			continue
		}
		x = append(x, []float64{sum.TargetFreqGHz})
		y = append(y, sum.MaxFreqGHz)
	}
	if len(x) < 3 {
		return 0, 0, fmt.Errorf("metrics: not enough runs for %s", design)
	}
	reg, err := ml.FitLinear(x, y)
	if err != nil {
		return 0, 0, err
	}
	// Predicted achievable frequency at the historical best target.
	bestTarget := 0.0
	for _, row := range x {
		if row[0] > bestTarget {
			bestTarget = row[0]
		}
	}
	mid := reg.Predict([]float64{bestTarget})
	spread := ml.StdDev(y)
	return mid - spread, mid + spread, nil
}

// Suggest returns improved flow options for the next run of a design:
// the mined best target frequency nudged upward when slack remains, or
// the safest known target when recent runs failed. This is the
// "reimplementation of METRICS should feed predictions and guidance back
// into the design flow" item.
func (m Miner) Suggest(design string, prev flow.Options) flow.Options {
	next := prev
	sums := Summarize(m.Store, design)
	if len(sums) == 0 {
		return next
	}
	best, ok := m.BestTargetFreq(design)
	if !ok {
		// Nothing met yet: back off.
		next.TargetFreqGHz = prev.TargetFreqGHz * 0.9
		next.SynthEffort = 3
		return next
	}
	// Slack-aware nudge: if the best met run still had positive WNS,
	// push the target a little beyond it.
	var bestWNS float64
	for _, sum := range sums {
		if sum.Met && sum.TargetFreqGHz == best {
			bestWNS = sum.WNSPs
		}
	}
	next.TargetFreqGHz = best
	if bestWNS > 0 {
		period := 1000 / best
		next.TargetFreqGHz = 1000 / (period - bestWNS*0.5)
	}
	return next
}

// WriteJSON serializes the whole store (for archival — the paper's
// METRICS data outlives the design sessions that produced it).
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.NewEncoder(w).Encode(s.records)
}

// ReadJSON loads records from a previous WriteJSON, appending to the
// store.
func (s *Store) ReadJSON(r io.Reader) error {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	s.mu.Lock()
	s.records = append(s.records, recs...)
	s.mu.Unlock()
	return nil
}
