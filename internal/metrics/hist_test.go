package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestValueHistBasics(t *testing.T) {
	var h ValueHist
	for _, v := range []float64{0, 0.5, 1, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot("x")
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 103.5 / 5; math.Abs(s.Mean-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", s.Mean, want)
	}
	if s.Max != 100 {
		t.Errorf("max = %g, want 100", s.Max)
	}
	// Quantiles are bucket upper bounds: the median sample 1 lies in
	// bucket [1, 2), reported as its upper bound 2.
	if s.P50 != 2 {
		t.Errorf("p50 = %g, want 2", s.P50)
	}
	if s.P99 < 100 {
		t.Errorf("p99 = %g, want >= max", s.P99)
	}
}

func TestValueHistClampsPathologicalSamples(t *testing.T) {
	var h ValueHist
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(1e300)
	s := h.Snapshot("x")
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.P50 != valueBucketUpper(0) {
		t.Errorf("negative/NaN samples should land in bucket 0; p50 = %g", s.P50)
	}
}

func TestHistsRegistryWrite(t *testing.T) {
	reg := NewHists()
	reg.Observe("predict.tolerr.synth", 0.2)
	reg.Observe("predict.tolerr.synth", 3)
	reg.Observe("predict.tolerr.place", 1)
	var b strings.Builder
	reg.Write(&b)
	out := b.String()
	if !strings.Contains(out, "predict.tolerr.synth count=2") {
		t.Errorf("missing synth line:\n%s", out)
	}
	// Sorted by name: place before synth.
	if strings.Index(out, "predict.tolerr.place") > strings.Index(out, "predict.tolerr.synth") {
		t.Errorf("histogram lines not sorted:\n%s", out)
	}
}

func TestValueHistConcurrent(t *testing.T) {
	var h ValueHist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1020; i++ { // 60 whole cycles of 0..16
				h.Observe(float64(i % 17))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot("x")
	if s.Count != 8160 {
		t.Fatalf("count = %d, want 8160", s.Count)
	}
	if s.Max != 16 {
		t.Errorf("max = %g, want 16", s.Max)
	}
	var want float64
	for i := 0; i < 17; i++ {
		want += float64(i)
	}
	want /= 17
	if math.Abs(s.Mean-want) > 1e-9 {
		t.Errorf("mean = %g, want %g (CAS-accumulated sum lost updates?)", s.Mean, want)
	}
}
