package metrics

import (
	"bytes"
	"testing"

	"repro/internal/cellib"
	"repro/internal/flow"
	"repro/internal/netlist"
)

func stepRecord(design string, seed int64, step string, opts flow.Options, m map[string]float64) flow.StepRecord {
	return flow.StepRecord{Design: design, RunSeed: seed, Step: step, Options: opts, Metrics: m}
}

func TestXMLRoundTrip(t *testing.T) {
	rec := FromStep(stepRecord("d", 7, "sta",
		flow.Options{TargetFreqGHz: 0.8, SynthEffort: 2},
		map[string]float64{"wns": -12.5, "maxfreq": 0.74}))
	rec.Series = []float64{3, 2, 1}
	data, err := EncodeXML(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != "d" || got.Step != "sta" || got.RunSeed != 7 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if v, ok := got.Metric("wns"); !ok || v != -12.5 {
		t.Fatalf("metric lost: %v %v", v, ok)
	}
	if v, ok := got.Option("target_freq_ghz"); !ok || v != 0.8 {
		t.Fatalf("option lost: %v %v", v, ok)
	}
	if len(got.Series) != 3 || got.Series[0] != 3 {
		t.Fatalf("series lost: %v", got.Series)
	}
	if _, ok := got.Metric("nope"); ok {
		t.Fatal("phantom metric")
	}
}

func TestStoreQuery(t *testing.T) {
	s := NewStore()
	s.Add(Record{Design: "a", Step: "synth"})
	s.Add(Record{Design: "a", Step: "sta"})
	s.Add(Record{Design: "b", Step: "sta"})
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	if got := len(s.Query(Filter{Design: "a"})); got != 2 {
		t.Fatalf("design filter got %d", got)
	}
	if got := len(s.Query(Filter{Step: "sta"})); got != 2 {
		t.Fatalf("step filter got %d", got)
	}
	if got := len(s.Query(Filter{Design: "b", Step: "sta"})); got != 1 {
		t.Fatalf("combined filter got %d", got)
	}
	if got := len(s.Query(Filter{})); got != 3 {
		t.Fatalf("open filter got %d", got)
	}
}

// fillStore simulates a few flow runs' records.
func fillStore(s *Store) {
	for i := 0; i < 6; i++ {
		seed := int64(i)
		freq := 0.3 + 0.1*float64(i)
		opts := flow.Options{TargetFreqGHz: freq}
		met := freq < 0.6 // runs above 0.6 GHz fail timing
		wns := 100 - 220*float64(i)*0.2
		if met {
			wns = 50
		} else {
			wns = -80
		}
		area := 400 + 100*freq
		s.Add(FromStep(stepRecord("core", seed, "synth", opts, map[string]float64{"area": area})))
		s.Add(FromStep(stepRecord("core", seed, "place", opts, map[string]float64{"hpwl": 900 - 10*float64(i)})))
		s.Add(FromStep(stepRecord("core", seed, "groute", opts, map[string]float64{"overflow": 3})))
		s.Add(FromStep(stepRecord("core", seed, "droute", opts, map[string]float64{"drvs": 20})))
		s.Add(FromStep(stepRecord("core", seed, "sta", opts, map[string]float64{"wns": wns, "maxfreq": 0.62})))
	}
}

func TestSummarize(t *testing.T) {
	s := NewStore()
	fillStore(s)
	sums := Summarize(s, "core")
	if len(sums) != 6 {
		t.Fatalf("%d summaries", len(sums))
	}
	for _, sum := range sums {
		if sum.AreaUm2 <= 0 || sum.FinalDRVs < 0 {
			t.Fatalf("incomplete summary %+v", sum)
		}
		if sum.Met != (sum.TimingMet && sum.RouteOK) {
			t.Fatal("Met flag inconsistent")
		}
	}
}

func TestMinerBestTargetFreq(t *testing.T) {
	s := NewStore()
	fillStore(s)
	m := Miner{Store: s}
	best, ok := m.BestTargetFreq("core")
	if !ok {
		t.Fatal("no met runs found")
	}
	if best < 0.49 || best > 0.6 {
		t.Fatalf("best target %v, want ~0.5 (last met run)", best)
	}
}

func TestMinerSensitivity(t *testing.T) {
	s := NewStore()
	fillStore(s)
	m := Miner{Store: s}
	corr, err := m.Sensitivity("synth", "target_freq_ghz", "area")
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.9 {
		t.Errorf("area grows with target in the fixture; corr = %v", corr)
	}
	if _, err := m.Sensitivity("synth", "nonexistent", "area"); err == nil {
		t.Error("missing option should error")
	}
}

func TestMinerPrescribeFreqRange(t *testing.T) {
	s := NewStore()
	fillStore(s)
	m := Miner{Store: s}
	lo, hi, err := m.PrescribeFreqRange("core")
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("range inverted: %v > %v", lo, hi)
	}
	if hi < 0.3 || lo > 1.2 {
		t.Errorf("prescribed range [%v, %v] implausible", lo, hi)
	}
}

func TestMinerSuggest(t *testing.T) {
	s := NewStore()
	fillStore(s)
	m := Miner{Store: s}
	next := m.Suggest("core", flow.Options{TargetFreqGHz: 0.4})
	if next.TargetFreqGHz < 0.4 {
		t.Errorf("with met runs at 0.5 and positive slack, suggestion %v should not regress", next.TargetFreqGHz)
	}
	// Unknown design: unchanged.
	same := m.Suggest("nope", flow.Options{TargetFreqGHz: 0.4})
	if same.TargetFreqGHz != 0.4 {
		t.Error("unknown design should leave options unchanged")
	}
}

func TestMinerSuggestBacksOffWhenNothingMet(t *testing.T) {
	s := NewStore()
	opts := flow.Options{TargetFreqGHz: 1.0}
	s.Add(FromStep(stepRecord("hard", 1, "sta", opts, map[string]float64{"wns": -200, "maxfreq": 0.5})))
	s.Add(FromStep(stepRecord("hard", 1, "droute", opts, map[string]float64{"drvs": 5000})))
	m := Miner{Store: s}
	next := m.Suggest("hard", opts)
	if next.TargetFreqGHz >= 1.0 {
		t.Errorf("all runs failed; suggestion %v should back off", next.TargetFreqGHz)
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tx := NewTransmitter("http://" + addr)
	design := netlist.Generate(cellib.Default14nm(), netlist.Tiny(1))
	flow.RunObserved(design, flow.Options{TargetFreqGHz: 0.35, Seed: 1}, tx)

	sent, failed := tx.Counts()
	if failed != 0 {
		t.Fatalf("%d transmissions failed", failed)
	}
	if sent != 6 {
		t.Fatalf("sent %d records, want 6 steps", sent)
	}
	if srv.Store.Len() != 6 {
		t.Fatalf("server stored %d", srv.Store.Len())
	}
	acc, rej := srv.Received()
	if acc != 6 || rej != 0 {
		t.Fatalf("server counters acc=%d rej=%d", acc, rej)
	}

	// Remote query path.
	recs, err := QueryRecords("http://"+addr, Filter{Step: "droute"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("queried %d droute records", len(recs))
	}
	if len(recs[0].Series) == 0 {
		t.Error("DRV series lost over the wire")
	}

	// Mining on the server-side store works end to end.
	m := Miner{Store: srv.Store}
	if _, err := m.Sensitivity("sta", "target_freq_ghz", "wns"); err == nil {
		t.Log("sensitivity available with single run (unexpected but harmless)")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tx := NewTransmitter("http://" + addr)
	// Valid transmit.
	if err := tx.Transmit(Record{Design: "x", Step: "synth"}); err != nil {
		t.Fatal(err)
	}
	// Garbage post.
	resp, err := tx.Client.Post(tx.URL+"/collect", "application/xml", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 202 {
		t.Error("empty body should be rejected")
	}
	_, rej := srv.Received()
	if rej == 0 {
		t.Error("rejection not counted")
	}
}

func TestStoreJSONRoundTrip(t *testing.T) {
	s := NewStore()
	fillStore(s)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d of %d records", loaded.Len(), s.Len())
	}
	// Mining works identically on the restored store.
	a, _ := Miner{Store: s}.BestTargetFreq("core")
	b, _ := Miner{Store: loaded}.BestTargetFreq("core")
	if a != b {
		t.Fatalf("mining diverged after round trip: %v vs %v", a, b)
	}
	if err := loaded.ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Error("garbage JSON should error")
	}
}
