package metrics

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServerStartServeCloseRace is the shutdown-ordering regression
// test: requests in flight while Close runs must never observe a nil
// listener or store, Close must be idempotent, and Start after Close
// must fail instead of leaking a listener.
func TestServerStartServeCloseRace(t *testing.T) {
	for iter := 0; iter < 15; iter++ {
		srv := NewServer(nil)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					// Errors are expected once Close wins the race; the
					// assertion is "no panic, no race", enforced by -race.
					resp, err := http.Get("http://" + addr + "/stats")
					if err != nil {
						return
					}
					resp.Body.Close()
					resp, err = http.Post("http://"+addr+"/collect", "application/xml",
						strings.NewReader("not-xml"))
					if err != nil {
						return
					}
					resp.Body.Close()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close() //nolint:errcheck
		}()
		wg.Wait()
		if err := srv.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
		if _, err := srv.Start("127.0.0.1:0"); err == nil {
			t.Fatal("start after close succeeded")
		}
	}
	// Close before Start is a no-op, not a panic.
	s := NewServer(nil)
	if err := s.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("start after early close succeeded")
	}
}

// blockingRunner runs campaigns that block until released (or their
// context dies), reporting nPoints points on release.
type blockingRunner struct {
	nPoints int

	mu      sync.Mutex
	started []string // tenant order of started campaigns
	release chan struct{}
}

func newBlockingRunner(nPoints int) *blockingRunner {
	return &blockingRunner{nPoints: nPoints, release: make(chan struct{})}
}

func (b *blockingRunner) RunCampaign(ctx context.Context, spec json.RawMessage, onPoint func(int, int)) (json.RawMessage, error) {
	var s struct {
		Tenant string `json:"tenant"`
	}
	json.Unmarshal(spec, &s) //nolint:errcheck
	b.mu.Lock()
	b.started = append(b.started, s.Tenant)
	b.mu.Unlock()
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	for i := 0; i < b.nPoints; i++ {
		onPoint(i, b.nPoints)
	}
	return json.RawMessage(`{"ok":true}`), nil
}

func (b *blockingRunner) startedTenants() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.started...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFrontDoorSubmitStatusStream drives the full lifecycle over HTTP:
// submit, status polling, and the SSE stream through to the terminal
// event.
func TestFrontDoorSubmitStatusStream(t *testing.T) {
	runner := newBlockingRunner(3)
	fd := NewFrontDoor(runner, 1, 8)
	srv := NewServer(nil)
	srv.FrontDoor = fd
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	body, _ := json.Marshal(map[string]any{"tenant": "t1", "spec": map[string]any{"tenant": "t1"}})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status := func() CampaignStatus {
		resp, err := http.Get(base + "/v1/campaigns/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st CampaignStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	waitFor(t, "campaign running", func() bool { return status().State == StateRunning })

	// Open the stream while running, then release the runner and read
	// through to the terminal event.
	sresp, err := http.Get(base + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	close(runner.release)

	var events []CampaignEvent
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev CampaignEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("stream did not end at done: %+v", last)
	}
	points := 0
	for _, ev := range events {
		if ev.Type == "point" {
			points++
		}
	}
	if points != 3 {
		t.Fatalf("streamed %d point events, want 3", points)
	}

	st := status()
	if st.State != StateDone || st.Completed != 3 || string(st.Summary) != `{"ok":true}` {
		t.Fatalf("final status: %+v", st)
	}

	// The list endpoint sees it too.
	lresp, err := http.Get(base + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []CampaignStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list: %+v", list)
	}
}

// TestFrontDoorAdmissionAndFairShare: MaxQueue rejects with 429, and a
// freed slot goes to the tenant with the least weighted usage.
func TestFrontDoorAdmissionAndFairShare(t *testing.T) {
	runner := newBlockingRunner(0)
	fd := NewFrontDoor(runner, 2, 2)
	defer fd.Close()

	spec := func(tenant string) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"tenant":%q}`, tenant))
	}
	// Tenant a submits three campaigns, tenant b one. Slots=2: a's
	// first starts, then fair share must start b's ahead of a's second.
	if _, err := fd.Submit("a", spec("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first campaign running", func() bool { return len(runner.startedTenants()) == 1 })
	if _, err := fd.Submit("a", spec("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Submit("b", spec("b")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second campaign running", func() bool { return len(runner.startedTenants()) == 2 })
	if got := runner.startedTenants(); got[1] != "b" {
		t.Fatalf("fair share violated: started order %v, want b second", got)
	}

	// One a-campaign still queued; queue cap 2 leaves room for one more.
	if _, err := fd.Submit("c", spec("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Submit("d", spec("d")); err != errQueueFull {
		t.Fatalf("over-quota submit: %v, want errQueueFull", err)
	}

	close(runner.release)
	waitFor(t, "all campaigns done", func() bool {
		for _, st := range fd.List() {
			if st.State != StateDone {
				return false
			}
		}
		return true
	})
	if n := len(runner.startedTenants()); n != 4 {
		t.Fatalf("ran %d campaigns, want 4", n)
	}
}

// TestFrontDoorCloseUnblocksStreams: closing the server cancels running
// campaigns and ends open event streams instead of hanging Close.
func TestFrontDoorCloseUnblocksStreams(t *testing.T) {
	runner := newBlockingRunner(0) // never released: only ctx ends it
	fd := NewFrontDoor(runner, 1, 8)
	srv := NewServer(nil)
	srv.FrontDoor = fd
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	id, err := fd.Submit("t", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "campaign running", func() bool {
		st, _ := fd.Status(id)
		return st.State == StateRunning
	})
	sresp, err := http.Get("http://" + addr + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an open stream")
	}
	st, _ := fd.Status(id)
	if st.State != StateFailed {
		t.Fatalf("campaign state after shutdown: %s, want failed", st.State)
	}
	if _, err := fd.Submit("t", json.RawMessage(`{}`)); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
