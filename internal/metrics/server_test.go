package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + addr
}

// A rejected record must 400, be counted in the registry, and show up
// identically in Received(), /stats, and /metrics — the point of
// registering the counters instead of keeping loose atomics.
func TestServerRejectedRecordCounted(t *testing.T) {
	srv, base := startServer(t)

	resp, err := http.Post(base+"/collect", "application/xml", strings.NewReader("<not-a-record"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage record: got %d, want 400", resp.StatusCode)
	}

	acc, rej := srv.Received()
	if acc != 0 || rej != 1 {
		t.Fatalf("Received() = (%d, %d), want (0, 1)", acc, rej)
	}
	if got := srv.Reg.Get("metrics.server.record.rejected"); got != 1 {
		t.Fatalf("registry counter = %d, want 1", got)
	}

	for _, path := range []string{"/stats", "/metrics"} {
		code, _, body := get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		if !strings.Contains(body, "metrics.server.record.rejected 1") {
			t.Errorf("%s does not expose the rejected counter:\n%s", path, body)
		}
	}
}

func TestMetricsEndpointExposesCountersAndHistograms(t *testing.T) {
	srv, base := startServer(t)

	tr := trace.New(0)
	srv.Trace = tr
	_, sp := tr.StartOn(context.Background(), "unit.test.op")
	sp.End()

	rec := Record{Design: "d", Step: "synth", RunSeed: 1, Metrics: []KV{{Name: "wns", Value: 1}}}
	data, err := EncodeXML(rec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/collect", "application/xml", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("collect: %d", resp.StatusCode)
	}

	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "metrics.server.record.received 1") {
		t.Errorf("/metrics missing received counter:\n%s", body)
	}
	if !strings.Contains(body, "unit.test.op count=1") {
		t.Errorf("/metrics missing span histogram:\n%s", body)
	}
}

func TestDebugSpansEndpoint(t *testing.T) {
	srv, base := startServer(t)

	// No tracer at all: valid JSON, enabled=false.
	srv.Trace = nil
	if trace.Active() == nil {
		code, ctype, body := get(t, base+"/debug/spans")
		if code != http.StatusOK {
			t.Fatalf("/debug/spans (off): status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("/debug/spans content type %q", ctype)
		}
		var off struct {
			Enabled bool `json:"enabled"`
		}
		if err := json.Unmarshal([]byte(body), &off); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		if off.Enabled {
			t.Fatal("enabled=true with no tracer")
		}
	}

	tr := trace.New(0)
	srv.Trace = tr
	pctx, parent := tr.StartOn(context.Background(), "server.test.parent") // stays live
	for i := 0; i < 5; i++ {
		_, sp := tr.StartOn(pctx, fmt.Sprintf("server.test.child%d", i))
		sp.Set("k", "v")
		sp.End()
	}

	code, _, body := get(t, base+"/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans: status %d", code)
	}
	var resp struct {
		Enabled bool `json:"enabled"`
		Live    []struct {
			ID   uint64  `json:"id"`
			Name string  `json:"name"`
			Age  float64 `json:"age_us"`
		} `json:"live"`
		Done []struct {
			Parent  uint64            `json:"parent"`
			Name    string            `json:"name"`
			Outcome string            `json:"outcome"`
			Attrs   map[string]string `json:"attrs"`
		} `json:"done"`
		Dropped int64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !resp.Enabled {
		t.Fatal("enabled=false with armed tracer")
	}
	if len(resp.Live) != 1 || resp.Live[0].Name != "server.test.parent" {
		t.Fatalf("live spans = %+v, want the one in-flight parent", resp.Live)
	}
	if len(resp.Done) != 5 {
		t.Fatalf("done spans = %d, want 5", len(resp.Done))
	}
	for _, d := range resp.Done {
		if d.Parent != resp.Live[0].ID {
			t.Errorf("span %s parent %d, want %d", d.Name, d.Parent, resp.Live[0].ID)
		}
		if d.Outcome != "ok" || d.Attrs["k"] != "v" {
			t.Errorf("span %s outcome/attrs wrong: %+v", d.Name, d)
		}
	}

	// ?n= trims to the most recent finished spans and counts the rest
	// as dropped-from-view.
	code, _, body = get(t, base+"/debug/spans?n=2")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans?n=2: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Done) != 2 || resp.Dropped != 3 {
		t.Fatalf("n=2: done=%d dropped=%d, want 2/3", len(resp.Done), resp.Dropped)
	}
	parent.End()
}

// /debug/hist must stay consistent (bucket sums match counts) while
// writers are hammering the tracer.
func TestDebugHistUnderWriters(t *testing.T) {
	srv, base := startServer(t)
	tr := trace.New(0)
	srv.Trace = tr

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, sp := tr.StartOn(context.Background(), "server.test.load")
					sp.End()
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		code, ctype, body := get(t, base+"/debug/hist")
		if code != http.StatusOK {
			t.Fatalf("/debug/hist: status %d", code)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("/debug/hist content type %q", ctype)
		}
		if i > 5 && !strings.Contains(body, "server.test.load") {
			t.Errorf("iter %d: histogram line missing:\n%s", i, body)
		}
	}
	close(stop)
	wg.Wait()

	for _, h := range tr.Histograms().Snapshots() {
		var sum int64
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if sum != h.Count {
			t.Errorf("%s: bucket sum %d != count %d", h.Name, sum, h.Count)
		}
	}
}

func TestDebugPprofEndpoint(t *testing.T) {
	_, base := startServer(t)
	code, _, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles list:\n%.200s", body)
	}
	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}
}
