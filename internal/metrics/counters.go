package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters is a registry of named monotonic counters and gauges — the
// operational side of the METRICS idea applied to the reproduction's own
// infrastructure (campaign cache hits, pool contention, ...), as opposed
// to the per-step design records the Store holds. It is safe for
// concurrent use; counter increments are a single atomic add.
//
// Naming scheme: `subsystem.noun.verb` (or `subsystem.noun.noun` for
// gauges) — e.g. campaign.cache.hit, campaign.point.retried,
// journal.append.ok, sched.queue.depth — so WritePrefix("campaign.")
// captures everything campaign-related and dashboards group by the
// first two segments. New counters must follow it.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// NewCounters creates an empty registry.
func NewCounters() *Counters {
	return &Counters{m: map[string]*atomic.Int64{}}
}

// Counter returns the named counter, registering it on first use.
func (c *Counters) Counter(name string) *atomic.Int64 {
	c.mu.RLock()
	v, ok := c.m[name]
	c.mu.RUnlock()
	if ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok = c.m[name]; !ok {
		v = &atomic.Int64{}
		c.m[name] = v
	}
	return v
}

// Add increments the named counter.
func (c *Counters) Add(name string, delta int64) { c.Counter(name).Add(delta) }

// Set stores an absolute value — gauge semantics, for values that are
// levels rather than event counts (queue depth, pool peaks).
func (c *Counters) Set(name string, value int64) { c.Counter(name).Store(value) }

// Get returns the current value of a counter (0 if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.RLock()
	v, ok := c.m[name]
	c.mu.RUnlock()
	if !ok {
		return 0
	}
	return v.Load()
}

// Snapshot returns all counters as a name->value map.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// Write renders the counters in sorted order, one "name value" per line.
func (c *Counters) Write(w io.Writer) {
	c.WritePrefix(w, "")
}

// WritePrefix renders the counters whose names start with prefix, in
// sorted order, one "name value" per line — how a CLI reports one
// subsystem's counters (say, campaign.journal.*) without dumping the
// whole registry. An empty prefix renders everything.
func (c *Counters) WritePrefix(w io.Writer, prefix string) {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, prefix) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%s %d\n", k, snap[k])
	}
}

// Default is the process-wide registry. Infrastructure that has no
// natural place to thread an explicit registry through (the campaign
// memo cache, the license pool) reports here, and the METRICS server
// exposes it on /stats.
var Default = NewCounters()

// Add increments a counter on the Default registry.
func Add(name string, delta int64) { Default.Add(name, delta) }

// Set stores a gauge value on the Default registry.
func Set(name string, value int64) { Default.Set(name, value) }

// Get reads a counter from the Default registry.
func Get(name string) int64 { return Default.Get(name) }
