package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("a", 1)
				c.Add("b", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("a"); got != 800 {
		t.Errorf("a = %d", got)
	}
	if got := c.Get("b"); got != 1600 {
		t.Errorf("b = %d", got)
	}
	if got := c.Get("never"); got != 0 {
		t.Errorf("untouched counter = %d", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["a"] != 800 {
		t.Errorf("snapshot %v", snap)
	}
}

func TestCountersWriteSorted(t *testing.T) {
	c := NewCounters()
	c.Add("zeta", 1)
	c.Add("alpha", 5)
	var buf bytes.Buffer
	c.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "alpha 5") || !strings.Contains(out, "zeta 1") {
		t.Fatalf("output %q", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Error("counters not sorted")
	}
}

func TestCountersWritePrefix(t *testing.T) {
	c := NewCounters()
	c.Add("journal.append.ok", 3)
	c.Add("journal.sync.ok", 2)
	c.Add("cache.hit", 9)
	var buf bytes.Buffer
	c.WritePrefix(&buf, "journal.")
	if got, want := buf.String(), "journal.append.ok 3\njournal.sync.ok 2\n"; got != want {
		t.Fatalf("WritePrefix = %q, want %q", got, want)
	}
	buf.Reset()
	c.WritePrefix(&buf, "")
	if got := buf.String(); !strings.Contains(got, "cache.hit 9") {
		t.Fatalf("empty prefix dropped counters: %q", got)
	}
}
