package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sched"
)

// CampaignRunner executes one submitted campaign. The front door is
// deliberately ignorant of flows and netlists — the spec is opaque JSON
// the runner parses, and the concrete runner (a local sweep, a dist
// coordinator) is injected by the binary that owns the server. onPoint
// is called as points complete so the front door can stream progress.
type CampaignRunner interface {
	RunCampaign(ctx context.Context, spec json.RawMessage, onPoint func(index, total int)) (summary json.RawMessage, err error)
}

// RunnerFunc adapts a function to CampaignRunner.
type RunnerFunc func(ctx context.Context, spec json.RawMessage, onPoint func(index, total int)) (json.RawMessage, error)

// RunCampaign implements CampaignRunner.
func (f RunnerFunc) RunCampaign(ctx context.Context, spec json.RawMessage, onPoint func(index, total int)) (json.RawMessage, error) {
	return f(ctx, spec, onPoint)
}

// Campaign states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// CampaignStatus is the externally visible state of one submission.
type CampaignStatus struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	State     string          `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started,omitzero"`
	Finished  time.Time       `json:"finished,omitzero"`
	Points    int             `json:"points,omitempty"`
	Completed int             `json:"completed,omitempty"`
	Error     string          `json:"error,omitempty"`
	Summary   json.RawMessage `json:"summary,omitempty"`
}

// CampaignEvent is one SSE stream event: a state transition or a point
// completion.
type CampaignEvent struct {
	CampaignID string `json:"campaign_id"`
	Type       string `json:"type"` // "state" | "point"
	State      string `json:"state,omitempty"`
	Point      int    `json:"point,omitempty"`
	Total      int    `json:"total,omitempty"`
	Completed  int    `json:"completed,omitempty"`
	Error      string `json:"error,omitempty"`
}

// campaign is the front door's internal record.
type campaign struct {
	status CampaignStatus
	spec   json.RawMessage
	subs   map[chan CampaignEvent]bool
}

// FrontDoor is the campaign-as-a-service submission surface mounted on
// the METRICS server:
//
//	POST /v1/campaigns             submit {tenant, spec}; 429 over quota
//	GET  /v1/campaigns             all campaigns, newest first
//	GET  /v1/campaigns/{id}        one campaign's status
//	GET  /v1/campaigns/{id}/events SSE stream of point completions and
//	                               state transitions, ending at a
//	                               terminal state
//
// Admission control is two-layer: MaxQueue bounds accepted-but-unstarted
// work (beyond it, submits are rejected, not buffered), and Slots bounds
// concurrently running campaigns, arbitrated across tenants by a
// sched.Ledger — the tenant with the least weighted usage starts next,
// deterministically, so one chatty tenant cannot starve the rest.
type FrontDoor struct {
	// Runner executes campaigns (required).
	Runner CampaignRunner
	// Slots bounds concurrently running campaigns (<=0 = 1).
	Slots int
	// MaxQueue bounds queued campaigns (<=0 = 16).
	MaxQueue int
	// Weights sets per-tenant fair-share weights (default 1 each).
	Weights map[string]int

	mu        sync.Mutex
	cond      *sync.Cond
	ledger    *sched.Ledger
	campaigns map[string]*campaign
	order     []string            // submission order, for listing
	queues    map[string][]string // per-tenant FIFO of queued IDs
	queued    int
	nextID    int
	closed    bool
	cancel    context.CancelFunc
	done      chan struct{}
	running   sync.WaitGroup
}

// NewFrontDoor builds a front door and starts its dispatcher.
func NewFrontDoor(runner CampaignRunner, slots, maxQueue int) *FrontDoor {
	if slots <= 0 {
		slots = 1
	}
	if maxQueue <= 0 {
		maxQueue = 16
	}
	fd := &FrontDoor{
		Runner: runner, Slots: slots, MaxQueue: maxQueue,
		ledger:    sched.NewLedger(slots),
		campaigns: map[string]*campaign{},
		queues:    map[string][]string{},
		done:      make(chan struct{}),
	}
	fd.cond = sync.NewCond(&fd.mu)
	ctx, cancel := context.WithCancel(context.Background())
	fd.cancel = cancel
	go fd.dispatch(ctx)
	return fd
}

// Close stops the dispatcher, cancels running campaigns, and wakes
// every stream so handler goroutines drain. Idempotent.
func (fd *FrontDoor) Close() {
	fd.mu.Lock()
	if fd.closed {
		fd.mu.Unlock()
		return
	}
	fd.closed = true
	close(fd.done)
	fd.cond.Broadcast()
	fd.mu.Unlock()
	fd.cancel()
	fd.running.Wait()
}

// mount registers the endpoints (called by Server.Start).
func (fd *FrontDoor) mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/campaigns", fd.handleCampaigns)
	mux.HandleFunc("/v1/campaigns/", fd.handleCampaign)
}

// submitRequest is the POST /v1/campaigns body.
type submitRequest struct {
	Tenant string          `json:"tenant"`
	Spec   json.RawMessage `json:"spec"`
}

// Submit queues one campaign and returns its ID.
func (fd *FrontDoor) Submit(tenant string, spec json.RawMessage) (string, error) {
	if tenant == "" {
		tenant = "default"
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return "", fmt.Errorf("metrics: front door is closed")
	}
	if fd.queued >= fd.MaxQueue {
		Add("metrics.frontdoor.rejected", 1)
		return "", errQueueFull
	}
	fd.nextID++
	id := fmt.Sprintf("c-%d", fd.nextID)
	c := &campaign{
		status: CampaignStatus{
			ID: id, Tenant: tenant, State: StateQueued, Submitted: time.Now(),
		},
		spec: spec,
		subs: map[chan CampaignEvent]bool{},
	}
	if w := fd.Weights[tenant]; w > 0 {
		fd.ledger.SetWeight(tenant, w)
	}
	fd.campaigns[id] = c
	fd.order = append(fd.order, id)
	fd.queues[tenant] = append(fd.queues[tenant], id)
	fd.queued++
	Add("metrics.frontdoor.submitted", 1)
	fd.cond.Broadcast()
	return id, nil
}

var errQueueFull = fmt.Errorf("metrics: campaign queue is full")

// Status returns one campaign's status.
func (fd *FrontDoor) Status(id string) (CampaignStatus, bool) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	c, ok := fd.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	return c.status, true
}

// List returns every campaign's status, newest first.
func (fd *FrontDoor) List() []CampaignStatus {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	out := make([]CampaignStatus, 0, len(fd.order))
	for i := len(fd.order) - 1; i >= 0; i-- {
		out = append(out, fd.campaigns[fd.order[i]].status)
	}
	return out
}

// dispatch is the admission loop: whenever a slot is free and work is
// queued, the fair-share pick among tenants with queued campaigns
// starts next.
func (fd *FrontDoor) dispatch(ctx context.Context) {
	for {
		fd.mu.Lock()
		var c *campaign
		for {
			if fd.closed {
				fd.mu.Unlock()
				return
			}
			if c = fd.pickLocked(); c != nil {
				break
			}
			fd.cond.Wait()
		}
		c.status.State = StateRunning
		c.status.Started = time.Now()
		fd.queued--
		fd.mu.Unlock()
		fd.emit(c.status.ID, CampaignEvent{Type: "state", State: StateRunning})
		Add("metrics.frontdoor.started", 1)

		fd.running.Add(1)
		go func(c *campaign) {
			defer fd.running.Done()
			fd.run(ctx, c)
		}(c)
	}
}

// pickLocked chooses the next campaign to start, or nil when no slot is
// free or nothing is queued. Caller holds fd.mu.
func (fd *FrontDoor) pickLocked() *campaign {
	tenants := make([]string, 0, len(fd.queues))
	for t, q := range fd.queues {
		if len(q) > 0 {
			tenants = append(tenants, t)
		}
	}
	if len(tenants) == 0 {
		return nil
	}
	sort.Strings(tenants)
	tenant, ok := fd.ledger.PickFair(tenants)
	if !ok || !fd.ledger.TryGrant(tenant) {
		return nil // every slot is busy; a Release will broadcast
	}
	id := fd.queues[tenant][0]
	fd.queues[tenant] = fd.queues[tenant][1:]
	return fd.campaigns[id]
}

// run executes one admitted campaign and settles its terminal state.
func (fd *FrontDoor) run(ctx context.Context, c *campaign) {
	id, tenant := c.status.ID, c.status.Tenant
	onPoint := func(index, total int) {
		fd.mu.Lock()
		c.status.Points = total
		c.status.Completed++
		completed := c.status.Completed
		fd.mu.Unlock()
		fd.emit(id, CampaignEvent{Type: "point", Point: index, Total: total, Completed: completed})
	}
	summary, err := fd.Runner.RunCampaign(ctx, c.spec, onPoint)

	fd.mu.Lock()
	c.status.Finished = time.Now()
	if err != nil {
		c.status.State = StateFailed
		c.status.Error = err.Error()
	} else {
		c.status.State = StateDone
		c.status.Summary = summary
	}
	state, errText := c.status.State, c.status.Error
	fd.mu.Unlock()
	if err != nil {
		Add("metrics.frontdoor.failed", 1)
	} else {
		Add("metrics.frontdoor.done", 1)
	}
	fd.emit(id, CampaignEvent{Type: "state", State: state, Error: errText})
	fd.ledger.Release(tenant)
	fd.mu.Lock()
	fd.cond.Broadcast() // a slot freed; the dispatcher may start the next
	fd.mu.Unlock()
}

// emit fans one event out to a campaign's subscribers. Slow consumers
// drop events rather than block the campaign (the status endpoint is
// the lossless view).
func (fd *FrontDoor) emit(id string, ev CampaignEvent) {
	ev.CampaignID = id
	fd.mu.Lock()
	defer fd.mu.Unlock()
	c, ok := fd.campaigns[id]
	if !ok {
		return
	}
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
			Add("metrics.frontdoor.event_dropped", 1)
		}
	}
}

// subscribe registers an event channel for a campaign; the returned
// cancel must be called by the stream handler.
func (fd *FrontDoor) subscribe(id string) (ch chan CampaignEvent, status CampaignStatus, ok bool, cancel func()) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	c, found := fd.campaigns[id]
	if !found {
		return nil, CampaignStatus{}, false, nil
	}
	ch = make(chan CampaignEvent, 256)
	c.subs[ch] = true
	return ch, c.status, true, func() {
		fd.mu.Lock()
		delete(c.subs, ch)
		fd.mu.Unlock()
	}
}

func (fd *FrontDoor) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req submitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := fd.Submit(req.Tenant, req.Spec)
		switch {
		case err == errQueueFull:
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id}) //nolint:errcheck
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fd.List()) //nolint:errcheck
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

func (fd *FrontDoor) handleCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/")
	if id, ok := strings.CutSuffix(rest, "/events"); ok {
		fd.handleEvents(w, r, strings.TrimSuffix(id, "/"))
		return
	}
	st, ok := fd.Status(rest)
	if !ok {
		http.Error(w, "no such campaign", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

// handleEvents is the SSE stream: current state first, then live
// events, ending at a terminal state or server shutdown (so Close never
// hangs on an open stream).
func (fd *FrontDoor) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	ch, st, ok, cancel := fd.subscribe(id)
	if !ok {
		http.Error(w, "no such campaign", http.StatusNotFound)
		return
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	writeEvent := func(ev CampaignEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return ev.Type != "state" || (ev.State != StateDone && ev.State != StateFailed)
	}
	if !writeEvent(CampaignEvent{CampaignID: id, Type: "state", State: st.State, Error: st.Error}) {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-fd.done:
			return
		}
	}
}
