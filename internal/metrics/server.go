package metrics

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/trace"
)

// Server is the METRICS collection server: it accepts XML records over
// HTTP and serves queries — the central box of Fig. 11. (The original
// used Java servlets and EJB; "reimplementing METRICS with today's
// commodity networking ... will be much simpler", and it is.)
//
// Beyond record collection it is the live introspection surface of a
// running campaign:
//
//	/stats        legacy one-line summary + counter dump
//	/metrics      plain-text exposition of every counter and latency
//	              histogram (one "name value" / histogram line each)
//	/debug/spans  JSON snapshot of the armed tracer: in-flight spans
//	              (what the campaign is doing right now) and recent
//	              finished spans
//	/debug/hist   plain-text per-span-name latency quantiles
//	/debug/pprof  the standard net/http/pprof handlers
type Server struct {
	Store *Store

	// Reg is the server's own counter registry (accepted/rejected
	// records live here, so counter dumps and Received always agree).
	// NewServer creates a fresh one; the /metrics and /stats endpoints
	// render it alongside the process-wide Default registry.
	Reg *Counters

	// Trace overrides the tracer the /debug endpoints introspect
	// (default: whatever tracer is armed process-wide at request time).
	Trace *trace.Tracer

	// FrontDoor, when non-nil, mounts the campaign submission service
	// (/v1/campaigns...) on this server. Set it before Start.
	FrontDoor *FrontDoor

	// Aux mounts extra handlers by pattern before Start — how the span
	// collector ("/v1/spans") and the METRICS warehouse ("/warehouse/")
	// ride on this server without this package importing them.
	Aux map[string]http.Handler

	// mu guards the serve/close lifecycle so Start, Close and in-flight
	// handlers can race freely: Close is idempotent, Start after Close
	// fails instead of leaking a listener, and a handler that runs
	// during Close still sees the non-nil Store and Reg it started with.
	mu       sync.Mutex
	closed   bool
	httpSrv  *http.Server
	listener net.Listener
}

// Counter names for the collection path, registered in Server.Reg per
// the subsystem.noun.verb scheme.
const (
	counterReceived = "metrics.server.record.received"
	counterRejected = "metrics.server.record.rejected"
)

// NewServer creates a server around a store (a fresh store if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{Store: store, Reg: NewCounters()}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("metrics: server is closed")
	}
	if s.httpSrv != nil {
		return "", fmt.Errorf("metrics: server already started")
	}
	// Guard the zero-value Server: handlers must never see a nil store
	// or registry, no matter how the struct was built.
	if s.Store == nil {
		s.Store = NewStore()
	}
	if s.Reg == nil {
		s.Reg = NewCounters()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/collect", s.handleCollect)
	mux.HandleFunc("/records", s.handleRecords)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/spans", s.handleSpans)
	mux.HandleFunc("/debug/hist", s.handleHist)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.FrontDoor != nil {
		s.FrontDoor.mount(mux)
	}
	for pattern, h := range s.Aux {
		mux.Handle(pattern, h)
	}
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close shuts the server down: the front door first (its streams and
// dispatcher hold handler goroutines open), then the HTTP server.
// Idempotent, and safe to race with Start and with in-flight requests —
// a Close that wins the race leaves Start returning an error rather
// than a leaked listener.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	srv, fd := s.httpSrv, s.FrontDoor
	s.mu.Unlock()
	if fd != nil {
		fd.Close()
	}
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// Received reports how many records were accepted and how many
// rejected, reading the same registry counters the dumps render.
func (s *Server) Received() (accepted, rejected int64) {
	return s.Reg.Get(counterReceived), s.Reg.Get(counterRejected)
}

// tracer resolves the tracer the /debug endpoints introspect.
func (s *Server) tracer() *trace.Tracer {
	if s.Trace != nil {
		return s.Trace
	}
	return trace.Active()
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.Reg.Add(counterRejected, 1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, err := DecodeXML(body)
	if err != nil {
		s.Reg.Add(counterRejected, 1)
		http.Error(w, fmt.Sprintf("bad record: %v", err), http.StatusBadRequest)
		return
	}
	s.Store.Add(rec)
	s.Reg.Add(counterReceived, 1)
	w.WriteHeader(http.StatusAccepted)
}

// recordList wraps query results for XML responses.
type recordList struct {
	XMLName xml.Name `xml:"records"`
	Records []Record `xml:"record"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	f := Filter{
		Design: r.URL.Query().Get("design"),
		Step:   r.URL.Query().Get("step"),
	}
	out, err := xml.Marshal(recordList{Records: s.Store.Query(f)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(out) //nolint:errcheck
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	acc, rej := s.Received()
	fmt.Fprintf(w, "records=%d accepted=%d rejected=%d\n", s.Store.Len(), acc, rej)
	// Server-local + process-wide infrastructure counters.
	s.Reg.Write(w)
	Default.Write(w)
}

// handleMetrics is the plain-text exposition endpoint: every counter
// ("name value" per line, server registry first, then the process-wide
// Default), the process-wide value histograms (predictor tolerance
// errors and friends), and finally the armed tracer's latency
// histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.Reg.Write(w)
	Default.Write(w)
	DefaultHists.Write(w)
	if t := s.tracer(); t != nil {
		t.Histograms().Write(w)
	}
}

// spansResponse is the /debug/spans JSON shape.
type spansResponse struct {
	Enabled bool       `json:"enabled"`
	Live    []liveSpan `json:"live,omitempty"`
	Done    []doneSpan `json:"done,omitempty"`
	Dropped int64      `json:"dropped,omitempty"`
}

type liveSpan struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	AgeUs  float64 `json:"age_us"`
}

type doneSpan struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUs float64           `json:"start_us"`
	DurUs   float64           `json:"dur_us"`
	Outcome string            `json:"outcome"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// handleSpans is the live campaign introspection endpoint: the armed
// tracer's in-flight spans (oldest first — a wedged stage shows up at
// the top with a growing age) plus up to ?n= most recent finished
// spans (default 100).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	t := s.tracer()
	if t == nil {
		json.NewEncoder(w).Encode(spansResponse{Enabled: false}) //nolint:errcheck
		return
	}
	limit := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n >= 0 {
			limit = n
		}
	}
	resp := spansResponse{Enabled: true}
	for _, ls := range t.Live() {
		resp.Live = append(resp.Live, liveSpan{
			ID: ls.ID, Parent: ls.Parent, Name: ls.Name,
			AgeUs: float64(ls.Age.Nanoseconds()) / 1e3,
		})
	}
	done, dropped := t.Snapshot()
	resp.Dropped = dropped
	if len(done) > limit {
		resp.Dropped += int64(len(done) - limit)
		done = done[len(done)-limit:] // keep the most recent
	}
	for _, sd := range done {
		ds := doneSpan{
			ID: sd.ID, Parent: sd.Parent, Name: sd.Name,
			StartUs: float64(sd.Start.Nanoseconds()) / 1e3,
			DurUs:   float64(sd.Dur.Nanoseconds()) / 1e3,
			Outcome: string(sd.Outcome),
		}
		if len(sd.Attrs) > 0 {
			ds.Attrs = make(map[string]string, len(sd.Attrs))
			for _, a := range sd.Attrs {
				ds.Attrs[a.Key] = a.Val
			}
		}
		resp.Done = append(resp.Done, ds)
	}
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// handleHist renders the process-wide value histograms (per-stage
// predictor tolerance errors live here) followed by the armed tracer's
// per-span-name latency histograms as plain text.
func (s *Server) handleHist(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	DefaultHists.Write(w)
	t := s.tracer()
	if t == nil {
		fmt.Fprintln(w, "# tracing off (run with -trace or trace.Enable)")
		return
	}
	t.Histograms().Write(w)
}

// Transmitter posts records to a METRICS server as XML over HTTP — the
// wrapper/API side of Fig. 11. It implements flow.Observer so a flow can
// be instrumented by passing it to flow.RunObserved.
type Transmitter struct {
	URL    string // e.g. "http://127.0.0.1:port"
	Client *http.Client

	sent   atomic.Int64
	failed atomic.Int64
}

// NewTransmitter creates a transmitter for a server base URL.
func NewTransmitter(baseURL string) *Transmitter {
	return &Transmitter{URL: baseURL, Client: &http.Client{}}
}

// Transmit sends one record.
func (t *Transmitter) Transmit(rec Record) error {
	sp := trace.Begin("metrics.transmit")
	err := t.transmit(rec)
	sp.EndErr(err)
	return err
}

func (t *Transmitter) transmit(rec Record) error {
	data, err := EncodeXML(rec)
	if err != nil {
		t.failed.Add(1)
		return err
	}
	resp, err := t.Client.Post(t.URL+"/collect", "application/xml", bytes.NewReader(data))
	if err != nil {
		t.failed.Add(1)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusAccepted {
		t.failed.Add(1)
		return fmt.Errorf("metrics: server returned %s", resp.Status)
	}
	t.sent.Add(1)
	return nil
}

// OnStep implements flow.Observer: each step record is converted and
// transmitted; failures are counted, not fatal (collection must never
// break the flow).
func (t *Transmitter) OnStep(rec flow.StepRecord) {
	t.Transmit(FromStep(rec)) //nolint:errcheck
}

// Counts reports transmitted and failed record counts.
func (t *Transmitter) Counts() (sent, failed int64) {
	return t.sent.Load(), t.failed.Load()
}

// QueryRecords fetches records from a server over HTTP.
func QueryRecords(baseURL string, f Filter) ([]Record, error) {
	url := fmt.Sprintf("%s/records?design=%s&step=%s", baseURL, f.Design, f.Step)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var list recordList
	if err := xml.Unmarshal(body, &list); err != nil {
		return nil, err
	}
	return list.Records, nil
}
