package metrics

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"

	"repro/internal/flow"
)

// Server is the METRICS collection server: it accepts XML records over
// HTTP and serves queries — the central box of Fig. 11. (The original
// used Java servlets and EJB; "reimplementing METRICS with today's
// commodity networking ... will be much simpler", and it is.)
type Server struct {
	Store *Store

	httpSrv  *http.Server
	listener net.Listener
	received atomic.Int64
	rejected atomic.Int64
}

// NewServer creates a server around a store (a fresh store if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{Store: store}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/collect", s.handleCollect)
	mux.HandleFunc("/records", s.handleRecords)
	mux.HandleFunc("/stats", s.handleStats)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

// Received reports how many records were accepted and how many rejected.
func (s *Server) Received() (accepted, rejected int64) {
	return s.received.Load(), s.rejected.Load()
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, err := DecodeXML(body)
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("bad record: %v", err), http.StatusBadRequest)
		return
	}
	s.Store.Add(rec)
	s.received.Add(1)
	w.WriteHeader(http.StatusAccepted)
}

// recordList wraps query results for XML responses.
type recordList struct {
	XMLName xml.Name `xml:"records"`
	Records []Record `xml:"record"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	f := Filter{
		Design: r.URL.Query().Get("design"),
		Step:   r.URL.Query().Get("step"),
	}
	out, err := xml.Marshal(recordList{Records: s.Store.Query(f)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(out) //nolint:errcheck
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	acc, rej := s.Received()
	fmt.Fprintf(w, "records=%d accepted=%d rejected=%d\n", s.Store.Len(), acc, rej)
	// Process-wide infrastructure counters (campaign cache, pools).
	Default.Write(w)
}

// Transmitter posts records to a METRICS server as XML over HTTP — the
// wrapper/API side of Fig. 11. It implements flow.Observer so a flow can
// be instrumented by passing it to flow.RunObserved.
type Transmitter struct {
	URL    string // e.g. "http://127.0.0.1:port"
	Client *http.Client

	sent   atomic.Int64
	failed atomic.Int64
}

// NewTransmitter creates a transmitter for a server base URL.
func NewTransmitter(baseURL string) *Transmitter {
	return &Transmitter{URL: baseURL, Client: &http.Client{}}
}

// Transmit sends one record.
func (t *Transmitter) Transmit(rec Record) error {
	data, err := EncodeXML(rec)
	if err != nil {
		t.failed.Add(1)
		return err
	}
	resp, err := t.Client.Post(t.URL+"/collect", "application/xml", bytes.NewReader(data))
	if err != nil {
		t.failed.Add(1)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusAccepted {
		t.failed.Add(1)
		return fmt.Errorf("metrics: server returned %s", resp.Status)
	}
	t.sent.Add(1)
	return nil
}

// OnStep implements flow.Observer: each step record is converted and
// transmitted; failures are counted, not fatal (collection must never
// break the flow).
func (t *Transmitter) OnStep(rec flow.StepRecord) {
	t.Transmit(FromStep(rec)) //nolint:errcheck
}

// Counts reports transmitted and failed record counts.
func (t *Transmitter) Counts() (sent, failed int64) {
	return t.sent.Load(), t.failed.Load()
}

// QueryRecords fetches records from a server over HTTP.
func QueryRecords(baseURL string, f Filter) ([]Record, error) {
	url := fmt.Sprintf("%s/records?design=%s&step=%s", baseURL, f.Design, f.Step)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var list recordList
	if err := xml.Unmarshal(body, &list); err != nil {
		return nil, err
	}
	return list.Records, nil
}
