// Package floorplan implements block-level floorplanning by recursive
// min-cut bisection, plus the paper's "chicken-egg loop" between
// floorplanning and global interconnect design (Sec. 3.3, ML
// application (iv): "prediction of the 'fixed point' of a given
// chicken-egg loop of design (e.g., the loop between floorplanning and
// global interconnect design)").
//
// The loop is mechanistic: a floorplan fixes block positions, positions
// fix inter-block wirelengths, long wires need repeater area, repeater
// area grows the blocks, and grown blocks change the floorplan. The
// FixedPoint iteration runs the loop to convergence; the dataset helpers
// let an ML model predict the converged wirelength from the initial
// state without iterating — the paper's one-pass-design enabler.
package floorplan

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/partition"
)

// Block is one floorplanned region.
type Block struct {
	Name     string
	BaseArea float64 // intrinsic cell area
	Area     float64 // current area including repeater overhead
	X, Y     float64 // placed lower-left corner
	W, H     float64
}

// Conn is a weighted connection between two blocks.
type Conn struct {
	A, B   int
	Weight float64 // number of nets (or total bits) between the blocks
}

// Floorplan is a placed block set.
type Floorplan struct {
	Blocks []Block
	Conns  []Conn
	DieW   float64
	DieH   float64
}

// Layout places the blocks into a die by recursive bisection: the block
// set splits into two halves balanced by area and with minimal
// connection weight across the split; the die rectangle splits
// proportionally; recurse. Whitespace fraction pads the die.
func Layout(blocks []Block, conns []Conn, whitespace float64) *Floorplan {
	fp := &Floorplan{
		Blocks: append([]Block(nil), blocks...),
		Conns:  append([]Conn(nil), conns...),
	}
	var total float64
	for _, b := range blocks {
		total += b.Area
	}
	side := math.Sqrt(total * (1 + whitespace))
	fp.DieW, fp.DieH = side, side

	ids := make([]int, len(blocks))
	for i := range ids {
		ids[i] = i
	}
	fp.layoutRec(ids, 0, 0, side, side)
	return fp
}

// layoutRec assigns the region (x,y,w,h) to the block set.
func (fp *Floorplan) layoutRec(ids []int, x, y, w, h float64) {
	if len(ids) == 0 {
		return
	}
	if len(ids) == 1 {
		b := &fp.Blocks[ids[0]]
		b.X, b.Y, b.W, b.H = x, y, w, h
		return
	}
	left, right := fp.minCutSplit(ids)
	var la, ra float64
	for _, i := range left {
		la += fp.Blocks[i].Area
	}
	for _, i := range right {
		ra += fp.Blocks[i].Area
	}
	frac := 0.5
	if la+ra > 0 {
		frac = la / (la + ra)
	}
	if w >= h {
		fp.layoutRec(left, x, y, w*frac, h)
		fp.layoutRec(right, x+w*frac, y, w*(1-frac), h)
	} else {
		fp.layoutRec(left, x, y, w, h*frac)
		fp.layoutRec(right, x, y+h*frac, w, h*(1-frac))
	}
}

// minCutSplit bisects a block set greedily: start from an area-balanced
// split ordered by connectivity to a seed block, then improve with
// single-block swaps while the cut weight drops.
func (fp *Floorplan) minCutSplit(ids []int) (left, right []int) {
	half := len(ids) / 2
	left = append([]int(nil), ids[:half]...)
	right = append([]int(nil), ids[half:]...)
	side := map[int]int{}
	for _, i := range left {
		side[i] = 0
	}
	for _, i := range right {
		side[i] = 1
	}
	cutWeight := func() float64 {
		var c float64
		for _, cn := range fp.Conns {
			sa, aok := side[cn.A]
			sb, bok := side[cn.B]
			if aok && bok && sa != sb {
				c += cn.Weight
			}
		}
		return c
	}
	improved := true
	for pass := 0; pass < 6 && improved; pass++ {
		improved = false
		base := cutWeight()
		for li := range left {
			for ri := range right {
				side[left[li]], side[right[ri]] = 1, 0
				if c := cutWeight(); c < base {
					left[li], right[ri] = right[ri], left[li]
					base = c
					improved = true
				} else {
					side[left[li]], side[right[ri]] = 0, 1
				}
			}
		}
	}
	return left, right
}

// Wirelength returns the total weighted center-to-center Manhattan
// wirelength.
func (fp *Floorplan) Wirelength() float64 {
	var wl float64
	for _, c := range fp.Conns {
		a, b := &fp.Blocks[c.A], &fp.Blocks[c.B]
		ax, ay := a.X+a.W/2, a.Y+a.H/2
		bx, by := b.X+b.W/2, b.Y+b.H/2
		wl += c.Weight * (math.Abs(ax-bx) + math.Abs(ay-by))
	}
	return wl
}

// Overlap returns the total pairwise overlap area (0 for a legal
// floorplan; recursive bisection is overlap-free by construction, so
// this is a checkable invariant).
func (fp *Floorplan) Overlap() float64 {
	var ov float64
	for i := range fp.Blocks {
		for j := i + 1; j < len(fp.Blocks); j++ {
			a, b := &fp.Blocks[i], &fp.Blocks[j]
			w := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
			h := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
			if w > 1e-9 && h > 1e-9 {
				ov += w * h
			}
		}
	}
	return ov
}

// LoopConfig parameterizes the floorplan/interconnect fixed-point loop.
type LoopConfig struct {
	// RepeaterAreaPerWire is block area added per unit of attached
	// wirelength (default 0.02).
	RepeaterAreaPerWire float64
	// Whitespace fraction for the die (default 0.15).
	Whitespace float64
	// TolFrac is the convergence tolerance on wirelength change
	// (default 0.5%).
	TolFrac  float64
	MaxIters int // default 20
}

func (c LoopConfig) withDefaults() LoopConfig {
	if c.RepeaterAreaPerWire <= 0 {
		c.RepeaterAreaPerWire = 0.02
	}
	if c.Whitespace <= 0 {
		c.Whitespace = 0.15
	}
	if c.TolFrac <= 0 {
		c.TolFrac = 0.005
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 20
	}
	return c
}

// LoopResult is a fixed-point iteration trace.
type LoopResult struct {
	Iterations int
	Converged  bool
	WireTrace  []float64
	AreaTrace  []float64
	Final      *Floorplan
}

// FixedPoint iterates floorplan -> wirelength -> repeater area ->
// floorplan until the wirelength stabilizes.
func FixedPoint(blocks []Block, conns []Conn, cfg LoopConfig) LoopResult {
	cfg = cfg.withDefaults()
	work := append([]Block(nil), blocks...)
	for i := range work {
		if work[i].Area == 0 {
			work[i].Area = work[i].BaseArea
		}
	}
	var res LoopResult
	prevWL := math.Inf(1)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		fp := Layout(work, conns, cfg.Whitespace)
		wl := fp.Wirelength()
		var area float64
		for _, b := range fp.Blocks {
			area += b.Area
		}
		res.WireTrace = append(res.WireTrace, wl)
		res.AreaTrace = append(res.AreaTrace, area)
		res.Final = fp
		res.Iterations = iter + 1
		if math.Abs(wl-prevWL) <= cfg.TolFrac*math.Max(wl, 1e-12) {
			res.Converged = true
			break
		}
		prevWL = wl
		// Interconnect reacts: repeater area proportional to each
		// block's attached wirelength.
		attached := make([]float64, len(work))
		for _, c := range fp.Conns {
			a, b := &fp.Blocks[c.A], &fp.Blocks[c.B]
			d := math.Abs(a.X+a.W/2-(b.X+b.W/2)) + math.Abs(a.Y+a.H/2-(b.Y+b.H/2))
			attached[c.A] += c.Weight * d / 2
			attached[c.B] += c.Weight * d / 2
		}
		for i := range work {
			work[i].Area = work[i].BaseArea + cfg.RepeaterAreaPerWire*attached[i]
		}
	}
	return res
}

// FromNetlist derives a block-level floorplanning instance from a real
// design: 2^levels blocks by recursive min-cut partitioning, with
// connection weights equal to the net counts between blocks.
func FromNetlist(n *netlist.Netlist, levels int, seed int64) ([]Block, []Conn) {
	if levels <= 0 {
		levels = 2
	}
	blocks := [][]int{allCells(n)}
	for level := 0; level < levels; level++ {
		var next [][]int
		for bi, b := range blocks {
			bp := partition.Bisect(n, b, seed+int64(level*100+bi))
			var left, right []int
			for _, inst := range b {
				if bp.Side[inst] == 0 {
					left = append(left, inst)
				} else {
					right = append(right, inst)
				}
			}
			if len(left) == 0 || len(right) == 0 {
				next = append(next, b)
				continue
			}
			next = append(next, left, right)
		}
		blocks = next
	}
	blockOf := make([]int, n.NumCells())
	out := make([]Block, len(blocks))
	for bi, b := range blocks {
		var area float64
		for _, inst := range b {
			area += n.Insts[inst].Cell.Area
			blockOf[inst] = bi
		}
		out[bi] = Block{Name: blockName(bi), BaseArea: area, Area: area}
	}
	// Connection weights: nets spanning block pairs.
	weights := map[[2]int]float64{}
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.IsClock || net.Driver < 0 {
			continue
		}
		seen := map[int]bool{blockOf[net.Driver]: true}
		for _, s := range net.Sinks {
			seen[blockOf[s.Inst]] = true
		}
		if len(seen) < 2 {
			continue
		}
		var members []int
		for b := range seen {
			members = append(members, b)
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				a, b := members[x], members[y]
				if a > b {
					a, b = b, a
				}
				weights[[2]int{a, b}]++
			}
		}
	}
	var conns []Conn
	for k, w := range weights {
		conns = append(conns, Conn{A: k[0], B: k[1], Weight: w})
	}
	sortConns(conns)
	return out, conns
}

// RandomCase generates a synthetic floorplanning instance for fixed-
// point dataset generation.
func RandomCase(rng *rand.Rand, numBlocks int) ([]Block, []Conn) {
	if numBlocks < 2 {
		numBlocks = 2
	}
	blocks := make([]Block, numBlocks)
	for i := range blocks {
		a := 50 + rng.Float64()*500
		blocks[i] = Block{Name: blockName(i), BaseArea: a, Area: a}
	}
	var conns []Conn
	for i := 0; i < numBlocks; i++ {
		for j := i + 1; j < numBlocks; j++ {
			if rng.Float64() < 0.5 {
				conns = append(conns, Conn{A: i, B: j, Weight: 1 + rng.Float64()*10})
			}
		}
	}
	return blocks, conns
}

// Features extracts the pre-iteration features used to predict the
// fixed point: block count, total base area, area skew, connection
// count, total weight, and the first-layout wirelength.
func Features(blocks []Block, conns []Conn, cfg LoopConfig) []float64 {
	cfg = cfg.withDefaults()
	var area, maxArea, weight float64
	for _, b := range blocks {
		a := b.BaseArea
		area += a
		if a > maxArea {
			maxArea = a
		}
	}
	for _, c := range conns {
		weight += c.Weight
	}
	fp := Layout(blocks, conns, cfg.Whitespace)
	skew := 0.0
	if area > 0 {
		skew = maxArea / area * float64(len(blocks))
	}
	return []float64{
		float64(len(blocks)),
		area,
		skew,
		float64(len(conns)),
		weight,
		fp.Wirelength(),
	}
}

func blockName(i int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(letters) {
		return string(letters[i])
	}
	return "B" + string(letters[i%len(letters)])
}

func allCells(n *netlist.Netlist) []int {
	out := make([]int, n.NumCells())
	for i := range out {
		out[i] = i
	}
	return out
}

// sortConns orders connections deterministically (map iteration order
// must not leak into results).
func sortConns(conns []Conn) {
	for i := 1; i < len(conns); i++ {
		for j := i; j > 0; j-- {
			a, b := conns[j-1], conns[j]
			if a.A < b.A || (a.A == b.A && a.B <= b.B) {
				break
			}
			conns[j-1], conns[j] = b, a
		}
	}
}
