package floorplan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLayoutLegalQuick: layouts of arbitrary random cases are always
// overlap-free, in-die, and area-conserving.
func TestLayoutLegalQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks, conns := RandomCase(rng, 2+int(nRaw%10))
		fp := Layout(blocks, conns, 0.1)
		if fp.Overlap() > 1e-6 {
			return false
		}
		for _, b := range fp.Blocks {
			if b.W <= 0 || b.H <= 0 {
				return false
			}
			if b.X < -1e-9 || b.Y < -1e-9 || b.X+b.W > fp.DieW+1e-9 || b.Y+b.H > fp.DieH+1e-9 {
				return false
			}
		}
		return fp.Wirelength() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFixedPointMonotoneAreaQuick: the loop's total area never shrinks
// below the base area and the trace lengths are consistent.
func TestFixedPointMonotoneAreaQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks, conns := RandomCase(rng, 3+int(nRaw%6))
		var base float64
		for _, b := range blocks {
			base += b.BaseArea
		}
		res := FixedPoint(blocks, conns, LoopConfig{})
		if len(res.WireTrace) != res.Iterations || len(res.AreaTrace) != res.Iterations {
			return false
		}
		for _, a := range res.AreaTrace {
			if a < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
