package floorplan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellib"
	"repro/internal/ml"
	"repro/internal/netlist"
)

func randomCase(seed int64, n int) ([]Block, []Conn) {
	rng := rand.New(rand.NewSource(seed))
	return RandomCase(rng, n)
}

func TestLayoutLegal(t *testing.T) {
	blocks, conns := randomCase(1, 9)
	fp := Layout(blocks, conns, 0.15)
	if ov := fp.Overlap(); ov > 1e-6 {
		t.Fatalf("blocks overlap by %v", ov)
	}
	var blockArea float64
	for _, b := range fp.Blocks {
		if b.W <= 0 || b.H <= 0 {
			t.Fatalf("degenerate block %+v", b)
		}
		if b.X < -1e-9 || b.Y < -1e-9 || b.X+b.W > fp.DieW+1e-9 || b.Y+b.H > fp.DieH+1e-9 {
			t.Fatalf("block outside die: %+v", b)
		}
		blockArea += b.W * b.H
	}
	// Recursive bisection tiles the die exactly.
	if math.Abs(blockArea-fp.DieW*fp.DieH) > 1e-6*blockArea {
		t.Errorf("tiling gap: blocks %v vs die %v", blockArea, fp.DieW*fp.DieH)
	}
}

func TestLayoutRegionAreaProportional(t *testing.T) {
	blocks, conns := randomCase(2, 8)
	fp := Layout(blocks, conns, 0.1)
	var total, totalRegion float64
	for _, b := range blocks {
		total += b.Area
	}
	for _, b := range fp.Blocks {
		totalRegion += b.W * b.H
	}
	for i, b := range fp.Blocks {
		wantFrac := blocks[i].Area / total
		gotFrac := b.W * b.H / totalRegion
		if math.Abs(wantFrac-gotFrac) > 0.02 {
			t.Errorf("block %d area fraction %v, want %v", i, gotFrac, wantFrac)
		}
	}
}

func TestLayoutPutsConnectedBlocksNear(t *testing.T) {
	// A chain A-B-C-D with heavy A-B and C-D weights: A,B should be
	// closer than A,D on average over seeds.
	blocks := make([]Block, 4)
	for i := range blocks {
		blocks[i] = Block{Name: blockName(i), BaseArea: 100, Area: 100}
	}
	conns := []Conn{{0, 1, 50}, {2, 3, 50}, {1, 2, 1}}
	fp := Layout(blocks, conns, 0.1)
	d := func(i, j int) float64 {
		a, b := fp.Blocks[i], fp.Blocks[j]
		return math.Abs(a.X+a.W/2-(b.X+b.W/2)) + math.Abs(a.Y+a.H/2-(b.Y+b.H/2))
	}
	if d(0, 1) > d(0, 3) {
		t.Errorf("heavily connected pair farther apart: d(A,B)=%v d(A,D)=%v", d(0, 1), d(0, 3))
	}
}

func TestFixedPointConverges(t *testing.T) {
	blocks, conns := randomCase(3, 10)
	res := FixedPoint(blocks, conns, LoopConfig{})
	if !res.Converged {
		t.Fatalf("loop did not converge in %d iterations (trace %v)", res.Iterations, res.WireTrace)
	}
	if res.Iterations < 2 {
		t.Error("loop should need at least one interconnect reaction")
	}
	// Areas grow once repeaters are added.
	if res.AreaTrace[len(res.AreaTrace)-1] <= res.AreaTrace[0] {
		t.Error("repeater insertion should grow total area")
	}
	if ov := res.Final.Overlap(); ov > 1e-6 {
		t.Error("final floorplan overlaps")
	}
}

func TestFixedPointInputUntouched(t *testing.T) {
	blocks, conns := randomCase(4, 6)
	area0 := blocks[0].Area
	FixedPoint(blocks, conns, LoopConfig{})
	if blocks[0].Area != area0 {
		t.Fatal("FixedPoint modified its input blocks")
	}
}

func TestFromNetlist(t *testing.T) {
	n := netlist.Generate(cellib.Default14nm(), netlist.Tiny(5))
	blocks, conns := FromNetlist(n, 2, 1)
	if len(blocks) != 4 {
		t.Fatalf("%d blocks, want 4", len(blocks))
	}
	var area float64
	for _, b := range blocks {
		if b.BaseArea <= 0 {
			t.Fatal("empty block")
		}
		area += b.BaseArea
	}
	if math.Abs(area-n.Area()) > 1e-6 {
		t.Errorf("block areas %v != design area %v", area, n.Area())
	}
	if len(conns) == 0 {
		t.Fatal("no inter-block connections")
	}
	for _, c := range conns {
		if c.A >= c.B || c.Weight <= 0 {
			t.Fatalf("bad conn %+v", c)
		}
	}
	res := FixedPoint(blocks, conns, LoopConfig{})
	if !res.Converged {
		t.Errorf("netlist-derived loop did not converge: %v", res.WireTrace)
	}
}

func TestPredictFixedPointFromFeatures(t *testing.T) {
	// The paper's ML application (iv): learn the loop's fixed point
	// from the initial state. Train on random cases, test held out.
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		blocks, conns := RandomCase(rng, 4+rng.Intn(8))
		x = append(x, Features(blocks, conns, LoopConfig{}))
		res := FixedPoint(blocks, conns, LoopConfig{})
		y = append(y, res.WireTrace[len(res.WireTrace)-1])
	}
	xtr, ytr, xte, yte := ml.Split(x, y, 0.25, 1)
	sc := ml.FitScaler(xtr)
	reg, err := ml.FitRidge(sc.Transform(xtr), ytr, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := reg.PredictAll(sc.Transform(xte))
	if r2 := ml.R2(pred, yte); r2 < 0.8 {
		t.Errorf("fixed-point prediction R2 = %v, want > 0.8", r2)
	}
}

func TestFeaturesStable(t *testing.T) {
	blocks, conns := randomCase(9, 7)
	a := Features(blocks, conns, LoopConfig{})
	b := Features(blocks, conns, LoopConfig{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not deterministic")
		}
	}
	if len(a) != 6 {
		t.Fatalf("feature count %d", len(a))
	}
}
