// Package obs wires the observability flags shared by the CLIs:
// -trace FILE arms the process-wide tracer and writes a Chrome
// trace_event JSON file at exit (load it in chrome://tracing or
// https://ui.perfetto.dev), and -metrics-addr ADDR serves the live
// introspection endpoints (/metrics, /debug/spans, /debug/hist,
// /debug/pprof) while the process runs.
package obs

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Setup arms tracing and/or the metrics server per the flag values
// (empty string = off) and returns a flush function that must run
// before the process exits — it writes the trace file and shuts the
// server down. Callers should route every exit path through it.
func Setup(traceFile, metricsAddr string) (flush func(), err error) {
	var tr *trace.Tracer
	if traceFile != "" {
		tr = trace.New(0)
		trace.Enable(tr)
	}
	var srv *metrics.Server
	if metricsAddr != "" {
		srv = metrics.NewServer(nil)
		bound, err := srv.Start(metricsAddr)
		if err != nil {
			trace.Disable()
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug on http://%s\n", bound)
	}
	return func() {
		if srv != nil {
			srv.Close() //nolint:errcheck
		}
		if tr == nil {
			return
		}
		trace.Disable()
		f, err := os.Create(traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: write: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: close: %v\n", err)
			return
		}
		n, _ := tr.Snapshot()
		fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", len(n), traceFile)
	}, nil
}
