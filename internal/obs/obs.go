// Package obs wires the observability flags shared by the CLIs:
// -trace FILE arms the process-wide tracer and writes a Chrome
// trace_event JSON file at exit (load it in chrome://tracing or
// https://ui.perfetto.dev), -metrics-addr ADDR serves the live
// introspection endpoints (/metrics, /debug/spans, /debug/hist,
// /debug/pprof) while the process runs, and -span-retention N bounds
// the tracer's finished-span memory.
package obs

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config selects what SetupCfg arms. The zero value arms nothing.
type Config struct {
	// TraceFile, when non-empty, arms the process-wide tracer and
	// writes a Chrome trace there at flush.
	TraceFile string
	// MetricsAddr, when non-empty, serves the live endpoints there.
	MetricsAddr string
	// SpanRetention caps retained finished spans (the -span-retention
	// flag): 0 = trace.DefaultRetention (64k spans ≈ 8 MB), < 0 =
	// unbounded. The cap bounds tracer memory for arbitrarily long
	// campaigns; overflow increments the exporter's droppedSpans count
	// rather than growing the heap.
	SpanRetention int
	// NodeID namespaces span ids (trace.Config.NodeID) so this
	// process's spans can ship to a fleet collector without colliding.
	NodeID uint16
	// ShipURL, when non-empty, periodically drains finished spans and
	// POSTs them to this collector endpoint (a coordinator's /v1/spans).
	ShipURL string
	// ShipInterval is the drain period (0 = 500ms).
	ShipInterval time.Duration
	// ShipNode labels shipped batches (diagnostics only).
	ShipNode string
	// Aux mounts extra handlers on the metrics server by pattern — the
	// span collector and warehouse API ride here.
	Aux map[string]http.Handler
	// Gauges starts the periodic runtime gauge sampler
	// (runtime.goroutines, runtime.heap.alloc) at this interval when
	// > 0 — the "is that remote node wedged or working" signal.
	Gauges time.Duration
}

// Setup arms tracing and/or the metrics server per the flag values
// (empty string = off) and returns a flush function that must run
// before the process exits — it writes the trace file and shuts the
// server down. Callers should route every exit path through it.
func Setup(traceFile, metricsAddr string) (flush func(), err error) {
	return SetupCfg(Config{TraceFile: traceFile, MetricsAddr: metricsAddr, SpanRetention: -1})
}

// SetupCfg is Setup with the full Config surface.
func SetupCfg(cfg Config) (flush func(), err error) {
	var tr *trace.Tracer
	if cfg.TraceFile != "" || cfg.ShipURL != "" {
		tr = trace.NewCfg(trace.Config{Retention: cfg.SpanRetention, NodeID: cfg.NodeID})
		trace.Enable(tr)
	}
	var srv *metrics.Server
	if cfg.MetricsAddr != "" {
		srv = metrics.NewServer(nil)
		srv.Aux = cfg.Aux
		bound, err := srv.Start(cfg.MetricsAddr)
		if err != nil {
			trace.Disable()
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug on http://%s\n", bound)
	}
	var shipper *trace.Shipper
	if cfg.ShipURL != "" && tr != nil {
		shipper = trace.NewShipper(tr, cfg.ShipNode, cfg.ShipURL, cfg.ShipInterval)
		shipper.Start()
	}
	var stopGauges func()
	if cfg.Gauges > 0 {
		stopGauges = StartRuntimeGauges(cfg.Gauges)
	}
	return func() {
		if stopGauges != nil {
			stopGauges()
		}
		if shipper != nil {
			shipper.Stop() // final drain: no finished span stays stranded
		}
		if srv != nil {
			srv.Close() //nolint:errcheck
		}
		if tr == nil {
			return
		}
		trace.Disable()
		if cfg.TraceFile == "" {
			return
		}
		f, err := os.Create(cfg.TraceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: write: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: close: %v\n", err)
			return
		}
		n, _ := tr.Snapshot()
		fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", len(n), cfg.TraceFile)
	}, nil
}

// StartRuntimeGauges samples runtime health into the process-wide
// counter registry every interval — visible on any /metrics endpoint
// (the central server's and the per-node ones) as runtime.goroutines
// and runtime.heap.alloc. Returns a stop function.
func StartRuntimeGauges(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		metrics.Set("runtime.goroutines", int64(runtime.NumGoroutine()))
		metrics.Set("runtime.heap.alloc", int64(ms.HeapAlloc))
	}
	sample()
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
