package eyechart

import (
	"math"
	"testing"

	"repro/internal/cellib"
)

func TestChainStructure(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 5, 30, 200)
	if len(ch.Stages) != 5 {
		t.Fatalf("stages %d", len(ch.Stages))
	}
	if err := ch.Netlist.Validate(); err != nil {
		t.Fatalf("chain netlist invalid: %v", err)
	}
}

func TestOptimalMeetsTarget(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 5, 30, 150)
	if math.IsInf(ch.OptimalAreaUm2, 1) {
		t.Skip("infeasible target")
	}
	ch.Apply(ch.OptimalDrives)
	if d := ch.CurrentDelayPs(); d > ch.TargetPs {
		t.Errorf("optimal sizing misses target: %v > %v", d, ch.TargetPs)
	}
	if a := ch.CurrentAreaUm2(); math.Abs(a-ch.OptimalAreaUm2) > 1e-9 {
		t.Errorf("applied optimal area %v != %v", a, ch.OptimalAreaUm2)
	}
	if s := ch.Score(); math.Abs(s-1) > 1e-9 {
		t.Errorf("optimal score %v, want 1", s)
	}
}

func TestOptimalIsMinimal(t *testing.T) {
	// No feasible assignment may have smaller area: spot-check by
	// trying to downsize each optimal stage by one step.
	lib := cellib.Default14nm()
	ch := Chain(lib, 4, 40, 140)
	if math.IsInf(ch.OptimalAreaUm2, 1) {
		t.Skip("infeasible target")
	}
	drives := append([]int(nil), ch.OptimalDrives...)
	for i := range drives {
		if drives[i] == 1 {
			continue
		}
		smaller := append([]int(nil), drives...)
		smaller[i] = drives[i] / 2
		ch.Apply(smaller)
		if ch.CurrentDelayPs() <= ch.TargetPs && ch.CurrentAreaUm2() < ch.OptimalAreaUm2 {
			t.Fatalf("found smaller feasible sizing than 'optimal' at stage %d", i)
		}
	}
}

func TestInfeasibleTarget(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 6, 50, 1) // 1 ps is impossible
	if !math.IsInf(ch.OptimalAreaUm2, 1) {
		t.Errorf("1 ps target should be infeasible, got area %v", ch.OptimalAreaUm2)
	}
	if ch.MinDelayPs <= 0 {
		t.Error("min delay should still be reported")
	}
}

func TestTightTargetCostsMoreArea(t *testing.T) {
	lib := cellib.Default14nm()
	loose := Chain(lib, 5, 30, 400)
	tight := Chain(lib, 5, 30, loose.MinDelayPs*1.05)
	if math.IsInf(tight.OptimalAreaUm2, 1) {
		t.Skip("tight target infeasible")
	}
	if tight.OptimalAreaUm2 <= loose.OptimalAreaUm2 {
		t.Errorf("tight target area %v should exceed loose %v", tight.OptimalAreaUm2, loose.OptimalAreaUm2)
	}
}

func TestScorePenalizesTimingMiss(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 5, 40, 160)
	if math.IsInf(ch.OptimalAreaUm2, 1) {
		t.Skip("infeasible")
	}
	// All-minimum sizing should miss a tight target.
	ch.Apply([]int{1, 1, 1, 1, 1})
	if ch.CurrentDelayPs() <= ch.TargetPs {
		t.Skip("min sizing meets target; cannot test miss")
	}
	if !math.IsInf(ch.Score(), 1) {
		t.Error("timing miss should score +Inf")
	}
}

func TestSTAAgreesWithClosedForm(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 4, 25, 300)
	ch.Apply([]int{2, 2, 4, 8})
	closed := ch.CurrentDelayPs()
	staArr := ch.STAConsistent()
	if math.Abs(closed-staArr) > closed*0.05+1 {
		t.Errorf("closed-form %v vs STA %v diverge", closed, staArr)
	}
}

func TestStageClamping(t *testing.T) {
	lib := cellib.Default14nm()
	ch := Chain(lib, 20, 10, 1000)
	if len(ch.Stages) != 8 {
		t.Errorf("stage clamp failed: %d", len(ch.Stages))
	}
	ch0 := Chain(lib, 0, 10, 1000)
	if len(ch0.Stages) != 1 {
		t.Errorf("min stages failed: %d", len(ch0.Stages))
	}
}
