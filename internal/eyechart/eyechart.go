// Package eyechart constructs synthetic gate-sizing benchmarks with
// known optimal solutions — the "eye charts" of the paper's Sec. 3.3
// (refs [11][23]). Because the optimum is computed exhaustively, the
// benchmarks characterize how far a sizing heuristic lands from optimal,
// exactly the "constructive benchmarking of gate sizing heuristics"
// use-case.
package eyechart

import (
	"math"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Chart is a generated benchmark plus its known optimum.
type Chart struct {
	Netlist *netlist.Netlist
	// Stages holds the instance IDs of the sizable chain, in order.
	Stages []int
	// TargetPs is the delay constraint (the netlist's clock period).
	TargetPs float64
	// OptimalAreaUm2 is the minimum chain area that meets TargetPs
	// (exhaustively verified); +Inf if the target is infeasible.
	OptimalAreaUm2 float64
	// OptimalDrives lists the optimal drive strengths per stage.
	OptimalDrives []int
	// MinDelayPs is the best achievable delay over all sizings.
	MinDelayPs float64
}

// Chain builds an inverter-chain eye chart: `stages` inverters between a
// primary input and an external load of loadFF, with delay target
// targetPs. The optimum over all drive assignments is found by
// exhaustive enumeration (the construction keeps stages small enough for
// that to be exact).
func Chain(lib *cellib.Library, stages int, loadFF, targetPs float64) *Chart {
	if stages < 1 {
		stages = 1
	}
	if stages > 8 {
		stages = 8 // keep exhaustive search exact and fast
	}
	n := &netlist.Netlist{Name: "eyechart-chain", Lib: lib, ClockNet: -1, ClockPeriodPs: targetPs}
	ch := &Chart{Netlist: n, TargetPs: targetPs}

	inv := lib.Smallest(cellib.Inverter)
	in := n.AddNet(-1, "in")
	prev := in
	for i := 0; i < stages; i++ {
		id := n.AddInstance(inv, "")
		ch.Stages = append(ch.Stages, id)
		n.Connect(prev, id, 0)
		prev = n.AddNet(id, "")
	}
	n.Nets[prev].ExternalCap = loadFF
	if err := n.Relevel(); err != nil {
		panic(err) // a chain cannot be cyclic
	}
	// Collapse placement so wire delay is negligible and the optimum
	// depends only on cell choice.
	for i := range n.Insts {
		n.Insts[i].X, n.Insts[i].Y = 0, 0
	}
	n.InvalidatePlacement()

	ch.solve()
	return ch
}

// solve exhaustively enumerates drive assignments to find the minimum
// area meeting the target and the minimum achievable delay.
func (ch *Chart) solve() {
	lib := ch.Netlist.Lib
	variants := lib.Variants(cellib.Inverter)
	k := len(ch.Stages)
	assign := make([]int, k)
	bestArea := math.Inf(1)
	minDelay := math.Inf(1)
	var bestDrives []int

	var rec func(stage int)
	rec = func(stage int) {
		if stage == k {
			d := ch.delayOf(assign, variants)
			if d < minDelay {
				minDelay = d
			}
			if d <= ch.TargetPs {
				var area float64
				for _, vi := range assign {
					area += variants[vi].Area
				}
				if area < bestArea {
					bestArea = area
					bestDrives = make([]int, k)
					for i, vi := range assign {
						bestDrives[i] = variants[vi].Drive
					}
				}
			}
			return
		}
		for vi := range variants {
			assign[stage] = vi
			rec(stage + 1)
		}
	}
	rec(0)
	ch.OptimalAreaUm2 = bestArea
	ch.OptimalDrives = bestDrives
	ch.MinDelayPs = minDelay
}

// delayOf computes the chain delay for a variant assignment without
// mutating the netlist: stage i drives stage i+1's input cap, the last
// stage drives the external load.
func (ch *Chart) delayOf(assign []int, variants []cellib.Cell) float64 {
	var d float64
	for i := range assign {
		cell := variants[assign[i]]
		var load float64
		if i+1 < len(assign) {
			load = variants[assign[i+1]].InputCap
		} else {
			load = ch.Netlist.Nets[ch.Netlist.FanoutNet[ch.Stages[len(ch.Stages)-1]]].ExternalCap
		}
		d += cell.Delay(load)
	}
	return d
}

// Apply writes drive strengths onto the chain.
func (ch *Chart) Apply(drives []int) {
	variants := ch.Netlist.Lib.Variants(cellib.Inverter)
	byDrive := map[int]cellib.Cell{}
	for _, v := range variants {
		byDrive[v.Drive] = v
	}
	for i, id := range ch.Stages {
		if i < len(drives) {
			if c, ok := byDrive[drives[i]]; ok {
				ch.Netlist.Insts[id].Cell = c
			}
		}
	}
}

// CurrentDelayPs measures the chain delay of the current sizing using
// the same closed-form model as the optimum.
func (ch *Chart) CurrentDelayPs() float64 {
	variants := ch.Netlist.Lib.Variants(cellib.Inverter)
	idxOf := map[int]int{}
	for i, v := range variants {
		idxOf[v.Drive] = i
	}
	assign := make([]int, len(ch.Stages))
	for i, id := range ch.Stages {
		assign[i] = idxOf[ch.Netlist.Insts[id].Cell.Drive]
	}
	return ch.delayOf(assign, variants)
}

// CurrentAreaUm2 returns the chain's current area.
func (ch *Chart) CurrentAreaUm2() float64 {
	var a float64
	for _, id := range ch.Stages {
		a += ch.Netlist.Insts[id].Cell.Area
	}
	return a
}

// Score evaluates a sizing heuristic's result against the known optimum:
// the area ratio (>= 1; 1.0 is optimal) if timing is met, or +Inf if the
// heuristic missed timing on a feasible chart.
func (ch *Chart) Score() float64 {
	if math.IsInf(ch.OptimalAreaUm2, 1) {
		return 1 // infeasible chart: nothing to compare
	}
	if ch.CurrentDelayPs() > ch.TargetPs*1.0000001 {
		return math.Inf(1)
	}
	return ch.CurrentAreaUm2() / ch.OptimalAreaUm2
}

// STAConsistent verifies the closed-form chain delay against the timing
// engine (used by tests and the self-check benches): returns the STA
// arrival of the loaded endpoint.
func (ch *Chart) STAConsistent() float64 {
	rep := sta.Analyze(ch.Netlist, sta.Config{Engine: sta.Fast})
	worst := 0.0
	for _, ep := range rep.Endpoints {
		if ep.Arrival > worst {
			worst = ep.Arrival
		}
	}
	return worst
}
