// Package synth models logic synthesis: high-fanout buffering plus
// timing-driven gate sizing toward a target frequency.
//
// The synthesizer is deliberately heuristic and seeded: near the maximum
// achievable frequency its discrete decisions (which critical cell to
// upsize first, where to buffer) depend on random tie-breaks, so repeated
// runs of the same input scatter in area and timing. This is the
// mechanistic source of the Gaussian SP&R implementation noise the paper
// shows in Fig. 3 (refs [15][29]): the harder the tool is pushed, the
// noisier the outcome.
package synth

import (
	"math/rand"
	"sort"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Options are the synthesis knobs. They are one level of the flow-option
// tree of the paper's Fig. 5(a).
type Options struct {
	TargetFreqGHz float64
	Effort        int     // 1..3: sizing passes per STA iteration budget
	Seed          int64   // run seed; drives heuristic tie-breaks
	MaxFanout     int     // buffer nets with more sinks than this (default 8)
	UpsizeFrac    float64 // fraction of critical endpoints attacked per pass (default 0.35)
}

func (o Options) withDefaults() Options {
	if o.Effort <= 0 {
		o.Effort = 2
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = 8
	}
	if o.UpsizeFrac <= 0 {
		o.UpsizeFrac = 0.35
	}
	if o.TargetFreqGHz <= 0 {
		o.TargetFreqGHz = 0.5
	}
	return o
}

// Result reports the synthesis outcome.
type Result struct {
	Netlist *netlist.Netlist

	AreaUm2      float64
	WNSPs        float64
	TNSPs        float64
	Met          bool // timing met at target
	Passes       int
	Upsized      int
	BuffersAdded int
	LeakageNW    float64
}

// Run synthesizes the design toward the target frequency. The input
// netlist is not modified; all cells of the result start from the input
// sizes and are strengthened as needed.
func Run(design *netlist.Netlist, opts Options) Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := design.Clone()
	n.ClockPeriodPs = 1000 / opts.TargetFreqGHz

	res := Result{Netlist: n}
	res.BuffersAdded = bufferHighFanout(n, opts, rng)
	if err := n.Relevel(); err != nil {
		// Buffering cannot create cycles; a failure here indicates a
		// corrupt input, surfaced via the validation invariant.
		panic(err)
	}

	// Timing-driven sizing: repeatedly attack the worst endpoints'
	// paths. The per-pass endpoint subset and the per-cell upsize
	// decision are randomized — the "heuristics deployed to meet
	// capacity and TAT" that make the tool noisy (paper Sec. 2,
	// Challenge 2).
	maxPasses := 6 * opts.Effort
	staCfg := sta.Config{Engine: sta.Fast}
	var rep *sta.Report
	for pass := 0; pass < maxPasses; pass++ {
		rep = sta.Analyze(n, staCfg)
		res.Passes++
		if rep.WNSPs >= 0 {
			break
		}
		if upsizePass(n, rep, opts, rng, &res) == 0 {
			break // saturated: every critical cell at max drive
		}
	}
	final := sta.Analyze(n, staCfg)
	res.WNSPs = final.WNSPs
	res.TNSPs = final.TNSPs
	res.Met = final.WNSPs >= 0
	res.AreaUm2 = n.Area()
	res.LeakageNW = n.Leakage()
	return res
}

// bufferHighFanout splits nets with excessive fanout behind buffers,
// choosing the split partition randomly.
func bufferHighFanout(n *netlist.Netlist, opts Options, rng *rand.Rand) int {
	buf := n.Lib.Variants(cellib.Buffer)[2] // X4 buffer
	added := 0
	numNets := len(n.Nets) // snapshot: don't re-buffer new nets
	for netID := 0; netID < numNets; netID++ {
		net := &n.Nets[netID]
		if net.IsClock || len(net.Sinks) <= opts.MaxFanout {
			continue
		}
		sinks := append([]netlist.PinRef(nil), net.Sinks...)
		rng.Shuffle(len(sinks), func(i, j int) { sinks[i], sinks[j] = sinks[j], sinks[i] })
		// Move all but MaxFanout/2 sinks behind buffers, in groups.
		group := opts.MaxFanout
		for len(sinks) > opts.MaxFanout {
			k := group
			if k > len(sinks)-opts.MaxFanout/2 {
				k = len(sinks) - opts.MaxFanout/2
			}
			n.InsertBuffer(netID, sinks[:k], buf)
			sinks = sinks[k:]
			added++
		}
	}
	return added
}

// upsizePass strengthens cells on violating paths. Returns the number of
// cells changed.
func upsizePass(n *netlist.Netlist, rep *sta.Report, opts Options, rng *rand.Rand, res *Result) int {
	eps := rep.WorstEndpoints(len(rep.Endpoints))
	// Keep only violations; attack a random subset each pass.
	var viol []sta.Endpoint
	for _, ep := range eps {
		if ep.SlackPs < 0 {
			viol = append(viol, ep)
		}
	}
	if len(viol) == 0 {
		return 0
	}
	k := int(float64(len(viol))*opts.UpsizeFrac) + 1
	if k > len(viol) {
		k = len(viol)
	}
	rng.Shuffle(len(viol), func(i, j int) { viol[i], viol[j] = viol[j], viol[i] })
	viol = viol[:k]

	// Collect candidate instances: drivers along each violating
	// endpoint's fan-in cone, weighted toward high-load drivers.
	type cand struct {
		inst  int
		score float64
	}
	seen := make(map[int]bool)
	var cands []cand
	for _, ep := range viol {
		cone := faninCone(n, ep.Net, 6)
		for _, id := range cone {
			if seen[id] {
				continue
			}
			seen[id] = true
			out := n.FanoutNet[id]
			if out < 0 {
				continue
			}
			cell := n.Insts[id].Cell
			load := n.NetLoad(out)
			// Sensitivity proxy: delay reduction per area if upsized.
			up, ok := n.Lib.Upsize(cell)
			if !ok {
				continue
			}
			gain := cell.Delay(load) - up.Delay(load)
			dArea := up.Area - cell.Area
			if dArea <= 0 {
				dArea = 1e-9
			}
			cands = append(cands, cand{inst: id, score: gain / dArea * (0.8 + 0.4*rng.Float64())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	changed := 0
	budget := len(cands)/3 + 1
	for _, c := range cands {
		if changed >= budget {
			break
		}
		up, ok := n.Lib.Upsize(n.Insts[c.inst].Cell)
		if !ok {
			continue
		}
		n.Insts[c.inst].Cell = up
		changed++
		res.Upsized++
	}
	return changed
}

// faninCone returns up to `depth` levels of drivers behind a net.
func faninCone(n *netlist.Netlist, netID, depth int) []int {
	var cone []int
	frontier := []int{netID}
	visited := make(map[int]bool)
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []int
		for _, nid := range frontier {
			drv := n.Nets[nid].Driver
			if drv < 0 || visited[drv] {
				continue
			}
			visited[drv] = true
			cone = append(cone, drv)
			if n.Insts[drv].Cell.Class.Sequential() {
				continue
			}
			for _, fn := range n.FaninNet[drv] {
				if fn >= 0 && !n.Nets[fn].IsClock {
					next = append(next, fn)
				}
			}
		}
		frontier = next
	}
	return cone
}

// MaxAchievableFreq estimates the maximum frequency reachable for a design
// by bisection on synthesis targets: the largest target the tool can meet
// (with the given seed). This defines the "aim low" frontier of Fig. 3.
func MaxAchievableFreq(design *netlist.Netlist, base Options, loGHz, hiGHz float64) float64 {
	for i := 0; i < 12; i++ {
		mid := (loGHz + hiGHz) / 2
		o := base
		o.TargetFreqGHz = mid
		if Run(design, o).Met {
			loGHz = mid
		} else {
			hiGHz = mid
		}
	}
	return loGHz
}
