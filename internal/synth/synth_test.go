package synth

import (
	"math"
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestRunProducesValidNetlist(t *testing.T) {
	d := tiny(1)
	res := Run(d, Options{TargetFreqGHz: 0.5, Seed: 1})
	if err := res.Netlist.Validate(); err != nil {
		t.Fatalf("synthesized netlist invalid: %v", err)
	}
	if res.AreaUm2 <= 0 || res.Passes < 1 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestInputUnmodified(t *testing.T) {
	d := tiny(2)
	areaBefore := d.Area()
	cells := len(d.Insts)
	Run(d, Options{TargetFreqGHz: 0.9, Seed: 1})
	if d.Area() != areaBefore || len(d.Insts) != cells {
		t.Fatal("Run modified its input design")
	}
}

func TestEasyTargetMet(t *testing.T) {
	d := tiny(3)
	res := Run(d, Options{TargetFreqGHz: 0.2, Seed: 1})
	if !res.Met {
		t.Fatalf("0.2 GHz should be trivially met, WNS=%v", res.WNSPs)
	}
}

func TestImpossibleTargetNotMet(t *testing.T) {
	d := tiny(4)
	res := Run(d, Options{TargetFreqGHz: 50, Seed: 1})
	if res.Met {
		t.Fatal("50 GHz cannot be met by this library")
	}
	if res.WNSPs >= 0 {
		t.Fatalf("WNS should be negative: %v", res.WNSPs)
	}
}

func TestHigherTargetCostsArea(t *testing.T) {
	// The area-vs-target staircase underlying Fig. 3 (left): pushing
	// frequency costs area through upsizing.
	d := tiny(5)
	low := Run(d, Options{TargetFreqGHz: 0.3, Seed: 1})
	fmax := MaxAchievableFreq(d, Options{Seed: 1}, 0.3, 3)
	high := Run(d, Options{TargetFreqGHz: fmax * 0.98, Seed: 1})
	if high.AreaUm2 <= low.AreaUm2 {
		t.Errorf("near-fmax area %v should exceed relaxed-target area %v", high.AreaUm2, low.AreaUm2)
	}
	if high.Upsized == 0 {
		t.Error("near-fmax synthesis should upsize cells")
	}
}

func TestSeedNoiseNearFmax(t *testing.T) {
	// Different seeds near fmax must scatter in area (the paper's
	// implementation-noise phenomenon); at a relaxed target the noise
	// should be much smaller.
	d := tiny(6)
	fmax := MaxAchievableFreq(d, Options{Seed: 1}, 0.3, 3)
	spread := func(freq float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for seed := int64(0); seed < 8; seed++ {
			a := Run(d, Options{TargetFreqGHz: freq, Seed: seed}).AreaUm2
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
		return hi - lo
	}
	if spread(fmax*0.97) <= spread(0.25) {
		t.Errorf("noise near fmax (%v) should exceed noise at relaxed target (%v)",
			spread(fmax*0.97), spread(0.25))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	d := tiny(7)
	a := Run(d, Options{TargetFreqGHz: 0.8, Seed: 42})
	b := Run(d, Options{TargetFreqGHz: 0.8, Seed: 42})
	if a.AreaUm2 != b.AreaUm2 || a.WNSPs != b.WNSPs || a.Upsized != b.Upsized {
		t.Fatalf("same seed gave different results: %+v vs %+v", a, b)
	}
}

func TestHighFanoutBuffered(t *testing.T) {
	d := tiny(8)
	// Manufacture a high-fanout net: connect many sinks to net of inst 20.
	target := d.FanoutNet[20]
	for i := 30; i < 55; i++ {
		if d.Insts[i].Cell.Class.Sequential() {
			continue
		}
		d.Connect(target, i, 0)
	}
	if err := d.Relevel(); err != nil {
		t.Fatal(err)
	}
	res := Run(d, Options{TargetFreqGHz: 0.4, Seed: 1, MaxFanout: 6})
	if res.BuffersAdded == 0 {
		t.Fatal("expected buffering of the 25+-sink net")
	}
	for i := range res.Netlist.Nets {
		net := &res.Netlist.Nets[i]
		if net.IsClock {
			continue
		}
		if len(net.Sinks) > 25 {
			t.Errorf("net %d still has %d sinks", i, len(net.Sinks))
		}
	}
	if err := res.Netlist.Validate(); err != nil {
		t.Fatalf("buffered netlist invalid: %v", err)
	}
}

func TestMetImpliesSignoffClose(t *testing.T) {
	// Synthesis closes on the fast engine; signoff should be within
	// the engines' miscorrelation band, not wildly off.
	d := tiny(9)
	res := Run(d, Options{TargetFreqGHz: 0.4, Seed: 1})
	if !res.Met {
		t.Skip("target not met")
	}
	so := sta.Analyze(res.Netlist, sta.Config{Engine: sta.Signoff})
	if so.WNSPs < res.WNSPs-400 {
		t.Errorf("signoff WNS %v too far below fast WNS %v", so.WNSPs, res.WNSPs)
	}
}

func TestMaxAchievableFreqBounds(t *testing.T) {
	d := tiny(10)
	fmax := MaxAchievableFreq(d, Options{Seed: 3}, 0.2, 4)
	if fmax <= 0.2 || fmax >= 4 {
		t.Fatalf("fmax %v outside (0.2, 4)", fmax)
	}
	met := Run(d, Options{TargetFreqGHz: fmax, Seed: 3})
	if !met.Met {
		t.Errorf("fmax %v from bisection should be achievable", fmax)
	}
	// Met(f) is not strictly monotone (tighter targets get more sizing
	// effort), so only check a generous margin above fmax.
	notMet := Run(d, Options{TargetFreqGHz: fmax * 3, Seed: 3})
	if notMet.Met {
		t.Errorf("fmax*3 = %v GHz should not be achievable", fmax*3)
	}
}

func TestEffortReducesViolations(t *testing.T) {
	d := tiny(11)
	fmax := MaxAchievableFreq(d, Options{Seed: 1}, 0.3, 3)
	lo := Run(d, Options{TargetFreqGHz: fmax * 1.05, Seed: 1, Effort: 1})
	hi := Run(d, Options{TargetFreqGHz: fmax * 1.05, Seed: 1, Effort: 3})
	if hi.WNSPs < lo.WNSPs-1 {
		t.Errorf("higher effort should not be clearly worse: effort3 WNS %v vs effort1 %v", hi.WNSPs, lo.WNSPs)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Effort != 2 || o.MaxFanout != 8 || o.UpsizeFrac != 0.35 || o.TargetFreqGHz != 0.5 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}
