// Package drcfix implements the robot engineer for manual DRC violation
// fixing — the first of the paper's "obvious, high-value applications"
// for robot engineers in Sec. 3.1 ("automation of manual DRC violation
// fixing"). A routing run that ends under the 200-DRV success threshold
// still leaves violations that humans fix by hand, one at a time, where
// each fix can disturb neighbors and create new violations.
//
// The simulator models that: violations live on a congestion grid, a fix
// attempt succeeds with a probability that falls with local crowding,
// and a successful fix may spawn secondary violations nearby. The robot
// applies an expert strategy (decongest the worst neighborhoods first,
// escalate fix strength after repeated failures); the baseline attacks
// violations in arbitrary order.
package drcfix

import (
	"math/rand"
)

// Violation is one design-rule violation.
type Violation struct {
	ID   int
	X, Y int // congestion-grid cell
	Kind Kind
	// Attempts counts fix tries so far (escalation input).
	Attempts int
}

// Kind classifies a violation.
type Kind int

// Violation kinds, in increasing fix difficulty.
const (
	Spacing Kind = iota
	ViaEnclosure
	Width
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Spacing:
		return "spacing"
	case ViaEnclosure:
		return "via"
	default:
		return "width"
	}
}

// baseFixProb is the per-attempt success probability by kind in an
// uncrowded neighborhood.
var baseFixProb = [numKinds]float64{Spacing: 0.8, ViaEnclosure: 0.6, Width: 0.45}

// Field is the violation landscape.
type Field struct {
	GridDim    int
	Violations map[int]*Violation
	nextID     int
	rng        *rand.Rand
}

// NewField seeds a field with n violations clustered into hotspots (real
// residual DRVs cluster where congestion was worst).
func NewField(n, gridDim int, seed int64) *Field {
	if gridDim <= 0 {
		gridDim = 12
	}
	f := &Field{GridDim: gridDim, Violations: map[int]*Violation{}, rng: rand.New(rand.NewSource(seed))}
	// A few hotspot centers; violations scatter around them.
	centers := 1 + n/25
	cx := make([]int, centers)
	cy := make([]int, centers)
	for i := range cx {
		cx[i] = f.rng.Intn(gridDim)
		cy[i] = f.rng.Intn(gridDim)
	}
	for i := 0; i < n; i++ {
		c := f.rng.Intn(centers)
		f.add(clampInt(cx[c]+f.rng.Intn(5)-2, 0, gridDim-1),
			clampInt(cy[c]+f.rng.Intn(5)-2, 0, gridDim-1),
			Kind(f.rng.Intn(int(numKinds))))
	}
	return f
}

func (f *Field) add(x, y int, k Kind) *Violation {
	v := &Violation{ID: f.nextID, X: x, Y: y, Kind: k}
	f.nextID++
	f.Violations[v.ID] = v
	return v
}

// Count returns the open violation count.
func (f *Field) Count() int { return len(f.Violations) }

// crowding returns how many violations share the cell and its 4
// neighbors.
func (f *Field) crowding(x, y int) int {
	c := 0
	for _, v := range f.Violations {
		dx, dy := v.X-x, v.Y-y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy <= 1 {
			c++
		}
	}
	return c
}

// TryFix attempts one violation. Success removes it but may spawn a
// secondary violation nearby when the neighborhood is crowded; failure
// increments the attempt count. Escalated attempts (Attempts >= 2) use a
// stronger fix: higher success odds but a higher spawn chance too.
func (f *Field) TryFix(id int) (fixed bool, spawned int) {
	v, ok := f.Violations[id]
	if !ok {
		return false, 0
	}
	crowd := f.crowding(v.X, v.Y)
	p := baseFixProb[v.Kind] / (1 + 0.25*float64(crowd-1))
	spawnP := 0.10 + 0.05*float64(crowd-1)
	if v.Attempts >= 2 { // escalated fix (bigger rip-up)
		p = minF(1, p*1.8)
		spawnP += 0.15
	}
	if f.rng.Float64() < p {
		delete(f.Violations, id)
		if f.rng.Float64() < spawnP {
			nx := clampInt(v.X+f.rng.Intn(3)-1, 0, f.GridDim-1)
			ny := clampInt(v.Y+f.rng.Intn(3)-1, 0, f.GridDim-1)
			f.add(nx, ny, Kind(f.rng.Intn(int(numKinds))))
			spawned = 1
		}
		return true, spawned
	}
	v.Attempts++
	return false, 0
}

// Result summarizes a fixing campaign.
type Result struct {
	Strategy   string
	StartCount int
	FinalCount int
	Attempts   int
	Cleaned    bool
}

// RunRobot runs the expert strategy: always attack the violation with
// the highest immediate fix probability (easy kinds in uncrowded
// neighborhoods first). Clearing the easy periphery thins crowding
// around the hard cores, so their fix odds improve by the time the
// robot reaches them; escalation (tracked per violation) is accounted
// for in the odds. Budget caps total attempts.
func RunRobot(f *Field, budget int) Result {
	res := Result{Strategy: "robot", StartCount: f.Count()}
	for res.Attempts < budget && f.Count() > 0 {
		bestID := -1
		bestP := -1.0
		for id, v := range f.Violations {
			crowd := f.crowding(v.X, v.Y)
			p := baseFixProb[v.Kind] / (1 + 0.25*float64(crowd-1))
			if v.Attempts >= 2 {
				p = minF(1, p*1.8)
			}
			if p > bestP || (p == bestP && id < bestID) {
				bestID, bestP = id, p
			}
		}
		f.TryFix(bestID)
		res.Attempts++
	}
	res.FinalCount = f.Count()
	res.Cleaned = res.FinalCount == 0
	return res
}

// RunNaive attacks violations in arbitrary (ID) order without
// escalation awareness — the trial-and-error baseline.
func RunNaive(f *Field, budget int) Result {
	res := Result{Strategy: "naive", StartCount: f.Count()}
	for res.Attempts < budget && f.Count() > 0 {
		// Lowest-ID open violation.
		bestID := -1
		for id := range f.Violations {
			if bestID < 0 || id < bestID {
				bestID = id
			}
		}
		f.TryFix(bestID)
		res.Attempts++
	}
	res.FinalCount = f.Count()
	res.Cleaned = res.FinalCount == 0
	return res
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
