package drcfix

import "testing"

func TestNewFieldSeedsViolations(t *testing.T) {
	f := NewField(50, 12, 1)
	if f.Count() != 50 {
		t.Fatalf("seeded %d violations", f.Count())
	}
	for _, v := range f.Violations {
		if v.X < 0 || v.X >= 12 || v.Y < 0 || v.Y >= 12 {
			t.Fatalf("violation off grid: %+v", v)
		}
	}
}

func TestTryFixBehaviour(t *testing.T) {
	f := NewField(30, 12, 2)
	var anyFixed, anyFailed bool
	ids := make([]int, 0, len(f.Violations))
	for id := range f.Violations {
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, ok := f.Violations[id]; !ok {
			continue // removed by an earlier spawn/fix interplay
		}
		fixed, spawned := f.TryFix(id)
		if fixed {
			anyFixed = true
			if _, still := f.Violations[id]; still {
				t.Fatal("fixed violation still present")
			}
			if spawned < 0 || spawned > 1 {
				t.Fatalf("spawned %d", spawned)
			}
		} else {
			anyFailed = true
			if f.Violations[id].Attempts == 0 {
				t.Fatal("failed fix did not count attempt")
			}
		}
	}
	if !anyFixed || !anyFailed {
		t.Skipf("degenerate randomness (fixed=%t failed=%t)", anyFixed, anyFailed)
	}
	if _, ok := f.Violations[99999]; ok {
		t.Fatal("phantom id")
	}
	if fixed, _ := f.TryFix(99999); fixed {
		t.Fatal("fixing a nonexistent violation succeeded")
	}
}

func TestRobotCleansField(t *testing.T) {
	f := NewField(60, 12, 3)
	res := RunRobot(f, 2000)
	if !res.Cleaned {
		t.Fatalf("robot left %d violations after %d attempts", res.FinalCount, res.Attempts)
	}
	if res.Attempts < res.StartCount {
		t.Fatal("cannot clean faster than one attempt per violation")
	}
}

func TestRobotBeatsNaiveOnAverage(t *testing.T) {
	var robot, naive int
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		fr := NewField(60, 12, seed)
		robot += RunRobot(fr, 5000).Attempts
		fn := NewField(60, 12, seed)
		naive += RunNaive(fn, 5000).Attempts
	}
	if robot >= naive {
		t.Errorf("robot mean attempts %d not below naive %d", robot/trials, naive/trials)
	}
}

func TestBudgetRespected(t *testing.T) {
	f := NewField(100, 12, 4)
	res := RunRobot(f, 10)
	if res.Attempts > 10 {
		t.Fatalf("budget exceeded: %d", res.Attempts)
	}
	if res.Cleaned {
		t.Fatal("cannot clean 100 violations in 10 attempts")
	}
}

func TestKindString(t *testing.T) {
	if Spacing.String() != "spacing" || ViaEnclosure.String() != "via" || Width.String() != "width" {
		t.Error("kind names wrong")
	}
}
