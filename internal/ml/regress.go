package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Ridge is a linear model fit with L2 regularization (lambda = 0 gives
// ordinary least squares).
type Ridge struct {
	Coef      []float64
	Intercept float64
	Lambda    float64
}

// FitRidge fits y ~ X with ridge penalty lambda on the coefficients (the
// intercept is unpenalized). X is row-major, one sample per row.
func FitRidge(x [][]float64, y []float64, lambda float64) (*Ridge, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d samples vs %d targets", len(x), len(y))
	}
	d := len(x[0])
	// Augment with a bias column; normal equations (X'X + λI) w = X'y.
	n := d + 1
	xtx := make([][]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	xty := make([]float64, n)
	row := make([]float64, n)
	for s := range x {
		if len(x[s]) != d {
			return nil, fmt.Errorf("ml: ragged sample %d (%d features, want %d)", s, len(x[s]), d)
		}
		copy(row, x[s])
		row[d] = 1
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[s]
		}
	}
	for i := 0; i < d; i++ { // bias unpenalized
		xtx[i][i] += lambda
	}
	w, err := SolveLinear(xtx, xty)
	if err != nil {
		// Fall back to a heavier ridge for collinear inputs.
		for i := 0; i < d; i++ {
			xtx[i][i] += 1e-6 + lambda
		}
		w, err = SolveLinear(xtx, xty)
		if err != nil {
			return nil, err
		}
	}
	return &Ridge{Coef: w[:d], Intercept: w[d], Lambda: lambda}, nil
}

// FitLinear fits ordinary least squares.
func FitLinear(x [][]float64, y []float64) (*Ridge, error) { return FitRidge(x, y, 0) }

// Predict evaluates the model on one sample.
func (r *Ridge) Predict(sample []float64) float64 {
	p := r.Intercept
	for i, c := range r.Coef {
		if i < len(sample) {
			p += c * sample[i]
		}
	}
	return p
}

// PredictAll evaluates the model on many samples.
func (r *Ridge) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = r.Predict(x[i])
	}
	return out
}

// PolyFeatures expands each sample with pairwise products and squares
// (degree-2 polynomial basis, no bias term).
func PolyFeatures(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for s, row := range x {
		ext := append([]float64(nil), row...)
		for i := 0; i < len(row); i++ {
			for j := i; j < len(row); j++ {
				ext = append(ext, row[i]*row[j])
			}
		}
		out[s] = ext
	}
	return out
}

// Scaler standardizes features to zero mean, unit variance.
type Scaler struct {
	Mu, Sigma []float64
}

// FitScaler learns per-feature statistics.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{Mu: make([]float64, d), Sigma: make([]float64, d)}
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		s.Mu[j] = Mean(col)
		s.Sigma[j] = StdDev(col)
		if s.Sigma[j] == 0 {
			s.Sigma[j] = 1
		}
	}
	return s
}

// Transform standardizes samples (returns new slices).
func (s *Scaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j := range row {
			if j < len(s.Mu) {
				r[j] = (row[j] - s.Mu[j]) / s.Sigma[j]
			} else {
				r[j] = row[j]
			}
		}
		out[i] = r
	}
	return out
}

// KNN is a k-nearest-neighbour regressor with Euclidean distance.
type KNN struct {
	K int
	X [][]float64
	Y []float64
}

// FitKNN stores the training set.
func FitKNN(x [][]float64, y []float64, k int) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{K: k, X: x, Y: y}
}

// Predict averages the k nearest training targets.
func (m *KNN) Predict(sample []float64) float64 {
	type nd struct {
		d float64
		y float64
	}
	ds := make([]nd, len(m.X))
	for i, row := range m.X {
		var d float64
		for j := range row {
			if j < len(sample) {
				diff := row[j] - sample[j]
				d += diff * diff
			}
		}
		ds[i] = nd{d: d, y: m.Y[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := m.K
	if k > len(ds) {
		k = len(ds)
	}
	if k == 0 {
		return 0
	}
	var s float64
	for i := 0; i < k; i++ {
		s += ds[i].y
	}
	return s / float64(k)
}

// Errors

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root-mean-square error.
func RMSE(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// R2 returns the coefficient of determination.
func R2(pred, truth []float64) float64 {
	if len(pred) < 2 {
		return 0
	}
	m := Mean(truth)
	var ssRes, ssTot float64
	for i := range pred {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - m) * (truth[i] - m)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Split partitions samples into train and test sets with the given test
// fraction, shuffled deterministically by seed.
func Split(x [][]float64, y []float64, testFrac float64, seed int64) (xtr [][]float64, ytr []float64, xte [][]float64, yte []float64) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(x))
	nTest := int(float64(len(x)) * testFrac)
	for i, id := range idx {
		if i < nTest {
			xte = append(xte, x[id])
			yte = append(yte, y[id])
		} else {
			xtr = append(xtr, x[id])
			ytr = append(ytr, y[id])
		}
	}
	return
}
