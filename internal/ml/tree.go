package ml

import "sort"

// Tree is a binary CART classifier over float features with integer
// class labels. Used for doomed-run prediction baselines and option
// sensitivity mining.
type Tree struct {
	MaxDepth    int
	MinLeafSize int
	root        *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	class     int
	leaf      bool
}

// FitTree builds a classification tree with Gini impurity splits.
func FitTree(x [][]float64, y []int, maxDepth, minLeafSize int) *Tree {
	if maxDepth < 1 {
		maxDepth = 4
	}
	if minLeafSize < 1 {
		minLeafSize = 2
	}
	t := &Tree{MaxDepth: maxDepth, MinLeafSize: minLeafSize}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, 0)
	return t
}

func majority(y []int, idx []int) int {
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN := 0, -1
	// Deterministic tie-break: smallest class wins.
	classes := make([]int, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	return best
}

func gini(y []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	g := 1.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

func (t *Tree) build(x [][]float64, y []int, idx []int, depth int) *treeNode {
	node := &treeNode{leaf: true, class: majority(y, idx)}
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeafSize || gini(y, idx) == 0 {
		return node
	}
	d := len(x[idx[0]])
	bestGain := 1e-9
	bestFeat, bestThr := -1, 0.0
	parent := gini(y, idx)
	for f := 0; f < d; f++ {
		// Candidate thresholds: midpoints of sorted unique values.
		vals := make([]float64, len(idx))
		for i, id := range idx {
			vals[i] = x[id][f]
		}
		sort.Float64s(vals)
		for i := 1; i < len(vals); i++ {
			if vals[i] == vals[i-1] {
				continue
			}
			thr := (vals[i] + vals[i-1]) / 2
			var l, r []int
			for _, id := range idx {
				if x[id][f] <= thr {
					l = append(l, id)
				} else {
					r = append(r, id)
				}
			}
			if len(l) < t.MinLeafSize || len(r) < t.MinLeafSize {
				continue
			}
			n := float64(len(idx))
			gain := parent - float64(len(l))/n*gini(y, l) - float64(len(r))/n*gini(y, r)
			if gain > bestGain {
				bestGain, bestFeat, bestThr = gain, f, thr
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var l, r []int
	for _, id := range idx {
		if x[id][bestFeat] <= bestThr {
			l = append(l, id)
		} else {
			r = append(r, id)
		}
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = t.build(x, y, l, depth+1)
	node.right = t.build(x, y, r, depth+1)
	return node
}

// Predict classifies one sample.
func (t *Tree) Predict(sample []float64) int {
	n := t.root
	for n != nil && !n.leaf {
		if n.feature < len(sample) && sample[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return 0
	}
	return n.class
}

// Accuracy returns the fraction of correct predictions.
func (t *Tree) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	ok := 0
	for i := range x {
		if t.Predict(x[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(x))
}

// Depth returns the tree's realized depth.
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
