// Package ml is a small, dependency-free machine-learning toolkit: linear
// and ridge regression, k-nearest-neighbour regression, a CART decision
// tree, feature scaling, and the distribution statistics (Gaussian fit,
// Jarque-Bera normality test) used by the implementation-noise study.
//
// The paper's central theme is that "machine learning techniques must
// pervade EDA tools"; this package is the reproduction's shared model
// substrate, consumed by internal/correlate (analysis correlation),
// internal/noise (Fig. 3), and internal/metrics (the data miner).
package ml

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the sample skewness (0 for n < 3 or zero variance).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (0 for n < 4 or zero
// variance).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Gaussian is a fitted normal distribution.
type Gaussian struct {
	Mu, Sigma float64
}

// FitGaussian estimates a normal distribution from samples.
func FitGaussian(xs []float64) Gaussian {
	return Gaussian{Mu: Mean(xs), Sigma: StdDev(xs)}
}

// PDF evaluates the normal density.
func (g Gaussian) PDF(x float64) float64 {
	if g.Sigma <= 0 {
		return 0
	}
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates the normal cumulative distribution.
func (g Gaussian) CDF(x float64) float64 {
	if g.Sigma <= 0 {
		if x < g.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
}

// JarqueBera computes the Jarque-Bera normality statistic and its
// asymptotic p-value (chi-square, 2 degrees of freedom). Small statistics
// / large p-values are consistent with Gaussian data — the check behind
// the paper's Fig. 3 (right): "noise is essentially Gaussian".
func JarqueBera(xs []float64) (stat, pValue float64) {
	n := float64(len(xs))
	if n < 8 {
		return 0, 1
	}
	s := Skewness(xs)
	k := Kurtosis(xs)
	stat = n / 6 * (s*s + k*k/4)
	// chi2(2) survival function: exp(-x/2).
	pValue = math.Exp(-stat / 2)
	return stat, pValue
}

// Histogram bins xs into `bins` equal-width buckets between min and max.
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
}

// NewHistogram builds a histogram (bins >= 1; empty input yields zeroed
// histogram).
func NewHistogram(xs []float64, bins int) Histogram {
	if bins < 1 {
		bins = 1
	}
	h := Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		h.Min = math.Min(h.Min, x)
		h.Max = math.Max(h.Max, x)
	}
	if h.Max == h.Min {
		h.Max = h.Min + 1
	}
	h.Width = (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		b := int((x - h.Min) / h.Width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (0 if degenerate).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("ml: singular system")

// SolveLinear solves A x = b by Gaussian elimination with partial
// pivoting. A is row-major n x n and is not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
