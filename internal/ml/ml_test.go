package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("variance = %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
}

func TestGaussianFitAndCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	g := FitGaussian(xs)
	if math.Abs(g.Mu-10) > 0.15 || math.Abs(g.Sigma-2) > 0.15 {
		t.Errorf("fit %+v, want mu=10 sigma=2", g)
	}
	if c := g.CDF(g.Mu); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("CDF(mu) = %v", c)
	}
	if p := g.PDF(g.Mu); p <= g.PDF(g.Mu+3*g.Sigma) {
		t.Error("PDF should peak at mu")
	}
}

func TestJarqueBera(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	normal := make([]float64, 2000)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	_, pN := JarqueBera(normal)
	if pN < 0.01 {
		t.Errorf("normal data rejected: p = %v", pN)
	}
	skewed := make([]float64, 2000)
	for i := range skewed {
		skewed[i] = math.Exp(rng.NormFloat64())
	}
	statS, pS := JarqueBera(skewed)
	if pS > 0.01 {
		t.Errorf("lognormal data accepted: stat=%v p=%v", statS, pS)
	}
	if _, p := JarqueBera([]float64{1, 2}); p != 1 {
		t.Error("tiny sample should return p=1")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %v", h.Counts)
	}
	for _, c := range h.Counts {
		if c != 2 {
			t.Errorf("uniform data unevenly binned: %v", h.Counts)
		}
	}
	empty := NewHistogram(nil, 3)
	if len(empty.Counts) != 3 {
		t.Error("empty histogram should keep bin count")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if Pearson(xs, xs[:2]) != 0 {
		t.Error("length mismatch should be 0")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
	if _, err := SolveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular system not detected")
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+7+0.01*rng.NormFloat64())
	}
	m, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.02 || math.Abs(m.Coef[1]+2) > 0.02 || math.Abs(m.Intercept-7) > 0.05 {
		t.Errorf("fit %v intercept %v", m.Coef, m.Intercept)
	}
	pred := m.PredictAll(x)
	if r2 := R2(pred, y); r2 < 0.999 {
		t.Errorf("R2 = %v", r2)
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a := rng.Float64()
		x = append(x, []float64{a})
		y = append(y, 5*a+rng.NormFloat64())
	}
	ols, _ := FitLinear(x, y)
	heavy, _ := FitRidge(x, y, 1e6)
	if math.Abs(heavy.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Errorf("heavy ridge should shrink: |%v| vs |%v|", heavy.Coef[0], ols.Coef[0])
	}
}

func TestRidgeHandlesCollinear(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		a := float64(i)
		x = append(x, []float64{a, 2 * a}) // perfectly collinear
		y = append(y, a)
	}
	m, err := FitRidge(x, y, 0)
	if err != nil {
		t.Fatalf("collinear fallback failed: %v", err)
	}
	if RMSE(m.PredictAll(x), y) > 1 {
		t.Error("collinear fit useless")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := FitLinear([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged fit should error")
	}
}

func TestPolyFeatures(t *testing.T) {
	out := PolyFeatures([][]float64{{2, 3}})
	// [2 3 4 6 9]
	want := []float64{2, 3, 4, 6, 9}
	if len(out[0]) != len(want) {
		t.Fatalf("got %v", out[0])
	}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("got %v, want %v", out[0], want)
		}
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s := FitScaler(x)
	tx := s.Transform(x)
	for j := 0; j < 2; j++ {
		col := []float64{tx[0][j], tx[1][j], tx[2][j]}
		if math.Abs(Mean(col)) > 1e-9 {
			t.Errorf("col %d mean %v", j, Mean(col))
		}
		if math.Abs(StdDev(col)-1) > 1e-9 {
			t.Errorf("col %d std %v", j, StdDev(col))
		}
	}
	// Constant column must not divide by zero.
	c := FitScaler([][]float64{{5}, {5}})
	if got := c.Transform([][]float64{{5}})[0][0]; got != 0 {
		t.Errorf("constant col transform = %v", got)
	}
}

func TestKNN(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	y := []float64{0, 0, 0, 1, 1, 1}
	m := FitKNN(x, y, 3)
	if p := m.Predict([]float64{1}); p != 0 {
		t.Errorf("predict near cluster 0 = %v", p)
	}
	if p := m.Predict([]float64{11}); p != 1 {
		t.Errorf("predict near cluster 1 = %v", p)
	}
	if p := FitKNN(x, y, 100).Predict([]float64{5}); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("k>n should average all: %v", p)
	}
}

func TestTreeSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		cls := 0
		if a > 0.5 && b > 0.3 {
			cls = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, cls)
	}
	tree := FitTree(x, y, 4, 2)
	if acc := tree.Accuracy(x, y); acc < 0.95 {
		t.Errorf("train accuracy %v", acc)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split")
	}
}

func TestTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{7, 7, 7}
	tree := FitTree(x, y, 4, 1)
	if tree.Depth() != 0 {
		t.Error("pure data should be a single leaf")
	}
	if tree.Predict([]float64{99}) != 7 {
		t.Error("leaf class wrong")
	}
}

func TestSplitPartitions(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, float64(i))
	}
	xtr, ytr, xte, yte := Split(x, y, 0.25, 1)
	if len(xte) != 25 || len(xtr) != 75 {
		t.Fatalf("split sizes %d/%d", len(xtr), len(xte))
	}
	if len(ytr) != 75 || len(yte) != 25 {
		t.Fatal("target sizes wrong")
	}
	seen := make(map[float64]bool)
	for _, v := range append(append([]float64{}, ytr...), yte...) {
		if seen[v] {
			t.Fatal("duplicate sample in split")
		}
		seen[v] = true
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 4}
	if m := MAE(pred, truth); math.Abs(m-1.0/3) > 1e-12 {
		t.Errorf("MAE = %v", m)
	}
	if r := RMSE(pred, truth); math.Abs(r-math.Sqrt(1.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", r)
	}
	if r2 := R2(truth, truth); r2 != 1 {
		t.Errorf("perfect R2 = %v", r2)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	f := func(xs []float64, q float64) bool {
		if len(xs) == 0 {
			return Quantile(xs, q) == 0
		}
		q = math.Abs(math.Mod(q, 1))
		v := Quantile(xs, q)
		return v >= Quantile(xs, 0)-1e-9 && v <= Quantile(xs, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
