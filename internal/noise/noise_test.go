package noise

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
)

func tiny(seed int64) *netlist.Netlist {
	return netlist.Generate(cellib.Default14nm(), netlist.Tiny(seed))
}

func TestSweepBasics(t *testing.T) {
	st := Sweep(tiny(1), Config{Seeds: 10, Steps: 5, Seed: 1})
	if len(st.Points) != 5 {
		t.Fatalf("%d points", len(st.Points))
	}
	if st.FMax <= 0 {
		t.Fatal("no fmax")
	}
	for i, p := range st.Points {
		if len(p.AreaSamples) != 10 {
			t.Fatalf("point %d: %d samples", i, len(p.AreaSamples))
		}
		if p.MeanArea <= 0 {
			t.Fatalf("point %d: mean area %v", i, p.MeanArea)
		}
		if p.MetFrac < 0 || p.MetFrac > 1 {
			t.Fatalf("point %d: met frac %v", i, p.MetFrac)
		}
	}
	// Targets ascend.
	for i := 1; i < len(st.Points); i++ {
		if st.Points[i].TargetFreqGHz <= st.Points[i-1].TargetFreqGHz {
			t.Fatal("targets not ascending")
		}
	}
}

func TestNoiseGrowsTowardFMax(t *testing.T) {
	st := Sweep(tiny(2), Config{Seeds: 12, Steps: 6, Seed: 2})
	if !st.NoiseGrowsTowardFMax() {
		lo, hi := st.Points[0], st.Points[len(st.Points)-1]
		t.Errorf("noise did not grow: std %v at %v GHz vs %v at %v GHz",
			lo.StdArea, lo.TargetFreqGHz, hi.StdArea, hi.TargetFreqGHz)
	}
}

func TestMetFracFallsTowardFMax(t *testing.T) {
	st := Sweep(tiny(3), Config{Seeds: 10, Steps: 6, Seed: 3})
	first, last := st.Points[0], st.Points[len(st.Points)-1]
	if last.MetFrac > first.MetFrac {
		t.Errorf("met fraction should fall near fmax: %v -> %v", first.MetFrac, last.MetFrac)
	}
	if first.MetFrac < 0.9 {
		t.Errorf("half-fmax target met only %v of runs", first.MetFrac)
	}
}

func TestAreaJumpNearFmax(t *testing.T) {
	st := Sweep(tiny(4), Config{Seeds: 8, Steps: 8, Seed: 4})
	if st.AreaJumpPct() <= 0 {
		t.Error("no area jump measured across targets")
	}
}

func TestExplicitTargets(t *testing.T) {
	st := Sweep(tiny(5), Config{Seeds: 5, Targets: []float64{0.3, 0.6}, Seed: 5})
	if len(st.Points) != 2 {
		t.Fatalf("%d points", len(st.Points))
	}
	if st.Points[0].TargetFreqGHz != 0.3 || st.Points[1].TargetFreqGHz != 0.6 {
		t.Fatal("explicit targets not used")
	}
}

func TestGaussianAt(t *testing.T) {
	st := Sweep(tiny(6), Config{Seeds: 16, Steps: 4, Seed: 6})
	g, h := st.GaussianAt(len(st.Points)-1, 6)
	if g.Mu <= 0 {
		t.Error("gaussian fit mean must be positive")
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 16 {
		t.Errorf("histogram holds %d samples", total)
	}
}

func TestFullFlowMode(t *testing.T) {
	st := Sweep(tiny(7), Config{Seeds: 2, Targets: []float64{0.3}, FullFlow: true, Seed: 7})
	if len(st.Points) != 1 || len(st.Points[0].AreaSamples) != 2 {
		t.Fatal("full-flow sweep malformed")
	}
	if st.Points[0].MeanArea <= 0 {
		t.Fatal("full-flow area missing")
	}
}
