// Package noise characterizes SP&R implementation noise — the paper's
// Fig. 3 (refs [15][29]): post-implementation area scatters run-to-run
// under identical inputs, the scatter grows as the target frequency
// approaches the maximum achievable, and its distribution is essentially
// Gaussian.
package noise

import (
	"context"
	"math"

	"repro/internal/campaign"
	"repro/internal/flow"
	"repro/internal/ml"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// Point is the noise measurement at one target frequency.
type Point struct {
	TargetFreqGHz float64
	AreaSamples   []float64 // one per run seed
	MeanArea      float64
	StdArea       float64
	SpreadPct     float64 // (max-min)/mean * 100
	MetFrac       float64 // fraction of runs meeting timing
	JBStat        float64 // Jarque-Bera statistic of the samples
	JBPValue      float64
}

// Study is a full area-versus-target sweep.
type Study struct {
	Design string
	FMax   float64 // max achievable frequency (seed-0 bisection)
	Points []Point
}

// Config parameterizes the sweep.
type Config struct {
	Seeds    int  // runs per frequency point (default 20)
	FullFlow bool // run the whole SP&R flow (slower) instead of synthesis only
	// Targets are the frequencies to sample; if empty, a ramp from
	// 0.5*fmax to 1.02*fmax is generated with Steps points.
	Targets []float64
	Steps   int // default 8
	Seed    int64
	// Workers is the concurrent-run limit for the sweep (0 = one per
	// CPU). Per-run seeds are fixed by sweep position, so the results
	// are bit-identical at any worker count.
	Workers int
	// Cache memoizes full-flow runs across studies (optional; only
	// consulted when FullFlow is set).
	Cache *campaign.Cache
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 20
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	return c
}

// Sweep measures implementation noise across target frequencies.
func Sweep(design *netlist.Netlist, cfg Config) Study {
	cfg = cfg.withDefaults()
	st := Study{Design: design.Name}
	st.FMax = synth.MaxAchievableFreq(design, synth.Options{Seed: cfg.Seed}, 0.2, 5)
	targets := cfg.Targets
	if len(targets) == 0 {
		for i := 0; i < cfg.Steps; i++ {
			frac := 0.5 + (1.02-0.5)*float64(i)/float64(cfg.Steps-1)
			targets = append(targets, st.FMax*frac)
		}
	}
	// Fan the whole (target x seed) grid out over the campaign engine.
	// Each sample's seed is a pure function of its grid position —
	// exactly the serial loop's formula — so parallel execution is
	// bit-identical to the serial reference regardless of scheduling.
	type sample struct {
		area float64
		met  bool
	}
	eng := campaign.New(campaign.Config{Workers: campaign.Workers(cfg.Workers), Cache: cfg.Cache})
	grid := make([]sample, len(targets)*cfg.Seeds)
	if cfg.FullFlow {
		key := ""
		if cfg.Cache != nil {
			key = campaign.KeyFor(design)
		}
		pts := make([]campaign.Point, 0, len(grid))
		for ti, f := range targets {
			for s := 0; s < cfg.Seeds; s++ {
				pts = append(pts, campaign.Point{
					Design:    design,
					DesignKey: key,
					Options: flow.Options{
						TargetFreqGHz: f,
						Seed:          cfg.Seed + int64(1000*ti) + int64(s),
					},
				})
			}
		}
		results, _ := eng.Run(context.Background(), pts)
		for i, r := range results {
			grid[i] = sample{area: r.AreaUm2, met: r.TimingMet}
		}
	} else {
		campaign.Map(context.Background(), eng, len(grid), func(i int) struct{} { //nolint:errcheck
			ti, s := i/cfg.Seeds, i%cfg.Seeds
			r := synth.Run(design, synth.Options{
				TargetFreqGHz: targets[ti],
				Seed:          cfg.Seed + int64(1000*ti) + int64(s),
			})
			grid[i] = sample{area: r.AreaUm2, met: r.Met}
			return struct{}{}
		})
	}
	for ti, f := range targets {
		p := Point{TargetFreqGHz: f}
		met := 0
		for s := 0; s < cfg.Seeds; s++ {
			g := grid[ti*cfg.Seeds+s]
			p.AreaSamples = append(p.AreaSamples, g.area)
			if g.met {
				met++
			}
		}
		p.MeanArea = ml.Mean(p.AreaSamples)
		p.StdArea = ml.StdDev(p.AreaSamples)
		if p.MeanArea > 0 {
			p.SpreadPct = (ml.Quantile(p.AreaSamples, 1) - ml.Quantile(p.AreaSamples, 0)) / p.MeanArea * 100
		}
		p.MetFrac = float64(met) / float64(cfg.Seeds)
		p.JBStat, p.JBPValue = ml.JarqueBera(p.AreaSamples)
		st.Points = append(st.Points, p)
	}
	return st
}

// NoiseGrowsTowardFMax reports whether the area scatter near fmax
// exceeds the scatter at relaxed targets — the Fig. 3 (left) shape.
func (st Study) NoiseGrowsTowardFMax() bool {
	if len(st.Points) < 2 {
		return false
	}
	lo := st.Points[0]
	hi := st.Points[len(st.Points)-1]
	return hi.StdArea > lo.StdArea
}

// AreaJumpPct returns the largest relative mean-area change between
// adjacent frequency points, in percent — the "area can change by 6%
// when target frequency changes by just 10MHz" observation.
func (st Study) AreaJumpPct() float64 {
	var worst float64
	for i := 1; i < len(st.Points); i++ {
		a, b := st.Points[i-1].MeanArea, st.Points[i].MeanArea
		if a <= 0 {
			continue
		}
		jump := math.Abs(b-a) / a * 100
		if jump > worst {
			worst = jump
		}
	}
	return worst
}

// GaussianAt fits a Gaussian to the samples of point i and returns the
// fit plus a histogram for the Fig. 3 (right) visual.
func (st Study) GaussianAt(i int, bins int) (ml.Gaussian, ml.Histogram) {
	p := st.Points[i]
	return ml.FitGaussian(p.AreaSamples), ml.NewHistogram(p.AreaSamples, bins)
}
