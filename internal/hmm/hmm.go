// Package hmm implements discrete-emission hidden Markov models
// (scaled forward/backward, Viterbi, Baum-Welch) and a doomed-run
// detector built from a pair of HMMs — the paper's cited alternative to
// the MDP strategy card for modeling tool logfile time series
// ("Tool logfile data can be viewed as time series to which hidden
// Markov models [36] ... may be applied").
package hmm

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/logfile"
	"repro/internal/mdp"
)

// HMM is a discrete-emission hidden Markov model.
type HMM struct {
	NumStates  int
	NumSymbols int
	Pi         []float64   // initial distribution
	A          [][]float64 // transition probabilities [from][to]
	B          [][]float64 // emission probabilities [state][symbol]
}

// New creates an HMM with slightly perturbed uniform parameters (random
// symmetry breaking is required for Baum-Welch to learn anything).
func New(states, symbols int, seed int64) *HMM {
	rng := rand.New(rand.NewSource(seed))
	h := &HMM{NumStates: states, NumSymbols: symbols}
	h.Pi = randDist(rng, states)
	h.A = make([][]float64, states)
	h.B = make([][]float64, states)
	for s := 0; s < states; s++ {
		h.A[s] = randDist(rng, states)
		h.B[s] = randDist(rng, symbols)
	}
	return h
}

func randDist(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	var sum float64
	for i := range d {
		d[i] = 0.2 + rng.Float64()
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// ErrEmpty is returned for empty observation sequences.
var ErrEmpty = errors.New("hmm: empty observation sequence")

// Forward runs the scaled forward algorithm, returning per-step scaled
// alphas, the scale factors, and the sequence log-likelihood.
func (h *HMM) Forward(obs []int) (alpha [][]float64, scales []float64, logLik float64, err error) {
	if len(obs) == 0 {
		return nil, nil, 0, ErrEmpty
	}
	T := len(obs)
	alpha = make([][]float64, T)
	scales = make([]float64, T)
	for t := 0; t < T; t++ {
		alpha[t] = make([]float64, h.NumStates)
		var c float64
		for s := 0; s < h.NumStates; s++ {
			var p float64
			if t == 0 {
				p = h.Pi[s]
			} else {
				for q := 0; q < h.NumStates; q++ {
					p += alpha[t-1][q] * h.A[q][s]
				}
			}
			p *= h.emit(s, obs[t])
			alpha[t][s] = p
			c += p
		}
		if c == 0 {
			// Impossible observation under the model: floor to keep
			// the likelihood finite but tiny.
			c = 1e-300
		}
		scales[t] = c
		for s := range alpha[t] {
			alpha[t][s] /= c
		}
		logLik += math.Log(c)
	}
	return alpha, scales, logLik, nil
}

func (h *HMM) emit(state, symbol int) float64 {
	if symbol < 0 || symbol >= h.NumSymbols {
		return 1e-12
	}
	p := h.B[state][symbol]
	if p < 1e-12 {
		return 1e-12
	}
	return p
}

// LogLikelihood returns the log-probability of the observations.
func (h *HMM) LogLikelihood(obs []int) (float64, error) {
	_, _, ll, err := h.Forward(obs)
	return ll, err
}

// Filter returns P(state | obs[0..t]) for each t (the scaled alphas,
// which are exactly the filtering posteriors).
func (h *HMM) Filter(obs []int) ([][]float64, error) {
	alpha, _, _, err := h.Forward(obs)
	return alpha, err
}

// Viterbi returns the most likely state sequence.
func (h *HMM) Viterbi(obs []int) ([]int, error) {
	if len(obs) == 0 {
		return nil, ErrEmpty
	}
	T := len(obs)
	delta := make([][]float64, T)
	psi := make([][]int, T)
	for t := 0; t < T; t++ {
		delta[t] = make([]float64, h.NumStates)
		psi[t] = make([]int, h.NumStates)
		for s := 0; s < h.NumStates; s++ {
			if t == 0 {
				delta[t][s] = math.Log(math.Max(h.Pi[s], 1e-300)) + math.Log(h.emit(s, obs[t]))
				continue
			}
			best, bestQ := math.Inf(-1), 0
			for q := 0; q < h.NumStates; q++ {
				v := delta[t-1][q] + math.Log(math.Max(h.A[q][s], 1e-300))
				if v > best {
					best, bestQ = v, q
				}
			}
			delta[t][s] = best + math.Log(h.emit(s, obs[t]))
			psi[t][s] = bestQ
		}
	}
	path := make([]int, T)
	best, bestS := math.Inf(-1), 0
	for s := 0; s < h.NumStates; s++ {
		if delta[T-1][s] > best {
			best, bestS = delta[T-1][s], s
		}
	}
	path[T-1] = bestS
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, nil
}

// BaumWelch fits the model to the observation sequences with up to
// maxIters EM iterations, returning the final total log-likelihood.
func (h *HMM) BaumWelch(seqs [][]int, maxIters int) float64 {
	if maxIters <= 0 {
		maxIters = 30
	}
	var lastLL float64
	for iter := 0; iter < maxIters; iter++ {
		// Accumulators.
		piAcc := make([]float64, h.NumStates)
		aNum := make([][]float64, h.NumStates)
		aDen := make([]float64, h.NumStates)
		bNum := make([][]float64, h.NumStates)
		bDen := make([]float64, h.NumStates)
		for s := 0; s < h.NumStates; s++ {
			aNum[s] = make([]float64, h.NumStates)
			bNum[s] = make([]float64, h.NumSymbols)
		}
		var totalLL float64
		for _, obs := range seqs {
			if len(obs) == 0 {
				continue
			}
			T := len(obs)
			alpha, scales, ll, err := h.Forward(obs)
			if err != nil {
				continue
			}
			totalLL += ll
			// Scaled backward.
			beta := make([][]float64, T)
			beta[T-1] = make([]float64, h.NumStates)
			for s := range beta[T-1] {
				beta[T-1][s] = 1
			}
			for t := T - 2; t >= 0; t-- {
				beta[t] = make([]float64, h.NumStates)
				for s := 0; s < h.NumStates; s++ {
					var p float64
					for q := 0; q < h.NumStates; q++ {
						p += h.A[s][q] * h.emit(q, obs[t+1]) * beta[t+1][q]
					}
					beta[t][s] = p / scales[t+1]
				}
			}
			// Gammas and xis.
			for t := 0; t < T; t++ {
				var norm float64
				gamma := make([]float64, h.NumStates)
				for s := 0; s < h.NumStates; s++ {
					gamma[s] = alpha[t][s] * beta[t][s]
					norm += gamma[s]
				}
				if norm == 0 {
					continue
				}
				for s := 0; s < h.NumStates; s++ {
					g := gamma[s] / norm
					if t == 0 {
						piAcc[s] += g
					}
					bNum[s][clampSym(obs[t], h.NumSymbols)] += g
					bDen[s] += g
					if t < T-1 {
						aDen[s] += g
					}
				}
				if t < T-1 {
					for s := 0; s < h.NumStates; s++ {
						for q := 0; q < h.NumStates; q++ {
							xi := alpha[t][s] * h.A[s][q] * h.emit(q, obs[t+1]) * beta[t+1][q] / scales[t+1]
							aNum[s][q] += xi
						}
					}
				}
			}
		}
		// Re-estimate with small smoothing.
		const eps = 1e-6
		normalizeInto(h.Pi, piAcc, eps)
		for s := 0; s < h.NumStates; s++ {
			if aDen[s] > 0 {
				for q := 0; q < h.NumStates; q++ {
					h.A[s][q] = (aNum[s][q] + eps) / (aDen[s] + eps*float64(h.NumStates))
				}
			}
			if bDen[s] > 0 {
				for k := 0; k < h.NumSymbols; k++ {
					h.B[s][k] = (bNum[s][k] + eps) / (bDen[s] + eps*float64(h.NumSymbols))
				}
			}
		}
		if iter > 0 && math.Abs(totalLL-lastLL) < 1e-6 {
			lastLL = totalLL
			break
		}
		lastLL = totalLL
	}
	return lastLL
}

func clampSym(s, n int) int {
	if s < 0 {
		return 0
	}
	if s >= n {
		return n - 1
	}
	return s
}

func normalizeInto(dst, src []float64, eps float64) {
	var sum float64
	for _, v := range src {
		sum += v + eps
	}
	if sum == 0 {
		return
	}
	for i := range dst {
		dst[i] = (src[i] + eps) / sum
	}
}

// Detector classifies router runs as doomed using a likelihood ratio
// between an HMM trained on doomed runs and one trained on successful
// runs — the HMM counterpart of the MDP strategy card.
type Detector struct {
	Doomed  *HMM
	Success *HMM
	Cfg     mdp.CardConfig // reused for the violation binning
	// Threshold on the per-step log-likelihood ratio (default 0).
	Threshold float64
}

// TrainDetector fits the two HMMs on a labeled corpus.
func TrainDetector(runs []logfile.Run, states int, seed int64) *Detector {
	if states <= 0 {
		states = 3
	}
	cfg := mdp.CardConfig{}
	cfg = cfgDefaults(cfg)
	var good, bad [][]int
	for _, r := range runs {
		seq := Symbolize(r, cfg)
		if r.Success {
			good = append(good, seq)
		} else {
			bad = append(bad, seq)
		}
	}
	d := &Detector{
		Doomed:  New(states, cfg.ViolBins, seed),
		Success: New(states, cfg.ViolBins, seed+1),
		Cfg:     cfg,
	}
	d.Doomed.BaumWelch(bad, 25)
	d.Success.BaumWelch(good, 25)
	return d
}

// cfgDefaults applies the card defaults without exporting them from mdp.
func cfgDefaults(c mdp.CardConfig) mdp.CardConfig {
	if c.ViolBins <= 0 {
		c.ViolBins = 18
	}
	return c
}

// Symbolize converts a run's DRV series to violation-bin symbols.
func Symbolize(r logfile.Run, cfg mdp.CardConfig) []int {
	cfg = cfgDefaults(cfg)
	seq := make([]int, len(r.DRVs))
	for i, d := range r.DRVs {
		seq[i] = cfg.ViolBin(d)
	}
	return seq
}

// Outcome applies the detector to a run, requiring k consecutive doomed
// signals; it returns the stopping iteration or -1.
func (d *Detector) Outcome(r logfile.Run, k int) int {
	if k < 1 {
		k = 1
	}
	seq := Symbolize(r, d.Cfg)
	consec := 0
	for t := 1; t < len(seq); t++ {
		prefix := seq[:t+1]
		llBad, err1 := d.Doomed.LogLikelihood(prefix)
		llGood, err2 := d.Success.LogLikelihood(prefix)
		if err1 != nil || err2 != nil {
			return -1
		}
		// Per-step ratio so the signal is comparable across prefix
		// lengths.
		ratio := (llBad - llGood) / float64(len(prefix))
		if ratio > d.Threshold {
			consec++
			if consec >= k {
				return t
			}
		} else {
			consec = 0
		}
	}
	return -1
}

// Evaluate computes Type 1 / Type 2 errors for the detector on a corpus,
// mirroring mdp.Card.Evaluate so the two detectors can be ablated
// against each other.
func (d *Detector) Evaluate(runs []logfile.Run, consecutiveStops int) mdp.EvalResult {
	res := mdp.EvalResult{ConsecutiveStops: consecutiveStops, Runs: len(runs)}
	for _, r := range runs {
		iters := len(r.DRVs) - 1
		res.IterationsTotal += iters
		stoppedAt := d.Outcome(r, consecutiveStops)
		switch {
		case stoppedAt >= 0 && r.Success:
			res.Type1++
		case stoppedAt < 0 && !r.Success:
			res.Type2++
		}
		if stoppedAt >= 0 && !r.Success {
			res.IterationsSaved += iters - stoppedAt
		}
	}
	if res.Runs > 0 {
		res.TotalErrorPct = 100 * float64(res.Type1+res.Type2) / float64(res.Runs)
	}
	return res
}
