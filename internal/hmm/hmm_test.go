package hmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logfile"
	"repro/internal/mdp"
)

// twoRegimeSeqs draws sequences from a known 2-state generator.
func twoRegimeSeqs(n, length int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var seqs [][]int
	for i := 0; i < n; i++ {
		state := 0
		var seq []int
		for t := 0; t < length; t++ {
			if rng.Float64() < 0.1 {
				state = 1 - state
			}
			if state == 0 {
				seq = append(seq, rng.Intn(3)) // symbols 0-2
			} else {
				seq = append(seq, 3+rng.Intn(3)) // symbols 3-5
			}
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestForwardProbabilitiesNormalized(t *testing.T) {
	h := New(2, 6, 1)
	alpha, _, ll, err := h.Forward([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ll) || math.IsInf(ll, 0) {
		t.Fatalf("loglik %v", ll)
	}
	for t2, a := range alpha {
		var sum float64
		for _, v := range a {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha[%d] sums to %v", t2, sum)
		}
	}
}

func TestEmptySequenceErrors(t *testing.T) {
	h := New(2, 4, 1)
	if _, _, _, err := h.Forward(nil); err != ErrEmpty {
		t.Error("Forward should reject empty sequence")
	}
	if _, err := h.Viterbi(nil); err != ErrEmpty {
		t.Error("Viterbi should reject empty sequence")
	}
}

func TestBaumWelchIncreasesLikelihood(t *testing.T) {
	seqs := twoRegimeSeqs(20, 40, 2)
	h := New(2, 6, 3)
	var before float64
	for _, s := range seqs {
		ll, _ := h.LogLikelihood(s)
		before += ll
	}
	h.BaumWelch(seqs, 30)
	var after float64
	for _, s := range seqs {
		ll, _ := h.LogLikelihood(s)
		after += ll
	}
	if after <= before {
		t.Errorf("training did not improve likelihood: %v -> %v", before, after)
	}
}

func TestBaumWelchLearnsRegimes(t *testing.T) {
	seqs := twoRegimeSeqs(30, 60, 4)
	h := New(2, 6, 5)
	h.BaumWelch(seqs, 40)
	// After training, each state should specialize: one state mostly
	// emits symbols 0-2, the other 3-5.
	low0 := h.B[0][0] + h.B[0][1] + h.B[0][2]
	low1 := h.B[1][0] + h.B[1][1] + h.B[1][2]
	if !(low0 > 0.8 && low1 < 0.2 || low1 > 0.8 && low0 < 0.2) {
		t.Errorf("states did not specialize: low-mass %v vs %v", low0, low1)
	}
}

func TestViterbiTracksRegime(t *testing.T) {
	seqs := twoRegimeSeqs(30, 60, 6)
	h := New(2, 6, 7)
	h.BaumWelch(seqs, 40)
	// A sequence that switches cleanly: Viterbi should switch states.
	obs := []int{0, 1, 0, 2, 1, 0, 4, 5, 3, 4, 5, 4}
	path, err := h.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != len(obs) {
		t.Fatalf("path length %d", len(path))
	}
	majority := func(p []int) int {
		c := map[int]int{}
		for _, s := range p {
			c[s]++
		}
		best, bestC := 0, -1
		for s, n := range c {
			if n > bestC {
				best, bestC = s, n
			}
		}
		return best
	}
	if majority(path[:6]) == majority(path[6:]) {
		t.Errorf("Viterbi did not switch dominant state across the regime change: %v", path)
	}
}

func TestFilterMatchesForward(t *testing.T) {
	h := New(3, 6, 8)
	obs := []int{1, 2, 3, 4, 5, 0}
	alpha, _, _, _ := h.Forward(obs)
	filt, err := h.Filter(obs)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range alpha {
		for s := range alpha[t2] {
			if alpha[t2][s] != filt[t2][s] {
				t.Fatal("Filter should return the scaled alphas")
			}
		}
	}
}

func TestSymbolize(t *testing.T) {
	r := logfile.Run{DRVs: []int{0, 10, 10000}}
	seq := Symbolize(r, mdp.CardConfig{})
	if len(seq) != 3 {
		t.Fatalf("len %d", len(seq))
	}
	if !(seq[0] <= seq[1] && seq[1] <= seq[2]) {
		t.Error("symbols should be monotone in DRVs")
	}
}

func syntheticRun(id int, start, ratio, floor float64, iters int) logfile.Run {
	drvs := []int{int(start)}
	v := start
	for t := 0; t < iters; t++ {
		v = floor + (v-floor)*ratio
		drvs = append(drvs, int(v))
	}
	final := drvs[len(drvs)-1]
	return logfile.Run{ID: id, DRVs: drvs, Final: final, Success: final < 200}
}

func TestDetectorSeparatesDoomedFromSuccess(t *testing.T) {
	var train []logfile.Run
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			train = append(train, syntheticRun(i, 3000, 0.5, 0, 20))
		} else {
			train = append(train, syntheticRun(i, 20000, 0.85, 9000, 20))
		}
	}
	d := TrainDetector(train, 3, 1)
	doomed := syntheticRun(100, 25000, 0.85, 10000, 20)
	good := syntheticRun(101, 2500, 0.5, 0, 20)
	if at := d.Outcome(doomed, 2); at < 0 {
		t.Error("detector missed an obviously doomed run")
	}
	if at := d.Outcome(good, 3); at >= 0 {
		t.Errorf("detector stopped a clean run at %d", at)
	}
	res := d.Evaluate(train, 2)
	if res.TotalErrorPct > 30 {
		t.Errorf("training-set error %v%% too high", res.TotalErrorPct)
	}
}

func BenchmarkBaumWelch(b *testing.B) {
	seqs := twoRegimeSeqs(20, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New(2, 6, int64(i))
		h.BaumWelch(seqs, 10)
	}
}
