// Package correlate implements analysis miscorrelation measurement and
// its ML correction (the paper's Sec. 3.2, Fig. 8, and refs [14][27]):
// two timing engines disagree on the same design; a learned model maps
// the cheap engine's endpoint reports onto the expensive engine's
// results, shifting the accuracy-cost tradeoff curve ("accuracy for
// free").
package correlate

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Divergence quantifies miscorrelation between two engines on one
// design: per-endpoint slack deltas (to - from) and summary statistics.
type Divergence struct {
	DeltasPs []float64
	MAEPs    float64
	RMSEPs   float64
	MaxAbsPs float64
	// Disagreements counts endpoints where the engines disagree on
	// the sign of slack — exactly the iteration-forcing case the paper
	// describes (P&R says met, signoff says violated, or vice versa).
	Disagreements int
	Endpoints     int
}

// Measure runs both engines and compares endpoint slacks. Endpoints are
// matched positionally (both reports analyze the identical netlist, so
// the endpoint sets are identical and ordered identically); identity is
// verified.
func Measure(n *netlist.Netlist, from, to sta.Config) (Divergence, error) {
	a := sta.Analyze(n, from)
	b := sta.Analyze(n, to)
	return compare(a, b)
}

func compare(a, b *sta.Report) (Divergence, error) {
	var d Divergence
	if len(a.Endpoints) != len(b.Endpoints) {
		return d, fmt.Errorf("correlate: endpoint sets differ (%d vs %d)", len(a.Endpoints), len(b.Endpoints))
	}
	d.Endpoints = len(a.Endpoints)
	var sumAbs, sumSq float64
	for i := range a.Endpoints {
		ea, eb := a.Endpoints[i], b.Endpoints[i]
		if ea.Inst != eb.Inst || ea.Net != eb.Net {
			return d, fmt.Errorf("correlate: endpoint %d identity mismatch", i)
		}
		delta := eb.SlackPs - ea.SlackPs
		d.DeltasPs = append(d.DeltasPs, delta)
		abs := math.Abs(delta)
		sumAbs += abs
		sumSq += delta * delta
		if abs > d.MaxAbsPs {
			d.MaxAbsPs = abs
		}
		if (ea.SlackPs >= 0) != (eb.SlackPs >= 0) {
			d.Disagreements++
		}
	}
	if d.Endpoints > 0 {
		d.MAEPs = sumAbs / float64(d.Endpoints)
		d.RMSEPs = math.Sqrt(sumSq / float64(d.Endpoints))
	}
	return d, nil
}

// features extracts the model inputs from a cheap-engine endpoint: the
// structural and electrical attributes ref [14] uses (path depth, wire
// delay, slew, load, arrival, slack).
func features(ep sta.Endpoint) []float64 {
	return []float64{
		ep.SlackPs,
		ep.Arrival,
		float64(ep.Depth),
		ep.WirePs,
		ep.SlewPs,
		ep.FanoutLd,
	}
}

// Model maps cheap-engine endpoints to expensive-engine slacks.
type Model struct {
	From, To sta.Config
	reg      *ml.Ridge
	scaler   *ml.Scaler
	// TrainMAE is the residual error on the training set, ps.
	TrainMAE float64
	// InferenceCost is the (simulated) cost of applying the model,
	// negligible next to any engine run.
	InferenceCost float64
}

// Train fits a correction model from cheap to expensive engine over a
// set of training designs.
func Train(designs []*netlist.Netlist, from, to sta.Config) (*Model, error) {
	var x [][]float64
	var y []float64
	for _, n := range designs {
		a := sta.Analyze(n, from)
		b := sta.Analyze(n, to)
		if len(a.Endpoints) != len(b.Endpoints) {
			return nil, fmt.Errorf("correlate: endpoint mismatch on %s", n.Name)
		}
		for i := range a.Endpoints {
			x = append(x, features(a.Endpoints[i]))
			y = append(y, b.Endpoints[i].SlackPs)
		}
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("correlate: no endpoints to train on")
	}
	scaler := ml.FitScaler(x)
	xs := scaler.Transform(x)
	reg, err := ml.FitRidge(xs, y, 1.0)
	if err != nil {
		return nil, err
	}
	m := &Model{From: from, To: to, reg: reg, scaler: scaler, InferenceCost: 0.01}
	m.TrainMAE = ml.MAE(reg.PredictAll(xs), y)
	return m, nil
}

// PredictSlack maps one cheap-engine endpoint to the predicted
// expensive-engine slack.
func (m *Model) PredictSlack(ep sta.Endpoint) float64 {
	return m.reg.Predict(m.scaler.Transform([][]float64{features(ep)})[0])
}

// Apply runs the cheap engine on a design and returns ML-corrected
// endpoint slacks alongside the raw report.
func (m *Model) Apply(n *netlist.Netlist) (*sta.Report, []float64) {
	rep := sta.Analyze(n, m.From)
	out := make([]float64, len(rep.Endpoints))
	for i, ep := range rep.Endpoints {
		out[i] = m.PredictSlack(ep)
	}
	return rep, out
}

// Evaluate measures the model on a held-out design: MAE of raw cheap
// slacks vs truth, MAE of corrected slacks vs truth, and the residual
// sign disagreements after correction.
type Evaluation struct {
	RawMAEPs       float64
	CorrectedMAEPs float64
	RawDisagree    int
	CorrDisagree   int
	Endpoints      int
}

// Evaluate applies the model to a design and compares against the
// expensive engine.
func (m *Model) Evaluate(n *netlist.Netlist) (Evaluation, error) {
	var ev Evaluation
	rep, corrected := m.Apply(n)
	truth := sta.Analyze(n, m.To)
	if len(truth.Endpoints) != len(rep.Endpoints) {
		return ev, fmt.Errorf("correlate: endpoint mismatch on %s", n.Name)
	}
	ev.Endpoints = len(rep.Endpoints)
	var rawAbs, corrAbs float64
	for i := range rep.Endpoints {
		tr := truth.Endpoints[i].SlackPs
		raw := rep.Endpoints[i].SlackPs
		cor := corrected[i]
		rawAbs += math.Abs(raw - tr)
		corrAbs += math.Abs(cor - tr)
		if (raw >= 0) != (tr >= 0) {
			ev.RawDisagree++
		}
		if (cor >= 0) != (tr >= 0) {
			ev.CorrDisagree++
		}
	}
	if ev.Endpoints > 0 {
		ev.RawMAEPs = rawAbs / float64(ev.Endpoints)
		ev.CorrectedMAEPs = corrAbs / float64(ev.Endpoints)
	}
	return ev, nil
}

// CurvePoint is one engine configuration on the accuracy-cost plane of
// Fig. 8.
type CurvePoint struct {
	Name        string
	CostUnits   float64
	AccuracyPct float64 // 100 = matches the reference engine exactly
	MAEPs       float64
}

// AccuracyCostCurve evaluates the engine family against the most
// expensive configuration (signoff+SI+PBA, the "100%" reference) on a
// test design, plus the ML-corrected fast engine — reproducing the
// "+ML" shift of Fig. 8. Train designs feed the correction model.
func AccuracyCostCurve(train []*netlist.Netlist, test *netlist.Netlist) ([]CurvePoint, error) {
	truthCfg := sta.Config{Engine: sta.Signoff, SI: true, PathBased: true}
	truth := sta.Analyze(test, truthCfg)

	// Accuracy normalization: MAE relative to the spread of true
	// slacks (p95-p5), saturating at 0.
	var slacks []float64
	for _, ep := range truth.Endpoints {
		slacks = append(slacks, ep.SlackPs)
	}
	spread := ml.Quantile(slacks, 0.95) - ml.Quantile(slacks, 0.05)
	if spread <= 0 {
		spread = 1
	}
	acc := func(mae float64) float64 {
		a := 100 * (1 - mae/spread)
		if a < 0 {
			a = 0
		}
		return a
	}

	engines := []struct {
		name string
		cfg  sta.Config
	}{
		{"fast", sta.Config{Engine: sta.Fast}},
		{"signoff", sta.Config{Engine: sta.Signoff}},
		{"signoff+si", sta.Config{Engine: sta.Signoff, SI: true}},
		{"signoff+si+pba", truthCfg},
	}
	var points []CurvePoint
	for _, e := range engines {
		rep := sta.Analyze(test, e.cfg)
		div, err := compare(rep, truth)
		if err != nil {
			return nil, err
		}
		points = append(points, CurvePoint{
			Name:        e.name,
			CostUnits:   rep.CostUnits,
			AccuracyPct: acc(div.MAEPs),
			MAEPs:       div.MAEPs,
		})
	}

	model, err := Train(train, sta.Config{Engine: sta.Fast}, truthCfg)
	if err != nil {
		return nil, err
	}
	rep, corrected := model.Apply(test)
	var mae float64
	for i := range rep.Endpoints {
		mae += math.Abs(corrected[i] - truth.Endpoints[i].SlackPs)
	}
	if len(rep.Endpoints) > 0 {
		mae /= float64(len(rep.Endpoints))
	}
	points = append(points, CurvePoint{
		Name:        "fast+ml",
		CostUnits:   rep.CostUnits + model.InferenceCost,
		AccuracyPct: acc(mae),
		MAEPs:       mae,
	})
	return points, nil
}
