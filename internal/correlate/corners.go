package correlate

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// CornerModel predicts per-endpoint slack at a corner that was not
// analyzed, from the endpoints' slacks at analyzed corners plus path
// features — the paper's [20] near-term extension (2): "prediction of
// timing at 'missing corners' that are not analyzed, based on STA
// reports for corners that are analyzed."
type CornerModel struct {
	Analyzed []sta.Corner
	Missing  sta.Corner
	Engine   sta.Config // base engine settings (corner field is overridden)

	reg    *ml.Ridge
	scaler *ml.Scaler
	// TrainMAE is the residual on the training endpoints, ps.
	TrainMAE float64
}

// cornerFeatures builds the model input for one endpoint index from the
// analyzed-corner reports.
func cornerFeatures(reports []*sta.Report, i int) []float64 {
	f := []float64{}
	for _, rep := range reports {
		ep := rep.Endpoints[i]
		f = append(f, ep.SlackPs, ep.Arrival)
	}
	// Path structure from the first analyzed corner.
	ep := reports[0].Endpoints[i]
	f = append(f, float64(ep.Depth), ep.WirePs, ep.SlewPs, ep.FanoutLd)
	return f
}

// TrainCorners fits the missing-corner model over training designs.
func TrainCorners(designs []*netlist.Netlist, engine sta.Config, analyzed []sta.Corner, missing sta.Corner) (*CornerModel, error) {
	if len(analyzed) == 0 {
		return nil, fmt.Errorf("correlate: no analyzed corners")
	}
	var x [][]float64
	var y []float64
	for _, n := range designs {
		reports := make([]*sta.Report, len(analyzed))
		for ci, c := range analyzed {
			cfg := engine
			cfg.Corner = c
			reports[ci] = sta.Analyze(n, cfg)
		}
		cfg := engine
		cfg.Corner = missing
		truth := sta.Analyze(n, cfg)
		for ci := range reports {
			if len(reports[ci].Endpoints) != len(truth.Endpoints) {
				return nil, fmt.Errorf("correlate: endpoint mismatch on %s", n.Name)
			}
		}
		for i := range truth.Endpoints {
			x = append(x, cornerFeatures(reports, i))
			y = append(y, truth.Endpoints[i].SlackPs)
		}
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("correlate: no endpoints")
	}
	scaler := ml.FitScaler(x)
	reg, err := ml.FitRidge(scaler.Transform(x), y, 1.0)
	if err != nil {
		return nil, err
	}
	m := &CornerModel{Analyzed: analyzed, Missing: missing, Engine: engine, reg: reg, scaler: scaler}
	m.TrainMAE = ml.MAE(reg.PredictAll(scaler.Transform(x)), y)
	return m, nil
}

// CornerEvaluation compares the ML prediction of the missing corner
// against actually analyzing it, and against the naive baseline of
// scaling the worst analyzed corner.
type CornerEvaluation struct {
	Endpoints     int
	ModelMAEPs    float64 // |predicted - true| at the missing corner
	BaselineMAEPs float64 // |worst analyzed slack - true|
	// CostSavedUnits is the analysis cost avoided by not running the
	// missing corner.
	CostSavedUnits float64
}

// Evaluate applies the model to a held-out design.
func (m *CornerModel) Evaluate(n *netlist.Netlist) (CornerEvaluation, error) {
	var ev CornerEvaluation
	reports := make([]*sta.Report, len(m.Analyzed))
	for ci, c := range m.Analyzed {
		cfg := m.Engine
		cfg.Corner = c
		reports[ci] = sta.Analyze(n, cfg)
	}
	cfg := m.Engine
	cfg.Corner = m.Missing
	truth := sta.Analyze(n, cfg)
	ev.CostSavedUnits = truth.CostUnits
	for ci := range reports {
		if len(reports[ci].Endpoints) != len(truth.Endpoints) {
			return ev, fmt.Errorf("correlate: endpoint mismatch on %s", n.Name)
		}
	}
	ev.Endpoints = len(truth.Endpoints)
	var modelAbs, baseAbs float64
	for i := range truth.Endpoints {
		tr := truth.Endpoints[i].SlackPs
		pred := m.reg.Predict(m.scaler.Transform([][]float64{cornerFeatures(reports, i)})[0])
		modelAbs += math.Abs(pred - tr)
		worst := math.Inf(1)
		for _, rep := range reports {
			if s := rep.Endpoints[i].SlackPs; s < worst {
				worst = s
			}
		}
		baseAbs += math.Abs(worst - tr)
	}
	if ev.Endpoints > 0 {
		ev.ModelMAEPs = modelAbs / float64(ev.Endpoints)
		ev.BaselineMAEPs = baseAbs / float64(ev.Endpoints)
	}
	return ev, nil
}
