package correlate

import (
	"testing"

	"repro/internal/cellib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func designs(n int, base int64) []*netlist.Netlist {
	lib := cellib.Default14nm()
	var out []*netlist.Netlist
	for i := 0; i < n; i++ {
		out = append(out, netlist.Generate(lib, netlist.Tiny(base+int64(i))))
	}
	return out
}

var fastCfg = sta.Config{Engine: sta.Fast}
var truthCfg = sta.Config{Engine: sta.Signoff, SI: true, PathBased: true}

func TestMeasureDivergence(t *testing.T) {
	n := designs(1, 1)[0]
	d, err := Measure(n, fastCfg, truthCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoints == 0 {
		t.Fatal("no endpoints")
	}
	if d.MAEPs <= 0 {
		t.Error("engines should diverge (MAE > 0)")
	}
	if d.RMSEPs < d.MAEPs {
		t.Error("RMSE must be >= MAE")
	}
	if d.MaxAbsPs < d.MAEPs {
		t.Error("max must be >= mean")
	}
	if len(d.DeltasPs) != d.Endpoints {
		t.Error("deltas length mismatch")
	}
}

func TestMeasureSelfZero(t *testing.T) {
	n := designs(1, 2)[0]
	d, err := Measure(n, truthCfg, truthCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.MAEPs != 0 || d.Disagreements != 0 {
		t.Errorf("self-comparison should be exact: %+v", d)
	}
}

func TestModelReducesError(t *testing.T) {
	train := designs(4, 10)
	test := designs(1, 99)[0]
	m, err := Train(train, fastCfg, truthCfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CorrectedMAEPs >= ev.RawMAEPs {
		t.Errorf("ML correction did not reduce MAE: raw %v vs corrected %v", ev.RawMAEPs, ev.CorrectedMAEPs)
	}
	if ev.CorrDisagree > ev.RawDisagree {
		t.Errorf("correction increased sign disagreements: %d -> %d", ev.RawDisagree, ev.CorrDisagree)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, fastCfg, truthCfg); err == nil {
		t.Error("empty training set should error")
	}
}

func TestAccuracyCostCurveShape(t *testing.T) {
	train := designs(3, 20)
	test := designs(1, 77)[0]
	points, err := AccuracyCostCurve(train, test)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CurvePoint{}
	for _, p := range points {
		byName[p.Name] = p
	}
	for _, name := range []string{"fast", "signoff", "signoff+si", "signoff+si+pba", "fast+ml"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing curve point %q", name)
		}
	}
	// Reference engine is exact by construction.
	if byName["signoff+si+pba"].AccuracyPct != 100 {
		t.Errorf("reference accuracy %v", byName["signoff+si+pba"].AccuracyPct)
	}
	// Accuracy should be monotone along the engine staircase.
	if byName["fast"].AccuracyPct > byName["signoff+si"].AccuracyPct {
		t.Errorf("fast (%v%%) should not beat signoff+si (%v%%)",
			byName["fast"].AccuracyPct, byName["signoff+si"].AccuracyPct)
	}
	// Cost staircase.
	if !(byName["fast"].CostUnits < byName["signoff"].CostUnits &&
		byName["signoff"].CostUnits < byName["signoff+si"].CostUnits &&
		byName["signoff+si"].CostUnits < byName["signoff+si+pba"].CostUnits) {
		t.Error("cost staircase violated")
	}
	// The Fig. 8 punchline: ML-corrected fast is much cheaper than the
	// reference and more accurate than raw fast.
	ml := byName["fast+ml"]
	if ml.CostUnits > byName["signoff"].CostUnits {
		t.Errorf("fast+ml cost %v should stay below signoff cost %v", ml.CostUnits, byName["signoff"].CostUnits)
	}
	if ml.AccuracyPct <= byName["fast"].AccuracyPct {
		t.Errorf("fast+ml accuracy %v%% should beat raw fast %v%%", ml.AccuracyPct, byName["fast"].AccuracyPct)
	}
}

func TestGBAToPBAPrediction(t *testing.T) {
	// The [20] near-term extension: predict path-based results from
	// graph-based analysis.
	train := designs(3, 40)
	test := designs(1, 55)[0]
	gba := sta.Config{Engine: sta.Signoff, SI: true}
	pba := sta.Config{Engine: sta.Signoff, SI: true, PathBased: true}
	m, err := Train(train, gba, pba)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CorrectedMAEPs >= ev.RawMAEPs {
		t.Errorf("GBA->PBA model did not help: %v vs %v", ev.RawMAEPs, ev.CorrectedMAEPs)
	}
}

func TestSIPrediction(t *testing.T) {
	// Ref [27] "SI for free": predict SI-mode slacks from non-SI.
	train := designs(3, 60)
	test := designs(1, 66)[0]
	noSI := sta.Config{Engine: sta.Signoff}
	withSI := sta.Config{Engine: sta.Signoff, SI: true}
	m, err := Train(train, noSI, withSI)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CorrectedMAEPs >= ev.RawMAEPs {
		t.Errorf("SI model did not help: %v vs %v", ev.RawMAEPs, ev.CorrectedMAEPs)
	}
}
