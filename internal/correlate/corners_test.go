package correlate

import (
	"testing"

	"repro/internal/sta"
)

func TestMissingCornerPrediction(t *testing.T) {
	train := designs(4, 200)
	test := designs(1, 222)[0]
	engine := sta.Config{Engine: sta.Signoff}
	analyzed := []sta.Corner{sta.CornerTT, sta.CornerSS, sta.CornerFF}
	m, err := TrainCorners(train, engine, analyzed, sta.CornerSSCold)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Endpoints == 0 {
		t.Fatal("no endpoints evaluated")
	}
	if ev.ModelMAEPs >= ev.BaselineMAEPs {
		t.Errorf("missing-corner model MAE %v not below worst-corner baseline %v",
			ev.ModelMAEPs, ev.BaselineMAEPs)
	}
	if ev.ModelMAEPs > 20 {
		t.Errorf("missing-corner MAE %v ps too large to be useful", ev.ModelMAEPs)
	}
	if ev.CostSavedUnits <= 0 {
		t.Error("skipping a corner must save analysis cost")
	}
}

func TestTrainCornersErrors(t *testing.T) {
	engine := sta.Config{Engine: sta.Signoff}
	if _, err := TrainCorners(nil, engine, []sta.Corner{sta.CornerTT}, sta.CornerSS); err == nil {
		t.Error("no designs should error")
	}
	if _, err := TrainCorners(designs(1, 1), engine, nil, sta.CornerSS); err == nil {
		t.Error("no analyzed corners should error")
	}
}

func TestFewerAnalyzedCornersWorse(t *testing.T) {
	// With only TT analyzed, the model has less signal than with
	// TT+SS+FF; training MAE should not improve when corners are
	// dropped.
	train := designs(4, 300)
	engine := sta.Config{Engine: sta.Signoff}
	rich, err := TrainCorners(train, engine, []sta.Corner{sta.CornerTT, sta.CornerSS, sta.CornerFF}, sta.CornerSSCold)
	if err != nil {
		t.Fatal(err)
	}
	poor, err := TrainCorners(train, engine, []sta.Corner{sta.CornerTT}, sta.CornerSSCold)
	if err != nil {
		t.Fatal(err)
	}
	if rich.TrainMAE > poor.TrainMAE+1e-9 {
		t.Errorf("more corners should not hurt: rich %v vs poor %v", rich.TrainMAE, poor.TrainMAE)
	}
}
