package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		// Varying sizes, including empty and multi-hundred-byte records,
		// so torn-write cut points land in every field of the framing.
		out[i] = bytes.Repeat([]byte{byte('a' + i%26)}, (i*37)%211)
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendAll(t *testing.T, l *Log, recs [][]byte) {
	t.Helper()
	for i, p := range recs {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func assertRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(25)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), recs)
	if st := l2.Stats(); st.TornTails != 0 || st.Records != len(recs) {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(40)
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 256, Sync: SyncNever})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected >= 3 segments at 256-byte rotation, got %d", len(names))
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), recs)
}

func TestExplicitRotateMidStream(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(10)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, recs[:5])
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs[5:])
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), recs)
}

// segmentImages returns the byte images of every segment, in order.
func segmentImages(t *testing.T, dir string) [][]byte {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// TestKillAtEveryByteBoundary is the crash-injection harness of the
// tentpole: a process kill can truncate the segment file at any byte.
// For every prefix length of a real journal image, recovery must (a)
// yield exactly the records whose frames fit entirely inside the
// prefix, (b) never error, and (c) leave the journal appendable, with
// the post-crash append surviving a further clean reopen.
func TestKillAtEveryByteBoundary(t *testing.T) {
	srcDir := t.TempDir()
	recs := payloads(8)
	l := mustOpen(t, srcDir, Options{Sync: SyncNever})
	appendAll(t, l, recs)
	l.Close()
	img := segmentImages(t, srcDir)[0]

	// Expected record count at a given prefix length.
	expectAt := func(cut int) int {
		got, _, ok := scanImage(img[:cut])
		if !ok {
			return 0
		}
		return len(got)
	}

	for cut := 0; cut <= len(img); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		want := expectAt(cut)
		if len(lr.Records()) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(lr.Records()), want)
		}
		assertRecords(t, lr.Records(), recs[:want])
		// The recovered journal must accept new records.
		extra := []byte("post-crash")
		if err := lr.Append(extra); err != nil {
			t.Fatalf("cut %d: post-recovery append: %v", cut, err)
		}
		lr.Close()
		lr2 := mustOpen(t, dir, Options{})
		assertRecords(t, lr2.Records(), append(append([][]byte{}, recs[:want]...), extra))
		lr2.Close()
	}
}

// TestCorruptTailBitFlip flips each byte of the final record in turn;
// recovery must drop exactly that record (CRC catches the flip) and
// keep everything before it.
func TestCorruptTailBitFlip(t *testing.T) {
	srcDir := t.TempDir()
	recs := payloads(5)
	l := mustOpen(t, srcDir, Options{Sync: SyncNever})
	appendAll(t, l, recs)
	l.Close()
	img := segmentImages(t, srcDir)[0]
	_, prevOff, _ := scanImage(img[:len(img)-1]) // offset of the final record

	for pos := prevOff; pos < len(img); pos++ {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0x5a
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("flip at %d: Open failed: %v", pos, err)
		}
		n := len(lr.Records())
		// A flip in the length prefix can make the frame look torn, a
		// flip in CRC or payload fails the checksum; either way at most
		// the final record is lost and no prior record is damaged.
		if n < len(recs)-1 || n > len(recs) {
			t.Fatalf("flip at %d: recovered %d records, want %d or %d", pos, n, len(recs)-1, len(recs))
		}
		assertRecords(t, lr.Records(), recs[:n])
		lr.Close()
	}
}

// TestTornWriteRepairedInProcess injects a short write: the append
// fails, but the log rolls back to the record boundary and stays
// usable — no torn bytes reach later readers.
func TestTornWriteRepairedInProcess(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(6)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, recs[:3])

	for short := 0; short < 12; short++ {
		cut := short
		l.injectWrite = func(f *os.File, b []byte) (int, error) {
			if cut > len(b) {
				cut = len(b)
			}
			n, _ := f.Write(b[:cut])
			return n, fmt.Errorf("injected torn write after %d bytes", n)
		}
		if err := l.Append([]byte("doomed")); err == nil {
			t.Fatalf("short=%d: injected write did not surface an error", short)
		}
		l.injectWrite = nil
	}
	// The log repaired itself: later appends and reopen see a clean run.
	appendAll(t, l, recs[3:])
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), recs)
	if st := l2.Stats(); st.TornTails != 0 {
		t.Fatalf("repaired log still shows torn tails: %+v", st)
	}
}

func TestSyncFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncAlways})
	l.injectSync = func() error { return errors.New("injected sync fault") }
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append with failing fsync must report the error")
	}
	l.injectSync = nil
	if err := l.Append([]byte("y")); err != nil {
		t.Fatalf("append after sync recovery: %v", err)
	}
	l.Close()
	// Both records hit the file (only the fsync failed).
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), [][]byte{[]byte("x"), []byte("y")})
}

func TestSyncPolicies(t *testing.T) {
	for _, opts := range []Options{
		{Sync: SyncAlways},
		{Sync: SyncInterval, SyncEvery: 3},
		{Sync: SyncNever},
	} {
		dir := t.TempDir()
		recs := payloads(7)
		l := mustOpen(t, dir, opts)
		appendAll(t, l, recs)
		l.Close()
		l2 := mustOpen(t, dir, Options{})
		assertRecords(t, l2.Records(), recs)
		l2.Close()
	}
}

func TestGarbageSegmentResets(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on garbage segment: %v", err)
	}
	if len(l.Records()) != 0 {
		t.Fatalf("garbage segment yielded %d records", len(l.Records()))
	}
	if st := l.Stats(); st.TornTails != 1 {
		t.Fatalf("expected 1 torn tail, got %+v", st)
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), [][]byte{[]byte("fresh")})
}

func TestLeftoverTempSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A crash mid-rotation leaves a temp file; it must be invisible.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002.wal.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	assertRecords(t, l2.Records(), [][]byte{[]byte("kept")})
}

func TestClosedLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	big := make([]byte, MaxRecordBytes+1)
	if err := l.Append(big); err == nil {
		t.Fatal("oversize record must be rejected")
	}
	if err := l.Append([]byte("small")); err != nil {
		t.Fatalf("log unusable after oversize rejection: %v", err)
	}
}
