package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalDecode drives the record decoder with arbitrary bytes: it
// must either decode valid records or stop cleanly — never panic,
// never mis-parse. The invariants checked:
//
//  1. The scan offset never exceeds the input.
//  2. Re-encoding the decoded records reproduces the consumed prefix
//     byte-for-byte (no silent mis-parse: every accepted record is one
//     the encoder could have written there).
//  3. Open on the same bytes as a segment file succeeds (recovery by
//     truncation, never an error) and recovers exactly those records,
//     and the recovered journal accepts a post-crash append.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("garbage that is not a journal at all........"))
	// A well-formed image with three records, plus truncations and a
	// corrupted tail, seed the interesting byte neighborhoods.
	img := []byte(segMagic)
	for _, p := range [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0x7e}, 300)} {
		img = append(img, encodeRecord(p)...)
	}
	f.Add(img)
	f.Add(img[:len(img)-1])
	f.Add(img[:segHeaderLen+3])
	flipped := append([]byte(nil), img...)
	flipped[segHeaderLen+2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off, ok := scanImage(data)
		if off > len(data) {
			t.Fatalf("scan offset %d beyond input %d", off, len(data))
		}
		if !ok {
			if len(recs) != 0 || off != 0 {
				t.Fatalf("invalid header but recs=%d off=%d", len(recs), off)
			}
		} else {
			rebuilt := []byte(segMagic)
			for _, r := range recs {
				rebuilt = append(rebuilt, encodeRecord(r)...)
			}
			if !bytes.Equal(rebuilt, data[:off]) {
				t.Fatalf("decoded records do not re-encode to the consumed prefix")
			}
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open must recover, got error: %v", err)
		}
		if len(l.Records()) != len(recs) {
			t.Fatalf("Open recovered %d records, scan found %d", len(l.Records()), len(recs))
		}
		if err := l.Append([]byte("post")); err != nil {
			t.Fatalf("post-recovery append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := l2.Records()
		if len(got) != len(recs)+1 || !bytes.Equal(got[len(got)-1], []byte("post")) {
			t.Fatalf("reopen after append lost records: %d vs %d+1", len(got), len(recs))
		}
		l2.Close()
	})
}
