// Package journal is the crash-safe write-ahead log under the campaign
// engine's durable checkpoint/resume: an append-only sequence of
// length-prefixed, CRC32C-checksummed records in rotated segment files.
//
// The durability contract is the one a weekend-scale campaign needs
// (the paper's "launch 1000 runs" orchestration): a process kill, OOM
// or machine reboot at ANY byte boundary of a write loses at most the
// records that were never acknowledged by the configured fsync policy,
// and never corrupts the records before them. Open recovers from torn
// tails by truncating at the last valid record instead of failing, so
// a crashed campaign restarts without operator surgery.
//
// Segment rotation is atomic: a new segment is created as a temp file,
// its header is written and fsynced, and the file is renamed into place
// before any record lands in it — a crash mid-rotation leaves either
// the old tail segment or a complete empty new one, never a segment
// with a half-written header.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Record layout inside a segment, after the 8-byte segment header:
//
//	u32le payload length | u32le CRC32C(payload) | payload bytes
const (
	segMagic     = "SPRWAL1\n"
	segHeaderLen = len(segMagic)
	recHeaderLen = 8
)

// MaxRecordBytes bounds one record's payload; a length prefix above it
// is treated as corruption (it cannot be a record this package wrote).
const MaxRecordBytes = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("journal: log is closed")

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (the default: a record
	// returned from Append survives an immediate power cut).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends; a crash can
	// lose up to SyncEvery-1 acknowledged records but never corrupts
	// the ones before them.
	SyncInterval
	// SyncNever leaves flushing to the OS; a clean process kill (SIGKILL)
	// loses nothing, a power cut may lose the OS write-back window.
	SyncNever
)

// Options parameterizes a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the append interval for SyncInterval (default 16).
	SyncEvery int
	// MaxSegmentBytes rotates to a fresh segment once the active one
	// exceeds this size (default 64 MiB).
	MaxSegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	return o
}

// RecoveryStats reports what Open found.
type RecoveryStats struct {
	Segments  int   // segment files scanned
	Records   int   // valid records recovered
	TornTails int   // segments that ended in an invalid/partial record
	TornBytes int64 // bytes discarded from torn tails
}

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	seq      int
	size     int64
	unsynced int
	closed   bool
	broken   error // sticky: set when a failed append could not be repaired

	records [][]byte
	stats   RecoveryStats

	// Crash-injection seams (tests only): injectWrite replaces the
	// segment write, injectSync fails the next fsync.
	injectWrite func(f *os.File, b []byte) (int, error)
	injectSync  func() error
}

// Open opens (creating if necessary) the journal in dir, recovering
// from torn tails by truncating the active segment at its last valid
// record. The recovered payloads are available via Records.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	for i, name := range names {
		last := i == len(names)-1
		if err := l.recoverSegment(filepath.Join(dir, name), last); err != nil {
			return nil, err
		}
	}
	l.stats.Segments = len(names)
	l.stats.Records = len(l.records)
	if len(names) == 0 {
		if err := l.rotateLocked(); err != nil {
			return nil, err
		}
	}
	metrics.Add("journal.log.opened", 1)
	metrics.Add("journal.log.recovered", int64(l.stats.Records))
	if l.stats.TornTails > 0 {
		metrics.Add("journal.log.torn_tails", int64(l.stats.TornTails))
		metrics.Add("journal.log.torn_bytes", l.stats.TornBytes)
	}
	return l, nil
}

// segmentNames lists seg-*.wal files in ascending sequence order,
// ignoring temp files left by a crash mid-rotation.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: read dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", seq))
}

func segmentSeq(path string) int {
	var seq int
	fmt.Sscanf(filepath.Base(path), "seg-%08d.wal", &seq) //nolint:errcheck // malformed names yield seq 0
	return seq
}

// scanImage parses one segment image (header plus records). It returns
// the valid payloads, the offset parsing stopped at, and whether the
// header itself was valid. It never fails: invalid bytes end the scan
// at the last valid record — the recovery-by-truncation invariant.
func scanImage(data []byte) (recs [][]byte, validOff int, headerOK bool) {
	if len(data) < segHeaderLen || string(data[:segHeaderLen]) != segMagic {
		return nil, 0, false
	}
	off := segHeaderLen
	for {
		if off+recHeaderLen > len(data) {
			return recs, off, true
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > MaxRecordBytes || off+recHeaderLen+n > len(data) {
			return recs, off, true
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, true
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += recHeaderLen + n
	}
}

// encodeRecord frames a payload for appending.
func encodeRecord(payload []byte) []byte {
	buf := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recHeaderLen:], payload)
	return buf
}

// recoverSegment scans one segment, collecting its valid records. The
// final segment is additionally truncated at its last valid record and
// reopened for appending; earlier segments are read-only history, so a
// torn tail there is only counted.
func (l *Log) recoverSegment(path string, last bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: read segment: %w", err)
	}
	recs, validOff, headerOK := scanImage(data)
	if !headerOK {
		// Unrecognizable segment: nothing recoverable in it. For the
		// active segment, reset it to an empty valid one.
		validOff = 0
	}
	if torn := int64(len(data)) - int64(validOff); torn > 0 {
		l.stats.TornTails++
		l.stats.TornBytes += torn
	}
	l.records = append(l.records, recs...)
	if !last {
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	if !headerOK {
		validOff = segHeaderLen
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(segMagic), 0)
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("journal: reset corrupt segment: %w", err)
		}
	} else if int64(validOff) < int64(len(data)) {
		if err := f.Truncate(int64(validOff)); err != nil {
			f.Close()
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(validOff), 0); err != nil {
		f.Close()
		return fmt.Errorf("journal: seek: %w", err)
	}
	l.f = f
	l.seq = segmentSeq(path)
	l.size = int64(validOff)
	return nil
}

// Records returns the payloads recovered at Open, in append order.
// Callers must not mutate the returned slices.
func (l *Log) Records() [][]byte { return l.records }

// Stats returns the recovery statistics gathered at Open.
func (l *Log) Stats() RecoveryStats { return l.stats }

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Append durably adds one record. On return under SyncAlways the record
// has been fsynced; under the other policies it is at least buffered in
// the segment file. A failed write is repaired by truncating back to
// the previous record boundary, so one bad append never poisons the
// records around it.
func (l *Log) Append(payload []byte) error {
	// Detached span (there is no context under the mutex): append
	// latency includes any fsync the policy demands, so the
	// journal.append histogram is the durability cost a campaign point
	// pays, and journal.sync isolates the fsync inside it.
	sp := trace.Begin("journal.append")
	err := l.append(payload)
	sp.EndErr(err)
	return err
}

func (l *Log) append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken != nil:
		return l.broken
	case len(payload) > MaxRecordBytes:
		return fmt.Errorf("journal: record of %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	buf := encodeRecord(payload)
	if l.size > int64(segHeaderLen) && l.size+int64(len(buf)) > l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	before := l.size
	n, err := l.write(buf)
	l.size += int64(n)
	if err != nil {
		// Torn write with the process still alive: roll the segment
		// back to the last record boundary so the log stays appendable.
		if terr := l.f.Truncate(before); terr == nil {
			if _, serr := l.f.Seek(before, 0); serr == nil {
				l.size = before
				metrics.Add("journal.append.repaired", 1)
				return fmt.Errorf("journal: append: %w", err)
			}
		}
		l.broken = fmt.Errorf("journal: unrepairable torn append: %w", err)
		metrics.Add("journal.append.broken", 1)
		return l.broken
	}
	l.unsynced++
	metrics.Add("journal.append.ok", 1)
	metrics.Add("journal.append.bytes", int64(len(buf)))
	if l.opts.Sync == SyncAlways || (l.opts.Sync == SyncInterval && l.unsynced >= l.opts.SyncEvery) {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) write(b []byte) (int, error) {
	if l.injectWrite != nil {
		return l.injectWrite(l.f, b)
	}
	return l.f.Write(b)
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	sp := trace.Begin("journal.sync")
	if l.injectSync != nil {
		if err := l.injectSync(); err != nil {
			sp.EndErr(err)
			return fmt.Errorf("journal: sync: %w", err)
		}
	} else if err := l.f.Sync(); err != nil {
		sp.EndErr(err)
		return fmt.Errorf("journal: sync: %w", err)
	}
	sp.End()
	l.unsynced = 0
	metrics.Add("journal.sync.ok", 1)
	return nil
}

// Rotate seals the active segment and atomically installs a fresh one.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// rotateLocked creates segment seq+1 via temp file + rename: the new
// segment becomes visible only with a complete, fsynced header.
func (l *Log) rotateLocked() error {
	next := l.seq + 1
	final := segmentPath(l.dir, next)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: init segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: install segment: %w", err)
	}
	syncDir(l.dir)
	if l.f != nil {
		l.f.Sync() //nolint:errcheck // the sealed segment is already complete; best-effort
		l.f.Close()
	}
	l.f = f
	l.seq = next
	l.size = int64(segHeaderLen)
	l.unsynced = 0
	metrics.Add("journal.segment.rotated", 1)
	return nil
}

// syncDir fsyncs a directory so a rename survives a power cut
// (best-effort: not all filesystems support directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort
		d.Close()
	}
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
